(** Client-directed erasure coding without quorums or versioning — the
    related-work baseline of the paper's section 6 (Amiri, Gibson and
    Golding's highly-concurrent shared storage, reduced to its storage
    model).

    Clients write encoded blocks directly to storage devices, which
    overwrite in place: no ordering phase, no version log, no quorum
    intersection. This is cheap (one round trip per write, no parity
    read-modify-write bookkeeping beyond the code itself) but unsafe
    under combined failures. The paper's example: with a 2-of-3 code,
    if a client crashes after updating a single data device and a
    second device then fails terminally, the surviving blocks mix two
    stripe versions and decoding returns {e garbage} — neither the old
    nor the new stripe. The X6 bench constructs exactly that run and
    contrasts it with the quorum protocol, which returns the old
    stripe.

    This module exists to demonstrate the failure; it is intentionally
    the naive design. *)

type t

val create :
  ?seed:int -> ?block_size:int -> m:int -> n:int -> unit -> t
(** A cluster of [n] storage devices holding one [m]-of-[n] encoded
    stripe per register index. *)

val block_size : t -> int
val engine : t -> Dessim.Engine.t

type 'a outcome = ('a, [ `Failed ]) result

val write : t -> reg:int -> Bytes.t array -> unit outcome
(** Write a stripe of [m] data blocks: encode and send each encoded
    block to its device, waiting for every live device to ack. Must
    run inside a fiber. If a device is down its block is simply not
    updated — the client has no way to tell a slow device from a dead
    one, which is precisely the assumption the paper rejects. *)

val write_prefix : t -> reg:int -> devices:int -> Bytes.t array -> unit
(** Deliver the write's blocks to only the first [devices] devices and
    then stop — the client crashed mid-write. (Fault injection used by
    benches and tests; runs the simulation internally.) *)

val read : t -> reg:int -> Bytes.t array outcome
(** Collect blocks from the first [m] live devices and decode. With
    mixed-version blocks this silently returns garbage: the protocol
    has no version information to detect the mix. *)

val crash_device : t -> int -> unit
(** Permanent device failure. *)

val run : ?horizon:float -> t -> unit
val run_op : ?horizon:float -> t -> (unit -> 'a) -> 'a option
