(** Replication-based atomic register in the style of Lynch-Shvartsman
    [9] / ABD — the baseline of the paper's Table 1.

    Every replica stores a full copy of the register value together
    with a tag (timestamp). Both operations are two-phase over
    majority quorums:

    - {e read}: query a majority for (value, tag); pick the highest
      tag; write the winning pair back to a majority; return it.
    - {e write}: query a majority for the highest tag; store the new
      value with a higher tag at a majority.

    Cost profile (Table 1, "LS97" columns): both operations take 4
    delta and 4n messages; a read performs n disk reads (every replica
    returns its copy) and n disk writes (the write-back), moving 2nB
    on the wire; a write performs n disk writes and moves nB. Tags
    live in NVRAM.

    Unlike the paper's algorithm, this baseline provides {e plain}
    linearizability: a partial write can surface at any later time
    (the write-back of a read completes it), and storage overhead is a
    factor n instead of n/m. The benches quantify both contrasts. *)

type t
(** A cluster of [n] bricks emulating replicated registers. *)

val create :
  ?seed:int ->
  ?net_config:Simnet.Net.config ->
  ?block_size:int ->
  n:int ->
  unit ->
  t
(** [create ~n ()] builds the cluster; tolerates
    [f = (n - 1) / 2] crashed bricks. *)

val n : t -> int
val block_size : t -> int
val metrics : t -> Metrics.Registry.t
val engine : t -> Dessim.Engine.t
val bricks : t -> Brick.t array

type 'a outcome = ('a, [ `Aborted ]) result

val read : t -> coord:int -> reg:int -> Bytes.t outcome
(** Must run inside a fiber (see {!run_op}). The result is the current
    register value; an unwritten register reads as zeroes. *)

val write : t -> coord:int -> reg:int -> Bytes.t -> unit outcome
(** @raise Invalid_argument on a block of the wrong size. *)

val run : ?horizon:float -> t -> unit
val run_op : ?horizon:float -> t -> (unit -> 'a) -> 'a option
val crash : t -> int -> unit
val recover : t -> int -> unit
val snapshot : t -> Metrics.Snapshot.t
