lib/baseline/ls97.mli: Brick Bytes Dessim Metrics Simnet
