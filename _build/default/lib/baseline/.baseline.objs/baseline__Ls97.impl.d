lib/baseline/ls97.ml: Array Brick Bytes Core Dessim Fun Hashtbl List Metrics Quorum Simnet
