lib/baseline/direct.ml: Array Brick Bytes Dessim Erasure Fun Hashtbl List Metrics Quorum Simnet
