lib/baseline/direct.mli: Bytes Dessim
