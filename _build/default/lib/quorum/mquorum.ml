type t = { n : int; m : int; f : int }

let exists ~n ~m ~f = n >= (2 * f) + m
let max_f ~n ~m = (n - m) / 2

let create_f ~n ~m ~f =
  if m < 1 || m > n then invalid_arg "Quorum.Mquorum: need 1 <= m <= n";
  if f < 0 then invalid_arg "Quorum.Mquorum: negative f";
  if not (exists ~n ~m ~f) then
    invalid_arg
      (Printf.sprintf
         "Quorum.Mquorum: no m-quorum system for n=%d m=%d f=%d (need n >= \
          2f+m)"
         n m f);
  { n; m; f }

let create ~n ~m = create_f ~n ~m ~f:(max_f ~n ~m)

let n t = t.n
let m t = t.m
let f t = t.f
let quorum_size t = t.n - t.f

let distinct_in_range t ids =
  let seen = Array.make t.n false in
  List.for_all
    (fun id ->
      id >= 0 && id < t.n
      &&
      if seen.(id) then false
      else begin
        seen.(id) <- true;
        true
      end)
    ids

let is_quorum t ids =
  distinct_in_range t ids && List.length ids >= quorum_size t

let check_intersection t q1 q2 =
  let inter = List.filter (fun x -> List.mem x q2) (List.sort_uniq compare q1) in
  List.length inter >= t.m

let pp fmt t = Format.fprintf fmt "m-quorum(n=%d, m=%d, f=%d)" t.n t.m t.f
