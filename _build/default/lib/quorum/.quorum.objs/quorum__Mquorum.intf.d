lib/quorum/mquorum.mli: Format
