lib/quorum/mquorum.ml: Array Format List Printf
