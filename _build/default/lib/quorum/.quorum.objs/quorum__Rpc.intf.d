lib/quorum/rpc.mli: Brick Simnet
