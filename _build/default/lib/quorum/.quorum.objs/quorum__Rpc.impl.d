lib/quorum/rpc.ml: Array Brick Dessim Hashtbl List Simnet
