(** m-quorum systems (paper section 2.2 and Appendix A).

    An m-quorum system over [n] processes is a set of quorums such that
    any two quorums intersect in at least [m] processes, and for every
    set of [f] faulty processes some quorum avoids them all. Theorem 2
    shows such a system exists iff [n >= 2f + m], and Lemma 3 shows the
    canonical choice [{ Q : |Q| >= n - f }] is then itself an m-quorum
    system — that canonical system is what this module implements. *)

type t
(** Parameters of a concrete m-quorum system. *)

val create : n:int -> m:int -> t
(** [create ~n ~m] is the canonical m-quorum system over [n] processes
    tolerating the maximum [f = (n - m) / 2] faults.
    @raise Invalid_argument unless [1 <= m <= n]. *)

val create_f : n:int -> m:int -> f:int -> t
(** Like {!create} but with an explicit fault bound [f].
    @raise Invalid_argument if [n < 2 * f + m] (no system exists,
    Theorem 2) or [f < 0]. *)

val n : t -> int
val m : t -> int
val f : t -> int

val quorum_size : t -> int
(** [quorum_size t = n - f]: the number of replies a coordinator must
    gather. *)

val is_quorum : t -> int list -> bool
(** [is_quorum t members] holds when the (distinct, in-range) process
    ids form a quorum, i.e. there are at least [n - f] of them. *)

val exists : n:int -> m:int -> f:int -> bool
(** Theorem 2: an m-quorum system over [n] processes tolerating [f]
    faults exists iff [n >= 2f + m]. *)

val max_f : n:int -> m:int -> int
(** The largest tolerable [f] for given [n] and [m]:
    [(n - m) / 2] rounded down. *)

val check_intersection : t -> int list -> int list -> bool
(** [check_intersection t q1 q2] verifies [|q1 ∩ q2| >= m]; used by
    property tests over the CONSISTENCY property. *)

val pp : Format.formatter -> t -> unit
