lib/linearize/check.ml: Format Hashtbl History List Option Printf String
