lib/linearize/check.mli: Format History
