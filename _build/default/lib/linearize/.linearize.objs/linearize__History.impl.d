lib/linearize/history.ml: Hashtbl List
