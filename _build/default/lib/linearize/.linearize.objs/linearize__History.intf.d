lib/linearize/history.mli:
