(** Strict-linearizability checker (paper section 3, Appendix B).

    A history is strictly linearizable iff it admits a {e conforming
    total order} (Definition 5): a total order on the observable
    values that contains [nil] first and respects the real-time order
    of the operations that wrote and read them. Proposition 6 shows
    conforming total order implies strict linearizability; under the
    unique-value assumption the converse direction also holds for the
    violations we report, so the checker is both sound and complete
    for register histories produced by the test drivers.

    The checker reduces Definition 5 to digraph acyclicity:

    - nodes are the observable values (values returned by successful
      reads, plus values of writes that returned OK);
    - conditions (2)-(5) each force a strict edge between two distinct
      values (a total order on distinct values cannot have ties);
    - a partial or aborted write whose value was never observed is
      free to be dropped from the order, so it contributes nothing;
    - a read returning [v] that happens before the write of [v] is an
      immediate violation (condition (5) with [v = v']).

    Strictness — the property that distinguishes this from plain
    linearizability — falls out of using {e every} read in the
    constraints: if a partially-written value surfaces in a read after
    a later operation already observed an older value, conditions (3)
    and (4) produce a cycle. *)

type violation =
  | Read_of_unwritten of { op : int; value : string }
      (** A read returned a value nobody ever tried to write. *)
  | Future_read of { read_op : int; write_op : int; value : string }
      (** A read of [value] happened entirely before its write was
          invoked. *)
  | Cycle of { values : string list; ops : (int * int) list }
      (** The precedence constraints on these values form a cycle;
          [ops] are the (earlier, later) operation pairs that induced
          the cycle's edges. *)

val pp_violation : Format.formatter -> violation -> unit

val strict : History.t -> (unit, violation) result
(** [strict h] checks strict linearizability of the recorded history. *)

val is_strictly_linearizable : History.t -> bool
