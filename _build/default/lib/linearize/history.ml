type kind = Read | Write

type status = Pending | Returned of string | Ok_written | Aborted | Crashed

type record = {
  id : int;
  client : int;
  kind : kind;
  written : string option;
  invoked_at : float;
  mutable status : status;
  mutable returned_at : float option;
}

type t = {
  mutable records : record list;  (* newest first *)
  mutable next_id : int;
  written_values : (string, unit) Hashtbl.t;
  by_id : (int, record) Hashtbl.t;
}

let nil = "<nil>"

let create () =
  {
    records = [];
    next_id = 0;
    written_values = Hashtbl.create 64;
    by_id = Hashtbl.create 64;
  }

let invoke t ~client ~kind ?written ~now () =
  (match (kind, written) with
  | Write, None -> invalid_arg "Linearize.History.invoke: write without value"
  | Read, Some _ -> invalid_arg "Linearize.History.invoke: read with value"
  | Write, Some v ->
      if v = nil then
        invalid_arg "Linearize.History.invoke: writing the nil value";
      if Hashtbl.mem t.written_values v then
        invalid_arg
          "Linearize.History.invoke: duplicate write value (unique-value \
           assumption)";
      Hashtbl.add t.written_values v ()
  | Read, None -> ());
  let id = t.next_id in
  t.next_id <- id + 1;
  let r =
    {
      id;
      client;
      kind;
      written;
      invoked_at = now;
      status = Pending;
      returned_at = None;
    }
  in
  t.records <- r :: t.records;
  Hashtbl.add t.by_id id r;
  id

let finish t id status ~now =
  match Hashtbl.find_opt t.by_id id with
  | None -> invalid_arg "Linearize.History: unknown operation id"
  | Some r ->
      if r.status <> Pending then
        invalid_arg "Linearize.History: operation already completed";
      r.status <- status;
      r.returned_at <- Some now

let complete_read t id ~value ~now = finish t id (Returned value) ~now
let complete_write t id ~now = finish t id Ok_written ~now
let abort t id ~now = finish t id Aborted ~now
let crash t id ~now = finish t id Crashed ~now

let records t = List.rev t.records
let size t = t.next_id

let abort_count t =
  List.length (List.filter (fun r -> r.status = Aborted) t.records)

let pending_count t =
  List.length (List.filter (fun r -> r.status = Pending) t.records)
