(** Recording of operation histories for linearizability checking.

    The test driver wraps every register operation: it records the
    invocation before starting, and the return (value, OK, or abort)
    when the operation completes. An operation that never returns —
    its coordinator crashed — stays {e partial}, which is precisely
    the paper's partial-operation notion.

    Values are opaque strings (the drivers use block contents); the
    paper's unique-value assumption must hold: no two writes may write
    the same value, and no write may write the initial value
    {!nil}. *)

type kind = Read | Write

type status =
  | Pending  (** invoked, no return yet (partial if never completed) *)
  | Returned of string  (** successful read: the value returned *)
  | Ok_written  (** successful write *)
  | Aborted  (** the operation returned bottom *)
  | Crashed
      (** the coordinator crashed mid-operation; the operation is
          partial and its crash event is at [returned_at] *)

type record = {
  id : int;
  client : int;
  kind : kind;
  written : string option;  (** the value a write tries to write *)
  invoked_at : float;
  mutable status : status;
  mutable returned_at : float option;
}

type t

val nil : string
(** The register's initial value (the all-zero marker; drivers must
    map the zero block to this). *)

val create : unit -> t

val invoke :
  t -> client:int -> kind:kind -> ?written:string -> now:float -> unit -> int
(** Record an invocation; returns the operation id.
    @raise Invalid_argument if a write has no [written] value, a read
    has one, or a write reuses a previously written value or {!nil}. *)

val complete_read : t -> int -> value:string -> now:float -> unit
val complete_write : t -> int -> now:float -> unit
val abort : t -> int -> now:float -> unit

val crash : t -> int -> now:float -> unit
(** Mark a pending operation as partial with a crash event at [now];
    the crash event orders the operation before everything invoked
    after [now] (the paper's happens-before includes crash events). *)

val records : t -> record list
(** In invocation order. *)

val size : t -> int

val abort_count : t -> int
val pending_count : t -> int
