type violation =
  | Read_of_unwritten of { op : int; value : string }
  | Future_read of { read_op : int; write_op : int; value : string }
  | Cycle of { values : string list; ops : (int * int) list }

let pp_violation fmt = function
  | Read_of_unwritten { op; value } ->
      Format.fprintf fmt "operation %d read a never-written value %S" op value
  | Future_read { read_op; write_op; value } ->
      Format.fprintf fmt
        "operation %d read value %S before write %d was invoked" read_op value
        write_op
  | Cycle { values; ops } ->
      Format.fprintf fmt "precedence cycle over values [%s] (op pairs: %s)"
        (String.concat "; " values)
        (String.concat "; "
           (List.map (fun (a, b) -> Printf.sprintf "%d<%d" a b) ops))

(* op1 happens-before op2: op1's return (or abort) event precedes
   op2's invocation. Partial operations never precede anything. *)
let precedes (r1 : History.record) (r2 : History.record) =
  match r1.History.returned_at with
  | Some t -> t < r2.History.invoked_at
  | None -> false

let strict h =
  let records = History.records h in
  let writers = Hashtbl.create 64 in
  List.iter
    (fun (r : History.record) ->
      match (r.kind, r.written) with
      | History.Write, Some v -> Hashtbl.replace writers v r
      | _ -> ())
    records;
  (* Observable values: successful reads and committed writes. *)
  let observable = Hashtbl.create 64 in
  let add_value v = if not (Hashtbl.mem observable v) then Hashtbl.add observable v () in
  let first_error = ref None in
  List.iter
    (fun (r : History.record) ->
      match (r.kind, r.status) with
      | History.Read, History.Returned v ->
          if v <> History.nil && not (Hashtbl.mem writers v) then (
            if !first_error = None then
              first_error := Some (Read_of_unwritten { op = r.id; value = v }))
          else add_value v
      | History.Write, History.Ok_written ->
          add_value (Option.get r.written)
      | _ -> ())
    records;
  match !first_error with
  | Some e -> Error e
  | None -> (
      add_value History.nil;
      (* Operations relevant to each observable value. *)
      let ops_of = Hashtbl.create 64 in
      let attach v (r : History.record) =
        if Hashtbl.mem observable v then
          Hashtbl.replace ops_of v
            (r :: (try Hashtbl.find ops_of v with Not_found -> []))
      in
      List.iter
        (fun (r : History.record) ->
          match (r.kind, r.status, r.written) with
          | History.Read, History.Returned v, _ -> attach v r
          | History.Write, _, Some v -> attach v r
          | _ -> ())
        records;
      let values =
        Hashtbl.fold (fun v () acc -> v :: acc) observable []
        |> List.sort String.compare
      in
      (* Build the strict precedence edges of Definition 5. *)
      let edges : (string, (string * (int * int)) list) Hashtbl.t =
        Hashtbl.create 64
      in
      let add_edge u w witness =
        let existing = try Hashtbl.find edges u with Not_found -> [] in
        if not (List.exists (fun (w', _) -> w' = w) existing) then
          Hashtbl.replace edges u ((w, witness) :: existing)
      in
      let future_read = ref None in
      List.iter
        (fun u ->
          List.iter
            (fun w ->
              if u <> w then
                let ops_u = try Hashtbl.find ops_of u with Not_found -> [] in
                let ops_w = try Hashtbl.find ops_of w with Not_found -> [] in
                List.iter
                  (fun (r1 : History.record) ->
                    List.iter
                      (fun (r2 : History.record) ->
                        if precedes r1 r2 then
                          (* Conditions (2)-(5): any happens-before
                             between an op of u and an op of w forces
                             u < w in the value order. *)
                          add_edge u w (r1.id, r2.id))
                      ops_w)
                  ops_u)
            values)
        values;
      List.iter
        (fun v ->
          if v <> History.nil then add_edge History.nil v (-1, -1))
        values;
      (* Condition (5) with v = v': a read of v wholly before v's
         write. *)
      List.iter
        (fun (r : History.record) ->
          match (r.kind, r.status) with
          | History.Read, History.Returned v when v <> History.nil -> (
              match Hashtbl.find_opt writers v with
              | Some w when precedes r w ->
                  if !future_read = None then
                    future_read :=
                      Some
                        (Future_read
                           { read_op = r.id; write_op = w.id; value = v })
              | _ -> ())
          | _ -> ())
        records;
      match !future_read with
      | Some e -> Error e
      | None -> (
          (* Cycle detection: iterative DFS with colors. *)
          let color = Hashtbl.create 64 in
          (* 0 = white, 1 = grey, 2 = black *)
          let get_color v = try Hashtbl.find color v with Not_found -> 0 in
          let cycle = ref None in
          let rec dfs path v =
            match get_color v with
            | 1 ->
                (* Found a back edge; extract the cycle from the path. *)
                if !cycle = None then begin
                  let rec take acc = function
                    | [] -> acc
                    | (v', w) :: rest ->
                        if v' = v then (v', w) :: acc
                        else take ((v', w) :: acc) rest
                  in
                  cycle := Some (take [] path)
                end
            | 2 -> ()
            | _ ->
                Hashtbl.replace color v 1;
                List.iter
                  (fun (w, witness) ->
                    if !cycle = None then dfs ((v, witness) :: path) w)
                  (try Hashtbl.find edges v with Not_found -> []);
                Hashtbl.replace color v 2
          in
          List.iter (fun v -> if !cycle = None then dfs [] v) values;
          match !cycle with
          | None -> Ok ()
          | Some path ->
              Error
                (Cycle
                   {
                     values = List.map fst path;
                     ops = List.map snd path;
                   })))

let is_strictly_linearizable h = match strict h with Ok () -> true | Error _ -> false
