lib/simnet/net.ml: Array Dessim Hashtbl List Metrics Random
