lib/simnet/net.mli: Dessim Metrics
