(** Counters and summary statistics for the simulation harness.

    Table 1 of the paper accounts operations in four currencies:
    messages, network bandwidth (in block-size units), disk reads and
    disk writes. A {!Registry} holds named monotonic counters for
    those, and benchmarks measure an operation by snapshotting the
    registry before and after ({!Snapshot.diff}). *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:float -> t -> unit
  val value : t -> float
  val reset : t -> unit
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** [counter t name] returns the counter registered under [name],
      creating it on first use. The same name always yields the same
      counter. *)

  val incr : ?by:float -> t -> string -> unit
  (** [incr t name] bumps the named counter (creating it if needed). *)

  val value : t -> string -> float
  (** [value t name] is the counter's current value ([0.] if the name
      was never used). *)

  val names : t -> string list
  (** All registered names, sorted. *)

  val reset_all : t -> unit
end

module Snapshot : sig
  type t

  val take : Registry.t -> t
  val diff : before:t -> after:t -> (string * float) list
  (** [diff ~before ~after] lists counters whose value changed, with
      the increment, sorted by name. *)

  val get : t -> string -> float
  val to_list : t -> (string * float) list
end

module Summary : sig
  type t
  (** Streaming summary of a series of observations: count, mean,
      standard deviation (Welford), min, max; also keeps the raw values
      for exact percentiles (fine at simulation scale). *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100]; nearest-rank.
      @raise Invalid_argument on an empty summary or out-of-range [p]. *)

  val pp : Format.formatter -> t -> unit
end
