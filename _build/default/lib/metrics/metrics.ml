module Counter = struct
  type t = { mutable value : float }

  let create () = { value = 0. }
  let incr ?(by = 1.) t = t.value <- t.value +. by
  let value t = t.value
  let reset t = t.value <- 0.
end

module Registry = struct
  type t = (string, Counter.t) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let counter t name =
    match Hashtbl.find_opt t name with
    | Some c -> c
    | None ->
        let c = Counter.create () in
        Hashtbl.add t name c;
        c

  let incr ?by t name = Counter.incr ?by (counter t name)

  let value t name =
    match Hashtbl.find_opt t name with
    | Some c -> Counter.value c
    | None -> 0.

  let names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t []
    |> List.sort String.compare

  let reset_all t = Hashtbl.iter (fun _ c -> Counter.reset c) t
end

module Snapshot = struct
  type t = (string * float) list

  let take reg =
    List.map (fun name -> (name, Registry.value reg name)) (Registry.names reg)

  let get t name =
    match List.assoc_opt name t with Some v -> v | None -> 0.

  let to_list t = t

  let diff ~before ~after =
    let names =
      List.sort_uniq String.compare (List.map fst before @ List.map fst after)
    in
    List.filter_map
      (fun name ->
        let d = get after name -. get before name in
        if d <> 0. then Some (name, d) else None)
      names
end

module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable values : float list;
    mutable sorted : float array option;
  }

  let create () =
    {
      count = 0;
      mean = 0.;
      m2 = 0.;
      min = infinity;
      max = neg_infinity;
      values = [];
      sorted = None;
    }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.values <- x :: t.values;
    t.sorted <- None

  let count t = t.count
  let mean t = t.mean

  let stddev t =
    if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))

  let min t = t.min
  let max t = t.max

  let percentile t p =
    if t.count = 0 then invalid_arg "Metrics.Summary.percentile: empty";
    if p < 0. || p > 100. then
      invalid_arg "Metrics.Summary.percentile: p out of [0,100]";
    let sorted =
      match t.sorted with
      | Some a -> a
      | None ->
          let a = Array.of_list t.values in
          Array.sort compare a;
          t.sorted <- Some a;
          a
    in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int t.count)) - 1
    in
    sorted.(Stdlib.max 0 (Stdlib.min (t.count - 1) rank))

  let pp fmt t =
    if t.count = 0 then Format.fprintf fmt "(empty)"
    else
      Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
        t.count t.mean (stddev t) t.min (percentile t 50.) (percentile t 99.)
        t.max
end
