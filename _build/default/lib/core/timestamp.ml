type t = Low | Ts of { time : int; pid : int } | High

let low = Low
let high = High

let make ~time ~pid =
  if time < 0 then invalid_arg "Core.Timestamp.make: negative time";
  if pid < 0 then invalid_arg "Core.Timestamp.make: negative pid";
  Ts { time; pid }

let compare a b =
  match (a, b) with
  | Low, Low | High, High -> 0
  | Low, _ -> -1
  | _, Low -> 1
  | High, _ -> 1
  | _, High -> -1
  | Ts x, Ts y ->
      let c = Stdlib.compare x.time y.time in
      if c <> 0 then c else Stdlib.compare x.pid y.pid

let equal a b = compare a b = 0
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b

let to_string = function
  | Low -> "LowTS"
  | High -> "HighTS"
  | Ts { time; pid } -> Printf.sprintf "%d.%d" time pid

let pp fmt t = Format.pp_print_string fmt (to_string t)
