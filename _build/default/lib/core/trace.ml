let src = Logs.Src.create "fab.core" ~doc:"FAB storage-register protocol trace"

module Log = (val Logs.src_log src : Logs.LOG)

let enable_stderr ?(level = Logs.Debug) () =
  if Logs.reporter () == Logs.nop_reporter then
    Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src (Some level)

let replica_recv ~brick ~src:from msg =
  Log.debug (fun m -> m "[b%d] <- c%d %a" brick from Message.pp msg)

let replica_reply ~brick ~dst msg =
  Log.debug (fun m -> m "[b%d] -> c%d %a" brick dst Message.pp msg)

let op ~coord ~stripe name phase =
  Log.info (fun m ->
      m "[c%d/s%d] %s %s" coord stripe name
        (match phase with `Start -> "start" | `Ok -> "ok" | `Abort -> "ABORT"))
