(** Totally ordered timestamps (paper section 2.3).

    A timestamp is either one of the sentinels [LowTS] / [HighTS] or a
    pair of a time value and the issuing process id; the pid breaks
    ties, giving UNIQUENESS across processes. For every timestamp [t]
    returned by a clock, [low < t < high]. *)

type t =
  | Low  (** The paper's LowTS: smaller than every generated timestamp. *)
  | Ts of { time : int; pid : int }
  | High  (** The paper's HighTS: larger than every generated timestamp. *)

val low : t
val high : t

val make : time:int -> pid:int -> t
(** @raise Invalid_argument if [time < 0] or [pid < 0]. *)

val compare : t -> t -> int
(** Total order: [Low] < every [Ts] < [High]; [Ts] pairs are ordered
    lexicographically by time, then pid. *)

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val max : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
