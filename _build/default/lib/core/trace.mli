(** Protocol tracing on the [Logs] library.

    Disabled by default (the log source starts at level [None], so
    tracing costs one branch per event). Enable with
    {!enable_stderr} — or install any [Logs] reporter and set the
    {!src} level — to watch the protocol run:

    {v
    fab.core: [c3/s0] write-stripe start
    fab.core: [b1] <- c3 Order{s=0 ts=4.3}
    fab.core: [b1] -> c3 Order-R{true}
    ...
    v}

    The CLI exposes this as [fab_sim workload --trace]. *)

val src : Logs.src

val enable_stderr : ?level:Logs.level -> unit -> unit
(** Install a stderr reporter (if none is installed yet) and set the
    trace source to [level] (default [Debug]). *)

val replica_recv : brick:int -> src:int -> Message.t -> unit
(** A replica received (and is about to handle) a request. *)

val replica_reply : brick:int -> dst:int -> Message.t -> unit

val op :
  coord:int -> stripe:int -> string -> [ `Start | `Ok | `Abort ] -> unit
(** Coordinator-side operation lifecycle. *)
