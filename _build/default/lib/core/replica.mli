(** The replica side of the storage-register protocol: Algorithm 2's
    message handlers plus the [Modify] handler of Algorithm 3 and the
    garbage-collection handler of section 5.1.

    One replica runs on each brick and serves every stripe whose
    layout includes the brick. Per stripe it keeps the persistent
    state of section 4.2 — [ord-ts] (in NVRAM) and the versioned
    {!Slog} (on disk). That state survives crashes; while the brick is
    crashed the replica silently drops requests, and on recovery it
    resumes with its persistent state intact, which is all the
    algorithm needs (recovery is seamless — quorums simply start
    including the brick again).

    Handlers are idempotent: a retransmitted request whose timestamp
    has already been applied re-acknowledges success instead of
    refusing, so the fair-loss retransmission in {!Quorum.Rpc} cannot
    turn a slow network into spurious aborts. *)

type t

val create : Config.t -> brick:Brick.t -> t
(** Installs the RPC handler for the brick's address. *)

val brick : t -> Brick.t

(** {2 Introspection (tests, debugging, GC statistics)} *)

val ord_ts : t -> stripe:int -> Timestamp.t
val log : t -> stripe:int -> Slog.t option
(** [None] if the replica has never touched the stripe. *)

val stripes : t -> int list
val gc_removed : t -> int
(** Total log entries discarded by garbage collection so far. *)
