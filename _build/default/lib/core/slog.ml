module TsMap = Map.Make (struct
  type t = Timestamp.t

  let compare = Timestamp.compare
end)

type t = {
  block_size : int;
  mutable entries : Bytes.t option TsMap.t;
}

let create ~block_size =
  if block_size <= 0 then invalid_arg "Core.Slog.create: block_size <= 0";
  let nil = Bytes.make block_size '\000' in
  { block_size; entries = TsMap.singleton Timestamp.low (Some nil) }

let block_size t = t.block_size

let add t ts block =
  (match ts with
  | Timestamp.Low | Timestamp.High ->
      invalid_arg "Core.Slog.add: sentinel timestamp"
  | Timestamp.Ts _ -> ());
  (match block with
  | Some b when Bytes.length b <> t.block_size ->
      invalid_arg "Core.Slog.add: wrong block size"
  | Some _ | None -> ());
  if not (TsMap.mem ts t.entries) then
    t.entries <- TsMap.add ts block t.entries

let mem t ts = TsMap.mem ts t.entries
let find t ts = TsMap.find_opt ts t.entries

let max_ts t = fst (TsMap.max_binding t.entries)

let newest_real_below_or_at t bound =
  (* Newest non-bot entry with timestamp <= bound. *)
  let below, at, _ = TsMap.split bound t.entries in
  match at with
  | Some (Some b) -> Some (bound, b)
  | Some None | None ->
      let rec search m =
        if TsMap.is_empty m then None
        else
          let ts, block = TsMap.max_binding m in
          match block with
          | Some b -> Some (ts, b)
          | None -> search (TsMap.remove ts m)
      in
      search below

let max_block t =
  match newest_real_below_or_at t (max_ts t) with
  | Some (ts, b) -> (ts, b)
  | None ->
      (* The initial nil entry is non-bot and gc preserves the newest
         non-bot entry, so this is unreachable. *)
      assert false

let max_below t bound =
  let below, _, _ = TsMap.split bound t.entries in
  if TsMap.is_empty below then None
  else
    let lts, block = TsMap.max_binding below in
    match block with
    | Some b -> Some (lts, Some b)
    | None ->
        let content =
          match newest_real_below_or_at t lts with
          | Some (_, b) -> Some b
          | None -> None
        in
        Some (lts, content)

let gc t ~before =
  let newest = max_ts t in
  let newest_real = fst (max_block t) in
  let keep ts _ =
    Timestamp.( >= ) ts before
    || Timestamp.equal ts newest
    || Timestamp.equal ts newest_real
  in
  let kept = TsMap.filter keep t.entries in
  let removed = TsMap.cardinal t.entries - TsMap.cardinal kept in
  t.entries <- kept;
  removed

let size t = TsMap.cardinal t.entries

let entries t =
  TsMap.fold (fun ts b acc -> (ts, b) :: acc) t.entries []

let corrupt_newest t =
  let ts, block = max_block t in
  let copy = Bytes.copy block in
  Bytes.set copy 0 (Char.chr (Char.code (Bytes.get copy 0) lxor 0x40));
  t.entries <- TsMap.add ts (Some copy) t.entries
