lib/core/cluster.ml: Array Brick Clock Config Coordinator Dessim Erasure Message Metrics Quorum Replica Simnet
