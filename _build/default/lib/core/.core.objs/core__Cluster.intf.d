lib/core/cluster.mli: Brick Config Coordinator Dessim Message Metrics Quorum Replica Simnet
