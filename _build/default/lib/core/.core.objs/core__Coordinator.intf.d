lib/core/coordinator.mli: Brick Bytes Clock Config
