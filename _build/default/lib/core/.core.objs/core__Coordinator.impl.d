lib/core/coordinator.ml: Array Brick Bytes Clock Config Dessim Erasure List Message Option Quorum Random Result Timestamp Trace
