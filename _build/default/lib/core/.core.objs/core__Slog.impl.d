lib/core/slog.ml: Bytes Char Map Timestamp
