lib/core/config.ml: Array Dessim Erasure Message Metrics Quorum Simnet
