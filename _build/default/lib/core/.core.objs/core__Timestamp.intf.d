lib/core/timestamp.mli: Format
