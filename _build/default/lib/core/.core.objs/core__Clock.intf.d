lib/core/clock.mli: Dessim Timestamp
