lib/core/message.mli: Bytes Format Simnet Timestamp
