lib/core/trace.mli: Logs Message
