lib/core/timestamp.ml: Format Printf Stdlib
