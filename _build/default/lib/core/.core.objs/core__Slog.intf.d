lib/core/slog.mli: Bytes Timestamp
