lib/core/config.mli: Dessim Erasure Message Metrics Quorum Simnet
