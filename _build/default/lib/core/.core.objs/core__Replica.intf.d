lib/core/replica.mli: Brick Config Slog Timestamp
