lib/core/trace.ml: Logs Message
