lib/core/replica.ml: Array Brick Bytes Config Erasure Hashtbl List Message Option Quorum Slog Timestamp Trace
