lib/core/message.ml: Array Bytes Format List Simnet String Timestamp
