lib/core/clock.ml: Dessim Float Stdlib Timestamp
