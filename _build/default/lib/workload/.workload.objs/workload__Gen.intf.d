lib/workload/gen.mli: Random
