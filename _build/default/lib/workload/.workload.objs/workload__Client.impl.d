lib/workload/client.ml: Bytes Core Dessim Fab Gen Metrics Printf String
