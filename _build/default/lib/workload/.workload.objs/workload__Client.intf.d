lib/workload/client.mli: Fab Gen Metrics
