lib/workload/gen.ml: Array Float Option Random
