(** Synthetic block-workload generators.

    Stand-ins for the customer I/O traces the paper analyzed (which
    are proprietary): parameterized streams of block-level reads and
    writes whose address distribution, size distribution and
    read/write mix cover the regimes the paper discusses — the
    read-intensive web-server workloads erasure coding targets
    (section 1.2), sequential streams that produce full-stripe writes,
    and hot-spot patterns that stress stripe-level conflicts
    (section 3). *)

type addr_dist =
  | Uniform  (** Uniform over the volume. *)
  | Sequential  (** A sequential scan that wraps around. *)
  | Zipf of float
      (** [Zipf theta]: block popularity follows a Zipf law; higher
          [theta] is more skewed. *)
  | Hotspot of { fraction : float; weight : float }
      (** [fraction] of the address space absorbs [weight] of the
          accesses. *)

type spec = {
  read_fraction : float;  (** in [0, 1] *)
  addr : addr_dist;
  op_blocks : int;  (** blocks touched per operation *)
}

val web_server : spec
(** Read-intensive (95% reads), Zipf-skewed single-block accesses. *)

val oltp : spec
(** 2:1 read:write mix of single-block accesses, hot-spotted. *)

val backup : spec
(** Sequential full-volume read scan in stripe-sized chunks. *)

val ingest : spec
(** Sequential large writes (full-stripe writes when aligned). *)

type op = { kind : [ `Read | `Write ]; lba : int; count : int }

type t
(** A generator: a deterministic stream of operations. *)

val make : spec -> capacity_blocks:int -> rng:Random.State.t -> t
(** @raise Invalid_argument if the spec is malformed or the capacity
    is too small for [op_blocks]. *)

val next : t -> op
val spec : t -> spec
