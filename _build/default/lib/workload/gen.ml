type addr_dist =
  | Uniform
  | Sequential
  | Zipf of float
  | Hotspot of { fraction : float; weight : float }

type spec = {
  read_fraction : float;
  addr : addr_dist;
  op_blocks : int;
}

let web_server = { read_fraction = 0.95; addr = Zipf 0.99; op_blocks = 1 }

let oltp =
  {
    read_fraction = 0.66;
    addr = Hotspot { fraction = 0.1; weight = 0.9 };
    op_blocks = 1;
  }

let backup = { read_fraction = 1.0; addr = Sequential; op_blocks = 8 }
let ingest = { read_fraction = 0.0; addr = Sequential; op_blocks = 8 }

type op = { kind : [ `Read | `Write ]; lba : int; count : int }

type t = {
  spec : spec;
  capacity : int;
  rng : Random.State.t;
  mutable cursor : int;  (* for Sequential *)
  zipf_cdf : float array option;  (* cumulative weights over buckets *)
}

(* Zipf sampling over up to [buckets] equal address ranges: exact Zipf
   over millions of blocks is pointless for a simulator, and bucketing
   keeps setup O(buckets). *)
let zipf_buckets = 1024

let build_zipf theta capacity =
  let buckets = min zipf_buckets capacity in
  let w = Array.init buckets (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta) in
  let cdf = Array.make buckets 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      acc := !acc +. x;
      cdf.(i) <- !acc)
    w;
  let total = !acc in
  Array.map (fun x -> x /. total) cdf

let make spec ~capacity_blocks ~rng =
  if spec.read_fraction < 0. || spec.read_fraction > 1. then
    invalid_arg "Workload.Gen.make: read_fraction out of [0,1]";
  if spec.op_blocks < 1 || spec.op_blocks > capacity_blocks then
    invalid_arg "Workload.Gen.make: bad op_blocks";
  (match spec.addr with
  | Zipf theta when theta <= 0. -> invalid_arg "Workload.Gen.make: bad theta"
  | Hotspot { fraction; weight } ->
      if fraction <= 0. || fraction >= 1. || weight <= 0. || weight >= 1. then
        invalid_arg "Workload.Gen.make: bad hotspot"
  | _ -> ());
  {
    spec;
    capacity = capacity_blocks;
    rng;
    cursor = 0;
    zipf_cdf =
      (match spec.addr with
      | Zipf theta -> Some (build_zipf theta capacity_blocks)
      | _ -> None);
  }

let sample_addr t =
  let limit = t.capacity - t.spec.op_blocks + 1 in
  match t.spec.addr with
  | Uniform -> Random.State.int t.rng limit
  | Sequential ->
      let lba = t.cursor in
      t.cursor <- t.cursor + t.spec.op_blocks;
      if t.cursor >= limit then t.cursor <- 0;
      lba
  | Zipf _ ->
      let cdf = Option.get t.zipf_cdf in
      let u = Random.State.float t.rng 1.0 in
      (* Binary search for the bucket, then uniform within it. *)
      let lo = ref 0 and hi = ref (Array.length cdf - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) < u then lo := mid + 1 else hi := mid
      done;
      let buckets = Array.length cdf in
      let bucket_size = max 1 (t.capacity / buckets) in
      let base = !lo * bucket_size in
      min (limit - 1) (base + Random.State.int t.rng bucket_size)
  | Hotspot { fraction; weight } ->
      let hot_blocks = max 1 (int_of_float (fraction *. float_of_int limit)) in
      if Random.State.float t.rng 1.0 < weight then
        Random.State.int t.rng hot_blocks
      else hot_blocks + Random.State.int t.rng (max 1 (limit - hot_blocks))

let next t =
  let kind =
    if Random.State.float t.rng 1.0 < t.spec.read_fraction then `Read
    else `Write
  in
  let lba = min (sample_addr t) (t.capacity - t.spec.op_blocks) in
  { kind; lba; count = t.spec.op_blocks }

let spec t = t.spec
