(** Birth-death Markov chains for mean time to data loss.

    The standard redundancy-group model: [units] identical components
    fail independently at rate [lambda] and are repaired concurrently
    at rate [mu] each; data is lost the moment more than [tolerated]
    components are simultaneously failed. State [i] = number of failed
    components, absorbing state [tolerated + 1].

    {!mttdl} computes the exact expected absorption time from state 0
    by solving the tridiagonal linear system

    [T_i = 1/r_i + (lambda_i/r_i) T_(i+1) + (mu_i/r_i) T_(i-1)]

    with [lambda_i = (units - i) lambda], [mu_i = i mu],
    [r_i = lambda_i + mu_i], and [T_(tolerated+1) = 0]. *)

val mttdl : units:int -> tolerated:int -> lambda:float -> mu:float -> float
(** Expected hours (if rates are per hour) until more than [tolerated]
    of [units] components are down at once.
    @raise Invalid_argument if [units <= tolerated], [tolerated < 0],
    or a rate is non-positive. *)

val availability_approx :
  units:int -> tolerated:int -> lambda:float -> mu:float -> float
(** Steady-state probability that at most [tolerated] components are
    failed, from the truncated birth-death stationary distribution;
    used to sanity-check the chain and for the quorum-availability
    discussion. *)
