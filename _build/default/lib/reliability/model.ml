type brick_kind = R0 | R5 | Reliable_r5

type scheme = Striping | Replication of int | Erasure of int * int

let check_scheme = function
  | Striping -> ()
  | Replication k ->
      if k < 1 then invalid_arg "Reliability.Model: replication k < 1"
  | Erasure (m, n) ->
      if m < 1 || n <= m then invalid_arg "Reliability.Model: bad (m, n)"

let cross_overhead s =
  check_scheme s;
  match s with
  | Striping -> 1.
  | Replication k -> float_of_int k
  | Erasure (m, n) -> float_of_int n /. float_of_int m

let internal_overhead (p : Params.t) = function
  | R0 -> 1.
  | R5 | Reliable_r5 ->
      float_of_int p.Params.raid_group_size
      /. float_of_int (p.Params.raid_group_size - 1)

let storage_overhead p s k = cross_overhead s *. internal_overhead p k

(* Terminal data-loss rate of a single brick. An R0 brick dies with its
   first disk; an R5 brick dies when a RAID group loses a second disk
   before rebuilding, or when its chassis dies. *)
let brick_terminal_rate (p : Params.t) kind =
  let disk_mttf, chassis_mttf =
    match kind with
    | R0 | R5 -> (p.Params.disk_mttf_hours, p.Params.chassis_mttf_hours)
    | Reliable_r5 ->
        (p.Params.highend_disk_mttf_hours, p.Params.highend_chassis_mttf_hours)
  in
  let disk_rate = 1. /. disk_mttf in
  let chassis_rate = 1. /. chassis_mttf in
  match kind with
  | R0 -> (float_of_int p.Params.disks_per_brick *. disk_rate) +. chassis_rate
  | R5 | Reliable_r5 ->
      let g = p.Params.raid_group_size in
      let groups = p.Params.disks_per_brick / g in
      let group_loss_rate =
        1.
        /. Markov.mttdl ~units:g ~tolerated:1 ~lambda:disk_rate
             ~mu:(1. /. p.Params.disk_rebuild_hours)
      in
      (float_of_int (max 1 groups) *. group_loss_rate) +. chassis_rate

let brick_usable_tb p kind =
  Params.brick_raw_capacity_tb p /. internal_overhead p kind

let bricks_needed p s kind ~logical_tb =
  if logical_tb <= 0. then invalid_arg "Reliability.Model: capacity <= 0";
  let raw_needed = logical_tb *. cross_overhead s in
  int_of_float (ceil (raw_needed /. brick_usable_tb p kind))

let tolerated s =
  check_scheme s;
  match s with
  | Striping -> 0
  | Replication k -> k - 1
  | Erasure (m, n) -> n - m

let hours_per_year = 24. *. 365.25

(* ln C(n, k), computed in log space so subset counts never overflow. *)
let ln_choose n k =
  if k < 0 || k > n then neg_infinity
  else begin
    let lnfact x =
      let acc = ref 0. in
      for i = 2 to x do
        acc := !acc +. log (float_of_int i)
      done;
      !acc
    in
    lnfact n -. lnfact k -. lnfact (n - k)
  end

(* Fraction of (t+1)-subsets of the bricks whose simultaneous failure
   actually loses data. With group-granular placement, each of the G
   segment groups occupies one n-subset and exposes C(n, t+1) fatal
   (t+1)-subsets; replication (n = t+1) exposes exactly one per group,
   which is why figure 2 ranks k-way replication above E.C. with equal
   fault-tolerance. Once G C(n,t+1) reaches C(N,t+1) every combination
   is fatal and the fraction saturates at 1. *)
let fatal_fraction p s ~n_bricks ~logical_tb =
  let t = tolerated s in
  if t = 0 then 1.
  else
    let n_per_group =
      match s with
      | Striping -> 1
      | Replication k -> k
      | Erasure (_, n) -> n
    in
    let m_per_group = match s with Erasure (m, _) -> m | _ -> 1 in
    let group_logical_gb = float_of_int m_per_group *. p.Params.segment_gb in
    let groups = logical_tb *. 1024. /. group_logical_gb in
    let ln_fatal =
      log groups +. ln_choose n_per_group (t + 1)
    in
    let ln_total = ln_choose n_bricks (t + 1) in
    if ln_fatal >= ln_total then 1. else exp (ln_fatal -. ln_total)

let mttdl_years p s kind ~logical_tb =
  let t = tolerated s in
  let n_bricks = max (t + 1) (bricks_needed p s kind ~logical_tb) in
  let lambda = brick_terminal_rate p kind in
  let mu = 1. /. p.Params.brick_repair_hours in
  let base = Markov.mttdl ~units:n_bricks ~tolerated:t ~lambda ~mu in
  let frac = fatal_fraction p s ~n_bricks ~logical_tb in
  base /. frac /. hours_per_year

let pp_scheme fmt = function
  | Striping -> Format.pp_print_string fmt "striping"
  | Replication k -> Format.fprintf fmt "%d-way replication" k
  | Erasure (m, n) -> Format.fprintf fmt "E.C.(%d,%d)" m n

let pp_brick_kind fmt = function
  | R0 -> Format.pp_print_string fmt "R0 bricks"
  | R5 -> Format.pp_print_string fmt "R5 bricks"
  | Reliable_r5 -> Format.pp_print_string fmt "reliable R5 bricks"
