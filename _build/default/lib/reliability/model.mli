(** System-level MTTDL and storage overhead for the redundancy schemes
    the paper compares (section 1.2, figures 2 and 3).

    The model follows the paper's argument: with data randomly striped
    across all bricks, a system of [n_bricks] bricks using a scheme
    that survives [tolerated] concurrent brick failures loses data as
    soon as [tolerated + 1] bricks are simultaneously dead — with many
    stripes, every failure combination hits some stripe. System MTTDL
    is therefore the absorption time of the brick-level Markov chain
    over the whole system. Brick-internal redundancy (RAID-0 vs
    RAID-5) changes the rate at which a brick {e terminally} loses its
    data. *)

type brick_kind =
  | R0  (** Brick stripes internally without redundancy. *)
  | R5  (** Brick uses internal RAID-5 groups. *)
  | Reliable_r5
      (** Conventional high-end array: RAID-5 internals built from
          high-MTTF components (the striping baseline of figure 2). *)

type scheme =
  | Striping  (** No redundancy across bricks. *)
  | Replication of int  (** [Replication k]: k-way mirroring. *)
  | Erasure of int * int  (** [Erasure (m, n)]: m-of-n coding. *)

val cross_overhead : scheme -> float
(** Raw-to-logical capacity ratio across bricks: 1, k, or n/m. *)

val internal_overhead : Params.t -> brick_kind -> float
(** Within-brick overhead: 1 for R0, (g+1)/g for RAID-5 groups. *)

val storage_overhead : Params.t -> scheme -> brick_kind -> float
(** Total raw capacity consumed per byte of logical capacity. *)

val brick_terminal_rate : Params.t -> brick_kind -> float
(** Rate (per hour) at which one brick permanently loses its data:
    internal-array data loss plus chassis loss. *)

val bricks_needed :
  Params.t -> scheme -> brick_kind -> logical_tb:float -> int
(** Number of bricks to provide [logical_tb] of logical capacity. *)

val tolerated : scheme -> int
(** Concurrent brick failures survived: 0, k-1, or n-m. *)

val mttdl_years :
  Params.t -> scheme -> brick_kind -> logical_tb:float -> float
(** System mean time to data loss in years. *)

val pp_scheme : Format.formatter -> scheme -> unit
val pp_brick_kind : Format.formatter -> brick_kind -> unit
