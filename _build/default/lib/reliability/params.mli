(** Component reliability and capacity constants for the MTTDL model
    (paper section 1.2, figures 2 and 3).

    The paper extrapolates brick reliability from the component data
    in Asami's thesis [3], which is not reproduced in the paper; these
    are public ball-park constants in the same regime (circa-2004
    commodity hardware), declared in one place so the sensitivity of
    every figure to them is explicit. The reproduced figures preserve
    orderings, scaling trends and crossovers rather than absolute
    years — see EXPERIMENTS.md. *)

type t = {
  disk_mttf_hours : float;  (** MTTF of one commodity disk. *)
  highend_disk_mttf_hours : float;
      (** Disks in the conventional high-end arrays of the striping
          baseline. *)
  chassis_mttf_hours : float;
      (** Non-disk brick hardware (controller, PSU, backplane) whose
          failure loses the brick's data. *)
  highend_chassis_mttf_hours : float;
  disks_per_brick : int;
  disk_capacity_tb : float;
  raid_group_size : int;
      (** Disks per internal RAID-5 group (g data + 1 parity = g+1
          disks), giving the paper's 1.25 internal overhead with 4+1. *)
  disk_rebuild_hours : float;  (** Internal RAID-5 rebuild time. *)
  brick_repair_hours : float;
      (** Time to replace a dead brick and re-populate it from peers. *)
  segment_gb : float;
      (** Placement granularity: logical blocks are grouped into
          segments and each segment group of [n] segments is placed on
          a random brick subset; determines how many distinct brick
          subsets actually hold data (figure 2's combination
          counting). *)
}

val default : t

val brick_raw_capacity_tb : t -> float

val pp : Format.formatter -> t -> unit
