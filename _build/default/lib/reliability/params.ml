type t = {
  disk_mttf_hours : float;
  highend_disk_mttf_hours : float;
  chassis_mttf_hours : float;
  highend_chassis_mttf_hours : float;
  disks_per_brick : int;
  disk_capacity_tb : float;
  raid_group_size : int;
  disk_rebuild_hours : float;
  brick_repair_hours : float;
  segment_gb : float;
}

let default =
  {
    disk_mttf_hours = 500_000.;
    highend_disk_mttf_hours = 1_500_000.;
    chassis_mttf_hours = 2_000_000.;
    highend_chassis_mttf_hours = 10_000_000.;
    disks_per_brick = 12;
    disk_capacity_tb = 0.25;
    raid_group_size = 5;
    disk_rebuild_hours = 8.;
    brick_repair_hours = 12.;
    segment_gb = 0.25;
  }

let brick_raw_capacity_tb t = float_of_int t.disks_per_brick *. t.disk_capacity_tb

let pp fmt t =
  Format.fprintf fmt
    "disk MTTF %.0fh, chassis MTTF %.0fh, %d disks/brick x %.2fTB, RAID \
     group %d, rebuild %.0fh, brick repair %.0fh"
    t.disk_mttf_hours t.chassis_mttf_hours t.disks_per_brick
    t.disk_capacity_tb t.raid_group_size t.disk_rebuild_hours
    t.brick_repair_hours
