let check ~units ~tolerated ~lambda ~mu =
  if tolerated < 0 then invalid_arg "Reliability.Markov: tolerated < 0";
  if units <= tolerated then
    invalid_arg "Reliability.Markov: units <= tolerated (no loss possible)";
  if lambda <= 0. || mu <= 0. then
    invalid_arg "Reliability.Markov: rates must be positive"

(* Exact expected absorption time via the classical birth-death
   formula, whose terms are all positive (Gaussian elimination on this
   system suffers catastrophic cancellation when mu >> lambda):

     T_0 = sum_(j=0)^(k)  (sum_(i=0)^(j) pi_i) / (lambda_j pi_j)

   with pi_0 = 1 and pi_i = prod_(l<i) lambda_l / mu_(l+1). *)
let mttdl ~units ~tolerated ~lambda ~mu =
  check ~units ~tolerated ~lambda ~mu;
  let k = tolerated in
  let nf = float_of_int units in
  let lam i = (nf -. float_of_int i) *. lambda in
  let mu_i i = float_of_int i *. mu in
  let pi = Array.make (k + 1) 1. in
  for i = 1 to k do
    pi.(i) <- pi.(i - 1) *. lam (i - 1) /. mu_i i
  done;
  let total = ref 0. and prefix = ref 0. in
  for j = 0 to k do
    prefix := !prefix +. pi.(j);
    total := !total +. (!prefix /. (lam j *. pi.(j)))
  done;
  !total

let availability_approx ~units ~tolerated ~lambda ~mu =
  check ~units ~tolerated ~lambda ~mu;
  (* Stationary distribution of the birth-death chain truncated at
     units failures: pi_i proportional to prod_(j<i) lambda_j / mu_(j+1). *)
  let nf = float_of_int units in
  let weights = Array.make (units + 1) 1. in
  for i = 1 to units do
    let lam = (nf -. float_of_int (i - 1)) *. lambda in
    let rep = float_of_int i *. mu in
    weights.(i) <- weights.(i - 1) *. lam /. rep
  done;
  let total = Array.fold_left ( +. ) 0. weights in
  let ok = ref 0. in
  for i = 0 to min tolerated units do
    ok := !ok +. weights.(i)
  done;
  !ok /. total
