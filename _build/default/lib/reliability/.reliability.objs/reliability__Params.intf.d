lib/reliability/params.mli: Format
