lib/reliability/model.ml: Format Markov Params
