lib/reliability/model.mli: Format Params
