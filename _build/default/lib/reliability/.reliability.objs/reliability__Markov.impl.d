lib/reliability/markov.ml: Array
