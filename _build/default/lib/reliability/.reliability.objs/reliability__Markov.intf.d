lib/reliability/markov.mli:
