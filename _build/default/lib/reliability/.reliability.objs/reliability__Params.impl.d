lib/reliability/params.ml: Format
