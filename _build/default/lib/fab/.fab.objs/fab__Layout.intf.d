lib/fab/layout.mli: Format Simnet
