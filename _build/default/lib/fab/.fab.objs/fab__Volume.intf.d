lib/fab/volume.mli: Bytes Core Layout Simnet
