lib/fab/volume.ml: Array Bytes Core Dessim Layout List
