lib/fab/pool.mli: Core Layout Simnet Volume
