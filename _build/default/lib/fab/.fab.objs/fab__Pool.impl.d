lib/fab/pool.ml: Core Dessim Erasure Layout List Option Printf Quorum String Volume
