lib/fab/layout.ml: Array Format Fun Int64
