type kind = Fixed | Rotating | Random of int

(* splitmix64: a small, high-quality deterministic mixer so that the
   random layout is a pure function of (seed, stripe, position). *)
let splitmix64 state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let shuffled_prefix ~seed ~stripe ~bricks ~n =
  let arr = Array.init bricks Fun.id in
  let state = ref (Int64.of_int ((seed * 0x1000003) lxor stripe)) in
  let next_int bound =
    state := splitmix64 !state;
    Int64.to_int (Int64.unsigned_rem !state (Int64.of_int bound))
  in
  (* Fisher-Yates over the first n slots is enough. *)
  for i = 0 to n - 1 do
    let j = i + next_int (bricks - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.sub arr 0 n

let make kind ~bricks ~n =
  if n > bricks then invalid_arg "Fab.Layout.make: n > bricks";
  match kind with
  | Fixed ->
      if bricks <> n then invalid_arg "Fab.Layout.make: Fixed needs bricks = n";
      fun _ -> Array.init n Fun.id
  | Rotating -> fun stripe -> Array.init n (fun i -> (stripe + i) mod bricks)
  | Random seed -> fun stripe -> shuffled_prefix ~seed ~stripe ~bricks ~n

let pp_kind fmt = function
  | Fixed -> Format.pp_print_string fmt "fixed"
  | Rotating -> Format.pp_print_string fmt "rotating"
  | Random seed -> Format.fprintf fmt "random(seed=%d)" seed
