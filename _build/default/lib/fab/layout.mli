(** Data-layout schemes: which bricks store the n blocks of each
    stripe (paper sections 1.1 and 3).

    Spreading consecutive stripes over different brick subsets both
    balances load and makes stripe-level conflicts between unrelated
    logical blocks unlikely (section 3's layout remark). All schemes
    are deterministic functions of the stripe number, mirroring FAB's
    replicated layout tables: every brick can compute every stripe's
    members locally. *)

type kind =
  | Fixed
      (** Stripe [s] always uses bricks [0 .. n-1]; requires
          [bricks = n]. The layout used for single-register tests. *)
  | Rotating
      (** Stripe [s] uses bricks [(s + i) mod bricks]; parity roles
          rotate across bricks like RAID-5 left-symmetric layout. *)
  | Random of int
      (** Seeded pseudo-random placement: stripe [s] uses a uniformly
          shuffled [n]-subset of the bricks, matching the "random data
          striping" assumed by the paper's reliability analysis. *)

val make : kind -> bricks:int -> n:int -> int -> Simnet.Net.addr array
(** [make kind ~bricks ~n] is the layout function: [stripe -> members].
    Index [i] of the result stores encoded block [i].
    @raise Invalid_argument if [n > bricks], or [Fixed] with
    [bricks <> n]. *)

val pp_kind : Format.formatter -> kind -> unit
