lib/erasure/codec.mli: Bytes Format Gf256
