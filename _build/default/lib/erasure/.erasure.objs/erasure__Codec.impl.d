lib/erasure/codec.ml: Array Bytes Format Gf256 List Printf
