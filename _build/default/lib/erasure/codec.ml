(* Systematic m-of-n erasure codes over GF(2^8).

   A codec is a full n x m generator matrix whose top m x m block is the
   identity. The MDS property (any m rows invertible) is guaranteed by
   construction: the parity rows form a Cauchy matrix (rs), a row of
   ones (parity, replication), and in both cases every mixed selection
   of identity and parity rows stays invertible. *)

module F = Gf256.Field
module M = Gf256.Matrix

type kind = Rs | Parity | Replication

type t = { kind : kind; m : int; n : int; gen : M.t }

let m t = t.m
let n t = t.n

let coeff t ~row ~col =
  if row < 0 || row >= t.n || col < 0 || col >= t.m then
    invalid_arg "Erasure.Codec.coeff: index out of range";
  M.get t.gen row col

let systematic_generator ~m ~n parity_row =
  M.init ~rows:n ~cols:m (fun r c ->
      if r < m then if r = c then 1 else 0 else parity_row (r - m) c)

let rs ~m ~n =
  if m < 1 || n <= m || n > 256 then
    invalid_arg "Erasure.Codec.rs: need 1 <= m < n <= 256";
  (* xs indexes parity rows, ys indexes data columns; the two index sets
     are disjoint subsets of GF(256), so the Cauchy matrix is defined. *)
  let xs = Array.init (n - m) (fun i -> m + i) in
  let ys = Array.init m (fun j -> j) in
  let c = M.cauchy ~xs ~ys in
  { kind = Rs; m; n; gen = systematic_generator ~m ~n (M.get c) }

let parity ~m =
  if m < 1 then invalid_arg "Erasure.Codec.parity: need m >= 1";
  let n = m + 1 in
  { kind = Parity; m; n; gen = systematic_generator ~m ~n (fun _ _ -> 1) }

let replication ~n =
  if n < 2 then invalid_arg "Erasure.Codec.replication: need n >= 2";
  { kind = Replication; m = 1; n;
    gen = systematic_generator ~m:1 ~n (fun _ _ -> 1) }

let check_stripe t stripe =
  if Array.length stripe <> t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.encode: expected %d blocks, got %d" t.m
         (Array.length stripe));
  let len = Bytes.length stripe.(0) in
  if len = 0 then invalid_arg "Erasure.Codec.encode: empty blocks";
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.encode: block size mismatch")
    stripe;
  len

let encode t stripe =
  let len = check_stripe t stripe in
  Array.init t.n (fun r ->
      if r < t.m then Bytes.copy stripe.(r)
      else begin
        let out = Bytes.make len '\000' in
        for c = 0 to t.m - 1 do
          F.mul_slice ~dst:out ~src:stripe.(c) (M.get t.gen r c)
        done;
        out
      end)

let check_indexed_blocks t blocks =
  if List.length blocks <> t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.decode: expected %d blocks, got %d" t.m
         (List.length blocks));
  let len = Bytes.length (snd (List.hd blocks)) in
  if len = 0 then invalid_arg "Erasure.Codec.decode: empty blocks";
  let seen = Array.make t.n false in
  List.iter
    (fun (idx, b) ->
      if idx < 0 || idx >= t.n then
        invalid_arg "Erasure.Codec.decode: index out of range";
      if seen.(idx) then invalid_arg "Erasure.Codec.decode: duplicate index";
      seen.(idx) <- true;
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.decode: block size mismatch")
    blocks;
  len

let decode t blocks =
  let len = check_indexed_blocks t blocks in
  let idxs = List.map fst blocks in
  let sub = M.sub_rows t.gen idxs in
  match M.invert sub with
  | None ->
      (* Impossible for our MDS constructions; defensive. *)
      invalid_arg "Erasure.Codec.decode: singular submatrix"
  | Some inv ->
      let srcs = Array.of_list (List.map snd blocks) in
      Array.init t.m (fun r ->
          let out = Bytes.make len '\000' in
          for k = 0 to t.m - 1 do
            F.mul_slice ~dst:out ~src:srcs.(k) (M.get inv r k)
          done;
          out)

let delta ~old_data ~new_data =
  let len = Bytes.length old_data in
  if Bytes.length new_data <> len then
    invalid_arg "Erasure.Codec.delta: size mismatch";
  let d = Bytes.copy new_data in
  F.mul_slice ~dst:d ~src:old_data 1;
  d

let apply_delta t ~data_idx ~parity_idx ~delta ~old_parity =
  if data_idx < 0 || data_idx >= t.m then
    invalid_arg "Erasure.Codec.apply_delta: data_idx out of range";
  if parity_idx < 0 || parity_idx >= t.n - t.m then
    invalid_arg "Erasure.Codec.apply_delta: parity_idx out of range";
  if Bytes.length delta <> Bytes.length old_parity then
    invalid_arg "Erasure.Codec.apply_delta: size mismatch";
  let out = Bytes.copy old_parity in
  F.mul_slice ~dst:out ~src:delta (M.get t.gen (t.m + parity_idx) data_idx);
  out

let modify t ~data_idx ~parity_idx ~old_data ~new_data ~old_parity =
  apply_delta t ~data_idx ~parity_idx ~delta:(delta ~old_data ~new_data)
    ~old_parity

let reconstruct_block t ~idx blocks =
  if idx < 0 || idx >= t.n then
    invalid_arg "Erasure.Codec.reconstruct_block: index out of range";
  let data = decode t blocks in
  if idx < t.m then data.(idx)
  else begin
    let len = Bytes.length data.(0) in
    let out = Bytes.make len '\000' in
    for c = 0 to t.m - 1 do
      F.mul_slice ~dst:out ~src:data.(c) (M.get t.gen idx c)
    done;
    out
  end

let pp fmt t =
  let name =
    match t.kind with
    | Rs -> "rs"
    | Parity -> "parity"
    | Replication -> "replication"
  in
  Format.fprintf fmt "%s(%d,%d)" name t.m t.n
