exception Cancelled

type 'a resumer = {
  mutable state : 'a state;
}

and 'a state =
  | Waiting of ('a, unit) Effect.Deep.continuation
  | Dead

type _ Effect.t += Suspend : ('a resumer -> unit) -> 'a Effect.t

let handler : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc =
      (fun exn ->
        match exn with Cancelled -> () | _ -> raise exn);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let r = { state = Waiting k } in
                register r)
        | _ -> None);
  }

let spawn f = Effect.Deep.match_with f () handler

let suspend register = Effect.perform (Suspend register)

let resume r v =
  match r.state with
  | Dead -> ()
  | Waiting k ->
      r.state <- Dead;
      Effect.Deep.continue k v

let cancel r =
  match r.state with
  | Dead -> ()
  | Waiting k ->
      r.state <- Dead;
      Effect.Deep.discontinue k Cancelled

let is_live r = match r.state with Waiting _ -> true | Dead -> false
