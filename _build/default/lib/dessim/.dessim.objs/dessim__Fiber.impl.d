lib/dessim/fiber.ml: Effect
