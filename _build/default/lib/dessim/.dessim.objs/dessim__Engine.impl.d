lib/dessim/engine.ml: Array List Option Random
