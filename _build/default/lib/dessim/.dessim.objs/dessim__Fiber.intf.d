lib/dessim/fiber.mli:
