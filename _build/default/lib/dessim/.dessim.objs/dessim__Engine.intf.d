lib/dessim/engine.mli: Random
