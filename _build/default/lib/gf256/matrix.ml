(* Row-major dense matrices over GF(2^8). *)

type t = { rows : int; cols : int; data : int array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Gf256.Matrix.create: bad shape";
  { rows; cols; data = Array.make (rows * cols) 0 }

let rows a = a.rows
let cols a = a.cols

let check_bounds a r c =
  if r < 0 || r >= a.rows || c < 0 || c >= a.cols then
    invalid_arg
      (Printf.sprintf "Gf256.Matrix: index (%d,%d) out of %dx%d" r c a.rows
         a.cols)

let get a r c =
  check_bounds a r c;
  a.data.((r * a.cols) + c)

let set a r c v =
  check_bounds a r c;
  Field.check_element v;
  a.data.((r * a.cols) + c) <- v

let init ~rows ~cols f =
  let a = create ~rows ~cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      set a r c (f r c)
    done
  done;
  a

let identity n = init ~rows:n ~cols:n (fun r c -> if r = c then 1 else 0)
let copy a = { a with data = Array.copy a.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Gf256.Matrix.mul: shape mismatch";
  init ~rows:a.rows ~cols:b.cols (fun r c ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc :=
          Field.add !acc
            (Field.mul a.data.((r * a.cols) + k) b.data.((k * b.cols) + c))
      done;
      !acc)

let mul_vec a v =
  if a.cols <> Array.length v then
    invalid_arg "Gf256.Matrix.mul_vec: shape mismatch";
  Array.init a.rows (fun r ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc := Field.add !acc (Field.mul a.data.((r * a.cols) + k) v.(k))
      done;
      !acc)

let sub_rows a rs =
  let nrows = List.length rs in
  if nrows = 0 then invalid_arg "Gf256.Matrix.sub_rows: empty selection";
  let b = create ~rows:nrows ~cols:a.cols in
  List.iteri
    (fun i r ->
      check_bounds a r 0;
      Array.blit a.data (r * a.cols) b.data (i * a.cols) a.cols)
    rs;
  b

(* Gauss-Jordan elimination with partial pivoting (any non-zero pivot
   works over a field; we take the first). Works on [a | I] in place. *)
let invert a =
  if a.rows <> a.cols then invalid_arg "Gf256.Matrix.invert: not square";
  let n = a.rows in
  let w = copy a in
  let inv = identity n in
  let swap_rows m r1 r2 =
    if r1 <> r2 then
      for c = 0 to n - 1 do
        let t = m.data.((r1 * n) + c) in
        m.data.((r1 * n) + c) <- m.data.((r2 * n) + c);
        m.data.((r2 * n) + c) <- t
      done
  in
  let exception Singular in
  try
    for col = 0 to n - 1 do
      (* Find a pivot at or below the diagonal. *)
      let pivot = ref (-1) in
      (try
         for r = col to n - 1 do
           if w.data.((r * n) + col) <> 0 then begin
             pivot := r;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot < 0 then raise Singular;
      swap_rows w col !pivot;
      swap_rows inv col !pivot;
      (* Scale the pivot row to put 1 on the diagonal. *)
      let p = w.data.((col * n) + col) in
      let pinv = Field.inv p in
      for c = 0 to n - 1 do
        w.data.((col * n) + c) <- Field.mul w.data.((col * n) + c) pinv;
        inv.data.((col * n) + c) <- Field.mul inv.data.((col * n) + c) pinv
      done;
      (* Eliminate the column everywhere else. *)
      for r = 0 to n - 1 do
        if r <> col then begin
          let factor = w.data.((r * n) + col) in
          if factor <> 0 then
            for c = 0 to n - 1 do
              w.data.((r * n) + c) <-
                Field.add
                  w.data.((r * n) + c)
                  (Field.mul factor w.data.((col * n) + c));
              inv.data.((r * n) + c) <-
                Field.add
                  inv.data.((r * n) + c)
                  (Field.mul factor inv.data.((col * n) + c))
            done
        end
      done
    done;
    Some inv
  with Singular -> None

let vandermonde ~rows ~cols =
  if rows > 256 then invalid_arg "Gf256.Matrix.vandermonde: rows > 256";
  init ~rows ~cols (fun r c -> Field.pow r c)

let cauchy ~xs ~ys =
  let rows = Array.length xs and cols = Array.length ys in
  init ~rows ~cols (fun r c ->
      let d = Field.add xs.(r) ys.(c) in
      if d = 0 then
        invalid_arg "Gf256.Matrix.cauchy: xs and ys are not disjoint";
      Field.inv d)

let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data

let pp fmt a =
  Format.fprintf fmt "@[<v>";
  for r = 0 to a.rows - 1 do
    Format.fprintf fmt "@[<h>";
    for c = 0 to a.cols - 1 do
      Format.fprintf fmt "%3d " a.data.((r * a.cols) + c)
    done;
    Format.fprintf fmt "@]@,"
  done;
  Format.fprintf fmt "@]"
