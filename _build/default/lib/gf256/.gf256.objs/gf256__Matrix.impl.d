lib/gf256/matrix.ml: Array Field Format List Printf
