lib/gf256/field.mli: Bytes
