lib/gf256/field.ml: Array Bytes Char Printf
