lib/gf256/matrix.mli: Field Format
