(** Dense matrices over GF(2^8).

    Used to build and invert erasure-code generator matrices. Matrices
    are small (at most [n x m] for an m-of-n code), so the simple
    row-major representation and cubic Gaussian elimination are fine. *)

type t
(** A matrix over GF(2^8); immutable from the outside. *)

val create : rows:int -> cols:int -> t
(** [create ~rows ~cols] is the all-zero matrix of the given shape.
    @raise Invalid_argument if a dimension is non-positive. *)

val init : rows:int -> cols:int -> (int -> int -> Field.t) -> t
(** [init ~rows ~cols f] fills position [(r, c)] with [f r c]. *)

val identity : int -> t
(** [identity n] is the [n x n] identity matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Field.t
(** [get a r c] is the element at row [r], column [c].
    @raise Invalid_argument on out-of-range indices. *)

val set : t -> int -> int -> Field.t -> unit
(** [set a r c v] writes element [(r, c)]. Exposed for construction
    code; library users should treat matrices as immutable. *)

val copy : t -> t

val mul : t -> t -> t
(** [mul a b] is the matrix product.
    @raise Invalid_argument if the inner dimensions disagree. *)

val mul_vec : t -> Field.t array -> Field.t array
(** [mul_vec a v] is the matrix-vector product.
    @raise Invalid_argument if [cols a <> Array.length v]. *)

val sub_rows : t -> int list -> t
(** [sub_rows a rs] is the matrix made of the rows of [a] listed in
    [rs], in order. *)

val invert : t -> t option
(** [invert a] is the inverse of square matrix [a], or [None] if [a] is
    singular.
    @raise Invalid_argument if [a] is not square. *)

val vandermonde : rows:int -> cols:int -> t
(** [vandermonde ~rows ~cols] has element [(r, c)] equal to [r^c]; every
    square submatrix formed from distinct rows is invertible as long as
    [rows <= 256]. *)

val cauchy : xs:Field.t array -> ys:Field.t array -> t
(** [cauchy ~xs ~ys] is the Cauchy matrix with element
    [(i, j) = 1 / (xs.(i) + ys.(j))]. All [xs] and [ys] together must be
    pairwise distinct; every square submatrix of a Cauchy matrix is
    invertible, which is what makes it suitable for MDS code
    construction.
    @raise Invalid_argument if an [x] equals a [y] (division by zero). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Pretty-printer, for debugging and test failure messages. *)
