(* GF(2^8) arithmetic with the primitive polynomial 0x11d.

   The tables are built once at module initialization: [exp.(i)] holds
   2^i for i in [0, 509] (doubled so that [exp.(log a + log b)] needs no
   modular reduction), and [log.(a)] holds the discrete log of [a] for
   a in [1, 255]. *)

type t = int

let zero = 0
let one = 1

let field_size = 256
let primitive_poly = 0x11d

let exp = Array.make (2 * (field_size - 1)) 0
let log = Array.make field_size 0

let () =
  let x = ref 1 in
  for i = 0 to field_size - 2 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor primitive_poly
  done;
  for i = field_size - 1 to (2 * (field_size - 1)) - 1 do
    exp.(i) <- exp.(i - (field_size - 1))
  done

let check_element a =
  if a < 0 || a > 255 then
    invalid_arg (Printf.sprintf "Gf256.Field: element %d out of range" a)

let add a b = a lxor b
let sub = add

let mul a b = if a = 0 || b = 0 then 0 else exp.(log.(a) + log.(b))

let inv a =
  if a = 0 then raise Division_by_zero else exp.(field_size - 1 - log.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp.(log.(a) + (field_size - 1) - log.(b))

let pow a k =
  if k < 0 then invalid_arg "Gf256.Field.pow: negative exponent";
  if k = 0 then 1
  else if a = 0 then 0
  else exp.(log.(a) * k mod (field_size - 1))

let exp_table i =
  if i < 0 then invalid_arg "Gf256.Field.exp_table: negative index";
  exp.(i mod (field_size - 1))

let log_table a =
  if a = 0 then invalid_arg "Gf256.Field.log_table: log of zero";
  log.(a)

(* The slice operations special-case c = 0 and c = 1: both are common in
   systematic generator matrices and skipping the table lookups there
   roughly halves encode cost for parity rows containing identities. *)

let mul_slice ~dst ~src c =
  let len = Bytes.length src in
  if Bytes.length dst <> len then
    invalid_arg "Gf256.Field.mul_slice: length mismatch";
  if c = 0 then ()
  else if c = 1 then
    for i = 0 to len - 1 do
      Bytes.unsafe_set dst i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get dst i)
           lxor Char.code (Bytes.unsafe_get src i)))
    done
  else
    let lc = log.(c) in
    for i = 0 to len - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      if s <> 0 then
        Bytes.unsafe_set dst i
          (Char.unsafe_chr
             (Char.code (Bytes.unsafe_get dst i) lxor exp.(lc + log.(s))))
    done

let mul_slice_set ~dst ~src c =
  let len = Bytes.length src in
  if Bytes.length dst <> len then
    invalid_arg "Gf256.Field.mul_slice_set: length mismatch";
  if c = 0 then Bytes.fill dst 0 len '\000'
  else if c = 1 then Bytes.blit src 0 dst 0 len
  else
    let lc = log.(c) in
    for i = 0 to len - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      Bytes.unsafe_set dst i
        (if s = 0 then '\000' else Char.unsafe_chr exp.(lc + log.(s)))
    done
