(* fab_sim: command-line front end to the FAB simulator.

   Subcommands:
     workload  - run a synthetic workload against a simulated volume
     mttdl     - reliability (figure 2/3 style) tables
     quorum    - m-quorum system parameters for a code geometry

   Examples:
     fab_sim workload -m 5 -n 8 --clients 4 --ops 500 --profile web
     fab_sim workload -m 1 -n 3 --drop 0.1 --profile oltp
     fab_sim mttdl --capacity 256
     fab_sim quorum -m 5 -n 8 *)

open Cmdliner

(* ---------------- workload ---------------- *)

let profile_conv =
  let parse = function
    | "web" -> Ok Workload.Gen.web_server
    | "oltp" -> Ok Workload.Gen.oltp
    | "backup" -> Ok Workload.Gen.backup
    | "ingest" -> Ok Workload.Gen.ingest
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S" s))
  in
  let print fmt (spec : Workload.Gen.spec) =
    Format.fprintf fmt "profile(read=%.2f)" spec.Workload.Gen.read_fraction
  in
  Arg.conv (parse, print)

let run_workload m n bricks stripes block_size clients ops profile drop seed
    optimized trace =
  if m < 1 || n <= m then `Error (false, "need 1 <= m < n")
  else begin
    if trace then Core.Trace.enable_stderr ();
    let volume =
      Fab.Volume.create ~m ~n
        ?bricks:(if bricks = 0 then None else Some bricks)
        ~stripes ~block_size ~seed ~optimized_modify:optimized
        ~net_config:{ Simnet.Net.default_config with drop }
        ()
    in
    let cluster = Fab.Volume.cluster volume in
    let nbricks = Array.length cluster.Core.Cluster.bricks in
    Printf.printf
      "volume: %d-of-%d code, %d bricks, %d stripes, %dB blocks, drop=%.2f\n"
      m n nbricks stripes block_size drop;
    let stats = Array.init clients (fun _ -> Workload.Client.fresh_stats ()) in
    let started = Dessim.Engine.now cluster.Core.Cluster.engine in
    for c = 0 to clients - 1 do
      let gen =
        Workload.Gen.make profile
          ~capacity_blocks:(Fab.Volume.capacity_blocks volume)
          ~rng:(Random.State.make [| seed; c |])
      in
      Workload.Client.spawn volume ~coord:(c mod nbricks) ~gen ~ops
        ~payload_tag:(Char.chr (97 + (c mod 26)))
        stats.(c)
    done;
    Fab.Volume.run ~horizon:10_000_000. volume;
    let elapsed = Dessim.Engine.now cluster.Core.Cluster.engine -. started in
    let metrics = cluster.Core.Cluster.metrics in
    let total field = Array.fold_left (fun acc s -> acc + field s) 0 stats in
    let ops_done = total (fun s -> s.Workload.Client.ops) in
    Printf.printf "clients: %d x %d ops, elapsed %.0f delta\n" clients ops
      elapsed;
    Printf.printf "  completed ops : %d (%d reads, %d writes, %d aborted)\n"
      ops_done
      (total (fun s -> s.Workload.Client.reads))
      (total (fun s -> s.Workload.Client.writes))
      (total (fun s -> s.Workload.Client.aborts));
    Printf.printf "  throughput    : %.2f ops / kdelta\n"
      (float_of_int ops_done /. elapsed *. 1000.);
    Array.iteri
      (fun i s ->
        Printf.printf "  client %d      : %s\n" i
          (Format.asprintf "%a" Metrics.Summary.pp s.Workload.Client.latency))
      stats;
    Printf.printf "  network       : %.0f messages, %.1f KiB payload\n"
      (Metrics.Registry.value metrics "net.msgs")
      (Metrics.Registry.value metrics "net.bytes" /. 1024.);
    Printf.printf "  disk          : %.0f reads, %.0f writes, %.0f NVRAM writes\n"
      (Metrics.Registry.value metrics "disk.reads")
      (Metrics.Registry.value metrics "disk.writes")
      (Metrics.Registry.value metrics "nvram.writes");
    `Ok ()
  end

let workload_cmd =
  let m = Arg.(value & opt int 5 & info [ "m"; "data-blocks" ] ~doc:"Data blocks per stripe.") in
  let n = Arg.(value & opt int 8 & info [ "n"; "total-blocks" ] ~doc:"Total blocks per stripe.") in
  let bricks =
    Arg.(value & opt int 0 & info [ "bricks" ] ~doc:"Bricks (default: n).")
  in
  let stripes =
    Arg.(value & opt int 64 & info [ "stripes" ] ~doc:"Stripes in the volume.")
  in
  let block_size =
    Arg.(value & opt int 1024 & info [ "block-size" ] ~doc:"Block size in bytes.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Operations per client.")
  in
  let profile =
    Arg.(
      value
      & opt profile_conv Workload.Gen.web_server
      & info [ "profile" ] ~doc:"Workload profile: web, oltp, backup, ingest.")
  in
  let drop =
    Arg.(value & opt float 0. & info [ "drop" ] ~doc:"Message drop probability.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let optimized =
    Arg.(value & flag & info [ "optimized-modify" ]
           ~doc:"Use the section 5.2 bandwidth-optimized block writes.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print a protocol trace (every message and operation) to stderr.")
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a synthetic workload on a simulated volume")
    Term.(
      ret
        (const run_workload $ m $ n $ bricks $ stripes $ block_size $ clients
        $ ops $ profile $ drop $ seed $ optimized $ trace))

(* ---------------- mttdl ---------------- *)

let run_mttdl capacity =
  let p = Reliability.Params.default in
  let open Reliability.Model in
  Printf.printf "MTTDL at %g TB logical capacity (%s)\n\n" capacity
    (Format.asprintf "%a" Reliability.Params.pp p);
  Printf.printf "  %-30s %10s %12s %8s\n" "scheme" "overhead" "MTTDL (yr)"
    "bricks";
  List.iter
    (fun (name, scheme, brick) ->
      Printf.printf "  %-30s %10.2f %12.3e %8d\n" name
        (storage_overhead p scheme brick)
        (mttdl_years p scheme brick ~logical_tb:capacity)
        (bricks_needed p scheme brick ~logical_tb:capacity))
    [
      ("striping / reliable R5", Striping, Reliable_r5);
      ("2-way replication / R0", Replication 2, R0);
      ("3-way replication / R0", Replication 3, R0);
      ("4-way replication / R0", Replication 4, R0);
      ("4-way replication / R5", Replication 4, R5);
      ("E.C.(5,7) / R0", Erasure (5, 7), R0);
      ("E.C.(5,8) / R0", Erasure (5, 8), R0);
      ("E.C.(5,8) / R5", Erasure (5, 8), R5);
      ("E.C.(5,10) / R0", Erasure (5, 10), R0);
    ];
  `Ok ()

let mttdl_cmd =
  let capacity =
    Arg.(value & opt float 256. & info [ "capacity" ] ~doc:"Logical TB.")
  in
  Cmd.v
    (Cmd.info "mttdl" ~doc:"Reliability model tables (figures 2 and 3)")
    Term.(ret (const run_mttdl $ capacity))

(* ---------------- quorum ---------------- *)

let run_quorum m n =
  match Quorum.Mquorum.create ~n ~m with
  | q ->
      Printf.printf "%s\n" (Format.asprintf "%a" Quorum.Mquorum.pp q);
      Printf.printf "  quorum size     : %d\n" (Quorum.Mquorum.quorum_size q);
      Printf.printf "  tolerated crashes: %d\n" (Quorum.Mquorum.f q);
      Printf.printf "  storage overhead : %.2fx\n"
        (float_of_int n /. float_of_int m);
      Printf.printf "  small-write cost : %d disk I/Os (2(n-m+1))\n"
        (2 * (n - m + 1));
      `Ok ()
  | exception Invalid_argument msg -> `Error (false, msg)

let quorum_cmd =
  let m = Arg.(value & opt int 5 & info [ "m"; "data-blocks" ] ~doc:"Data blocks.") in
  let n = Arg.(value & opt int 8 & info [ "n"; "total-blocks" ] ~doc:"Total blocks.") in
  Cmd.v
    (Cmd.info "quorum" ~doc:"m-quorum system parameters for a geometry")
    Term.(ret (const run_quorum $ m $ n))

let () =
  let info =
    Cmd.info "fab_sim" ~version:"1.0.0"
      ~doc:"Simulate FAB: decentralized erasure-coded virtual disks (DSN 2004)"
  in
  exit (Cmd.eval (Cmd.group info [ workload_cmd; mttdl_cmd; quorum_cmd ]))
