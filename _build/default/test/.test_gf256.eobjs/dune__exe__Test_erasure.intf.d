test/test_erasure.mli:
