test/test_quorum.ml: Alcotest Array Brick Dessim Fun List Metrics Printf QCheck QCheck_alcotest Quorum Simnet String
