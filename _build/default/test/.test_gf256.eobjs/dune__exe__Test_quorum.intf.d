test/test_quorum.mli:
