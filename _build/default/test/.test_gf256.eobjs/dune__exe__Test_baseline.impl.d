test/test_baseline.ml: Alcotest Array Baseline Bytes Char Dessim Metrics Printf
