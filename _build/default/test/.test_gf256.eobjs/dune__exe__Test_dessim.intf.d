test/test_dessim.mli:
