test/test_metrics.ml: Alcotest List Metrics
