test/test_slog.mli:
