test/test_slog.ml: Alcotest Bytes Char Core List QCheck QCheck_alcotest
