test/test_timestamp.ml: Alcotest Core Dessim List QCheck QCheck_alcotest
