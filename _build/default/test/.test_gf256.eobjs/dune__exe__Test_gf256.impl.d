test/test_gf256.ml: Alcotest Array Bytes Char Gf256 Option QCheck QCheck_alcotest Random
