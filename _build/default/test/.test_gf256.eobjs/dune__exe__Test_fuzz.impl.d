test/test_fuzz.ml: Alcotest Array Brick Bytes Core Dessim Float Fun Linearize List Printf Random Simnet String
