test/test_timestamp.mli:
