test/test_register.ml: Alcotest Array Brick Bytes Char Core Dessim List Metrics Option Printf QCheck QCheck_alcotest Result Simnet
