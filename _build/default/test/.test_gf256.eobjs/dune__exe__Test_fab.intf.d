test/test_fab.mli:
