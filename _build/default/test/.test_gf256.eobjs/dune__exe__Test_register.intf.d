test/test_register.mli:
