test/test_explore.ml: Alcotest Array Bytes Core Dessim Linearize List Printf Random String
