test/test_simnet.ml: Alcotest Dessim List Metrics Printf Simnet
