test/test_workload.ml: Alcotest Bytes Dessim Fab List Metrics Printf Random Workload
