test/test_fab.ml: Alcotest Array Brick Bytes Char Core Fab Fun List Printf
