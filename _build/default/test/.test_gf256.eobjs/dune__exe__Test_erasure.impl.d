test/test_erasure.ml: Alcotest Array Bytes Char Erasure Format List Printf QCheck QCheck_alcotest Random String
