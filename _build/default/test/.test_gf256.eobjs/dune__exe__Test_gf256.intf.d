test/test_gf256.mli:
