test/test_reliability.ml: Alcotest Float List Printf Reliability
