test/test_linearize.ml: Alcotest Format Linearize List
