test/test_dessim.ml: Alcotest Dessim Fun List Option Random
