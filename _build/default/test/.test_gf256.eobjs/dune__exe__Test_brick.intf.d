test/test_brick.mli:
