test/test_brick.ml: Alcotest Brick Dessim Metrics
