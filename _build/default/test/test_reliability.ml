(* Tests for the Markov MTTDL model and the figure-2/3 system model. *)

module Markov = Reliability.Markov
module Model = Reliability.Model
module Params = Reliability.Params

let close ?(rel = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" msg expected actual)
    true
    (Float.abs (expected -. actual) <= rel *. Float.abs expected)

(* --- Markov chain --- *)

let test_single_unit () =
  (* One unit, no tolerance: MTTDL = 1/lambda. *)
  close "1/lambda" 1000. (Markov.mttdl ~units:1 ~tolerated:0 ~lambda:0.001 ~mu:1.)

let test_n_units_no_tolerance () =
  (* First failure among n kills: MTTDL = 1/(n lambda). *)
  close "1/(n lambda)" 100.
    (Markov.mttdl ~units:10 ~tolerated:0 ~lambda:0.001 ~mu:1.)

let test_two_units_one_tolerated_closed_form () =
  (* Classic mirrored-pair formula: MTTDL = (3 lambda + mu) / (2 lambda^2). *)
  let lambda = 1e-4 and mu = 0.1 in
  let expected = ((3. *. lambda) +. mu) /. (2. *. lambda *. lambda) in
  close "mirrored pair" expected
    (Markov.mttdl ~units:2 ~tolerated:1 ~lambda ~mu)

let test_three_units_one_tolerated_closed_form () =
  (* RAID-5 with 3 disks: MTTDL = (5 lambda + mu) / (6 lambda^2). *)
  let lambda = 1e-4 and mu = 0.1 in
  let expected = ((5. *. lambda) +. mu) /. (6. *. lambda *. lambda) in
  close "raid5-of-3" expected (Markov.mttdl ~units:3 ~tolerated:1 ~lambda ~mu)

let test_monotonicity () =
  let base = Markov.mttdl ~units:8 ~tolerated:2 ~lambda:1e-4 ~mu:0.1 in
  Alcotest.(check bool) "more failures hurt" true
    (Markov.mttdl ~units:8 ~tolerated:2 ~lambda:2e-4 ~mu:0.1 < base);
  Alcotest.(check bool) "faster repair helps" true
    (Markov.mttdl ~units:8 ~tolerated:2 ~lambda:1e-4 ~mu:0.2 > base);
  Alcotest.(check bool) "more tolerance helps" true
    (Markov.mttdl ~units:8 ~tolerated:3 ~lambda:1e-4 ~mu:0.1 > base);
  Alcotest.(check bool) "more units hurt" true
    (Markov.mttdl ~units:16 ~tolerated:2 ~lambda:1e-4 ~mu:0.1 < base)

let test_markov_validation () =
  Alcotest.check_raises "units <= tolerated"
    (Invalid_argument "Reliability.Markov: units <= tolerated (no loss possible)")
    (fun () -> ignore (Markov.mttdl ~units:2 ~tolerated:2 ~lambda:1. ~mu:1.));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Reliability.Markov: rates must be positive") (fun () ->
      ignore (Markov.mttdl ~units:2 ~tolerated:1 ~lambda:0. ~mu:1.))

let test_availability () =
  let a = Markov.availability_approx ~units:5 ~tolerated:1 ~lambda:1e-5 ~mu:0.1 in
  Alcotest.(check bool) "high availability" true (a > 0.999 && a <= 1.);
  let worse = Markov.availability_approx ~units:5 ~tolerated:1 ~lambda:1e-2 ~mu:0.1 in
  Alcotest.(check bool) "monotone in lambda" true (worse < a)

(* --- system model --- *)

let p = Params.default

let test_overheads () =
  close "striping R0" 1.0 (Model.storage_overhead p Model.Striping Model.R0);
  close "striping R5 = 1.25" 1.25
    (Model.storage_overhead p Model.Striping Model.Reliable_r5);
  close "4-way replication R0" 4.0
    (Model.storage_overhead p (Model.Replication 4) Model.R0);
  close "4-way replication R5" 5.0
    (Model.storage_overhead p (Model.Replication 4) Model.R5);
  close "EC(5,8) R0 = 1.6" 1.6
    (Model.storage_overhead p (Model.Erasure (5, 8)) Model.R0);
  close "EC(5,8) R5 = 2.0" 2.0
    (Model.storage_overhead p (Model.Erasure (5, 8)) Model.R5)

let test_tolerated () =
  Alcotest.(check int) "striping" 0 (Model.tolerated Model.Striping);
  Alcotest.(check int) "4-way repl" 3 (Model.tolerated (Model.Replication 4));
  Alcotest.(check int) "EC(5,8)" 3 (Model.tolerated (Model.Erasure (5, 8)))

let test_brick_rates () =
  let r0 = Model.brick_terminal_rate p Model.R0 in
  let r5 = Model.brick_terminal_rate p Model.R5 in
  let hi = Model.brick_terminal_rate p Model.Reliable_r5 in
  Alcotest.(check bool) "R5 bricks much more durable than R0" true
    (r5 < r0 /. 10.);
  Alcotest.(check bool) "high-end still better" true (hi < r5);
  Alcotest.(check bool) "all positive" true (r0 > 0. && r5 > 0. && hi > 0.)

let test_bricks_needed () =
  (* 256 TB logical with EC(5,8) on R0 bricks (3 TB usable): 137. *)
  Alcotest.(check int) "EC(5,8) 256TB" 137
    (Model.bricks_needed p (Model.Erasure (5, 8)) Model.R0 ~logical_tb:256.);
  Alcotest.(check int) "replication needs more" 342
    (Model.bricks_needed p (Model.Replication 4) Model.R0 ~logical_tb:256.)

let mttdl s k c = Model.mttdl_years p s k ~logical_tb:c

let test_figure2_orderings () =
  (* The qualitative claims of figure 2, at 100 TB and 1 PB. *)
  List.iter
    (fun cap ->
      let striping = mttdl Model.Striping Model.Reliable_r5 cap in
      let repl_r0 = mttdl (Model.Replication 4) Model.R0 cap in
      let repl_r5 = mttdl (Model.Replication 4) Model.R5 cap in
      let ec_r0 = mttdl (Model.Erasure (5, 8)) Model.R0 cap in
      let ec_r5 = mttdl (Model.Erasure (5, 8)) Model.R5 cap in
      Alcotest.(check bool) "striping is worst" true
        (striping < ec_r0 && striping < repl_r0);
      Alcotest.(check bool) "R5 bricks beat R0 bricks (repl)" true
        (repl_r5 > repl_r0);
      Alcotest.(check bool) "R5 bricks beat R0 bricks (EC)" true
        (ec_r5 > ec_r0);
      Alcotest.(check bool) "replication is at least EC-grade" true
        (repl_r5 >= ec_r5 /. 10.);
      Alcotest.(check bool) "EC almost as reliable as replication" true
        (ec_r5 > repl_r5 /. 1e3))
    [ 100.; 1000. ]

let test_figure2_scaling () =
  (* MTTDL decreases with capacity for every scheme. *)
  List.iter
    (fun (s, k) ->
      let a = mttdl s k 10. and b = mttdl s k 100. and c = mttdl s k 1000. in
      Alcotest.(check bool) "declines with capacity" true (a > b && b > c))
    [
      (Model.Striping, Model.Reliable_r5);
      (Model.Replication 4, Model.R0);
      (Model.Erasure (5, 8), Model.R0);
      (Model.Erasure (5, 8), Model.R5);
    ]

let test_figure3_shape () =
  (* At fixed capacity, more redundancy = more MTTDL, and EC reaches a
     given MTTDL with less overhead than replication. *)
  let cap = 256. in
  let repl =
    List.map
      (fun k ->
        (Model.storage_overhead p (Model.Replication k) Model.R0,
         mttdl (Model.Replication k) Model.R0 cap))
      [ 1; 2; 3; 4; 5 ]
  in
  let ec =
    List.map
      (fun n ->
        (Model.storage_overhead p (Model.Erasure (5, n)) Model.R0,
         mttdl (Model.Erasure (5, n)) Model.R0 cap))
      [ 6; 7; 8; 9; 10 ]
  in
  let monotone l =
    let rec go = function
      | (_, a) :: ((_, b) :: _ as rest) -> a <= b && go rest
      | _ -> true
    in
    go l
  in
  Alcotest.(check bool) "replication curve monotone" true (monotone repl);
  Alcotest.(check bool) "EC curve monotone" true (monotone ec);
  (* Cost advantage: to reach the MTTDL of 4-way replication, EC needs
     far less overhead. *)
  let _, repl4 = List.nth repl 3 in
  let cheaper =
    List.exists (fun (ov, m) -> m >= repl4 && ov < 3.) ec
  in
  Alcotest.(check bool) "EC reaches replication-grade MTTDL under 3x overhead"
    true cheaper

let test_model_validation () =
  Alcotest.check_raises "bad replication"
    (Invalid_argument "Reliability.Model: replication k < 1") (fun () ->
      ignore (Model.cross_overhead (Model.Replication 0)));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Reliability.Model: capacity <= 0") (fun () ->
      ignore (Model.bricks_needed p Model.Striping Model.R0 ~logical_tb:0.))

let () =
  Alcotest.run "reliability"
    [
      ( "markov",
        [
          Alcotest.test_case "single unit" `Quick test_single_unit;
          Alcotest.test_case "n units no tolerance" `Quick test_n_units_no_tolerance;
          Alcotest.test_case "mirrored pair closed form" `Quick
            test_two_units_one_tolerated_closed_form;
          Alcotest.test_case "raid5-of-3 closed form" `Quick
            test_three_units_one_tolerated_closed_form;
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
          Alcotest.test_case "validation" `Quick test_markov_validation;
          Alcotest.test_case "availability" `Quick test_availability;
        ] );
      ( "model",
        [
          Alcotest.test_case "storage overheads" `Quick test_overheads;
          Alcotest.test_case "fault tolerance" `Quick test_tolerated;
          Alcotest.test_case "brick rates" `Quick test_brick_rates;
          Alcotest.test_case "bricks needed" `Quick test_bricks_needed;
          Alcotest.test_case "figure 2 orderings" `Quick test_figure2_orderings;
          Alcotest.test_case "figure 2 scaling" `Quick test_figure2_scaling;
          Alcotest.test_case "figure 3 shape" `Quick test_figure3_shape;
          Alcotest.test_case "validation" `Quick test_model_validation;
        ] );
    ]
