(* Tests for the LS97-style replicated-register baseline. *)

module L = Baseline.Ls97

let bs = 1024
let blk c = Bytes.make bs c

let write t ~coord ~reg v = L.run_op t (fun () -> L.write t ~coord ~reg v)
let read t ~coord ~reg = L.run_op t (fun () -> L.read t ~coord ~reg)

let check_ok msg = function
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail msg

let check_value msg expected = function
  | Some (Ok b) -> Alcotest.(check bool) msg true (Bytes.equal b expected)
  | _ -> Alcotest.fail msg

let test_roundtrip () =
  let t = L.create ~n:5 () in
  check_ok "write" (write t ~coord:0 ~reg:0 (blk 'a'));
  check_value "read" (blk 'a') (read t ~coord:3 ~reg:0);
  check_ok "overwrite" (write t ~coord:1 ~reg:0 (blk 'b'));
  check_value "read new" (blk 'b') (read t ~coord:4 ~reg:0)

let test_fresh_register_is_zero () =
  let t = L.create ~n:3 () in
  check_value "zero" (Bytes.make bs '\000') (read t ~coord:0 ~reg:9)

let test_registers_independent () =
  let t = L.create ~n:3 () in
  check_ok "w0" (write t ~coord:0 ~reg:0 (blk 'x'));
  check_ok "w1" (write t ~coord:1 ~reg:1 (blk 'y'));
  check_value "r0" (blk 'x') (read t ~coord:2 ~reg:0);
  check_value "r1" (blk 'y') (read t ~coord:0 ~reg:1)

let test_costs_match_table1 () =
  (* LS97 columns of Table 1: read 4delta/4n msgs/n reads/n writes/2nB;
     write 4delta/4n msgs/0 reads/n writes/nB. *)
  let n = 8 in
  let nf = float_of_int n and bf = float_of_int bs in
  let t = L.create ~n () in
  check_ok "seed" (write t ~coord:0 ~reg:0 (blk 'a'));
  let before = L.snapshot t in
  let t0 = ref 0. in
  let lat = ref 0. in
  (match
     L.run_op t (fun () ->
         t0 := Dessim.Engine.now (L.engine t);
         let r = L.read t ~coord:0 ~reg:0 in
         lat := Dessim.Engine.now (L.engine t) -. !t0;
         r)
   with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "read");
  let after = L.snapshot t in
  let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  Alcotest.(check (float 0.)) "read latency 4 delta" 4. !lat;
  Alcotest.(check (float 0.)) "read msgs 4n" (4. *. nf) (d "net.msgs");
  Alcotest.(check (float 0.)) "read disk reads n" nf (d "disk.reads");
  Alcotest.(check (float 0.)) "read bandwidth 2nB" (2. *. nf *. bf) (d "net.bytes");
  Alcotest.(check (float 0.)) "read disk writes n (blind write-back)" nf
    (d "disk.writes");

  let before = L.snapshot t in
  check_ok "write" (write t ~coord:1 ~reg:0 (blk 'b'));
  let after = L.snapshot t in
  let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  Alcotest.(check (float 0.)) "write msgs 4n" (4. *. nf) (d "net.msgs");
  Alcotest.(check (float 0.)) "write disk reads 0" 0. (d "disk.reads");
  Alcotest.(check (float 0.)) "write disk writes n" nf (d "disk.writes");
  Alcotest.(check (float 0.)) "write bandwidth nB" (nf *. bf) (d "net.bytes")

let test_majority_crash_tolerance () =
  let t = L.create ~n:5 () in
  check_ok "write" (write t ~coord:0 ~reg:0 (blk 'a'));
  L.crash t 3;
  L.crash t 4;
  check_value "read with minority down" (blk 'a') (read t ~coord:0 ~reg:0);
  check_ok "write with minority down" (write t ~coord:1 ~reg:0 (blk 'b'));
  L.crash t 2;
  (match L.run_op ~horizon:300. t (fun () -> L.read t ~coord:0 ~reg:0) with
  | None -> ()
  | Some _ -> Alcotest.fail "majority down must stall");
  L.recover t 2;
  check_value "after recovery" (blk 'b') (read t ~coord:0 ~reg:0)

let test_read_completes_partial_write () =
  (* The contrast with the paper's strict semantics: under LS97 a
     partial write CAN surface later, completed by a read's
     write-back. We inject a partial write that reaches one replica
     and observe a subsequent read adopt and complete it. *)
  let t = L.create ~n:3 () in
  check_ok "seed" (write t ~coord:0 ~reg:0 (blk 'a'));
  (* Partial write: replicas 0 and 1 are down exactly while the Put
     messages arrive, so the new value lands only on replica 2; the
     writer then crashes before gathering a majority of acks. *)
  Dessim.Fiber.spawn (fun () -> ignore (L.write t ~coord:2 ~reg:0 (blk 'p')));
  let eng = L.engine t in
  ignore (Dessim.Engine.schedule eng ~delay:2.5 (fun () -> L.crash t 0; L.crash t 1));
  ignore (Dessim.Engine.schedule eng ~delay:3.5 (fun () ->
      L.crash t 2;  (* the writer dies; its write reached only replica 2 *)
      L.recover t 0; L.recover t 1));
  L.run ~horizon:50. t;
  L.recover t 2;
  (* A read whose quorum samples replica 2 adopts the partial value and
     its write-back completes the dead coordinator's write — allowed by
     plain linearizability, excluded by strict linearizability. Crash
     replica 0 so the majority must include replica 2. *)
  L.crash t 0;
  check_value "partial write surfaced later" (blk 'p') (read t ~coord:1 ~reg:0);
  L.recover t 0;
  (* The write-back fixed the value at a majority: now every quorum
     reports it. *)
  check_value "and it sticks" (blk 'p') (read t ~coord:0 ~reg:0)

let test_validation () =
  let t = L.create ~n:3 () in
  Alcotest.check_raises "block size"
    (Invalid_argument "Baseline.Ls97.write: wrong block size") (fun () ->
      ignore (L.run_op t (fun () -> L.write t ~coord:0 ~reg:0 (Bytes.create 5))));
  Alcotest.check_raises "n too small"
    (Invalid_argument "Baseline.Ls97.create: n < 2") (fun () ->
      ignore (L.create ~n:1 ()))

(* --- Direct (client-coordinated, section 6 contrast) --- *)

module D = Baseline.Direct

let test_direct_roundtrip () =
  let d = D.create ~m:3 ~n:5 ~block_size:64 () in
  let stripe = Array.init 3 (fun i -> Bytes.make 64 (Char.chr (97 + i))) in
  (match D.run_op d (fun () -> D.write d ~reg:0 stripe) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "direct write");
  match D.run_op d (fun () -> D.read d ~reg:0) with
  | Some (Ok got) ->
      Alcotest.(check bool) "roundtrip" true (Array.for_all2 Bytes.equal got stripe)
  | _ -> Alcotest.fail "direct read"

let test_direct_survives_f_failures_when_quiet () =
  (* With no partial writes the naive design reads fine with n-m
     devices dead — erasure coding itself works. *)
  let d = D.create ~m:2 ~n:4 ~block_size:64 () in
  let stripe = Array.init 2 (fun i -> Bytes.make 64 (Char.chr (65 + i))) in
  (match D.run_op d (fun () -> D.write d ~reg:0 stripe) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "write");
  D.crash_device d 0;
  D.crash_device d 3;
  match D.run_op d (fun () -> D.read d ~reg:0) with
  | Some (Ok got) ->
      Alcotest.(check bool) "degraded read" true
        (Array.for_all2 Bytes.equal got stripe)
  | _ -> Alcotest.fail "degraded read failed"

let test_direct_mixed_versions_corrupt () =
  (* The paper's section 6 scenario: partial client write + device
     failure = garbage. This test documents the flaw the quorum
     protocol exists to fix. *)
  let d = D.create ~m:2 ~n:3 ~block_size:64 () in
  let old_stripe = [| Bytes.make 64 'o'; Bytes.make 64 'p' |] in
  let new_stripe = [| Bytes.make 64 'N'; Bytes.make 64 'M' |] in
  (match D.run_op d (fun () -> D.write d ~reg:0 old_stripe) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "seed");
  D.write_prefix d ~reg:0 ~devices:1 new_stripe;
  D.crash_device d 1;
  match D.run_op d (fun () -> D.read d ~reg:0) with
  | Some (Ok got) ->
      let g = Bytes.get got.(1) 0 in
      Alcotest.(check bool) "block 0 is the new value" true
        (Bytes.equal got.(0) new_stripe.(0));
      Alcotest.(check bool)
        (Printf.sprintf "block 1 decodes to garbage (%C)" g)
        true
        (g <> 'p' && g <> 'M')
  | _ -> Alcotest.fail "read"

let test_direct_too_many_failures () =
  let d = D.create ~m:2 ~n:3 ~block_size:64 () in
  D.crash_device d 0;
  D.crash_device d 1;
  match D.run_op d (fun () -> D.read d ~reg:0) with
  | Some (Error `Failed) -> ()
  | _ -> Alcotest.fail "should report failure"

let () =
  Alcotest.run "baseline"
    [
      ( "ls97",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "fresh register zero" `Quick test_fresh_register_is_zero;
          Alcotest.test_case "independent registers" `Quick test_registers_independent;
          Alcotest.test_case "costs match Table 1" `Quick test_costs_match_table1;
          Alcotest.test_case "majority crash tolerance" `Quick
            test_majority_crash_tolerance;
          Alcotest.test_case "partial write surfaces later (plain lin.)" `Quick
            test_read_completes_partial_write;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "direct",
        [
          Alcotest.test_case "roundtrip" `Quick test_direct_roundtrip;
          Alcotest.test_case "degraded read when quiet" `Quick
            test_direct_survives_f_failures_when_quiet;
          Alcotest.test_case "mixed versions corrupt (section 6)" `Quick
            test_direct_mixed_versions_corrupt;
          Alcotest.test_case "too many failures" `Quick
            test_direct_too_many_failures;
        ] );
    ]
