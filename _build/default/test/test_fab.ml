(* Tests for the FAB volume layer: layouts and virtual-disk I/O. *)

module V = Fab.Volume
module Layout = Fab.Layout

let bs = 512

let pattern len seed =
  Bytes.init len (fun i -> Char.chr ((i + seed) mod 251))

(* --- layouts --- *)

let test_fixed_layout () =
  let f = Layout.make Layout.Fixed ~bricks:5 ~n:5 in
  Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3; 4 |] (f 0);
  Alcotest.(check (array int)) "same everywhere" (f 0) (f 99)

let test_fixed_requires_equal () =
  Alcotest.check_raises "bricks <> n"
    (Invalid_argument "Fab.Layout.make: Fixed needs bricks = n") (fun () ->
      ignore (Layout.make Layout.Fixed ~bricks:6 ~n:5 0))

let test_rotating_layout () =
  let f = Layout.make Layout.Rotating ~bricks:7 ~n:3 in
  Alcotest.(check (array int)) "stripe 0" [| 0; 1; 2 |] (f 0);
  Alcotest.(check (array int)) "stripe 5" [| 5; 6; 0 |] (f 5);
  (* Parity role (position n-1) visits every brick. *)
  let parity_bricks =
    List.sort_uniq compare (List.init 7 (fun s -> (f s).(2)))
  in
  Alcotest.(check int) "parity rotates over all bricks" 7
    (List.length parity_bricks)

let test_random_layout_properties () =
  let f = Layout.make (Layout.Random 42) ~bricks:20 ~n:8 in
  for stripe = 0 to 200 do
    let members = f stripe in
    Alcotest.(check int) "n members" 8 (Array.length members);
    let sorted = List.sort_uniq compare (Array.to_list members) in
    Alcotest.(check int) "distinct" 8 (List.length sorted);
    List.iter
      (fun a -> Alcotest.(check bool) "in range" true (a >= 0 && a < 20))
      sorted
  done;
  (* Deterministic. *)
  let g = Layout.make (Layout.Random 42) ~bricks:20 ~n:8 in
  Alcotest.(check (array int)) "deterministic" (f 77) (g 77);
  (* Different seeds give different placements somewhere. *)
  let h = Layout.make (Layout.Random 43) ~bricks:20 ~n:8 in
  Alcotest.(check bool) "seed matters" true
    (List.exists (fun s -> f s <> h s) (List.init 50 Fun.id))

let test_random_layout_balances () =
  let bricks = 12 in
  let f = Layout.make (Layout.Random 1) ~bricks ~n:4 in
  let load = Array.make bricks 0 in
  for stripe = 0 to 999 do
    Array.iter (fun a -> load.(a) <- load.(a) + 1) (f stripe)
  done;
  let expected = 1000 * 4 / bricks in
  Array.iteri
    (fun i l ->
      Alcotest.(check bool)
        (Printf.sprintf "brick %d load %d ~ %d" i l expected)
        true
        (float_of_int (abs (l - expected)) < 0.25 *. float_of_int expected))
    load

(* --- volumes --- *)

let test_volume_addressing () =
  let v = V.create ~m:4 ~n:6 ~stripes:10 ~block_size:bs () in
  Alcotest.(check int) "capacity" 40 (V.capacity_blocks v);
  Alcotest.(check (pair int int)) "lba 0" (0, 0) (V.stripe_of_lba v 0);
  Alcotest.(check (pair int int)) "lba 5" (1, 1) (V.stripe_of_lba v 5);
  Alcotest.(check (pair int int)) "last" (9, 3) (V.stripe_of_lba v 39);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Fab.Volume: logical block address out of range")
    (fun () -> ignore (V.stripe_of_lba v 40))

let run_write v ~coord ~lba data =
  match V.run_op v (fun () -> V.write v ~coord ~lba data) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "volume write failed"

let run_read v ~coord ~lba ~count =
  match V.run_op v (fun () -> V.read v ~coord ~lba ~count) with
  | Some (Ok b) -> b
  | _ -> Alcotest.fail "volume read failed"

let test_volume_roundtrip_aligned () =
  let v = V.create ~m:4 ~n:6 ~stripes:8 ~block_size:bs () in
  let data = pattern (3 * 4 * bs) 7 in
  run_write v ~coord:0 ~lba:4 data;  (* stripes 1, 2, 3 fully *)
  let got = run_read v ~coord:3 ~lba:4 ~count:12 in
  Alcotest.(check bool) "aligned roundtrip" true (Bytes.equal got data)

let test_volume_roundtrip_unaligned () =
  let v = V.create ~m:4 ~n:6 ~stripes:8 ~block_size:bs () in
  let data = pattern (7 * bs) 13 in
  run_write v ~coord:1 ~lba:2 data;  (* spans stripes 0..2 partially *)
  let got = run_read v ~coord:5 ~lba:2 ~count:7 in
  Alcotest.(check bool) "unaligned roundtrip" true (Bytes.equal got data);
  (* Neighbouring blocks untouched (still zero). *)
  let left = run_read v ~coord:0 ~lba:0 ~count:2 in
  Alcotest.(check bool) "left untouched" true
    (Bytes.for_all (fun c -> c = '\000') left);
  let right = run_read v ~coord:0 ~lba:9 ~count:2 in
  Alcotest.(check bool) "right untouched" true
    (Bytes.for_all (fun c -> c = '\000') right)

let test_volume_single_block_ops () =
  let v = V.create ~m:3 ~n:5 ~stripes:4 ~block_size:bs () in
  for lba = 0 to 11 do
    let data = pattern bs lba in
    run_write v ~coord:(lba mod 5) ~lba data;
    let got = run_read v ~coord:((lba + 1) mod 5) ~lba ~count:1 in
    Alcotest.(check bool) (Printf.sprintf "lba %d" lba) true (Bytes.equal got data)
  done

let test_volume_over_more_bricks () =
  (* 12 bricks, 3-of-5 stripes with a rotating layout. *)
  let v = V.create ~m:3 ~n:5 ~bricks:12 ~stripes:24 ~block_size:bs () in
  let data = pattern (24 * 3 * bs) 3 in
  run_write v ~coord:0 ~lba:0 data;
  let got = run_read v ~coord:7 ~lba:0 ~count:(24 * 3) in
  Alcotest.(check bool) "full volume roundtrip over 12 bricks" true
    (Bytes.equal got data)

let test_volume_random_layout () =
  let v =
    V.create ~m:2 ~n:4 ~bricks:10 ~layout:(Fab.Layout.Random 5) ~stripes:16
      ~block_size:bs ()
  in
  let data = pattern (16 * 2 * bs) 9 in
  run_write v ~coord:2 ~lba:0 data;
  Alcotest.(check bool) "random layout roundtrip" true
    (Bytes.equal (run_read v ~coord:9 ~lba:0 ~count:32) data)

let test_volume_survives_brick_crash () =
  let v = V.create ~m:3 ~n:5 ~stripes:6 ~block_size:bs () in
  let data = pattern (6 * 3 * bs) 11 in
  run_write v ~coord:0 ~lba:0 data;
  Brick.crash (V.cluster v).Core.Cluster.bricks.(2);
  let got = run_read v ~coord:0 ~lba:0 ~count:18 in
  Alcotest.(check bool) "readable with a crashed brick" true (Bytes.equal got data);
  (* Writes still work too. *)
  let data2 = pattern (3 * bs) 17 in
  run_write v ~coord:1 ~lba:6 data2;
  Alcotest.(check bool) "write with crashed brick" true
    (Bytes.equal (run_read v ~coord:3 ~lba:6 ~count:3) data2)

let test_rebuild_brick () =
  let v = V.create ~m:3 ~n:5 ~stripes:6 ~block_size:bs () in
  let data = pattern (6 * 3 * bs) 23 in
  run_write v ~coord:0 ~lba:0 data;
  let victim = 4 in
  Brick.crash (V.cluster v).Core.Cluster.bricks.(victim);
  (* Overwrite part of the volume while the brick is down. *)
  let data2 = pattern (2 * 3 * bs) 29 in
  run_write v ~coord:0 ~lba:0 data2;
  Brick.recover (V.cluster v).Core.Cluster.bricks.(victim);
  (match V.run_op v (fun () -> V.rebuild_brick v ~brick:victim ~coord:0) with
  | Some (Ok touched) -> Alcotest.(check int) "touched all its stripes" 6 touched
  | _ -> Alcotest.fail "rebuild failed");
  (* After rebuild the recovered brick serves consistent reads. *)
  let got = V.run_op v (fun () -> V.read v ~coord:victim ~lba:0 ~count:6) in
  match got with
  | Some (Ok b) -> Alcotest.(check bool) "rebuilt data" true (Bytes.equal b data2)
  | _ -> Alcotest.fail "read via rebuilt brick"

let test_volume_validation () =
  let v = V.create ~m:3 ~n:5 ~stripes:2 ~block_size:bs () in
  Alcotest.check_raises "bad count"
    (Invalid_argument "Fab.Volume.read: count <= 0") (fun () ->
      ignore (V.run_op v (fun () -> V.read v ~coord:0 ~lba:0 ~count:0)));
  Alcotest.check_raises "read oob"
    (Invalid_argument "Fab.Volume.read: range out of bounds") (fun () ->
      ignore (V.run_op v (fun () -> V.read v ~coord:0 ~lba:5 ~count:2)));
  Alcotest.check_raises "write not block multiple"
    (Invalid_argument "Fab.Volume.write: length not a positive block multiple")
    (fun () ->
      ignore (V.run_op v (fun () -> V.write v ~coord:0 ~lba:0 (Bytes.create 100))))

let test_volume_scrub () =
  let v = V.create ~m:3 ~n:5 ~stripes:4 ~block_size:bs () in
  let data = pattern (4 * 3 * bs) 41 in
  run_write v ~coord:0 ~lba:0 data;
  (* Rot two blocks in different stripes. *)
  List.iter
    (fun (brick, stripe) ->
      match
        Core.Replica.log (V.cluster v).Core.Cluster.replicas.(brick) ~stripe
      with
      | Some l -> Core.Slog.corrupt_newest l
      | None -> Alcotest.fail "no log")
    [ (2, 1); (4, 3) ];
  (match V.run_op v (fun () -> V.scrub v ~coord:0) with
  | Some (Ok repaired) ->
      Alcotest.(check (list (pair int (list int))))
        "repaired stripes" [ (1, [ 2 ]); (3, [ 4 ]) ] repaired
  | _ -> Alcotest.fail "scrub failed");
  Alcotest.(check bool) "data intact" true
    (Bytes.equal (run_read v ~coord:1 ~lba:0 ~count:12) data);
  match V.run_op v (fun () -> V.scrub v ~coord:2) with
  | Some (Ok []) -> ()
  | _ -> Alcotest.fail "second scrub should be clean"

(* --- brick pools with multiple volumes --- *)

module Pool = Fab.Pool

let test_pool_two_volumes_isolated () =
  let pool = Pool.create ~bricks:10 ~block_size:bs () in
  let db = Pool.create_volume pool ~name:"db" ~m:5 ~n:8 ~stripes:4 () in
  let logs = Pool.create_volume pool ~name:"logs" ~m:1 ~n:3 ~stripes:6 () in
  Alcotest.(check (list string)) "names" [ "db"; "logs" ] (Pool.volume_names pool);
  Alcotest.(check int) "db capacity" 20 (V.capacity_blocks db);
  Alcotest.(check int) "logs capacity" 6 (V.capacity_blocks logs);
  (* Write different data to both; they share bricks but not stripes. *)
  let db_data = pattern (20 * bs) 31 in
  let logs_data = pattern (6 * bs) 37 in
  (match Pool.run_op pool (fun () -> V.write db ~coord:0 ~lba:0 db_data) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "db write");
  (match Pool.run_op pool (fun () -> V.write logs ~coord:1 ~lba:0 logs_data) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "logs write");
  (match Pool.run_op pool (fun () -> V.read db ~coord:2 ~lba:0 ~count:20) with
  | Some (Ok got) -> Alcotest.(check bool) "db intact" true (Bytes.equal got db_data)
  | _ -> Alcotest.fail "db read");
  match Pool.run_op pool (fun () -> V.read logs ~coord:3 ~lba:0 ~count:6) with
  | Some (Ok got) ->
      Alcotest.(check bool) "logs intact" true (Bytes.equal got logs_data)
  | _ -> Alcotest.fail "logs read"

let test_pool_heterogeneous_fault_tolerance () =
  (* Volumes with different codes tolerate different failure counts on
     the same bricks. *)
  let pool = Pool.create ~bricks:8 ~block_size:bs () in
  let tough = Pool.create_volume pool ~name:"tough" ~m:2 ~n:8 ~stripes:2 () in
  let fragile = Pool.create_volume pool ~name:"fragile" ~m:5 ~n:7 ~stripes:2 () in
  let d1 = pattern (2 * bs) 5 and d2 = pattern (5 * bs) 9 in
  (match Pool.run_op pool (fun () -> V.write tough ~coord:0 ~lba:0 d1) with
  | Some (Ok ()) -> () | _ -> Alcotest.fail "tough write");
  (match Pool.run_op pool (fun () -> V.write fragile ~coord:0 ~lba:0 d2) with
  | Some (Ok ()) -> () | _ -> Alcotest.fail "fragile write");
  (* tough (2-of-8) tolerates 3 crashes; fragile (5-of-7) only 1. *)
  let bricks = (Pool.cluster pool).Core.Cluster.bricks in
  Brick.crash bricks.(0);
  Brick.crash bricks.(1);
  (match Pool.run_op pool (fun () -> V.read tough ~coord:4 ~lba:0 ~count:2) with
  | Some (Ok got) -> Alcotest.(check bool) "tough survives 2 crashes" true (Bytes.equal got d1)
  | _ -> Alcotest.fail "tough read");
  (match
     Pool.run_op ~horizon:300. pool (fun () ->
         V.read fragile ~coord:4 ~lba:0 ~count:5)
   with
  | Some _ -> Alcotest.fail "fragile must stall at 2 crashes (f = 1)"
  | None -> ());
  Brick.recover bricks.(0);
  match Pool.run_op pool (fun () -> V.read fragile ~coord:4 ~lba:0 ~count:5) with
  | Some (Ok got) ->
      Alcotest.(check bool) "fragile back with 1 crash" true (Bytes.equal got d2)
  | _ -> Alcotest.fail "fragile read after recovery"

let test_pool_volume_management () =
  let pool = Pool.create ~bricks:5 ~block_size:bs () in
  let _a = Pool.create_volume pool ~name:"a" ~m:3 ~n:5 ~stripes:2 () in
  Alcotest.(check bool) "find" true (Pool.find_volume pool "a" <> None);
  Alcotest.(check bool) "missing" true (Pool.find_volume pool "zz" = None);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Fab.Pool.create_volume: volume \"a\" already exists")
    (fun () -> ignore (Pool.create_volume pool ~name:"a" ~m:1 ~n:3 ~stripes:1 ()));
  Alcotest.check_raises "n too large"
    (Invalid_argument "Fab.Pool.create_volume: n exceeds pool brick count")
    (fun () -> ignore (Pool.create_volume pool ~name:"big" ~m:5 ~n:8 ~stripes:1 ()));
  Alcotest.(check bool) "delete" true (Pool.delete_volume pool "a");
  Alcotest.(check bool) "delete again" false (Pool.delete_volume pool "a");
  Alcotest.(check (list string)) "empty" [] (Pool.volume_names pool);
  (* Stripe ids are never reused: a new volume works fine. *)
  let b = Pool.create_volume pool ~name:"b" ~m:2 ~n:4 ~stripes:2 () in
  let data = pattern (2 * bs) 3 in
  (match Pool.run_op pool (fun () -> V.write b ~coord:0 ~lba:0 (Bytes.sub data 0 (2*bs))) with
  | Some (Ok ()) -> () | _ -> Alcotest.fail "write after delete");
  match Pool.run_op pool (fun () -> V.read b ~coord:1 ~lba:0 ~count:2) with
  | Some (Ok got) -> Alcotest.(check bool) "readback" true (Bytes.equal got (Bytes.sub data 0 (2*bs)))
  | _ -> Alcotest.fail "read after delete"

let () =
  Alcotest.run "fab"
    [
      ( "layout",
        [
          Alcotest.test_case "fixed" `Quick test_fixed_layout;
          Alcotest.test_case "fixed requires bricks = n" `Quick
            test_fixed_requires_equal;
          Alcotest.test_case "rotating" `Quick test_rotating_layout;
          Alcotest.test_case "random properties" `Quick test_random_layout_properties;
          Alcotest.test_case "random balances load" `Quick test_random_layout_balances;
        ] );
      ( "volume",
        [
          Alcotest.test_case "addressing" `Quick test_volume_addressing;
          Alcotest.test_case "aligned roundtrip" `Quick test_volume_roundtrip_aligned;
          Alcotest.test_case "unaligned roundtrip" `Quick
            test_volume_roundtrip_unaligned;
          Alcotest.test_case "single blocks" `Quick test_volume_single_block_ops;
          Alcotest.test_case "more bricks than n" `Quick test_volume_over_more_bricks;
          Alcotest.test_case "random layout" `Quick test_volume_random_layout;
          Alcotest.test_case "survives brick crash" `Quick
            test_volume_survives_brick_crash;
          Alcotest.test_case "rebuild brick" `Quick test_rebuild_brick;
          Alcotest.test_case "scrub repairs bit rot" `Quick test_volume_scrub;
          Alcotest.test_case "validation" `Quick test_volume_validation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "two volumes isolated" `Quick
            test_pool_two_volumes_isolated;
          Alcotest.test_case "heterogeneous fault tolerance" `Quick
            test_pool_heterogeneous_fault_tolerance;
          Alcotest.test_case "volume management" `Quick
            test_pool_volume_management;
        ] );
    ]
