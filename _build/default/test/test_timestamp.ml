(* Tests for timestamps and clocks (paper section 2.3). *)

module Ts = Core.Timestamp
module Clock = Core.Clock

let ts time pid = Ts.make ~time ~pid

let test_total_order () =
  Alcotest.(check bool) "low < ts" true Ts.(low < ts 0 0);
  Alcotest.(check bool) "ts < high" true Ts.(ts 1_000_000 99 < high);
  Alcotest.(check bool) "low < high" true Ts.(low < high);
  Alcotest.(check bool) "time dominates" true Ts.(ts 1 9 < ts 2 0);
  Alcotest.(check bool) "pid breaks ties" true Ts.(ts 5 1 < ts 5 2);
  Alcotest.(check bool) "equal" true (Ts.equal (ts 3 3) (ts 3 3));
  Alcotest.(check int) "compare reflexive" 0 (Ts.compare Ts.low Ts.low);
  Alcotest.(check int) "compare high high" 0 (Ts.compare Ts.high Ts.high)

let test_max () =
  Alcotest.(check bool) "max picks larger" true
    (Ts.equal (Ts.max (ts 1 1) (ts 2 0)) (ts 2 0));
  Alcotest.(check bool) "max with low" true
    (Ts.equal (Ts.max Ts.low (ts 0 0)) (ts 0 0))

let test_make_validation () =
  Alcotest.check_raises "negative time"
    (Invalid_argument "Core.Timestamp.make: negative time") (fun () ->
      ignore (Ts.make ~time:(-1) ~pid:0));
  Alcotest.check_raises "negative pid"
    (Invalid_argument "Core.Timestamp.make: negative pid") (fun () ->
      ignore (Ts.make ~time:0 ~pid:(-1)))

let test_to_string () =
  Alcotest.(check string) "low" "LowTS" (Ts.to_string Ts.low);
  Alcotest.(check string) "high" "HighTS" (Ts.to_string Ts.high);
  Alcotest.(check string) "pair" "7.2" (Ts.to_string (ts 7 2))

let qtest name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name gen f)

let arbitrary_ts =
  QCheck.map
    (fun (t, p) -> ts t p)
    (QCheck.pair (QCheck.int_range 0 1000) (QCheck.int_range 0 20))

let order_props =
  [
    qtest "antisymmetry" (QCheck.pair arbitrary_ts arbitrary_ts) (fun (a, b) ->
        not (Ts.( < ) a b && Ts.( < ) b a));
    qtest "totality" (QCheck.pair arbitrary_ts arbitrary_ts) (fun (a, b) ->
        Ts.( < ) a b || Ts.( > ) a b || Ts.equal a b);
    qtest "transitivity" (QCheck.triple arbitrary_ts arbitrary_ts arbitrary_ts)
      (fun (a, b, c) ->
        (not (Ts.( <= ) a b && Ts.( <= ) b c)) || Ts.( <= ) a c);
    qtest "sentinels bound everything" arbitrary_ts (fun a ->
        Ts.( < ) Ts.low a && Ts.( < ) a Ts.high);
  ]

(* --- clocks --- *)

let test_logical_monotonic_unique () =
  let c1 = Clock.logical ~pid:1 in
  let c2 = Clock.logical ~pid:2 in
  let all = ref [] in
  for _ = 1 to 100 do
    all := Clock.new_ts c1 :: Clock.new_ts c2 :: !all
  done;
  (* UNIQUENESS across both clocks. *)
  let sorted = List.sort_uniq Ts.compare !all in
  Alcotest.(check int) "unique" 200 (List.length sorted);
  (* MONOTONICITY per clock. *)
  let check_monotonic c =
    let prev = ref (Clock.new_ts c) in
    for _ = 1 to 50 do
      let next = Clock.new_ts c in
      Alcotest.(check bool) "monotone" true (Ts.( < ) !prev next);
      prev := next
    done
  in
  check_monotonic c1;
  check_monotonic c2

let test_logical_observe () =
  let c = Clock.logical ~pid:0 in
  Clock.observe c (ts 500 7);
  Alcotest.(check bool) "jumps past observed" true
    (Ts.( > ) (Clock.new_ts c) (ts 500 7));
  (* Observing something old never goes backwards. *)
  Clock.observe c (ts 3 0);
  Alcotest.(check bool) "still above 500" true (Ts.( > ) (Clock.new_ts c) (ts 500 9))

let test_logical_progress () =
  (* PROGRESS: a lagging clock invoked repeatedly eventually exceeds
     any fixed timestamp. *)
  let fast = Clock.logical ~pid:1 in
  for _ = 1 to 1000 do
    ignore (Clock.new_ts fast)
  done;
  let target = Clock.new_ts fast in
  let slow = Clock.logical ~pid:0 in
  let exceeded = ref false in
  for _ = 1 to 2000 do
    if Ts.( > ) (Clock.new_ts slow) target then exceeded := true
  done;
  Alcotest.(check bool) "progress" true !exceeded

let test_realtime_follows_sim_clock () =
  let e = Dessim.Engine.create () in
  let c = Clock.realtime e ~pid:0 ~skew:0. ~resolution:1. in
  let t1 = Clock.new_ts c in
  ignore (Dessim.Engine.schedule e ~delay:100. ignore);
  Dessim.Engine.run e;
  let t2 = Clock.new_ts c in
  (match (t1, t2) with
  | Ts.Ts a, Ts.Ts b ->
      Alcotest.(check bool) "tracks time" true (b.time - a.time >= 99)
  | _ -> Alcotest.fail "expected concrete timestamps");
  (* Monotonic even when the wall clock is stuck. *)
  let t3 = Clock.new_ts c in
  Alcotest.(check bool) "bumped" true (Ts.( < ) t2 t3)

let test_realtime_skew () =
  let e = Dessim.Engine.create () in
  ignore (Dessim.Engine.schedule e ~delay:1000. ignore);
  Dessim.Engine.run e;
  let behind = Clock.realtime e ~pid:0 ~skew:(-500.) ~resolution:1. in
  let ahead = Clock.realtime e ~pid:1 ~skew:500. ~resolution:1. in
  (match (Clock.new_ts behind, Clock.new_ts ahead) with
  | Ts.Ts b, Ts.Ts a ->
      Alcotest.(check bool) "skew separates clocks" true (a.time - b.time >= 900)
  | _ -> Alcotest.fail "expected concrete timestamps");
  (* observe is a no-op on realtime clocks *)
  Clock.observe behind (ts 1_000_000 5);
  match Clock.new_ts behind with
  | Ts.Ts b -> Alcotest.(check bool) "no jump" true (b.time < 10_000)
  | _ -> Alcotest.fail "expected concrete timestamp"

let test_realtime_validation () =
  let e = Dessim.Engine.create () in
  Alcotest.check_raises "resolution"
    (Invalid_argument "Core.Clock.realtime: resolution <= 0") (fun () ->
      ignore (Clock.realtime e ~pid:0 ~skew:0. ~resolution:0.))

let () =
  Alcotest.run "timestamp"
    [
      ( "order",
        [
          Alcotest.test_case "total order" `Quick test_total_order;
          Alcotest.test_case "max" `Quick test_max;
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ]
        @ order_props );
      ( "clocks",
        [
          Alcotest.test_case "logical monotonic+unique" `Quick
            test_logical_monotonic_unique;
          Alcotest.test_case "logical observe" `Quick test_logical_observe;
          Alcotest.test_case "logical progress" `Quick test_logical_progress;
          Alcotest.test_case "realtime follows sim clock" `Quick
            test_realtime_follows_sim_clock;
          Alcotest.test_case "realtime skew" `Quick test_realtime_skew;
          Alcotest.test_case "realtime validation" `Quick test_realtime_validation;
        ] );
    ]
