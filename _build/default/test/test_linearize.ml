(* Tests for the history recorder and the strict-linearizability
   checker, including the paper's Figure 5 scenario. *)

module H = Linearize.History
module Check = Linearize.Check

let ok h =
  match Check.strict h with
  | Ok () -> true
  | Error v ->
      Format.eprintf "violation: %a@." Check.pp_violation v;
      false

let violation h =
  match Check.strict h with Ok () -> None | Error v -> Some v

(* Helpers building histories in textual order of time. *)

let w h ~client ~at ~value ~dur =
  let id = H.invoke h ~client ~kind:H.Write ~written:value ~now:at () in
  H.complete_write h id ~now:(at +. dur);
  id

let r h ~client ~at ~value ~dur =
  let id = H.invoke h ~client ~kind:H.Read ~now:at () in
  H.complete_read h id ~value ~now:(at +. dur);
  id

let test_empty_history () =
  Alcotest.(check bool) "empty ok" true (ok (H.create ()))

let test_sequential_history () =
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v1" ~dur:1.);
  ignore (r h ~client:0 ~at:2. ~value:"v1" ~dur:1.);
  ignore (w h ~client:0 ~at:4. ~value:"v2" ~dur:1.);
  ignore (r h ~client:1 ~at:6. ~value:"v2" ~dur:1.);
  Alcotest.(check bool) "sequential ok" true (ok h)

let test_initial_nil_reads () =
  let h = H.create () in
  ignore (r h ~client:0 ~at:0. ~value:H.nil ~dur:1.);
  ignore (w h ~client:0 ~at:2. ~value:"v" ~dur:1.);
  ignore (r h ~client:0 ~at:4. ~value:"v" ~dur:1.);
  Alcotest.(check bool) "nil then v" true (ok h)

let test_nil_after_value_violates () =
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v" ~dur:1.);
  ignore (r h ~client:0 ~at:2. ~value:"v" ~dur:1.);
  ignore (r h ~client:0 ~at:4. ~value:H.nil ~dur:1.);
  match violation h with
  | Some (Check.Cycle _) -> ()
  | other ->
      Alcotest.failf "expected cycle, got %s"
        (match other with None -> "ok" | Some v -> Format.asprintf "%a" Check.pp_violation v)

let test_stale_read_violates () =
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v1" ~dur:1.);
  ignore (w h ~client:0 ~at:2. ~value:"v2" ~dur:1.);
  ignore (r h ~client:1 ~at:4. ~value:"v2" ~dur:1.);
  ignore (r h ~client:1 ~at:6. ~value:"v1" ~dur:1.);  (* goes backwards *)
  match violation h with
  | Some (Check.Cycle _) -> ()
  | _ -> Alcotest.fail "expected cycle"

let test_read_of_unwritten () =
  let h = H.create () in
  ignore (r h ~client:0 ~at:0. ~value:"ghost" ~dur:1.);
  match violation h with
  | Some (Check.Read_of_unwritten { value = "ghost"; _ }) -> ()
  | _ -> Alcotest.fail "expected Read_of_unwritten"

let test_future_read () =
  let h = H.create () in
  ignore (r h ~client:0 ~at:0. ~value:"v" ~dur:1.);
  ignore (w h ~client:1 ~at:5. ~value:"v" ~dur:1.);
  match violation h with
  | Some (Check.Future_read { value = "v"; _ }) -> ()
  | _ -> Alcotest.fail "expected Future_read"

let test_concurrent_reads_may_split () =
  (* Two overlapping reads around a concurrent write may return old
     and new value in either real-time order only if consistent; when
     both orders of return are concurrent there is no violation. *)
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v1" ~dur:1.);
  (* concurrent write and two reads *)
  let wid = H.invoke h ~client:1 ~kind:H.Write ~written:"v2" ~now:2. () in
  ignore (r h ~client:2 ~at:2.1 ~value:"v2" ~dur:0.5);
  (* This read starts after the v2 read returned: reading the older
     v1 now inverts the read order. *)
  ignore (r h ~client:3 ~at:2.8 ~value:"v1" ~dur:0.5);
  H.complete_write h wid ~now:4.;
  match violation h with
  | Some (Check.Cycle _) -> ()
  | _ -> Alcotest.fail "expected cycle (new-old inversion)"

let test_truly_concurrent_reads_ok () =
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v1" ~dur:1.);
  let wid = H.invoke h ~client:1 ~kind:H.Write ~written:"v2" ~now:2. () in
  (* Both reads overlap each other: either may be ordered first. *)
  let r1 = H.invoke h ~client:2 ~kind:H.Read ~now:2.1 () in
  let r2 = H.invoke h ~client:3 ~kind:H.Read ~now:2.2 () in
  H.complete_read h r1 ~value:"v2" ~now:3.;
  H.complete_read h r2 ~value:"v1" ~now:3.1;
  H.complete_write h wid ~now:4.;
  Alcotest.(check bool) "overlapping reads may split" true (ok h)

let test_figure5_scenario () =
  (* The paper's Figure 5: write1(v') crashes; read2 returns v; read3
     returns v'. Strict linearizability is violated because the crash
     of write1 precedes read2. *)
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v" ~dur:1.);
  let w1 = H.invoke h ~client:1 ~kind:H.Write ~written:"v'" ~now:2. () in
  H.crash h w1 ~now:3.;
  ignore (r h ~client:2 ~at:4. ~value:"v" ~dur:1.);
  ignore (r h ~client:2 ~at:6. ~value:"v'" ~dur:1.);
  (match violation h with
  | Some (Check.Cycle { values; _ }) ->
      Alcotest.(check bool) "cycle involves v and v'" true
        (List.mem "v" values || List.mem "v'" values)
  | _ -> Alcotest.fail "Figure 5 must violate strict linearizability");
  (* The same history WITHOUT the crash marker (write still pending,
     crash time unknown) is accepted under plain linearizability
     semantics — demonstrating that strictness hinges on the crash
     event. *)
  let h2 = H.create () in
  ignore (w h2 ~client:0 ~at:0. ~value:"v" ~dur:1.);
  ignore (H.invoke h2 ~client:1 ~kind:H.Write ~written:"v'" ~now:2. ());
  ignore (r h2 ~client:2 ~at:4. ~value:"v" ~dur:1.);
  ignore (r h2 ~client:2 ~at:6. ~value:"v'" ~dur:1.);
  Alcotest.(check bool) "plain-linearizable without crash event" true (ok h2)

let test_partial_write_roll_back_ok () =
  (* A crashed write that is never read imposes nothing. *)
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v" ~dur:1.);
  let w1 = H.invoke h ~client:1 ~kind:H.Write ~written:"lost" ~now:2. () in
  H.crash h w1 ~now:3.;
  ignore (r h ~client:2 ~at:4. ~value:"v" ~dur:1.);
  ignore (r h ~client:2 ~at:6. ~value:"v" ~dur:1.);
  Alcotest.(check bool) "rolled back partial ok" true (ok h)

let test_partial_write_roll_forward_ok () =
  (* A crashed write that surfaces immediately and stays is fine. *)
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v" ~dur:1.);
  let w1 = H.invoke h ~client:1 ~kind:H.Write ~written:"v'" ~now:2. () in
  H.crash h w1 ~now:3.;
  ignore (r h ~client:2 ~at:4. ~value:"v'" ~dur:1.);
  ignore (r h ~client:2 ~at:6. ~value:"v'" ~dur:1.);
  Alcotest.(check bool) "rolled forward partial ok" true (ok h)

let test_aborted_ops_ignored () =
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v" ~dur:1.);
  let a = H.invoke h ~client:1 ~kind:H.Write ~written:"aborted-value" ~now:2. () in
  H.abort h a ~now:3.;
  let ar = H.invoke h ~client:1 ~kind:H.Read ~now:4. () in
  H.abort h ar ~now:5.;
  ignore (r h ~client:2 ~at:6. ~value:"v" ~dur:1.);
  Alcotest.(check bool) "aborted ops ignored" true (ok h)

let test_aborted_write_may_take_effect () =
  (* Aborted operations are non-deterministic: the value may appear. *)
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"v" ~dur:1.);
  let a = H.invoke h ~client:1 ~kind:H.Write ~written:"v'" ~now:2. () in
  H.abort h a ~now:3.;
  ignore (r h ~client:2 ~at:4. ~value:"v'" ~dur:1.);
  Alcotest.(check bool) "aborted write observed" true (ok h)

let test_recorder_validation () =
  let h = H.create () in
  Alcotest.check_raises "write needs value"
    (Invalid_argument "Linearize.History.invoke: write without value")
    (fun () -> ignore (H.invoke h ~client:0 ~kind:H.Write ~now:0. ()));
  Alcotest.check_raises "read has no value"
    (Invalid_argument "Linearize.History.invoke: read with value") (fun () ->
      ignore (H.invoke h ~client:0 ~kind:H.Read ~written:"x" ~now:0. ()));
  ignore (w h ~client:0 ~at:0. ~value:"dup" ~dur:1.);
  Alcotest.check_raises "unique values"
    (Invalid_argument
       "Linearize.History.invoke: duplicate write value (unique-value \
        assumption)") (fun () ->
      ignore (H.invoke h ~client:0 ~kind:H.Write ~written:"dup" ~now:2. ()));
  Alcotest.check_raises "nil is reserved"
    (Invalid_argument "Linearize.History.invoke: writing the nil value")
    (fun () ->
      ignore (H.invoke h ~client:0 ~kind:H.Write ~written:H.nil ~now:2. ()))

let test_stats () =
  let h = H.create () in
  ignore (w h ~client:0 ~at:0. ~value:"a" ~dur:1.);
  let x = H.invoke h ~client:0 ~kind:H.Read ~now:2. () in
  H.abort h x ~now:3.;
  ignore (H.invoke h ~client:0 ~kind:H.Read ~now:4. ());
  Alcotest.(check int) "size" 3 (H.size h);
  Alcotest.(check int) "aborts" 1 (H.abort_count h);
  Alcotest.(check int) "pending" 1 (H.pending_count h)

let () =
  Alcotest.run "linearize"
    [
      ( "accepts",
        [
          Alcotest.test_case "empty" `Quick test_empty_history;
          Alcotest.test_case "sequential" `Quick test_sequential_history;
          Alcotest.test_case "nil reads first" `Quick test_initial_nil_reads;
          Alcotest.test_case "overlapping reads may split" `Quick
            test_truly_concurrent_reads_ok;
          Alcotest.test_case "rolled-back partial" `Quick
            test_partial_write_roll_back_ok;
          Alcotest.test_case "rolled-forward partial" `Quick
            test_partial_write_roll_forward_ok;
          Alcotest.test_case "aborted ops ignored" `Quick test_aborted_ops_ignored;
          Alcotest.test_case "aborted write may surface" `Quick
            test_aborted_write_may_take_effect;
        ] );
      ( "rejects",
        [
          Alcotest.test_case "nil after value" `Quick test_nil_after_value_violates;
          Alcotest.test_case "stale read" `Quick test_stale_read_violates;
          Alcotest.test_case "unwritten value" `Quick test_read_of_unwritten;
          Alcotest.test_case "future read" `Quick test_future_read;
          Alcotest.test_case "new-old read inversion" `Quick
            test_concurrent_reads_may_split;
          Alcotest.test_case "Figure 5 scenario" `Quick test_figure5_scenario;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "validation" `Quick test_recorder_validation;
          Alcotest.test_case "statistics" `Quick test_stats;
        ] );
    ]
