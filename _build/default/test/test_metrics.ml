(* Tests for counters, snapshots and summaries. *)

let test_counter () =
  let c = Metrics.Counter.create () in
  Alcotest.(check (float 0.0)) "zero" 0. (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:2.5 c;
  Alcotest.(check (float 0.0)) "accumulated" 3.5 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check (float 0.0)) "reset" 0. (Metrics.Counter.value c)

let test_registry_identity () =
  let r = Metrics.Registry.create () in
  let a = Metrics.Registry.counter r "x" in
  let b = Metrics.Registry.counter r "x" in
  Metrics.Counter.incr a;
  Alcotest.(check (float 0.0)) "same counter" 1. (Metrics.Counter.value b);
  Alcotest.(check (float 0.0)) "by name" 1. (Metrics.Registry.value r "x");
  Alcotest.(check (float 0.0)) "unknown is 0" 0. (Metrics.Registry.value r "y")

let test_registry_names_sorted () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr r "zz";
  Metrics.Registry.incr r "aa";
  Metrics.Registry.incr r "mm";
  Alcotest.(check (list string)) "sorted" [ "aa"; "mm"; "zz" ]
    (Metrics.Registry.names r)

let test_snapshot_diff () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr ~by:5. r "a";
  let before = Metrics.Snapshot.take r in
  Metrics.Registry.incr ~by:3. r "a";
  Metrics.Registry.incr r "b";
  let after = Metrics.Snapshot.take r in
  Alcotest.(check (list (pair string (float 0.0))))
    "diff" [ ("a", 3.); ("b", 1.) ]
    (Metrics.Snapshot.diff ~before ~after);
  Alcotest.(check (float 0.0)) "get" 5. (Metrics.Snapshot.get before "a")

let test_summary_stats () =
  let s = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Metrics.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Metrics.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Metrics.Summary.stddev s);
  Alcotest.(check (float 0.0)) "min" 2. (Metrics.Summary.min s);
  Alcotest.(check (float 0.0)) "max" 9. (Metrics.Summary.max s);
  Alcotest.(check (float 0.0)) "median" 4. (Metrics.Summary.percentile s 50.);
  Alcotest.(check (float 0.0)) "p100" 9. (Metrics.Summary.percentile s 100.)

let test_summary_percentile_edges () =
  let s = Metrics.Summary.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Metrics.Summary.percentile: empty") (fun () ->
      ignore (Metrics.Summary.percentile s 50.));
  Metrics.Summary.add s 1.;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Metrics.Summary.percentile: p out of [0,100]")
    (fun () -> ignore (Metrics.Summary.percentile s 150.));
  Alcotest.(check (float 0.0)) "single value" 1.
    (Metrics.Summary.percentile s 99.)

let test_summary_incremental_after_percentile () =
  (* The sorted cache must be invalidated by later adds. *)
  let s = Metrics.Summary.create () in
  Metrics.Summary.add s 10.;
  Alcotest.(check (float 0.0)) "first" 10. (Metrics.Summary.percentile s 50.);
  Metrics.Summary.add s 1.;
  Alcotest.(check (float 0.0)) "updated" 1. (Metrics.Summary.percentile s 50.)

let () =
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "registry identity" `Quick test_registry_identity;
          Alcotest.test_case "names sorted" `Quick test_registry_names_sorted;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
        ] );
      ( "summary",
        [
          Alcotest.test_case "statistics" `Quick test_summary_stats;
          Alcotest.test_case "percentile edges" `Quick test_summary_percentile_edges;
          Alcotest.test_case "cache invalidation" `Quick
            test_summary_incremental_after_percentile;
        ] );
    ]
