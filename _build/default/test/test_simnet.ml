(* Tests for the simulated network. *)

module E = Dessim.Engine
module Net = Simnet.Net

let make ?(n = 4) ?(config = Net.default_config) () =
  let e = E.create () in
  let metrics = Metrics.Registry.create () in
  let net = Net.create ~metrics e ~config ~n in
  (e, metrics, net)

let test_delivery_and_delay () =
  let e, _, net = make () in
  let got = ref [] in
  Net.register net 1 (fun ~src msg -> got := (src, msg, E.now e) :: !got);
  Net.send net ~src:0 ~dst:1 ~bytes_on_wire:0 "hello";
  E.run e;
  match !got with
  | [ (0, "hello", t) ] -> Alcotest.(check (float 0.0)) "one delta" 1.0 t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_no_handler_drops () =
  let e, _, net = make () in
  Net.send net ~src:0 ~dst:2 ~bytes_on_wire:0 "void";
  E.run e  (* no exception, nothing delivered *)

let test_counters () =
  let e, metrics, net = make () in
  Net.register net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 ~bytes_on_wire:100 "a";
  Net.send net ~src:0 ~dst:1 ~bytes_on_wire:28 "b";
  Net.send ~background:true net ~src:0 ~dst:1 ~bytes_on_wire:7 "bg";
  E.run e;
  Alcotest.(check (float 0.0)) "msgs" 2. (Metrics.Registry.value metrics "net.msgs");
  Alcotest.(check (float 0.0)) "bytes" 128. (Metrics.Registry.value metrics "net.bytes");
  Alcotest.(check (float 0.0)) "bg msgs" 1. (Metrics.Registry.value metrics "net.msgs.bg");
  Alcotest.(check (float 0.0)) "bg bytes" 7. (Metrics.Registry.value metrics "net.bytes.bg")

let test_drop_probability () =
  let config = { Net.default_config with drop = 0.5 } in
  let e, _, net = make ~config () in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  for _ = 1 to 1000 do
    Net.send net ~src:0 ~dst:1 ~bytes_on_wire:0 ()
  done;
  E.run e;
  Alcotest.(check bool)
    (Printf.sprintf "fair loss: got %d of 1000" !received)
    true
    (!received > 350 && !received < 650)

let test_jitter_reorders () =
  let config = { Net.default_config with jitter = 5.0 } in
  let e, _, net = make ~config () in
  let order = ref [] in
  Net.register net 1 (fun ~src:_ i -> order := i :: !order);
  for i = 1 to 50 do
    Net.send net ~src:0 ~dst:1 ~bytes_on_wire:0 i
  done;
  E.run e;
  let arrived = List.rev !order in
  Alcotest.(check int) "all arrive" 50 (List.length arrived);
  Alcotest.(check bool) "reordered" true (arrived <> List.init 50 (fun i -> i + 1))

let test_partition_and_heal () =
  let e, _, net = make () in
  let got = ref 0 in
  Net.register net 2 (fun ~src:_ _ -> incr got);
  Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Net.send net ~src:0 ~dst:2 ~bytes_on_wire:0 ();  (* across: lost *)
  Net.send net ~src:3 ~dst:2 ~bytes_on_wire:0 ();  (* within: delivered *)
  E.run e;
  Alcotest.(check int) "only intra-group" 1 !got;
  Net.heal net;
  Net.send net ~src:0 ~dst:2 ~bytes_on_wire:0 ();
  E.run e;
  Alcotest.(check int) "after heal" 2 !got

let test_partition_implicit_group () =
  let e, _, net = make ~n:5 () in
  let got = ref 0 in
  Net.register net 4 (fun ~src:_ _ -> incr got);
  Net.partition net [ [ 0; 1 ] ];
  (* 2, 3, 4 form the implicit group. *)
  Net.send net ~src:3 ~dst:4 ~bytes_on_wire:0 ();
  Net.send net ~src:0 ~dst:4 ~bytes_on_wire:0 ();
  E.run e;
  Alcotest.(check int) "implicit group communicates" 1 !got

let test_partition_overlap_rejected () =
  let _, _, net = make () in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Simnet.Net.partition: address in two groups") (fun () ->
      Net.partition net [ [ 0; 1 ]; [ 1; 2 ] ])

let test_link_down () =
  let e, _, net = make () in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.set_link_down net ~src:0 ~dst:1 true;
  Net.send net ~src:0 ~dst:1 ~bytes_on_wire:0 ();
  (* Reverse direction unaffected. *)
  Net.register net 0 (fun ~src:_ _ -> incr got);
  Net.send net ~src:1 ~dst:0 ~bytes_on_wire:0 ();
  E.run e;
  Alcotest.(check int) "directed" 1 !got;
  Net.set_link_down net ~src:0 ~dst:1 false;
  Net.send net ~src:0 ~dst:1 ~bytes_on_wire:0 ();
  E.run e;
  Alcotest.(check int) "revived" 2 !got

let test_bad_drop_rejected () =
  let _, _, net = make () in
  Alcotest.check_raises "p = 1 breaks fair loss"
    (Invalid_argument "Simnet.Net.set_drop: need 0 <= p < 1 for fair loss")
    (fun () -> Net.set_drop net 1.0)

let test_addr_range () =
  let _, _, net = make () in
  Alcotest.check_raises "bad addr"
    (Invalid_argument "Simnet.Net: address out of range") (fun () ->
      Net.send net ~src:0 ~dst:9 ~bytes_on_wire:0 ())

let () =
  Alcotest.run "simnet"
    [
      ( "delivery",
        [
          Alcotest.test_case "delivery and delay" `Quick test_delivery_and_delay;
          Alcotest.test_case "no handler drops" `Quick test_no_handler_drops;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "drop probability" `Quick test_drop_probability;
          Alcotest.test_case "jitter reorders" `Quick test_jitter_reorders;
        ] );
      ( "faults",
        [
          Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
          Alcotest.test_case "implicit group" `Quick test_partition_implicit_group;
          Alcotest.test_case "overlap rejected" `Quick test_partition_overlap_rejected;
          Alcotest.test_case "directed link down" `Quick test_link_down;
          Alcotest.test_case "drop = 1 rejected" `Quick test_bad_drop_rejected;
          Alcotest.test_case "address range" `Quick test_addr_range;
        ] );
    ]
