bench/main.mli:
