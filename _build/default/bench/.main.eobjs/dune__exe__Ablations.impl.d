bench/ablations.ml: Array Baseline Brick Bytes Char Core Dessim Fab List Metrics Printf Random Result Simnet String Util Workload
