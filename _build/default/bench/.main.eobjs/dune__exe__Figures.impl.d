bench/figures.ml: Format List Printf Reliability String Util
