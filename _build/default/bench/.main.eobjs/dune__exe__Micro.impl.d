bench/micro.ml: Analyze Array Bechamel Benchmark Bytes Char Erasure Hashtbl Instance List Measure Printf Staged String Test Time Toolkit Util
