bench/fig5.ml: Array Brick Bytes Core Dessim Format Linearize Printf Simnet String Util
