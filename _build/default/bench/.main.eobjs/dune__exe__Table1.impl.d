bench/table1.ml: Baseline Bytes Core Dessim Metrics Printf Util
