bench/main.ml: Ablations Appendix_a Array Fig5 Figures List Micro Printf String Sys Table1
