bench/appendix_a.ml: List Printf Quorum Util
