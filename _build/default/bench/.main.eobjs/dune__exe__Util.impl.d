bench/util.ml: Array Bytes Char Core Dessim Float Metrics Printf String
