(* Experiment A1 — Appendix A, Theorem 2: an m-quorum system over n
   processes tolerating f faults exists iff n >= 2f + m.

   We sweep (n, m, f), compare the theorem's predicate against a
   brute-force check of the canonical construction (all (n-f)-subsets:
   CONSISTENCY by minimum pairwise intersection, AVAILABILITY by
   construction), and print the maximum tolerable f for the geometries
   the paper uses. *)

module MQ = Quorum.Mquorum
open Util

let rec subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) n)
    @ subsets k (lo + 1) n

let min_pairwise_intersection n size =
  (* Smallest |Q1 ∩ Q2| over all pairs of (size)-subsets of [0, n):
     achieved by two maximally disjoint subsets, but we verify by
     brute force for small n. *)
  let qs = subsets size 0 n in
  List.fold_left
    (fun acc q1 ->
      List.fold_left
        (fun acc q2 ->
          let inter = List.length (List.filter (fun x -> List.mem x q2) q1) in
          min acc inter)
        acc qs)
    size qs

let run () =
  section "A1 | Appendix A: existence of m-quorum systems (n >= 2f + m)";
  Printf.printf
    "  Brute-force verification of Theorem 2 on all n <= 8 (checked against\n\
    \  the canonical construction {Q : |Q| >= n - f}):\n\n";
  let mismatches = ref 0 and checked = ref 0 in
  for n = 1 to 8 do
    for m = 1 to n do
      for f = 0 to n do
        incr checked;
        let predicted = n >= (2 * f) + m in
        let actual =
          if f > n then false
          else if n - f < m then false  (* quorums too small to hold m *)
          else min_pairwise_intersection n (n - f) >= m
        in
        if predicted <> actual then begin
          incr mismatches;
          Printf.printf "  MISMATCH at n=%d m=%d f=%d\n" n m f
        end
      done
    done
  done;
  Printf.printf "  checked %d parameter triples, %d mismatches\n" !checked
    !mismatches;
  subsection "Maximum tolerable faults f = (n - m) / 2";
  Printf.printf "  %-14s %8s %8s %12s\n" "code" "f" "quorum" "overhead";
  List.iter
    (fun (m, n) ->
      let q = MQ.create ~n ~m in
      Printf.printf "  E.C.(%d,%d)%4s %8d %8d %12.2f\n" m n "" (MQ.f q)
        (MQ.quorum_size q)
        (float_of_int n /. float_of_int m))
    [ (1, 3); (2, 4); (3, 5); (5, 8); (5, 10); (8, 12) ]
