(* Microbenchmarks (Bechamel): raw throughput of the erasure-coding
   primitives this implementation hand-rolls — the compute cost a FAB
   brick pays per block on the wire-side of the protocol. *)

open Bechamel
open Toolkit

let block_size = 4096

let stripe m =
  Array.init m (fun i -> Bytes.make block_size (Char.chr (33 + i)))

let make_tests () =
  let mk_codec name codec m =
    let data = stripe m in
    let enc = Erasure.Codec.encode codec data in
    let n = Erasure.Codec.n codec in
    let decode_input = List.init m (fun i -> (n - m + i, enc.(n - m + i))) in
    let new_block = Bytes.make block_size 'z' in
    [
      Test.make ~name:(name ^ " encode")
        (Staged.stage (fun () -> ignore (Erasure.Codec.encode codec data)));
      Test.make
        ~name:(name ^ " decode (parity-heavy)")
        (Staged.stage (fun () ->
             ignore (Erasure.Codec.decode codec decode_input)));
      Test.make ~name:(name ^ " modify")
        (Staged.stage (fun () ->
             ignore
               (Erasure.Codec.modify codec ~data_idx:0 ~parity_idx:0
                  ~old_data:data.(0) ~new_data:new_block ~old_parity:enc.(m))));
    ]
  in
  Test.make_grouped ~name:"erasure" ~fmt:"%s %s"
    (mk_codec "rs(5,8)" (Erasure.Codec.rs ~m:5 ~n:8) 5
    @ mk_codec "rs(10,14)" (Erasure.Codec.rs ~m:10 ~n:14) 10
    @ mk_codec "parity(4,5)" (Erasure.Codec.parity ~m:4) 4)

let run () =
  Util.section "MICRO | erasure-coding primitive throughput (4 KiB blocks)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (make_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Printf.printf "  %-38s %16s %16s\n" "primitive" "ns/op" "MB/s (per block)";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] when ns > 0. ->
          let mbps = float_of_int block_size /. ns *. 1e9 /. 1e6 in
          Printf.printf "  %-38s %16.1f %16.1f\n" name ns mbps
      | _ -> Printf.printf "  %-38s %16s %16s\n" name "(n/a)" "(n/a)")
    rows
