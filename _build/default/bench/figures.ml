(* Experiments F2 and F3 — the paper's reliability figures.

   Figure 2: MTTDL (years) against logical capacity for five
   redundancy schemes. Figure 3: storage overhead against the MTTDL it
   buys at 256 TB, sweeping the replication factor and the erasure-code
   width. Both come from the analytic Markov model in lib/reliability;
   constants are in Reliability.Params (see DESIGN.md for the
   calibration caveats). *)

module Model = Reliability.Model
module Params = Reliability.Params
open Util

let p = Params.default

let figure2 () =
  section "F2 | Figure 2: MTTDL (years) vs logical capacity (TB)";
  Printf.printf "Components: %s\n\n" (Format.asprintf "%a" Params.pp p);
  let capacities = [ 1.; 3.; 10.; 32.; 100.; 256.; 1000. ] in
  let series =
    [
      ("4-way replication/R5 bricks", Model.Replication 4, Model.R5);
      ("E.C.(5,8)/R5 bricks", Model.Erasure (5, 8), Model.R5);
      ("4-way replication/R0 bricks", Model.Replication 4, Model.R0);
      ("E.C.(5,8)/R0 bricks", Model.Erasure (5, 8), Model.R0);
      ("Striping/reliable R5 bricks", Model.Striping, Model.Reliable_r5);
    ]
  in
  Printf.printf "  %-30s" "logical capacity (TB):";
  List.iter (fun c -> Printf.printf " %9.0f" c) capacities;
  Printf.printf "\n  %s\n" (String.make 97 '-');
  List.iter
    (fun (name, scheme, brick) ->
      Printf.printf "  %-30s" name;
      List.iter
        (fun c ->
          Printf.printf " %9.2e" (Model.mttdl_years p scheme brick ~logical_tb:c))
        capacities;
      Printf.printf "\n")
    series;
  Printf.printf
    "\nPaper's qualitative claims to check against the rows above:\n\
    \  - striping is adequate only for small systems and scales worst;\n\
    \  - 4-way replication and E.C.(5,8) both offer very high MTTDL\n\
    \    (both tolerate 3 brick failures), with replication on top;\n\
    \  - internal RAID-5 bricks lift every scheme by orders of magnitude;\n\
    \  - every curve declines as capacity grows.\n"

let figure3 () =
  section "F3 | Figure 3: storage overhead vs MTTDL at 256 TB";
  let cap = 256. in
  let print_series name entries =
    Printf.printf "\n  %s\n" name;
    Printf.printf "    %-14s %14s %14s\n" "config" "overhead" "MTTDL (years)";
    List.iter
      (fun (label, scheme, brick) ->
        Printf.printf "    %-14s %14.2f %14.3e\n" label
          (Model.storage_overhead p scheme brick)
          (Model.mttdl_years p scheme brick ~logical_tb:cap))
      entries
  in
  print_series "Replication / R0 bricks"
    (List.map
       (fun k -> (Printf.sprintf "k = %d" k, Model.Replication k, Model.R0))
       [ 1; 2; 3; 4; 5; 6 ]);
  print_series "Replication / R5 bricks"
    (List.map
       (fun k -> (Printf.sprintf "k = %d" k, Model.Replication k, Model.R5))
       [ 1; 2; 3; 4; 5 ]);
  print_series "E.C.(5,n) / R0 bricks"
    (List.map
       (fun n -> (Printf.sprintf "n = %d" n, Model.Erasure (5, n), Model.R0))
       [ 6; 7; 8; 9; 10; 11; 12 ]);
  print_series "E.C.(5,n) / R5 bricks"
    (List.map
       (fun n -> (Printf.sprintf "n = %d" n, Model.Erasure (5, n), Model.R5))
       [ 6; 7; 8; 9; 10 ]);
  Printf.printf
    "\n  (striping over RAID-5 bricks is fixed at overhead %.2f, MTTDL %.3e years)\n"
    (Model.storage_overhead p Model.Striping Model.Reliable_r5)
    (Model.mttdl_years p Model.Striping Model.Reliable_r5 ~logical_tb:cap);
  Printf.printf
    "\nPaper's claim: replication overhead rises much more steeply with the\n\
     required MTTDL than erasure coding's (compare the overhead column each\n\
     family needs to cross a target MTTDL).\n"

let run () =
  figure2 ();
  figure3 ()
