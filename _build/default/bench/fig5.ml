(* Experiment F5 — the paper's Figure 5 scenario, executed.

   Replication-as-erasure-coding over three processes (m = 1, n = 3).
   write1(v') crashes after storing v' on a single process; read2 runs
   and returns v. The paper's point: once read2 returned v, no later
   read may return v' — a naive highest-timestamp read-back would do
   exactly that after process a recovers. We run the scenario against
   our implementation, record the history, and hand it to the
   strict-linearizability checker. *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module H = Linearize.History
module Check = Linearize.Check
open Util

let block_size = 64

let blk s =
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let value b =
  match Bytes.index_opt b '\000' with
  | Some 0 -> H.nil
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

let run () =
  section "F5 | Figure 5: partial writes never surface after a newer read";
  let cl = Cluster.create ~m:1 ~n:3 ~block_size () in
  let h = H.create () in
  let engine = cl.Cluster.engine in
  let now () = Dessim.Engine.now engine in

  (* write0(v): a complete write so the register holds v. *)
  let id = H.invoke h ~client:0 ~kind:H.Write ~written:"v" ~now:(now ()) () in
  (match
     Cluster.run_op ~coord:0 cl (fun c ->
         Coordinator.write_stripe c ~stripe:0 [| blk "v" |])
   with
  | Some (Ok ()) -> H.complete_write h id ~now:(now ())
  | _ -> failwith "seed write failed");

  (* write1(v') from process a (brick 1): its Write-phase messages
     reach only itself, then it crashes. *)
  let w1 = H.invoke h ~client:1 ~kind:H.Write ~written:"v'" ~now:(now ()) () in
  Cluster.spawn ~coord:1 cl (fun c ->
      ignore (Coordinator.write_stripe c ~stripe:0 [| blk "v'" |]));
  ignore
    (Dessim.Engine.schedule engine ~delay:1.5 (fun () ->
         Simnet.Net.set_link_down cl.Cluster.net ~src:1 ~dst:0 true;
         Simnet.Net.set_link_down cl.Cluster.net ~src:1 ~dst:2 true));
  let crash_at = ref 0. in
  ignore
    (Dessim.Engine.schedule engine ~delay:4.5 (fun () ->
         crash_at := now ();
         Brick.crash cl.Cluster.bricks.(1)));
  Cluster.run ~horizon:20. cl;
  H.crash h w1 ~now:!crash_at;
  Printf.printf "  write1(v') crashed at t=%.1f having stored v' on 1 of 3 processes\n" !crash_at;

  (* read2 via process b (brick 0): must return v, rolling write1 back. *)
  let do_read name coord =
    let id = H.invoke h ~client:coord ~kind:H.Read ~now:(now ()) () in
    match
      Cluster.run_op ~coord cl (fun c ->
          Coordinator.with_retries c (fun () -> Coordinator.read_stripe c ~stripe:0))
    with
    | Some (Ok data) ->
        let v = value data.(0) in
        H.complete_read h id ~value:v ~now:(now ());
        Printf.printf "  %s returned %S\n" name v;
        v
    | _ ->
        H.abort h id ~now:(now ());
        Printf.printf "  %s aborted\n" name;
        "<aborted>"
  in
  let r2 = do_read "read2 (while a is down)" 0 in

  (* Process a recovers — in the naive protocol its higher-timestamped
     v' would now win. *)
  Simnet.Net.set_link_down cl.Cluster.net ~src:1 ~dst:0 false;
  Simnet.Net.set_link_down cl.Cluster.net ~src:1 ~dst:2 false;
  Brick.recover cl.Cluster.bricks.(1);
  Printf.printf "  process a recovered with its leftover v'\n";
  let r3 = do_read "read3 (after a recovered)" 2 in
  let r4 = do_read "read4 (coordinated by a itself)" 1 in

  let verdict =
    match Check.strict h with
    | Ok () -> "strictly linearizable"
    | Error v -> Format.asprintf "VIOLATION: %a" Check.pp_violation v
  in
  Printf.printf "\n  paper: read3 must return v even though v' has a higher timestamp\n";
  Printf.printf "  measured: read2=%S read3=%S read4=%S -> %s\n" r2 r3 r4 verdict;
  if r2 <> "v" || r3 <> "v" || r4 <> "v" then
    Printf.printf "  *** UNEXPECTED: the rolled-back value surfaced ***\n"
