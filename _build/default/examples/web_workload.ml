(* A read-intensive web-server workload (the workload class the
   paper's section 1.2 argues erasure coding is best suited for),
   compared head-to-head against 4-way replication on the same number
   of client operations.

   Run with:  dune exec examples/web_workload.exe *)

let run_config name volume ~clients ~ops_per_client =
  let capacity = Fab.Volume.capacity_blocks volume in
  let stats = Array.init clients (fun _ -> Workload.Client.fresh_stats ()) in
  let cluster = Fab.Volume.cluster volume in
  let engine = cluster.Core.Cluster.engine in
  let started = Dessim.Engine.now engine in
  for c = 0 to clients - 1 do
    let gen =
      Workload.Gen.make Workload.Gen.web_server ~capacity_blocks:capacity
        ~rng:(Random.State.make [| 1000 + c |])
    in
    Workload.Client.spawn volume
      ~coord:(c mod Array.length cluster.Core.Cluster.bricks)
      ~gen ~ops:ops_per_client ~payload_tag:(Char.chr (97 + c))
      stats.(c)
  done;
  Fab.Volume.run volume;
  let elapsed = Dessim.Engine.now engine -. started in
  let total = Array.fold_left (fun acc s -> acc + s.Workload.Client.ops) 0 stats in
  let aborts =
    Array.fold_left (fun acc s -> acc + s.Workload.Client.aborts) 0 stats
  in
  let metrics = cluster.Core.Cluster.metrics in
  let mean_lat =
    Array.fold_left
      (fun acc s -> acc +. Metrics.Summary.mean s.Workload.Client.latency)
      0. stats
    /. float_of_int clients
  in
  Printf.printf "  %-22s %8d %8.2f %10.1f %12.0f %12.0f %8d\n" name total
    mean_lat
    (float_of_int total /. elapsed *. 1000.)
    (Metrics.Registry.value metrics "disk.reads"
    +. Metrics.Registry.value metrics "disk.writes")
    (Metrics.Registry.value metrics "net.bytes" /. 1024.)
    aborts

let () =
  Printf.printf
    "Web-server workload: 95%% reads, Zipf-skewed, single-block ops.\n";
  Printf.printf "4 concurrent clients x 250 ops each, 512-byte blocks.\n\n";
  Printf.printf "  %-22s %8s %8s %10s %12s %12s %8s\n" "configuration" "ops"
    "latency" "ops/kdelta" "disk I/Os" "net KiB" "aborts";
  let ec =
    Fab.Volume.create ~m:5 ~n:8 ~stripes:40 ~block_size:512 ~seed:5 ()
  in
  run_config "E.C.(5,8)" ec ~clients:4 ~ops_per_client:250;
  let repl =
    Fab.Volume.create ~m:1 ~n:4 ~stripes:200 ~block_size:512 ~seed:5 ()
  in
  run_config "4-way replication" repl ~clients:4 ~ops_per_client:250;
  Printf.printf
    "\nBoth tolerate brick failures (f=1 for E.C., f=1 for replication with\n\
     majority quorums), but E.C.(5,8) stores 1.6x the logical bytes where\n\
     4-way replication stores 4x — at nearly identical read-path cost on\n\
     this workload. That trade is the paper's motivation for FAB + erasure\n\
     codes on read-intensive services.\n"
