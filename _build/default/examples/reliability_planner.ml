(* Capacity planning with the reliability model: given a target
   logical capacity and MTTDL, which redundancy scheme is cheapest?

   Run with:  dune exec examples/reliability_planner.exe [capacity_tb] [target_years]

   This is the calculation behind figures 2 and 3, packaged the way a
   storage architect would use it. *)

module Model = Reliability.Model
module Params = Reliability.Params

let () =
  let capacity_tb =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 256.
  in
  let target_years =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 1e6
  in
  let p = Params.default in
  Printf.printf "Planning %g TB logical capacity, target MTTDL %.1e years\n"
    capacity_tb target_years;
  Printf.printf "Brick model: %s\n\n" (Format.asprintf "%a" Params.pp p);
  let candidates =
    List.concat
      [
        [ ("striping", Model.Striping, Model.Reliable_r5) ];
        List.concat_map
          (fun k ->
            [
              (Printf.sprintf "%d-way replication/R0" k, Model.Replication k, Model.R0);
              (Printf.sprintf "%d-way replication/R5" k, Model.Replication k, Model.R5);
            ])
          [ 2; 3; 4; 5 ];
        List.concat_map
          (fun n ->
            [
              (Printf.sprintf "E.C.(5,%d)/R0" n, Model.Erasure (5, n), Model.R0);
              (Printf.sprintf "E.C.(5,%d)/R5" n, Model.Erasure (5, n), Model.R5);
            ])
          [ 6; 7; 8; 9; 10 ];
      ]
  in
  let evaluated =
    List.map
      (fun (name, scheme, brick) ->
        let mttdl = Model.mttdl_years p scheme brick ~logical_tb:capacity_tb in
        let overhead = Model.storage_overhead p scheme brick in
        let bricks = Model.bricks_needed p scheme brick ~logical_tb:capacity_tb in
        (name, mttdl, overhead, bricks, Model.tolerated scheme))
      candidates
  in
  let sorted =
    List.sort (fun (_, _, o1, _, _) (_, _, o2, _, _) -> compare o1 o2) evaluated
  in
  Printf.printf "  %-26s %12s %10s %8s %12s %8s\n" "scheme" "MTTDL (yr)"
    "overhead" "bricks" "survives" "meets?";
  List.iter
    (fun (name, mttdl, overhead, bricks, tol) ->
      Printf.printf "  %-26s %12.2e %10.2f %8d %9d dn %8s\n" name mttdl
        overhead bricks tol
        (if mttdl >= target_years then "YES" else "-"))
    sorted;
  match
    List.filter (fun (_, mttdl, _, _, _) -> mttdl >= target_years) sorted
  with
  | [] -> Printf.printf "\nNo candidate meets the target; add redundancy.\n"
  | (name, mttdl, overhead, bricks, _) :: _ ->
      Printf.printf
        "\nCheapest scheme meeting the target: %s\n\
        \  (%.2fx raw storage, %d bricks, MTTDL %.2e years)\n"
        name overhead bricks mttdl
