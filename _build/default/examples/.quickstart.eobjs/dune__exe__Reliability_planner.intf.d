examples/reliability_planner.mli:
