examples/quickstart.ml: Array Brick Bytes Core Fab Printf String
