examples/web_workload.mli:
