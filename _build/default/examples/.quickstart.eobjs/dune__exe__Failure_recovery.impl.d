examples/failure_recovery.ml: Array Brick Bytes Char Core Dessim Fab List Printf Simnet
