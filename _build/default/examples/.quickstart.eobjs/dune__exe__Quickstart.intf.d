examples/quickstart.mli:
