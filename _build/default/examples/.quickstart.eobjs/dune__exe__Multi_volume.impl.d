examples/multi_volume.ml: Array Brick Bytes Core Fab List Printf String
