examples/reliability_planner.ml: Array Format List Printf Reliability Sys
