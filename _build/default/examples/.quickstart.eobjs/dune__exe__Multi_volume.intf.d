examples/multi_volume.mli:
