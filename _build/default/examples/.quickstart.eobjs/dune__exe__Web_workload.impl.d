examples/web_workload.ml: Array Char Core Dessim Fab Metrics Printf Random Workload
