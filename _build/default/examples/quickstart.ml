(* Quickstart: a 5-of-8 erasure-coded virtual disk in a few lines.

   Run with:  dune exec examples/quickstart.exe

   A FAB volume looks like a disk: read and write blocks at logical
   block addresses through any brick. Underneath, every stripe of 5
   data blocks is erasure-coded into 8 blocks spread over 8 bricks,
   and every operation runs the paper's quorum protocol. *)

let () =
  (* A volume of 16 stripes x 5 blocks x 4 KiB = 320 KiB, over 8
     simulated bricks. *)
  let volume =
    Fab.Volume.create ~m:5 ~n:8 ~stripes:16 ~block_size:4096 ()
  in
  Printf.printf "Created a %d-block virtual disk over 8 bricks (5-of-8 code)\n"
    (Fab.Volume.capacity_blocks volume);

  (* All I/O runs inside the simulation: Volume.run_op spawns the
     request as a fiber and drives the event loop. *)
  let message = "hello, federated array of bricks!" in
  let data = Bytes.make 4096 '\000' in
  Bytes.blit_string message 0 data 0 (String.length message);

  (match
     Fab.Volume.run_op volume (fun () ->
         Fab.Volume.write volume ~coord:0 ~lba:42 data)
   with
  | Some (Ok ()) -> Printf.printf "wrote LBA 42 via brick 0\n"
  | _ -> failwith "write failed");

  (* Read it back through a different brick: any brick can coordinate
     any request. *)
  (match
     Fab.Volume.run_op volume (fun () ->
         Fab.Volume.read volume ~coord:5 ~lba:42 ~count:1)
   with
  | Some (Ok got) ->
      let text = Bytes.sub_string got 0 (String.length message) in
      Printf.printf "read LBA 42 via brick 5: %S\n" text
  | _ -> failwith "read failed");

  (* Crash a brick — fewer than f+1 = 2, so nothing is lost. *)
  Brick.crash (Fab.Volume.cluster volume).Core.Cluster.bricks.(3);
  Printf.printf "crashed brick 3\n";
  (match
     Fab.Volume.run_op volume (fun () ->
         Fab.Volume.read volume ~coord:7 ~lba:42 ~count:1)
   with
  | Some (Ok got) ->
      Printf.printf "read LBA 42 with brick 3 down: %S\n"
        (Bytes.sub_string got 0 (String.length message))
  | _ -> failwith "degraded read failed");

  (* Writes keep working too; the crashed brick simply misses them and
     will catch up from its peers after recovery. *)
  Bytes.blit_string "updated while degraded!" 0 data 0 23;
  (match
     Fab.Volume.run_op volume (fun () ->
         Fab.Volume.write volume ~coord:1 ~lba:42 data)
   with
  | Some (Ok ()) -> Printf.printf "overwrote LBA 42 while degraded\n"
  | _ -> failwith "degraded write failed");

  Brick.recover (Fab.Volume.cluster volume).Core.Cluster.bricks.(3);
  (match
     Fab.Volume.run_op volume (fun () ->
         Fab.Volume.read volume ~coord:3 ~lba:42 ~count:1)
   with
  | Some (Ok got) ->
      Printf.printf "brick 3 recovered and serves reads again: %S\n"
        (Bytes.sub_string got 0 23)
  | _ -> failwith "read after recovery failed");
  print_endline "done."
