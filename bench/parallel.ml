(* Wall-clock throughput of the FAB protocol on the OCaml 5 multicore
   backend (lib/runtime_mc): the same mixed OLTP workload is driven
   against identical m-of-n deployments at increasing worker-domain
   counts, and every row reports real ops/sec, exact-rank latency
   percentiles (pooled {!Metrics.Hist}) and the speedup over the
   one-domain run.

   Unlike every other section of this harness, time here is measured
   by the monotonic clock, not in delta units — the numbers depend on
   the machine (core count is stamped into the meta as [hw_cores]; on
   a single-core host the sweep degenerates to scheduling overhead and
   speedups near 1x are expected). Protocol behavior is identical to
   the sim backend by construction (lib/runtime); verify correctness
   there, measure wall-clock here.

   [json_out] (set by bench/main.ml's --json flag) writes
   BENCH_parallel.json; [smoke] shrinks the sweep and the op quota so
   the @parallel-smoke alias stays fast. *)

let json_out : string option ref = ref None
let smoke : bool ref = ref false

let m = 2
let n = 4
let stripes = 32

type run_result = {
  domains : int;
  ops_done : int;
  aborted : int;
  unavailable : int;
  elapsed : float; (* wall-clock seconds *)
  ops_per_sec : float;
  lat : Metrics.Hist.t; (* pooled per-op latency, seconds *)
}

(* One deployment, [clients] concurrent clients of [ops] ops each.
   Every client gets its own coordinator brick so logical (time, pid)
   timestamps stay unique under real concurrency. *)
let run_one ~domains ~clients ~ops ~block_size =
  let nbricks = max n clients in
  let layout_kind = if nbricks = n then Fab.Layout.Fixed else Fab.Layout.Rotating in
  let cluster =
    Core.Cluster.create_mc ~domains ~bricks:nbricks
      ~layout:(Fab.Layout.make layout_kind ~bricks:nbricks ~n)
      ~block_size ~ts_cache:true ~m ~n ()
  in
  let volume =
    Fab.Volume.of_cluster ~cluster ~m ~stripes ~block_size ~op_retries:8
      ~pipeline_window:4 ~stripe_offset:0 ()
  in
  let rt = cluster.Core.Cluster.runtime in
  let stats = Array.init clients (fun _ -> Workload.Client.fresh_stats ()) in
  let started = Runtime.now rt in
  for c = 0 to clients - 1 do
    let gen =
      Workload.Gen.make Workload.Gen.oltp
        ~capacity_blocks:(Fab.Volume.capacity_blocks volume)
        ~rng:(Random.State.make [| 7; c |])
    in
    Workload.Client.spawn volume ~coord:(c mod nbricks) ~gen ~ops
      ~payload_tag:(Char.chr (97 + (c mod 26)))
      stats.(c)
  done;
  Core.Cluster.await_quiesce cluster;
  let elapsed = Runtime.now rt -. started in
  Core.Cluster.shutdown cluster;
  let total field = Array.fold_left (fun acc s -> acc + field s) 0 stats in
  let ops_done = total (fun s -> s.Workload.Client.ops) in
  let lat =
    Array.fold_left
      (fun acc s -> Metrics.Hist.merge acc s.Workload.Client.latency_hist)
      (Metrics.Hist.create ()) stats
  in
  {
    domains;
    ops_done;
    aborted = total (fun s -> s.Workload.Client.aborts);
    unavailable = total (fun s -> s.Workload.Client.unavailable);
    elapsed;
    ops_per_sec =
      (if elapsed > 0. then float_of_int ops_done /. elapsed else 0.);
    lat;
  }

let pct r p =
  if Metrics.Hist.count r.lat = 0 then 0. else Metrics.Hist.percentile r.lat p

let run () =
  let sweep = if !smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let clients = if !smoke then 2 else 4 in
  let ops = if !smoke then 15 else 150 in
  let block_size = if !smoke then 1024 else 8192 in
  let hw = Runtime_mc.hw_cores () in
  Util.section "Parallel backend (wall clock)";
  Printf.printf
    "  runtime mc: %d-of-%d code, %d clients x %d ops, %dB blocks, %d \
     hardware core%s\n"
    m n clients ops block_size hw
    (if hw = 1 then "" else "s");
  if hw < List.fold_left max 1 sweep then
    Printf.printf
    "  note: sweep exceeds the core count; speedups are bounded by %d \
     hardware core%s\n"
      hw
      (if hw = 1 then "" else "s");
  let results = List.map (fun d -> run_one ~domains:d ~clients ~ops ~block_size) sweep in
  let base = List.hd results in
  Printf.printf "  %-8s | %10s | %12s | %10s | %10s | %8s\n" "domains"
    "ops done" "ops/sec" "p50 (ms)" "p99 (ms)" "speedup";
  Printf.printf "  %s\n" (String.make 72 '-');
  List.iter
    (fun r ->
      Printf.printf "  %-8d | %10d | %12.0f | %10.3f | %10.3f | %7.2fx\n"
        r.domains r.ops_done r.ops_per_sec
        (pct r 50. *. 1e3)
        (pct r 99. *. 1e3)
        (if base.ops_per_sec > 0. then r.ops_per_sec /. base.ops_per_sec
         else 0.))
    results;
  Option.iter
    (fun path ->
      let open Obs.Json in
      let num k v = (k, F v) in
      let doc =
        ( "meta",
          Obs.Meta.standard ~runtime:"mc"
            ~domains:(List.fold_left max 1 sweep)
            ~extra:
              [
                ("tool", S "bench parallel");
                ("m", I m);
                ("n", I n);
                ("stripes", I stripes);
                ("block_size", I block_size);
                ("clients", I clients);
                ("ops", I ops);
                ("hw_cores", I hw);
                ("smoke", B !smoke);
                ("gf_kernel", S Gf256.Kernel.(name (default ())));
              ]
            () )
        :: List.map
             (fun r ->
               ( Printf.sprintf "domains_%d" r.domains,
                 [
                   ("domains", I r.domains);
                   ("ops_done", I r.ops_done);
                   ("aborted", I r.aborted);
                   ("unavailable", I r.unavailable);
                   num "elapsed_s" r.elapsed;
                   num "ops_per_sec" r.ops_per_sec;
                   num "p50_ms" (pct r 50. *. 1e3);
                   num "p99_ms" (pct r 99. *. 1e3);
                   num "speedup_vs_1"
                     (if base.ops_per_sec > 0. then
                        r.ops_per_sec /. base.ops_per_sec
                      else 0.);
                 ] ))
             results
      in
      let oc = open_out path in
      Printf.fprintf oc "{%s}\n"
        (String.concat ",\n "
           (List.map
              (fun (name, fields) -> render (S name) ^ ": " ^ obj fields)
              doc));
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    !json_out
