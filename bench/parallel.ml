(* Wall-clock throughput of the FAB protocol on the OCaml 5 multicore
   backend (lib/runtime_mc): the same mixed OLTP workload is driven
   against identical m-of-n deployments at increasing worker-domain
   counts, and every row reports real ops/sec, exact-rank latency
   percentiles (pooled {!Metrics.Hist}) and the speedup over the
   one-domain run.

   Unlike every other section of this harness, time here is measured
   by the monotonic clock, not in delta units — the numbers depend on
   the machine (core count is stamped into the meta as [hw_cores]; on
   a single-core host the sweep degenerates to scheduling overhead and
   speedups near 1x are expected). Protocol behavior is identical to
   the sim backend by construction (lib/runtime); verify correctness
   there, measure wall-clock here.

   [json_out] (set by bench/main.ml's --json flag) writes
   BENCH_parallel.json; [smoke] shrinks the sweep and the op quota so
   the @parallel-smoke alias stays fast. *)

let json_out : string option ref = ref None
let smoke : bool ref = ref false

let m = 2
let n = 4
let stripes = 32

type run_result = {
  domains : int;
  ops_done : int;
  aborted : int;
  unavailable : int;
  elapsed : float; (* wall-clock seconds *)
  ops_per_sec : float;
  lat : Metrics.Hist.t; (* pooled per-op latency, seconds *)
  minor_words_per_op : float;
      (* minor-heap words allocated per completed op on the worker
         domain; meaningful (and only measured) at domains = 1, where
         every protocol task runs on that one domain. *)
}

(* Read [Gc.minor_words] from inside the pool: spawned as a task so the
   counter is the worker domain's, which is where every protocol
   allocation lands when the pool has a single domain. *)
let probe_minor_words rt =
  let words = ref 0. in
  let g = rt.Runtime.gate () in
  Runtime.spawn rt (fun () ->
      words := Gc.minor_words ();
      g.Runtime.open_ ());
  g.Runtime.await ();
  !words

(* One deployment, [clients] concurrent clients of [ops] ops each.
   Every client gets its own coordinator brick so logical (time, pid)
   timestamps stay unique under real concurrency. *)
let run_one ~domains ~clients ~ops ~block_size =
  let nbricks = max n clients in
  let layout_kind = if nbricks = n then Fab.Layout.Fixed else Fab.Layout.Rotating in
  let cluster =
    Core.Cluster.create_mc ~domains ~bricks:nbricks
      ~layout:(Fab.Layout.make layout_kind ~bricks:nbricks ~n)
      ~block_size ~ts_cache:true ~m ~n ()
  in
  let volume =
    Fab.Volume.of_cluster ~cluster ~m ~stripes ~block_size ~op_retries:8
      ~pipeline_window:4 ~stripe_offset:0 ()
  in
  let rt = cluster.Core.Cluster.runtime in
  let stats = Array.init clients (fun _ -> Workload.Client.fresh_stats ()) in
  let words0 = if domains = 1 then probe_minor_words rt else 0. in
  let started = Runtime.now rt in
  for c = 0 to clients - 1 do
    let gen =
      Workload.Gen.make Workload.Gen.oltp
        ~capacity_blocks:(Fab.Volume.capacity_blocks volume)
        ~rng:(Random.State.make [| 7; c |])
    in
    Workload.Client.spawn volume ~coord:(c mod nbricks) ~gen ~ops
      ~payload_tag:(Char.chr (97 + (c mod 26)))
      stats.(c)
  done;
  Core.Cluster.await_quiesce cluster;
  let elapsed = Runtime.now rt -. started in
  let words1 = if domains = 1 then probe_minor_words rt else 0. in
  Core.Cluster.shutdown cluster;
  let total field = Array.fold_left (fun acc s -> acc + field s) 0 stats in
  let ops_done = total (fun s -> s.Workload.Client.ops) in
  let lat =
    Array.fold_left
      (fun acc s -> Metrics.Hist.merge acc s.Workload.Client.latency_hist)
      (Metrics.Hist.create ()) stats
  in
  {
    domains;
    ops_done;
    aborted = total (fun s -> s.Workload.Client.aborts);
    unavailable = total (fun s -> s.Workload.Client.unavailable);
    elapsed;
    ops_per_sec =
      (if elapsed > 0. then float_of_int ops_done /. elapsed else 0.);
    lat;
    minor_words_per_op =
      (if domains = 1 && ops_done > 0 then
         (words1 -. words0) /. float_of_int ops_done
       else 0.);
  }

let pct r p =
  if Metrics.Hist.count r.lat = 0 then 0. else Metrics.Hist.percentile r.lat p

(* --- contention microbenches (DESIGN 4h) ---------------------------

   Each hot path is benchmarked against its PR 8 predecessor inside
   this binary: the pending table runs at [shards:16] vs [shards:1]
   (the old single mutex), the mailbox against a verbatim copy of the
   old lock-per-message implementation. The timer wheel has no legacy
   twin — its arm/cancel churn rate and wheel stats stand alone. *)

(* PR 8's lock-per-message mailbox with direct hand-off to waiting
   receivers, kept as the batched-drain implementation's baseline. *)
module Legacy_mailbox = struct
  type 'a waiter = { wg : Runtime.gate; mutable slot : 'a option }

  type 'a t = {
    rt : Runtime.t;
    lock : Mutex.t;
    q : 'a Queue.t;
    mutable waiters : 'a waiter list;  (* oldest first *)
    mutable closed : bool;
  }

  let create rt =
    {
      rt;
      lock = Mutex.create ();
      q = Queue.create ();
      waiters = [];
      closed = false;
    }

  let send t v =
    Mutex.lock t.lock;
    if t.closed then Mutex.unlock t.lock
    else
      match t.waiters with
      | w :: rest ->
          t.waiters <- rest;
          w.slot <- Some v;
          Mutex.unlock t.lock;
          w.wg.Runtime.open_ ()
      | [] ->
          Queue.push v t.q;
          Mutex.unlock t.lock

  let recv t =
    Mutex.lock t.lock;
    if not (Queue.is_empty t.q) then begin
      let v = Queue.pop t.q in
      Mutex.unlock t.lock;
      Some v
    end
    else if t.closed then begin
      Mutex.unlock t.lock;
      None
    end
    else begin
      let w = { wg = t.rt.Runtime.gate (); slot = None } in
      t.waiters <- t.waiters @ [ w ];
      Mutex.unlock t.lock;
      w.wg.Runtime.await ();
      w.slot
    end

  let close t =
    Mutex.lock t.lock;
    t.closed <- true;
    let ws = t.waiters in
    t.waiters <- [];
    Mutex.unlock t.lock;
    List.iter (fun w -> w.wg.Runtime.open_ ()) ws
end

(* Zero-latency transport: [xsend] invokes the destination handler in
   the caller's thread, so a [call] completes during its own
   broadcast and the benchmark isolates the pending-table work (rid
   allocation, insert, per-reply bookkeeping, claim) plus the retry
   timer's arm/cancel. Handlers are stateless, so the sequential-
   delivery contract is moot here. *)
let loopback ~n =
  let handlers = Array.make n (fun ~src:_ _ -> ()) in
  {
    Quorum.Rpc.xn = n;
    xobs = Obs.create ();
    xsend =
      (fun ~background:_ ~ctx:_ ~info:_ ~src ~dst ~bytes_on_wire:_ msg ->
        handlers.(dst) ~src msg);
    xregister = (fun addr h -> handlers.(addr) <- h);
    xdead_drop = (fun () -> ());
  }

type pending_result = { calls_per_sec : float; lock_waits : float }

let micro_pending ~domains ~tasks ~iters ~shards =
  let pool = Runtime_mc.create ~domains () in
  let rt = Runtime_mc.runtime pool in
  let metrics = Metrics.Registry.create () in
  let members = [ 0; 1; 2 ] in
  let transport = loopback ~n:(3 + tasks) in
  let rpc =
    Quorum.Rpc.create ~rt ~transport ~metrics
      ~req_bytes:(fun () -> 0)
      ~rep_bytes:(fun () -> 0)
      ~shards ()
  in
  List.iter
    (fun addr -> Quorum.Rpc.serve rpc ~addr (fun ~src:_ ~ctx:_ () -> Some ()))
    members;
  (* One coordinator brick per task: the per-call crash-hook add and
     remove stay uncontended, as they are in a real deployment. *)
  let bricks = Array.init tasks (fun i -> Brick.create rt ~id:(3 + i)) in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun coord ->
      Runtime.spawn rt (fun () ->
          for _ = 1 to iters do
            ignore (Quorum.Rpc.call rpc ~coord ~members ~quorum:2 (fun _ -> ()))
          done))
    bricks;
  Runtime_mc.await_idle pool;
  let elapsed = Unix.gettimeofday () -. t0 in
  Runtime_mc.shutdown pool;
  {
    calls_per_sec = float_of_int (tasks * iters) /. Float.max 1e-9 elapsed;
    lock_waits =
      Metrics.Counter.value
        (Metrics.Registry.counter metrics "rpc.shard.contention");
  }

(* [senders] concurrent producers, one consumer; throughput is
   measured to the instant the consumer has received every message.

   Producers run under a credit window, mirroring how the transport is
   actually driven: a coordinator never has more than a quorum round's
   worth of messages outstanding, because [Rpc.call] blocks on the
   replies. After every [window] sends the producer waits for a credit
   from the consumer, carried over a per-sender ack mailbox built from
   the same implementation under test (so both variants pay for their
   own ack path). An unthrottled flood would instead measure the OS
   scheduler on an oversubscribed host: producers that never block
   burn whole timeslices while the runnable consumer waits in the run
   queue, a stall the transport's natural flow control never sees. *)
let mb_window = 256

let micro_mailbox ~domains ~senders ~iters ~legacy =
  let pool = Runtime_mc.create ~domains () in
  let rt = Runtime_mc.runtime pool in
  let total = senders * iters in
  let t0 = Unix.gettimeofday () in
  let finish = ref t0 in
  let rate () = float_of_int total /. Float.max 1e-9 (!finish -. t0) in
  if legacy then begin
    let box = Legacy_mailbox.create rt in
    let acks = Array.init senders (fun _ -> Legacy_mailbox.create rt) in
    Runtime.spawn rt (fun () ->
        let per = Array.make senders 0 in
        let rec loop n =
          if n < total then
            match Legacy_mailbox.recv box with
            | Some s ->
                per.(s) <- per.(s) + 1;
                if per.(s) mod mb_window = 0 then
                  Legacy_mailbox.send acks.(s) ();
                loop (n + 1)
            | None -> ()
        in
        loop 0;
        finish := Unix.gettimeofday ());
    for s = 0 to senders - 1 do
      Runtime.spawn rt (fun () ->
          for i = 1 to iters do
            Legacy_mailbox.send box s;
            if i mod mb_window = 0 then ignore (Legacy_mailbox.recv acks.(s))
          done)
    done;
    Runtime_mc.await_idle pool;
    Legacy_mailbox.close box;
    Array.iter Legacy_mailbox.close acks;
    Runtime_mc.shutdown pool;
    (rate (), 0.)
  end
  else begin
    let box = Runtime.Mailbox.create rt in
    let acks = Array.init senders (fun _ -> Runtime.Mailbox.create rt) in
    Runtime.spawn rt (fun () ->
        let per = Array.make senders 0 in
        let rec loop n =
          if n < total then
            match Runtime.Mailbox.recv box with
            | Some s ->
                per.(s) <- per.(s) + 1;
                if per.(s) mod mb_window = 0 then
                  Runtime.Mailbox.send acks.(s) ();
                loop (n + 1)
            | None -> ()
        in
        loop 0;
        finish := Unix.gettimeofday ());
    for s = 0 to senders - 1 do
      Runtime.spawn rt (fun () ->
          for i = 1 to iters do
            Runtime.Mailbox.send box s;
            if i mod mb_window = 0 then ignore (Runtime.Mailbox.recv acks.(s))
          done)
    done;
    Runtime_mc.await_idle pool;
    let batches, msgs = Runtime.Mailbox.drain_stats box in
    Runtime.Mailbox.close box;
    Array.iter Runtime.Mailbox.close acks;
    Runtime_mc.shutdown pool;
    ( rate (),
      if batches = 0 then 0.
      else float_of_int msgs /. float_of_int batches )
  end

type timer_result = { arms_per_sec : float; wheel : Runtime_mc.wheel_stats }

(* Deadline/backoff churn: most timers are cancelled before firing
   (like RPC retry timers on a healthy cluster), one in sixteen is
   left to expire. *)
let micro_timer ~domains ~tasks ~iters =
  let pool = Runtime_mc.create ~domains () in
  let rt = Runtime_mc.runtime pool in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to tasks do
    Runtime.spawn rt (fun () ->
        for k = 1 to iters do
          let tm =
            Runtime.timer rt
              ~delay:(0.05 +. (0.001 *. float_of_int (k land 15)))
              (fun () -> ())
          in
          if k land 15 <> 0 then Runtime.cancel tm
        done)
  done;
  Runtime_mc.await_idle pool;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Let the uncancelled tail expire so fired/purged cover the run. *)
  Unix.sleepf 0.08;
  let wheel = Runtime_mc.wheel_stats pool in
  Runtime_mc.shutdown pool;
  {
    arms_per_sec = float_of_int (tasks * iters) /. Float.max 1e-9 elapsed;
    wheel;
  }

(* One-shot microbench timings on a shared single-core container swing
   by 3x or more with scheduler luck. Each cell runs [trials] times and
   the best (least-interference) run is reported, for both the new
   implementation and its legacy twin, so the printed speedups compare
   peak against peak. *)
let trials = 3

let best_of proj f =
  let rec go k best =
    if k = 0 then best
    else
      let r = f () in
      go (k - 1) (if proj r > proj best then r else best)
  in
  go (trials - 1) (f ())

let run () =
  let sweep = if !smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let clients = if !smoke then 2 else 4 in
  let ops = if !smoke then 15 else 150 in
  let block_size = if !smoke then 1024 else 8192 in
  let hw = Runtime_mc.hw_cores () in
  Util.section "Parallel backend (wall clock)";
  Printf.printf
    "  runtime mc: %d-of-%d code, %d clients x %d ops, %dB blocks, %d \
     hardware core%s\n"
    m n clients ops block_size hw
    (if hw = 1 then "" else "s");
  if hw < List.fold_left max 1 sweep then
    Printf.printf
    "  note: sweep exceeds the core count; speedups are bounded by %d \
     hardware core%s\n"
      hw
      (if hw = 1 then "" else "s");
  let results = List.map (fun d -> run_one ~domains:d ~clients ~ops ~block_size) sweep in
  let base = List.hd results in
  Printf.printf "  %-8s | %10s | %12s | %10s | %10s | %8s\n" "domains"
    "ops done" "ops/sec" "p50 (ms)" "p99 (ms)" "speedup";
  Printf.printf "  %s\n" (String.make 72 '-');
  List.iter
    (fun r ->
      Printf.printf "  %-8d | %10d | %12.0f | %10.3f | %10.3f | %7.2fx\n"
        r.domains r.ops_done r.ops_per_sec
        (pct r 50. *. 1e3)
        (pct r 99. *. 1e3)
        (if base.ops_per_sec > 0. then r.ops_per_sec /. base.ops_per_sec
         else 0.))
    results;
  Printf.printf "  gc: %.0f minor words per op (1-domain run)\n"
    base.minor_words_per_op;
  (* Contention microbenches: each hot path vs its PR 8 baseline. *)
  let micro_sweep = if !smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let mtasks = if !smoke then 2 else 4 in
  let pend_iters = if !smoke then 300 else 1500 in
  let mbox_iters = if !smoke then 4000 else 20000 in
  let tmr_iters = if !smoke then 4000 else 15000 in
  Printf.printf "\n  pending table: %d tasks x %d calls (quorum 2/3, \
                 loopback transport)\n" mtasks pend_iters;
  Printf.printf "  %-8s | %14s | %14s | %8s | %10s\n" "domains"
    "sharded c/s" "1-mutex c/s" "speedup" "lock waits";
  Printf.printf "  %s\n" (String.make 64 '-');
  let pend =
    List.map
      (fun d ->
        let cell shards =
          best_of
            (fun r -> r.calls_per_sec)
            (fun () ->
              micro_pending ~domains:d ~tasks:mtasks ~iters:pend_iters ~shards)
        in
        let sh = cell 16 in
        let si = cell 1 in
        Printf.printf "  %-8d | %14.0f | %14.0f | %7.2fx | %10.0f\n" d
          sh.calls_per_sec si.calls_per_sec
          (sh.calls_per_sec /. Float.max 1e-9 si.calls_per_sec)
          sh.lock_waits;
        (d, sh, si))
      micro_sweep
  in
  Printf.printf "\n  mailbox: %d senders x %d msgs -> 1 receiver\n" mtasks
    mbox_iters;
  Printf.printf "  %-8s | %14s | %14s | %8s | %10s\n" "domains"
    "batched m/s" "lock/msg m/s" "speedup" "batch avg";
  Printf.printf "  %s\n" (String.make 64 '-');
  let mbox =
    List.map
      (fun d ->
        let cell legacy =
          best_of fst (fun () ->
              micro_mailbox ~domains:d ~senders:mtasks ~iters:mbox_iters
                ~legacy)
        in
        let b, avg = cell false in
        let l, _ = cell true in
        Printf.printf "  %-8d | %14.0f | %14.0f | %7.2fx | %10.1f\n" d b l
          (b /. Float.max 1e-9 l)
          avg;
        (d, b, l, avg))
      micro_sweep
  in
  Printf.printf "\n  timer wheel: %d tasks x %d arms (15/16 cancelled)\n"
    mtasks tmr_iters;
  Printf.printf "  %-8s | %14s | %10s | %10s | %10s\n" "domains" "arms/s"
    "max depth" "fired" "purged";
  Printf.printf "  %s\n" (String.make 64 '-');
  let tmr =
    List.map
      (fun d ->
        let r =
          best_of
            (fun r -> r.arms_per_sec)
            (fun () -> micro_timer ~domains:d ~tasks:mtasks ~iters:tmr_iters)
        in
        Printf.printf "  %-8d | %14.0f | %10d | %10d | %10d\n" d
          r.arms_per_sec r.wheel.Runtime_mc.max_depth
          r.wheel.Runtime_mc.fired r.wheel.Runtime_mc.purged;
        (d, r))
      micro_sweep
  in
  Option.iter
    (fun path ->
      let open Obs.Json in
      let num k v = (k, F v) in
      let doc =
        ( "meta",
          Obs.Meta.standard ~runtime:"mc"
            ~domains:(List.fold_left max 1 sweep)
            ~gc_minor_words_per_op:base.minor_words_per_op
            ~extra:
              [
                ("tool", S "bench parallel");
                ("m", I m);
                ("n", I n);
                ("stripes", I stripes);
                ("block_size", I block_size);
                ("clients", I clients);
                ("ops", I ops);
                ("hw_cores", I hw);
                ("smoke", B !smoke);
                ("gf_kernel", S Gf256.Kernel.(name (default ())));
              ]
            () )
        :: List.map
             (fun r ->
               ( Printf.sprintf "domains_%d" r.domains,
                 [
                   ("domains", I r.domains);
                   ("ops_done", I r.ops_done);
                   ("aborted", I r.aborted);
                   ("unavailable", I r.unavailable);
                   num "elapsed_s" r.elapsed;
                   num "ops_per_sec" r.ops_per_sec;
                   num "p50_ms" (pct r 50. *. 1e3);
                   num "p99_ms" (pct r 99. *. 1e3);
                   num "speedup_vs_1"
                     (if base.ops_per_sec > 0. then
                        r.ops_per_sec /. base.ops_per_sec
                      else 0.);
                 ] ))
             results
        @ List.map
            (fun (d, sh, si) ->
              ( Printf.sprintf "micro_pending_d%d" d,
                [
                  ("domains", I d);
                  num "sharded_calls_per_sec" sh.calls_per_sec;
                  num "single_calls_per_sec" si.calls_per_sec;
                  num "speedup"
                    (sh.calls_per_sec /. Float.max 1e-9 si.calls_per_sec);
                  num "shard_lock_waits" sh.lock_waits;
                ] ))
            pend
        @ List.map
            (fun (d, b, l, avg) ->
              ( Printf.sprintf "micro_mailbox_d%d" d,
                [
                  ("domains", I d);
                  num "batched_msgs_per_sec" b;
                  num "legacy_msgs_per_sec" l;
                  num "speedup" (b /. Float.max 1e-9 l);
                  num "avg_drain_batch" avg;
                ] ))
            mbox
        @ List.map
            (fun (d, r) ->
              ( Printf.sprintf "micro_timer_d%d" d,
                [
                  ("domains", I d);
                  num "arms_per_sec" r.arms_per_sec;
                  ("wheel_max_depth", I r.wheel.Runtime_mc.max_depth);
                  ("wheel_fired", I r.wheel.Runtime_mc.fired);
                  ("wheel_purged", I r.wheel.Runtime_mc.purged);
                ] ))
            tmr
      in
      let oc = open_out path in
      Printf.fprintf oc "{%s}\n"
        (String.concat ",\n "
           (List.map
              (fun (name, fields) -> render (S name) ^ ": " ^ obj fields)
              doc));
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    !json_out
