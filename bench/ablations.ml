(* Ablation experiments X1-X4 (claims made in prose by the paper):

   X1 (section 3): operations abort only under concurrent conflicts on
      the same stripe or badly skewed clocks — sweep both knobs and
      measure abort rates.
   X2 (section 5.2): bandwidth optimization for block writes.
   X3 (section 1.2): the small-write penalty of erasure coding —
      2(n-m+1) disk I/Os per small write — against replication, across
      read/write mixes.
   X4 (section 5.1): garbage collection bounds the version logs.  *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module Gen = Workload.Gen
module Client = Workload.Client
open Util

(* ------------------------------------------------------------------ *)
(* X1: abort rate vs concurrency and clock skew                        *)
(* ------------------------------------------------------------------ *)

(* Closed-loop clients on one shared register cluster; conflict
   pressure is controlled by the number of stripes they spread over
   (fewer stripes = more write-write conflicts). *)
let abort_rate ~clients ~stripes ~skew ~seed =
  let clock =
    if skew = 0. then Cluster.Logical
    else
      Cluster.Realtime
        {
          skew_of = (fun pid -> skew *. (float_of_int pid -. 2.));
          resolution = 1.;
        }
  in
  let cl = Cluster.create ~seed ~m:3 ~n:5 ~block_size:64 ~clock () in
  let rng = Random.State.make [| seed; 77 |] in
  let ops_per_client = 40 in
  let total = ref 0 and aborts = ref 0 in
  for client = 0 to clients - 1 do
    let coord = client mod 5 in
    Cluster.spawn ~coord cl (fun c ->
        for i = 0 to ops_per_client - 1 do
          (* Random think time so operations interleave. *)
          Dessim.Fiber.suspend (fun r ->
              ignore
                (Dessim.Engine.schedule cl.Cluster.engine
                   ~delay:(Random.State.float rng 20.)
                   (fun () -> Dessim.Fiber.resume r ())));
          let stripe = Random.State.int rng stripes in
          let outcome =
            if i mod 2 = 0 then
              Coordinator.write_stripe c ~stripe
                (stripe_data (Char.chr (65 + (i mod 26))) 3 64)
              |> Result.map (fun () -> ())
            else Coordinator.read_stripe c ~stripe |> Result.map (fun _ -> ())
          in
          incr total;
          match outcome with Ok () -> () | Error _ -> incr aborts
        done);
  done;
  Cluster.run ~horizon:100_000. cl;
  (float_of_int !aborts /. float_of_int (max 1 !total), !total)

let x1 () =
  section "X1 | Abort rate vs concurrency and clock skew (section 3)";
  Printf.printf "  3-of-5 register cluster, mixed 50/50 read-write clients.\n\n";
  Printf.printf "  %-44s %10s %8s\n" "configuration" "aborts" "ops";
  let show name rate total =
    Printf.printf "  %-44s %9.2f%% %8d\n" name (100. *. rate) total
  in
  let r, t = abort_rate ~clients:1 ~stripes:4 ~skew:0. ~seed:11 in
  show "1 client (no concurrency), logical clocks" r t;
  let r, t = abort_rate ~clients:4 ~stripes:64 ~skew:0. ~seed:12 in
  show "4 clients over 64 stripes (low conflict)" r t;
  let r, t = abort_rate ~clients:4 ~stripes:4 ~skew:0. ~seed:13 in
  show "4 clients over 4 stripes (high conflict)" r t;
  let r, t = abort_rate ~clients:4 ~stripes:1 ~skew:0. ~seed:14 in
  show "4 clients over 1 stripe (max conflict)" r t;
  let r, t = abort_rate ~clients:4 ~stripes:64 ~skew:50. ~seed:15 in
  show "4 clients, 64 stripes, clock skew 50 delta" r t;
  let r, t = abort_rate ~clients:4 ~stripes:64 ~skew:500. ~seed:16 in
  show "4 clients, 64 stripes, clock skew 500 delta" r t;
  Printf.printf
    "\n  paper: aborts require concurrent conflicting access to the same\n\
    \  stripe, or timestamps that do not form a logical clock; spreading\n\
    \  data over stripes and synchronizing clocks makes both rare.\n"

(* ------------------------------------------------------------------ *)
(* X2: bandwidth-optimized block writes                                *)
(* ------------------------------------------------------------------ *)

let x2 () =
  section "X2 | Block-write bandwidth optimization (section 5.2)";
  let measure ~optimized =
    let cl =
      Cluster.create ~m:5 ~n:8 ~block_size:1024 ~optimized_modify:optimized ()
    in
    let _ =
      measure_op cl (fun c ->
          Coordinator.write_stripe c ~stripe:0 (stripe_data 'A' 5 1024))
    in
    let _, costs =
      measure_op cl (fun c ->
          Coordinator.write_block c ~stripe:0 2 (Bytes.make 1024 'z'))
    in
    costs
  in
  let naive = measure ~optimized:false in
  let opt = measure ~optimized:true in
  Printf.printf "  5-of-8 code, one fast block write:\n\n";
  Printf.printf "  %-34s %14s %14s\n" "variant" "messages" "net b/w (B)";
  Printf.printf "  %-34s %14.0f %14.1f\n" "naive Modify (old+new to all n)"
    naive.msgs naive.bytes;
  Printf.printf "  %-34s %14.0f %14.1f\n"
    "delta Modify (p_j + parity only)" opt.msgs opt.bytes;
  Printf.printf
    "\n  paper: sending a single coded delta to each parity process (and\n\
    \  nothing to the other data processes) cuts write bandwidth from\n\
    \  (2n+1)B to (k+2)B while leaving the protocol unchanged.\n"

(* ------------------------------------------------------------------ *)
(* X3: small-write penalty, EC vs replication, across workload mixes   *)
(* ------------------------------------------------------------------ *)

let x3 () =
  section "X3 | Small-write penalty and workload mixes (section 1.2)";
  let run_mix ~m ~n ~read_fraction =
    let v =
      Fab.Volume.create ~m ~n ~stripes:32 ~block_size:512 ~seed:7 ()
    in
    let gen =
      Gen.make
        { Gen.read_fraction; addr = Gen.Uniform; op_blocks = 1 }
        ~capacity_blocks:(Fab.Volume.capacity_blocks v)
        ~rng:(Random.State.make [| 42 |])
    in
    let stats = Client.fresh_stats () in
    let before = Metrics.Snapshot.take (Fab.Volume.cluster v).Cluster.metrics in
    Client.spawn v ~coord:0 ~gen ~ops:200 stats;
    Fab.Volume.run v;
    let after = Metrics.Snapshot.take (Fab.Volume.cluster v).Cluster.metrics in
    let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
    let ios = (d "disk.reads" +. d "disk.writes") /. 200. in
    let lat = Metrics.Summary.mean stats.Client.latency in
    (ios, lat)
  in
  Printf.printf
    "  200 single-block ops, disk I/Os per op and mean latency (delta):\n\n";
  Printf.printf "  %-26s %22s %22s\n" "" "E.C.(5,8)" "3-way replication";
  Printf.printf "  %-26s %10s %10s %10s %10s\n" "workload" "IO/op" "latency"
    "IO/op" "latency";
  List.iter
    (fun (name, rf) ->
      let ec_io, ec_lat = run_mix ~m:5 ~n:8 ~read_fraction:rf in
      let r_io, r_lat = run_mix ~m:1 ~n:3 ~read_fraction:rf in
      Printf.printf "  %-26s %10.2f %10.2f %10.2f %10.2f\n" name ec_io ec_lat
        r_io r_lat)
    [
      ("write-only", 0.0);
      ("mixed 50/50", 0.5);
      ("read-intensive (95% R)", 0.95);
      ("read-only", 1.0);
    ];
  Printf.printf
    "\n  paper: a small write costs ~2(n-m+1) = %d disk I/Os under E.C.(5,8)\n\
    \  (read old data + parities, write them back) versus %d block writes\n\
    \  under 3-way replication, so erasure coding targets read-intensive\n\
    \  workloads where its capacity advantage is free.\n"
    (2 * (8 - 5 + 1))
    3

(* ------------------------------------------------------------------ *)
(* X4: garbage collection bounds the logs                              *)
(* ------------------------------------------------------------------ *)

let x4 () =
  section "X4 | Garbage collection of version logs (section 5.1)";
  let log_stats ~gc ~crashes =
    let cl = Cluster.create ~seed:3 ~m:3 ~n:5 ~block_size:128 ~gc_enabled:gc () in
    let writes = 60 in
    for round = 0 to writes - 1 do
      (* Periodically crash and recover a brick so some writes land
         partially and logs see real version churn. *)
      if crashes && round mod 10 = 4 then Cluster.crash cl (round mod 5);
      if crashes && round mod 10 = 9 then Cluster.recover cl (round mod 5);
      ignore
        (Cluster.run_op ~coord:(round mod 5) cl (fun c ->
             Coordinator.with_retries c (fun () ->
                 Coordinator.write_stripe c ~stripe:0
                   (stripe_data (Char.chr (65 + (round mod 26))) 3 128))))
    done;
    let sizes =
      Array.to_list
        (Array.map
           (fun r ->
             match Core.Replica.log r ~stripe:0 with
             | Some l -> Core.Slog.size l
             | None -> 0)
           cl.Cluster.replicas)
    in
    let removed =
      Array.fold_left
        (fun acc r -> acc + Core.Replica.gc_removed r)
        0 cl.Cluster.replicas
    in
    (sizes, removed)
  in
  Printf.printf "  60 stripe writes to one register (3-of-5):\n\n";
  Printf.printf "  %-34s %-22s %10s\n" "configuration" "log sizes per brick"
    "gc'd entries";
  List.iter
    (fun (name, gc, crashes) ->
      let sizes, removed = log_stats ~gc ~crashes in
      Printf.printf "  %-34s %-22s %10d\n" name
        (String.concat "," (List.map string_of_int sizes))
        removed)
    [
      ("gc on, healthy run", true, false);
      ("gc on, periodic brick crashes", true, true);
      ("gc off, healthy run", false, false);
    ];
  Printf.printf
    "\n  paper: once a write is complete at a full quorum, all older\n\
    \  versions can be dropped; each log needs only the newest complete\n\
    \  version, so logs stay O(1) instead of growing with every write.\n"

(* ------------------------------------------------------------------ *)
(* X5: multi-block operations (footnote 2 extension)                   *)
(* ------------------------------------------------------------------ *)

let x5 () =
  section "X5 | Multi-block operations vs per-block loops (footnote 2)";
  let m = 5 and n = 8 and bs = 1024 in
  let range = 3 in
  let news = Array.init range (fun i -> Bytes.make bs (Char.chr (65 + i))) in
  let seed cl =
    ignore
      (measure_op cl (fun c ->
           Coordinator.write_stripe c ~stripe:0 (stripe_data 'S' m bs)))
  in
  (* per-block loop: range single-block writes *)
  let cl = Cluster.create ~m ~n ~block_size:bs () in
  seed cl;
  let before = Cluster.snapshot cl in
  let t0 = Dessim.Engine.now cl.Cluster.engine in
  (match
     Cluster.run_op cl (fun c ->
         let rec go i =
           if i >= range then Ok ()
           else
             match
               Coordinator.with_retries c (fun () ->
                   Coordinator.write_block c ~stripe:0 (1 + i) news.(i))
             with
             | Ok () -> go (i + 1)
             | Error _ as e -> e
         in
         go 0)
   with
  | Some (Ok ()) -> ()
  | _ -> Printf.printf "  (per-block loop aborted)\n");
  let loop_lat = Dessim.Engine.now cl.Cluster.engine -. t0 in
  let after = Cluster.snapshot cl in
  let d1 name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  (* one multi-block operation *)
  let cl = Cluster.create ~m ~n ~block_size:bs () in
  seed cl;
  let before = Cluster.snapshot cl in
  let t0 = Dessim.Engine.now cl.Cluster.engine in
  (match
     Cluster.run_op cl (fun c -> Coordinator.write_blocks c ~stripe:0 1 news)
   with
  | Some (Ok ()) -> ()
  | _ -> Printf.printf "  (multi write aborted)\n");
  let multi_lat = Dessim.Engine.now cl.Cluster.engine -. t0 in
  let after = Cluster.snapshot cl in
  let d2 name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  Printf.printf "  writing a %d-block range inside a 5-of-8 stripe:\n\n" range;
  Printf.printf "  %-28s %10s %10s %12s %12s\n" "method" "latency" "msgs"
    "disk I/Os" "net b/w (B)";
  Printf.printf "  %-28s %10.0f %10.0f %12.0f %12.0f\n"
    (Printf.sprintf "%d x write-block" range)
    loop_lat (d1 "net.msgs")
    (d1 "disk.reads" +. d1 "disk.writes")
    (d1 "net.bytes" /. float_of_int bs);
  Printf.printf "  %-28s %10.0f %10.0f %12.0f %12.0f\n" "1 x write-blocks"
    multi_lat (d2 "net.msgs")
    (d2 "disk.reads" +. d2 "disk.writes")
    (d2 "net.bytes" /. float_of_int bs);
  Printf.printf
    "\n  paper, footnote 2: \"the single-block methods can easily be\n\
    \  extended to access multiple blocks\" — doing so amortizes the two\n\
    \  protocol rounds and the per-parity read-modify-write over the range.\n"

(* ------------------------------------------------------------------ *)
(* X6: why quorums + versioning — the section 6 data-loss contrast     *)
(* ------------------------------------------------------------------ *)

let x6 () =
  section "X6 | Client-directed EC without quorums loses data (section 6)";
  Printf.printf
    "  The paper's example: a 2-of-3 code; a client crashes after updating\n\
    \  a single data device; a second device then fails terminally.\n\n";
  let bs = 64 in
  let tag b = Bytes.get b 0 in
  let old_stripe = [| Bytes.make bs 'o'; Bytes.make bs 'p' |] in
  let new_stripe = [| Bytes.make bs 'N'; Bytes.make bs 'M' |] in

  (* Naive client-directed baseline. *)
  let d = Baseline.Direct.create ~m:2 ~n:3 ~block_size:bs () in
  (match Baseline.Direct.run_op d (fun () -> Baseline.Direct.write d ~reg:0 old_stripe) with
  | Some (Ok ()) -> () | _ -> failwith "seed");
  Baseline.Direct.write_prefix d ~reg:0 ~devices:1 new_stripe;
  Printf.printf "  [direct]  client crashed after updating device 0 only\n";
  Baseline.Direct.crash_device d 1;
  Printf.printf "  [direct]  device 1 failed terminally\n";
  (match Baseline.Direct.run_op d (fun () -> Baseline.Direct.read d ~reg:0) with
  | Some (Ok got) ->
      let o = tag old_stripe.(1) and n = tag new_stripe.(1) and g = tag got.(1) in
      Printf.printf
        "  [direct]  read decodes block 1 as %C — old was %C, new was %C: %s\n"
        g o n
        (if g <> o && g <> n then "GARBAGE (silent corruption)"
         else "(happened to survive)")
  | _ -> Printf.printf "  [direct]  read failed outright\n");

  (* Same run against the quorum protocol. *)
  let cl = Cluster.create ~m:2 ~n:3 ~block_size:bs () in
  (match
     Cluster.run_op cl (fun c -> Coordinator.write_stripe c ~stripe:0 old_stripe)
   with
  | Some (Ok ()) -> () | _ -> failwith "seed2");
  (* Partial write reaching one device, then coordinator crash. *)
  Cluster.spawn ~coord:2 cl (fun c ->
      ignore (Coordinator.write_stripe c ~stripe:0 new_stripe));
  ignore
    (Dessim.Engine.schedule cl.Cluster.engine ~delay:1.5 (fun () ->
         Simnet.Net.set_link_down cl.Cluster.net ~src:2 ~dst:1 true;
         Simnet.Net.set_link_down cl.Cluster.net ~src:2 ~dst:2 true));
  ignore
    (Dessim.Engine.schedule cl.Cluster.engine ~delay:4.5 (fun () ->
         Brick.crash cl.Cluster.bricks.(2)));
  Cluster.run ~horizon:30. cl;
  Printf.printf "  [quorum]  coordinator crashed after its write reached brick 0 only\n";
  Brick.crash cl.Cluster.bricks.(1);
  Printf.printf "  [quorum]  ... then brick 1 failed\n";
  (* f = 0 for 2-of-3 (f = (n-m)/2 = 0): with a brick down no quorum
     forms, so the read stalls rather than lies. With m=2, n=4 (f=1)
     the same scenario returns the old stripe; show that instead. *)
  (match
     Cluster.run_op ~coord:0 ~horizon:200. cl (fun c ->
         Coordinator.read_stripe c ~stripe:0)
   with
  | None ->
      Printf.printf
        "  [quorum]  2-of-3 tolerates f = 0 crashes: the read STALLS (no quorum)\n\
        \  [quorum]  -> unavailability, never corruption\n"
  | Some (Ok got) ->
      Printf.printf "  [quorum]  read returned %C stripe safely\n" (tag got.(1))
  | Some (Error _) -> Printf.printf "  [quorum]  read aborted\n");
  let cl = Cluster.create ~m:2 ~n:4 ~block_size:bs () in
  (match
     Cluster.run_op cl (fun c -> Coordinator.write_stripe c ~stripe:0 old_stripe)
   with
  | Some (Ok ()) -> () | _ -> failwith "seed3");
  Cluster.spawn ~coord:3 cl (fun c ->
      ignore (Coordinator.write_stripe c ~stripe:0 new_stripe));
  ignore
    (Dessim.Engine.schedule cl.Cluster.engine ~delay:1.5 (fun () ->
         for dst = 1 to 3 do
           Simnet.Net.set_link_down cl.Cluster.net ~src:3 ~dst true
         done));
  ignore
    (Dessim.Engine.schedule cl.Cluster.engine ~delay:4.5 (fun () ->
         Brick.crash cl.Cluster.bricks.(3)));
  ignore
    (Dessim.Engine.schedule cl.Cluster.engine ~delay:5.0 (fun () ->
         for dst = 1 to 3 do
           Simnet.Net.set_link_down cl.Cluster.net ~src:3 ~dst false
         done;
         Brick.recover cl.Cluster.bricks.(3)));
  Cluster.run ~horizon:30. cl;
  Brick.crash cl.Cluster.bricks.(1);
  (match
     Cluster.run_op ~coord:0 ~horizon:500. cl (fun c ->
         Coordinator.with_retries c (fun () -> Coordinator.read_stripe c ~stripe:0))
   with
  | Some (Ok got) ->
      Printf.printf
        "  [quorum]  with 2-of-4 (f = 1), the same double failure reads %C/%C:\n\
        \  [quorum]  -> the partial write was rolled back; data is intact\n"
        (tag got.(0)) (tag got.(1))
  | _ -> Printf.printf "  [quorum]  2-of-4 read did not complete (unexpected)\n");
  Printf.printf
    "\n  paper, section 6: the algorithm of [2] can lose data under a client\n\
    \  crash plus a device failure; ours tolerates the crash of all\n\
    \  processes and never returns a mixed-version stripe.\n"

let run () =
  x1 ();
  x2 ();
  x3 ();
  x4 ();
  x5 ();
  x6 ()
