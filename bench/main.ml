(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md section 3 for the experiment index) plus the ablation
   studies and compute microbenchmarks.

   Usage:  dune exec bench/main.exe [-- section ... [--json] [--smoke]]
   where section is any of: t1 f2 f3 f5 a1 x1..x6 protocol micro
   parallel. With no section every section runs. --json makes the
   micro, protocol and parallel sections write BENCH_micro.json /
   BENCH_protocol.json / BENCH_parallel.json next to the textual
   report; --smoke shrinks the measurement quotas so the smoke aliases
   stay fast. *)

let sections =
  [
    ("t1", Table1.run);
    ("f2", Figures.figure2);
    ("f3", Figures.figure3);
    ("f5", Fig5.run);
    ("a1", Appendix_a.run);
    ("x1", Ablations.x1);
    ("x2", Ablations.x2);
    ("x3", Ablations.x3);
    ("x4", Ablations.x4);
    ("x5", Ablations.x5);
    ("x6", Ablations.x6);
    ("protocol", Protocol.run);
    ("micro", Micro.run);
    ("parallel", Parallel.run);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: args -> args | [] -> []
  in
  (* Standalone CI helpers: print the kernel backends usable on this
     machine (one per line, for shell loops), or run the split-vs-table
     regression gate. Both exit without touching the sections. *)
  if List.mem "--list-kernels" args then begin
    Micro.list_kernels ();
    exit 0
  end;
  if List.mem "--check-split" args then begin
    Micro.check_split ();
    exit 0
  end;
  let args =
    List.filter
      (fun a ->
        match a with
        | "--json" ->
            Micro.json_out := Some "BENCH_micro.json";
            Protocol.json_out := Some "BENCH_protocol.json";
            Parallel.json_out := Some "BENCH_parallel.json";
            false
        | "--smoke" ->
            Micro.smoke := true;
            Protocol.smoke := true;
            Parallel.smoke := true;
            false
        | _ -> true)
      args
  in
  let requested =
    match args with [] -> List.map fst sections | _ :: _ -> args
  in
  Printf.printf
    "FAB reproduction: experiment harness for \"A Decentralized Algorithm\n\
     for Erasure-Coded Virtual Disks\" (DSN 2004). Paper values are printed\n\
     next to measured values; EXPERIMENTS.md records the comparison.\n";
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) sections with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown section %S (known: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
