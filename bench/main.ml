(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md section 3 for the experiment index) plus the ablation
   studies and compute microbenchmarks.

   Usage:  dune exec bench/main.exe [-- section ... [--json] [--smoke]]
   where section is any of: t1 f2 f3 f5 a1 x1..x6 protocol micro
   parallel chaos. With no section every section runs. --json makes
   the micro, protocol, parallel and chaos sections write
   BENCH_micro.json / BENCH_protocol.json / BENCH_parallel.json /
   BENCH_chaos.json next to the textual report; --smoke shrinks the
   measurement quotas so the smoke aliases stay fast. *)

let sections =
  [
    ("t1", Table1.run);
    ("f2", Figures.figure2);
    ("f3", Figures.figure3);
    ("f5", Fig5.run);
    ("a1", Appendix_a.run);
    ("x1", Ablations.x1);
    ("x2", Ablations.x2);
    ("x3", Ablations.x3);
    ("x4", Ablations.x4);
    ("x5", Ablations.x5);
    ("x6", Ablations.x6);
    ("protocol", Protocol.run);
    ("micro", Micro.run);
    ("parallel", Parallel.run);
    ("chaos", Bench_chaos.run);
  ]

let () =
  (* A 32 MiB minor heap (set before any domain spawns, so every
     worker domain inherits it) keeps the parallel microbenches from
     triggering minor collections mid-measurement: on an oversubscribed
     host each collection is a stop-the-world handshake with every
     parked domain, worth 10-25 ms of scheduler latency — more than the
     cells being measured. Benchmark hygiene only; the libraries never
     touch GC parameters. *)
  Gc.set { (Gc.get ()) with minor_heap_size = 4_194_304 };
  let args =
    match Array.to_list Sys.argv with _ :: args -> args | [] -> []
  in
  (* Standalone CI helpers: print the kernel backends usable on this
     machine (one per line, for shell loops), or run the split-vs-table
     regression gate. Both exit without touching the sections. *)
  if List.mem "--list-kernels" args then begin
    Micro.list_kernels ();
    exit 0
  end;
  if List.mem "--check-split" args then begin
    Micro.check_split ();
    exit 0
  end;
  (* Smoke runs write *.smoke.json so they can never clobber the
     committed full-run BENCH_*.json baselines (scripts/ci.sh diffs a
     smoke run against bench/baseline_parallel_smoke.json). *)
  let suffix = if List.mem "--smoke" args then ".smoke.json" else ".json" in
  let args =
    List.filter
      (fun a ->
        match a with
        | "--json" ->
            Micro.json_out := Some ("BENCH_micro" ^ suffix);
            Protocol.json_out := Some ("BENCH_protocol" ^ suffix);
            Parallel.json_out := Some ("BENCH_parallel" ^ suffix);
            Bench_chaos.json_out := Some ("BENCH_chaos" ^ suffix);
            false
        | "--smoke" ->
            Micro.smoke := true;
            Protocol.smoke := true;
            Parallel.smoke := true;
            Bench_chaos.smoke := true;
            false
        | _ -> true)
      args
  in
  let requested =
    match args with [] -> List.map fst sections | _ :: _ -> args
  in
  Printf.printf
    "FAB reproduction: experiment harness for \"A Decentralized Algorithm\n\
     for Erasure-Coded Virtual Disks\" (DSN 2004). Paper values are printed\n\
     next to measured values; EXPERIMENTS.md records the comparison.\n";
  List.iter
    (fun name ->
      match List.assoc_opt (String.lowercase_ascii name) sections with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown section %S (known: %s)\n" name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
