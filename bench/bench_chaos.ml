(* Recovery-latency benchmark: how long after a fault heals does the
   deployment serve writes again, and how available was it while the
   fault was in force — measured on both backends with the same
   scenario code, driven through {!Chaos.Nemesis.inject}.

   A probe client writes one block on coordinator 0 every [probe_gap]
   time units. An orchestrator alternates two fault kinds against an
   m=2/n=5 deployment (q = 4, so both faults cost quorum):

   - crash: bricks 1 and 2 die (3 alive < q); "heal" recovers both,
     which on the mc backend really restarts their receive loops and
     replays the paper's section 4 recovery path;
   - partition: {0,1,2} | {3,4} (coordinator 0's side has 3 < q).

   Per cycle, time-to-recover is the gap between the heal instant and
   the completion of the first successful probe after it, and
   availability-under-fault is the fraction of probes completing
   inside the fault window that succeeded (expected ~0 here: these
   faults take the whole quorum — the measurement guards against the
   fault silently not biting, the PR 4 review bug). Cycle ttr samples
   pool into {!Metrics.Hist}; p50/p99 land in BENCH_chaos.json.

   Time units: the sim backend runs the scenario in delta units; the
   mc backend scales them to wall-clock seconds ([ts] = seconds per
   unit) and reports milliseconds. The two backends' numbers are not
   commensurable (sim unit delays vs real scheduling); the point of
   printing both is the sim run as a deterministic floor and the mc
   run as the real-parallelism number the gate watches. *)

let json_out : string option ref = ref None
let smoke : bool ref = ref false

let m = 2
let n = 5
let stripes = 4
let block_size = 256

(* Scenario shape, in time units. [deadline] < [fault_window] so
   probes fail fast (and are counted) while the fault is in force. *)
let deadline_u = 10.
let probe_gap_u = 2.
let fault_u = 30.
let recover_u = 60.
let warmup_u = 20.

type kind = Crash | Partition

let kind_name = function Crash -> "crash" | Partition -> "partition"

type cycle = {
  ckind : kind;
  ttr : float; (* backend-native time; [recover_u] if never recovered *)
  avail_ok : int;
  avail_total : int;
}

(* One backend run: [cycles] crash cycles interleaved with [cycles]
   partition cycles on a single deployment. Returns per-cycle samples
   in backend-native time (sim: delta units; mc: seconds). *)
let run_backend ~mc ~domains ~ts ~cycles =
  let cluster =
    if mc then
      Core.Cluster.create_mc ~domains ~m ~n ~block_size
        ~deadline:(deadline_u *. ts) ~retry_every:(2. *. ts) ()
    else Core.Cluster.create ~seed:11 ~m ~n ~block_size ~deadline:deadline_u ()
  in
  let rt = cluster.Core.Cluster.runtime in
  let lock = Mutex.create () in
  let probes = ref [] in
  (* (start, completion, ok), newest first *)
  let stop = ref false in
  Runtime.spawn rt (fun () ->
      let c = cluster.Core.Cluster.coordinators.(0) in
      let k = ref 0 in
      try
        while not !stop do
          Runtime.sleep rt (probe_gap_u *. ts);
          incr k;
          let payload =
            Bytes.make block_size (Char.chr (97 + (!k mod 26)))
          in
          let tstart = Runtime.now rt in
          let r =
            Core.Coordinator.write_block c ~stripe:(!k mod stripes) 0
              payload
          in
          let tend = Runtime.now rt in
          let ok = match r with Ok () -> true | Error _ -> false in
          Mutex.lock lock;
          probes := (tstart, tend, ok) :: !probes;
          Mutex.unlock lock
        done
      with Runtime.Cancelled -> ());
  let results = ref [] in
  let inject f = Chaos.Nemesis.inject cluster f in
  let orchestrate () =
    Runtime.sleep rt (warmup_u *. ts);
    for cyc = 0 to (2 * cycles) - 1 do
      let ckind = if cyc mod 2 = 0 then Crash else Partition in
      let t_fault = Runtime.now rt in
      (match ckind with
      | Crash ->
          inject (Chaos.Plan.Crash 1);
          inject (Chaos.Plan.Crash 2)
      | Partition -> inject (Chaos.Plan.Partition [ [ 0; 1; 2 ]; [ 3; 4 ] ]));
      Runtime.sleep rt (fault_u *. ts);
      let t_heal = Runtime.now rt in
      (match ckind with
      | Crash ->
          inject (Chaos.Plan.Recover 1);
          inject (Chaos.Plan.Recover 2)
      | Partition -> inject Chaos.Plan.Heal);
      Runtime.sleep rt (recover_u *. ts);
      Mutex.lock lock;
      let ps = !probes in
      Mutex.unlock lock;
      let avail_ok = ref 0 and avail_total = ref 0 in
      let ttr = ref (recover_u *. ts) in
      List.iter
        (fun (t0, t1, ok) ->
          (* Availability counts only probes that ran entirely inside
             the fault window: a probe straddling either boundary can
             succeed without the fault ever being in its way. *)
          if t0 >= t_fault && t1 < t_heal then begin
            incr avail_total;
            if ok then incr avail_ok
          end;
          if ok && t1 >= t_heal then ttr := Float.min !ttr (t1 -. t_heal))
        ps;
      results :=
        { ckind; ttr = !ttr; avail_ok = !avail_ok; avail_total = !avail_total }
        :: !results
    done;
    stop := true
  in
  (* Mc: the orchestrator runs on this thread (gates block any thread,
     and sleeps here are real). Sim: it must be a fiber, and the engine
     advances virtual time only while running. *)
  if mc then orchestrate () else Runtime.spawn rt orchestrate;
  if not mc then Core.Cluster.run ~horizon:Float.max_float cluster;
  Core.Cluster.await_quiesce cluster;
  Core.Cluster.shutdown cluster;
  List.rev !results

type cell = {
  backend : string;
  kind : kind;
  unit_ : string;
  scale : float; (* native time -> reported unit *)
  hist : Metrics.Hist.t;
  availability_pct : float;
  cycles : int;
}

let cell_of ~backend ~unit_ ~scale kind samples =
  let samples = List.filter (fun c -> c.ckind = kind) samples in
  let hist = Metrics.Hist.create () in
  List.iter (fun c -> Metrics.Hist.add hist (c.ttr *. scale)) samples;
  let ok = List.fold_left (fun a c -> a + c.avail_ok) 0 samples in
  let total = List.fold_left (fun a c -> a + c.avail_total) 0 samples in
  {
    backend;
    kind;
    unit_;
    scale;
    hist;
    availability_pct =
      (if total = 0 then 0. else 100. *. float_of_int ok /. float_of_int total);
    cycles = List.length samples;
  }

let pct c p =
  if Metrics.Hist.count c.hist = 0 then 0. else Metrics.Hist.percentile c.hist p

let run () =
  let cycles = if !smoke then 2 else 6 in
  let domains = if !smoke then 2 else 4 in
  let ts = 0.002 in
  (* mc: 2 ms per unit; the 10-unit deadline is 20 ms *)
  let hw = Runtime_mc.hw_cores () in
  Util.section "Chaos recovery latency (sim + mc)";
  Printf.printf
    "  %d-of-%d code, %d stripes, deadline %gu; per cycle: fault %gu, \
     recovery window %gu, probe every %gu\n\
    \  %d cycles per fault kind per backend; mc: %d domains (%d hw \
     cores), %gs per unit\n"
    m n stripes deadline_u fault_u recover_u probe_gap_u cycles domains hw
    ts;
  let sim = run_backend ~mc:false ~domains:1 ~ts:1. ~cycles in
  let mc = run_backend ~mc:true ~domains ~ts ~cycles in
  let cells =
    [
      cell_of ~backend:"sim" ~unit_:"delta" ~scale:1. Crash sim;
      cell_of ~backend:"sim" ~unit_:"delta" ~scale:1. Partition sim;
      cell_of ~backend:"mc" ~unit_:"ms" ~scale:1e3 Crash mc;
      cell_of ~backend:"mc" ~unit_:"ms" ~scale:1e3 Partition mc;
    ]
  in
  Printf.printf "  %-14s | %10s | %10s | %10s | %10s | %12s\n" "cell"
    "ttr p50" "ttr p99" "ttr max" "unit" "avail@fault";
  Printf.printf "  %s\n" (String.make 78 '-');
  List.iter
    (fun c ->
      Printf.printf "  %-14s | %10.2f | %10.2f | %10.2f | %10s | %11.1f%%\n"
        (c.backend ^ "_" ^ kind_name c.kind)
        (pct c 50.) (pct c 99.)
        (Metrics.Hist.max c.hist)
        c.unit_ c.availability_pct)
    cells;
  Printf.printf
    "  (availability under these faults is expected ~0: both take the \
     whole quorum)\n";
  Option.iter
    (fun path ->
      let open Obs.Json in
      let num k v = (k, F v) in
      let doc =
        ( "meta",
          Obs.Meta.standard ~runtime:"sim+mc" ~domains
            ~extra:
              [
                ("tool", S "bench chaos");
                ("m", I m);
                ("n", I n);
                ("stripes", I stripes);
                ("block_size", I block_size);
                num "deadline_u" deadline_u;
                num "fault_u" fault_u;
                num "recover_u" recover_u;
                num "probe_gap_u" probe_gap_u;
                num "mc_seconds_per_unit" ts;
                ("cycles_per_kind", I cycles);
                ("hw_cores", I hw);
                ("smoke", B !smoke);
              ]
            () )
        :: List.map
             (fun c ->
               ( c.backend ^ "_" ^ kind_name c.kind,
                 [
                   ("unit", S c.unit_);
                   ("cycles", I c.cycles);
                   num "ttr_p50" (pct c 50.);
                   num "ttr_p99" (pct c 99.);
                   num "ttr_max" (Metrics.Hist.max c.hist);
                   num "ttr_mean" (Metrics.Hist.mean c.hist);
                   num "availability_pct" c.availability_pct;
                 ] ))
             cells
      in
      let oc = open_out path in
      Printf.fprintf oc "{%s}\n"
        (String.concat ",\n "
           (List.map
              (fun (name, fields) -> render (S name) ^ ": " ^ obj fields)
              doc));
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    !json_out
