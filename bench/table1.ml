(* Experiment T1 — Table 1: per-operation costs of the erasure-coded
   storage register versus the LS97 replicated-register baseline.

   For each operation class the harness constructs the scenario the
   paper's accounting assumes (fast paths on a healthy system, slow
   paths after a replica missed a write or the target brick crashed),
   runs exactly one operation, and prints the paper's formula value
   next to the measured value. *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
open Util

let block_size = 1024

let fresh_cluster ~m ~n = Cluster.create ~m ~n ~block_size ()

let fmt_int i = string_of_int i
let fmt f = Printf.sprintf "%g" f

let run_for ~m ~n =
  let k = n - m in
  subsection
    (Printf.sprintf "m = %d, n = %d (k = %d parity), B = %d bytes" m n k
       block_size);
  row_header ();

  (* --- our algorithm: stripe access --- *)
  let cl = fresh_cluster ~m ~n in
  let data = stripe_data 'A' m block_size in
  let st_w = observe cl in
  let _, w =
    measure_op cl (fun c -> Coordinator.write_stripe c ~stripe:0 data)
  in
  let st_r = observe cl in
  let _, r = measure_op cl (fun c -> Coordinator.read_stripe c ~stripe:0) in
  row "stripe read/F"
    ~paper:("2", fmt_int (2 * n), fmt_int m, "0", fmt_int m)
    ~measured:r;
  phase_line st_r [ "read-stripe" ];
  row "stripe write"
    ~paper:("4", fmt_int (4 * n), "0", fmt_int n, fmt_int n)
    ~measured:w;
  phase_line st_w [ "write-stripe" ];

  (* stripe read/S: one replica missed the last write and rejoined. *)
  let cl = fresh_cluster ~m ~n in
  Cluster.crash cl 0;
  let _ =
    measure_op ~coord:1 cl (fun c ->
        Coordinator.write_stripe c ~stripe:0 (stripe_data 'B' m block_size))
  in
  Cluster.recover cl 0;
  let st_rs = observe cl in
  let _, rs =
    measure_op ~coord:1 cl (fun c -> Coordinator.read_stripe c ~stripe:0)
  in
  row "stripe read/S"
    ~paper:("6", fmt_int (6 * n), fmt_int (n + m), fmt_int n, fmt_int ((2 * n) + m))
    ~measured:rs;
  phase_line st_rs [ "read-stripe"; "recover" ];

  (* --- our algorithm: block access --- *)
  let cl = fresh_cluster ~m ~n in
  let _ =
    measure_op cl (fun c -> Coordinator.write_stripe c ~stripe:0 data)
  in
  let st_rb = observe cl in
  let _, rb = measure_op cl (fun c -> Coordinator.read_block c ~stripe:0 0) in
  row "block read/F" ~paper:("2", fmt_int (2 * n), "1", "0", "1") ~measured:rb;
  phase_line st_rb [ "read-block" ];
  let nb = Bytes.make block_size 'z' in
  let st_wb = observe cl in
  let _, wb =
    measure_op cl (fun c -> Coordinator.write_block c ~stripe:0 0 nb)
  in
  row "block write/F"
    ~paper:("4", fmt_int (4 * n), fmt_int (k + 1), fmt_int (k + 1),
            fmt_int ((2 * n) + 1))
    ~measured:wb;
  phase_line st_wb [ "write-block" ];

  (* block read/S: like stripe read/S but through read-block. *)
  let cl = fresh_cluster ~m ~n in
  Cluster.crash cl 0;
  let _ =
    measure_op ~coord:1 cl (fun c ->
        Coordinator.write_stripe c ~stripe:0 (stripe_data 'C' m block_size))
  in
  Cluster.recover cl 0;
  let st_rbs = observe cl in
  let _, rbs =
    measure_op ~coord:1 cl (fun c -> Coordinator.read_block c ~stripe:0 1)
  in
  row "block read/S"
    ~paper:("6", fmt_int (6 * n), fmt_int (n + 1), fmt_int n, fmt_int ((2 * n) + 1))
    ~measured:rbs;
  phase_line st_rbs [ "read-block"; "recover" ];

  (* block write/S: p_j is crashed, so the fast phase cannot obtain its
     current block and the write reconstructs the stripe instead. The
     paper's 8-delta accounting also bills a failed Modify round; with
     a crashed p_j no Modify is ever sent, so the measured slow write
     costs one round less (see EXPERIMENTS.md). *)
  let cl = fresh_cluster ~m ~n in
  let _ =
    measure_op cl (fun c -> Coordinator.write_stripe c ~stripe:0 data)
  in
  Cluster.crash cl 0;
  let st_wbs = observe cl in
  let _, wbs =
    measure_op ~coord:1 cl (fun c -> Coordinator.write_block c ~stripe:0 0 nb)
  in
  row "block write/S"
    ~paper:("8", fmt_int (8 * n), fmt_int (k + n + 1), fmt_int (k + n + 1),
            fmt_int ((4 * n) + 1))
    ~measured:wbs;
  phase_line st_wbs [ "write-block"; "recover" ];

  (* --- LS97 baseline --- *)
  let module L = Baseline.Ls97 in
  let t = L.create ~n ~block_size () in
  let measure_ls f =
    let before = L.snapshot t in
    let latency = ref nan in
    Dessim.Fiber.spawn (fun () ->
        let t0 = Dessim.Engine.now (L.engine t) in
        ignore (f ());
        latency := Dessim.Engine.now (L.engine t) -. t0);
    L.run t;
    let after = L.snapshot t in
    let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
    {
      latency = !latency;
      msgs = d "net.msgs";
      disk_reads = d "disk.reads";
      disk_writes = d "disk.writes";
      bytes = d "net.bytes" /. float_of_int block_size;
    }
  in
  let lw = measure_ls (fun () -> L.write t ~coord:0 ~reg:0 (Bytes.make block_size 'a')) in
  let lr = measure_ls (fun () -> L.read t ~coord:1 ~reg:0) in
  row "LS97 read"
    ~paper:("4", fmt_int (4 * n), fmt_int n, fmt_int n, fmt (2. *. float_of_int n))
    ~measured:lr;
  row "LS97 write"
    ~paper:("4", fmt_int (4 * n), "0", fmt_int n, fmt_int n)
    ~measured:lw;
  Printf.printf
    "\n  (storage: ours keeps n/m = %.2fx the logical bytes; LS97 keeps n = %dx)\n"
    (float_of_int n /. float_of_int m)
    n

let run () =
  section "T1 | Table 1: operation costs (paper / measured)";
  Printf.printf
    "Latency in units of the one-way delay delta; bandwidth in units of the\n\
     block size B. Slow paths (read/S, write/S) are exercised by a replica\n\
     that missed a write (crash + rejoin) or a crashed target brick.\n";
  run_for ~m:5 ~n:8;
  run_for ~m:3 ~n:5
