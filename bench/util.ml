(* Shared helpers for the experiment harness: cost measurement around
   a single operation, and table rendering. *)

module Cluster = Core.Cluster

type costs = {
  latency : float;  (* in units of delta *)
  msgs : float;
  disk_reads : float;
  disk_writes : float;
  bytes : float;  (* in units of B (one block) *)
}

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

(* Measure one register operation end to end. *)
let measure_op ?(coord = 0) (cl : Cluster.t) f =
  let before = Cluster.snapshot cl in
  let latency = ref nan in
  let outcome = ref `Incomplete in
  Cluster.spawn ~coord cl (fun c ->
      let t0 = Dessim.Engine.now cl.Cluster.engine in
      (match f c with
      | Ok _ -> outcome := `Ok
      | Error (`Aborted | `Unavailable) -> outcome := `Aborted);
      latency := Dessim.Engine.now cl.Cluster.engine -. t0);
  Cluster.run cl;
  let after = Cluster.snapshot cl in
  let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  let block_size = float_of_int cl.Cluster.cfg.Core.Config.block_size in
  ( !outcome,
    {
      latency = !latency;
      msgs = d "net.msgs";
      disk_reads = d "disk.reads";
      disk_writes = d "disk.writes";
      bytes = d "net.bytes" /. block_size;
    } )

(* Attach a fresh per-op aggregator to the cluster's observability hub.
   The first attachment enables tracing for the cluster; each aggregator
   only sees events emitted after its own attachment, so calling this
   right before a measured op scopes the aggregator to that op and
   everything after it on the same cluster — filter by op kind when
   printing. Tracing does not perturb measurements: sim-time latencies
   and metrics counters are unchanged by sinks. *)
let observe (cl : Cluster.t) =
  let stats = Obs.Stats.create () in
  Obs.add_sink cl.Cluster.obs (Obs.Stats.sink stats);
  stats

(* Per-phase latency accounting under a table row, one line per op kind
   in [kinds]: "^ write-stripe phases: order 2 + write 2 (= 4 delta)". *)
let phase_line ?(indent = "    ") stats kinds =
  List.iter
    (fun (kind, count, phases) ->
      if List.mem kind kinds && phases <> [] then begin
        let parts =
          List.map
            (fun (p, mean) -> Printf.sprintf "%s %g" (Obs.phase_name p) mean)
            phases
        in
        let total = List.fold_left (fun a (_, mean) -> a +. mean) 0. phases in
        Printf.printf "%s^ %s phases: %s (= %g delta%s)\n" indent kind
          (String.concat " + " parts)
          total
          (if count = 1 then "" else Printf.sprintf " mean over %d ops" count)
      end)
    (Obs.Stats.phase_breakdown stats)

let row_header () =
  Printf.printf "  %-24s | %18s | %18s | %14s | %14s | %18s\n" "operation"
    "latency (delta)" "messages" "disk reads" "disk writes" "net b/w (B)";
  Printf.printf "  %s\n" (String.make 122 '-')

(* Print one row: "paper formula value / measured value" per column. *)
let row name ~paper ~measured =
  let cell p m =
    if Float.is_nan m then Printf.sprintf "%8s /     (na)" p
    else Printf.sprintf "%8s / %8.5g" p m
  in
  let pl, pm, pr, pw, pb = paper in
  Printf.printf "  %-24s | %s | %s | %s | %s | %s\n" name
    (cell pl measured.latency) (cell pm measured.msgs)
    (cell pr measured.disk_reads) (cell pw measured.disk_writes)
    (cell pb measured.bytes)

let stripe_data tag m block_size =
  Array.init m (fun i ->
      Bytes.make block_size (Char.chr ((Char.code tag + i) land 0xff)))
