(* Protocol-level benchmarks for the request-pipelining optimizations:
   serial vs pipelined multi-stripe I/O, cold vs warm write rounds
   (order-phase elision via the coordinator timestamp cache), and
   per-destination message coalescing.

   Each comparison varies exactly one knob on otherwise identical
   volumes (same seed, same geometry, same request stream), so the
   deltas are attributable. Latencies are in units of delta (one-way
   network delay); one quorum round trip costs 2 delta.

   [json_out] (set by bench/main.ml's --json flag) writes the numbers
   to BENCH_protocol.json; [smoke] (--smoke) shrinks request counts so
   a CI alias can exercise the harness quickly. *)

let json_out : string option ref = ref None
let smoke : bool ref = ref false

let m = 2
let n = 4
let volume_stripes = 16
let span_stripes = 8 (* stripes touched by every request *)
let block_size = 512

type run_result = {
  requests : int;
  oks : int;
  elapsed : float; (* delta units *)
  msgs : float; (* network envelopes *)
  latencies : float list; (* per request, in request order *)
  stats : Obs.Stats.stats option;
}

(* Drive [requests] identical [span_stripes]-stripe requests, back to
   back, from one client fiber. [observe_from] attaches a fresh stats
   aggregator after that many requests completed (so warm-up traffic is
   excluded from phase accounting). *)
let run_requests ?observe_from ~window ~ts_cache ~coalesce ~write ~requests ()
    =
  let volume =
    Fab.Volume.create ~m ~n ~stripes:volume_stripes ~block_size ~seed:1
      ~ts_cache ~coalesce ~pipeline_window:window ()
  in
  let cluster = Fab.Volume.cluster volume in
  let engine = cluster.Core.Cluster.engine in
  let count = span_stripes * m in
  let payload = Bytes.make (count * block_size) 'p' in
  let stats = ref None in
  let before0 = Core.Cluster.snapshot cluster in
  let observed_before = ref before0 in
  let t_observed = ref 0. in
  let oks = ref 0 in
  let latencies = ref [] in
  let observe () =
    stats := Some (Util.observe cluster);
    observed_before := Core.Cluster.snapshot cluster;
    t_observed := Dessim.Engine.now engine
  in
  if observe_from = Some 0 then observe ();
  let t0 = Dessim.Engine.now engine in
  ignore
    (Fab.Volume.run_op volume (fun () ->
         for i = 1 to requests do
           let t = Dessim.Engine.now engine in
           (match
              if write then Fab.Volume.write volume ~coord:0 ~lba:0 payload
              else
                Result.map ignore (Fab.Volume.read volume ~coord:0 ~lba:0 ~count)
            with
           | Ok () -> incr oks
           | Error _ -> ());
           latencies := (Dessim.Engine.now engine -. t) :: !latencies;
           if observe_from = Some i && i < requests then observe ()
         done));
  let t_end = Dessim.Engine.now engine in
  let after = Core.Cluster.snapshot cluster in
  let from, t_from =
    match observe_from with
    | Some k when k > 0 -> (!observed_before, !t_observed)
    | _ -> (before0, t0)
  in
  let measured_requests =
    match observe_from with Some k when k > 0 -> requests - k | _ -> requests
  in
  {
    requests = measured_requests;
    oks = !oks;
    elapsed = t_end -. t_from;
    msgs = Metrics.Snapshot.get after "net.msgs" -. Metrics.Snapshot.get from "net.msgs";
    latencies = List.rev !latencies;
    stats = !stats;
  }

let per_req r v = v /. float_of_int r.requests
let ops_per_kdelta r = float_of_int r.requests /. r.elapsed *. 1000.

(* Mean latency of the observed (post-warm-up) requests. *)
let mean_latency r =
  let tail =
    (* keep only the measured window's requests *)
    let drop = List.length r.latencies - r.requests in
    List.filteri (fun i _ -> i >= drop) r.latencies
  in
  List.fold_left ( +. ) 0. tail /. float_of_int (List.length tail)

let phase_mean stats kind phase =
  match
    List.find_opt (fun (k, _, _) -> k = kind) (Obs.Stats.phase_breakdown stats)
  with
  | None -> 0.
  | Some (_, _, phases) -> (
      match List.assoc_opt phase phases with Some v -> v | None -> 0.)

let elided_count stats kind phase =
  match List.assoc_opt kind (Obs.Stats.elided_by_kind stats) with
  | None -> 0
  | Some counts -> (
      match List.assoc_opt phase counts with Some c -> c | None -> 0)

let run () =
  let requests = if !smoke then 4 else 40 in
  let warmup = 1 in
  Util.section
    (Printf.sprintf
       "Protocol pipelining: %d-of-%d, %d-stripe requests, %d requests"
       m n span_stripes requests);

  (* -- serial vs pipelined ------------------------------------------ *)
  let serial_r =
    run_requests ~window:1 ~ts_cache:false ~coalesce:false ~write:false
      ~requests ()
  in
  let serial_w =
    run_requests ~window:1 ~ts_cache:false ~coalesce:false ~write:true
      ~requests ()
  in
  let piped_r =
    run_requests ~window:span_stripes ~ts_cache:false ~coalesce:false
      ~write:false ~requests ()
  in
  let piped_w =
    run_requests ~window:span_stripes ~ts_cache:false ~coalesce:false
      ~write:true ~requests ()
  in
  let line name r =
    Printf.printf
      "  %-22s %8.2f ops/kdelta  %6.1f delta/req  %6.1f rounds/req  %7.1f \
       msgs/req\n"
      name (ops_per_kdelta r) (mean_latency r)
      (mean_latency r /. 2.)
      (per_req r r.msgs)
  in
  line "serial reads" serial_r;
  line "pipelined reads" piped_r;
  line "serial writes" serial_w;
  line "pipelined writes" piped_w;
  let speedup_r = ops_per_kdelta piped_r /. ops_per_kdelta serial_r in
  let speedup_w = ops_per_kdelta piped_w /. ops_per_kdelta serial_w in
  Printf.printf "  speedup: reads %.1fx, writes %.1fx (window %d over %d \
                 stripes)\n"
    speedup_r speedup_w span_stripes span_stripes;

  (* -- cold vs warm writes (order-phase elision) --------------------- *)
  Util.subsection "Order-phase elision (coordinator timestamp cache)";
  let cold =
    run_requests ~observe_from:0 ~window:span_stripes ~ts_cache:true
      ~coalesce:false ~write:true ~requests:1 ()
  in
  let warm =
    run_requests ~observe_from:warmup ~window:span_stripes ~ts_cache:true
      ~coalesce:false ~write:true ~requests:(warmup + requests) ()
  in
  let cold_stats = Option.get cold.stats in
  let warm_stats = Option.get warm.stats in
  let cold_order = phase_mean cold_stats "write-stripe" Obs.Order in
  let cold_write = phase_mean cold_stats "write-stripe" Obs.Write in
  let warm_order = phase_mean warm_stats "write-stripe" Obs.Order in
  let warm_write = phase_mean warm_stats "write-stripe" Obs.Write in
  let warm_elided = elided_count warm_stats "write-stripe" Obs.Order in
  Printf.printf
    "  cold write request: %5.1f delta (order %.1f + write %.1f per stripe \
     op)\n"
    (mean_latency cold) cold_order cold_write;
  Printf.printf
    "  warm write request: %5.1f delta (order %.1f + write %.1f per stripe \
     op), %d order rounds elided over %d requests\n"
    (mean_latency warm) warm_order warm_write warm_elided warm.requests;
  Printf.printf "  msgs/req: cold %.1f, warm %.1f (an elided order round \
                 saves its 2n messages)\n"
    (per_req cold cold.msgs) (per_req warm warm.msgs);

  (* -- per-destination coalescing ------------------------------------ *)
  Util.subsection "Per-destination coalescing (pipelined writes)";
  let nocoal = piped_w in
  let coal =
    run_requests ~window:span_stripes ~ts_cache:false ~coalesce:true
      ~write:true ~requests ()
  in
  Printf.printf
    "  envelopes/req: %.1f uncoalesced vs %.1f coalesced (%.1fx fewer; \
     payload bytes unchanged)\n"
    (per_req nocoal nocoal.msgs) (per_req coal coal.msgs)
    (per_req nocoal nocoal.msgs /. per_req coal coal.msgs);

  (* -- JSON ----------------------------------------------------------- *)
  Option.iter
    (fun path ->
      let open Obs.Json in
      let section name fields = (name, fields) in
      let num k v = (k, F v) in
      let doc =
        [
          (* Full meta stamp (commit, date, kernel, seed) so bench_diff
             can refuse apples-to-oranges comparisons, same as
             BENCH_micro.json. *)
          section "meta"
            (Obs.Meta.standard
               ~extra:
                 [
                   ("tool", S "bench protocol");
                   ("seed", I 1);
                   ("m", I m);
                   ("n", I n);
                   ("span_stripes", I span_stripes);
                   ("block_size", I block_size);
                   ("requests", I requests);
                   ("smoke", B !smoke);
                   ("gf_kernel", S Gf256.Kernel.(name (default ())));
                   ("simd_level", I Gf256.Kernel.simd_level);
                 ]
               ());
          section "pipeline"
            [
              num "serial_read_ops_per_kdelta" (ops_per_kdelta serial_r);
              num "pipelined_read_ops_per_kdelta" (ops_per_kdelta piped_r);
              num "serial_write_ops_per_kdelta" (ops_per_kdelta serial_w);
              num "pipelined_write_ops_per_kdelta" (ops_per_kdelta piped_w);
              num "read_speedup" speedup_r;
              num "write_speedup" speedup_w;
              num "serial_read_rounds_per_req" (mean_latency serial_r /. 2.);
              num "pipelined_read_rounds_per_req" (mean_latency piped_r /. 2.);
              num "serial_write_rounds_per_req" (mean_latency serial_w /. 2.);
              num "pipelined_write_rounds_per_req" (mean_latency piped_w /. 2.);
              num "serial_write_msgs_per_req" (per_req serial_w serial_w.msgs);
              num "pipelined_write_msgs_per_req" (per_req piped_w piped_w.msgs);
            ];
          section "write_rounds"
            [
              num "cold_delta_per_req" (mean_latency cold);
              num "warm_delta_per_req" (mean_latency warm);
              num "cold_order_phase" cold_order;
              num "cold_write_phase" cold_write;
              num "warm_order_phase" warm_order;
              num "warm_write_phase" warm_write;
              ("warm_elided_order_rounds", I warm_elided);
              ("warm_requests", I warm.requests);
              num "cold_msgs_per_req" (per_req cold cold.msgs);
              num "warm_msgs_per_req" (per_req warm warm.msgs);
            ];
          section "coalescing"
            [
              num "uncoalesced_envelopes_per_req" (per_req nocoal nocoal.msgs);
              num "coalesced_envelopes_per_req" (per_req coal coal.msgs);
              num "envelope_reduction"
                (per_req nocoal nocoal.msgs /. per_req coal coal.msgs);
            ];
        ]
      in
      let oc = open_out path in
      Printf.fprintf oc "{%s}\n"
        (String.concat ",\n "
           (List.map
              (fun (name, fields) ->
                render (S name) ^ ": " ^ obj fields)
              doc));
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    !json_out
