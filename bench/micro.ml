(* Microbenchmarks (Bechamel): raw throughput of the erasure-coding
   primitives this implementation hand-rolls — the compute cost a FAB
   brick pays per block on the wire-side of the protocol.

   Four groups:
   - "erasure": the codec-level primitives (encode/decode/modify) under
     the default (fastest available) GF(2^8) kernel;
   - "kernel": the GF(2^8) slice kernels against the reference
     implementations they replaced (64-bit-wide XOR vs byte-at-a-time,
     coefficient product table vs branchy log/exp lookups), plus one
     dispatched single-coefficient row per available kernel backend;
   - "fused": the fused all-parity-rows encode of rs(10,14), once per
     available kernel backend — the head-to-head the split-table and
     SIMD work is judged by;
   - "plan": decode with a warm decode-plan cache vs re-running
     Gaussian elimination on every call.

   [json_out] (set by bench/main.ml's --json flag) additionally writes
   every row to BENCH_micro.json so the perf trajectory is
   machine-tracked; [smoke] (--smoke) shrinks the measurement quota so
   a CI alias can exercise the harness in well under a second.
   [check_split] (--check-split) is a pass/fail gate: the split64
   kernel must not regress below the table kernel on rs(10,14) encode. *)

open Bechamel
open Toolkit
module K = Gf256.Kernel

let json_out : string option ref = ref None
let smoke : bool ref = ref false

let block_size = 4096

let stripe m =
  Array.init m (fun i -> Bytes.make block_size (Char.chr (33 + i)))

(* ------------------------------------------------------------------ *)
(* Reference kernels (the pre-optimization implementations), kept here
   so every future run can compare the fast paths against them.        *)
(* ------------------------------------------------------------------ *)

let ref_exp = Array.init 510 (fun i -> Gf256.Field.exp_table i)
let ref_log = Array.init 256 (fun a -> if a = 0 then 0 else Gf256.Field.log_table a)

(* Byte-at-a-time XOR accumulate (the old c = 1 path). *)
let scalar_xor_slice ~dst ~src =
  for i = 0 to Bytes.length src - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
         lxor Char.code (Bytes.unsafe_get src i)))
  done

(* Zero-test plus two table lookups per byte (the old general path). *)
let logexp_mul_slice ~dst ~src c =
  let lc = ref_log.(c) in
  for i = 0 to Bytes.length src - 1 do
    let s = Char.code (Bytes.unsafe_get src i) in
    if s <> 0 then
      Bytes.unsafe_set dst i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get dst i) lxor ref_exp.(lc + ref_log.(s))))
  done

let kernel_tests () =
  let src = Bytes.init block_size (fun i -> Char.chr ((i * 7 + 3) land 0xff)) in
  let dst = Bytes.make block_size '\001' in
  let c = 0xb7 in
  let table = Gf256.Field.mul_table c in
  [
    Test.make ~name:"xor wide64"
      (Staged.stage (fun () -> Gf256.Field.mul_slice ~dst ~src 1));
    Test.make ~name:"xor scalar"
      (Staged.stage (fun () -> scalar_xor_slice ~dst ~src));
    Test.make ~name:"mul table"
      (Staged.stage (fun () -> Gf256.Field.mul_table_slice ~dst ~src table));
    Test.make ~name:"mul log/exp"
      (Staged.stage (fun () -> logexp_mul_slice ~dst ~src c));
  ]
  (* One dispatched single-coefficient multiply-accumulate per available
     backend: what a parity-delta application costs under each kernel. *)
  @ List.map
      (fun impl ->
        let mul = K.make_mul impl c in
        Test.make
          ~name:("mul_acc " ^ K.name impl)
          (Staged.stage (fun () -> K.mul_acc mul ~dst ~src)))
      (K.available_impls ())

let erasure_tests () =
  let mk_codec name codec m =
    let data = stripe m in
    let enc = Erasure.Codec.encode codec data in
    let n = Erasure.Codec.n codec in
    let decode_input = List.init m (fun i -> (n - m + i, enc.(n - m + i))) in
    let new_block = Bytes.make block_size 'z' in
    [
      Test.make ~name:(name ^ " encode")
        (Staged.stage (fun () -> ignore (Erasure.Codec.encode codec data)));
      Test.make
        ~name:(name ^ " decode (parity-heavy)")
        (Staged.stage (fun () ->
             ignore (Erasure.Codec.decode codec decode_input)));
      Test.make ~name:(name ^ " modify")
        (Staged.stage (fun () ->
             ignore
               (Erasure.Codec.modify codec ~data_idx:0 ~parity_idx:0
                  ~old_data:data.(0) ~new_data:new_block ~old_parity:enc.(m))));
    ]
  in
  mk_codec "rs(5,8)" (Erasure.Codec.rs ~m:5 ~n:8 ()) 5
  @ mk_codec "rs(10,14)" (Erasure.Codec.rs ~m:10 ~n:14 ()) 10
  @ mk_codec "parity(4,5)" (Erasure.Codec.parity ~m:4 ()) 4

(* The fused all-parity encode of rs(10,14), head to head across every
   kernel backend available on this machine. encode_into with pinned
   output buffers, so the rows measure pure kernel work. *)
let fused_m = 10
let fused_n = 14

let fused_codec impl = Erasure.Codec.rs ~kernel:impl ~m:fused_m ~n:fused_n ()

let fused_encode_test impl =
  let codec = fused_codec impl in
  let data = stripe fused_m in
  let into =
    Array.init fused_n (fun i ->
        if i < fused_m then data.(i) else Bytes.create block_size)
  in
  (codec, data, into)

let fused_tests () =
  List.map
    (fun impl ->
      let codec, data, into = fused_encode_test impl in
      Test.make
        ~name:("encode rs(10,14) " ^ K.name impl)
        (Staged.stage (fun () -> Erasure.Codec.encode_into codec data ~into)))
    (K.available_impls ())

(* Small blocks so plan construction (Gaussian elimination, O(m^3))
   dominates over slice work: this isolates what the decode-plan cache
   saves on every degraded read over an already-seen surviving set. *)
let plan_block_size = 64

let plan_tests () =
  let m = 10 and n = 14 in
  let codec = Erasure.Codec.rs ~m ~n () in
  let data =
    Array.init m (fun i -> Bytes.make plan_block_size (Char.chr (33 + i)))
  in
  let enc = Erasure.Codec.encode codec data in
  let decode_input = List.init m (fun i -> (n - m + i, enc.(n - m + i))) in
  let into = Array.init m (fun _ -> Bytes.create plan_block_size) in
  [
    Test.make ~name:"rs(10,14) decode cached plan"
      (Staged.stage (fun () ->
           Erasure.Codec.decode_into codec decode_input ~into));
    Test.make ~name:"rs(10,14) decode uncached plan"
      (Staged.stage (fun () ->
           Erasure.Codec.reset_plan_cache codec;
           Erasure.Codec.decode_into codec decode_input ~into));
  ]

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let measure_group (group, tests, bytes_per_op) =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let quota = if !smoke then Time.second 0.005 else Time.second 0.25 in
  let limit = if !smoke then 50 else 1000 in
  let cfg = Benchmark.cfg ~limit ~quota ~kde:(Some 10) () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:group ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] when ns > 0. ->
          let mbps = float_of_int bytes_per_op /. ns *. 1e9 /. 1e6 in
          (name, Some (ns, mbps)) :: acc
      | _ -> (name, None) :: acc)
    results []

let write_json path rows =
  let oc = open_out path in
  (* Stamp run metadata (commit, date, geometry, selected kernel) so
     results files stay comparable across commits; see Obs.Meta. *)
  let meta =
    Obs.Meta.standard
      ~extra:
        Obs.Json.
          [
            ("tool", S "bench micro");
            ("block_size", I block_size);
            ("plan_block_size", I plan_block_size);
            ("gf_kernel", S (K.name (K.default ())));
            ("simd_level", I K.simd_level);
          ]
      ()
  in
  Printf.fprintf oc "{\"meta\": %s,\n \"rows\": [\n"
    (Obs.Json.obj meta);
  let total = List.length rows in
  List.iteri
    (fun i (name, est) ->
      let ns, mbps = match est with Some (ns, mb) -> (ns, mb) | None -> (0., 0.) in
      Printf.fprintf oc
        "  {\"name\": %S, \"ns_per_op\": %.1f, \"mb_per_s\": %.1f}%s\n" name ns
        mbps
        (if i = total - 1 then "" else ","))
    rows;
  output_string oc "]}\n";
  close_out oc;
  Printf.printf "  wrote %d rows to %s\n" total path

let run () =
  Util.section "MICRO | erasure-coding primitive throughput (4 KiB blocks)";
  Printf.printf "  gf kernel: %s (simd level %d; available: %s)\n"
    (K.name (K.default ()))
    K.simd_level
    (String.concat " " (List.map K.name (K.available_impls ())));
  let rows =
    List.concat_map measure_group
      [
        ("erasure", erasure_tests (), block_size);
        ("kernel", kernel_tests (), block_size);
        ("fused", fused_tests (), fused_m * block_size);
        ("plan", plan_tests (), plan_block_size);
      ]
  in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Printf.printf "  %-38s %16s %16s\n" "primitive" "ns/op" "MB/s (per block)";
  List.iter
    (fun (name, est) ->
      match est with
      | Some (ns, mbps) ->
          Printf.printf "  %-38s %16.1f %16.1f\n" name ns mbps
      | None -> Printf.printf "  %-38s %16s %16s\n" name "(n/a)" "(n/a)")
    rows;
  match !json_out with None -> () | Some path -> write_json path rows

(* ------------------------------------------------------------------ *)
(* CI gates                                                            *)
(* ------------------------------------------------------------------ *)

let list_kernels () =
  List.iter (fun impl -> print_endline (K.name impl)) (K.available_impls ())

(* Directly timed (not Bechamel: the smoke quota is too noisy for a
   pass/fail gate) encode comparison. The split64 kernel exists to beat
   the table kernel on fused multi-row maps; fail CI if it ever drops
   below 0.9x table throughput on the reference rs(10,14) encode. *)
let check_split () =
  let time_encode impl =
    let codec, data, into = fused_encode_test impl in
    let iters = 200 in
    for _ = 1 to 20 do
      Erasure.Codec.encode_into codec data ~into
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Erasure.Codec.encode_into codec data ~into
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
  in
  let table_ns = time_encode K.Table in
  let split_ns = time_encode K.Split64 in
  Printf.printf
    "check-split: rs(10,14) encode_into  table %.0f ns  split64 %.0f ns  (%.2fx)\n"
    table_ns split_ns (table_ns /. split_ns);
  if split_ns > table_ns /. 0.9 then begin
    Printf.eprintf
      "check-split: FAIL: split64 kernel slower than 0.9x table kernel\n";
    exit 1
  end
