(* Chaos subsystem tests.

   - Plan files round-trip through print/parse, and parse errors are
     reported with line context.
   - Quorum loss fails fast: with more than n - q bricks down every
     operation returns `Unavailable within the configured deadline, the
     same operation succeeds after recovery, and no crash hooks
     accumulate across the outage.
   - Scrub under fire: bit rot injected while full-stripe writes are in
     flight; Volume.scrub repairs every corrupted block and the final
     history is strictly linearizable.
   - The harness is deterministic: same (plan, seed, knobs) produces a
     byte-identical event trace.
   - The deliberately broken --chaos-unsafe-skip-order variant is
     caught by the harness and ddmin-shrinks to a small reproducer that
     still fails unsafe and passes safe. *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module Plan = Chaos.Plan
module Harness = Chaos.Harness
module H = Linearize.History
module Check = Linearize.Check

let bs = 64

let value_block s =
  let b = Bytes.make bs '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) bs);
  b

let block_value b =
  match Bytes.index_opt b '\000' with
  | Some 0 -> H.nil
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

(* --- plan files --- *)

let test_plan_roundtrip () =
  List.iter
    (fun (name, plan) ->
      match Plan.of_string (Plan.to_string plan) with
      | Ok plan' ->
          Alcotest.(check string)
            (Printf.sprintf "%s round-trips" name)
            (Plan.to_string plan) (Plan.to_string plan')
      | Error e -> Alcotest.failf "%s failed to re-parse: %s" name e)
    Plan.builtins

let test_plan_parse () =
  let src =
    "# commissioning test\n\
     name demo\n\
     horizon 100\n\n\
     at 10 crash 1\n\
     at 20 partition 0,1|2,3,4\n\
     at 30 heal\n\
     at 40 drop 0.25\n\
     at 50 skew 2 -7.5\n\
     at 60 torn-crash 0\n\
     at 70 bit-rot 3 1\n"
  in
  match Plan.of_string src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      Alcotest.(check string) "name" "demo" p.Plan.name;
      Alcotest.(check int) "events" 7 (List.length p.Plan.events);
      Alcotest.(check int) "max brick" 4 (Plan.max_brick p)

let test_plan_parse_errors () =
  let bad l =
    match Plan.of_string l with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" l
  in
  bad "at 10 crash 1\n";                  (* missing horizon *)
  bad "horizon 100\nat 10 frobnicate 1\n";(* unknown fault *)
  bad "horizon 100\nat nope crash 1\n";   (* bad time *)
  bad "horizon 100\nat 200 crash 1\n"     (* beyond horizon *)

(* --- quorum-loss liveness (fail fast, recover, no hook leaks) --- *)

let test_quorum_loss_fail_fast () =
  let deadline = 200. in
  let cl = Cluster.create ~seed:5 ~m:2 ~n:5 ~block_size:bs ~deadline () in
  let engine = cl.Cluster.engine in
  let hooks () =
    Array.to_list (Array.map Brick.hook_count cl.Cluster.bricks)
  in
  let baseline = hooks () in
  let data tag = Array.init 2 (fun j -> value_block (Printf.sprintf "%s%d" tag j)) in
  (* q = 4, so two bricks down is one more than the system tolerates. *)
  Cluster.crash cl 3;
  Cluster.crash cl 4;
  (match
     Cluster.run_op ~coord:0 cl (fun c ->
         let t0 = Dessim.Engine.now engine in
         let r = Coordinator.write_stripe c ~stripe:0 (data "a") in
         (r, Dessim.Engine.now engine -. t0))
   with
  | Some (Error `Unavailable, elapsed) ->
      Alcotest.(check bool)
        (Printf.sprintf "failed fast (%.0f <= %.0f + slack)" elapsed deadline)
        true
        (elapsed <= (2. *. deadline) +. 50.)
  | Some (Ok (), _) -> Alcotest.fail "write succeeded without a quorum"
  | Some (Error `Aborted, _) -> Alcotest.fail "expected `Unavailable, got abort"
  | None -> Alcotest.fail "operation stuck (fiber never completed)");
  (* Reads fail fast too. *)
  (match Cluster.run_op ~coord:1 cl (fun c -> Coordinator.read_stripe c ~stripe:1) with
  | Some (Error `Unavailable) -> ()
  | Some _ -> Alcotest.fail "read should be unavailable"
  | None -> Alcotest.fail "read stuck");
  (* Recovery restores service for the very same operation. *)
  Cluster.recover cl 3;
  Cluster.recover cl 4;
  (match Cluster.run_op ~coord:0 cl (fun c -> Coordinator.write_stripe c ~stripe:0 (data "b")) with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "write after recovery failed");
  (match Cluster.run_op ~coord:2 cl (fun c -> Coordinator.read_stripe c ~stripe:0) with
  | Some (Ok got) ->
      Alcotest.(check string) "reads the recovered write" "b0"
        (block_value got.(0))
  | _ -> Alcotest.fail "read after recovery failed");
  (* Failed and retried operations must not accumulate crash hooks. *)
  Alcotest.(check (list int)) "hook counts balanced" baseline (hooks ())

(* --- scrub under fire --- *)

module V = Fab.Volume

let test_scrub_under_fire () =
  let m = 2 and stripes = 4 in
  let v = V.create ~seed:11 ~m ~n:5 ~stripes ~block_size:bs () in
  let cl = V.cluster v in
  let engine = cl.Cluster.engine in
  let histories = Array.init (stripes * m) (fun _ -> H.create ()) in
  let uid = ref 0 in
  let sleep delay =
    Dessim.Fiber.suspend (fun r ->
        ignore
          (Dessim.Engine.schedule engine ~delay (fun () ->
               Dessim.Fiber.resume r ())))
  in
  (* Stripe logs are created lazily by the first store, so rot that
     races the very first writes may find nothing — like the nemesis,
     treat that as a no-op unless the caller requires a target. *)
  let rot ?(required = false) brick stripe =
    match Core.Replica.log cl.Cluster.replicas.(brick) ~stripe with
    | Some l -> Core.Slog.corrupt_newest l
    | None -> if required then Alcotest.fail "no log to corrupt"
  in
  (* Full-stripe writers (no read-modify-write, so corruption cannot
     launder itself into a freshly written version) racing bit rot. *)
  let writer coord rounds =
    Dessim.Fiber.spawn (fun () ->
        for _ = 1 to rounds do
          sleep (10. +. float_of_int (coord * 3));
          incr uid;
          let stripe = !uid mod stripes in
          let values =
            List.init m (fun j -> Printf.sprintf "u%d.b%d" !uid j)
          in
          let now = Dessim.Engine.now engine in
          let ids =
            List.mapi
              (fun j v ->
                ( j,
                  H.invoke histories.((stripe * m) + j) ~client:coord
                    ~kind:H.Write ~written:v ~now () ))
              values
          in
          let data =
            Bytes.concat Bytes.empty (List.map value_block values)
          in
          let r = V.write v ~coord ~lba:(stripe * m) data in
          let now = Dessim.Engine.now engine in
          List.iter
            (fun (j, id) ->
              let h = histories.((stripe * m) + j) in
              match r with
              | Ok () -> H.complete_write h id ~now
              | Error _ -> H.abort h id ~now)
            ids
        done)
  in
  writer 0 8;
  writer 1 8;
  writer 2 8;
  (* Rot strikes while the writers run... *)
  List.iter
    (fun (delay, brick, stripe) ->
      ignore
        (Dessim.Engine.schedule engine ~delay (fun () -> rot brick stripe)))
    [ (25., 1, 0); (45., 3, 2); (70., 0, 1); (95., 4, 3) ];
  V.run v;
  (* ...and twice more on the quiescent volume, where the corrupted
     entry is certainly the newest version and must be found. *)
  rot ~required:true 2 1;
  rot ~required:true 4 3;
  let repaired =
    match V.run_op v (fun () -> V.scrub v ~coord:0) with
    | Some (Ok r) -> r
    | _ -> Alcotest.fail "scrub failed"
  in
  Alcotest.(check bool) "scrub found the quiescent corruption" true
    (List.mem_assoc 1 repaired && List.mem_assoc 3 repaired);
  (match V.run_op v (fun () -> V.scrub v ~coord:1) with
  | Some (Ok []) -> ()
  | Some (Ok l) ->
      Alcotest.failf "second scrub still repairing %d stripes"
        (List.length l)
  | _ -> Alcotest.fail "second scrub failed");
  (* Every block now reads as some value a client actually wrote, and
     each per-block history is strictly linearizable. *)
  for lba = 0 to (stripes * m) - 1 do
    let stripe, j = V.stripe_of_lba v lba in
    let h = histories.((stripe * m) + j) in
    match V.run_op v (fun () -> V.read v ~coord:(lba mod 5) ~lba ~count:1) with
    | Some (Ok b) ->
        let now = Dessim.Engine.now engine in
        let id = H.invoke h ~client:5 ~kind:H.Read ~now () in
        H.complete_read h id ~value:(block_value b) ~now
    | _ -> Alcotest.failf "final read of lba %d failed" lba
  done;
  Array.iteri
    (fun idx h ->
      match Check.strict h with
      | Ok () -> ()
      | Error viol ->
          Alcotest.failf "block %d after scrub: %a" idx Check.pp_violation
            viol)
    histories

(* --- nemesis restore --- *)

let test_nemesis_restore () =
  (* Regression: the fault closures mutate the very record [install]
     returns, so [restore] sees the links and skew the plan left down
     and actually heals them — even when shrinking dropped the
     matching link-up / skew-reset events from the schedule. *)
  let cl =
    Cluster.create ~seed:3 ~m:2 ~n:4 ~block_size:bs ~deadline:100.
      ~clock:(Cluster.Realtime { skew_of = (fun _ -> 0.); resolution = 1. })
      ()
  in
  let engine = cl.Cluster.engine in
  let plan =
    Plan.make ~name:"restore-regression" ~horizon:10.
      [
        { Plan.at = 1.; fault = Plan.Link_down (0, 2) };
        { Plan.at = 1.; fault = Plan.Link_down (0, 3) };
        { Plan.at = 2.; fault = Plan.Skew (0, 42.) };
      ]
  in
  let nem = Chaos.Nemesis.install plan cl in
  Dessim.Engine.run ~until:10. engine;
  let clk = Coordinator.clock cl.Cluster.coordinators.(0) in
  Alcotest.(check (float 0.)) "skew applied" 42. (Core.Clock.skew clk);
  let data tag = Array.init 2 (fun j -> value_block (Printf.sprintf "%s%d" tag j)) in
  (* Two of four request links dead: coordinator 0 cannot reach a
     quorum of 3 and must fail fast. *)
  (match
     Cluster.run_op ~coord:0 cl (fun c ->
         Coordinator.write_stripe c ~stripe:0 (data "x"))
   with
  | Some (Error `Unavailable) -> ()
  | Some (Ok ()) -> Alcotest.fail "write reached a quorum through dead links"
  | Some (Error `Aborted) -> Alcotest.fail "expected `Unavailable, got abort"
  | None -> Alcotest.fail "write stuck");
  Chaos.Nemesis.restore nem;
  Alcotest.(check (float 0.)) "skew restored" 0. (Core.Clock.skew clk);
  (match
     Cluster.run_op ~coord:0 cl (fun c ->
         Coordinator.write_stripe c ~stripe:0 (data "y"))
   with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "write after restore failed");
  match
    Cluster.run_op ~coord:2 cl (fun c -> Coordinator.read_stripe c ~stripe:0)
  with
  | Some (Ok got) ->
      Alcotest.(check string) "reads the post-restore write" "y0"
        (block_value got.(0))
  | _ -> Alcotest.fail "read after restore failed"

(* --- plans on the multicore backend (DESIGN 4i) --- *)

let test_plan_slow_roundtrip () =
  let src = "name slowplan\nhorizon 100\nat 10 slow 2 1\nat 20 slow 0 0\n" in
  match Plan.of_string src with
  | Error e -> Alcotest.failf "slow plan failed to parse: %s" e
  | Ok p ->
      (match List.map (fun e -> e.Plan.fault) p.Plan.events with
      | [ Plan.Slow (2., 1.); Plan.Slow (0., 0.) ] -> ()
      | _ -> Alcotest.fail "slow events parsed to the wrong faults");
      (match Plan.of_string (Plan.to_string p) with
      | Ok p' ->
          Alcotest.(check string) "slow round-trips" (Plan.to_string p)
            (Plan.to_string p')
      | Error e -> Alcotest.failf "printed slow plan failed to re-parse: %s" e)

let test_plan_random_wellformed () =
  let rng = Random.State.make [| 42 |] in
  for i = 0 to 4 do
    let p = Plan.random ~rng ~bricks:5 ~horizon:600. in
    Alcotest.(check bool)
      (Printf.sprintf "random plan %d has events" i)
      true
      (List.length p.Plan.events > 0);
    Alcotest.(check bool)
      (Printf.sprintf "random plan %d stays on-deployment" i)
      true
      (Plan.max_brick p <= 4);
    match Plan.of_string (Plan.to_string p) with
    | Ok p' ->
        Alcotest.(check string)
          (Printf.sprintf "random plan %d round-trips" i)
          (Plan.to_string p) (Plan.to_string p')
    | Error e -> Alcotest.failf "random plan %d invalid: %s" i e
  done;
  (match Plan.random ~rng ~bricks:1 ~horizon:600. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bricks < 2 accepted");
  match Plan.random ~rng ~bricks:5 ~horizon:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "horizon <= 0 accepted"

(* A small mc deployment for the nemesis tests: fast deadline so
   fault-induced failures surface in milliseconds, not seconds. *)
let with_mc_cluster f =
  let cl =
    Cluster.create_mc ~domains:2 ~m:2 ~n:5 ~block_size:bs ~deadline:0.05
      ~retry_every:0.01 ()
  in
  let fnet =
    match Cluster.faultnet cl with
    | Some fnet -> fnet
    | None -> Alcotest.fail "mc cluster has no faultnet"
  in
  Fun.protect
    ~finally:(fun () ->
      if Cluster.try_quiesce ~timeout:30. cl then Cluster.shutdown cl
      else Alcotest.fail "mc cluster failed to quiesce")
    (fun () -> f cl fnet)

let mc_write cl ~coord tag =
  Coordinator.write_block
    cl.Cluster.coordinators.(coord)
    ~stripe:0 0 (value_block tag)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
  in
  scan 0

let test_mc_rejects_sim_only_faults () =
  with_mc_cluster (fun cl _fnet ->
      let reject name fault =
        let plan =
          Plan.make ~name:"simonly" ~horizon:10. [ { Plan.at = 1.; fault } ]
        in
        match Chaos.Nemesis.install plan cl with
        | exception Invalid_argument msg ->
            Alcotest.(check bool)
              (Printf.sprintf "%s error names the variant" name)
              true
              (contains ~needle:name msg)
        | _ -> Alcotest.failf "%s accepted on mc" name
      in
      reject "skew" (Plan.Skew (1, 5.));
      reject "torn-crash" (Plan.Torn_crash 1);
      reject "bit-rot" (Plan.Bit_rot (1, 0));
      reject "sector-error" (Plan.Sector_error (1, 0));
      (match Chaos.Nemesis.inject cl (Plan.Skew (1, 5.)) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "inject skew accepted on mc");
      (* lenient: the sim-only event is skipped, the rest scheduled —
         and restore tears it all back down. *)
      let mixed =
        Plan.make ~name:"lenient" ~horizon:10.
          [
            { Plan.at = 1.; fault = Plan.Bit_rot (1, 0) };
            { Plan.at = 2.; fault = Plan.Drop 0.5 };
          ]
      in
      let nem = Chaos.Nemesis.install ~lenient:true mixed cl in
      Chaos.Nemesis.restore nem)

let test_mc_restore_cancels_pending () =
  (* Install a plan whose events are all far in the future, restore
     immediately: every timer is cancelled, nothing is ever applied,
     and the Faultnet counters prove no fault ever bit. *)
  with_mc_cluster (fun cl fnet ->
      let plan =
        Plan.make ~name:"pending" ~horizon:200.
          [
            { Plan.at = 100.; fault = Plan.Crash 1 };
            { Plan.at = 100.; fault = Plan.Drop 0.9 };
            { Plan.at = 100.; fault = Plan.Partition [ [ 0 ]; [ 1; 2; 3; 4 ] ] };
          ]
      in
      let nem = Chaos.Nemesis.install plan cl in
      Chaos.Nemesis.restore nem;
      Chaos.Nemesis.restore nem;
      (* idempotent *)
      Alcotest.(check int) "nothing applied" 0
        (List.length (Chaos.Nemesis.applied nem));
      let s = Core.Faultnet.stats fnet in
      Alcotest.(check int) "no drops" 0 s.Core.Faultnet.dropped;
      Alcotest.(check int) "no cuts" 0 s.Core.Faultnet.cut;
      let snap = Core.Faultnet.snapshot fnet in
      Alcotest.(check bool) "no partition" true (snap.Core.Faultnet.groups = None);
      Alcotest.(check (float 0.)) "no drop rate" 0. snap.Core.Faultnet.drop;
      match mc_write cl ~coord:0 "pending-ok" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write failed on a healthy deployment")

let test_mc_faults_bite_and_heal () =
  (* The PR 4 review bug, asserted on mc with the Faultnet counters: a
     scheduled partition must actually suppress messages (cut counter
     grows, quorum-cut writes fail), and restore must actually heal it
     (writes succeed again, configuration snapshot back to health). *)
  with_mc_cluster (fun cl fnet ->
      let rt = cl.Cluster.runtime in
      let plan =
        Plan.make ~name:"bite" ~horizon:400.
          [ { Plan.at = 0.; fault = Plan.Partition [ [ 0 ]; [ 1; 2; 3; 4 ] ] } ]
      in
      let nem = Chaos.Nemesis.install ~time_scale:0.001 plan cl in
      let rec wait_applied tries =
        if Chaos.Nemesis.applied nem = [] then
          if tries = 0 then Alcotest.fail "partition event never fired"
          else begin
            Runtime.sleep rt 0.01;
            wait_applied (tries - 1)
          end
      in
      wait_applied 500;
      let cut0 = (Core.Faultnet.stats fnet).Core.Faultnet.cut in
      (* Coordinator 0 is alone on its side: 1 < q = 4. *)
      (match mc_write cl ~coord:0 "partitioned" with
      | Error (`Unavailable | `Aborted) -> ()
      | Ok () -> Alcotest.fail "write reached a quorum across the partition");
      let cut1 = (Core.Faultnet.stats fnet).Core.Faultnet.cut in
      Alcotest.(check bool)
        (Printf.sprintf "partition suppressed messages (%d > %d)" cut1 cut0)
        true (cut1 > cut0);
      Chaos.Nemesis.restore nem;
      (match mc_write cl ~coord:0 "healed" with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write failed after restore");
      let snap = Core.Faultnet.snapshot fnet in
      Alcotest.(check bool) "partition gone" true
        (snap.Core.Faultnet.groups = None);
      Alcotest.(check int) "applied exactly the partition" 1
        (List.length (Chaos.Nemesis.applied nem)))

let test_mc_harness_smoke () =
  (* One seed of the canned mc plan through the full chaos harness
     under real parallelism: crash with real mailbox teardown,
     recovery with the section 4 replay, partition, drop, slow — and
     the per-block histories must come back strictly linearizable with
     no stuck ops and no leaked crash hooks. *)
  let plan = Plan.builtin "mc-mixed" in
  let r =
    Harness.run
      ~backend:(Harness.Mc { domains = 2; time_scale = 0.001 })
      ~seed:1 plan
  in
  if Harness.failed r then
    Alcotest.failf "mc harness run failed: %a" Harness.pp_result r

(* --- harness determinism --- *)

let test_trace_determinism () =
  let plan = Plan.builtin "rolling-partition" in
  let r1 = Harness.run ~capture_trace:true ~seed:7 plan in
  let r2 = Harness.run ~capture_trace:true ~seed:7 plan in
  (match (r1.Harness.trace, r2.Harness.trace) with
  | Some t1, Some t2 ->
      Alcotest.(check bool) "trace nonempty" true (String.length t1 > 0);
      Alcotest.(check bool) "byte-identical traces" true (String.equal t1 t2)
  | _ -> Alcotest.fail "traces not captured");
  Alcotest.(check (list int)) "identical outcome counts"
    [ r1.Harness.ok; r1.Harness.aborted; r1.Harness.unavailable ]
    [ r2.Harness.ok; r2.Harness.aborted; r2.Harness.unavailable ];
  Alcotest.(check bool) "clean run" false (Harness.failed r1)

(* --- bundled plans stay clean; the unsafe variant is caught --- *)

let test_bundled_plans_clean () =
  List.iter
    (fun (name, plan) ->
      for seed = 1 to 3 do
        let r = Harness.run ~seed plan in
        if Harness.failed r then
          Alcotest.failf "plan %s seed %d: %a" name seed Harness.pp_result r
      done)
    Plan.builtins

let test_unsafe_variant_caught_and_shrunk () =
  let plan = Plan.builtin "crash-storm" in
  let failing_seed =
    let rec scan seed =
      if seed > 10 then
        Alcotest.fail "unsafe variant escaped 10 seeds of crash-storm"
      else if Harness.failed (Harness.run ~unsafe_skip_order:true ~seed plan)
      then seed
      else scan (seed + 1)
    in
    scan 1
  in
  let check p =
    Harness.failed (Harness.run ~unsafe_skip_order:true ~seed:failing_seed p)
  in
  let minimal = Chaos.Shrink.shrink ~check plan in
  Alcotest.(check bool) "shrunk plan still fails unsafe" true (check minimal);
  Alcotest.(check bool) "shrinking removed events" true
    (List.length minimal.Plan.events < List.length plan.Plan.events);
  Alcotest.(check bool) "horizon trimmed" true
    (minimal.Plan.horizon <= plan.Plan.horizon);
  (* The same reproducer is clean under the real protocol: the failure
     is the order-phase elision, not the fault schedule. *)
  let safe = Harness.run ~seed:failing_seed minimal in
  if Harness.failed safe then
    Alcotest.failf "safe protocol fails the shrunk plan: %a"
      Harness.pp_result safe

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "builtin round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "parse" `Quick test_plan_parse;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "slow round-trip" `Quick test_plan_slow_roundtrip;
          Alcotest.test_case "random plans well-formed" `Quick
            test_plan_random_wellformed;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "quorum loss fails fast" `Quick
            test_quorum_loss_fail_fast;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "scrub under fire" `Slow test_scrub_under_fire;
        ] );
      ( "nemesis",
        [
          Alcotest.test_case "restore heals links and skew" `Quick
            test_nemesis_restore;
        ] );
      ( "mc",
        [
          Alcotest.test_case "sim-only faults rejected by name" `Quick
            test_mc_rejects_sim_only_faults;
          Alcotest.test_case "restore cancels pending timers" `Quick
            test_mc_restore_cancels_pending;
          Alcotest.test_case "faults bite and heal (faultnet counters)"
            `Quick test_mc_faults_bite_and_heal;
          Alcotest.test_case "harness smoke under real parallelism" `Slow
            test_mc_harness_smoke;
        ] );
      ( "harness",
        [
          Alcotest.test_case "trace determinism" `Slow test_trace_determinism;
          Alcotest.test_case "bundled plans clean" `Slow
            test_bundled_plans_clean;
          Alcotest.test_case "unsafe variant caught and shrunk" `Slow
            test_unsafe_variant_caught_and_shrunk;
        ] );
    ]
