(* Conformance tests for the Runtime abstraction (DESIGN 4g): the same
   suite runs on both backends — the deterministic simulator
   (Runtime_sim) and the OCaml 5 multicore pool (Runtime_mc) — pinning
   down the contract protocol code relies on: FIFO-per-sender
   mailboxes, monotone clocks, timer ordering and cancellation, sleep
   ordering, and the scatter-gather join. Plus a multicore soak: four
   domains hammer one erasure-coded register and the recorded history
   must be strictly linearizable (lib/linearize). *)

(* Each test gets a fresh backend: [rt] to program against, [go] to
   run a root task to quiescence, [teardown] to release resources.
   Real-time gaps below are generous (tens of ms apart) so the mc
   backend's timer-thread granularity cannot flake the suite. *)
type harness = {
  rt : Runtime.t;
  go : (unit -> unit) -> unit;
  teardown : unit -> unit;
}

let sim_harness () =
  let e = Dessim.Engine.create ~seed:7 () in
  let rt = Runtime_sim.of_engine e in
  {
    rt;
    go =
      (fun f ->
        Runtime.spawn rt f;
        Dessim.Engine.run e);
    teardown = ignore;
  }

let mc_harness () =
  let pool = Runtime_mc.create ~domains:2 () in
  let rt = Runtime_mc.runtime pool in
  {
    rt;
    go =
      (fun f ->
        Runtime.spawn rt f;
        Runtime_mc.await_idle pool);
    teardown = (fun () -> Runtime_mc.shutdown pool);
  }

let with_harness make f =
  let h = make () in
  Fun.protect ~finally:h.teardown (fun () -> f h)

(* Test-side accumulator, safe from any domain (uncontended on sim). *)
let locked_list () =
  let lk = Mutex.create () in
  let items = ref [] in
  let push x =
    Mutex.lock lk;
    items := x :: !items;
    Mutex.unlock lk
  in
  let contents () =
    Mutex.lock lk;
    let l = List.rev !items in
    Mutex.unlock lk;
    l
  in
  (push, contents)

(* ------------------------------------------------------------------ *)
(* Conformance: the same tests run on both backends                    *)
(* ------------------------------------------------------------------ *)

let test_mailbox_fifo_per_sender make () =
  (* Three senders interleave 20 sends each (staggered sleeps force
     interleaving on the sim backend too); the per-sender sequence
     numbers must arrive in order even though the global order is
     arbitrary. *)
  with_harness make (fun h ->
      let senders = 3 and per_sender = 20 in
      let box = Runtime.Mailbox.create h.rt in
      let got = Array.make senders (-1) in
      let violations = ref 0 in
      h.go (fun () ->
          for s = 0 to senders - 1 do
            Runtime.spawn h.rt (fun () ->
                for i = 0 to per_sender - 1 do
                  Runtime.Mailbox.send box (s, i);
                  Runtime.sleep h.rt (0.001 *. float_of_int (1 + s))
                done)
          done;
          for _ = 1 to senders * per_sender do
            match Runtime.Mailbox.recv box with
            | None -> Alcotest.fail "mailbox closed early"
            | Some (s, i) ->
                if i <> got.(s) + 1 then incr violations;
                got.(s) <- i
          done);
      Alcotest.(check int) "per-sender FIFO violations" 0 !violations;
      Array.iteri
        (fun s last ->
          Alcotest.(check int)
            (Printf.sprintf "sender %d drained" s)
            (per_sender - 1) last)
        got;
      Alcotest.(check int) "mailbox empty" 0 (Runtime.Mailbox.length box))

let test_now_monotone_and_timer_order make () =
  (* now() never goes backwards; timers fire no earlier than their
     delay and in delay order (delays 40 ms apart so the mc timer
     thread cannot reorder them). *)
  with_harness make (fun h ->
      let push, contents = locked_list () in
      let t0 = Runtime.now h.rt in
      h.go (fun () ->
          List.iter
            (fun d ->
              ignore
                (Runtime.timer h.rt ~delay:d (fun () ->
                     push (d, Runtime.now h.rt))))
            [ 0.09; 0.01; 0.13; 0.05 ];
          Runtime.sleep h.rt 0.3);
      let fired = contents () in
      Alcotest.(check int) "all timers fired" 4 (List.length fired);
      List.iter
        (fun (d, at) ->
          if at -. t0 < d -. 1e-9 then
            Alcotest.failf "timer %.2f fired %.4fs early" d (d -. (at -. t0)))
        fired;
      Alcotest.(check (list (float 1e-9)))
        "fired in delay order" [ 0.01; 0.05; 0.09; 0.13 ] (List.map fst fired);
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "now non-decreasing" true (monotone fired))

let test_timer_cancellation make () =
  with_harness make (fun h ->
      let fired = ref false in
      h.go (fun () ->
          let t = Runtime.timer h.rt ~delay:0.02 (fun () -> fired := true) in
          Runtime.cancel t;
          Runtime.sleep h.rt 0.1;
          (* Cancelling an already-fired timer is a no-op. *)
          let u = Runtime.timer h.rt ~delay:0.01 (fun () -> ()) in
          Runtime.sleep h.rt 0.05;
          Runtime.cancel u);
      Alcotest.(check bool) "cancelled timer never fired" false !fired)

let test_gate_abort_cancels_waiter make () =
  with_harness make (fun h ->
      let outcome = ref `Pending in
      h.go (fun () ->
          let g = h.rt.Runtime.gate () in
          ignore
            (Runtime.timer h.rt ~delay:0.02 (fun () -> g.Runtime.abort ()));
          Runtime.spawn h.rt (fun () ->
              match g.Runtime.await () with
              | () -> outcome := `Opened
              | exception Runtime.Cancelled -> outcome := `Cancelled);
          Runtime.sleep h.rt 0.1);
      Alcotest.(check bool) "waiter saw Cancelled" true (!outcome = `Cancelled))

let test_ivar_fill_and_abort make () =
  with_harness make (fun h ->
      let got = ref 0 and aborted = ref false in
      h.go (fun () ->
          let iv = Runtime.Ivar.create h.rt in
          ignore
            (Runtime.timer h.rt ~delay:0.01 (fun () -> Runtime.Ivar.fill iv 42));
          got := Runtime.Ivar.await iv;
          let dead = Runtime.Ivar.create h.rt in
          ignore
            (Runtime.timer h.rt ~delay:0.01 (fun () -> Runtime.Ivar.abort dead));
          (try ignore (Runtime.Ivar.await dead : int)
           with Runtime.Cancelled -> aborted := true));
      Alcotest.(check int) "filled value" 42 !got;
      Alcotest.(check bool) "abort raises Cancelled" true !aborted)

let test_mailbox_timeout_and_close make () =
  with_harness make (fun h ->
      let timed_out = ref false and woke_none = ref false in
      h.go (fun () ->
          let box = Runtime.Mailbox.create h.rt in
          (match Runtime.Mailbox.recv ~timeout:0.02 box with
          | None -> timed_out := true
          | Some () -> ());
          let box2 = Runtime.Mailbox.create h.rt in
          Runtime.spawn h.rt (fun () ->
              match Runtime.Mailbox.recv box2 with
              | None -> woke_none := true
              | Some () -> ());
          Runtime.sleep h.rt 0.02;
          Runtime.Mailbox.close box2;
          Runtime.sleep h.rt 0.02;
          Alcotest.(check bool) "closed" true (Runtime.Mailbox.is_closed box2);
          (* Sends to a closed mailbox are dropped. *)
          Runtime.Mailbox.send box2 ();
          Alcotest.(check int) "drop on closed" 0 (Runtime.Mailbox.length box2));
      Alcotest.(check bool) "empty recv times out" true !timed_out;
      Alcotest.(check bool) "close wakes receiver with None" true !woke_none)

let test_sleep_ordering make () =
  with_harness make (fun h ->
      let push, contents = locked_list () in
      h.go (fun () ->
          List.iter
            (fun d ->
              Runtime.spawn h.rt (fun () ->
                  Runtime.sleep h.rt d;
                  push d))
            [ 0.13; 0.01; 0.09; 0.05 ]);
      Alcotest.(check (list (float 1e-9)))
        "woken in delay order" [ 0.01; 0.05; 0.09; 0.13 ] (contents ()))

let test_all_join make () =
  with_harness make (fun h ->
      let results = ref [] in
      h.go (fun () ->
          (* Results come back in input order even when later thunks
             finish first. *)
          results :=
            Runtime.all h.rt ~window:2
              (List.map
                 (fun (d, v) () ->
                   Runtime.sleep h.rt d;
                   v)
                 [ (0.05, "a"); (0.01, "b"); (0.03, "c"); (0.0, "d") ]));
      Alcotest.(check (list string))
        "input order" [ "a"; "b"; "c"; "d" ] !results)

let test_all_rejects_bad_window make () =
  with_harness make (fun h ->
      let raised = ref false in
      h.go (fun () ->
          try ignore (Runtime.all h.rt ~window:0 [ (fun () -> ()) ])
          with Invalid_argument _ -> raised := true);
      Alcotest.(check bool) "window < 1 rejected" true !raised)

let test_mailbox_fifo_fuzz make () =
  (* Heavier FIFO-per-sender fuzz than the smoke test above: four
     senders, hundreds of messages, random yields instead of sleeps so
     the interleaving is scheduler-driven on mc and trace-driven on
     sim. Exercises the per-sender segments of the batched mailbox
     under genuinely mixed arrival orders. *)
  with_harness make (fun h ->
      let senders = 4 and per_sender = 400 in
      let box = Runtime.Mailbox.create h.rt in
      let got = Array.make senders (-1) in
      let violations = ref 0 in
      h.go (fun () ->
          for s = 0 to senders - 1 do
            let rng = Random.State.make [| 97; s |] in
            Runtime.spawn h.rt (fun () ->
                for i = 0 to per_sender - 1 do
                  Runtime.Mailbox.send box (s, i);
                  if Random.State.int rng 4 = 0 then Runtime.yield h.rt
                done)
          done;
          for _ = 1 to senders * per_sender do
            match Runtime.Mailbox.recv box with
            | None -> Alcotest.fail "mailbox closed early"
            | Some (s, i) ->
                if i <> got.(s) + 1 then incr violations;
                got.(s) <- i
          done);
      Alcotest.(check int) "fuzz FIFO violations" 0 !violations;
      Array.iteri
        (fun s last ->
          Alcotest.(check int)
            (Printf.sprintf "sender %d drained" s)
            (per_sender - 1) last)
        got)

let test_mailbox_timeout_mid_stream make () =
  (* Timeout timers racing live traffic: the producer delivers at
     30 ms intervals while the consumer polls with a 10 ms timeout, so
     most recvs arm a timer that fires mid-stream and the rest must
     claim the waiter back before the message lands. No message may be
     lost or reordered whichever side of the race wins. *)
  with_harness make (fun h ->
      let n = 8 in
      let box = Runtime.Mailbox.create h.rt in
      let timeouts = ref 0 and got = ref [] in
      h.go (fun () ->
          Runtime.spawn h.rt (fun () ->
              for i = 1 to n do
                Runtime.sleep h.rt 0.03;
                Runtime.Mailbox.send box i
              done);
          let rec loop () =
            if List.length !got < n then begin
              (match Runtime.Mailbox.recv ~timeout:0.01 box with
              | Some v -> got := v :: !got
              | None -> incr timeouts);
              loop ()
            end
          in
          loop ());
      Alcotest.(check (list int))
        "all delivered in order"
        (List.init n (fun i -> n - i))
        !got;
      Alcotest.(check bool) "timeouts fired mid-stream" true (!timeouts >= 1))

let test_mailbox_crash_reopen make () =
  (* Lost-wakeup regression for the Cluster crash/recover pattern
     (DESIGN 4i): brick crash closes the mailbox out from under a
     receive loop that may be parked on it empty — close must wake the
     parked receiver with None, never leave it asleep forever — and
     recovery swaps a fresh mailbox into the shared slot and restarts
     the loop while senders keep flooding through that slot across the
     whole swap. Sends that lose the race land on the closed box and
     are dropped; sends that win land on the replacement and must be
     delivered. *)
  with_harness make (fun h ->
      let box = ref (Runtime.Mailbox.create h.rt) in
      let gen1_end = ref `Asleep and gen2_end = ref `Asleep in
      let gen2_got = ref 0 in
      h.go (fun () ->
          (* Generation 1: the receive loop drains whatever arrives,
             then parks on the empty box. *)
          let b1 = !box in
          Runtime.spawn h.rt (fun () ->
              let rec loop () =
                match Runtime.Mailbox.recv b1 with
                | Some _ -> loop ()
                | None -> gen1_end := `Woke_none
              in
              loop ());
          (* A burst that lands before the crash... *)
          for s = 0 to 1 do
            Runtime.spawn h.rt (fun () ->
                for i = 0 to 99 do
                  Runtime.Mailbox.send !box (s, i);
                  if i mod 16 = 0 then Runtime.yield h.rt
                done)
          done;
          (* ...and a slow flood that straddles crash and recovery,
             always sending through the shared slot. *)
          Runtime.spawn h.rt (fun () ->
              for i = 0 to 19 do
                Runtime.Mailbox.send !box (2, i);
                Runtime.sleep h.rt 0.005
              done);
          (* Let the receiver drain the burst and park empty. *)
          Runtime.sleep h.rt 0.04;
          (* Crash: close the box under the parked receiver. *)
          Runtime.Mailbox.close !box;
          Runtime.sleep h.rt 0.02;
          (* Recover: fresh mailbox in the slot, restarted loop. *)
          box := Runtime.Mailbox.create h.rt;
          let b2 = !box in
          Runtime.spawn h.rt (fun () ->
              let rec loop () =
                match Runtime.Mailbox.recv b2 with
                | Some _ ->
                    incr gen2_got;
                    loop ()
                | None -> gen2_end := `Woke_none
              in
              loop ());
          (* Post-recovery traffic must flow. *)
          for i = 0 to 49 do
            Runtime.Mailbox.send !box (9, i)
          done;
          (* Outlive the straddling flood, then shut generation 2
             down cleanly — its parked receiver must wake too. *)
          Runtime.sleep h.rt 0.12;
          Runtime.Mailbox.close !box);
      Alcotest.(check bool) "crash woke the parked receiver with None" true
        (!gen1_end = `Woke_none);
      Alcotest.(check bool) "reopened receiver woken with None" true
        (!gen2_end = `Woke_none);
      Alcotest.(check bool)
        (Printf.sprintf "reopened mailbox delivered (%d >= 50)" !gen2_got)
        true (!gen2_got >= 50))

(* ------------------------------------------------------------------ *)
(* mc-specific races: real domains only                                *)
(* ------------------------------------------------------------------ *)

let test_mc_mailbox_close_race () =
  (* Three sender domains spam sends while a fourth task closes the
     mailbox mid-stream. The receiver must terminate with None (close
     drains stragglers, then reports closure), per-sender FIFO must
     hold for everything that did arrive, and sends that lose the race
     with close are dropped, never crashed on. *)
  let pool = Runtime_mc.create ~domains:4 () in
  Fun.protect ~finally:(fun () -> Runtime_mc.shutdown pool) @@ fun () ->
  let rt = Runtime_mc.runtime pool in
  let senders = 3 and iters = 20_000 in
  let box = Runtime.Mailbox.create rt in
  let got = Array.make senders (-1) in
  let violations = ref 0 and received = ref 0 and finished = ref false in
  Runtime.spawn rt (fun () ->
      let rec loop () =
        match Runtime.Mailbox.recv box with
        | Some (s, i) ->
            incr received;
            if i <> got.(s) + 1 then incr violations;
            got.(s) <- i;
            loop ()
        | None -> finished := true
      in
      loop ());
  for s = 0 to senders - 1 do
    Runtime.spawn rt (fun () ->
        for i = 0 to iters - 1 do
          Runtime.Mailbox.send box (s, i)
        done)
  done;
  Runtime.spawn rt (fun () ->
      Runtime.sleep rt 0.005;
      Runtime.Mailbox.close box);
  Runtime_mc.await_idle pool;
  Alcotest.(check bool) "receiver saw None" true !finished;
  Alcotest.(check int) "per-sender FIFO violations" 0 !violations;
  Alcotest.(check bool) "received bounded by sent" true
    (!received <= senders * iters);
  Runtime.Mailbox.send box (0, 0);
  Alcotest.(check int) "send after close dropped" 0 (Runtime.Mailbox.length box)

let test_mc_spawn_cursor_wrap () =
  (* With three workers, the pre-fix cursor arithmetic turned the wrap
     past max_int into a negative array index (fetch_and_add returns
     min_int at the wrap, and min_int mod 3 = -1): pin the cursor just
     below the wrap and spawn enough tasks to cross it. *)
  let pool = Runtime_mc.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Runtime_mc.shutdown pool) @@ fun () ->
  let rt = Runtime_mc.runtime pool in
  Runtime_mc.set_spawn_cursor pool (max_int - 2);
  let ran = Atomic.make 0 in
  for _ = 1 to 64 do
    Runtime.spawn rt (fun () -> Atomic.incr ran)
  done;
  Runtime_mc.await_idle pool;
  Alcotest.(check int) "all tasks ran across the wrap" 64 (Atomic.get ran)

(* ------------------------------------------------------------------ *)
(* Multicore soak: 4 domains, one register, strict linearizability     *)
(* ------------------------------------------------------------------ *)

let test_mc_soak_linearizable () =
  (* Four clients on four domains hammer the same logical block of a
     2-of-4 volume; every operation is recorded in a Linearize history
     (timestamps taken under the history lock so invocation/return
     order is consistent) and the result must admit a conforming total
     order. Aborted writes are expected under this contention and are
     fine — the checker constrains them only if their value is
     observed.

     op_retries is pinned to 1 so one recorded operation is one
     protocol-level write. The volume-layer retry loop re-submits an
     aborted write's value as a fresh protocol write at a new
     timestamp; if a concurrent reader's recovery already rolled the
     first attempt forward, the value becomes visible, is superseded
     by other writers, then resurfaces when the retry commits — two
     visibility windows for one recorded op, which the unique-value
     strict checker rightly rejects. The paper's guarantee (and this
     soak) covers single protocol operations; driver-style retries
     deliberately trade that for at-least-once block semantics. *)
  let m = 2 and n = 4 and clients = 4 and ops = 25 in
  let block_size = 512 in
  let cluster =
    Core.Cluster.create_mc ~domains:4 ~bricks:n
      ~layout:(Fab.Layout.make Fab.Layout.Fixed ~bricks:n ~n)
      ~block_size ~m ~n ()
  in
  let volume =
    Fab.Volume.of_cluster ~cluster ~m ~stripes:1 ~block_size ~op_retries:1
      ~stripe_offset:0 ()
  in
  let rt = cluster.Core.Cluster.runtime in
  let hist = Linearize.History.create () in
  let hlock = Mutex.create () in
  let record f =
    Mutex.lock hlock;
    let r = f (Runtime.now rt) in
    Mutex.unlock hlock;
    r
  in
  let value_of_block b =
    if Bytes.for_all (fun c -> c = '\000') b then Linearize.History.nil
    else Bytes.to_string b
  in
  let payload c i =
    let b = Bytes.make block_size '\000' in
    let stamp = Printf.sprintf "%d:%d" c i in
    Bytes.blit_string stamp 0 b 0 (String.length stamp);
    b
  in
  for c = 0 to clients - 1 do
    Runtime.spawn rt (fun () ->
        let rng = Random.State.make [| 11; c |] in
        for i = 0 to ops - 1 do
          if Random.State.bool rng then begin
            let data = payload c i in
            let id =
              record (fun now ->
                  Linearize.History.invoke hist ~client:c ~kind:Write
                    ~written:(value_of_block data) ~now ())
            in
            match Fab.Volume.write volume ~coord:c ~lba:0 data with
            | Ok () ->
                record (fun now -> Linearize.History.complete_write hist id ~now)
            | Error (`Aborted | `Unavailable) ->
                record (fun now -> Linearize.History.abort hist id ~now)
          end
          else begin
            let id =
              record (fun now ->
                  Linearize.History.invoke hist ~client:c ~kind:Read ~now ())
            in
            match Fab.Volume.read volume ~coord:c ~lba:0 ~count:1 with
            | Ok b ->
                record (fun now ->
                    Linearize.History.complete_read hist id
                      ~value:(value_of_block b) ~now)
            | Error (`Aborted | `Unavailable) ->
                record (fun now -> Linearize.History.abort hist id ~now)
          end
        done)
  done;
  Core.Cluster.await_quiesce cluster;
  Core.Cluster.shutdown cluster;
  Alcotest.(check int)
    "all ops returned" (clients * ops)
    (Linearize.History.size hist - Linearize.History.pending_count hist);
  match Linearize.Check.strict hist with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "soak history not strictly linearizable: %s"
        (Format.asprintf "%a" Linearize.Check.pp_violation v)

(* ------------------------------------------------------------------ *)

let conformance name make =
  ( "conformance:" ^ name,
    [
      Alcotest.test_case "mailbox FIFO per sender" `Quick
        (test_mailbox_fifo_per_sender make);
      Alcotest.test_case "now monotone, timers fire in order" `Quick
        (test_now_monotone_and_timer_order make);
      Alcotest.test_case "timer cancellation" `Quick
        (test_timer_cancellation make);
      Alcotest.test_case "gate abort cancels waiter" `Quick
        (test_gate_abort_cancels_waiter make);
      Alcotest.test_case "ivar fill / abort" `Quick
        (test_ivar_fill_and_abort make);
      Alcotest.test_case "mailbox timeout / close" `Quick
        (test_mailbox_timeout_and_close make);
      Alcotest.test_case "sleep ordering" `Quick (test_sleep_ordering make);
      Alcotest.test_case "all: join in input order" `Quick (test_all_join make);
      Alcotest.test_case "all: window < 1 rejected" `Quick
        (test_all_rejects_bad_window make);
      Alcotest.test_case "mailbox FIFO fuzz" `Quick
        (test_mailbox_fifo_fuzz make);
      Alcotest.test_case "mailbox timeout racing live traffic" `Quick
        (test_mailbox_timeout_mid_stream make);
      Alcotest.test_case "mailbox close + crash-reopen, parked receiver"
        `Quick
        (test_mailbox_crash_reopen make);
    ] )

let () =
  Alcotest.run "runtime"
    [
      conformance "sim" sim_harness;
      conformance "mc" mc_harness;
      ( "mc races",
        [
          Alcotest.test_case "mailbox close races concurrent senders" `Quick
            test_mc_mailbox_close_race;
          Alcotest.test_case "spawn cursor wraps past max_int" `Quick
            test_mc_spawn_cursor_wrap;
        ] );
      ( "multicore soak",
        [
          Alcotest.test_case "4-domain register history linearizable" `Quick
            test_mc_soak_linearizable;
        ] );
    ]
