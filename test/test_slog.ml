(* Tests for the persistent version log (paper section 4.2, 5.1). *)

module Ts = Core.Timestamp
module Slog = Core.Slog

let bs = 16
let ts t = Ts.make ~time:t ~pid:0
let blk c = Bytes.make bs c

let test_initial_state () =
  let l = Slog.create ~block_size:bs in
  Alcotest.(check int) "one entry" 1 (Slog.size l);
  Alcotest.(check bool) "max_ts is Low" true (Ts.equal (Slog.max_ts l) Ts.low);
  let mts, mb = Slog.max_block l in
  Alcotest.(check bool) "nil at Low" true (Ts.equal mts Ts.low);
  Alcotest.(check bool) "nil is zeroes" true
    (Bytes.for_all (fun c -> c = '\000') mb);
  Alcotest.(check int) "block size" bs (Slog.block_size l)

let test_add_and_queries () =
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 5) (Some (blk 'a'));
  Slog.add l (ts 9) (Some (blk 'b'));
  Slog.add l (ts 7) None;
  Alcotest.(check int) "4 entries" 4 (Slog.size l);
  Alcotest.(check bool) "max_ts = 9" true (Ts.equal (Slog.max_ts l) (ts 9));
  let mts, mb = Slog.max_block l in
  Alcotest.(check bool) "max_block at 9" true (Ts.equal mts (ts 9));
  Alcotest.(check bool) "content b" true (Bytes.equal mb (blk 'b'));
  Alcotest.(check bool) "mem 7" true (Slog.mem l (ts 7));
  Alcotest.(check bool) "not mem 8" false (Slog.mem l (ts 8));
  (match Slog.find l (ts 7) with
  | Some None -> ()
  | _ -> Alcotest.fail "find marker");
  match Slog.find l (ts 5) with
  | Some (Some b) -> Alcotest.(check bool) "find block" true (Bytes.equal b (blk 'a'))
  | _ -> Alcotest.fail "find 5"

let test_marker_as_newest () =
  (* A bot marker newer than every real block: max_ts counts it,
     max_block skips it. *)
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 5) (Some (blk 'a'));
  Slog.add l (ts 8) None;
  Alcotest.(check bool) "max_ts sees marker" true (Ts.equal (Slog.max_ts l) (ts 8));
  let mts, mb = Slog.max_block l in
  Alcotest.(check bool) "max_block at 5" true (Ts.equal mts (ts 5));
  Alcotest.(check bool) "content a" true (Bytes.equal mb (blk 'a'))

let test_max_below_plain () =
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 5) (Some (blk 'a'));
  Slog.add l (ts 9) (Some (blk 'b'));
  (match Slog.max_below l Ts.high with
  | Some (lts, Some b) ->
      Alcotest.(check bool) "newest below High" true (Ts.equal lts (ts 9));
      Alcotest.(check bool) "content" true (Bytes.equal b (blk 'b'))
  | _ -> Alcotest.fail "below high");
  (match Slog.max_below l (ts 9) with
  | Some (lts, Some b) ->
      Alcotest.(check bool) "strictly below" true (Ts.equal lts (ts 5));
      Alcotest.(check bool) "content a" true (Bytes.equal b (blk 'a'))
  | _ -> Alcotest.fail "below 9");
  match Slog.max_below l Ts.low with
  | None -> ()
  | Some _ -> Alcotest.fail "nothing below Low"

let test_max_below_marker_semantics () =
  (* The version a marker names is the marker's timestamp with the
     newest real content below it (see slog.mli and DESIGN.md). *)
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 5) (Some (blk 'a'));
  Slog.add l (ts 8) None;
  (match Slog.max_below l Ts.high with
  | Some (lts, Some b) ->
      Alcotest.(check bool) "marker ts reported" true (Ts.equal lts (ts 8));
      Alcotest.(check bool) "older real content" true (Bytes.equal b (blk 'a'))
  | _ -> Alcotest.fail "marker-aware reply");
  (* Below the marker: the real entry itself. *)
  match Slog.max_below l (ts 8) with
  | Some (lts, Some b) ->
      Alcotest.(check bool) "real entry" true (Ts.equal lts (ts 5));
      Alcotest.(check bool) "content" true (Bytes.equal b (blk 'a'))
  | _ -> Alcotest.fail "below marker"

let test_add_idempotent () =
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 5) (Some (blk 'a'));
  Slog.add l (ts 5) (Some (blk 'z'));  (* ignored: set semantics *)
  Alcotest.(check int) "no duplicate" 2 (Slog.size l);
  match Slog.find l (ts 5) with
  | Some (Some b) -> Alcotest.(check bool) "first write wins" true (Bytes.equal b (blk 'a'))
  | _ -> Alcotest.fail "entry"

let test_add_validation () =
  let l = Slog.create ~block_size:bs in
  Alcotest.check_raises "sentinel"
    (Invalid_argument "Core.Slog.add: sentinel timestamp") (fun () ->
      Slog.add l Ts.low (Some (blk 'a')));
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Core.Slog.add: wrong block size") (fun () ->
      Slog.add l (ts 1) (Some (Bytes.create 3)));
  Alcotest.check_raises "create size"
    (Invalid_argument "Core.Slog.create: block_size <= 0") (fun () ->
      ignore (Slog.create ~block_size:0))

let test_gc_drops_old () =
  let l = Slog.create ~block_size:bs in
  for i = 1 to 10 do
    Slog.add l (ts i) (Some (blk (Char.chr (96 + i))))
  done;
  let removed = Slog.gc l ~before:(ts 8) in
  (* entries 1..7 and the initial Low entry go; 8, 9, 10 stay *)
  Alcotest.(check int) "removed" 8 removed;
  Alcotest.(check int) "kept" 3 (Slog.size l);
  Alcotest.(check bool) "max_ts intact" true (Ts.equal (Slog.max_ts l) (ts 10));
  Alcotest.(check bool) "8 kept" true (Slog.mem l (ts 8));
  Alcotest.(check bool) "7 gone" false (Slog.mem l (ts 7))

let test_gc_preserves_newest_even_if_old () =
  (* gc with a threshold above everything must keep the newest entry
     and the newest real block so max_ts / max_block stay defined. *)
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 3) (Some (blk 'a'));
  Slog.add l (ts 6) None;  (* newest entry is a marker *)
  let removed = Slog.gc l ~before:(ts 100) in
  Alcotest.(check int) "only Low dropped" 1 removed;
  Alcotest.(check bool) "marker kept" true (Slog.mem l (ts 6));
  Alcotest.(check bool) "real block kept" true (Slog.mem l (ts 3));
  let _, mb = Slog.max_block l in
  Alcotest.(check bool) "max_block defined" true (Bytes.equal mb (blk 'a'))

let test_gc_idempotent () =
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 1) (Some (blk 'a'));
  Slog.add l (ts 2) (Some (blk 'b'));
  ignore (Slog.gc l ~before:(ts 2));
  let again = Slog.gc l ~before:(ts 2) in
  Alcotest.(check int) "second gc removes nothing" 0 again

let test_entries_newest_first () =
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 2) (Some (blk 'a'));
  Slog.add l (ts 5) None;
  match Slog.entries l with
  | (t1, None) :: (t2, Some _) :: (t3, Some _) :: [] ->
      Alcotest.(check bool) "5 first" true (Ts.equal t1 (ts 5));
      Alcotest.(check bool) "then 2" true (Ts.equal t2 (ts 2));
      Alcotest.(check bool) "then Low" true (Ts.equal t3 Ts.low)
  | _ -> Alcotest.fail "unexpected shape"

let test_tear_last () =
  let l = Slog.create ~block_size:bs in
  Alcotest.(check bool) "nothing to tear" true (Slog.tear_last l = None);
  Slog.add l (ts 5) (Some (blk 'a'));
  (match Slog.tear_last l with
  | Some t -> Alcotest.(check bool) "tears 5" true (Ts.equal t (ts 5))
  | None -> Alcotest.fail "expected a tear");
  Alcotest.(check bool) "reads as absent" false (Slog.mem l (ts 5));
  Alcotest.(check int) "one checksum error" 1 (Slog.checksum_errors l);
  Alcotest.(check bool) "each write torn at most once" true
    (Slog.tear_last l = None);
  (* Recovery rewrites the damaged entry in place. *)
  Slog.add l (ts 5) (Some (blk 'a'));
  Alcotest.(check bool) "repaired" true (Slog.mem l (ts 5))

let test_tear_skips_deduped_add () =
  (* Regression: a retransmitted add deduped by set semantics touches
     no media, so a crash racing it must not tear the long-durable
     entry it happened to name — only the last physical write. *)
  let l = Slog.create ~block_size:bs in
  Slog.add l (ts 5) (Some (blk 'a'));
  Slog.add l (ts 9) (Some (blk 'b'));
  Slog.add l (ts 5) (Some (blk 'a'));  (* deduped retransmission *)
  (match Slog.tear_last l with
  | Some t ->
      Alcotest.(check bool) "tears the last physical write" true
        (Ts.equal t (ts 9))
  | None -> Alcotest.fail "expected a tear");
  Alcotest.(check bool) "durable entry untouched" true (Slog.mem l (ts 5));
  (* With 9 already torn, another deduped add leaves nothing tearable. *)
  Slog.add l (ts 5) (Some (blk 'a'));
  Alcotest.(check bool) "no-op add is not tearable" true
    (Slog.tear_last l = None)

let qtest name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name gen f)

(* Random logs: lists of (time, has-block). *)
let log_gen =
  QCheck.list_of_size (QCheck.Gen.int_range 0 20)
    (QCheck.pair (QCheck.int_range 1 30) QCheck.bool)

let build entries =
  let l = Slog.create ~block_size:bs in
  List.iter
    (fun (t, real) ->
      Slog.add l (ts t) (if real then Some (blk 'x') else None))
    entries;
  l

let slog_props =
  [
    qtest "max_ts is the maximum" log_gen (fun entries ->
        let l = build entries in
        let expect =
          List.fold_left (fun acc (t, _) -> Ts.max acc (ts t)) Ts.low entries
        in
        Ts.equal (Slog.max_ts l) expect);
    qtest "gc never changes max_ts or max_block" log_gen (fun entries ->
        let l = build entries in
        let mts = Slog.max_ts l and mb = Slog.max_block l in
        ignore (Slog.gc l ~before:(ts 15));
        Ts.equal (Slog.max_ts l) mts
        && Ts.equal (fst (Slog.max_block l)) (fst mb)
        && Bytes.equal (snd (Slog.max_block l)) (snd mb));
    qtest "max_below bound respected" (QCheck.pair log_gen (QCheck.int_range 1 30))
      (fun (entries, bound) ->
        let l = build entries in
        match Slog.max_below l (ts bound) with
        | None -> true
        | Some (lts, _) -> Ts.( < ) lts (ts bound));
  ]

let () =
  Alcotest.run "slog"
    [
      ( "queries",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "add and queries" `Quick test_add_and_queries;
          Alcotest.test_case "marker as newest" `Quick test_marker_as_newest;
          Alcotest.test_case "max_below plain" `Quick test_max_below_plain;
          Alcotest.test_case "max_below marker semantics" `Quick
            test_max_below_marker_semantics;
          Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
          Alcotest.test_case "validation" `Quick test_add_validation;
          Alcotest.test_case "entries newest first" `Quick test_entries_newest_first;
        ] );
      ( "gc",
        [
          Alcotest.test_case "drops old entries" `Quick test_gc_drops_old;
          Alcotest.test_case "preserves newest" `Quick
            test_gc_preserves_newest_even_if_old;
          Alcotest.test_case "idempotent" `Quick test_gc_idempotent;
        ] );
      ( "tear",
        [
          Alcotest.test_case "tear_last" `Quick test_tear_last;
          Alcotest.test_case "deduped add not tearable" `Quick
            test_tear_skips_deduped_add;
        ] );
      ("properties", slog_props);
    ]
