(* Tests for counters, snapshots and summaries. *)

let test_counter () =
  let c = Metrics.Counter.create () in
  Alcotest.(check (float 0.0)) "zero" 0. (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:2.5 c;
  Alcotest.(check (float 0.0)) "accumulated" 3.5 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check (float 0.0)) "reset" 0. (Metrics.Counter.value c)

let test_registry_identity () =
  let r = Metrics.Registry.create () in
  let a = Metrics.Registry.counter r "x" in
  let b = Metrics.Registry.counter r "x" in
  Metrics.Counter.incr a;
  Alcotest.(check (float 0.0)) "same counter" 1. (Metrics.Counter.value b);
  Alcotest.(check (float 0.0)) "by name" 1. (Metrics.Registry.value r "x");
  Alcotest.(check (float 0.0)) "unknown is 0" 0. (Metrics.Registry.value r "y")

let test_registry_names_sorted () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr r "zz";
  Metrics.Registry.incr r "aa";
  Metrics.Registry.incr r "mm";
  Alcotest.(check (list string)) "sorted" [ "aa"; "mm"; "zz" ]
    (Metrics.Registry.names r)

let test_snapshot_diff () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr ~by:5. r "a";
  let before = Metrics.Snapshot.take r in
  Metrics.Registry.incr ~by:3. r "a";
  Metrics.Registry.incr r "b";
  let after = Metrics.Snapshot.take r in
  Alcotest.(check (list (pair string (float 0.0))))
    "diff" [ ("a", 3.); ("b", 1.) ]
    (Metrics.Snapshot.diff ~before ~after);
  Alcotest.(check (float 0.0)) "get" 5. (Metrics.Snapshot.get before "a")

let test_summary_stats () =
  let s = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Metrics.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Metrics.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Metrics.Summary.stddev s);
  Alcotest.(check (float 0.0)) "min" 2. (Metrics.Summary.min s);
  Alcotest.(check (float 0.0)) "max" 9. (Metrics.Summary.max s);
  Alcotest.(check (float 0.0)) "median" 4. (Metrics.Summary.percentile s 50.);
  Alcotest.(check (float 0.0)) "p100" 9. (Metrics.Summary.percentile s 100.)

let test_summary_percentile_edges () =
  let s = Metrics.Summary.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Metrics.Summary.percentile: empty") (fun () ->
      ignore (Metrics.Summary.percentile s 50.));
  Metrics.Summary.add s 1.;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Metrics.Summary.percentile: p out of [0,100]")
    (fun () -> ignore (Metrics.Summary.percentile s 150.));
  Alcotest.(check (float 0.0)) "single value" 1.
    (Metrics.Summary.percentile s 99.)

let test_summary_incremental_after_percentile () =
  (* The sorted cache must be invalidated by later adds. *)
  let s = Metrics.Summary.create () in
  Metrics.Summary.add s 10.;
  Alcotest.(check (float 0.0)) "first" 10. (Metrics.Summary.percentile s 50.);
  Metrics.Summary.add s 1.;
  Alcotest.(check (float 0.0)) "updated" 1. (Metrics.Summary.percentile s 50.)

let test_summary_merge () =
  let a = Metrics.Summary.create () in
  let b = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add a) [ 1.; 2.; 3. ];
  List.iter (Metrics.Summary.add b) [ 10.; 20. ];
  let m = Metrics.Summary.merge a b in
  Alcotest.(check int) "count" 5 (Metrics.Summary.count m);
  Alcotest.(check (float 1e-9)) "mean" 7.2 (Metrics.Summary.mean m);
  Alcotest.(check (float 0.0)) "min" 1. (Metrics.Summary.min m);
  Alcotest.(check (float 0.0)) "max" 20. (Metrics.Summary.max m);
  Alcotest.(check (float 0.0)) "median" 3. (Metrics.Summary.percentile m 50.);
  (* The pooled variance must match a flat series of the same values. *)
  let flat = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add flat) [ 1.; 2.; 3.; 10.; 20. ];
  Alcotest.(check (float 1e-9)) "pooled stddev" (Metrics.Summary.stddev flat)
    (Metrics.Summary.stddev m);
  (* Inputs are untouched. *)
  Alcotest.(check int) "a untouched" 3 (Metrics.Summary.count a);
  Alcotest.(check int) "b untouched" 2 (Metrics.Summary.count b)

let test_summary_merge_empty () =
  let e = Metrics.Summary.create () in
  let m0 = Metrics.Summary.merge e (Metrics.Summary.create ()) in
  Alcotest.(check int) "empty+empty" 0 (Metrics.Summary.count m0);
  let a = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add a) [ 4.; 6. ];
  let left = Metrics.Summary.merge e a in
  let right = Metrics.Summary.merge a e in
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) (name ^ " count") 2 (Metrics.Summary.count m);
      Alcotest.(check (float 1e-9)) (name ^ " mean") 5. (Metrics.Summary.mean m);
      Alcotest.(check (float 1e-9)) (name ^ " stddev")
        (Metrics.Summary.stddev a) (Metrics.Summary.stddev m);
      Alcotest.(check (float 0.0)) (name ^ " p50") 4.
        (Metrics.Summary.percentile m 50.))
    [ ("empty+a", left); ("a+empty", right) ]

let test_summary_capacity () =
  let s = Metrics.Summary.create ~capacity:8 () in
  for i = 1 to 100 do
    Metrics.Summary.add s (float_of_int i)
  done;
  (* Moment statistics stay exact regardless of the reservoir. *)
  Alcotest.(check int) "count exact" 100 (Metrics.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean exact" 50.5 (Metrics.Summary.mean s);
  Alcotest.(check (float 0.0)) "min exact" 1. (Metrics.Summary.min s);
  Alcotest.(check (float 0.0)) "max exact" 100. (Metrics.Summary.max s);
  (* Percentiles come from the thinned reservoir: approximate, but a
     median over a systematic sample of a uniform ramp stays nearby. *)
  let p50 = Metrics.Summary.percentile s 50. in
  Alcotest.(check bool) "median in bulk" true (p50 > 20. && p50 < 80.);
  Alcotest.check_raises "capacity 1 rejected"
    (Invalid_argument "Metrics.Summary.create: capacity must be 0 or >= 2")
    (fun () -> ignore (Metrics.Summary.create ~capacity:1 ()))

let test_summary_capacity_exact_below () =
  (* While count <= capacity the reservoir is lossless. *)
  let s = Metrics.Summary.create ~capacity:8 () in
  List.iter (Metrics.Summary.add s) [ 5.; 1.; 9.; 3. ];
  Alcotest.(check (float 0.0)) "exact p50" 3. (Metrics.Summary.percentile s 50.)

(* ---- HDR histogram ---- *)

let test_hist_basics () =
  let h = Metrics.Hist.create () in
  Alcotest.(check int) "empty" 0 (Metrics.Hist.count h);
  List.iter (Metrics.Hist.add h) [ 0.; 1.; 2.; 4.; 1000. ];
  Metrics.Hist.add ~count:3 h 2.;
  Alcotest.(check int) "count" 8 (Metrics.Hist.count h);
  Alcotest.(check (float 0.0)) "min" 0. (Metrics.Hist.min h);
  Alcotest.(check (float 0.0)) "max" 1000. (Metrics.Hist.max h);
  (* p0 / p100 clamp to the exact observed extremes. *)
  Alcotest.(check (float 0.0)) "p0" 0. (Metrics.Hist.percentile h 0.);
  Alcotest.(check (float 0.0)) "p100" 1000. (Metrics.Hist.percentile h 100.);
  (* count_above is strictly-above at bucket granularity: a threshold
     sharing the top value's bucket excludes it. *)
  Alcotest.(check int) "above 500" 1 (Metrics.Hist.count_above h 500.);
  Alcotest.(check int) "above 999 (same bucket as 1000)" 0
    (Metrics.Hist.count_above h 999.);
  Alcotest.(check int) "above 1000" 0 (Metrics.Hist.count_above h 1000.);
  Alcotest.check_raises "negative value"
    (Invalid_argument "Metrics.Hist.add: value must be finite and >= 0")
    (fun () -> Metrics.Hist.add h (-1.));
  Alcotest.check_raises "nan"
    (Invalid_argument "Metrics.Hist.add: value must be finite and >= 0")
    (fun () -> Metrics.Hist.add h Float.nan);
  Metrics.Hist.clear h;
  Alcotest.(check int) "cleared" 0 (Metrics.Hist.count h)

let test_hist_merge_precision_mismatch () =
  let a = Metrics.Hist.create ~sub_bits:4 () in
  let b = Metrics.Hist.create ~sub_bits:5 () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Metrics.Hist.merge: sub_bits differ") (fun () ->
      ignore (Metrics.Hist.merge a b))

(* Exact nearest-rank percentile over a sorted array, the ground truth
   the histogram approximates. *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

(* Every reported percentile must sit within the histogram's
   advertised relative error of the true sample at the same rank —
   the property that makes p99.9 trustworthy at millions of ops. *)
let check_percentiles name h sorted =
  let tol = Metrics.Hist.relative_error h in
  List.iter
    (fun p ->
      let truth = exact_percentile sorted p in
      let approx = Metrics.Hist.percentile h p in
      let rel =
        if truth = 0. then Float.abs approx
        else Float.abs (approx -. truth) /. truth
      in
      if rel > tol +. 1e-12 then
        Alcotest.failf "%s p%g: hist %g vs exact %g (rel err %.5f > %.5f)"
          name p approx truth rel tol)
    [ 50.; 90.; 99.; 99.9; 99.99 ]

let adversarial_cases =
  (* Each case: a name and a generator of one sample from a seeded
     PRNG state. A million draws per case. *)
  [
    ( "bimodal",
      fun st ->
        (* fast path near 1 delta, stragglers near 1000 delta — the
           shape a crashed brick induces on reads *)
        if Random.State.bool st then 0.5 +. Random.State.float st 1.
        else 900. +. Random.State.float st 200. );
    ( "heavy-tail",
      fun st ->
        (* Pareto alpha=1.1: infinite-variance tail, the worst case
           for sampling reservoirs *)
        let u = 1. -. Random.State.float st 0.999999 in
        1. /. (u ** (1. /. 1.1)) );
    ( "nine-nines-spike",
      fun st ->
        (* uniform bulk with a 0.05% spike three decades out — p99.9
           sits right at the cliff edge *)
        if Random.State.int st 2000 = 0 then 5000. +. Random.State.float st 1.
        else Random.State.float st 5. );
  ]

let test_hist_property () =
  let n = 1_000_000 in
  List.iter
    (fun (name, gen) ->
      let st = Random.State.make [| 0xFAB; String.length name |] in
      let h = Metrics.Hist.create () in
      let values = Array.init n (fun _ -> gen st) in
      Array.iter (Metrics.Hist.add h) values;
      Alcotest.(check int) (name ^ " exact count") n (Metrics.Hist.count h);
      Array.sort compare values;
      check_percentiles name h values;
      (* The sampling Summary at the same capacity the clients use
         would be allowed to drift here; the histogram may not. *)
      Alcotest.(check (float 0.0))
        (name ^ " exact min") values.(0) (Metrics.Hist.min h);
      Alcotest.(check (float 0.0))
        (name ^ " exact max") values.(n - 1) (Metrics.Hist.max h))
    adversarial_cases

let test_hist_merge_property () =
  (* Merging shards must agree with one histogram over the union, and
     must be associative: (a+b)+c = a+(b+c) on every observable except
     float mean (checked to tolerance). *)
  let st = Random.State.make [| 42 |] in
  let parts =
    List.map
      (fun (_, gen) ->
        let h = Metrics.Hist.create () in
        let vs = Array.init 50_000 (fun _ -> gen st) in
        Array.iter (Metrics.Hist.add h) vs;
        (h, vs))
      adversarial_cases
  in
  let a, b, c =
    match parts with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  let flat = Metrics.Hist.create () in
  List.iter (fun (_, vs) -> Array.iter (Metrics.Hist.add flat) vs) parts;
  let left = Metrics.Hist.merge (Metrics.Hist.merge (fst a) (fst b)) (fst c) in
  let right = Metrics.Hist.merge (fst a) (Metrics.Hist.merge (fst b) (fst c)) in
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) (name ^ " count") (Metrics.Hist.count flat)
        (Metrics.Hist.count m);
      Alcotest.(check (float 0.0)) (name ^ " min") (Metrics.Hist.min flat)
        (Metrics.Hist.min m);
      Alcotest.(check (float 0.0)) (name ^ " max") (Metrics.Hist.max flat)
        (Metrics.Hist.max m);
      Alcotest.(check (float 1e-6)) (name ^ " mean") (Metrics.Hist.mean flat)
        (Metrics.Hist.mean m);
      List.iter
        (fun p ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s p%g" name p)
            (Metrics.Hist.percentile flat p)
            (Metrics.Hist.percentile m p))
        [ 50.; 99.; 99.9 ];
      (* bucket-exact equality with the flat histogram *)
      Alcotest.(check bool) (name ^ " buckets") true
        (Metrics.Hist.buckets flat = Metrics.Hist.buckets m))
    [ ("left assoc", left); ("right assoc", right) ];
  (* inputs unchanged *)
  Alcotest.(check int) "a untouched" 50_000 (Metrics.Hist.count (fst a))

(* ---- time series ---- *)

let test_timeseries_windows () =
  let ts = Metrics.Timeseries.create ~width:10. () in
  Alcotest.(check (option (pair int int))) "empty span" None
    (Metrics.Timeseries.span ts);
  Alcotest.(check int) "window_of" 2 (Metrics.Timeseries.window_of ts 25.);
  Alcotest.(check (float 0.0)) "window_start" 20.
    (Metrics.Timeseries.window_start ts 2);
  Metrics.Timeseries.incr ts ~time:5. "ops";
  Metrics.Timeseries.incr ts ~time:25. ~by:3. "ops";
  Metrics.Timeseries.observe ts ~time:25. "lat" 4.;
  Metrics.Timeseries.observe ts ~time:27. "lat" 8.;
  Alcotest.(check (option (pair int int))) "span" (Some (0, 2))
    (Metrics.Timeseries.span ts);
  (* counter series is zero-filled over the span *)
  Alcotest.(check (list (pair int (float 0.0))))
    "series" [ (0, 1.); (1, 0.); (2, 3.) ]
    (Metrics.Timeseries.counter_series ts "ops");
  Alcotest.(check (float 0.0)) "total" 4. (Metrics.Timeseries.total ts "ops");
  (* per-window percentile: None where the window has no data *)
  (match Metrics.Timeseries.percentile_series ts "lat" 50. with
  | [ (0, None); (1, None); (2, Some p) ] ->
      Alcotest.(check bool) "p50 near 4" true (Float.abs (p -. 4.) /. 4. < 0.05)
  | other ->
      Alcotest.failf "unexpected percentile series (%d entries)"
        (List.length other));
  (* pooled histogram sees both observations *)
  match Metrics.Timeseries.merged_hist ts "lat" with
  | None -> Alcotest.fail "merged_hist"
  | Some h ->
      Alcotest.(check int) "merged count" 2 (Metrics.Hist.count h);
      Alcotest.(check (float 0.0)) "merged max" 8. (Metrics.Hist.max h)

let test_timeseries_validation () =
  Alcotest.check_raises "width"
    (Invalid_argument "Metrics.Timeseries.create: width <= 0")
    (fun () -> ignore (Metrics.Timeseries.create ~width:0. ()))

let () =
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "registry identity" `Quick test_registry_identity;
          Alcotest.test_case "names sorted" `Quick test_registry_names_sorted;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
        ] );
      ( "summary",
        [
          Alcotest.test_case "statistics" `Quick test_summary_stats;
          Alcotest.test_case "percentile edges" `Quick test_summary_percentile_edges;
          Alcotest.test_case "cache invalidation" `Quick
            test_summary_incremental_after_percentile;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge empty" `Quick test_summary_merge_empty;
          Alcotest.test_case "bounded reservoir" `Quick test_summary_capacity;
          Alcotest.test_case "reservoir exact below capacity" `Quick
            test_summary_capacity_exact_below;
        ] );
      ( "hist",
        [
          Alcotest.test_case "basics" `Quick test_hist_basics;
          Alcotest.test_case "merge precision mismatch" `Quick
            test_hist_merge_precision_mismatch;
          Alcotest.test_case "percentile error bound (1e6 adversarial)" `Slow
            test_hist_property;
          Alcotest.test_case "merge associative + exact" `Quick
            test_hist_merge_property;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "windows" `Quick test_timeseries_windows;
          Alcotest.test_case "validation" `Quick test_timeseries_validation;
        ] );
    ]
