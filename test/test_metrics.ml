(* Tests for counters, snapshots and summaries. *)

let test_counter () =
  let c = Metrics.Counter.create () in
  Alcotest.(check (float 0.0)) "zero" 0. (Metrics.Counter.value c);
  Metrics.Counter.incr c;
  Metrics.Counter.incr ~by:2.5 c;
  Alcotest.(check (float 0.0)) "accumulated" 3.5 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check (float 0.0)) "reset" 0. (Metrics.Counter.value c)

let test_registry_identity () =
  let r = Metrics.Registry.create () in
  let a = Metrics.Registry.counter r "x" in
  let b = Metrics.Registry.counter r "x" in
  Metrics.Counter.incr a;
  Alcotest.(check (float 0.0)) "same counter" 1. (Metrics.Counter.value b);
  Alcotest.(check (float 0.0)) "by name" 1. (Metrics.Registry.value r "x");
  Alcotest.(check (float 0.0)) "unknown is 0" 0. (Metrics.Registry.value r "y")

let test_registry_names_sorted () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr r "zz";
  Metrics.Registry.incr r "aa";
  Metrics.Registry.incr r "mm";
  Alcotest.(check (list string)) "sorted" [ "aa"; "mm"; "zz" ]
    (Metrics.Registry.names r)

let test_snapshot_diff () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr ~by:5. r "a";
  let before = Metrics.Snapshot.take r in
  Metrics.Registry.incr ~by:3. r "a";
  Metrics.Registry.incr r "b";
  let after = Metrics.Snapshot.take r in
  Alcotest.(check (list (pair string (float 0.0))))
    "diff" [ ("a", 3.); ("b", 1.) ]
    (Metrics.Snapshot.diff ~before ~after);
  Alcotest.(check (float 0.0)) "get" 5. (Metrics.Snapshot.get before "a")

let test_summary_stats () =
  let s = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Metrics.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Metrics.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Metrics.Summary.stddev s);
  Alcotest.(check (float 0.0)) "min" 2. (Metrics.Summary.min s);
  Alcotest.(check (float 0.0)) "max" 9. (Metrics.Summary.max s);
  Alcotest.(check (float 0.0)) "median" 4. (Metrics.Summary.percentile s 50.);
  Alcotest.(check (float 0.0)) "p100" 9. (Metrics.Summary.percentile s 100.)

let test_summary_percentile_edges () =
  let s = Metrics.Summary.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Metrics.Summary.percentile: empty") (fun () ->
      ignore (Metrics.Summary.percentile s 50.));
  Metrics.Summary.add s 1.;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Metrics.Summary.percentile: p out of [0,100]")
    (fun () -> ignore (Metrics.Summary.percentile s 150.));
  Alcotest.(check (float 0.0)) "single value" 1.
    (Metrics.Summary.percentile s 99.)

let test_summary_incremental_after_percentile () =
  (* The sorted cache must be invalidated by later adds. *)
  let s = Metrics.Summary.create () in
  Metrics.Summary.add s 10.;
  Alcotest.(check (float 0.0)) "first" 10. (Metrics.Summary.percentile s 50.);
  Metrics.Summary.add s 1.;
  Alcotest.(check (float 0.0)) "updated" 1. (Metrics.Summary.percentile s 50.)

let test_summary_merge () =
  let a = Metrics.Summary.create () in
  let b = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add a) [ 1.; 2.; 3. ];
  List.iter (Metrics.Summary.add b) [ 10.; 20. ];
  let m = Metrics.Summary.merge a b in
  Alcotest.(check int) "count" 5 (Metrics.Summary.count m);
  Alcotest.(check (float 1e-9)) "mean" 7.2 (Metrics.Summary.mean m);
  Alcotest.(check (float 0.0)) "min" 1. (Metrics.Summary.min m);
  Alcotest.(check (float 0.0)) "max" 20. (Metrics.Summary.max m);
  Alcotest.(check (float 0.0)) "median" 3. (Metrics.Summary.percentile m 50.);
  (* The pooled variance must match a flat series of the same values. *)
  let flat = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add flat) [ 1.; 2.; 3.; 10.; 20. ];
  Alcotest.(check (float 1e-9)) "pooled stddev" (Metrics.Summary.stddev flat)
    (Metrics.Summary.stddev m);
  (* Inputs are untouched. *)
  Alcotest.(check int) "a untouched" 3 (Metrics.Summary.count a);
  Alcotest.(check int) "b untouched" 2 (Metrics.Summary.count b)

let test_summary_merge_empty () =
  let e = Metrics.Summary.create () in
  let m0 = Metrics.Summary.merge e (Metrics.Summary.create ()) in
  Alcotest.(check int) "empty+empty" 0 (Metrics.Summary.count m0);
  let a = Metrics.Summary.create () in
  List.iter (Metrics.Summary.add a) [ 4.; 6. ];
  let left = Metrics.Summary.merge e a in
  let right = Metrics.Summary.merge a e in
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) (name ^ " count") 2 (Metrics.Summary.count m);
      Alcotest.(check (float 1e-9)) (name ^ " mean") 5. (Metrics.Summary.mean m);
      Alcotest.(check (float 1e-9)) (name ^ " stddev")
        (Metrics.Summary.stddev a) (Metrics.Summary.stddev m);
      Alcotest.(check (float 0.0)) (name ^ " p50") 4.
        (Metrics.Summary.percentile m 50.))
    [ ("empty+a", left); ("a+empty", right) ]

let test_summary_capacity () =
  let s = Metrics.Summary.create ~capacity:8 () in
  for i = 1 to 100 do
    Metrics.Summary.add s (float_of_int i)
  done;
  (* Moment statistics stay exact regardless of the reservoir. *)
  Alcotest.(check int) "count exact" 100 (Metrics.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean exact" 50.5 (Metrics.Summary.mean s);
  Alcotest.(check (float 0.0)) "min exact" 1. (Metrics.Summary.min s);
  Alcotest.(check (float 0.0)) "max exact" 100. (Metrics.Summary.max s);
  (* Percentiles come from the thinned reservoir: approximate, but a
     median over a systematic sample of a uniform ramp stays nearby. *)
  let p50 = Metrics.Summary.percentile s 50. in
  Alcotest.(check bool) "median in bulk" true (p50 > 20. && p50 < 80.);
  Alcotest.check_raises "capacity 1 rejected"
    (Invalid_argument "Metrics.Summary.create: capacity must be 0 or >= 2")
    (fun () -> ignore (Metrics.Summary.create ~capacity:1 ()))

let test_summary_capacity_exact_below () =
  (* While count <= capacity the reservoir is lossless. *)
  let s = Metrics.Summary.create ~capacity:8 () in
  List.iter (Metrics.Summary.add s) [ 5.; 1.; 9.; 3. ];
  Alcotest.(check (float 0.0)) "exact p50" 3. (Metrics.Summary.percentile s 50.)

let () =
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "registry identity" `Quick test_registry_identity;
          Alcotest.test_case "names sorted" `Quick test_registry_names_sorted;
          Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
        ] );
      ( "summary",
        [
          Alcotest.test_case "statistics" `Quick test_summary_stats;
          Alcotest.test_case "percentile edges" `Quick test_summary_percentile_edges;
          Alcotest.test_case "cache invalidation" `Quick
            test_summary_incremental_after_percentile;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge empty" `Quick test_summary_merge_empty;
          Alcotest.test_case "bounded reservoir" `Quick test_summary_capacity;
          Alcotest.test_case "reservoir exact below capacity" `Quick
            test_summary_capacity_exact_below;
        ] );
    ]
