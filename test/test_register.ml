(* End-to-end tests of the storage-register protocol (Algorithms 1-3),
   including the Table 1 cost model, partial-write recovery semantics
   (the paper's Figure 5 scenario), crash tolerance, fair-loss
   retransmission, and garbage collection. *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module Ts = Core.Timestamp

let bs = 1024

let stripe_data tag m =
  Array.init m (fun i -> Bytes.make bs (Char.chr (Char.code tag + i)))

let check_stripe msg expected = function
  | Some (Ok data) ->
      Alcotest.(check bool) msg true (Array.for_all2 Bytes.equal data expected)
  | Some (Error _) -> Alcotest.fail (msg ^ ": aborted")
  | None -> Alcotest.fail (msg ^ ": no result")

let check_ok msg = function
  | Some (Ok ()) -> ()
  | Some (Error _) -> Alcotest.fail (msg ^ ": aborted")
  | None -> Alcotest.fail (msg ^ ": no result")

let write cl ?coord ~stripe data =
  Cluster.run_op ?coord cl (fun c -> Coordinator.write_stripe c ~stripe data)

let read cl ?coord ~stripe () =
  Cluster.run_op ?coord cl (fun c -> Coordinator.read_stripe c ~stripe)

(* ------------------------------------------------------------------ *)
(* Round trips over codecs and geometries                              *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_geometries () =
  List.iter
    (fun (m, n) ->
      let cl = Cluster.create ~m ~n () in
      let data = stripe_data 'A' m in
      check_ok "write" (write cl ~stripe:0 data);
      (* Read through every coordinator. *)
      for coord = 0 to n - 1 do
        check_stripe
          (Printf.sprintf "(%d,%d) read via %d" m n coord)
          data
          (read cl ~coord ~stripe:0 ())
      done)
    [ (1, 3); (2, 3); (3, 5); (5, 8); (4, 6); (1, 5) ]

let test_overwrite_sequence () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  for round = 0 to 9 do
    let data = stripe_data (Char.chr (65 + round)) 3 in
    check_ok "write round" (write cl ~coord:(round mod 5) ~stripe:0 data);
    check_stripe "read back latest" data (read cl ~coord:((round + 1) mod 5) ~stripe:0 ())
  done

let test_unwritten_stripe_reads_zero () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  match read cl ~stripe:7 () with
  | Some (Ok data) ->
      Array.iter
        (fun b ->
          Alcotest.(check bool) "zeroes" true
            (Bytes.for_all (fun c -> c = '\000') b))
        data
  | _ -> Alcotest.fail "read of fresh stripe"

let test_independent_stripes () =
  let cl = Cluster.create ~m:2 ~n:4 () in
  let d0 = stripe_data 'a' 2 and d1 = stripe_data 'q' 2 in
  check_ok "write s0" (write cl ~stripe:0 d0);
  check_ok "write s1" (write cl ~stripe:1 d1);
  check_stripe "s0 intact" d0 (read cl ~stripe:0 ());
  check_stripe "s1 intact" d1 (read cl ~stripe:1 ())

let test_block_ops () =
  let cl = Cluster.create ~m:5 ~n:8 () in
  let data = stripe_data 'A' 5 in
  check_ok "seed stripe" (write cl ~stripe:0 data);
  (* Write each block in turn through different coordinators, then
     check single-block and full-stripe reads agree. *)
  for j = 0 to 4 do
    let b = Bytes.make bs (Char.chr (109 + j)) in
    check_ok "write_block"
      (Cluster.run_op ~coord:(j mod 8) cl (fun c ->
           Coordinator.with_retries c (fun () ->
               Coordinator.write_block c ~stripe:0 j b)));
    data.(j) <- b;
    (match
       Cluster.run_op ~coord:((j + 3) mod 8) cl (fun c ->
           Coordinator.read_block c ~stripe:0 j)
     with
    | Some (Ok got) -> Alcotest.(check bool) "block readback" true (Bytes.equal got b)
    | _ -> Alcotest.fail "read_block failed")
  done;
  check_stripe "stripe reflects block writes" data (read cl ~stripe:0 ())

let test_block_ops_on_parity_code () =
  let cl = Cluster.create ~m:4 ~n:5 () in
  (* RAID-5-style codec via block writes only; stripe starts nil. *)
  let expected = Array.init 4 (fun _ -> Bytes.make bs '\000') in
  List.iter
    (fun j ->
      let b = Bytes.make bs (Char.chr (48 + j)) in
      expected.(j) <- b;
      check_ok "write_block on nil stripe"
        (Cluster.run_op cl (fun c -> Coordinator.write_block c ~stripe:0 j b)))
    [ 2; 0; 3; 1 ];
  check_stripe "all blocks landed" expected (read cl ~stripe:0 ())

let test_multi_block_ops () =
  let cl = Cluster.create ~m:5 ~n:8 () in
  let data = stripe_data 'A' 5 in
  check_ok "seed" (write cl ~stripe:0 data);
  (* Write blocks 1..3 in one operation, read them back both ways. *)
  let news = Array.init 3 (fun i -> Bytes.make bs (Char.chr (112 + i))) in
  check_ok "write_blocks"
    (Cluster.run_op cl (fun c -> Coordinator.write_blocks c ~stripe:0 1 news));
  Array.iteri (fun i b -> data.(1 + i) <- b) news;
  (match
     Cluster.run_op ~coord:4 cl (fun c ->
         Coordinator.read_blocks c ~stripe:0 1 ~len:3)
   with
  | Some (Ok got) ->
      Alcotest.(check bool) "multi readback" true
        (Array.for_all2 Bytes.equal got news)
  | _ -> Alcotest.fail "read_blocks failed");
  check_stripe "stripe view agrees" data (read cl ~coord:2 ~stripe:0 ());
  (* Parity must have been maintained: decode with data bricks down. *)
  Cluster.crash cl 1;
  check_stripe "parity consistent after multi write" data
    (read cl ~coord:0 ~stripe:0 ())

let test_multi_block_costs () =
  (* The point of the footnote-2 extension: one round trip for the
     whole range, not one per block. *)
  let cl = Cluster.create ~m:5 ~n:8 () in
  check_ok "seed" (write cl ~stripe:0 (stripe_data 'A' 5));
  let news = Array.init 3 (fun i -> Bytes.make bs (Char.chr (50 + i))) in
  let before = Cluster.snapshot cl in
  let lat = ref 0. in
  (match
     Cluster.run_op cl (fun c ->
         let t0 = Dessim.Engine.now cl.Cluster.engine in
         let r = Coordinator.write_blocks c ~stripe:0 1 news in
         lat := Dessim.Engine.now cl.Cluster.engine -. t0;
         r)
   with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "write_blocks");
  let after = Cluster.snapshot cl in
  let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  Alcotest.(check (float 0.)) "multi write latency 4 delta" 4. !lat;
  Alcotest.(check (float 0.)) "multi write msgs 4n" 32. (d "net.msgs");
  (* Reads: one per range block at the targets + one per parity. *)
  Alcotest.(check (float 0.)) "multi write disk reads" 6. (d "disk.reads");
  Alcotest.(check (float 0.)) "multi write disk writes len+k" 6. (d "disk.writes");
  (* Fast multi reads also cost a single round. *)
  let before = Cluster.snapshot cl in
  (match
     Cluster.run_op ~coord:3 cl (fun c ->
         Coordinator.read_blocks c ~stripe:0 1 ~len:3)
   with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "read_blocks");
  let after = Cluster.snapshot cl in
  let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  Alcotest.(check (float 0.)) "multi read msgs 2n" 16. (d "net.msgs");
  Alcotest.(check (float 0.)) "multi read disk reads = len" 3. (d "disk.reads")

let test_multi_block_degenerates_to_stripe () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  let data = stripe_data 'Q' 3 in
  check_ok "write_blocks full stripe"
    (Cluster.run_op cl (fun c -> Coordinator.write_blocks c ~stripe:0 0 data));
  (match
     Cluster.run_op ~coord:1 cl (fun c ->
         Coordinator.read_blocks c ~stripe:0 0 ~len:3)
   with
  | Some (Ok got) ->
      Alcotest.(check bool) "full range" true (Array.for_all2 Bytes.equal got data)
  | _ -> Alcotest.fail "read_blocks full");
  Alcotest.check_raises "range oob"
    (Invalid_argument "Core.Coordinator: block range out of bounds") (fun () ->
      ignore
        (Cluster.run_op cl (fun c -> Coordinator.read_blocks c ~stripe:0 2 ~len:2)))

let test_multi_block_after_single_block_write () =
  (* A single-block write leaves mixed version timestamps in the range;
     the fast multi path must bail to the slow path and still be
     correct. *)
  let cl = Cluster.create ~m:4 ~n:6 () in
  let data = stripe_data 'A' 4 in
  check_ok "seed" (write cl ~stripe:0 data);
  let nb = Bytes.make bs 'x' in
  check_ok "single write"
    (Cluster.run_op cl (fun c ->
         Coordinator.with_retries c (fun () ->
             Coordinator.write_block c ~stripe:0 1 nb)));
  data.(1) <- nb;
  let news = Array.init 2 (fun i -> Bytes.make bs (Char.chr (77 + i))) in
  check_ok "multi write over mixed versions"
    (Cluster.run_op ~coord:2 cl (fun c ->
         Coordinator.with_retries c (fun () ->
             Coordinator.write_blocks c ~stripe:0 1 news)));
  data.(1) <- news.(0);
  data.(2) <- news.(1);
  check_stripe "state correct" data (read cl ~coord:5 ~stripe:0 ())

let test_input_validation () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  Alcotest.check_raises "wrong block count"
    (Invalid_argument "Core.Coordinator.write_stripe: wrong block count")
    (fun () ->
      ignore (write cl ~stripe:0 (stripe_data 'A' 2)));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Core.Coordinator: block index out of range") (fun () ->
      ignore
        (Cluster.run_op cl (fun c ->
             Coordinator.read_block c ~stripe:0 5)))

(* ------------------------------------------------------------------ *)
(* Table 1 cost model                                                  *)
(* ------------------------------------------------------------------ *)

let measure cl f =
  let before = Cluster.snapshot cl in
  let t0 = Dessim.Engine.now cl.Cluster.engine in
  let result = Cluster.run_op cl f in
  (* The operation's completion time is when the fiber finished; ops
     here always finish before quiescence, so take latency from a
     wrapper instead. *)
  ignore t0;
  let after = Cluster.snapshot cl in
  (result, fun name -> Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name)

let measure_latency ?coord cl f =
  let t = ref 0. in
  let result =
    Cluster.run_op ?coord cl (fun c ->
        let started = Dessim.Engine.now cl.Cluster.engine in
        let r = f c in
        t := Dessim.Engine.now cl.Cluster.engine -. started;
        r)
  in
  (result, !t)

let test_costs_fast_paths () =
  (* n = 8, m = 5, k = 3, B = 1024: the paper's running example. *)
  let n = 8 and m = 5 and k = 3 in
  let nf = float_of_int n and mf = float_of_int m and bf = float_of_int bs in
  let cl = Cluster.create ~m ~n () in
  let data = stripe_data 'A' m in

  (* write-stripe: 4delta, 4n msgs, 0 reads, n writes, nB. *)
  let r, d = measure cl (fun c -> Coordinator.write_stripe c ~stripe:0 data) in
  check_ok "write" (Option.map (fun x -> x) r);
  Alcotest.(check (float 0.)) "write msgs" (4. *. nf) (d "net.msgs");
  Alcotest.(check (float 0.)) "write disk reads" 0. (d "disk.reads");
  Alcotest.(check (float 0.)) "write disk writes" nf (d "disk.writes");
  Alcotest.(check (float 0.)) "write bandwidth" (nf *. bf) (d "net.bytes");
  let _, lat = measure_latency cl (fun c -> Coordinator.write_stripe c ~stripe:1 data) in
  Alcotest.(check (float 0.)) "write latency 4 delta" 4. lat;

  (* read-stripe fast: 2delta, 2n msgs, m reads, 0 writes, mB. *)
  let r, d = measure cl (fun c -> Coordinator.read_stripe c ~stripe:0) in
  check_stripe "fast read" data r;
  Alcotest.(check (float 0.)) "read msgs" (2. *. nf) (d "net.msgs");
  Alcotest.(check (float 0.)) "read disk reads" mf (d "disk.reads");
  Alcotest.(check (float 0.)) "read disk writes" 0. (d "disk.writes");
  Alcotest.(check (float 0.)) "read bandwidth" (mf *. bf) (d "net.bytes");
  let _, lat = measure_latency cl (fun c -> Coordinator.read_stripe c ~stripe:0) in
  Alcotest.(check (float 0.)) "read latency 2 delta" 2. lat;

  (* read-block fast: 2delta, 2n msgs, 1 read, B. *)
  let r, d = measure cl (fun c -> Coordinator.read_block c ~stripe:0 2) in
  (match r with
  | Some (Ok b) -> Alcotest.(check bool) "value" true (Bytes.equal b data.(2))
  | _ -> Alcotest.fail "read_block");
  Alcotest.(check (float 0.)) "rb msgs" (2. *. nf) (d "net.msgs");
  Alcotest.(check (float 0.)) "rb disk reads" 1. (d "disk.reads");
  Alcotest.(check (float 0.)) "rb bandwidth" bf (d "net.bytes");

  (* write-block fast: 4delta, 4n msgs, k+1 reads, k+1 writes, (2n+1)B. *)
  let nb = Bytes.make bs 'z' in
  let r, d = measure cl (fun c -> Coordinator.write_block c ~stripe:0 2 nb) in
  check_ok "write_block" r;
  Alcotest.(check (float 0.)) "wb msgs" (4. *. nf) (d "net.msgs");
  Alcotest.(check (float 0.)) "wb disk reads" (float_of_int (k + 1)) (d "disk.reads");
  Alcotest.(check (float 0.)) "wb disk writes" (float_of_int (k + 1)) (d "disk.writes");
  Alcotest.(check (float 0.)) "wb bandwidth" (((2. *. nf) +. 1.) *. bf) (d "net.bytes")

(* Force a partial stripe write: isolate the coordinator's Write
   messages so they reach only [reach] members, then crash the
   coordinator. Uses a second cluster brick as the doomed coordinator
   so the main coordinator (brick 0) is unaffected. *)
let inject_partial_write cl ~stripe ~doomed ~reach data =
  let n = Array.length cl.Cluster.bricks in
  (* First run the Order phase normally by letting write_stripe start,
     but cut the links for the Write phase only. We approximate by
     letting the whole two-phase write run with links cut to all but
     [reach] members *after* one round trip (the Order phase). *)
  Dessim.Fiber.spawn (fun () ->
      ignore (Coordinator.write_stripe cl.Cluster.coordinators.(doomed) ~stripe data));
  (* The Order phase completes at t+2; cut links at t+2.5, before the
     Write phase's messages (sent at t+2) arrive?  Messages already in
     flight are not affected by link cuts, so instead cut at t+1.5:
     Order replies (arriving at 2) still flow to the coordinator, the
     Write messages sent at 2 cross the cut links and die. *)
  let eng = cl.Cluster.engine in
  ignore
    (Dessim.Engine.schedule eng ~delay:1.5 (fun () ->
         for dst = 0 to n - 1 do
           if not (List.mem dst reach) then
             Simnet.Net.set_link_down cl.Cluster.net ~src:doomed ~dst true
         done));
  ignore
    (Dessim.Engine.schedule eng ~delay:4.5 (fun () ->
         Brick.crash cl.Cluster.bricks.(doomed)));
  ignore
    (Dessim.Engine.schedule eng ~delay:5.0 (fun () ->
         for dst = 0 to n - 1 do
           Simnet.Net.set_link_down cl.Cluster.net ~src:doomed ~dst false
         done;
         Brick.recover cl.Cluster.bricks.(doomed)));
  Cluster.run ~horizon:20. cl

let test_partial_write_rolled_back () =
  (* Figure 5 as a full scenario: a write reaching fewer than m
     replicas must be rolled back; later reads must never surface it. *)
  let cl = Cluster.create ~m:3 ~n:5 () in
  let old_data = stripe_data 'A' 3 in
  check_ok "initial write" (write cl ~stripe:0 old_data);
  let new_data = stripe_data 'X' 3 in
  inject_partial_write cl ~stripe:0 ~doomed:4 ~reach:[ 0 ] new_data;
  (* The partial write reached 1 < m = 3 replicas: rolled back. *)
  check_stripe "read returns old value" old_data (read cl ~coord:1 ~stripe:0 ());
  (* Strictness: repeat reads through every coordinator, including
     after the doomed brick recovered; the new value must never
     appear. *)
  for coord = 0 to 4 do
    check_stripe "stays rolled back" old_data (read cl ~coord ~stripe:0 ())
  done

let test_partial_write_rolled_forward () =
  (* A partial write reaching >= m replicas may be completed by the
     next read (roll-forward), and then must stick. *)
  let cl = Cluster.create ~m:3 ~n:5 () in
  let old_data = stripe_data 'A' 3 in
  check_ok "initial write" (write cl ~stripe:0 old_data);
  let new_data = stripe_data 'X' 3 in
  inject_partial_write cl ~stripe:0 ~doomed:4 ~reach:[ 0; 1; 2 ] new_data;
  check_stripe "read rolls forward" new_data (read cl ~coord:1 ~stripe:0 ());
  for coord = 0 to 4 do
    check_stripe "stays rolled forward" new_data (read cl ~coord ~stripe:0 ())
  done

let test_read_slow_path_costs () =
  (* Table 1 read/S: 6delta, 6n msgs, n+m disk reads, n writes,
     (2n+m)B — after a partial write forces recovery. *)
  let n = 8 and m = 5 in
  let nf = float_of_int n and mf = float_of_int m and bf = float_of_int bs in
  let cl = Cluster.create ~m ~n () in
  (* Table 1's read/S scenario: one replica misses a write (it was
     crashed) and rejoins; the fast phase then sees diverging version
     timestamps, pays its full m block reads, and falls back to a
     single-iteration recovery. *)
  Cluster.crash cl 0;
  check_ok "write missing one replica"
    (Cluster.run_op ~coord:1 cl (fun c ->
         Coordinator.write_stripe c ~stripe:0 (stripe_data 'B' m)));
  Cluster.recover cl 0;
  let before = Cluster.snapshot cl in
  let r, lat =
    measure_latency ~coord:1 cl (fun c -> Coordinator.read_stripe c ~stripe:0)
  in
  check_stripe "read/S returns the write" (stripe_data 'B' m) r;
  let after = Cluster.snapshot cl in
  let d name = Metrics.Snapshot.get after name -. Metrics.Snapshot.get before name in
  Alcotest.(check (float 0.)) "read/S latency 6 delta" 6. lat;
  Alcotest.(check (float 0.)) "read/S msgs" (6. *. nf) (d "net.msgs");
  Alcotest.(check (float 0.)) "read/S disk writes" nf (d "disk.writes");
  Alcotest.(check (float 0.)) "read/S bandwidth" (((2. *. nf) +. mf) *. bf) (d "net.bytes");
  Alcotest.(check (float 0.)) "read/S disk reads n+m" (nf +. mf) (d "disk.reads")

let test_crash_tolerance_boundary () =
  (* f = (n - m) / 2 crashes are tolerated; f + 1 stall the system
     (liveness, not safety, is lost). *)
  let cl = Cluster.create ~m:3 ~n:7 () in
  (* f = 2 *)
  let data = stripe_data 'A' 3 in
  check_ok "write" (write cl ~stripe:0 data);
  Cluster.crash cl 5;
  Cluster.crash cl 6;
  check_stripe "read with f crashes" data (read cl ~coord:0 ~stripe:0 ());
  check_ok "write with f crashes" (write cl ~stripe:0 (stripe_data 'B' 3));
  Cluster.crash cl 4;
  (match Cluster.run_op ~horizon:500. cl (fun c -> Coordinator.read_stripe c ~stripe:0) with
  | None -> ()  (* blocked, as expected: no quorum *)
  | Some _ -> Alcotest.fail "operation should stall without a quorum");
  (* Recovery of one brick restores liveness; note the persistent
     state survived the crash. *)
  Cluster.recover cl 4;
  check_stripe "after recovery" (stripe_data 'B' 3) (read cl ~coord:1 ~stripe:0 ())

let test_total_crash_and_restart () =
  (* The paper: "our algorithm can tolerate the simultaneous crash of
     all processes, and makes progress whenever an m-quorum comes back
     up". *)
  let cl = Cluster.create ~m:3 ~n:5 () in
  let data = stripe_data 'A' 3 in
  check_ok "write" (write cl ~stripe:0 data);
  for i = 0 to 4 do Cluster.crash cl i done;
  (match Cluster.run_op ~horizon:100. cl (fun c -> Coordinator.read_stripe c ~stripe:0) with
  | None -> ()
  | Some _ -> Alcotest.fail "all-crashed cluster must stall");
  for i = 0 to 3 do Cluster.recover cl i done;  (* quorum = 4 back up *)
  check_stripe "data survives total crash" data (read cl ~coord:0 ~stripe:0 ())

let test_message_loss_resilience () =
  let cl =
    Cluster.create ~m:3 ~n:5
      ~net_config:{ Simnet.Net.default_config with drop = 0.25 } ()
  in
  for round = 0 to 4 do
    let data = stripe_data (Char.chr (65 + round)) 3 in
    (match
       Cluster.run_op ~coord:(round mod 5) ~horizon:10_000. cl (fun c ->
           Coordinator.with_retries c (fun () ->
               Coordinator.write_stripe c ~stripe:0 data))
     with
    | Some (Ok ()) -> ()
    | Some (Error _) -> Alcotest.fail "lossy write aborted"
    | None -> Alcotest.fail "lossy write hung");
    match
      Cluster.run_op ~coord:((round + 2) mod 5) ~horizon:10_000. cl (fun c ->
          Coordinator.with_retries c (fun () ->
              Coordinator.read_stripe c ~stripe:0))
    with
    | Some (Ok got) ->
        Alcotest.(check bool) "lossy read correct" true
          (Array.for_all2 Bytes.equal got data)
    | _ -> Alcotest.fail "lossy read failed"
  done

let test_write_block_with_crashed_target () =
  (* p_j crashed: the fast path cannot see its current block, so the
     write falls back to the slow path (reconstruct, patch, store). *)
  let cl = Cluster.create ~m:5 ~n:8 () in
  let data = stripe_data 'A' 5 in
  check_ok "seed" (write cl ~stripe:0 data);
  Cluster.crash cl 2;  (* p_2 holds block 2 *)
  let nb = Bytes.make bs 'z' in
  check_ok "write_block via slow path"
    (Cluster.run_op ~coord:0 cl (fun c -> Coordinator.write_block c ~stripe:0 2 nb));
  data.(2) <- nb;
  check_stripe "slow-path write visible" data (read cl ~coord:3 ~stripe:0 ());
  (* After p_2 recovers it serves reads again; its stale log entry for
     block 2 is superseded by version ordering. *)
  Cluster.recover cl 2;
  (match Cluster.run_op ~coord:2 cl (fun c -> Coordinator.read_block c ~stripe:0 2) with
  | Some (Ok b) -> Alcotest.(check bool) "recovered brick reads new block" true (Bytes.equal b nb)
  | _ -> Alcotest.fail "read via recovered brick")

let test_concurrent_writers_abort_or_serialize () =
  (* Two coordinators write the same stripe at the same instant: at
     most one wins per timestamp order; aborts are allowed but data
     must equal one of the two proposals afterwards. *)
  let cl = Cluster.create ~m:3 ~n:5 () in
  let d1 = stripe_data 'A' 3 and d2 = stripe_data 'Q' 3 in
  let r1 = ref None and r2 = ref None in
  Cluster.spawn ~coord:0 cl (fun c -> r1 := Some (Coordinator.write_stripe c ~stripe:0 d1));
  Cluster.spawn ~coord:1 cl (fun c -> r2 := Some (Coordinator.write_stripe c ~stripe:0 d2));
  Cluster.run cl;
  let ok = function Some (Ok ()) -> true | _ -> false in
  Alcotest.(check bool) "at least one completed or aborted cleanly" true
    (!r1 <> None && !r2 <> None);
  match read cl ~coord:2 ~stripe:0 () with
  | Some (Ok got) ->
      let is d = Array.for_all2 Bytes.equal got d in
      Alcotest.(check bool) "state is one of the writes" true (is d1 || is d2);
      (* If a write succeeded, the final state must be a successful
         write's value (the last one in timestamp order). *)
      if ok !r1 && not (ok !r2) then
        Alcotest.(check bool) "winner visible" true (is d1)
      else if ok !r2 && not (ok !r1) then
        Alcotest.(check bool) "winner visible" true (is d2)
  | _ -> Alcotest.fail "post-conflict read"

let test_gc_bounds_logs () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  for round = 0 to 19 do
    check_ok "write" (write cl ~stripe:0 (stripe_data (Char.chr (65 + round)) 3))
  done;
  Array.iter
    (fun r ->
      match Core.Replica.log r ~stripe:0 with
      | Some l ->
          Alcotest.(check bool)
            (Printf.sprintf "log bounded, size %d" (Core.Slog.size l))
            true
            (Core.Slog.size l <= 2)
      | None -> Alcotest.fail "no log")
    cl.Cluster.replicas;
  Alcotest.(check bool) "gc removed entries" true
    (Array.exists (fun r -> Core.Replica.gc_removed r > 0) cl.Cluster.replicas)

let test_gc_disabled_grows () =
  let cl = Cluster.create ~m:3 ~n:5 ~gc_enabled:false () in
  for round = 0 to 9 do
    check_ok "write" (write cl ~stripe:0 (stripe_data (Char.chr (65 + round)) 3))
  done;
  match Core.Replica.log cl.Cluster.replicas.(0) ~stripe:0 with
  | Some l -> Alcotest.(check int) "log keeps all versions" 11 (Core.Slog.size l)
  | None -> Alcotest.fail "no log"

let test_optimized_modify_equivalent () =
  (* Section 5.2 bandwidth optimization: same results, less traffic. *)
  let run_with opt =
    let cl = Cluster.create ~m:5 ~n:8 ~optimized_modify:opt () in
    let data = stripe_data 'A' 5 in
    check_ok "seed" (write cl ~stripe:0 data);
    let before = Cluster.snapshot cl in
    let nb = Bytes.make bs 'z' in
    check_ok "write_block"
      (Cluster.run_op cl (fun c -> Coordinator.write_block c ~stripe:0 1 nb));
    let after = Cluster.snapshot cl in
    data.(1) <- nb;
    check_stripe "readback" data (read cl ~coord:5 ~stripe:0 ());
    Metrics.Snapshot.get after "net.bytes" -. Metrics.Snapshot.get before "net.bytes"
  in
  let naive = run_with false and optimized = run_with true in
  (* Naive Modify ships 2 blocks to all n; optimized ships one block
     to p_j and one delta to each of the k parities. *)
  Alcotest.(check (float 0.)) "naive modify traffic" ((2. *. 8.) +. 1.) (naive /. float_of_int bs);
  Alcotest.(check (float 0.)) "optimized modify traffic" (4. +. 1.) (optimized /. float_of_int bs)

let test_read_block_after_partial_write () =
  (* Table 1 read-block/S path: a partial stripe write forces the
     block read through recovery. *)
  let cl = Cluster.create ~m:3 ~n:5 () in
  let old_data = stripe_data 'A' 3 in
  check_ok "seed" (write cl ~stripe:0 old_data);
  inject_partial_write cl ~stripe:0 ~doomed:4 ~reach:[ 1 ] (stripe_data 'X' 3);
  match Cluster.run_op ~coord:0 cl (fun c -> Coordinator.read_block c ~stripe:0 0) with
  | Some (Ok b) ->
      Alcotest.(check bool) "rolled-back block value" true (Bytes.equal b old_data.(0))
  | _ -> Alcotest.fail "read_block after partial write"

let test_recover_idempotent () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  let data = stripe_data 'A' 3 in
  check_ok "write" (write cl ~stripe:0 data);
  check_stripe "recover returns current" data
    (Cluster.run_op cl (fun c -> Coordinator.recover c ~stripe:0));
  check_stripe "recover again" data
    (Cluster.run_op ~coord:2 cl (fun c ->
         Coordinator.with_retries c (fun () -> Coordinator.recover c ~stripe:0)));
  check_stripe "normal read still fine" data (read cl ~stripe:0 ())

let test_scrub_clean_stripe () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  let data = stripe_data 'A' 3 in
  check_ok "seed" (write cl ~stripe:0 data);
  (match
     Cluster.run_op ~coord:1 cl (fun c ->
         Coordinator.with_retries c (fun () -> Coordinator.scrub c ~stripe:0))
   with
  | Some (Ok []) -> ()
  | Some (Ok _) -> Alcotest.fail "clean stripe reported corruption"
  | _ -> Alcotest.fail "scrub failed");
  check_stripe "data intact after scrub" data (read cl ~coord:2 ~stripe:0 ())

let test_scrub_detects_and_repairs () =
  let cl = Cluster.create ~m:3 ~n:5 () in
  let data = stripe_data 'A' 3 in
  check_ok "seed" (write cl ~stripe:0 data);
  (* Corrupt brick 1's stored block: silent bit rot beneath the
     protocol ((n - m) / 2 = 1 corruption is identifiable for 3-of-5). *)
  (match Core.Replica.log cl.Cluster.replicas.(1) ~stripe:0 with
  | Some l -> Core.Slog.corrupt_newest l
  | None -> Alcotest.fail "no log");
  (* A fast read through corrupted targets would return bad data —
     this is exactly what scrub exists to catch. *)
  (match Cluster.run_op ~coord:0 cl (fun c -> Coordinator.scrub c ~stripe:0) with
  | Some (Ok positions) ->
      Alcotest.(check (list int)) "corrupted positions found" [ 1 ] positions
  | _ -> Alcotest.fail "scrub failed");
  (* After the repair every brick holds consistent blocks again. *)
  check_stripe "repaired" data (read cl ~coord:3 ~stripe:0 ());
  match
    Cluster.run_op ~coord:2 cl (fun c ->
        Coordinator.with_retries c (fun () -> Coordinator.scrub c ~stripe:0))
  with
  | Some (Ok []) -> ()
  | _ -> Alcotest.fail "second scrub should be clean"

let test_scrub_repairs_up_to_bound () =
  (* (n - m) / 2 = 2 corrupted blocks of a 2-of-6 stripe are still
     identified and repaired (the Reed-Solomon error-correction
     bound). *)
  let cl = Cluster.create ~m:2 ~n:6 () in
  let data = stripe_data 'A' 2 in
  check_ok "seed" (write cl ~stripe:0 data);
  List.iter
    (fun b ->
      match Core.Replica.log cl.Cluster.replicas.(b) ~stripe:0 with
      | Some l -> Core.Slog.corrupt_newest l
      | None -> ())
    [ 0; 3 ];
  (match
     Cluster.run_op ~coord:1 cl (fun c ->
         Coordinator.with_retries c (fun () -> Coordinator.scrub c ~stripe:0))
   with
  | Some (Ok positions) ->
      Alcotest.(check (list int)) "two corruptions" [ 0; 3 ] positions
  | _ -> Alcotest.fail "scrub failed");
  check_stripe "fully repaired" data (read cl ~coord:4 ~stripe:0 ())

(* ------------------------------------------------------------------ *)
(* Model-based sequential state machine property                       *)
(* ------------------------------------------------------------------ *)

(* Apply a random sequence of operations (through rotating
   coordinators, with retries) and mirror every mutation in a plain
   in-memory model; afterwards every read path must agree with the
   model. This is the strongest functional test: it composes stripe,
   block and multi-block operations in arbitrary orders. *)
type model_op =
  | MWrite_stripe of int  (* stripe *)
  | MWrite_block of int * int  (* stripe, j *)
  | MWrite_blocks of int * int * int  (* stripe, j0, len *)
  | MRead_stripe of int
  | MRead_block of int * int

let model_op_gen ~stripes ~m =
  QCheck.Gen.(
    int_range 0 (stripes - 1) >>= fun stripe ->
    int_range 0 (m - 1) >>= fun j ->
    int_range 1 (m - j) >>= fun len ->
    oneofl
      [
        MWrite_stripe stripe;
        MWrite_block (stripe, j);
        MWrite_blocks (stripe, j, len);
        MRead_stripe stripe;
        MRead_block (stripe, j);
      ])

let run_model_sequence (m, n, ops) =
  let stripes = 3 in
  let cl = Cluster.create ~m ~n ~block_size:bs () in
  let model =
    Array.init stripes (fun _ -> Array.init m (fun _ -> Bytes.make bs '\000'))
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Bytes.make bs (Char.chr (33 + (!counter mod 94)))
  in
  let ok = ref true in
  List.iteri
    (fun i op ->
      if !ok then begin
        let coord = i mod n in
        let result =
          Cluster.run_op ~coord cl (fun c ->
              Coordinator.with_retries ~attempts:4 c (fun () ->
                  match op with
                  | MWrite_stripe stripe ->
                      let data = Array.init m (fun _ -> fresh ()) in
                      Result.map
                        (fun () ->
                          Array.blit data 0 model.(stripe) 0 m;
                          true)
                        (Coordinator.write_stripe c ~stripe data)
                  | MWrite_block (stripe, j) ->
                      let b = fresh () in
                      Result.map
                        (fun () ->
                          model.(stripe).(j) <- b;
                          true)
                        (Coordinator.write_block c ~stripe j b)
                  | MWrite_blocks (stripe, j0, len) ->
                      let news = Array.init len (fun _ -> fresh ()) in
                      Result.map
                        (fun () ->
                          Array.blit news 0 model.(stripe) j0 len;
                          true)
                        (Coordinator.write_blocks c ~stripe j0 news)
                  | MRead_stripe stripe ->
                      Result.map
                        (fun data ->
                          Array.for_all2 Bytes.equal data model.(stripe))
                        (Coordinator.read_stripe c ~stripe)
                  | MRead_block (stripe, j) ->
                      Result.map
                        (fun b -> Bytes.equal b model.(stripe).(j))
                        (Coordinator.read_block c ~stripe j)))
        in
        match result with
        | Some (Ok true) -> ()
        | Some (Ok false) -> ok := false  (* read disagreed with model *)
        | Some (Error _) -> ok := false  (* sequential ops must not abort *)
        | None -> ok := false
      end)
    ops;
  (* Final sweep: every stripe must match the model via a fresh
     coordinator. *)
  if !ok then
    for stripe = 0 to stripes - 1 do
      match
        Cluster.run_op ~coord:(stripe mod n) cl (fun c ->
            Coordinator.with_retries ~attempts:4 c (fun () ->
                Coordinator.read_stripe c ~stripe))
      with
      | Some (Ok data) ->
          if not (Array.for_all2 Bytes.equal data model.(stripe)) then
            ok := false
      | _ -> ok := false
    done;
  !ok

let model_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"random op sequences match model"
       (QCheck.make
          QCheck.Gen.(
            oneofl [ (2, 4); (3, 5); (5, 8) ] >>= fun (m, n) ->
            list_size (int_range 5 25) (model_op_gen ~stripes:3 ~m)
            >>= fun ops -> return (m, n, ops)))
       run_model_sequence)

let () =
  Alcotest.run "register"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "geometries" `Quick test_roundtrip_geometries;
          Alcotest.test_case "overwrite sequence" `Quick test_overwrite_sequence;
          Alcotest.test_case "unwritten reads zero" `Quick
            test_unwritten_stripe_reads_zero;
          Alcotest.test_case "independent stripes" `Quick test_independent_stripes;
          Alcotest.test_case "block ops" `Quick test_block_ops;
          Alcotest.test_case "block ops on parity code" `Quick
            test_block_ops_on_parity_code;
          Alcotest.test_case "multi-block ops" `Quick test_multi_block_ops;
          Alcotest.test_case "multi-block costs" `Quick test_multi_block_costs;
          Alcotest.test_case "multi-block degenerate cases" `Quick
            test_multi_block_degenerates_to_stripe;
          Alcotest.test_case "multi-block after single-block" `Quick
            test_multi_block_after_single_block_write;
          Alcotest.test_case "input validation" `Quick test_input_validation;
        ] );
      ( "costs",
        [
          Alcotest.test_case "fast paths match Table 1" `Quick test_costs_fast_paths;
          Alcotest.test_case "read slow path" `Quick test_read_slow_path_costs;
          Alcotest.test_case "optimized modify" `Quick test_optimized_modify_equivalent;
        ] );
      ( "partial-writes",
        [
          Alcotest.test_case "rolled back below m" `Quick test_partial_write_rolled_back;
          Alcotest.test_case "rolled forward at m" `Quick
            test_partial_write_rolled_forward;
          Alcotest.test_case "block read after partial write" `Quick
            test_read_block_after_partial_write;
          Alcotest.test_case "recover idempotent" `Quick test_recover_idempotent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash tolerance boundary" `Quick
            test_crash_tolerance_boundary;
          Alcotest.test_case "total crash and restart" `Quick
            test_total_crash_and_restart;
          Alcotest.test_case "message loss" `Quick test_message_loss_resilience;
          Alcotest.test_case "write_block with crashed target" `Quick
            test_write_block_with_crashed_target;
          Alcotest.test_case "concurrent writers" `Quick
            test_concurrent_writers_abort_or_serialize;
        ] );
      ( "gc",
        [
          Alcotest.test_case "bounds logs" `Quick test_gc_bounds_logs;
          Alcotest.test_case "disabled grows" `Quick test_gc_disabled_grows;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean stripe" `Quick test_scrub_clean_stripe;
          Alcotest.test_case "detects and repairs" `Quick
            test_scrub_detects_and_repairs;
          Alcotest.test_case "repairs up to the RS bound" `Quick
            test_scrub_repairs_up_to_bound;
        ] );
      ("model", [ model_test ]);
    ]
