(* Tests for the crash-recovery brick shell. *)

let make () =
  let e = Dessim.Engine.create () in
  let rt = Runtime_sim.of_engine e in
  let metrics = Metrics.Registry.create () in
  (rt, metrics, Brick.create ~metrics rt ~id:3)

let test_identity () =
  let rt, _, b = make () in
  Alcotest.(check int) "id" 3 (Brick.id b);
  Alcotest.(check bool) "alive initially" true (Brick.is_alive b);
  Alcotest.(check bool) "runtime threading" true (Brick.runtime b == rt)

let test_crash_recover_cycle () =
  let _, _, b = make () in
  Brick.crash b;
  Alcotest.(check bool) "crashed" false (Brick.is_alive b);
  Brick.crash b;
  Alcotest.(check int) "idempotent crash count" 1 (Brick.crash_count b);
  Brick.recover b;
  Alcotest.(check bool) "alive again" true (Brick.is_alive b);
  Brick.crash b;
  Alcotest.(check int) "counts each real crash" 2 (Brick.crash_count b)

let test_crash_hooks_run_once () =
  let _, _, b = make () in
  let runs = ref 0 in
  ignore (Brick.add_crash_hook b (fun () -> incr runs));
  Brick.crash b;
  Alcotest.(check int) "ran" 1 !runs;
  Brick.recover b;
  Brick.crash b;
  Alcotest.(check int) "hooks are one-shot" 1 !runs

let test_remove_crash_hook () =
  let _, _, b = make () in
  let runs = ref 0 in
  let h = Brick.add_crash_hook b (fun () -> incr runs) in
  Brick.remove_crash_hook b h;
  Brick.crash b;
  Alcotest.(check int) "removed hook silent" 0 !runs

let test_hook_may_register_hooks () =
  let _, _, b = make () in
  let second = ref false in
  ignore
    (Brick.add_crash_hook b (fun () ->
         ignore (Brick.add_crash_hook b (fun () -> second := true))));
  Brick.crash b;
  Alcotest.(check bool) "no reentrant firing" false !second;
  Brick.recover b;
  Brick.crash b;
  Alcotest.(check bool) "registered for next crash" true !second

let test_io_accounting () =
  let _, m, b = make () in
  Brick.count_disk_read b;
  Brick.count_disk_read ~blocks:4 b;
  Brick.count_disk_write b;
  Brick.count_nvram_write b;
  Alcotest.(check (float 0.0)) "reads" 5. (Metrics.Registry.value m "disk.reads");
  Alcotest.(check (float 0.0)) "writes" 1. (Metrics.Registry.value m "disk.writes");
  Alcotest.(check (float 0.0)) "nvram" 1. (Metrics.Registry.value m "nvram.writes")

let () =
  Alcotest.run "brick"
    [
      ( "brick",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "crash/recover cycle" `Quick test_crash_recover_cycle;
          Alcotest.test_case "crash hooks run once" `Quick test_crash_hooks_run_once;
          Alcotest.test_case "remove hook" `Quick test_remove_crash_hook;
          Alcotest.test_case "hook registers hook" `Quick test_hook_may_register_hooks;
          Alcotest.test_case "io accounting" `Quick test_io_accounting;
        ] );
    ]
