(* Tests for the discrete-event engine and fibers. *)

module E = Dessim.Engine
module Fiber = Dessim.Fiber

let test_time_ordering () =
  let e = E.create () in
  let order = ref [] in
  ignore (E.schedule e ~delay:3. (fun () -> order := 3 :: !order));
  ignore (E.schedule e ~delay:1. (fun () -> order := 1 :: !order));
  ignore (E.schedule e ~delay:2. (fun () -> order := 2 :: !order));
  E.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check (float 0.0)) "clock at last event" 3. (E.now e)

let test_fifo_same_instant () =
  let e = E.create () in
  let order = ref [] in
  for i = 1 to 10 do
    ignore (E.schedule e ~delay:5. (fun () -> order := i :: !order))
  done;
  E.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !order)

let test_cancel () =
  let e = E.create () in
  let fired = ref false in
  let t = E.schedule e ~delay:1. (fun () -> fired := true) in
  E.cancel t;
  E.run e;
  Alcotest.(check bool) "cancelled never fires" false !fired;
  (* double cancel is a no-op *)
  E.cancel t

let test_nested_scheduling () =
  let e = E.create () in
  let times = ref [] in
  ignore
    (E.schedule e ~delay:1. (fun () ->
         times := E.now e :: !times;
         ignore (E.schedule e ~delay:2. (fun () -> times := E.now e :: !times))));
  E.run e;
  Alcotest.(check (list (float 0.0))) "nested" [ 1.; 3. ] (List.rev !times)

let test_run_until () =
  let e = E.create () in
  let fired = ref 0 in
  ignore (E.schedule e ~delay:1. (fun () -> incr fired));
  ignore (E.schedule e ~delay:10. (fun () -> incr fired));
  E.run ~until:5. e;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check (float 0.0)) "clock at horizon" 5. (E.now e);
  E.run e;
  Alcotest.(check int) "second fires later" 2 !fired

let test_negative_delay_rejected () =
  let e = E.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Dessim.Engine.schedule: negative delay") (fun () ->
      ignore (E.schedule e ~delay:(-1.) ignore))

let test_step_and_pending () =
  let e = E.create () in
  ignore (E.schedule e ~delay:1. ignore);
  ignore (E.schedule e ~delay:2. ignore);
  Alcotest.(check int) "pending 2" 2 (E.pending e);
  Alcotest.(check bool) "step true" true (E.step e);
  Alcotest.(check bool) "step true" true (E.step e);
  Alcotest.(check bool) "step false on empty" false (E.step e)

let test_pending_live_only () =
  let e = E.create () in
  let timers = List.init 10 (fun _ -> E.schedule e ~delay:1. ignore) in
  Alcotest.(check int) "all live" 10 (E.pending e);
  List.iteri (fun i t -> if i mod 2 = 0 then E.cancel t) timers;
  Alcotest.(check int) "cancelled not counted" 5 (E.pending e);
  ignore (E.step e);
  Alcotest.(check int) "one fired" 4 (E.pending e);
  (* Cancelling fired and already-cancelled timers must not disturb
     the count; cancelling the remaining live ones drains it. *)
  List.iter E.cancel timers;
  List.iter E.cancel timers;
  Alcotest.(check int) "all cancelled" 0 (E.pending e);
  E.run e;
  Alcotest.(check int) "empty" 0 (E.pending e)

let test_compaction_under_churn () =
  (* A long retry-timer churn: every scheduled timer is cancelled
     before it can fire. Without compaction the heap only grows; with
     it the live count stays exact and every surviving event fires. *)
  let e = E.create () in
  let fired = ref 0 in
  let cancelled_fired = ref 0 in
  for _ = 1 to 10_000 do
    let dead = E.schedule e ~delay:1000. (fun () -> incr cancelled_fired) in
    ignore (E.schedule e ~delay:1. (fun () -> incr fired));
    E.cancel dead;
    ignore (E.step e)
  done;
  E.run e;
  Alcotest.(check int) "live events all fired" 10_000 !fired;
  Alcotest.(check int) "cancelled events never fired" 0 !cancelled_fired;
  Alcotest.(check int) "queue drained" 0 (E.pending e)

let test_determinism () =
  let trace seed =
    let e = E.create ~seed () in
    let log = ref [] in
    let rec recur depth =
      if depth < 4 then
        ignore
          (E.schedule e
             ~delay:(Random.State.float (E.rng e) 10.)
             (fun () ->
               log := E.now e :: !log;
               recur (depth + 1)))
    in
    recur 0;
    recur 0;
    E.run e;
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 5 = trace 5);
  Alcotest.(check bool) "different seed, different trace" true
    (trace 5 <> trace 6)

(* --- fibers --- *)

let test_fiber_runs_immediately () =
  let ran = ref false in
  Fiber.spawn (fun () -> ran := true);
  Alcotest.(check bool) "ran synchronously" true !ran

let test_suspend_resume () =
  let got = ref 0 in
  let saved = ref None in
  Fiber.spawn (fun () ->
      let v = Fiber.suspend (fun r -> saved := Some r) in
      got := v);
  Alcotest.(check int) "not resumed yet" 0 !got;
  (match !saved with
  | Some r ->
      Alcotest.(check bool) "live" true (Fiber.is_live r);
      Fiber.resume r 42;
      Alcotest.(check bool) "dead after resume" false (Fiber.is_live r)
  | None -> Alcotest.fail "no resumer");
  Alcotest.(check int) "resumed with value" 42 !got

let test_double_resume_noop () =
  let count = ref 0 in
  let saved = ref None in
  Fiber.spawn (fun () ->
      let _ = Fiber.suspend (fun r -> saved := Some r) in
      incr count);
  let r = Option.get !saved in
  Fiber.resume r 1;
  Fiber.resume r 2;
  Fiber.cancel r;
  Alcotest.(check int) "resumed once" 1 !count

let test_cancel_unwinds () =
  let reached = ref false in
  let cleaned = ref false in
  let saved = ref None in
  Fiber.spawn (fun () ->
      Fun.protect
        ~finally:(fun () -> cleaned := true)
        (fun () ->
          let _ = Fiber.suspend (fun r -> saved := Some r) in
          reached := true));
  Fiber.cancel (Option.get !saved);
  Alcotest.(check bool) "code after suspend skipped" false !reached;
  Alcotest.(check bool) "finally ran on cancel" true !cleaned

let test_sequential_suspends () =
  let e = E.create () in
  let log = ref [] in
  Fiber.spawn (fun () ->
      for i = 1 to 3 do
        let v =
          Fiber.suspend (fun r ->
              ignore (E.schedule e ~delay:1. (fun () -> Fiber.resume r i)))
        in
        log := v :: !log
      done);
  E.run e;
  Alcotest.(check (list int)) "loop across suspends" [ 1; 2; 3 ] (List.rev !log)

let test_exception_propagates () =
  Alcotest.check_raises "escaping exception" Exit (fun () ->
      Fiber.spawn (fun () -> raise Exit))

(* --- scatter-gather join --- *)

let sleep e delay =
  Fiber.suspend (fun r ->
      ignore (E.schedule e ~delay (fun () -> Fiber.resume r ())))

let test_all_results_in_order () =
  let e = E.create () in
  let got = ref None in
  Fiber.spawn (fun () ->
      let results =
        Fiber.all
          (List.init 5 (fun i ->
               fun () ->
                 (* Later thunks finish earlier. *)
                 sleep e (float_of_int (10 - i));
                 i * i))
      in
      got := Some results);
  E.run e;
  Alcotest.(check (option (list int))) "input order" (Some [ 0; 1; 4; 9; 16 ])
    !got;
  Alcotest.(check (float 0.0)) "latency = max, not sum" 10. (E.now e)

let test_all_synchronous_thunks () =
  (* No thunk suspends: [all] must not need a running engine. *)
  let got = ref None in
  Fiber.spawn (fun () -> got := Some (Fiber.all [ (fun () -> 1); (fun () -> 2) ]));
  Alcotest.(check (option (list int))) "immediate" (Some [ 1; 2 ]) !got;
  Fiber.spawn (fun () -> got := Some (Fiber.all []));
  Alcotest.(check (option (list int))) "empty" (Some []) !got

let test_all_window_bounds_inflight () =
  let e = E.create () in
  let inflight = ref 0 in
  let peak = ref 0 in
  let finished = ref false in
  Fiber.spawn (fun () ->
      ignore
        (Fiber.all ~window:3
           (List.init 10 (fun _ ->
                fun () ->
                  incr inflight;
                  if !inflight > !peak then peak := !inflight;
                  sleep e 1.;
                  decr inflight)));
      finished := true);
  E.run e;
  Alcotest.(check bool) "join completed" true !finished;
  Alcotest.(check int) "window respected" 3 !peak

let test_all_window_one_is_serial () =
  let e = E.create () in
  let log = ref [] in
  Fiber.spawn (fun () ->
      ignore
        (Fiber.all ~window:1
           (List.init 4 (fun i ->
                fun () ->
                  log := (`Start i) :: !log;
                  sleep e 1.;
                  log := (`End i) :: !log))));
  E.run e;
  let expect = List.concat_map (fun i -> [ `Start i; `End i ]) [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "strictly sequential" true (List.rev !log = expect)

let test_all_rejects_nonpositive_window () =
  (* The window bounds in-flight children; zero or negative can never
     launch anything and must be rejected up front, not hang. *)
  List.iter
    (fun w ->
      Alcotest.check_raises
        (Printf.sprintf "window=%d" w)
        (Invalid_argument "Dessim.Fiber.all: window < 1")
        (fun () ->
          Fiber.spawn (fun () ->
              ignore (Fiber.all ~window:w [ (fun () -> ()) ]))))
    [ 0; -1; -7 ]

let test_all_cancellation () =
  let e = E.create () in
  let resumers = ref [] in
  let after_join = ref false in
  let cleaned = ref false in
  Fiber.spawn (fun () ->
      Fun.protect
        ~finally:(fun () -> cleaned := true)
        (fun () ->
          ignore
            (Fiber.all ~window:2
               (List.init 4 (fun i ->
                    fun () ->
                      Fiber.suspend (fun r -> resumers := (i, r) :: !resumers))));
          after_join := true));
  (* Two children launched (window), both suspended. Cancel one, let the
     other complete: the join must re-raise Cancelled in the parent and
     never launch the remaining thunks. *)
  Fiber.cancel (List.assoc 0 !resumers);
  Alcotest.(check bool) "join still waiting" false !cleaned;
  Fiber.resume (List.assoc 1 !resumers) ();
  E.run e;
  Alcotest.(check bool) "parent unwound by Cancelled" true !cleaned;
  Alcotest.(check bool) "code after join skipped" false !after_join;
  Alcotest.(check int) "later thunks never launched" 2
    (List.length !resumers)

let () =
  Alcotest.run "dessim"
    [
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "fifo at same instant" `Quick test_fifo_same_instant;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until horizon" `Quick test_run_until;
          Alcotest.test_case "negative delay rejected" `Quick
            test_negative_delay_rejected;
          Alcotest.test_case "step and pending" `Quick test_step_and_pending;
          Alcotest.test_case "pending is live-only" `Quick test_pending_live_only;
          Alcotest.test_case "compaction under churn" `Quick
            test_compaction_under_churn;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "runs immediately" `Quick test_fiber_runs_immediately;
          Alcotest.test_case "suspend and resume" `Quick test_suspend_resume;
          Alcotest.test_case "double resume no-op" `Quick test_double_resume_noop;
          Alcotest.test_case "cancel unwinds" `Quick test_cancel_unwinds;
          Alcotest.test_case "sequential suspends" `Quick test_sequential_suspends;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        ] );
      ( "fiber-all",
        [
          Alcotest.test_case "results in input order" `Quick
            test_all_results_in_order;
          Alcotest.test_case "synchronous thunks" `Quick
            test_all_synchronous_thunks;
          Alcotest.test_case "window bounds in-flight" `Quick
            test_all_window_bounds_inflight;
          Alcotest.test_case "window=1 is serial" `Quick
            test_all_window_one_is_serial;
          Alcotest.test_case "window < 1 rejected" `Quick
            test_all_rejects_nonpositive_window;
          Alcotest.test_case "cancellation drains and re-raises" `Quick
            test_all_cancellation;
        ] );
    ]
