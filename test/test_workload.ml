(* Tests for workload generators and closed-loop clients. *)

module Gen = Workload.Gen
module Client = Workload.Client

let rng () = Random.State.make [| 21 |]

let test_ranges () =
  List.iter
    (fun spec ->
      let g = Gen.make spec ~capacity_blocks:1000 ~rng:(rng ()) in
      for _ = 1 to 500 do
        let op = Gen.next g in
        Alcotest.(check bool) "lba in range" true
          (op.Gen.lba >= 0 && op.Gen.lba + op.Gen.count <= 1000);
        Alcotest.(check int) "count" spec.Gen.op_blocks op.Gen.count
      done)
    [ Gen.web_server; Gen.oltp; Gen.backup; Gen.ingest;
      { Gen.read_fraction = 0.5; addr = Gen.Uniform; op_blocks = 3 } ]

let test_read_fraction () =
  let g =
    Gen.make
      { Gen.read_fraction = 0.7; addr = Gen.Uniform; op_blocks = 1 }
      ~capacity_blocks:100 ~rng:(rng ())
  in
  let reads = ref 0 in
  let total = 5000 in
  for _ = 1 to total do
    if (Gen.next g).Gen.kind = `Read then incr reads
  done;
  let frac = float_of_int !reads /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "fraction %.3f ~ 0.7" frac)
    true
    (frac > 0.65 && frac < 0.75)

let test_sequential_wraps () =
  let g =
    Gen.make
      { Gen.read_fraction = 1.; addr = Gen.Sequential; op_blocks = 4 }
      ~capacity_blocks:16 ~rng:(rng ())
  in
  let lbas = List.init 8 (fun _ -> (Gen.next g).Gen.lba) in
  Alcotest.(check (list int)) "wraps" [ 0; 4; 8; 12; 0; 4; 8; 12 ] lbas

let test_zipf_skew () =
  let g =
    Gen.make
      { Gen.read_fraction = 1.; addr = Gen.Zipf 1.0; op_blocks = 1 }
      ~capacity_blocks:10_000 ~rng:(rng ())
  in
  let first_decile = ref 0 and total = 20_000 in
  for _ = 1 to total do
    if (Gen.next g).Gen.lba < 1000 then incr first_decile
  done;
  (* Under Zipf(1.0) the first 10% of the space draws far more than
     10% of accesses. *)
  Alcotest.(check bool)
    (Printf.sprintf "first decile got %d/%d" !first_decile total)
    true
    (float_of_int !first_decile /. float_of_int total > 0.3)

let test_hotspot_skew () =
  let g =
    Gen.make
      {
        Gen.read_fraction = 1.;
        addr = Gen.Hotspot { fraction = 0.1; weight = 0.9 };
        op_blocks = 1;
      }
      ~capacity_blocks:1000 ~rng:(rng ())
  in
  let hot = ref 0 and total = 5000 in
  for _ = 1 to total do
    if (Gen.next g).Gen.lba < 100 then incr hot
  done;
  let frac = float_of_int !hot /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "hot fraction %.3f ~ 0.9" frac)
    true
    (frac > 0.85 && frac < 0.95)

let test_validation () =
  Alcotest.check_raises "read fraction"
    (Invalid_argument "Workload.Gen.make: read_fraction out of [0,1]")
    (fun () ->
      ignore
        (Gen.make
           { Gen.read_fraction = 1.5; addr = Gen.Uniform; op_blocks = 1 }
           ~capacity_blocks:10 ~rng:(rng ())));
  Alcotest.check_raises "op_blocks"
    (Invalid_argument "Workload.Gen.make: bad op_blocks") (fun () ->
      ignore
        (Gen.make
           { Gen.read_fraction = 1.; addr = Gen.Uniform; op_blocks = 100 }
           ~capacity_blocks:10 ~rng:(rng ())))

let test_single_client_never_aborts () =
  (* No concurrency, no clock skew: the paper says aborts cannot
     happen. *)
  let v = Fab.Volume.create ~m:3 ~n:5 ~stripes:8 ~block_size:256 () in
  let g =
    Gen.make
      { Gen.read_fraction = 0.5; addr = Gen.Uniform; op_blocks = 2 }
      ~capacity_blocks:(Fab.Volume.capacity_blocks v)
      ~rng:(rng ())
  in
  let stats = Client.fresh_stats () in
  Client.spawn v ~coord:0 ~gen:g ~ops:100 stats;
  Fab.Volume.run v;
  Alcotest.(check int) "all ops ran" 100 stats.Client.ops;
  Alcotest.(check int) "no aborts" 0 stats.Client.aborts;
  Alcotest.(check int) "mix adds up" 100 (stats.Client.reads + stats.Client.writes);
  Alcotest.(check bool) "latency recorded" true
    (Metrics.Summary.count stats.Client.latency = 100);
  Alcotest.(check bool) "latency at least one round trip" true
    (Metrics.Summary.min stats.Client.latency >= 2.)

let test_disjoint_clients_no_aborts () =
  (* Two clients on disjoint halves of the volume: no stripe-level
     conflicts, hence no aborts even with concurrency. *)
  let v = Fab.Volume.create ~m:2 ~n:4 ~stripes:10 ~block_size:256 () in
  let mk lo =
    let g =
      Gen.make
        { Gen.read_fraction = 0.5; addr = Gen.Sequential; op_blocks = 2 }
        ~capacity_blocks:10 ~rng:(rng ())
    in
    ignore lo;
    g
  in
  (* Client 1 covers stripes 0-4 (lbas 0-9), client 2 writes lbas 10-19
     via its own generator offset; we emulate the offset by giving
     client 2 single-block ops on the upper half through a custom
     loop. *)
  let stats1 = Client.fresh_stats () and stats2 = Client.fresh_stats () in
  Client.spawn v ~coord:0 ~gen:(mk 0) ~ops:50 ~payload_tag:'a' stats1;
  Dessim.Fiber.spawn (fun () ->
      for i = 0 to 49 do
        let lba = 10 + (i mod 10) in
        match Fab.Volume.write v ~coord:1 ~lba (Bytes.make 256 'b') with
        | Ok () -> stats2.Client.ops <- stats2.Client.ops + 1
        | Error _ -> stats2.Client.aborts <- stats2.Client.aborts + 1
      done);
  Fab.Volume.run v;
  Alcotest.(check int) "client1 done" 50 stats1.Client.ops;
  Alcotest.(check int) "client1 no aborts" 0 stats1.Client.aborts;
  Alcotest.(check int) "client2 done" 50 stats2.Client.ops;
  Alcotest.(check int) "client2 no aborts" 0 stats2.Client.aborts

let test_stats_helpers () =
  let s = Client.fresh_stats () in
  s.Client.ops <- 10;
  s.Client.aborts <- 1;
  Alcotest.(check (float 1e-9)) "throughput" 2. (Client.throughput s ~elapsed:5.);
  Alcotest.(check (float 1e-9)) "abort rate" 0.1 (Client.abort_rate s);
  let empty = Client.fresh_stats () in
  Alcotest.(check (float 0.)) "empty throughput" 0. (Client.throughput empty ~elapsed:0.);
  Alcotest.(check (float 0.)) "empty abort rate" 0. (Client.abort_rate empty)

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "ranges" `Quick test_ranges;
          Alcotest.test_case "read fraction" `Quick test_read_fraction;
          Alcotest.test_case "sequential wraps" `Quick test_sequential_wraps;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "hotspot skew" `Quick test_hotspot_skew;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "clients",
        [
          Alcotest.test_case "single client never aborts" `Quick
            test_single_client_never_aborts;
          Alcotest.test_case "disjoint clients no aborts" `Quick
            test_disjoint_clients_no_aborts;
          Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
        ] );
    ]
