(* Tests for m-quorum systems (Appendix A) and the quorum RPC. *)

module MQ = Quorum.Mquorum
module Rpc = Quorum.Rpc
module E = Dessim.Engine

(* ------------------------------------------------------------------ *)
(* m-quorum systems                                                    *)
(* ------------------------------------------------------------------ *)

let test_existence_theorem_exhaustive () =
  (* Theorem 2: an m-quorum system exists iff n >= 2f + m. Check the
     canonical construction against a brute-force witness search for
     all small parameters. *)
  for n = 1 to 10 do
    for m = 1 to n do
      for f = 0 to n do
        let claimed = MQ.exists ~n ~m ~f in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d m=%d f=%d" n m f)
          (n >= (2 * f) + m)
          claimed;
        if claimed then begin
          let q = MQ.create_f ~n ~m ~f in
          Alcotest.(check int) "quorum size" (n - f) (MQ.quorum_size q)
        end
        else
          Alcotest.check_raises "create_f rejects"
            (Invalid_argument
               (Printf.sprintf
                  "Quorum.Mquorum: no m-quorum system for n=%d m=%d f=%d (need \
                   n >= 2f+m)"
                  n m f))
            (fun () -> ignore (MQ.create_f ~n ~m ~f))
      done
    done
  done

(* All subsets of size k of [0, n). *)
let rec subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) n)
    @ subsets k (lo + 1) n

let test_consistency_property () =
  (* CONSISTENCY: any two canonical quorums intersect in >= m processes
     (exhaustive over all minimal quorums for small systems). *)
  List.iter
    (fun (n, m) ->
      let q = MQ.create ~n ~m in
      let size = MQ.quorum_size q in
      let quorums = subsets size 0 n in
      List.iter
        (fun q1 ->
          List.iter
            (fun q2 ->
              Alcotest.(check bool) "intersection >= m" true
                (MQ.check_intersection q q1 q2))
            quorums)
        quorums)
    [ (3, 1); (4, 2); (5, 3); (6, 2); (8, 5) ]

let test_availability_property () =
  (* AVAILABILITY: for every f-subset of faulty processes there is a
     quorum avoiding all of them. Canonical quorums are all (n-f)-sets,
     so the complement of any f-set is a quorum. *)
  List.iter
    (fun (n, m) ->
      let q = MQ.create ~n ~m in
      let f = MQ.f q in
      List.iter
        (fun faulty ->
          let alive = List.filter (fun p -> not (List.mem p faulty)) (List.init n Fun.id) in
          Alcotest.(check bool) "complement is quorum" true (MQ.is_quorum q alive))
        (subsets f 0 n))
    [ (3, 1); (5, 3); (8, 5); (7, 3) ]

let test_max_f () =
  Alcotest.(check int) "5-of-8 tolerates 1" 1 (MQ.max_f ~n:8 ~m:5);
  Alcotest.(check int) "3-of-5 tolerates 1" 1 (MQ.max_f ~n:5 ~m:3);
  Alcotest.(check int) "1-of-3 tolerates 1" 1 (MQ.max_f ~n:3 ~m:1);
  Alcotest.(check int) "1-of-5 tolerates 2" 2 (MQ.max_f ~n:5 ~m:1);
  Alcotest.(check int) "2-of-8 tolerates 3" 3 (MQ.max_f ~n:8 ~m:2)

let test_is_quorum_rejects_junk () =
  let q = MQ.create ~n:5 ~m:3 in
  Alcotest.(check bool) "duplicates" false (MQ.is_quorum q [ 0; 0; 1; 2 ]);
  Alcotest.(check bool) "out of range" false (MQ.is_quorum q [ 0; 1; 2; 9 ]);
  Alcotest.(check bool) "too small" false (MQ.is_quorum q [ 0; 1; 2 ]);
  Alcotest.(check bool) "exact quorum" true (MQ.is_quorum q [ 0; 1; 2; 3 ])

let qtest name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name gen f)

let quorum_props =
  [
    qtest "random (n,m): two random quorums intersect in >= m"
      (QCheck.make
         QCheck.Gen.(
           int_range 1 12 >>= fun n ->
           int_range 1 n >>= fun m ->
           let q = MQ.create ~n ~m in
           let size = MQ.quorum_size q in
           let pick st =
             let arr = Array.init n Fun.id in
             for i = n - 1 downto 1 do
               let j = int_bound i st in
               let t = arr.(i) in
               arr.(i) <- arr.(j);
               arr.(j) <- t
             done;
             Array.to_list (Array.sub arr 0 size)
           in
           fun st -> (n, m, pick st, pick st)))
      (fun (n, m, q1, q2) ->
        let q = MQ.create ~n ~m in
        ignore n;
        ignore m;
        MQ.check_intersection q q1 q2);
  ]

(* ------------------------------------------------------------------ *)
(* Quorum RPC                                                          *)
(* ------------------------------------------------------------------ *)

type harness = {
  e : E.t;
  net : ((string, string) Rpc.envelope) Simnet.Net.t;
  rpc : (string, string) Rpc.t;
  bricks : Brick.t array;
}

let harness ?(n = 5) ?(config = Simnet.Net.default_config) () =
  let e = E.create () in
  let metrics = Metrics.Registry.create () in
  let rt = Runtime_sim.of_engine e in
  let net = Simnet.Net.create ~metrics e ~config ~n in
  let rpc =
    Rpc.create ~rt ~transport:(Rpc.of_net net) ~req_bytes:String.length
      ~rep_bytes:String.length ~retry_every:8. ~grace:1. ()
  in
  let bricks = Array.init n (fun id -> Brick.create ~metrics rt ~id) in
  (* Each server echoes with its address unless its brick is down. *)
  Array.iteri
    (fun i b ->
      Rpc.serve rpc ~addr:i (fun ~src:_ ~ctx:_ req ->
          if Brick.is_alive b then Some (Printf.sprintf "%s/%d" req i)
          else None))
    bricks;
  { e; net; rpc; bricks }

let members n = List.init n Fun.id

let test_basic_call () =
  let h = harness () in
  let result = ref None in
  Dessim.Fiber.spawn (fun () ->
      result :=
        Some
          (Rpc.call h.rpc ~coord:h.bricks.(0) ~members:(members 5) ~quorum:4
             (fun _ -> "ping")));
  E.run h.e;
  match !result with
  | Some replies ->
      Alcotest.(check bool) "at least a quorum" true (List.length replies >= 4);
      List.iter
        (fun (src, rep) ->
          Alcotest.(check string) "echo" (Printf.sprintf "ping/%d" src) rep)
        replies;
      Alcotest.(check (float 0.0)) "one round trip" 2. (E.now h.e)
  | None -> Alcotest.fail "call did not complete"

let test_call_with_crashed_members () =
  let h = harness () in
  Brick.crash h.bricks.(3);
  let result = ref None in
  Dessim.Fiber.spawn (fun () ->
      result :=
        Some
          (Rpc.call h.rpc ~coord:h.bricks.(0) ~members:(members 5) ~quorum:4
             (fun _ -> "x")));
  E.run ~until:100. h.e;
  match !result with
  | Some replies ->
      Alcotest.(check int) "quorum of alive" 4 (List.length replies);
      Alcotest.(check bool) "crashed absent" false
        (List.mem_assoc 3 replies)
  | None -> Alcotest.fail "call did not complete"

let test_retransmission_overcomes_loss () =
  let h = harness ~config:{ Simnet.Net.default_config with drop = 0.4 } () in
  let result = ref None in
  Dessim.Fiber.spawn (fun () ->
      result :=
        Some
          (Rpc.call h.rpc ~coord:h.bricks.(1) ~members:(members 5) ~quorum:5
             (fun _ -> "lossy")));
  E.run ~until:10_000. h.e;
  Alcotest.(check bool) "eventually completes" true (!result <> None)

let test_coordinator_crash_cancels () =
  let h = harness () in
  (* No servers installed in a fresh partitioned net would be complex;
     instead partition the coordinator away so the call hangs. *)
  Simnet.Net.partition h.net [ [ 0 ]; [ 1; 2; 3; 4 ] ];
  let cancelled = ref false in
  let completed = ref false in
  Dessim.Fiber.spawn (fun () ->
      match
        Rpc.call h.rpc ~coord:h.bricks.(0) ~members:(members 5) ~quorum:4
          (fun _ -> "doomed")
      with
      | _ -> completed := true
      | exception Dessim.Fiber.Cancelled ->
          cancelled := true;
          raise Dessim.Fiber.Cancelled);
  ignore (E.schedule h.e ~delay:50. (fun () -> Brick.crash h.bricks.(0)));
  E.run ~until:200. h.e;
  Alcotest.(check bool) "not completed" false !completed;
  Alcotest.(check bool) "fiber saw Cancelled" true !cancelled

let test_until_waits_for_target () =
  let h = harness () in
  (* Delay replies from 4 by slowing its link; until-predicate wants 4. *)
  let result = ref None in
  Dessim.Fiber.spawn (fun () ->
      result :=
        Some
          (Rpc.call h.rpc ~coord:h.bricks.(0) ~members:(members 5) ~quorum:3
             ~until:(fun replies -> List.mem_assoc 4 replies)
             (fun _ -> "t")));
  E.run h.e;
  match !result with
  | Some replies -> Alcotest.(check bool) "target included" true (List.mem_assoc 4 replies)
  | None -> Alcotest.fail "no result"

let test_until_gives_up_after_grace () =
  let h = harness () in
  Brick.crash h.bricks.(4);
  let result = ref None in
  Dessim.Fiber.spawn (fun () ->
      result :=
        Some
          (Rpc.call h.rpc ~coord:h.bricks.(0) ~members:(members 5) ~quorum:3
             ~until:(fun replies -> List.mem_assoc 4 replies)
             (fun _ -> "t")));
  E.run ~until:100. h.e;
  match !result with
  | Some replies ->
      Alcotest.(check bool) "settled without target" false (List.mem_assoc 4 replies);
      Alcotest.(check int) "everyone alive answered" 4 (List.length replies)
  | None -> Alcotest.fail "call hung despite grace"

let test_per_destination_requests () =
  let h = harness () in
  let result = ref None in
  Dessim.Fiber.spawn (fun () ->
      result :=
        Some
          (Rpc.call h.rpc ~coord:h.bricks.(2) ~members:(members 5) ~quorum:5
             (fun dst -> Printf.sprintf "req%d" dst)));
  E.run h.e;
  match !result with
  | Some replies ->
      List.iter
        (fun (src, rep) ->
          Alcotest.(check string) "tailored" (Printf.sprintf "req%d/%d" src src) rep)
        replies
  | None -> Alcotest.fail "no result"

let test_notify_is_best_effort () =
  let h = harness () in
  let seen = ref 0 in
  Array.iteri
    (fun i b ->
      Rpc.serve h.rpc ~addr:i (fun ~src:_ ~ctx:_ _ ->
          if Brick.is_alive b then incr seen;
          None))
    h.bricks;
  Rpc.notify h.rpc ~coord:h.bricks.(0) ~members:(members 5) "gc";
  E.run h.e;
  Alcotest.(check int) "all received" 5 !seen

let test_quorum_larger_than_members_rejected () =
  let h = harness () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Quorum.Rpc.call: quorum larger than member count")
    (fun () ->
      Dessim.Fiber.spawn (fun () ->
          ignore
            (Rpc.call h.rpc ~coord:h.bricks.(0) ~members:[ 0; 1 ] ~quorum:3
               (fun _ -> "x"))))

let () =
  Alcotest.run "quorum"
    [
      ( "mquorum",
        [
          Alcotest.test_case "existence theorem (exhaustive)" `Quick
            test_existence_theorem_exhaustive;
          Alcotest.test_case "consistency property" `Quick test_consistency_property;
          Alcotest.test_case "availability property" `Quick test_availability_property;
          Alcotest.test_case "max_f" `Quick test_max_f;
          Alcotest.test_case "is_quorum input validation" `Quick
            test_is_quorum_rejects_junk;
        ]
        @ quorum_props );
      ( "rpc",
        [
          Alcotest.test_case "basic call" `Quick test_basic_call;
          Alcotest.test_case "crashed members skipped" `Quick
            test_call_with_crashed_members;
          Alcotest.test_case "retransmission overcomes loss" `Quick
            test_retransmission_overcomes_loss;
          Alcotest.test_case "coordinator crash cancels" `Quick
            test_coordinator_crash_cancels;
          Alcotest.test_case "until waits for target" `Quick
            test_until_waits_for_target;
          Alcotest.test_case "until gives up after grace" `Quick
            test_until_gives_up_after_grace;
          Alcotest.test_case "per-destination requests" `Quick
            test_per_destination_requests;
          Alcotest.test_case "notify best effort" `Quick test_notify_is_best_effort;
          Alcotest.test_case "quorum bound validated" `Quick
            test_quorum_larger_than_members_rejected;
        ] );
    ]
