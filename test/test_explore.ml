(* Systematic schedule exploration.

   The engine's chooser hook lets a test control which of several
   simultaneous events fires first — exactly the nondeterminism a real
   network exhibits when messages race. Two modes:

   - bounded-exhaustive: enumerate choice sequences depth-first (with a
     budget) and check every explored schedule;
   - randomized: draw many random schedules of a larger scenario.

   Both replay the scenario from scratch per schedule and verify the
   recorded history is strictly linearizable. This complements the
   crash fuzzer: it systematically covers message-ordering races that
   seed-based jitter only samples. *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module H = Linearize.History
module Check = Linearize.Check

let block_size = 16

let value_block s =
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let block_value b =
  match Bytes.index_opt b '\000' with
  | Some 0 -> H.nil
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

(* Run one scenario under the choice function [choose]; returns the
   history. [choose pos alternatives] picks the event index for the
   [pos]'th choice point. *)
let run_scenario ~m ~n ~ops ~choose =
  let cl = Cluster.create ~m ~n ~block_size () in
  let engine = cl.Cluster.engine in
  let h = H.create () in
  let pos = ref 0 in
  Dessim.Engine.set_chooser engine
    (Some
       (fun k ->
         let idx = choose !pos k in
         incr pos;
         idx));
  List.iter
    (fun (coord, delay, op) ->
      ignore
        (Dessim.Engine.schedule engine ~delay (fun () ->
             Dessim.Fiber.spawn (fun () ->
                 let now () = Dessim.Engine.now engine in
                 match op with
                 | `Write value ->
                     let id =
                       H.invoke h ~client:coord ~kind:H.Write ~written:value
                         ~now:(now ()) ()
                     in
                     (* History tracks block 0's projection; the other
                        blocks get distinct filler so decode mixups
                        would be caught as unwritten values. *)
                     let stripe_val =
                       Array.init m (fun i ->
                           if i = 0 then value_block value
                           else value_block (Printf.sprintf "%s#%d" value i))
                     in
                     (match
                        Coordinator.write_stripe cl.Cluster.coordinators.(coord)
                          ~stripe:0 stripe_val
                      with
                     | Ok () -> H.complete_write h id ~now:(now ())
                     | Error _ -> H.abort h id ~now:(now ()))
                 | `Read ->
                     let id =
                       H.invoke h ~client:coord ~kind:H.Read ~now:(now ()) ()
                     in
                     (match
                        Coordinator.read_stripe cl.Cluster.coordinators.(coord)
                          ~stripe:0
                      with
                     | Ok data ->
                         H.complete_read h id ~value:(block_value data.(0))
                           ~now:(now ())
                     | Error _ -> H.abort h id ~now:(now ()))))))
    ops;
  Cluster.run ~horizon:1_000. cl;
  h

(* Bounded-exhaustive DFS over choice sequences. The prefix fixes the
   first choices; beyond it we take 0 and record how many alternatives
   existed, then backtrack from the right. *)
let explore ~m ~n ~ops ~budget check =
  let explored = ref 0 in
  let exhausted = ref false in
  let prefix = ref [||] in
  let continue_ = ref true in
  while !continue_ && !explored < budget do
    incr explored;
    let alternatives = ref [] in
    (* alternatives.(i) = k at choice point i, newest first *)
    let choose pos k =
      alternatives := k :: !alternatives;
      if pos < Array.length !prefix then !prefix.(pos) else 0
    in
    let h = run_scenario ~m ~n ~ops ~choose in
    check h;
    (* Build the taken-choice array for backtracking. *)
    let alts = Array.of_list (List.rev !alternatives) in
    let taken =
      Array.init (Array.length alts) (fun i ->
          if i < Array.length !prefix then !prefix.(i) else 0)
    in
    (* Find the rightmost incrementable position. *)
    let rec findpos i =
      if i < 0 then None
      else if taken.(i) + 1 < alts.(i) then Some i
      else findpos (i - 1)
    in
    match findpos (Array.length alts - 1) with
    | None ->
        exhausted := true;
        continue_ := false
    | Some i ->
        let next = Array.sub taken 0 (i + 1) in
        next.(i) <- next.(i) + 1;
        prefix := next
  done;
  (!explored, !exhausted)

let check_linearizable label h =
  match Check.strict h with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "%s: schedule violates strict linearizability: %a" label
        Check.pp_violation v

let test_exhaustive_concurrent_writes () =
  (* Two concurrent writers on a 1-of-2 register (quorum = both), then
     a read: every interleaving of their message races must be
     linearizable. The scenario is small enough to explore fully. *)
  let ops =
    [ (0, 0., `Write "w1"); (1, 0., `Write "w2"); (0, 50., `Read) ]
  in
  let explored, exhausted =
    explore ~m:1 ~n:2 ~ops ~budget:30_000 (check_linearizable "2 writers")
  in
  Printf.printf "exhaustive 2-writer exploration: %d schedules%s\n" explored
    (if exhausted then " (complete)" else " (budget hit)");
  Alcotest.(check bool) "explored many schedules" true (explored > 100)

let test_exhaustive_write_read_race () =
  let ops = [ (0, 0., `Write "w"); (1, 0., `Read); (1, 50., `Read) ] in
  let explored, exhausted =
    explore ~m:1 ~n:2 ~ops ~budget:30_000
      (check_linearizable "write-read race")
  in
  Printf.printf "exhaustive write/read exploration: %d schedules%s\n" explored
    (if exhausted then " (complete)" else " (budget hit)");
  Alcotest.(check bool) "explored many schedules" true (explored > 100)

let test_exhaustive_staggered_ops () =
  (* Writers starting one delta apart race the first writer's second
     phase against the second writer's first phase. *)
  let ops =
    [ (0, 0., `Write "w1"); (1, 1., `Write "w2"); (2, 30., `Read) ]
  in
  let explored, _ =
    explore ~m:1 ~n:3 ~ops ~budget:8_000 (check_linearizable "staggered")
  in
  Printf.printf "staggered exploration: %d schedules\n" explored;
  Alcotest.(check bool) "explored" true (explored > 50)

let test_random_schedules_erasure () =
  (* Random schedules of a 2-of-4 register under three concurrent
     clients; 400 distinct schedules. *)
  let rng = Random.State.make [| 99 |] in
  for round = 1 to 400 do
    let choose _pos k = Random.State.int rng k in
    let ops =
      [
        (0, 0., `Write (Printf.sprintf "a%d" round));
        (1, 0., `Write (Printf.sprintf "b%d" round));
        (2, 1., `Read);
        (3, 40., `Read);
      ]
    in
    let h = run_scenario ~m:2 ~n:4 ~ops ~choose in
    check_linearizable "random schedule" h
  done

let () =
  Alcotest.run "explore"
    [
      ( "schedules",
        [
          Alcotest.test_case "exhaustive: concurrent writes" `Slow
            test_exhaustive_concurrent_writes;
          Alcotest.test_case "exhaustive: write-read race" `Slow
            test_exhaustive_write_read_race;
          Alcotest.test_case "exhaustive: staggered ops" `Slow
            test_exhaustive_staggered_ops;
          Alcotest.test_case "random schedules (2-of-4)" `Slow
            test_random_schedules_erasure;
        ] );
    ]
