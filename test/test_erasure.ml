(* Tests for the erasure-coding primitives (paper section 2.1). *)

module C = Erasure.Codec

let block_size = 32

let random_stripe rng m =
  Array.init m (fun _ ->
      Bytes.init block_size (fun _ -> Char.chr (Random.State.int rng 256)))

let stripes_equal a b =
  Array.length a = Array.length b && Array.for_all2 Bytes.equal a b

(* All m-subsets of [0, n). *)
let rec subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) n)
    @ subsets k (lo + 1) n

let test_roundtrip_all_subsets () =
  let rng = Random.State.make [| 11 |] in
  let configs = [ (1, 3); (2, 3); (2, 4); (3, 5); (5, 8); (4, 6) ] in
  List.iter
    (fun (m, n) ->
      let codec = if m = 1 then C.replication ~n () else C.rs ~m ~n () in
      let stripe = random_stripe rng m in
      let enc = C.encode codec stripe in
      Alcotest.(check int) "n blocks" n (Array.length enc);
      (* Systematic: first m blocks are the data. *)
      for i = 0 to m - 1 do
        Alcotest.(check bool) "systematic" true (Bytes.equal enc.(i) stripe.(i))
      done;
      List.iter
        (fun subset ->
          let blocks = List.map (fun i -> (i, enc.(i))) subset in
          let dec = C.decode codec blocks in
          Alcotest.(check bool)
            (Printf.sprintf "decode (%d,%d) from [%s]" m n
               (String.concat "," (List.map string_of_int subset)))
            true (stripes_equal dec stripe))
        (subsets m 0 n))
    configs

let test_parity_codec_is_xor () =
  let rng = Random.State.make [| 12 |] in
  let m = 4 in
  let codec = C.parity ~m () in
  let stripe = random_stripe rng m in
  let enc = C.encode codec stripe in
  let xor = Bytes.make block_size '\000' in
  Array.iter
    (fun b ->
      Bytes.iteri
        (fun i c ->
          Bytes.set xor i (Char.chr (Char.code (Bytes.get xor i) lxor Char.code c)))
        b)
    stripe;
  Alcotest.(check bool) "parity block is xor of data" true
    (Bytes.equal enc.(m) xor)

let test_replication_copies () =
  let codec = C.replication ~n:4 () in
  let b = Bytes.make block_size 'x' in
  let enc = C.encode codec [| b |] in
  Array.iter
    (fun blk -> Alcotest.(check bool) "copy" true (Bytes.equal blk b))
    enc

let test_modify_equals_reencode () =
  let rng = Random.State.make [| 13 |] in
  List.iter
    (fun (m, n) ->
      let codec = if n = m + 1 then C.parity ~m () else C.rs ~m ~n () in
      let stripe = random_stripe rng m in
      let enc = C.encode codec stripe in
      for j = 0 to m - 1 do
        let stripe' = Array.map Bytes.copy stripe in
        stripe'.(j) <- Bytes.init block_size (fun _ -> Char.chr (Random.State.int rng 256));
        let enc' = C.encode codec stripe' in
        for p = 0 to n - m - 1 do
          let via_modify =
            C.modify codec ~data_idx:j ~parity_idx:p ~old_data:stripe.(j)
              ~new_data:stripe'.(j) ~old_parity:enc.(m + p)
          in
          Alcotest.(check bool)
            (Printf.sprintf "modify (%d,%d) j=%d p=%d" m n j p)
            true
            (Bytes.equal via_modify enc'.(m + p))
        done
      done)
    [ (3, 5); (5, 8); (2, 3); (4, 5) ]

let test_delta_composition () =
  let rng = Random.State.make [| 14 |] in
  let codec = C.rs ~m:5 ~n:8 () in
  let stripe = random_stripe rng 5 in
  let enc = C.encode codec stripe in
  let new_b = Bytes.init block_size (fun _ -> Char.chr (Random.State.int rng 256)) in
  let delta = C.delta ~old_data:stripe.(2) ~new_data:new_b in
  for p = 0 to 2 do
    let direct =
      C.modify codec ~data_idx:2 ~parity_idx:p ~old_data:stripe.(2)
        ~new_data:new_b ~old_parity:enc.(5 + p)
    in
    let via_delta =
      C.apply_delta codec ~data_idx:2 ~parity_idx:p ~delta
        ~old_parity:enc.(5 + p)
    in
    Alcotest.(check bool) "delta path equals modify" true
      (Bytes.equal direct via_delta)
  done

let test_reconstruct_block () =
  let rng = Random.State.make [| 15 |] in
  let codec = C.rs ~m:3 ~n:6 () in
  let stripe = random_stripe rng 3 in
  let enc = C.encode codec stripe in
  (* Rebuild every block from the "other" blocks. *)
  for idx = 0 to 5 do
    let others =
      List.filteri (fun i _ -> i <> idx) (Array.to_list (Array.mapi (fun i b -> (i, b)) enc))
    in
    let from = List.filteri (fun i _ -> i < 3) others in
    let rebuilt = C.reconstruct_block codec ~idx from in
    Alcotest.(check bool)
      (Printf.sprintf "rebuild block %d" idx)
      true
      (Bytes.equal rebuilt enc.(idx))
  done

let test_coeff_systematic () =
  let codec = C.rs ~m:4 ~n:7 () in
  for r = 0 to 3 do
    for c = 0 to 3 do
      Alcotest.(check int) "identity top" (if r = c then 1 else 0)
        (C.coeff codec ~row:r ~col:c)
    done
  done;
  (* Parity rows must be dense (no zero coefficients for Cauchy). *)
  for r = 4 to 6 do
    for c = 0 to 3 do
      Alcotest.(check bool) "nonzero parity coeff" true
        (C.coeff codec ~row:r ~col:c <> 0)
    done
  done

(* ------------------------------------------------------------------ *)
(* The [_into] variants must be byte-for-byte equivalent to the
   allocating API: same planes, same plans, just caller-owned buffers.
   Lengths deliberately include values that are not multiples of 4 or 8
   so the wide-word kernels' scalar tails are exercised.               *)
(* ------------------------------------------------------------------ *)

let into_lengths = [ 5; 12; 29; block_size ]

let random_stripe_len rng m len =
  Array.init m (fun _ ->
      Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)))

let test_into_equals_allocating () =
  let rng = Random.State.make [| 21 |] in
  let configs = [ (2, 4); (3, 5); (5, 8) ] in
  List.iter
    (fun (m, n) ->
      let codec = C.rs ~m ~n () in
      List.iter
        (fun len ->
          let stripe = random_stripe_len rng m len in
          (* encode_into vs encode *)
          let enc = C.encode codec stripe in
          let enc' = Array.init n (fun _ -> Bytes.create len) in
          C.encode_into codec stripe ~into:enc';
          Alcotest.(check bool)
            (Printf.sprintf "encode_into (%d,%d) len=%d" m n len)
            true (stripes_equal enc enc');
          List.iter
            (fun subset ->
              let blocks = List.map (fun i -> (i, enc.(i))) subset in
              (* decode_into vs decode *)
              let dec = C.decode codec blocks in
              let dec' = Array.init m (fun _ -> Bytes.create len) in
              C.decode_into codec blocks ~into:dec';
              Alcotest.(check bool)
                (Printf.sprintf "decode_into (%d,%d) len=%d [%s]" m n len
                   (String.concat "," (List.map string_of_int subset)))
                true (stripes_equal dec dec');
              (* reconstruct_into vs reconstruct_block, for every
                 target not in the surviving subset *)
              for idx = 0 to n - 1 do
                if not (List.mem idx subset) then begin
                  let rebuilt = C.reconstruct_block codec ~idx blocks in
                  let into = Bytes.create len in
                  C.reconstruct_into codec ~idx blocks ~into;
                  Alcotest.(check bool)
                    (Printf.sprintf "reconstruct_into (%d,%d) len=%d idx=%d"
                       m n len idx)
                    true (Bytes.equal rebuilt into)
                end
              done)
            (subsets m 0 n))
        into_lengths)
    configs

let test_encode_into_aliased_data () =
  (* Data slots of [into] may be the very stripe blocks themselves. *)
  let rng = Random.State.make [| 22 |] in
  List.iter
    (fun len ->
      let m = 3 and n = 5 in
      let codec = C.rs ~m ~n () in
      let stripe = random_stripe_len rng m len in
      let expected = C.encode codec stripe in
      let into =
        Array.init n (fun i -> if i < m then stripe.(i) else Bytes.create len)
      in
      C.encode_into codec stripe ~into;
      Alcotest.(check bool)
        (Printf.sprintf "aliased encode_into len=%d" len)
        true (stripes_equal expected into))
    into_lengths

let test_delta_into_equals_delta () =
  let rng = Random.State.make [| 23 |] in
  List.iter
    (fun len ->
      let codec = C.rs ~m:4 ~n:7 () in
      let stripe = random_stripe_len rng 4 len in
      let enc = C.encode codec stripe in
      let new_b = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
      let d = C.delta ~old_data:stripe.(1) ~new_data:new_b in
      let d' = Bytes.create len in
      C.delta_into ~old_data:stripe.(1) ~new_data:new_b ~into:d';
      Alcotest.(check bool)
        (Printf.sprintf "delta_into len=%d" len)
        true (Bytes.equal d d');
      (* In-place form: into = new_data. *)
      let d'' = Bytes.copy new_b in
      C.delta_into ~old_data:stripe.(1) ~new_data:d'' ~into:d'';
      Alcotest.(check bool)
        (Printf.sprintf "delta_into in place len=%d" len)
        true (Bytes.equal d d'');
      for p = 0 to 2 do
        let via_apply =
          C.apply_delta codec ~data_idx:1 ~parity_idx:p ~delta:d
            ~old_parity:enc.(4 + p)
        in
        let parity = Bytes.copy enc.(4 + p) in
        C.apply_delta_into codec ~data_idx:1 ~parity_idx:p ~delta:d ~parity;
        Alcotest.(check bool)
          (Printf.sprintf "apply_delta_into len=%d p=%d" len p)
          true
          (Bytes.equal via_apply parity)
      done)
    into_lengths

let test_plan_cache () =
  let rng = Random.State.make [| 24 |] in
  let m = 3 and n = 6 in
  let codec = C.rs ~m ~n () in
  let stripe = random_stripe rng m in
  let enc = C.encode codec stripe in
  C.reset_plan_cache codec;
  Alcotest.(check (triple int int int)) "fresh cache" (0, 0, 0)
    (C.plan_cache_stats codec);
  let blocks = [ (1, enc.(1)); (3, enc.(3)); (5, enc.(5)) ] in
  ignore (C.decode codec blocks);
  Alcotest.(check (triple int int int)) "first decode misses" (0, 1, 1)
    (C.plan_cache_stats codec);
  ignore (C.decode codec blocks);
  (* Same index set in a different order hits the same plan. *)
  ignore (C.decode codec [ (5, enc.(5)); (1, enc.(1)); (3, enc.(3)) ]);
  Alcotest.(check (triple int int int)) "repeats hit" (2, 1, 1)
    (C.plan_cache_stats codec);
  ignore (C.decode codec [ (0, enc.(0)); (2, enc.(2)); (4, enc.(4)) ]);
  Alcotest.(check (triple int int int)) "new subset misses" (2, 2, 2)
    (C.plan_cache_stats codec);
  (* Reconstruction reuses the same plan cache. *)
  ignore (C.reconstruct_block codec ~idx:0 blocks);
  let hits, misses, entries = C.plan_cache_stats codec in
  Alcotest.(check (pair int int)) "reconstruct hits cached plan" (3, 2)
    (hits, misses);
  Alcotest.(check int) "entries stable" 2 entries;
  C.reset_plan_cache codec;
  Alcotest.(check (triple int int int)) "reset" (0, 0, 0)
    (C.plan_cache_stats codec);
  (* Results are identical whether the plan is cached or rebuilt. *)
  let a = C.decode codec blocks in
  let b = C.decode codec blocks in
  Alcotest.(check bool) "cached plan same result" true (stripes_equal a b)

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let stripe_gen m =
  QCheck.map
    (fun s ->
      let s = Bytes.of_string s in
      Array.init m (fun i -> Bytes.sub s (i * 8) 8))
    (QCheck.string_of_size (QCheck.Gen.return (m * 8)))

let prop_tests =
  [
    qtest "rs(3,5): decode any parity-heavy subset"
      (QCheck.pair (stripe_gen 3) (QCheck.int_range 0 9))
      (fun (stripe, pick) ->
        let codec = C.rs ~m:3 ~n:5 () in
        let enc = C.encode codec stripe in
        let all = subsets 3 0 5 in
        let subset = List.nth all (pick mod List.length all) in
        let dec = C.decode codec (List.map (fun i -> (i, enc.(i))) subset) in
        Array.for_all2 Bytes.equal dec stripe);
    qtest "rs(5,8): encode deterministic" (stripe_gen 5) (fun stripe ->
        let codec = C.rs ~m:5 ~n:8 () in
        let a = C.encode codec stripe and b = C.encode codec stripe in
        Array.for_all2 Bytes.equal a b);
    qtest "delta of equal blocks is zero" (stripe_gen 1) (fun s ->
        let d = C.delta ~old_data:s.(0) ~new_data:s.(0) in
        Bytes.for_all (fun c -> c = '\000') d);
  ]

let test_errors () =
  let codec = C.rs ~m:3 ~n:5 () in
  let stripe = Array.init 3 (fun _ -> Bytes.make 8 'a') in
  let enc = C.encode codec stripe in
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Erasure.Codec.encode: expected 3 blocks, got 2")
    (fun () -> ignore (C.encode codec [| Bytes.create 8; Bytes.create 8 |]));
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Erasure.Codec.encode: block size mismatch") (fun () ->
      ignore (C.encode codec [| Bytes.create 8; Bytes.create 8; Bytes.create 9 |]));
  Alcotest.check_raises "decode duplicate index"
    (Invalid_argument "Erasure.Codec.decode: duplicate index") (fun () ->
      ignore (C.decode codec [ (0, enc.(0)); (0, enc.(0)); (1, enc.(1)) ]));
  Alcotest.check_raises "decode bad index"
    (Invalid_argument "Erasure.Codec.decode: index out of range") (fun () ->
      ignore (C.decode codec [ (0, enc.(0)); (1, enc.(1)); (9, enc.(2)) ]));
  Alcotest.check_raises "rs m >= n"
    (Invalid_argument "Erasure.Codec.rs: need 1 <= m < n <= 256") (fun () ->
      ignore (C.rs ~m:5 ~n:5 ()));
  Alcotest.check_raises "replication n < 2"
    (Invalid_argument "Erasure.Codec.replication: need n >= 2") (fun () ->
      ignore (C.replication ~n:1 ()))

let test_pp () =
  Alcotest.(check string) "pp rs" "rs(5,8)"
    (Format.asprintf "%a" C.pp (C.rs ~m:5 ~n:8 ()));
  Alcotest.(check string) "pp parity" "parity(4,5)"
    (Format.asprintf "%a" C.pp (C.parity ~m:4 ()));
  Alcotest.(check string) "pp replication" "replication(1,3)"
    (Format.asprintf "%a" C.pp (C.replication ~n:3 ()))

(* ------------------------------------------------------------------ *)
(* Kernel backends: every available GF(2^8) kernel must produce
   byte-identical codec results.                                       *)
(* ------------------------------------------------------------------ *)

module K = Gf256.Kernel

(* rs(5,8) under every kernel: identical encodings, identical decodes
   over every m-subset of survivors, identical reconstruction of every
   block. Lengths include non-multiples of 8/16/32 so each kernel's
   tail handling is exercised. *)
let test_kernels_byte_identical () =
  let rng = Random.State.make [| 61 |] in
  let m = 5 and n = 8 in
  let impls = K.available_impls () in
  let codecs = List.map (fun k -> (k, C.rs ~kernel:k ~m ~n ())) impls in
  List.iter
    (fun len ->
      let stripe = random_stripe_len rng m len in
      let reference = C.encode (List.assoc K.Scalar codecs) stripe in
      List.iter
        (fun (impl, codec) ->
          Alcotest.(check string)
            "kernel_name reflects request" (K.name impl)
            (C.kernel_name codec);
          let enc = C.encode codec stripe in
          if not (stripes_equal enc reference) then
            Alcotest.failf "%s encode len=%d diverges from scalar"
              (K.name impl) len;
          List.iter
            (fun subset ->
              let blocks = List.map (fun i -> (i, enc.(i))) subset in
              let dec = C.decode codec blocks in
              if not (stripes_equal dec stripe) then
                Alcotest.failf "%s decode len=%d [%s] wrong" (K.name impl) len
                  (String.concat "," (List.map string_of_int subset));
              List.iter
                (fun idx ->
                  if not (List.mem idx subset) then
                    let rebuilt = C.reconstruct_block codec ~idx blocks in
                    if not (Bytes.equal rebuilt enc.(idx)) then
                      Alcotest.failf "%s reconstruct %d len=%d [%s] wrong"
                        (K.name impl) idx len
                        (String.concat "," (List.map string_of_int subset)))
                (List.init n Fun.id))
            (subsets m 0 n))
        codecs)
    [ 13; 32; 100 ]

(* The batched multi-delta fold equals sequential single-delta folds,
   under every kernel and for every batch size. *)
let test_apply_deltas_batched () =
  let rng = Random.State.make [| 62 |] in
  let m = 5 and n = 8 in
  let len = 57 in
  List.iter
    (fun impl ->
      let codec = C.rs ~kernel:impl ~m ~n () in
      let stripe = random_stripe_len rng m len in
      let enc = C.encode codec stripe in
      List.iter
        (fun batch ->
          let deltas =
            Array.init batch (fun i ->
                ( (i * 2) mod m,
                  Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))
                ))
          in
          for p = 0 to n - m - 1 do
            let expected = Bytes.copy enc.(m + p) in
            Array.iter
              (fun (data_idx, d) ->
                C.apply_delta_into codec ~data_idx ~parity_idx:p ~delta:d
                  ~parity:expected)
              deltas;
            let batched = Bytes.copy enc.(m + p) in
            C.apply_deltas_into codec ~parity_idx:p ~deltas ~parity:batched;
            if not (Bytes.equal batched expected) then
              Alcotest.failf "%s batched deltas (batch=%d, p=%d) diverge"
                (K.name impl) batch p
          done)
        [ 0; 1; 2; 3; 5 ])
    (K.available_impls ())

(* Codec construction honours the FAB_GF_KERNEL override and rejects
   unknown names (same contract as Gf256.Kernel.default). *)
let test_codec_kernel_env () =
  List.iter
    (fun impl ->
      Unix.putenv K.env_var (K.name impl);
      let codec = C.rs ~m:3 ~n:5 () in
      Alcotest.(check string) "env-forced codec kernel" (K.name impl)
        (C.kernel_name codec))
    (K.available_impls ());
  Unix.putenv K.env_var "bogus";
  (try
     ignore (C.rs ~m:3 ~n:5 ());
     Alcotest.fail "unknown kernel accepted"
   with Invalid_argument _ -> ());
  Unix.putenv K.env_var "";
  let codec = C.rs ~m:3 ~n:5 () in
  Alcotest.(check string) "empty env falls back to best"
    (K.name (K.best_available ()))
    (C.kernel_name codec)

let test_large_code () =
  (* A wide code near the field-size limit still round-trips. *)
  let rng = Random.State.make [| 16 |] in
  let m = 20 and n = 36 in
  let codec = C.rs ~m ~n () in
  let stripe = random_stripe rng m in
  let enc = C.encode codec stripe in
  (* Decode from the last m blocks (all parity-heavy). *)
  let blocks = List.init m (fun i -> (n - m + i, enc.(n - m + i))) in
  Alcotest.(check bool) "wide code roundtrip" true
    (stripes_equal (C.decode codec blocks) stripe)

let () =
  Alcotest.run "erasure"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "all m-subsets decode" `Quick
            test_roundtrip_all_subsets;
          Alcotest.test_case "parity is xor" `Quick test_parity_codec_is_xor;
          Alcotest.test_case "replication copies" `Quick test_replication_copies;
          Alcotest.test_case "wide code" `Quick test_large_code;
        ] );
      ( "modify",
        [
          Alcotest.test_case "modify equals re-encode" `Quick
            test_modify_equals_reencode;
          Alcotest.test_case "delta composition" `Quick test_delta_composition;
          Alcotest.test_case "reconstruct block" `Quick test_reconstruct_block;
          Alcotest.test_case "coeff exposes generator" `Quick test_coeff_systematic;
        ] );
      ( "into",
        [
          Alcotest.test_case "_into equals allocating API" `Quick
            test_into_equals_allocating;
          Alcotest.test_case "encode_into aliased data slots" `Quick
            test_encode_into_aliased_data;
          Alcotest.test_case "delta_into / apply_delta_into" `Quick
            test_delta_into_equals_delta;
          Alcotest.test_case "plan cache stats" `Quick test_plan_cache;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "all kernels byte-identical" `Quick
            test_kernels_byte_identical;
          Alcotest.test_case "batched deltas equal sequential" `Quick
            test_apply_deltas_batched;
          Alcotest.test_case "FAB_GF_KERNEL env override" `Quick
            test_codec_kernel_env;
        ] );
      ("properties", prop_tests);
      ( "errors",
        [
          Alcotest.test_case "input validation" `Quick test_errors;
          Alcotest.test_case "pretty-printing" `Quick test_pp;
        ] );
    ]
