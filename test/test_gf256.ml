(* Tests for GF(2^8) arithmetic and matrices. *)

module F = Gf256.Field
module M = Gf256.Matrix

let elem = QCheck.int_range 0 255
let nonzero = QCheck.int_range 1 255

let qtest ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Field axioms                                                        *)
(* ------------------------------------------------------------------ *)

let field_axioms =
  [
    qtest "add is xor" (QCheck.pair elem elem) (fun (a, b) ->
        F.add a b = a lxor b);
    qtest "add commutative" (QCheck.pair elem elem) (fun (a, b) ->
        F.add a b = F.add b a);
    qtest "mul commutative" (QCheck.pair elem elem) (fun (a, b) ->
        F.mul a b = F.mul b a);
    qtest "mul associative" (QCheck.triple elem elem elem) (fun (a, b, c) ->
        F.mul a (F.mul b c) = F.mul (F.mul a b) c);
    qtest "distributivity" (QCheck.triple elem elem elem) (fun (a, b, c) ->
        F.mul a (F.add b c) = F.add (F.mul a b) (F.mul a c));
    qtest "one is identity" elem (fun a -> F.mul 1 a = a);
    qtest "zero annihilates" elem (fun a -> F.mul 0 a = 0);
    qtest "sub equals add" (QCheck.pair elem elem) (fun (a, b) ->
        F.sub a b = F.add a b);
    qtest "inverse" nonzero (fun a -> F.mul a (F.inv a) = 1);
    qtest "div by self" nonzero (fun a -> F.div a a = 1);
    qtest "div inverse of mul" (QCheck.pair elem nonzero) (fun (a, b) ->
        F.div (F.mul a b) b = a);
    qtest "pow 2 is square" elem (fun a -> F.pow a 2 = F.mul a a);
    qtest "pow adds exponents" (QCheck.pair nonzero (QCheck.int_range 0 30))
      (fun (a, k) -> F.mul (F.pow a k) (F.pow a 3) = F.pow a (k + 3));
    qtest "exp/log roundtrip" nonzero (fun a -> F.exp_table (F.log_table a) = a);
    qtest "frobenius: (a+b)^2 = a^2 + b^2" (QCheck.pair elem elem)
      (fun (a, b) -> F.pow (F.add a b) 2 = F.add (F.pow a 2) (F.pow b 2));
  ]

let test_sentinel_errors () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (F.inv 0));
  Alcotest.check_raises "div by 0" Division_by_zero (fun () ->
      ignore (F.div 3 0));
  check_int "div 0 b" 0 (F.div 0 7);
  check_int "pow 0 0 = 1" 1 (F.pow 0 0);
  check_int "pow 0 5 = 0" 0 (F.pow 0 5);
  Alcotest.check_raises "pow negative"
    (Invalid_argument "Gf256.Field.pow: negative exponent") (fun () ->
      ignore (F.pow 2 (-1)))

let test_generator_order () =
  (* 2 generates the multiplicative group: the powers 2^0..2^254 are
     all distinct. *)
  let seen = Array.make 256 false in
  for i = 0 to 254 do
    let x = F.exp_table i in
    Alcotest.(check bool) "no repeat" false seen.(x);
    seen.(x) <- true
  done;
  check_int "2^255 wraps to 1" 1 (F.exp_table 255)

let test_check_element () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Gf256.Field: element -1 out of range") (fun () ->
      F.check_element (-1));
  F.check_element 0;
  F.check_element 255;
  (* The scalar entry points validate their arguments instead of
     reading out of table bounds. *)
  Alcotest.check_raises "mul out of range"
    (Invalid_argument "Gf256.Field: element 256 out of range") (fun () ->
      ignore (F.mul 256 3));
  Alcotest.check_raises "inv out of range"
    (Invalid_argument "Gf256.Field: element -2 out of range") (fun () ->
      ignore (F.inv (-2)));
  Alcotest.check_raises "div out of range"
    (Invalid_argument "Gf256.Field: element 300 out of range") (fun () ->
      ignore (F.div 1 300))

(* ------------------------------------------------------------------ *)
(* Byte-slice operations                                               *)
(* ------------------------------------------------------------------ *)

let bytes_gen =
  QCheck.map Bytes.of_string (QCheck.string_of_size (QCheck.Gen.return 64))

let slice_tests =
  [
    qtest "mul_slice_set matches scalar mul" (QCheck.pair bytes_gen elem)
      (fun (src, c) ->
        let dst = Bytes.make (Bytes.length src) '\255' in
        F.mul_slice_set ~dst ~src c;
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            if Char.code x <> F.mul c (Char.code (Bytes.get src i)) then
              ok := false)
          dst;
        !ok);
    qtest "mul_slice accumulates" (QCheck.triple bytes_gen bytes_gen elem)
      (fun (dst0, src, c) ->
        let dst = Bytes.copy dst0 in
        F.mul_slice ~dst ~src c;
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            let expected =
              F.add
                (Char.code (Bytes.get dst0 i))
                (F.mul c (Char.code (Bytes.get src i)))
            in
            if Char.code x <> expected then ok := false)
          dst;
        !ok);
    qtest "mul_slice by 0 is no-op" bytes_gen (fun src ->
        let dst = Bytes.copy src in
        F.mul_slice ~dst ~src 0;
        Bytes.equal dst src);
    qtest "mul_slice by 1 xors" (QCheck.pair bytes_gen bytes_gen)
      (fun (dst0, src) ->
        let dst = Bytes.copy dst0 in
        F.mul_slice ~dst ~src 1;
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            if
              Char.code x
              <> Char.code (Bytes.get dst0 i) lxor Char.code (Bytes.get src i)
            then ok := false)
          dst;
        !ok);
  ]

let test_slice_length_mismatch () =
  let a = Bytes.create 4 and b = Bytes.create 5 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Gf256.Field.mul_slice: length mismatch") (fun () ->
      F.mul_slice ~dst:a ~src:b 3);
  let c = Bytes.create 4 in
  Alcotest.check_raises "bad table"
    (Invalid_argument "Gf256.Field.mul_table_slice: not a 256-entry table")
    (fun () -> F.mul_table_slice ~dst:a ~src:c (Bytes.create 16))

(* Every coefficient's cached product table must agree with scalar
   multiplication on all 256 field values. *)
let test_mul_table_agrees () =
  for c = 0 to 255 do
    let table = F.mul_table c in
    Alcotest.(check int) "table length" 256 (Bytes.length table);
    for v = 0 to 255 do
      if Char.code (Bytes.get table v) <> F.mul c v then
        Alcotest.failf "mul_table %d disagrees with mul at %d" c v
    done;
    (* The cache hands back the same buffer on repeated calls. *)
    Alcotest.(check bool) "cached" true (F.mul_table c == table)
  done

(* The wide-word kernels must be bit-identical to the byte-at-a-time
   definition on every length class: 64-bit body, scalar tail, and
   lengths below one word. *)
let slice_lengths = [ 1; 3; 7; 8; 9; 15; 16; 17; 63; 64; 65; 257 ]

let test_wide_kernels_match_reference () =
  let rng = Random.State.make [| 21 |] in
  let random_bytes len =
    Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))
  in
  List.iter
    (fun len ->
      List.iter
        (fun c ->
          let src = random_bytes len in
          let dst0 = random_bytes len in
          (* Accumulating kernel vs scalar reference. *)
          let dst = Bytes.copy dst0 in
          F.mul_slice ~dst ~src c;
          for i = 0 to len - 1 do
            let expected =
              F.add
                (Char.code (Bytes.get dst0 i))
                (F.mul c (Char.code (Bytes.get src i)))
            in
            if Char.code (Bytes.get dst i) <> expected then
              Alcotest.failf "mul_slice len=%d c=%d mismatch at %d" len c i
          done;
          (* Overwriting kernel. *)
          let dst = Bytes.copy dst0 in
          F.mul_slice_set ~dst ~src c;
          for i = 0 to len - 1 do
            if
              Char.code (Bytes.get dst i)
              <> F.mul c (Char.code (Bytes.get src i))
            then
              Alcotest.failf "mul_slice_set len=%d c=%d mismatch at %d" len c i
          done;
          (* The raw table kernels (what encode/decode plans call). *)
          if c >= 2 then begin
            let table = F.mul_table c in
            let dst = Bytes.copy dst0 in
            F.mul_table_slice ~dst ~src table;
            let dst' = Bytes.copy dst0 in
            F.mul_slice ~dst:dst' ~src c;
            if not (Bytes.equal dst dst') then
              Alcotest.failf "mul_table_slice len=%d c=%d diverges" len c
          end)
        [ 0; 1; 2; 29; 173; 255 ])
    slice_lengths

(* ------------------------------------------------------------------ *)
(* Matrices                                                            *)
(* ------------------------------------------------------------------ *)

let random_matrix rng ~rows ~cols =
  M.init ~rows ~cols (fun _ _ -> Random.State.int rng 256)

let test_identity_mul () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int rng 8 in
    let a = random_matrix rng ~rows:n ~cols:n in
    Alcotest.(check bool) "I*A = A" true (M.equal (M.mul (M.identity n) a) a);
    Alcotest.(check bool) "A*I = A" true (M.equal (M.mul a (M.identity n)) a)
  done

let test_mul_vec_agrees () =
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 20 do
    let rows = 1 + Random.State.int rng 6 in
    let cols = 1 + Random.State.int rng 6 in
    let a = random_matrix rng ~rows ~cols in
    let v = Array.init cols (fun _ -> Random.State.int rng 256) in
    let vm = M.init ~rows:cols ~cols:1 (fun r _ -> v.(r)) in
    let prod = M.mul a vm in
    let pv = M.mul_vec a v in
    for r = 0 to rows - 1 do
      check_int "entry" (M.get prod r 0) pv.(r)
    done
  done

let test_invert_roundtrip () =
  let rng = Random.State.make [| 9 |] in
  let tried = ref 0 and inverted = ref 0 in
  while !inverted < 25 && !tried < 500 do
    incr tried;
    let n = 1 + Random.State.int rng 7 in
    let a = random_matrix rng ~rows:n ~cols:n in
    match M.invert a with
    | None -> ()
    | Some inv ->
        incr inverted;
        Alcotest.(check bool) "A * A^-1 = I" true
          (M.equal (M.mul a inv) (M.identity n));
        Alcotest.(check bool) "A^-1 * A = I" true
          (M.equal (M.mul inv a) (M.identity n))
  done;
  Alcotest.(check bool) "found invertible samples" true (!inverted >= 25)

let test_singular () =
  let z = M.create ~rows:3 ~cols:3 in
  Alcotest.(check (option reject)) "zero singular" None
    (Option.map ignore (M.invert z));
  (* Two equal rows. *)
  let a = M.init ~rows:2 ~cols:2 (fun _ c -> c + 1) in
  Alcotest.(check (option reject)) "rank deficient" None
    (Option.map ignore (M.invert a))

let test_cauchy_submatrices_invertible () =
  let xs = Array.init 4 (fun i -> 10 + i) in
  let ys = Array.init 4 (fun j -> j) in
  let c = M.cauchy ~xs ~ys in
  (* Every square submatrix of a Cauchy matrix is invertible; check all
     2x2 submatrices. *)
  for r1 = 0 to 3 do
    for r2 = r1 + 1 to 3 do
      for c1 = 0 to 3 do
        for c2 = c1 + 1 to 3 do
          let sub =
            M.init ~rows:2 ~cols:2 (fun r cc ->
                M.get c
                  (if r = 0 then r1 else r2)
                  (if cc = 0 then c1 else c2))
          in
          Alcotest.(check bool) "2x2 invertible" true (M.invert sub <> None)
        done
      done
    done
  done

let test_cauchy_overlap_rejected () =
  Alcotest.check_raises "xs/ys overlap"
    (Invalid_argument "Gf256.Matrix.cauchy: xs and ys are not disjoint")
    (fun () -> ignore (M.cauchy ~xs:[| 1; 2 |] ~ys:[| 2; 3 |]))

let test_vandermonde () =
  let v = M.vandermonde ~rows:5 ~cols:3 in
  check_int "v[0][0]" 1 (M.get v 0 0);
  check_int "v[0][2]" 0 (M.get v 0 2);
  check_int "v[2][1]" 2 (M.get v 2 1);
  check_int "v[3][2]" (F.mul 3 3) (M.get v 3 2)

let test_sub_rows () =
  let a = M.init ~rows:4 ~cols:2 (fun r c -> (r * 2) + c) in
  let b = M.sub_rows a [ 3; 1 ] in
  check_int "rows" 2 (M.rows b);
  check_int "b[0][0]" 6 (M.get b 0 0);
  check_int "b[1][1]" 3 (M.get b 1 1)

let test_bounds () =
  let a = M.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Gf256.Matrix: index (2,0) out of 2x2") (fun () ->
      ignore (M.get a 2 0));
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Gf256.Matrix.create: bad shape") (fun () ->
      ignore (M.create ~rows:0 ~cols:3))

let () =
  Alcotest.run "gf256"
    [
      ("field-axioms", field_axioms);
      ( "field-unit",
        [
          Alcotest.test_case "sentinel errors" `Quick test_sentinel_errors;
          Alcotest.test_case "generator order" `Quick test_generator_order;
          Alcotest.test_case "check_element" `Quick test_check_element;
        ] );
      ( "slices",
        slice_tests
        @ [
            Alcotest.test_case "length mismatch" `Quick
              test_slice_length_mismatch;
            Alcotest.test_case "mul_table agrees with mul" `Quick
              test_mul_table_agrees;
            Alcotest.test_case "wide kernels match reference" `Quick
              test_wide_kernels_match_reference;
          ] );
      ( "matrix",
        [
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "mul_vec agrees with mul" `Quick test_mul_vec_agrees;
          Alcotest.test_case "invert roundtrip" `Quick test_invert_roundtrip;
          Alcotest.test_case "singular detected" `Quick test_singular;
          Alcotest.test_case "cauchy submatrices invertible" `Quick
            test_cauchy_submatrices_invertible;
          Alcotest.test_case "cauchy overlap rejected" `Quick
            test_cauchy_overlap_rejected;
          Alcotest.test_case "vandermonde entries" `Quick test_vandermonde;
          Alcotest.test_case "sub_rows" `Quick test_sub_rows;
          Alcotest.test_case "bounds checking" `Quick test_bounds;
        ] );
    ]
