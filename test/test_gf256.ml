(* Tests for GF(2^8) arithmetic and matrices. *)

module F = Gf256.Field
module M = Gf256.Matrix

let elem = QCheck.int_range 0 255
let nonzero = QCheck.int_range 1 255

let qtest ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Field axioms                                                        *)
(* ------------------------------------------------------------------ *)

let field_axioms =
  [
    qtest "add is xor" (QCheck.pair elem elem) (fun (a, b) ->
        F.add a b = a lxor b);
    qtest "add commutative" (QCheck.pair elem elem) (fun (a, b) ->
        F.add a b = F.add b a);
    qtest "mul commutative" (QCheck.pair elem elem) (fun (a, b) ->
        F.mul a b = F.mul b a);
    qtest "mul associative" (QCheck.triple elem elem elem) (fun (a, b, c) ->
        F.mul a (F.mul b c) = F.mul (F.mul a b) c);
    qtest "distributivity" (QCheck.triple elem elem elem) (fun (a, b, c) ->
        F.mul a (F.add b c) = F.add (F.mul a b) (F.mul a c));
    qtest "one is identity" elem (fun a -> F.mul 1 a = a);
    qtest "zero annihilates" elem (fun a -> F.mul 0 a = 0);
    qtest "sub equals add" (QCheck.pair elem elem) (fun (a, b) ->
        F.sub a b = F.add a b);
    qtest "inverse" nonzero (fun a -> F.mul a (F.inv a) = 1);
    qtest "div by self" nonzero (fun a -> F.div a a = 1);
    qtest "div inverse of mul" (QCheck.pair elem nonzero) (fun (a, b) ->
        F.div (F.mul a b) b = a);
    qtest "pow 2 is square" elem (fun a -> F.pow a 2 = F.mul a a);
    qtest "pow adds exponents" (QCheck.pair nonzero (QCheck.int_range 0 30))
      (fun (a, k) -> F.mul (F.pow a k) (F.pow a 3) = F.pow a (k + 3));
    qtest "exp/log roundtrip" nonzero (fun a -> F.exp_table (F.log_table a) = a);
    qtest "frobenius: (a+b)^2 = a^2 + b^2" (QCheck.pair elem elem)
      (fun (a, b) -> F.pow (F.add a b) 2 = F.add (F.pow a 2) (F.pow b 2));
  ]

let test_sentinel_errors () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (F.inv 0));
  Alcotest.check_raises "div by 0" Division_by_zero (fun () ->
      ignore (F.div 3 0));
  check_int "div 0 b" 0 (F.div 0 7);
  check_int "pow 0 0 = 1" 1 (F.pow 0 0);
  check_int "pow 0 5 = 0" 0 (F.pow 0 5);
  Alcotest.check_raises "pow negative"
    (Invalid_argument "Gf256.Field.pow: negative exponent") (fun () ->
      ignore (F.pow 2 (-1)))

let test_generator_order () =
  (* 2 generates the multiplicative group: the powers 2^0..2^254 are
     all distinct. *)
  let seen = Array.make 256 false in
  for i = 0 to 254 do
    let x = F.exp_table i in
    Alcotest.(check bool) "no repeat" false seen.(x);
    seen.(x) <- true
  done;
  check_int "2^255 wraps to 1" 1 (F.exp_table 255)

let test_check_element () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Gf256.Field: element -1 out of range") (fun () ->
      F.check_element (-1));
  F.check_element 0;
  F.check_element 255;
  (* The scalar entry points validate their arguments instead of
     reading out of table bounds. *)
  Alcotest.check_raises "mul out of range"
    (Invalid_argument "Gf256.Field: element 256 out of range") (fun () ->
      ignore (F.mul 256 3));
  Alcotest.check_raises "inv out of range"
    (Invalid_argument "Gf256.Field: element -2 out of range") (fun () ->
      ignore (F.inv (-2)));
  Alcotest.check_raises "div out of range"
    (Invalid_argument "Gf256.Field: element 300 out of range") (fun () ->
      ignore (F.div 1 300))

(* ------------------------------------------------------------------ *)
(* Byte-slice operations                                               *)
(* ------------------------------------------------------------------ *)

let bytes_gen =
  QCheck.map Bytes.of_string (QCheck.string_of_size (QCheck.Gen.return 64))

let slice_tests =
  [
    qtest "mul_slice_set matches scalar mul" (QCheck.pair bytes_gen elem)
      (fun (src, c) ->
        let dst = Bytes.make (Bytes.length src) '\255' in
        F.mul_slice_set ~dst ~src c;
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            if Char.code x <> F.mul c (Char.code (Bytes.get src i)) then
              ok := false)
          dst;
        !ok);
    qtest "mul_slice accumulates" (QCheck.triple bytes_gen bytes_gen elem)
      (fun (dst0, src, c) ->
        let dst = Bytes.copy dst0 in
        F.mul_slice ~dst ~src c;
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            let expected =
              F.add
                (Char.code (Bytes.get dst0 i))
                (F.mul c (Char.code (Bytes.get src i)))
            in
            if Char.code x <> expected then ok := false)
          dst;
        !ok);
    qtest "mul_slice by 0 is no-op" bytes_gen (fun src ->
        let dst = Bytes.copy src in
        F.mul_slice ~dst ~src 0;
        Bytes.equal dst src);
    qtest "mul_slice by 1 xors" (QCheck.pair bytes_gen bytes_gen)
      (fun (dst0, src) ->
        let dst = Bytes.copy dst0 in
        F.mul_slice ~dst ~src 1;
        let ok = ref true in
        Bytes.iteri
          (fun i x ->
            if
              Char.code x
              <> Char.code (Bytes.get dst0 i) lxor Char.code (Bytes.get src i)
            then ok := false)
          dst;
        !ok);
  ]

let test_slice_length_mismatch () =
  let a = Bytes.create 4 and b = Bytes.create 5 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Gf256.Field.mul_slice: length mismatch") (fun () ->
      F.mul_slice ~dst:a ~src:b 3);
  let c = Bytes.create 4 in
  Alcotest.check_raises "bad table"
    (Invalid_argument "Gf256.Field.mul_table_slice: not a 256-entry table")
    (fun () -> F.mul_table_slice ~dst:a ~src:c (Bytes.create 16))

(* Every coefficient's cached product table must agree with scalar
   multiplication on all 256 field values. *)
let test_mul_table_agrees () =
  for c = 0 to 255 do
    let table = F.mul_table c in
    Alcotest.(check int) "table length" 256 (Bytes.length table);
    for v = 0 to 255 do
      if Char.code (Bytes.get table v) <> F.mul c v then
        Alcotest.failf "mul_table %d disagrees with mul at %d" c v
    done;
    (* The cache hands back the same buffer on repeated calls. *)
    Alcotest.(check bool) "cached" true (F.mul_table c == table)
  done

(* The wide-word kernels must be bit-identical to the byte-at-a-time
   definition on every length class: 64-bit body, scalar tail, and
   lengths below one word. *)
let slice_lengths = [ 1; 3; 7; 8; 9; 15; 16; 17; 63; 64; 65; 257 ]

let test_wide_kernels_match_reference () =
  let rng = Random.State.make [| 21 |] in
  let random_bytes len =
    Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))
  in
  List.iter
    (fun len ->
      List.iter
        (fun c ->
          let src = random_bytes len in
          let dst0 = random_bytes len in
          (* Accumulating kernel vs scalar reference. *)
          let dst = Bytes.copy dst0 in
          F.mul_slice ~dst ~src c;
          for i = 0 to len - 1 do
            let expected =
              F.add
                (Char.code (Bytes.get dst0 i))
                (F.mul c (Char.code (Bytes.get src i)))
            in
            if Char.code (Bytes.get dst i) <> expected then
              Alcotest.failf "mul_slice len=%d c=%d mismatch at %d" len c i
          done;
          (* Overwriting kernel. *)
          let dst = Bytes.copy dst0 in
          F.mul_slice_set ~dst ~src c;
          for i = 0 to len - 1 do
            if
              Char.code (Bytes.get dst i)
              <> F.mul c (Char.code (Bytes.get src i))
            then
              Alcotest.failf "mul_slice_set len=%d c=%d mismatch at %d" len c i
          done;
          (* The raw table kernels (what encode/decode plans call). *)
          if c >= 2 then begin
            let table = F.mul_table c in
            let dst = Bytes.copy dst0 in
            F.mul_table_slice ~dst ~src table;
            let dst' = Bytes.copy dst0 in
            F.mul_slice ~dst:dst' ~src c;
            if not (Bytes.equal dst dst') then
              Alcotest.failf "mul_table_slice len=%d c=%d diverges" len c
          end)
        [ 0; 1; 2; 29; 173; 255 ])
    slice_lengths

(* ------------------------------------------------------------------ *)
(* Multi-source accumulators and split tables                          *)
(* ------------------------------------------------------------------ *)

let rng_bytes rng len =
  Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))

(* acc2/acc4 fold their sources exactly like chained single-source
   passes, on every length class. *)
let test_acc_kernels_match_chained () =
  let rng = Random.State.make [| 31 |] in
  List.iter
    (fun len ->
      let srcs = Array.init 4 (fun _ -> rng_bytes rng len) in
      let cs = Array.init 4 (fun _ -> 2 + Random.State.int rng 254) in
      let tabs = Array.map F.mul_table cs in
      let dst0 = rng_bytes rng len in
      let expected = Bytes.copy dst0 in
      Array.iteri
        (fun i t -> F.mul_table_slice ~dst:expected ~src:srcs.(i) t)
        tabs;
      let dst2 = Bytes.copy dst0 in
      F.mul_table_slice_acc2 ~dst:dst2 ~src1:srcs.(0) tabs.(0) ~src2:srcs.(1)
        tabs.(1);
      F.mul_table_slice_acc2 ~dst:dst2 ~src1:srcs.(2) tabs.(2) ~src2:srcs.(3)
        tabs.(3);
      if not (Bytes.equal dst2 expected) then
        Alcotest.failf "acc2 len=%d diverges from chained passes" len;
      let dst4 = Bytes.copy dst0 in
      F.mul_table_slice_acc4 ~dst:dst4 ~src1:srcs.(0) tabs.(0) ~src2:srcs.(1)
        tabs.(1) ~src3:srcs.(2) tabs.(2) ~src4:srcs.(3) tabs.(3);
      if not (Bytes.equal dst4 expected) then
        Alcotest.failf "acc4 len=%d diverges from chained passes" len)
    slice_lengths

(* The SPLIT(8,4) nibble tables must reproduce c * s for every pair:
   c * s = lo[s land 15] lxor hi[s lsr 4]. *)
let test_split_tables_agree () =
  for c = 0 to 255 do
    let t = F.split_tables c in
    check_int "split table length" 32 (Bytes.length t);
    for s = 0 to 255 do
      let p =
        Char.code (Bytes.get t (s land 15))
        lxor Char.code (Bytes.get t (16 + (s lsr 4)))
      in
      if p <> F.mul c s then
        Alcotest.failf "split_tables %d disagrees with mul at %d" c s
    done;
    Alcotest.(check bool) "cached" true (F.split_tables c == t)
  done

(* ------------------------------------------------------------------ *)
(* Kernel dispatch layer                                               *)
(* ------------------------------------------------------------------ *)

module K = Gf256.Kernel

(* Unaligned and sub-word lengths: the wide kernels must handle 64-bit
   bodies, SIMD tails and lengths below one vector identically. *)
let kernel_lengths = [ 1; 7; 8; 9; 15; 17; 64; 65; 257; 1000 ]

(* Every implementation, every coefficient, every length class:
   mul_acc/mul_set match the scalar field definition, including when
   dst and src are the same buffer. *)
let test_kernel_mul_equivalence () =
  let rng = Random.State.make [| 41 |] in
  List.iter
    (fun impl ->
      for c = 0 to 255 do
        let len = List.nth kernel_lengths (c mod List.length kernel_lengths) in
        let mul = K.make_mul impl c in
        let src = rng_bytes rng len in
        let dst0 = rng_bytes rng len in
        let dst = Bytes.copy dst0 in
        K.mul_acc mul ~dst ~src;
        for i = 0 to len - 1 do
          let expected =
            Char.code (Bytes.get dst0 i)
            lxor F.mul c (Char.code (Bytes.get src i))
          in
          if Char.code (Bytes.get dst i) <> expected then
            Alcotest.failf "%s mul_acc c=%d len=%d mismatch at %d"
              (K.name impl) c len i
        done;
        let dst = Bytes.copy dst0 in
        K.mul_set mul ~dst ~src;
        for i = 0 to len - 1 do
          if
            Char.code (Bytes.get dst i)
            <> F.mul c (Char.code (Bytes.get src i))
          then
            Alcotest.failf "%s mul_set c=%d len=%d mismatch at %d"
              (K.name impl) c len i
        done;
        (* Aliased dst == src (in-place scale / self-accumulate). *)
        let self = Bytes.copy src in
        K.mul_acc mul ~dst:self ~src:self;
        for i = 0 to len - 1 do
          let v = Char.code (Bytes.get src i) in
          if Char.code (Bytes.get self i) <> v lxor F.mul c v then
            Alcotest.failf "%s mul_acc aliased c=%d mismatch at %d"
              (K.name impl) c i
        done;
        let self = Bytes.copy src in
        K.mul_set mul ~dst:self ~src:self;
        for i = 0 to len - 1 do
          let v = Char.code (Bytes.get src i) in
          if Char.code (Bytes.get self i) <> F.mul c v then
            Alcotest.failf "%s mul_set aliased c=%d mismatch at %d"
              (K.name impl) c i
        done
      done)
    (K.available_impls ())

(* mul_acc_multi equals sequential mul_acc under every kernel. *)
let test_kernel_mul_multi () =
  let rng = Random.State.make [| 43 |] in
  List.iter
    (fun impl ->
      List.iter
        (fun nsrc ->
          let len = 137 in
          let cs = Array.init nsrc (fun _ -> Random.State.int rng 256) in
          let muls = Array.map (K.make_mul impl) cs in
          let srcs = Array.init nsrc (fun _ -> rng_bytes rng len) in
          let dst0 = rng_bytes rng len in
          let expected = Bytes.copy dst0 in
          Array.iteri
            (fun i m -> K.mul_acc m ~dst:expected ~src:srcs.(i))
            muls;
          let dst = Bytes.copy dst0 in
          K.mul_acc_multi muls ~dst ~srcs;
          if not (Bytes.equal dst expected) then
            Alcotest.failf "%s mul_acc_multi nsrc=%d diverges" (K.name impl)
              nsrc)
        [ 0; 1; 2; 3; 4; 5; 9 ])
    (K.available_impls ())

(* Fused row groups: every implementation against the scalar reference,
   across shapes that exercise the trivial-row fast path (zero rows,
   identity rows, single-coefficient rows), single dense rows, full
   lane groups and multi-group maps (r > 8), in both overwrite and
   accumulate modes. *)
let test_kernel_rows_equivalence () =
  let rng = Random.State.make [| 47 |] in
  let shapes =
    [ (1, 1); (1, 4); (2, 3); (4, 10); (5, 8); (8, 5); (10, 10); (14, 3) ]
  in
  List.iter
    (fun (r, k) ->
      List.iter
        (fun len ->
          let coeffs =
            Array.init r (fun p ->
                Array.init k (fun j ->
                    (* Seed trivial rows alongside dense ones. *)
                    match p mod 4 with
                    | 0 -> if j = p mod k then 1 else 0
                    | 1 when r > 1 -> 0
                    | _ -> Random.State.int rng 256))
          in
          let srcs = Array.init k (fun _ -> rng_bytes rng len) in
          let dsts0 = Array.init r (fun _ -> rng_bytes rng len) in
          let scalar = K.make_rows K.Scalar coeffs in
          let expected = Array.map Bytes.copy dsts0 in
          K.apply_rows scalar ~srcs ~dsts:expected;
          let expected_acc = Array.map Bytes.copy dsts0 in
          K.apply_rows ~acc:true scalar ~srcs ~dsts:expected_acc;
          List.iter
            (fun impl ->
              let rows = K.make_rows impl coeffs in
              let dsts = Array.map Bytes.copy dsts0 in
              K.apply_rows rows ~srcs ~dsts;
              Array.iteri
                (fun p b ->
                  if not (Bytes.equal b expected.(p)) then
                    Alcotest.failf "%s rows %dx%d len=%d row %d diverges"
                      (K.name impl) r k len p)
                dsts;
              let dsts = Array.map Bytes.copy dsts0 in
              K.apply_rows ~acc:true rows ~srcs ~dsts;
              Array.iteri
                (fun p b ->
                  if not (Bytes.equal b expected_acc.(p)) then
                    Alcotest.failf "%s rows acc %dx%d len=%d row %d diverges"
                      (K.name impl) r k len p)
                dsts)
            (K.available_impls ()))
        [ 1; 9; 64; 257 ])
    shapes

(* Forcing each kernel through the environment override: unset and
   empty pick the best available, explicit names pick that kernel, and
   unknown names are rejected. *)
let test_kernel_dispatch_env () =
  let set v = Unix.putenv K.env_var v in
  set "";
  Alcotest.(check bool)
    "empty means best available" true
    (K.default () = K.best_available ());
  List.iter
    (fun impl ->
      set (K.name impl);
      Alcotest.(check string)
        ("env forces " ^ K.name impl)
        (K.name impl)
        (K.name (K.default ())))
    (K.available_impls ());
  set "not-a-kernel";
  (try
     ignore (K.default ());
     Alcotest.fail "unknown kernel name accepted"
   with Invalid_argument _ -> ());
  set "";
  (* Selection counters move when codec constructions pick a kernel. *)
  let before = List.assoc "table" (K.selection_counts ()) in
  ignore (K.select ~impl:K.Table ());
  let after = List.assoc "table" (K.selection_counts ()) in
  check_int "selection counted" (before + 1) after

let test_kernel_names () =
  List.iter
    (fun impl ->
      Alcotest.(check bool)
        ("of_name roundtrip " ^ K.name impl)
        true
        (K.of_name (K.name impl) = impl))
    K.all;
  Alcotest.(check bool) "scalar always available" true (K.available K.Scalar);
  Alcotest.(check bool) "split64 always available" true
    (K.available K.Split64);
  Alcotest.(check bool)
    "c_simd availability tracks simd level" (K.simd_level > 0)
    (K.available K.C_simd)

(* ------------------------------------------------------------------ *)
(* Matrices                                                            *)
(* ------------------------------------------------------------------ *)

let random_matrix rng ~rows ~cols =
  M.init ~rows ~cols (fun _ _ -> Random.State.int rng 256)

let test_identity_mul () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int rng 8 in
    let a = random_matrix rng ~rows:n ~cols:n in
    Alcotest.(check bool) "I*A = A" true (M.equal (M.mul (M.identity n) a) a);
    Alcotest.(check bool) "A*I = A" true (M.equal (M.mul a (M.identity n)) a)
  done

let test_mul_vec_agrees () =
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 20 do
    let rows = 1 + Random.State.int rng 6 in
    let cols = 1 + Random.State.int rng 6 in
    let a = random_matrix rng ~rows ~cols in
    let v = Array.init cols (fun _ -> Random.State.int rng 256) in
    let vm = M.init ~rows:cols ~cols:1 (fun r _ -> v.(r)) in
    let prod = M.mul a vm in
    let pv = M.mul_vec a v in
    for r = 0 to rows - 1 do
      check_int "entry" (M.get prod r 0) pv.(r)
    done
  done

let test_invert_roundtrip () =
  let rng = Random.State.make [| 9 |] in
  let tried = ref 0 and inverted = ref 0 in
  while !inverted < 25 && !tried < 500 do
    incr tried;
    let n = 1 + Random.State.int rng 7 in
    let a = random_matrix rng ~rows:n ~cols:n in
    match M.invert a with
    | None -> ()
    | Some inv ->
        incr inverted;
        Alcotest.(check bool) "A * A^-1 = I" true
          (M.equal (M.mul a inv) (M.identity n));
        Alcotest.(check bool) "A^-1 * A = I" true
          (M.equal (M.mul inv a) (M.identity n))
  done;
  Alcotest.(check bool) "found invertible samples" true (!inverted >= 25)

let test_singular () =
  let z = M.create ~rows:3 ~cols:3 in
  Alcotest.(check (option reject)) "zero singular" None
    (Option.map ignore (M.invert z));
  (* Two equal rows. *)
  let a = M.init ~rows:2 ~cols:2 (fun _ c -> c + 1) in
  Alcotest.(check (option reject)) "rank deficient" None
    (Option.map ignore (M.invert a))

let test_cauchy_submatrices_invertible () =
  let xs = Array.init 4 (fun i -> 10 + i) in
  let ys = Array.init 4 (fun j -> j) in
  let c = M.cauchy ~xs ~ys in
  (* Every square submatrix of a Cauchy matrix is invertible; check all
     2x2 submatrices. *)
  for r1 = 0 to 3 do
    for r2 = r1 + 1 to 3 do
      for c1 = 0 to 3 do
        for c2 = c1 + 1 to 3 do
          let sub =
            M.init ~rows:2 ~cols:2 (fun r cc ->
                M.get c
                  (if r = 0 then r1 else r2)
                  (if cc = 0 then c1 else c2))
          in
          Alcotest.(check bool) "2x2 invertible" true (M.invert sub <> None)
        done
      done
    done
  done

let test_cauchy_overlap_rejected () =
  Alcotest.check_raises "xs/ys overlap"
    (Invalid_argument "Gf256.Matrix.cauchy: xs and ys are not disjoint")
    (fun () -> ignore (M.cauchy ~xs:[| 1; 2 |] ~ys:[| 2; 3 |]))

let test_vandermonde () =
  let v = M.vandermonde ~rows:5 ~cols:3 in
  check_int "v[0][0]" 1 (M.get v 0 0);
  check_int "v[0][2]" 0 (M.get v 0 2);
  check_int "v[2][1]" 2 (M.get v 2 1);
  check_int "v[3][2]" (F.mul 3 3) (M.get v 3 2)

let test_sub_rows () =
  let a = M.init ~rows:4 ~cols:2 (fun r c -> (r * 2) + c) in
  let b = M.sub_rows a [ 3; 1 ] in
  check_int "rows" 2 (M.rows b);
  check_int "b[0][0]" 6 (M.get b 0 0);
  check_int "b[1][1]" 3 (M.get b 1 1)

let test_bounds () =
  let a = M.create ~rows:2 ~cols:2 in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Gf256.Matrix: index (2,0) out of 2x2") (fun () ->
      ignore (M.get a 2 0));
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Gf256.Matrix.create: bad shape") (fun () ->
      ignore (M.create ~rows:0 ~cols:3))

let () =
  Alcotest.run "gf256"
    [
      ("field-axioms", field_axioms);
      ( "field-unit",
        [
          Alcotest.test_case "sentinel errors" `Quick test_sentinel_errors;
          Alcotest.test_case "generator order" `Quick test_generator_order;
          Alcotest.test_case "check_element" `Quick test_check_element;
        ] );
      ( "slices",
        slice_tests
        @ [
            Alcotest.test_case "length mismatch" `Quick
              test_slice_length_mismatch;
            Alcotest.test_case "mul_table agrees with mul" `Quick
              test_mul_table_agrees;
            Alcotest.test_case "wide kernels match reference" `Quick
              test_wide_kernels_match_reference;
            Alcotest.test_case "acc2/acc4 match chained passes" `Quick
              test_acc_kernels_match_chained;
            Alcotest.test_case "split tables agree with mul" `Quick
              test_split_tables_agree;
          ] );
      ( "kernels",
        [
          Alcotest.test_case "names and availability" `Quick test_kernel_names;
          Alcotest.test_case "mul equivalence (all coefficients)" `Quick
            test_kernel_mul_equivalence;
          Alcotest.test_case "mul_acc_multi equals sequential" `Quick
            test_kernel_mul_multi;
          Alcotest.test_case "fused rows equivalence" `Quick
            test_kernel_rows_equivalence;
          Alcotest.test_case "dispatch env override" `Quick
            test_kernel_dispatch_env;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity mul" `Quick test_identity_mul;
          Alcotest.test_case "mul_vec agrees with mul" `Quick test_mul_vec_agrees;
          Alcotest.test_case "invert roundtrip" `Quick test_invert_roundtrip;
          Alcotest.test_case "singular detected" `Quick test_singular;
          Alcotest.test_case "cauchy submatrices invertible" `Quick
            test_cauchy_submatrices_invertible;
          Alcotest.test_case "cauchy overlap rejected" `Quick
            test_cauchy_overlap_rejected;
          Alcotest.test_case "vandermonde entries" `Quick test_vandermonde;
          Alcotest.test_case "sub_rows" `Quick test_sub_rows;
          Alcotest.test_case "bounds checking" `Quick test_bounds;
        ] );
    ]
