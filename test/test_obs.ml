(* Observability-layer tests.

   Unit tests cover the ring sink, JSONL wire-format round-trips and
   the span well-formedness checker; a deterministic two-writer
   scenario pins the Retry outcome attribution; and a randomized
   property (reusing the fuzz harness recipe: concurrent clients,
   message loss, brick crash/recovery) asserts that every op id opens
   and closes exactly one span, phases nest without overlap, and the
   event stream reconstructs the same message/disk totals as the
   Metrics counters that EXPERIMENTS.md's Table 1 relies on. *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator

let block_size = 64

let event_t =
  Alcotest.testable Obs.pp_event (fun (a : Obs.event) b -> a = b)

(* ------------------------------------------------------------------ *)
(* Ring sink                                                           *)
(* ------------------------------------------------------------------ *)

let mk_ev i =
  {
    Obs.time = float_of_int i;
    actor = Obs.Sim;
    op = -1;
    phase = None;
    kind = Obs.Queue_depth { depth = i };
  }

let test_ring () =
  let ring = Obs.Ring.create ~capacity:4 in
  let sink = Obs.Ring.sink ring in
  for i = 0 to 9 do
    sink.Obs.Sink.emit (mk_ev i)
  done;
  Alcotest.(check int) "length" 4 (Obs.Ring.length ring);
  Alcotest.(check int) "dropped" 6 (Obs.Ring.dropped ring);
  Alcotest.(check (list event_t)) "keeps newest, oldest first"
    [ mk_ev 6; mk_ev 7; mk_ev 8; mk_ev 9 ]
    (Obs.Ring.contents ring);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Obs.Ring.create: capacity <= 0") (fun () ->
      ignore (Obs.Ring.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* JSONL wire format                                                   *)
(* ------------------------------------------------------------------ *)

(* One event per kind, exercising every actor and outcome. *)
let sample_events =
  let open Obs in
  [
    { time = 0.5; actor = Coord 1; op = 3; phase = None;
      kind = Span_start { op_kind = "read-stripe"; stripe = 2 } };
    { time = 1.5; actor = Coord 1; op = 3; phase = Some Fast_read;
      kind = Phase_start };
    { time = 2.5; actor = Brick 0; op = 3; phase = Some Fast_read;
      kind = Msg_send { dst = 2; bytes = 96; label = "read"; bg = false } };
    { time = 2.5; actor = Brick 2; op = 3; phase = Some Fast_read;
      kind = Msg_recv { src = 0; label = "read" } };
    { time = 2.75; actor = Brick 2; op = 9; phase = Some Gc;
      kind = Msg_drop { dst = 1; bytes = 32; bg = true } };
    { time = 3.; actor = Brick 2; op = 3; phase = Some Order;
      kind = Io_read { blocks = 2 } };
    { time = 3.; actor = Brick 2; op = 3; phase = Some Modify;
      kind = Io_write { blocks = 1 } };
    { time = 3.5; actor = Coord 1; op = 3; phase = Some Recover;
      kind = Timeout { missing = 2; attempt = 1 } };
    { time = 4.; actor = Coord 1; op = 3; phase = Some Write;
      kind = Phase_end };
    { time = 4.5; actor = Sim; op = -1; phase = None;
      kind = Queue_depth { depth = 7 } };
    { time = 5.; actor = Coord 1; op = 3; phase = None;
      kind = Span_end { op_kind = "read-stripe"; stripe = 2; outcome = Ok } };
    { time = 6.; actor = Coord 0; op = 4; phase = None;
      kind = Span_end { op_kind = "write-block"; stripe = 0; outcome = Abort } };
    { time = 7.; actor = Coord 0; op = 5; phase = None;
      kind = Span_end { op_kind = "write-block"; stripe = 0; outcome = Retry } };
  ]

let test_json_roundtrip () =
  List.iter
    (fun ev ->
      match Obs.of_json (Obs.to_json ev) with
      | `Event ev' -> Alcotest.check event_t "round-trip" ev ev'
      | `Meta _ -> Alcotest.fail "parsed as meta"
      | `Error e -> Alcotest.failf "parse error: %s" e)
    sample_events

let test_json_meta_and_errors () =
  let meta = [ ("tool", Obs.Json.S "test"); ("seed", Obs.Json.I 42) ] in
  (match Obs.of_json (Obs.Meta.line meta) with
  | `Meta kvs ->
      Alcotest.(check bool) "tool" true
        (List.assoc_opt "tool" kvs = Some (Obs.Json.S "test"));
      Alcotest.(check bool) "seed" true
        (List.assoc_opt "seed" kvs = Some (Obs.Json.I 42))
  | _ -> Alcotest.fail "meta line did not parse as meta");
  (match Obs.of_json "{\"ev\": \"no-such-event\", \"t\": 1.0}" with
  | `Error _ -> ()
  | _ -> Alcotest.fail "unknown event kind accepted");
  match Obs.of_json "not json at all" with
  | `Error _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

(* ------------------------------------------------------------------ *)
(* Well-formedness checker                                             *)
(* ------------------------------------------------------------------ *)

let span ?(op = 1) ?(t0 = 0.) events =
  let open Obs in
  let mk time phase kind = { time; actor = Coord 0; op; phase; kind } in
  mk t0 None (Span_start { op_kind = "op"; stripe = 0 })
  :: (events |> List.map (fun (dt, phase, kind) -> mk (t0 +. dt) phase kind))
  @ [ mk (t0 +. 10.) None
        (Span_end { op_kind = "op"; stripe = 0; outcome = Ok }) ]

let test_well_formed () =
  let open Obs in
  let ok =
    span
      [
        (1., Some Order, Phase_start);
        (2., Some Order, Phase_end);
        (3., Some Write, Phase_start);
        (4., Some Write, Phase_end);
      ]
  in
  Alcotest.(check (list string)) "clean span" [] (Check.well_formed ok);
  (* Unattributed events are ignored. *)
  Alcotest.(check (list string)) "op -1 ignored" []
    (Check.well_formed (mk_ev 0 :: ok));
  let dup = span [] @ span [] in
  Alcotest.(check bool) "duplicate span flagged" true
    (Check.well_formed dup <> []);
  let overlap =
    span
      [
        (1., Some Order, Phase_start);
        (2., Some Write, Phase_start);
        (3., Some Write, Phase_end);
        (4., Some Order, Phase_end);
      ]
  in
  Alcotest.(check bool) "overlapping phases flagged" true
    (Check.well_formed overlap <> []);
  let dangling =
    [
      {
        time = 0.; actor = Coord 0; op = 7; phase = None;
        kind = Span_end { op_kind = "op"; stripe = 0; outcome = Abort };
      };
    ]
  in
  Alcotest.(check bool) "end without start flagged" true
    (Check.well_formed dangling <> [])

(* ------------------------------------------------------------------ *)
(* Retry outcome attribution                                           *)
(* ------------------------------------------------------------------ *)

(* Two writers race on the same stripe: the loser's attempt aborts on
   the timestamp conflict and with_retries re-runs it, so its first
   span must end with outcome Retry (not Abort) and its last with Ok. *)
let test_retry_outcome () =
  let cl = Cluster.create ~seed:7 ~m:2 ~n:4 ~block_size () in
  let ring = Obs.Ring.create ~capacity:100_000 in
  Obs.add_sink cl.Cluster.obs (Obs.Ring.sink ring);
  let oks = ref 0 in
  for coord = 0 to 1 do
    Cluster.spawn ~coord cl (fun c ->
        let data =
          Array.init 2 (fun i ->
              Bytes.make block_size (Char.chr (65 + (2 * coord) + i)))
        in
        match
          Coordinator.with_retries ~attempts:3 c (fun () ->
              Coordinator.write_stripe c ~stripe:0 data)
        with
        | Ok () -> incr oks
        | Error _ -> ())
  done;
  Cluster.run cl;
  Alcotest.(check int) "both writers succeed" 2 !oks;
  let events = Obs.Ring.contents ring in
  Alcotest.(check (list string)) "well-formed" []
    (Obs.Check.well_formed events);
  let count outcome =
    List.length
      (List.filter
         (fun ev ->
           match ev.Obs.kind with
           | Obs.Span_end { outcome = o; _ } -> o = outcome
           | _ -> false)
         events)
  in
  Alcotest.(check bool) "a losing attempt ended Retry" true
    (count Obs.Retry >= 1);
  Alcotest.(check int) "no final Abort" 0 (count Obs.Abort);
  Alcotest.(check int) "two spans ended Ok" 2 (count Obs.Ok)

(* ------------------------------------------------------------------ *)
(* Randomized property                                                 *)
(* ------------------------------------------------------------------ *)

type totals = {
  mutable send_fg : int;
  mutable send_bg : int;
  mutable bytes_fg : int;
  mutable bytes_bg : int;
  mutable drops : int;
  mutable recvs : int;
  mutable timeouts : int;
  mutable io_reads : int;
  mutable io_writes : int;
  mutable ends : int;
  mutable ok : int;
  mutable abort : int;
  mutable retry : int;
}

let tally events =
  let t =
    {
      send_fg = 0; send_bg = 0; bytes_fg = 0; bytes_bg = 0; drops = 0;
      recvs = 0; timeouts = 0; io_reads = 0; io_writes = 0; ends = 0;
      ok = 0; abort = 0; retry = 0;
    }
  in
  List.iter
    (fun ev ->
      match ev.Obs.kind with
      | Obs.Msg_send { bytes; bg = false; _ } ->
          t.send_fg <- t.send_fg + 1;
          t.bytes_fg <- t.bytes_fg + bytes
      | Obs.Msg_send { bytes; bg = true; _ } ->
          t.send_bg <- t.send_bg + 1;
          t.bytes_bg <- t.bytes_bg + bytes
      | Obs.Msg_drop _ -> t.drops <- t.drops + 1
      | Obs.Msg_recv _ -> t.recvs <- t.recvs + 1
      | Obs.Timeout _ -> t.timeouts <- t.timeouts + 1
      | Obs.Io_read { blocks } -> t.io_reads <- t.io_reads + blocks
      | Obs.Io_write { blocks } -> t.io_writes <- t.io_writes + blocks
      | Obs.Span_end { outcome; _ } -> (
          t.ends <- t.ends + 1;
          match outcome with
          | Obs.Ok -> t.ok <- t.ok + 1
          | Obs.Abort -> t.abort <- t.abort + 1
          | Obs.Retry -> t.retry <- t.retry + 1
          | Obs.Unavailable -> ())
      | _ -> ())
    events;
  t

let obs_round ~seed =
  let rng = Random.State.make [| seed; 0x0b5 |] in
  let m, n =
    match Random.State.int rng 3 with
    | 0 -> (1, 3)
    | 1 -> (2, 4)
    | _ -> (3, 5)
  in
  let drop = [| 0.; 0.05; 0.15 |].(Random.State.int rng 3) in
  let cl =
    Cluster.create ~seed ~m ~n ~block_size
      ~gc_enabled:(Random.State.bool rng)
      ~optimized_modify:(Random.State.bool rng)
      ~net_config:{ Simnet.Net.default_config with drop }
      ()
  in
  let engine = cl.Cluster.engine in
  let ring = Obs.Ring.create ~capacity:400_000 in
  let stats = Obs.Stats.create () in
  Obs.add_sink cl.Cluster.obs (Obs.Ring.sink ring);
  Obs.add_sink cl.Cluster.obs (Obs.Stats.sink stats);

  let sleep delay =
    Dessim.Fiber.suspend (fun r ->
        ignore
          (Dessim.Engine.schedule engine ~delay (fun () ->
               Dessim.Fiber.resume r ())))
  in

  let nclients = 2 in
  let finished = ref 0 in
  for coord = 0 to nclients - 1 do
    Cluster.spawn ~coord cl (fun c ->
        let ops_count = 3 + Random.State.int rng 4 in
        for _ = 1 to ops_count do
          sleep (Random.State.float rng 25.);
          let stripe = Random.State.int rng 2 in
          let attempt f = ignore (Coordinator.with_retries ~attempts:3 c f) in
          match Random.State.int rng 4 with
          | 0 ->
              let data =
                Array.init m (fun i ->
                    Bytes.make block_size (Char.chr (33 + ((seed + i) mod 90))))
              in
              attempt (fun () -> Coordinator.write_stripe c ~stripe data)
          | 1 -> attempt (fun () -> Coordinator.read_stripe c ~stripe)
          | 2 ->
              let j = Random.State.int rng m in
              attempt (fun () ->
                  Coordinator.write_block c ~stripe j
                    (Bytes.make block_size 'w'))
          | _ ->
              let j = Random.State.int rng m in
              attempt (fun () -> Coordinator.read_block c ~stripe j)
        done;
        incr finished)
  done;

  (* Crash/recover one brick that is never a coordinator, so every
     client fiber (and thus every span) runs to completion; quorums
     survive a single failure in all three geometries. *)
  if n > nclients && Random.State.bool rng then begin
    let victim = nclients + Random.State.int rng (n - nclients) in
    let at = Random.State.float rng 80. in
    ignore
      (Dessim.Engine.schedule engine ~delay:at (fun () ->
           Brick.crash cl.Cluster.bricks.(victim)));
    ignore
      (Dessim.Engine.schedule engine ~delay:(at +. 30.) (fun () ->
           Brick.recover cl.Cluster.bricks.(victim)))
  end;

  Cluster.run ~horizon:50_000. cl;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: all clients finished" seed)
    nclients !finished;
  Alcotest.(check int)
    (Printf.sprintf "seed %d: ring kept everything" seed)
    0 (Obs.Ring.dropped ring);
  let events = Obs.Ring.contents ring in

  (* Spans: exactly one start/end per op id, phases nest, time-ordered. *)
  (match Obs.Check.well_formed events with
  | [] -> ()
  | violations ->
      Alcotest.failf "seed %d: %s" seed (String.concat "; " violations));
  Alcotest.(check int)
    (Printf.sprintf "seed %d: no unfinished spans" seed)
    0 (Obs.Stats.unfinished stats);

  (* Event stream vs Metrics counters: the two accounting paths must
     reconstruct the same totals. *)
  let t = tally events in
  let metric name = int_of_float (Metrics.Registry.value cl.Cluster.metrics name) in
  let check name expected actual =
    Alcotest.(check int) (Printf.sprintf "seed %d: %s" seed name) expected actual
  in
  check "net.msgs" (metric "net.msgs") t.send_fg;
  check "net.msgs.bg" (metric "net.msgs.bg") t.send_bg;
  check "net.bytes" (metric "net.bytes") t.bytes_fg;
  check "net.bytes.bg" (metric "net.bytes.bg") t.bytes_bg;
  check "net.drops" (metric "net.drops") t.drops;
  check "rpc.retries" (metric "rpc.retries") t.timeouts;
  check "disk.reads" (metric "disk.reads") t.io_reads;
  check "disk.writes" (metric "disk.writes") t.io_writes;
  (* Quiescent engine: every undropped message was delivered. *)
  check "delivered = sent - dropped" (t.send_fg + t.send_bg - t.drops) t.recvs;

  (* The Stats aggregator and the raw stream agree on outcomes. *)
  let reg = Metrics.Registry.create () in
  Obs.Stats.materialize stats reg;
  check "obs.ops" t.ends (int_of_float (Metrics.Registry.value reg "obs.ops"));
  check "obs.aborts" t.abort
    (int_of_float (Metrics.Registry.value reg "obs.aborts"));
  check "obs.retries" t.retry
    (int_of_float (Metrics.Registry.value reg "obs.retries"));
  check "outcomes partition span ends" t.ends (t.ok + t.abort + t.retry);
  t

let test_property_rounds () =
  let grand = ref 0 in
  for seed = 1 to 15 do
    let t = obs_round ~seed in
    grand := !grand + t.ends
  done;
  Alcotest.(check bool) "spans observed across rounds" true (!grand > 50)

(* ------------------------------------------------------------------ *)
(* Timeline sink                                                       *)
(* ------------------------------------------------------------------ *)

(* A miniature chaos classifier so these tests stay independent of
   lib/chaos (the real wiring uses Chaos.Plan.overlay_of_label). *)
let classify label =
  match String.split_on_char ' ' label with
  | [ "crash"; i ] -> `Begin ("crash b" ^ i)
  | [ "recover"; i ] -> `End ("crash b" ^ i)
  | _ -> `Point label

let ev ?(actor = Obs.Coord 0) ?(op = -1) ?phase time kind =
  { Obs.time; actor; op; phase; kind }

let mk_timeline () =
  let tl = Obs.Timeline.create ~classify ~width:10. () in
  let push = (Obs.Timeline.sink tl).Obs.Sink.emit in
  let open Obs in
  (* op 0: a read completing in window 0 with latency 2 *)
  push (ev ~op:0 1. (Span_start { op_kind = "read-stripe"; stripe = 0 }));
  push (ev ~op:0 ~actor:(Brick 1) 1.5
          (Msg_send { dst = 2; bytes = 96; label = "read"; bg = false }));
  push (ev ~op:0 ~actor:(Brick 2) 2. (Io_read { blocks = 2 }));
  push (ev ~op:0 2.5 (Timeout { missing = 1; attempt = 1 }));
  push (ev ~op:0 3. (Span_end { op_kind = "read-stripe"; stripe = 0; outcome = Ok }));
  (* a fault interval opening in window 0, closing in window 2 *)
  push (ev 5. (Fault { label = "crash 1" }));
  (* op 1: a write aborting in window 1 with latency 5 *)
  push (ev ~op:1 12. (Span_start { op_kind = "write-stripe"; stripe = 1 }));
  push (ev ~op:1 ~actor:(Brick 0) 13. (Io_write { blocks = 1 }));
  push (ev ~op:1 ~actor:(Brick 0) 13.5 (Msg_drop { dst = 3; bytes = 32; bg = false }));
  push (ev ~op:1 17. (Span_end { op_kind = "write-stripe"; stripe = 1; outcome = Abort }));
  push (ev ~actor:Sim 18. (Queue_depth { depth = 4 }));
  (* a point fault and the interval close *)
  push (ev 21. (Fault { label = "bit-rot 0 1" }));
  push (ev 25. (Fault { label = "recover 1" }));
  tl

let test_timeline_series () =
  let tl = mk_timeline () in
  let ts = Obs.Timeline.series tl in
  let counter name w = Metrics.Timeseries.counter ts name w in
  Alcotest.(check (float 0.0)) "ops w0" 1. (counter "ops.all" 0);
  Alcotest.(check (float 0.0)) "ops w1" 1. (counter "ops.all" 1);
  Alcotest.(check (float 0.0)) "ok lands in w0" 1. (counter "out.ok" 0);
  Alcotest.(check (float 0.0)) "abort lands in w1" 1. (counter "out.abort" 1);
  (* goodput counts only ok completions *)
  Alcotest.(check (float 0.0)) "read goodput" 1. (counter "ops.read-stripe" 0);
  Alcotest.(check (float 0.0)) "aborted write is not goodput" 0.
    (Metrics.Timeseries.total ts "ops.write-stripe");
  Alcotest.(check (float 0.0)) "msgs" 1. (counter "msgs" 0);
  Alcotest.(check (float 0.0)) "bytes" 96. (counter "bytes" 0);
  Alcotest.(check (float 0.0)) "retransmits" 1. (counter "retransmits" 0);
  Alcotest.(check (float 0.0)) "drops" 1. (counter "drops" 1);
  Alcotest.(check (float 0.0)) "io.read" 2. (counter "io.read" 0);
  Alcotest.(check (float 0.0)) "io.write" 1. (counter "io.write" 1);
  Alcotest.(check (float 0.0)) "faults w0" 1. (counter "faults" 0);
  (* latency histogram: op 0 took 2 delta in window 0 *)
  match Metrics.Timeseries.hist ts "lat.all" 0 with
  | None -> Alcotest.fail "no latency hist in w0"
  | Some h ->
      Alcotest.(check int) "one op" 1 (Metrics.Hist.count h);
      Alcotest.(check (float 0.0)) "latency 2" 2. (Metrics.Hist.max h)

let test_timeline_overlays () =
  let tl = mk_timeline () in
  (match Obs.Timeline.faults tl with
  | [ ("crash b1", t0, t1); ("bit-rot 0 1", p0, p1) ] ->
      Alcotest.(check (float 0.0)) "interval opens" 5. t0;
      Alcotest.(check (float 0.0)) "interval closes" 25. t1;
      Alcotest.(check (float 0.0)) "point" 21. p0;
      Alcotest.(check (float 0.0)) "point zero-width" p0 p1
  | fs ->
      Alcotest.failf "unexpected overlays: %s"
        (String.concat ", " (List.map (fun (l, _, _) -> l) fs)));
  Alcotest.(check (list string)) "active in w0" [ "crash b1" ]
    (Obs.Timeline.faults_in tl 0);
  Alcotest.(check (list string)) "active in w1" [ "crash b1" ]
    (Obs.Timeline.faults_in tl 1);
  Alcotest.(check (list string)) "both in w2" [ "bit-rot 0 1"; "crash b1" ]
    (Obs.Timeline.faults_in tl 2)

(* ------------------------------------------------------------------ *)
(* SLO engine                                                          *)
(* ------------------------------------------------------------------ *)

let slo_timeline () =
  (* 10 reads in window 0: nine at 2 delta, one at 100 delta; then one
     abort in window 1. *)
  let tl = Obs.Timeline.create ~classify ~width:10. () in
  let push = (Obs.Timeline.sink tl).Obs.Sink.emit in
  let open Obs in
  for op = 0 to 9 do
    let lat = if op = 9 then 8. else 2. in
    push (ev ~op 0.5 (Span_start { op_kind = "read-stripe"; stripe = 0 }));
    push (ev ~op (0.5 +. lat)
            (Span_end { op_kind = "read-stripe"; stripe = 0; outcome = Ok }))
  done;
  push (ev ~op:10 12. (Span_start { op_kind = "write-stripe"; stripe = 0 }));
  push (ev ~op:10 14.
          (Span_end { op_kind = "write-stripe"; stripe = 0; outcome = Abort }));
  tl

let test_slo_parse () =
  List.iter
    (fun s ->
      match Obs.Slo.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok o -> (
          (* canonical name re-parses to the same objective *)
          match Obs.Slo.parse (Obs.Slo.name o) with
          | Ok o' ->
              Alcotest.(check string) ("round-trip " ^ s) (Obs.Slo.name o)
                (Obs.Slo.name o')
          | Error e -> Alcotest.failf "re-parse %S: %s" (Obs.Slo.name o) e))
    [ "read p99 < 6"; "p50 <= 3.5"; "availability >= 99.9%"; "write p99.9 < 40" ];
  List.iter
    (fun s ->
      match Obs.Slo.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "p200 < 6"; "availability >= 101%"; "read p99" ]

let test_slo_latency () =
  let tl = slo_timeline () in
  (* p50 < 6: one of ten reads is slow, well inside the 50% budget *)
  let ok_report =
    Obs.Slo.evaluate tl (Latency { kind = Some "read"; p = 50.; limit = 6. })
  in
  Alcotest.(check int) "governs the 10 reads" 10 ok_report.Obs.Slo.total;
  Alcotest.(check int) "one exceedance" 1 ok_report.Obs.Slo.bad;
  Alcotest.(check bool) "within budget" true ok_report.Obs.Slo.compliant;
  (* p99 < 6: the same exceedance blows the 1% budget tenfold *)
  let blown =
    Obs.Slo.evaluate tl (Latency { kind = Some "read"; p = 99.; limit = 6. })
  in
  Alcotest.(check (float 1e-9)) "burn 10x" 10. blown.Obs.Slo.burn;
  Alcotest.(check bool) "blown" false blown.Obs.Slo.compliant;
  (* kind prefix matching: "read" covers "read-stripe"; "write" sees
     only the one write span (its latency is recorded even though it
     aborted), none of the reads *)
  let writes =
    Obs.Slo.evaluate tl (Latency { kind = Some "write"; p = 99.; limit = 6. })
  in
  Alcotest.(check int) "writes governed separately" 1 writes.Obs.Slo.total;
  Alcotest.(check int) "no write exceedance" 0 writes.Obs.Slo.bad;
  (* per-window stats: the slow read is in window 0 *)
  match ok_report.Obs.Slo.windows with
  | { Obs.Slo.window = 0; w_total = 10; w_bad = 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "unexpected window stats"

let test_slo_availability () =
  let tl = slo_timeline () in
  let strict = Obs.Slo.evaluate tl (Availability { min_pct = 99.9 }) in
  (* 10 ok + 1 abort: availability 90.9%, budget 0.1% *)
  Alcotest.(check int) "total" 11 strict.Obs.Slo.total;
  Alcotest.(check int) "bad" 1 strict.Obs.Slo.bad;
  Alcotest.(check bool) "blown" false strict.Obs.Slo.compliant;
  let lax = Obs.Slo.evaluate tl (Availability { min_pct = 50. }) in
  Alcotest.(check bool) "within a lax budget" true lax.Obs.Slo.compliant;
  Alcotest.(check (float 1e-9)) "burn"
    (1. /. (0.5 *. 11.))
    lax.Obs.Slo.burn

(* ------------------------------------------------------------------ *)
(* Bounded retention                                                   *)
(* ------------------------------------------------------------------ *)

let test_stats_retention () =
  let stats = Obs.Stats.create ~retain:2 () in
  let open Obs in
  for op = 0 to 4 do
    let kind = if op mod 2 = 0 then "read-stripe" else "write-stripe" in
    let outcome = if op = 4 then Abort else Ok in
    Obs.Stats.feed stats
      (ev ~op (float_of_int op) (Span_start { op_kind = kind; stripe = 0 }));
    Obs.Stats.feed stats
      (ev ~op (float_of_int op +. 2.)
         (Span_end { op_kind = kind; stripe = 0; outcome }))
  done;
  (* only the newest [retain] records are listable... *)
  Alcotest.(check int) "retained" 2 (List.length (Obs.Stats.completed stats));
  Alcotest.(check int) "evicted" 3 (Obs.Stats.evicted stats);
  Alcotest.(check (list int)) "newest kept" [ 3; 4 ]
    (List.map (fun s -> s.Obs.Stats.op) (Obs.Stats.completed stats));
  (* ...but every aggregate still covers all five ops *)
  (match List.assoc_opt "read-stripe" (Obs.Stats.outcome_counts stats) with
  | Some (ok, ab, _, _) ->
      Alcotest.(check int) "read oks" 2 ok;
      Alcotest.(check int) "read aborts" 1 ab
  | None -> Alcotest.fail "read-stripe aggregate missing");
  (match List.assoc_opt "read-stripe" (Obs.Stats.hist_by_kind stats) with
  | Some h -> Alcotest.(check int) "hist count" 3 (Metrics.Hist.count h)
  | None -> Alcotest.fail "read-stripe hist missing");
  let reg = Metrics.Registry.create () in
  Obs.Stats.materialize stats reg;
  Alcotest.(check (float 0.0)) "obs.ops covers evicted" 5.
    (Metrics.Registry.value reg "obs.ops");
  Alcotest.(check (float 0.0)) "obs.aborts" 1.
    (Metrics.Registry.value reg "obs.aborts");
  Alcotest.(check (float 0.0)) "eviction counter" 5.
    (Metrics.Registry.value reg "obs.evictions");
  (* a straggler event for an evicted op must not re-open a live span *)
  Obs.Stats.feed stats (ev ~op:0 ~phase:Obs.Write 99. Obs.Phase_start);
  Alcotest.(check int) "no zombie span" 0 (Obs.Stats.unfinished stats)

let () =
  Alcotest.run "obs"
    [
      ( "sinks",
        [
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "meta and errors" `Quick test_json_meta_and_errors;
        ] );
      ( "spans",
        [
          Alcotest.test_case "well-formedness checker" `Quick test_well_formed;
          Alcotest.test_case "retry outcome" `Quick test_retry_outcome;
          Alcotest.test_case "randomized rounds" `Slow test_property_rounds;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "series" `Quick test_timeline_series;
          Alcotest.test_case "fault overlays" `Quick test_timeline_overlays;
        ] );
      ( "slo",
        [
          Alcotest.test_case "parse" `Quick test_slo_parse;
          Alcotest.test_case "latency objectives" `Quick test_slo_latency;
          Alcotest.test_case "availability objectives" `Quick
            test_slo_availability;
        ] );
      ( "retention",
        [
          Alcotest.test_case "bounded completed table" `Quick
            test_stats_retention;
        ] );
    ]
