(* Randomized linearizability fuzzing of the pipelined volume path.

   Where test_fuzz drives single register instances through the
   coordinator API, this suite drives whole multi-stripe Volume
   requests with every protocol optimization enabled at once —
   scatter-gather pipelining (window 8), the coordinator timestamp
   cache (order-phase elision) and per-destination message coalescing
   — under message loss, partitions and brick crash/recovery. Each
   logical block keeps its own history; every history must admit a
   conforming total order even though the optimizations reorder rounds
   and skip order phases.

   A second test pins down determinism: two runs from the same seed,
   with pipelining and coalescing on, must emit byte-identical JSONL
   traces. This is what makes `explain` replay and the bench numbers
   trustworthy — the optimizations must not introduce any ordering
   decided by anything but the seeded simulation. *)

module H = Linearize.History
module Check = Linearize.Check
module V = Fab.Volume

let block_size = 64
let m = 2
let n = 4
let stripes = 6 (* 12 logical blocks *)

let value_block s =
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) block_size);
  b

let block_value b =
  match Bytes.index_opt b '\000' with
  | Some 0 -> H.nil
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

(* -- randomized rounds ------------------------------------------------ *)

let fuzz_round ~seed =
  let rng = Random.State.make [| seed; 0xF1BE |] in
  let drop = [| 0.; 0.05; 0.1 |].(Random.State.int rng 3) in
  let jitter = [| 0.; 0.; 2.5 |].(Random.State.int rng 3) in
  let v =
    V.create ~seed ~m ~n ~stripes ~block_size ~ts_cache:true ~coalesce:true
      ~pipeline_window:8
      ~net_config:{ Simnet.Net.default_config with drop; jitter }
      ()
  in
  let cl = V.cluster v in
  let engine = cl.Core.Cluster.engine in
  let capacity = V.capacity_blocks v in
  let histories = Array.init capacity (fun _ -> H.create ()) in
  let uid = ref 0 in

  let sleep delay =
    Dessim.Fiber.suspend (fun r ->
        ignore
          (Dessim.Engine.schedule engine ~delay (fun () ->
               Dessim.Fiber.resume r ())))
  in

  (* Clients run on coordinators 0 and 1 only; fault injection is
     restricted to bricks 2..n-1, so no client operation is ever
     orphaned by a coordinator crash (test_fuzz covers that path). *)
  let client coord =
    Dessim.Fiber.spawn (fun () ->
        let ops = 5 + Random.State.int rng 4 in
        for _ = 1 to ops do
          sleep (Random.State.float rng 40.);
          let count = 1 + Random.State.int rng 8 in
          let lba = Random.State.int rng (capacity - count + 1) in
          if Random.State.bool rng then begin
            (* multi-stripe write: one unique value per block *)
            incr uid;
            let values =
              List.init count (fun i ->
                  Printf.sprintf "s%d.u%d.l%d" seed !uid (lba + i))
            in
            let payload = Bytes.create (count * block_size) in
            List.iteri
              (fun i s ->
                Bytes.blit (value_block s) 0 payload (i * block_size)
                  block_size)
              values;
            let now = Dessim.Engine.now engine in
            let ids =
              List.mapi
                (fun i s ->
                  H.invoke histories.(lba + i) ~client:coord ~kind:H.Write
                    ~written:s ~now ())
                values
            in
            let outcome = V.write v ~coord ~lba payload in
            let now = Dessim.Engine.now engine in
            List.iteri
              (fun i id ->
                match outcome with
                | Ok () -> H.complete_write histories.(lba + i) id ~now
                | Error _ -> H.abort histories.(lba + i) id ~now)
              ids
          end
          else begin
            (* multi-stripe read *)
            let now = Dessim.Engine.now engine in
            let ids =
              List.init count (fun i ->
                  H.invoke histories.(lba + i) ~client:coord ~kind:H.Read
                    ~now ())
            in
            let outcome = V.read v ~coord ~lba ~count in
            let now = Dessim.Engine.now engine in
            List.iteri
              (fun i id ->
                match outcome with
                | Ok data ->
                    let b = Bytes.sub data (i * block_size) block_size in
                    H.complete_read histories.(lba + i) id
                      ~value:(block_value b) ~now
                | Error _ -> H.abort histories.(lba + i) id ~now)
              ids
          end
        done)
  in
  let nclients = 2 + Random.State.int rng 2 in
  for c = 0 to nclients - 1 do
    client (c mod 2)
  done;

  (* Transient partition (heals), as in test_fuzz. *)
  if Random.State.int rng 2 = 0 then begin
    let cut = 1 + Random.State.int rng (n - 1) in
    let members = List.init n Fun.id in
    let side = List.filteri (fun i _ -> i < cut) members in
    let at = Random.State.float rng 150. in
    ignore
      (Dessim.Engine.schedule engine ~delay:at (fun () ->
           Simnet.Net.partition cl.Core.Cluster.net [ side ]));
    ignore
      (Dessim.Engine.schedule engine ~delay:(at +. 30.) (fun () ->
           Simnet.Net.heal cl.Core.Cluster.net))
  end;

  (* Crash/recover non-coordinator bricks; the crash hook resets the
     victim's coordinator timestamp cache, so post-recovery traffic
     re-runs cold order rounds — exactly the invalidation path the
     elision proof leans on. *)
  let injections = Random.State.int rng 3 in
  for _ = 1 to injections do
    let victim = 2 + Random.State.int rng (n - 2) in
    let at = Random.State.float rng 250. in
    let back = at +. 5. +. Random.State.float rng 60. in
    ignore
      (Dessim.Engine.schedule engine ~delay:at (fun () ->
           if Brick.is_alive cl.Core.Cluster.bricks.(victim) then
             Brick.crash cl.Core.Cluster.bricks.(victim)));
    ignore
      (Dessim.Engine.schedule engine ~delay:back (fun () ->
           Brick.recover cl.Core.Cluster.bricks.(victim)))
  done;

  V.run ~horizon:5_000. v;

  Array.iteri
    (fun lba h ->
      match Check.strict h with
      | Ok () -> ()
      | Error viol ->
          Alcotest.failf "seed %d (drop=%.2f jitter=%.1f), lba %d: %a" seed
            drop jitter lba Check.pp_violation viol)
    histories

let test_pipelined_rounds () =
  for seed = 1 to 25 do
    fuzz_round ~seed
  done

let test_pipelined_more_faults () =
  for seed = 200 to 212 do
    fuzz_round ~seed
  done

(* -- determinism ------------------------------------------------------ *)

(* One fixed workload: two clients, interleaved multi-stripe reads and
   writes over a lossy network, all optimizations on. Returns the full
   JSONL trace (no meta header — it carries a wall-clock date). *)
let jsonl_trace ~seed =
  let buf = Buffer.create (1 lsl 16) in
  let v =
    V.create ~seed ~m ~n ~stripes ~block_size ~ts_cache:true ~coalesce:true
      ~pipeline_window:8
      ~net_config:{ Simnet.Net.default_config with drop = 0.05 }
      ()
  in
  let cl = V.cluster v in
  let engine = cl.Core.Cluster.engine in
  Obs.add_sink cl.Core.Cluster.obs
    (Obs.Sink.make (fun ev ->
         Buffer.add_string buf (Obs.to_json ev);
         Buffer.add_char buf '\n'));
  let sleep delay =
    Dessim.Fiber.suspend (fun r ->
        ignore
          (Dessim.Engine.schedule engine ~delay (fun () ->
               Dessim.Fiber.resume r ())))
  in
  let rng = Random.State.make [| seed; 0xDE7 |] in
  for c = 0 to 1 do
    Dessim.Fiber.spawn (fun () ->
        for k = 1 to 6 do
          sleep (Random.State.float rng 25.);
          let count = 1 + Random.State.int rng 8 in
          let lba = Random.State.int rng (V.capacity_blocks v - count + 1) in
          if (c + k) mod 2 = 0 then
            ignore
              (V.write v ~coord:c ~lba
                 (Bytes.make (count * block_size) (Char.chr (65 + k))))
          else ignore (V.read v ~coord:c ~lba ~count)
        done)
  done;
  V.run ~horizon:5_000. v;
  Buffer.contents buf

let test_same_seed_same_trace () =
  let a = jsonl_trace ~seed:11 in
  let b = jsonl_trace ~seed:11 in
  Alcotest.(check bool)
    "trace is non-trivial (pipelined workload emitted events)" true
    (String.length a > 1000);
  Alcotest.(check bool) "same seed, byte-identical JSONL" true
    (String.equal a b)

let () =
  Alcotest.run "pipeline"
    [
      ( "strict-linearizability",
        [
          Alcotest.test_case "pipelined randomized rounds" `Slow
            test_pipelined_rounds;
          Alcotest.test_case "pipelined fault rounds" `Slow
            test_pipelined_more_faults;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical JSONL" `Quick
            test_same_seed_same_trace;
        ] );
    ]
