(* Randomized strict-linearizability fuzzing.

   Each round builds a register cluster, unleashes several concurrent
   clients issuing block- and stripe-level reads and writes at random
   times, and injects brick crashes, recoveries and message loss. All
   operations are recorded into per-block histories; pending operations
   whose coordinator crashed are marked partial with their crash time.
   Every history must admit a conforming total order (Definition 5). *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module H = Linearize.History
module Check = Linearize.Check

let block_size = 64

(* Encode / decode values as block contents. *)
let value_block s =
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) block_size);
  b

let block_value b =
  match Bytes.index_opt b '\000' with
  | Some 0 -> H.nil
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

type op_record = {
  ids : (int * int) list;  (* (block index, history op id) *)
  stripe : int;
  coord : int;
  invoked_at : float;
  mutable done_ : bool;
}

let fuzz_round ~seed =
  let rng = Random.State.make [| seed; 0xfab |] in
  let m, n =
    match Random.State.int rng 3 with
    | 0 -> (1, 3)
    | 1 -> (2, 4)
    | _ -> (3, 5)
  in
  let drop = [| 0.; 0.05; 0.15 |].(Random.State.int rng 3) in
  let jitter = [| 0.; 0.; 2.5 |].(Random.State.int rng 3) in
  (* A third of the rounds run on loosely-synchronized real-time
     clocks with real skew: more aborts, but never inconsistency. *)
  let clock =
    if Random.State.int rng 3 = 0 then
      let skews = Array.init n (fun _ -> Random.State.float rng 40. -. 20.) in
      Cluster.Realtime { skew_of = (fun pid -> skews.(pid)); resolution = 1. }
    else Cluster.Logical
  in
  let cl =
    Cluster.create ~seed ~m ~n ~block_size ~clock
      ~gc_enabled:(Random.State.bool rng)
      ~optimized_modify:(Random.State.bool rng)
      ~net_config:{ Simnet.Net.default_config with drop; jitter }
      ()
  in
  let engine = cl.Cluster.engine in
  let stripes = 2 in
  let histories = Array.init (stripes * m) (fun _ -> H.create ()) in
  let hist ~stripe ~j = histories.((stripe * m) + j) in
  let ops : op_record list ref = ref [] in
  let crashes : (int * float) list ref = ref [] in
  let uid = ref 0 in

  let sleep delay =
    Dessim.Fiber.suspend (fun r ->
        ignore
          (Dessim.Engine.schedule engine ~delay (fun () ->
               Dessim.Fiber.resume r ())))
  in

  let record_op ~coord ~stripe ~blocks ~kind ~values =
    let now = Dessim.Engine.now engine in
    let ids =
      List.map2
        (fun j v ->
          let id =
            match kind with
            | H.Write ->
                H.invoke (hist ~stripe ~j) ~client:coord ~kind ~written:v ~now ()
            | H.Read -> H.invoke (hist ~stripe ~j) ~client:coord ~kind ~now ()
          in
          (j, id))
        blocks values
    in
    let r = { ids; stripe; coord; invoked_at = now; done_ = false } in
    ops := r :: !ops;
    r
  in

  let finish_op ~stripe r outcome =
    let now = Dessim.Engine.now engine in
    r.done_ <- true;
    List.iter
      (fun (j, id) ->
        let h = hist ~stripe ~j in
        match outcome with
        | `Wrote -> H.complete_write h id ~now
        | `ReadValues values -> H.complete_read h id ~value:(List.assoc j values) ~now
        | `Aborted -> H.abort h id ~now)
      r.ids
  in

  let client coord =
    Dessim.Fiber.spawn (fun () ->
        let c = cl.Cluster.coordinators.(coord) in
        let ops_count = 4 + Random.State.int rng 5 in
        for _ = 1 to ops_count do
          sleep (Random.State.float rng 30.);
          let stripe = Random.State.int rng stripes in
          match Random.State.int rng 6 with
          | 0 ->
              (* stripe write *)
              incr uid;
              let values =
                List.init m (fun j -> Printf.sprintf "s%d.u%d.b%d" seed !uid j)
              in
              let data = Array.of_list (List.map value_block values) in
              let r =
                record_op ~coord ~stripe ~blocks:(List.init m Fun.id)
                  ~kind:H.Write ~values
              in
              (match Coordinator.write_stripe c ~stripe data with
              | Ok () -> finish_op ~stripe r `Wrote
              | Error _ -> finish_op ~stripe r `Aborted)
          | 1 ->
              (* stripe read *)
              let r =
                record_op ~coord ~stripe ~blocks:(List.init m Fun.id)
                  ~kind:H.Read
                  ~values:(List.init m (fun _ -> ""))
              in
              (match Coordinator.read_stripe c ~stripe with
              | Ok data ->
                  let values =
                    List.init m (fun j -> (j, block_value data.(j)))
                  in
                  finish_op ~stripe r (`ReadValues values)
              | Error _ -> finish_op ~stripe r `Aborted)
          | 2 ->
              (* block write *)
              incr uid;
              let j = Random.State.int rng m in
              let v = Printf.sprintf "s%d.u%d.b%d" seed !uid j in
              let r =
                record_op ~coord ~stripe ~blocks:[ j ] ~kind:H.Write
                  ~values:[ v ]
              in
              (match Coordinator.write_block c ~stripe j (value_block v) with
              | Ok () -> finish_op ~stripe r `Wrote
              | Error _ -> finish_op ~stripe r `Aborted)
          | 3 ->
              (* block read *)
              let j = Random.State.int rng m in
              let r =
                record_op ~coord ~stripe ~blocks:[ j ] ~kind:H.Read
                  ~values:[ "" ]
              in
              (match Coordinator.read_block c ~stripe j with
              | Ok b -> finish_op ~stripe r (`ReadValues [ (j, block_value b) ])
              | Error _ -> finish_op ~stripe r `Aborted)
          | 4 ->
              (* multi-block write over a random range *)
              incr uid;
              let j0 = Random.State.int rng m in
              let len = 1 + Random.State.int rng (m - j0) in
              let values =
                List.init len (fun i ->
                    Printf.sprintf "s%d.u%d.b%d" seed !uid (j0 + i))
              in
              let news = Array.of_list (List.map value_block values) in
              let r =
                record_op ~coord ~stripe
                  ~blocks:(List.init len (fun i -> j0 + i))
                  ~kind:H.Write ~values
              in
              (match Coordinator.write_blocks c ~stripe j0 news with
              | Ok () -> finish_op ~stripe r `Wrote
              | Error _ -> finish_op ~stripe r `Aborted)
          | _ ->
              (* multi-block read over a random range *)
              let j0 = Random.State.int rng m in
              let len = 1 + Random.State.int rng (m - j0) in
              let r =
                record_op ~coord ~stripe
                  ~blocks:(List.init len (fun i -> j0 + i))
                  ~kind:H.Read
                  ~values:(List.init len (fun _ -> ""))
              in
              (match Coordinator.read_blocks c ~stripe j0 ~len with
              | Ok blocks ->
                  let values =
                    List.init len (fun i -> (j0 + i, block_value blocks.(i)))
                  in
                  finish_op ~stripe r (`ReadValues values)
              | Error _ -> finish_op ~stripe r `Aborted)
        done)
  in

  (* Start clients on distinct coordinators. *)
  let nclients = 2 + Random.State.int rng 2 in
  for c = 0 to nclients - 1 do
    client (c mod n)
  done;

  (* Fault injection: a transient network partition. *)
  if Random.State.int rng 2 = 0 then begin
    let cut = 1 + Random.State.int rng (n - 1) in
    let members = List.init n Fun.id in
    let side = List.filteri (fun i _ -> i < cut) members in
    let at = Random.State.float rng 150. in
    ignore
      (Dessim.Engine.schedule engine ~delay:at (fun () ->
           Simnet.Net.partition cl.Cluster.net [ side ]));
    ignore
      (Dessim.Engine.schedule engine ~delay:(at +. 30.) (fun () ->
           Simnet.Net.heal cl.Cluster.net))
  end;

  (* Fault injection: random crash/recover pairs. *)
  let injections = Random.State.int rng 4 in
  for _ = 1 to injections do
    let victim = Random.State.int rng n in
    let at = Random.State.float rng 200. in
    let back = at +. 5. +. Random.State.float rng 60. in
    ignore
      (Dessim.Engine.schedule engine ~delay:at (fun () ->
           if Brick.is_alive cl.Cluster.bricks.(victim) then begin
             crashes := (victim, Dessim.Engine.now engine) :: !crashes;
             Brick.crash cl.Cluster.bricks.(victim)
           end));
    ignore
      (Dessim.Engine.schedule engine ~delay:back (fun () ->
           Brick.recover cl.Cluster.bricks.(victim)))
  done;

  Cluster.run ~horizon:5_000. cl;

  (* Mark pending operations of crashed coordinators as partial at the
     first crash after their invocation. *)
  List.iter
    (fun r ->
      if not r.done_ then begin
        let crash_time =
          List.fold_left
            (fun acc (b, t) ->
              if b = r.coord && t >= r.invoked_at then
                match acc with
                | None -> Some t
                | Some t' -> Some (Float.min t t')
              else acc)
            None !crashes
        in
        match crash_time with
        | Some t ->
            List.iter
              (fun (j, id) -> H.crash (hist ~stripe:r.stripe ~j) id ~now:t)
              r.ids
        | None -> ()
      end)
    !ops;

  (* Every per-block history must be strictly linearizable. *)
  Array.iteri
    (fun idx h ->
      match Check.strict h with
      | Ok () -> ()
      | Error v ->
          Alcotest.failf
            "seed %d (m=%d n=%d drop=%.2f), block history %d: %a" seed m n
            drop idx Check.pp_violation v)
    histories

let test_fuzz_rounds () =
  for seed = 1 to 40 do
    fuzz_round ~seed
  done

let test_fuzz_more_faults () =
  for seed = 100 to 120 do
    fuzz_round ~seed
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "strict-linearizability",
        [
          Alcotest.test_case "randomized rounds" `Slow test_fuzz_rounds;
          Alcotest.test_case "more fault rounds" `Slow test_fuzz_more_faults;
        ] );
    ]
