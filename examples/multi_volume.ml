(* A FAB brick pool hosting volumes with different redundancy
   policies — the paper's system view: one pool of bricks, many
   logical volumes, each tuned for its own capacity-vs-availability
   trade (section 1.1, section 1.2).

   Run with:  dune exec examples/multi_volume.exe *)

module Pool = Fab.Pool
module Volume = Fab.Volume

let ok = function
  | Some (Ok x) -> x
  | Some (Error _) -> failwith "operation aborted"
  | None -> failwith "operation did not complete"

let () =
  (* Ten bricks; all volumes share them. *)
  let pool = Pool.create ~bricks:10 ~block_size:1024 () in

  (* An archive volume: 5-of-8 erasure coding, 1.6x storage overhead,
     survives 1 crash while staying cheap. *)
  let archive =
    Pool.create_volume pool ~name:"archive" ~m:5 ~n:8 ~stripes:8 ()
  in
  (* A metadata volume: 4-way replication, 4x overhead, survives 1
     crash with single-block read cost. *)
  let metadata =
    Pool.create_volume pool ~name:"metadata" ~m:1 ~n:4 ~stripes:16 ()
  in
  (* A scratch volume: 2-of-8 coding tolerating 3 simultaneous crashes. *)
  let scratch =
    Pool.create_volume pool ~name:"scratch" ~m:2 ~n:8 ~stripes:4 ()
  in
  Printf.printf "pool of %d bricks hosts volumes: %s\n" (Pool.bricks pool)
    (String.concat ", " (Pool.volume_names pool));
  List.iter
    (fun (name, v, overhead, survives) ->
      Printf.printf "  %-9s %4d blocks, %.2fx storage, survives %d crashes\n"
        name (Volume.capacity_blocks v) overhead survives)
    [
      ("archive", archive, 8. /. 5., 1);
      ("metadata", metadata, 4.0, 1);
      ("scratch", scratch, 4.0, 3);
    ];

  (* Fill each with its own pattern through different coordinators. *)
  let fill name v tag =
    let data = Bytes.make (Volume.capacity_blocks v * 1024) tag in
    ok (Pool.run_op pool (fun () -> Volume.write v ~coord:0 ~lba:0 data));
    Printf.printf "filled %s with %C\n" name tag
  in
  fill "archive" archive 'a';
  fill "metadata" metadata 'm';
  fill "scratch" scratch 's';

  (* Crash three bricks: scratch (f = 3) sails on; archive and
     metadata (f = 1) stall until bricks recover — but never corrupt. *)
  let bricks = (Pool.cluster pool).Core.Cluster.bricks in
  List.iter (fun i -> Brick.crash bricks.(i)) [ 1; 4; 7 ];
  print_endline "crashed bricks 1, 4, 7";
  let read v = Pool.run_op ~horizon:300. pool (fun () -> Volume.read v ~coord:0 ~lba:0 ~count:2) in
  (match read scratch with
  | Some (Ok b) -> Printf.printf "scratch readable: %C\n" (Bytes.get b 0)
  | _ -> print_endline "scratch unreadable?!");
  (match read archive with
  | None -> print_endline "archive stalls (needs a quorum) - safe, just unavailable"
  | Some (Ok _) -> print_endline "archive readable"
  | Some (Error _) -> print_endline "archive aborted");
  List.iter (fun i -> Brick.recover bricks.(i)) [ 1; 4 ];
  print_endline "recovered bricks 1 and 4 (7 still down)";
  (match read archive with
  | Some (Ok b) -> Printf.printf "archive readable again: %C\n" (Bytes.get b 0)
  | _ -> print_endline "archive still unavailable?!");
  (match read metadata with
  | Some (Ok b) -> Printf.printf "metadata readable again: %C\n" (Bytes.get b 0)
  | _ -> print_endline "metadata still unavailable?!");
  print_endline "done."
