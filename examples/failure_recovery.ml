(* Failure and recovery walk-through: the scenarios that motivate the
   paper's design, narrated step by step.

   Run with:  dune exec examples/failure_recovery.exe

   1. A coordinator crashes mid-write leaving a partial write; the
      next read decides its fate (roll back below m, roll forward at
      or above m) and later reads stick with that decision — strict
      linearizability in action.
   2. A brick dies, misses writes, recovers, and is re-synchronized
      with the rebuild tool.
   3. A network partition stalls the minority side without ever
      compromising safety. *)

module Cluster = Core.Cluster
module Coordinator = Core.Coordinator

let block_size = 256
let say fmt = Printf.printf fmt

let stripe_of tag m =
  Array.init m (fun i -> Bytes.make block_size (Char.chr (Char.code tag + i)))

let show_read cl ~coord ~stripe label =
  match
    Cluster.run_op ~coord cl (fun c ->
        Coordinator.with_retries c (fun () -> Coordinator.read_stripe c ~stripe))
  with
  | Some (Ok data) ->
      say "  %s -> stripe starts with %C\n" label (Bytes.get data.(0) 0);
      Some data
  | Some (Error _) ->
      say "  %s -> aborted\n" label;
      None
  | None ->
      say "  %s -> no result (stalled)\n" label;
      None

(* Crash a write coordinator while its Write-phase messages can reach
   only [reach] bricks. *)
let partial_write cl ~doomed ~reach data =
  let n = Array.length cl.Cluster.bricks in
  Cluster.spawn ~coord:doomed cl (fun c ->
      ignore (Coordinator.write_stripe c ~stripe:0 data));
  let engine = cl.Cluster.engine in
  ignore
    (Dessim.Engine.schedule engine ~delay:1.5 (fun () ->
         for dst = 0 to n - 1 do
           if not (List.mem dst reach) then
             Simnet.Net.set_link_down cl.Cluster.net ~src:doomed ~dst true
         done));
  ignore
    (Dessim.Engine.schedule engine ~delay:4.5 (fun () ->
         Brick.crash cl.Cluster.bricks.(doomed)));
  ignore
    (Dessim.Engine.schedule engine ~delay:5.0 (fun () ->
         for dst = 0 to n - 1 do
           Simnet.Net.set_link_down cl.Cluster.net ~src:doomed ~dst false
         done;
         Brick.recover cl.Cluster.bricks.(doomed)));
  Cluster.run ~horizon:50. cl

let scenario_partial_writes () =
  say "--- 1. partial writes: roll-back vs roll-forward (3-of-5 code) ---\n";
  let cl = Cluster.create ~m:3 ~n:5 ~block_size () in
  (match
     Cluster.run_op cl (fun c ->
         Coordinator.write_stripe c ~stripe:0 (stripe_of 'A' 3))
   with
  | Some (Ok ()) -> say "  wrote version 'A' normally\n"
  | _ -> failwith "seed write");

  say "  coordinator 4 starts writing 'X' but crashes: blocks reach 1 brick (< m = 3)\n";
  partial_write cl ~doomed:4 ~reach:[ 0 ] (stripe_of 'X' 3);
  ignore (show_read cl ~coord:1 ~stripe:0 "read after the crash");
  ignore (show_read cl ~coord:4 ~stripe:0 "read via the recovered coordinator");
  say "  => the partial 'X' was rolled back; it can never appear now\n\n";

  (* Let coordinator 3's logical clock observe the current timestamps
     (a coordinator that never talked to the stripe would propose a
     stale timestamp and abort before writing anything). *)
  ignore
    (Cluster.run_op ~coord:3 cl (fun c -> Coordinator.read_stripe c ~stripe:0));
  say "  coordinator 3 starts writing 'Q' and crashes: blocks reach 3 bricks (= m)\n";
  partial_write cl ~doomed:3 ~reach:[ 0; 1; 2 ] (stripe_of 'Q' 3);
  ignore (show_read cl ~coord:2 ~stripe:0 "read after the crash");
  ignore (show_read cl ~coord:0 ~stripe:0 "read again");
  say "  => enough blocks survived, so the read rolled 'Q' forward; it sticks\n\n"

let scenario_brick_rebuild () =
  say "--- 2. brick death, recovery and rebuild (5-of-8 volume) ---\n";
  let v = Fab.Volume.create ~m:5 ~n:8 ~stripes:12 ~block_size () in
  let payload tag = Bytes.make (5 * block_size) tag in
  for s = 0 to 11 do
    match
      Fab.Volume.run_op v (fun () ->
          Fab.Volume.write v ~coord:0 ~lba:(s * 5) (payload 'a'))
    with
    | Some (Ok ()) -> ()
    | _ -> failwith "fill"
  done;
  say "  filled 12 stripes with 'a'\n";
  let bricks = (Fab.Volume.cluster v).Core.Cluster.bricks in
  Brick.crash bricks.(6);
  say "  brick 6 crashed\n";
  for s = 0 to 5 do
    match
      Fab.Volume.run_op v (fun () ->
          Fab.Volume.write v ~coord:1 ~lba:(s * 5) (payload 'b'))
    with
    | Some (Ok ()) -> ()
    | _ -> failwith "degraded write"
  done;
  say "  overwrote stripes 0-5 with 'b' while brick 6 was down\n";
  Brick.recover bricks.(6);
  say "  brick 6 recovered; its log still holds the old versions\n";
  (match Fab.Volume.run_op v (fun () -> Fab.Volume.rebuild_brick v ~brick:6 ~coord:2) with
  | Some (Ok n) -> say "  rebuild touched %d stripes\n" n
  | _ -> failwith "rebuild");
  (match
     Fab.Volume.run_op v (fun () -> Fab.Volume.read v ~coord:6 ~lba:0 ~count:5)
   with
  | Some (Ok b) ->
      say "  read via brick 6 after rebuild: stripe 0 starts with %C\n\n"
        (Bytes.get b 0)
  | _ -> failwith "read after rebuild")

let scenario_partition () =
  say "--- 3. network partition: minority stalls, majority proceeds ---\n";
  let cl = Cluster.create ~m:3 ~n:5 ~block_size () in
  (match
     Cluster.run_op cl (fun c ->
         Coordinator.write_stripe c ~stripe:0 (stripe_of 'A' 3))
   with
  | Some (Ok ()) -> say "  wrote 'A' before the partition\n"
  | _ -> failwith "seed");
  Simnet.Net.partition cl.Cluster.net [ [ 0; 1; 2; 3 ]; [ 4 ] ];
  say "  partitioned: {0,1,2,3} | {4}  (quorum size is 4)\n";
  ignore (show_read cl ~coord:1 ~stripe:0 "read from the majority side");
  (match
     Cluster.run_op ~coord:4 ~horizon:200. cl (fun c ->
         Coordinator.read_stripe c ~stripe:0)
   with
  | None -> say "  read from the isolated brick 4 -> stalls (no quorum), as it must\n"
  | Some _ -> say "  unexpected completion on minority side!\n");
  Simnet.Net.heal cl.Cluster.net;
  say "  partition healed\n";
  ignore (show_read cl ~coord:4 ~stripe:0 "read via brick 4 after healing");
  say "\n"

let () =
  scenario_partial_writes ();
  scenario_brick_rebuild ();
  scenario_partition ();
  say "done.\n"
