(** Deterministic m-out-of-n erasure codes (paper section 2.1).

    A codec turns a stripe of [m] equal-sized data blocks into [n]
    encoded blocks ([n > m]); the first [m] encoded blocks are the data
    blocks themselves (the codes are systematic) and the remaining
    [n - m] are parity blocks. The original stripe can be reconstructed
    from any [m] of the [n] encoded blocks.

    Three constructions are provided, mirroring the codes the paper
    discusses:
    - {!rs}: Cauchy Reed-Solomon, any [m < n <= 256];
    - {!parity}: single XOR parity (RAID-5), [n = m + 1];
    - {!replication}: mirroring as the degenerate case [m = 1].

    All three satisfy the paper's three primitives [encode], [decode]
    and [modify].

    Every codec is compiled against one {!Gf256.Kernel} implementation,
    chosen at construction: the fastest kernel available on the machine
    by default, overridable per codec with [?kernel] or process-wide
    with the [FAB_GF_KERNEL] environment variable. All kernels compute
    byte-identical results; see {!kernel_name}. *)

type t
(** An m-of-n codec. Codecs are immutable and can be shared freely. *)

val rs : ?kernel:Gf256.Kernel.impl -> m:int -> n:int -> unit -> t
(** [rs ~m ~n ()] is a systematic Cauchy Reed-Solomon code. Any square
    submatrix of a Cauchy matrix is invertible, so any [m] of the [n]
    blocks suffice to decode.
    @raise Invalid_argument unless [1 <= m < n <= 256], or if [?kernel]
    names an unavailable kernel. *)

val parity : ?kernel:Gf256.Kernel.impl -> m:int -> unit -> t
(** [parity ~m ()] is the [m]-of-[m+1] XOR parity code (RAID-5 across
    bricks). @raise Invalid_argument unless [m >= 1]. *)

val replication : ?kernel:Gf256.Kernel.impl -> n:int -> unit -> t
(** [replication ~n ()] is 1-of-[n] mirroring: every encoded block is a
    copy of the single data block.
    @raise Invalid_argument unless [n >= 2]. *)

val m : t -> int
(** Number of data blocks per stripe. *)

val n : t -> int
(** Total number of encoded blocks per stripe. *)

val kernel : t -> Gf256.Kernel.impl
(** The GF(2^8) kernel implementation this codec was compiled against. *)

val kernel_name : t -> string
(** [Gf256.Kernel.name (kernel t)]; stamped into benchmark metadata and
    workload statistics. *)

val coeff : t -> row:int -> col:int -> Gf256.Field.t
(** [coeff t ~row ~col] is the generator-matrix entry used to weight
    data block [col] in encoded block [row]. Exposed so that
    bandwidth-optimized writes can ship precomputed parity deltas. *)

val encode : t -> Bytes.t array -> Bytes.t array
(** [encode t stripe] maps [m] data blocks to [n] encoded blocks; the
    first [m] entries of the result are (copies of) the original data
    blocks, the rest are parity.
    @raise Invalid_argument if the stripe does not have exactly [m]
    blocks of equal positive length. *)

val encode_into : t -> Bytes.t array -> into:Bytes.t array -> unit
(** [encode_into t stripe ~into] is {!encode} writing into the [n]
    caller-provided blocks of [into] (each the stripe's block length)
    instead of allocating. A data slot [into.(i)] ([i < m]) may be the
    very same buffer as [stripe.(i)] — the self-copy is skipped — which
    lets callers ship data blocks without duplicating them. Parity slots
    must not alias any stripe block. The caller owns [into] and must not
    hand the same buffers to a second operation while the first result
    is still live.
    @raise Invalid_argument on shape or length mismatch. *)

val decode : t -> (int * Bytes.t) list -> Bytes.t array
(** [decode t blocks] reconstructs the [m] data blocks from any [m]
    pairs [(index, block)] where [index] identifies the encoded block's
    position in [0, n).

    Decoding consults a bounded per-codec LRU cache of decode plans
    keyed by the (sorted) index set, so repeated decodes over the same
    surviving set skip matrix inversion; see {!plan_cache_stats}.
    @raise Invalid_argument if fewer or more than [m] blocks are given,
    if an index repeats or is out of range, or if block sizes differ. *)

val decode_into : t -> (int * Bytes.t) list -> into:Bytes.t array -> unit
(** [decode_into t blocks ~into] is {!decode} writing the [m] data
    blocks into the caller-provided buffers of [into] (each the input
    block length). [into] buffers must not alias any input block.
    @raise Invalid_argument on shape or length mismatch. *)

val modify :
  t -> data_idx:int -> parity_idx:int ->
  old_data:Bytes.t -> new_data:Bytes.t -> old_parity:Bytes.t -> Bytes.t
(** [modify t ~data_idx ~parity_idx ~old_data ~new_data ~old_parity] is
    the paper's [modifyi,j]: the new value of parity block [parity_idx]
    (in [0, n - m)) after data block [data_idx] (in [0, m)) changes from
    [old_data] to [new_data]. Equivalent to re-encoding the whole
    stripe, but needs only the one old parity block and the old and new
    data block.
    @raise Invalid_argument on out-of-range indices or size mismatch. *)

val delta : old_data:Bytes.t -> new_data:Bytes.t -> Bytes.t
(** [delta ~old_data ~new_data] is the XOR difference shipped by
    bandwidth-optimized block writes (paper section 5.2). *)

val delta_into : old_data:Bytes.t -> new_data:Bytes.t -> into:Bytes.t -> unit
(** [delta_into ~old_data ~new_data ~into] is {!delta} writing into the
    caller-provided buffer [into] (which may be [new_data] itself for an
    in-place update, but must not be [old_data]).
    @raise Invalid_argument on length mismatch. *)

val apply_delta :
  t -> data_idx:int -> parity_idx:int -> delta:Bytes.t ->
  old_parity:Bytes.t -> Bytes.t
(** [apply_delta t ~data_idx ~parity_idx ~delta ~old_parity] folds a
    precomputed {!delta} into a parity block; composing {!delta} and
    [apply_delta] equals {!modify}. *)

val apply_delta_into :
  t -> data_idx:int -> parity_idx:int -> delta:Bytes.t ->
  parity:Bytes.t -> unit
(** [apply_delta_into t ~data_idx ~parity_idx ~delta ~parity] folds a
    {!delta} into [parity] in place: [parity ^= coeff * delta]. [delta]
    must not alias [parity]. This is the allocation-free core of
    {!apply_delta} and {!modify}.
    @raise Invalid_argument on out-of-range indices or size mismatch. *)

val apply_deltas_into :
  t -> parity_idx:int -> deltas:(int * Bytes.t) array -> parity:Bytes.t ->
  unit
(** [apply_deltas_into t ~parity_idx ~deltas ~parity] folds several
    [(data_idx, delta)] pairs into [parity] with as few passes over the
    parity bytes as the kernel allows (multi-source accumulation under
    the table kernels). Equivalent to calling {!apply_delta_into} once
    per pair; used by replicas applying a multi-block write in one step.
    Deltas must not alias [parity].
    @raise Invalid_argument on out-of-range indices or size mismatch. *)

val reconstruct_block : t -> idx:int -> (int * Bytes.t) list -> Bytes.t
(** [reconstruct_block t ~idx blocks] rebuilds encoded block [idx]
    (data or parity) from any [m] other encoded blocks; used when a
    recovered brick re-syncs its block. Internally composes the
    generator row with the cached decode plan, so no intermediate data
    blocks are materialized. *)

val reconstruct_into :
  t -> idx:int -> (int * Bytes.t) list -> into:Bytes.t -> unit
(** [reconstruct_into t ~idx blocks ~into] is {!reconstruct_block}
    writing into the caller-provided buffer [into], which must not
    alias any input block.
    @raise Invalid_argument on shape or length mismatch. *)

val reset_plan_cache : t -> unit
(** Drops every memoized decode plan and zeroes the hit/miss counters.
    Exposed for benchmarks (cached vs uncached comparisons) and tests;
    plans are rebuilt on demand, so this never affects results. *)

val plan_cache_stats : t -> int * int * int
(** [(hits, misses, entries)] for the decode-plan cache since codec
    construction (or the last {!reset_plan_cache}). *)

val pp : Format.formatter -> t -> unit
(** Prints the code parameters, e.g. ["rs(5,8)"]. *)
