(* Systematic m-of-n erasure codes over GF(2^8).

   A codec is a full n x m generator matrix whose top m x m block is the
   identity. The MDS property (any m rows invertible) is guaranteed by
   construction: the parity rows form a Cauchy matrix (rs), a row of
   ones (parity, replication), and in both cases every mixed selection
   of identity and parity rows stays invertible.

   The hot paths are engineered like kernels (see DESIGN.md):
   - every generator coefficient >= 2 has its 256-entry product table
     resolved at codec construction, so encode does one branch-free
     table lookup per byte (c = 0 rows are skipped, c = 1 rows take the
     64-bit-wide XOR path in Gf256.Field);
   - decode memoizes its inverted submatrix and the row tables in a
     bounded LRU keyed by the sorted surviving-index set, so repeated
     degraded reads and recovery over the same survivors skip Gaussian
     elimination entirely;
   - [encode_into]/[decode_into]/[reconstruct_into] write into
     caller-provided buffers so steady-state paths can reuse scratch
     instead of allocating per operation. *)

module F = Gf256.Field
module M = Gf256.Matrix

type kind = Rs | Parity | Replication

(* One output row of a linear map over the stripe: the coefficient array
   and, for each coefficient, its product table. Tables for c < 2 are
   present but unused (those coefficients dispatch to memset/blit/XOR). *)
type row = { coeffs : int array; tables : Bytes.t array }

let make_row coeffs = { coeffs; tables = Array.map F.mul_table coeffs }

(* A memoized decode plan: the inverse of the generator submatrix for
   one sorted set of surviving indices, with per-entry product tables. *)
type plan = { rows : row array }

type cached_plan = { plan : plan; mutable last_use : int }

type plan_cache = {
  tbl : (string, cached_plan) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  capacity : int;
}

(* Big enough to hold every m-subset of common codes (C(8,5) = 56) but
   bounded so wide codes (C(14,10) = 1001 subsets) cannot pin unbounded
   memory: each plan is O(m^2) ints plus pointers to the globally cached
   product tables. *)
let plan_cache_capacity = 128

type t = {
  kind : kind;
  m : int;
  n : int;
  gen : M.t;
  parity_rows : row array; (* rows m..n-1 of gen, table-resolved *)
  plans : plan_cache;
}

let m t = t.m
let n t = t.n

let coeff t ~row ~col =
  if row < 0 || row >= t.n || col < 0 || col >= t.m then
    invalid_arg "Erasure.Codec.coeff: index out of range";
  M.get t.gen row col

let systematic_generator ~m ~n parity_row =
  M.init ~rows:n ~cols:m (fun r c ->
      if r < m then if r = c then 1 else 0 else parity_row (r - m) c)

let make ~kind ~m ~n gen =
  let parity_rows =
    Array.init (n - m) (fun p ->
        make_row (Array.init m (fun c -> M.get gen (m + p) c)))
  in
  {
    kind;
    m;
    n;
    gen;
    parity_rows;
    plans =
      {
        tbl = Hashtbl.create 32;
        tick = 0;
        hits = 0;
        misses = 0;
        capacity = plan_cache_capacity;
      };
  }

let rs ~m ~n =
  if m < 1 || n <= m || n > 256 then
    invalid_arg "Erasure.Codec.rs: need 1 <= m < n <= 256";
  (* xs indexes parity rows, ys indexes data columns; the two index sets
     are disjoint subsets of GF(256), so the Cauchy matrix is defined. *)
  let xs = Array.init (n - m) (fun i -> m + i) in
  let ys = Array.init m (fun j -> j) in
  let c = M.cauchy ~xs ~ys in
  make ~kind:Rs ~m ~n (systematic_generator ~m ~n (M.get c))

let parity ~m =
  if m < 1 then invalid_arg "Erasure.Codec.parity: need m >= 1";
  let n = m + 1 in
  make ~kind:Parity ~m ~n (systematic_generator ~m ~n (fun _ _ -> 1))

let replication ~n =
  if n < 2 then invalid_arg "Erasure.Codec.replication: need n >= 2";
  make ~kind:Replication ~m:1 ~n (systematic_generator ~m:1 ~n (fun _ _ -> 1))

(* ------------------------------------------------------------------ *)
(* Row application kernel                                              *)
(* ------------------------------------------------------------------ *)

(* dst <- sum_k row.coeffs.(k) * srcs.(k). The first contributing term
   overwrites (so dst needs no pre-zeroing); subsequent terms
   accumulate. All-zero rows zero-fill. *)
let apply_row row ~srcs ~dst len =
  let coeffs = row.coeffs and tables = row.tables in
  let started = ref false in
  for k = 0 to Array.length coeffs - 1 do
    let c = Array.unsafe_get coeffs k in
    if c <> 0 then begin
      let src = Array.unsafe_get srcs k in
      (if not !started then
         if c = 1 then Bytes.blit src 0 dst 0 len
         else F.mul_table_slice_set ~dst ~src (Array.unsafe_get tables k)
       else if c = 1 then F.mul_slice ~dst ~src 1
       else F.mul_table_slice ~dst ~src (Array.unsafe_get tables k));
      started := true
    end
  done;
  if not !started then Bytes.fill dst 0 len '\000'

(* ------------------------------------------------------------------ *)
(* Encode                                                              *)
(* ------------------------------------------------------------------ *)

let check_stripe t stripe =
  if Array.length stripe <> t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.encode: expected %d blocks, got %d" t.m
         (Array.length stripe));
  let len = Bytes.length stripe.(0) in
  if len = 0 then invalid_arg "Erasure.Codec.encode: empty blocks";
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.encode: block size mismatch")
    stripe;
  len

let encode_into t stripe ~into =
  let len = check_stripe t stripe in
  if Array.length into <> t.n then
    invalid_arg "Erasure.Codec.encode_into: expected n output blocks";
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.encode_into: output block size mismatch")
    into;
  for i = 0 to t.m - 1 do
    (* Data slots may alias the stripe blocks themselves; skip the
       self-copy so callers can ship data blocks without duplication. *)
    if into.(i) != stripe.(i) then Bytes.blit stripe.(i) 0 into.(i) 0 len
  done;
  for p = 0 to t.n - t.m - 1 do
    apply_row t.parity_rows.(p) ~srcs:stripe ~dst:into.(t.m + p) len
  done

let encode t stripe =
  let len = check_stripe t stripe in
  let into =
    Array.init t.n (fun i ->
        if i < t.m then Bytes.copy stripe.(i) else Bytes.create len)
  in
  encode_into t stripe ~into;
  into

(* ------------------------------------------------------------------ *)
(* Decode plans                                                        *)
(* ------------------------------------------------------------------ *)

let check_indexed_blocks t blocks =
  if List.length blocks <> t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.decode: expected %d blocks, got %d" t.m
         (List.length blocks));
  let len = Bytes.length (snd (List.hd blocks)) in
  if len = 0 then invalid_arg "Erasure.Codec.decode: empty blocks";
  let seen = Array.make t.n false in
  List.iter
    (fun (idx, b) ->
      if idx < 0 || idx >= t.n then
        invalid_arg "Erasure.Codec.decode: index out of range";
      if seen.(idx) then invalid_arg "Erasure.Codec.decode: duplicate index";
      seen.(idx) <- true;
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.decode: block size mismatch")
    blocks;
  len

let plan_key idxs = String.init (Array.length idxs) (fun i -> Char.chr idxs.(i))

let build_plan t idxs =
  let sub = M.sub_rows t.gen (Array.to_list idxs) in
  match M.invert sub with
  | None ->
      (* Impossible for our MDS constructions; defensive. *)
      invalid_arg "Erasure.Codec.decode: singular submatrix"
  | Some inv ->
      {
        rows =
          Array.init t.m (fun r ->
              make_row (Array.init t.m (fun k -> M.get inv r k)));
      }

let evict_lru cache =
  let victim = ref None in
  Hashtbl.iter
    (fun key cp ->
      match !victim with
      | Some (_, lu) when lu <= cp.last_use -> ()
      | _ -> victim := Some (key, cp.last_use))
    cache.tbl;
  match !victim with
  | Some (key, _) -> Hashtbl.remove cache.tbl key
  | None -> ()

(* [idxs] must be sorted ascending (the cache key is the index set). *)
let plan_for t idxs =
  let cache = t.plans in
  cache.tick <- cache.tick + 1;
  let key = plan_key idxs in
  match Hashtbl.find_opt cache.tbl key with
  | Some cp ->
      cache.hits <- cache.hits + 1;
      cp.last_use <- cache.tick;
      cp.plan
  | None ->
      cache.misses <- cache.misses + 1;
      let plan = build_plan t idxs in
      if Hashtbl.length cache.tbl >= cache.capacity then evict_lru cache;
      Hashtbl.replace cache.tbl key { plan; last_use = cache.tick };
      plan

let reset_plan_cache t =
  Hashtbl.reset t.plans.tbl;
  t.plans.tick <- 0;
  t.plans.hits <- 0;
  t.plans.misses <- 0

let plan_cache_stats t =
  (t.plans.hits, t.plans.misses, Hashtbl.length t.plans.tbl)

(* Sort the inputs by index so the plan key and row order are canonical
   regardless of the order blocks arrived in. *)
let sorted_inputs blocks =
  let arr = Array.of_list blocks in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  (Array.map fst arr, Array.map snd arr)

let decode_into t blocks ~into =
  let len = check_indexed_blocks t blocks in
  if Array.length into <> t.m then
    invalid_arg "Erasure.Codec.decode_into: expected m output blocks";
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.decode_into: output block size mismatch")
    into;
  let idxs, srcs = sorted_inputs blocks in
  let plan = plan_for t idxs in
  for r = 0 to t.m - 1 do
    apply_row plan.rows.(r) ~srcs ~dst:into.(r) len
  done

let decode t blocks =
  let len = check_indexed_blocks t blocks in
  let into = Array.init t.m (fun _ -> Bytes.create len) in
  decode_into t blocks ~into;
  into

(* ------------------------------------------------------------------ *)
(* Deltas and parity updates                                           *)
(* ------------------------------------------------------------------ *)

let delta_into ~old_data ~new_data ~into =
  let len = Bytes.length old_data in
  if Bytes.length new_data <> len || Bytes.length into <> len then
    invalid_arg "Erasure.Codec.delta_into: size mismatch";
  if into != new_data then Bytes.blit new_data 0 into 0 len;
  F.mul_slice ~dst:into ~src:old_data 1

let delta ~old_data ~new_data =
  let len = Bytes.length old_data in
  if Bytes.length new_data <> len then
    invalid_arg "Erasure.Codec.delta: size mismatch";
  let d = Bytes.create len in
  delta_into ~old_data ~new_data ~into:d;
  d

let check_delta_indices name t ~data_idx ~parity_idx =
  if data_idx < 0 || data_idx >= t.m then
    invalid_arg (Printf.sprintf "Erasure.Codec.%s: data_idx out of range" name);
  if parity_idx < 0 || parity_idx >= t.n - t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.%s: parity_idx out of range" name)

let apply_delta_into t ~data_idx ~parity_idx ~delta ~parity =
  check_delta_indices "apply_delta_into" t ~data_idx ~parity_idx;
  if Bytes.length delta <> Bytes.length parity then
    invalid_arg "Erasure.Codec.apply_delta_into: size mismatch";
  let row = t.parity_rows.(parity_idx) in
  let c = row.coeffs.(data_idx) in
  if c = 0 then ()
  else if c = 1 then F.mul_slice ~dst:parity ~src:delta 1
  else F.mul_table_slice ~dst:parity ~src:delta row.tables.(data_idx)

let apply_delta t ~data_idx ~parity_idx ~delta ~old_parity =
  check_delta_indices "apply_delta" t ~data_idx ~parity_idx;
  if Bytes.length delta <> Bytes.length old_parity then
    invalid_arg "Erasure.Codec.apply_delta: size mismatch";
  let out = Bytes.copy old_parity in
  apply_delta_into t ~data_idx ~parity_idx ~delta ~parity:out;
  out

let modify t ~data_idx ~parity_idx ~old_data ~new_data ~old_parity =
  apply_delta t ~data_idx ~parity_idx ~delta:(delta ~old_data ~new_data)
    ~old_parity

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

(* Rebuilding encoded block [idx] from survivors is the single linear
   map gen_row(idx) . inv(sub), so we compose the coefficient vectors
   (m scalar multiply-accumulates per entry) instead of materializing
   the m intermediate data blocks. *)
let reconstruct_row t plan ~idx =
  if idx < t.m then plan.rows.(idx)
  else
    make_row
      (Array.init t.m (fun k ->
           let acc = ref 0 in
           for j = 0 to t.m - 1 do
             acc :=
               F.add !acc (F.mul (M.get t.gen idx j) plan.rows.(j).coeffs.(k))
           done;
           !acc))

let reconstruct_into t ~idx blocks ~into =
  if idx < 0 || idx >= t.n then
    invalid_arg "Erasure.Codec.reconstruct_into: index out of range";
  let len = check_indexed_blocks t blocks in
  if Bytes.length into <> len then
    invalid_arg "Erasure.Codec.reconstruct_into: output block size mismatch";
  let idxs, srcs = sorted_inputs blocks in
  let plan = plan_for t idxs in
  apply_row (reconstruct_row t plan ~idx) ~srcs ~dst:into len

let reconstruct_block t ~idx blocks =
  if idx < 0 || idx >= t.n then
    invalid_arg "Erasure.Codec.reconstruct_block: index out of range";
  let len = check_indexed_blocks t blocks in
  let out = Bytes.create len in
  reconstruct_into t ~idx blocks ~into:out;
  out

let pp fmt t =
  let name =
    match t.kind with
    | Rs -> "rs"
    | Parity -> "parity"
    | Replication -> "replication"
  in
  Format.fprintf fmt "%s(%d,%d)" name t.m t.n
