(* Systematic m-of-n erasure codes over GF(2^8).

   A codec is a full n x m generator matrix whose top m x m block is the
   identity. The MDS property (any m rows invertible) is guaranteed by
   construction: the parity rows form a Cauchy matrix (rs), a row of
   ones (parity, replication), and in both cases every mixed selection
   of identity and parity rows stays invertible.

   The hot paths are engineered like kernels (see DESIGN.md 4b):
   - every codec picks one Gf256.Kernel implementation at construction
     (fastest available by default, overridable per codec or via the
     FAB_GF_KERNEL environment variable) and precompiles its linear maps
     against it, so steady-state encode/decode never branches on kernel
     choice or builds a table;
   - encode applies all n - m parity rows as one fused Kernel.rows map
     per stripe, and decode memoizes its inverted submatrix as a fused
     map in a bounded LRU keyed by the sorted surviving-index set, so
     repeated degraded reads and recovery over the same survivors skip
     Gaussian elimination and table setup entirely;
   - parity-delta application goes through per-(parity, data)
     precompiled multipliers, including a batched entry point that folds
     several deltas into a parity block in a single pass;
   - [encode_into]/[decode_into]/[reconstruct_into] write into
     caller-provided buffers so steady-state paths can reuse scratch
     instead of allocating per operation. *)

module F = Gf256.Field
module M = Gf256.Matrix
module K = Gf256.Kernel

type kind = Rs | Parity | Replication

(* A memoized decode plan: the inverse of the generator submatrix for
   one sorted set of surviving indices, precompiled as a fused kernel
   map. Reconstruction rows (generator row composed with the inverse)
   are derived lazily per target index and memoized alongside. *)
type plan = {
  p_rows : K.rows; (* m x m: survivors -> data blocks *)
  p_coeffs : int array array; (* the inverse matrix itself *)
  p_recon : K.rows option array; (* length n: survivors -> block idx *)
}

type cached_plan = { plan : plan; mutable last_use : int }

type plan_cache = {
  tbl : (string, cached_plan) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  capacity : int;
  lock : Mutex.t;
      (* The cache is shared by every coordinator of a deployment; on
         the multicore backend concurrent decodes race on it. Plans
         themselves are immutable once built (the per-index recon rows
         are memoized under this same lock). *)
}

(* Big enough to hold every m-subset of common codes (C(8,5) = 56) but
   bounded so wide codes (C(14,10) = 1001 subsets) cannot pin unbounded
   memory: each plan is O(m^2) ints plus its precompiled kernel map. *)
let plan_cache_capacity = 128

type t = {
  kind : kind;
  m : int;
  n : int;
  gen : M.t;
  kernel : K.impl;
  encode_rows : K.rows; (* (n - m) x m parity map, fused *)
  delta_muls : K.mul array array; (* (n - m) x m precompiled multipliers *)
  plans : plan_cache;
}

let m t = t.m
let n t = t.n
let kernel t = t.kernel
let kernel_name t = K.name t.kernel

let coeff t ~row ~col =
  if row < 0 || row >= t.n || col < 0 || col >= t.m then
    invalid_arg "Erasure.Codec.coeff: index out of range";
  M.get t.gen row col

let systematic_generator ~m ~n parity_row =
  M.init ~rows:n ~cols:m (fun r c ->
      if r < m then if r = c then 1 else 0 else parity_row (r - m) c)

let make ~kind ?kernel ~m ~n gen =
  let kernel = K.select ?impl:kernel () in
  let parity_coeffs =
    Array.init (n - m) (fun p -> Array.init m (fun c -> M.get gen (m + p) c))
  in
  {
    kind;
    m;
    n;
    gen;
    kernel;
    encode_rows = K.make_rows kernel parity_coeffs;
    delta_muls = Array.map (Array.map (K.make_mul kernel)) parity_coeffs;
    plans =
      {
        tbl = Hashtbl.create 32;
        tick = 0;
        hits = 0;
        misses = 0;
        capacity = plan_cache_capacity;
        lock = Mutex.create ();
      };
  }

let rs ?kernel ~m ~n () =
  if m < 1 || n <= m || n > 256 then
    invalid_arg "Erasure.Codec.rs: need 1 <= m < n <= 256";
  (* xs indexes parity rows, ys indexes data columns; the two index sets
     are disjoint subsets of GF(256), so the Cauchy matrix is defined. *)
  let xs = Array.init (n - m) (fun i -> m + i) in
  let ys = Array.init m (fun j -> j) in
  let c = M.cauchy ~xs ~ys in
  make ~kind:Rs ?kernel ~m ~n (systematic_generator ~m ~n (M.get c))

let parity ?kernel ~m () =
  if m < 1 then invalid_arg "Erasure.Codec.parity: need m >= 1";
  let n = m + 1 in
  make ~kind:Parity ?kernel ~m ~n (systematic_generator ~m ~n (fun _ _ -> 1))

let replication ?kernel ~n () =
  if n < 2 then invalid_arg "Erasure.Codec.replication: need n >= 2";
  make ~kind:Replication ?kernel ~m:1 ~n
    (systematic_generator ~m:1 ~n (fun _ _ -> 1))

(* ------------------------------------------------------------------ *)
(* Encode                                                              *)
(* ------------------------------------------------------------------ *)

let check_stripe t stripe =
  if Array.length stripe <> t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.encode: expected %d blocks, got %d" t.m
         (Array.length stripe));
  let len = Bytes.length stripe.(0) in
  if len = 0 then invalid_arg "Erasure.Codec.encode: empty blocks";
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.encode: block size mismatch")
    stripe;
  len

let encode_into t stripe ~into =
  let len = check_stripe t stripe in
  if Array.length into <> t.n then
    invalid_arg "Erasure.Codec.encode_into: expected n output blocks";
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.encode_into: output block size mismatch")
    into;
  for i = 0 to t.m - 1 do
    (* Data slots may alias the stripe blocks themselves; skip the
       self-copy so callers can ship data blocks without duplication. *)
    if into.(i) != stripe.(i) then Bytes.blit stripe.(i) 0 into.(i) 0 len
  done;
  (* All parity rows in one fused pass over the stripe. *)
  K.apply_rows t.encode_rows ~srcs:stripe
    ~dsts:(Array.sub into t.m (t.n - t.m))

let encode t stripe =
  let len = check_stripe t stripe in
  let into =
    Array.init t.n (fun i ->
        if i < t.m then Bytes.copy stripe.(i) else Bytes.create len)
  in
  encode_into t stripe ~into;
  into

(* ------------------------------------------------------------------ *)
(* Decode plans                                                        *)
(* ------------------------------------------------------------------ *)

let check_indexed_blocks t blocks =
  if List.length blocks <> t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.decode: expected %d blocks, got %d" t.m
         (List.length blocks));
  let len = Bytes.length (snd (List.hd blocks)) in
  if len = 0 then invalid_arg "Erasure.Codec.decode: empty blocks";
  let seen = Array.make t.n false in
  List.iter
    (fun (idx, b) ->
      if idx < 0 || idx >= t.n then
        invalid_arg "Erasure.Codec.decode: index out of range";
      if seen.(idx) then invalid_arg "Erasure.Codec.decode: duplicate index";
      seen.(idx) <- true;
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.decode: block size mismatch")
    blocks;
  len

let plan_key idxs = String.init (Array.length idxs) (fun i -> Char.chr idxs.(i))

let build_plan t idxs =
  let sub = M.sub_rows t.gen (Array.to_list idxs) in
  match M.invert sub with
  | None ->
      (* Impossible for our MDS constructions; defensive. *)
      invalid_arg "Erasure.Codec.decode: singular submatrix"
  | Some inv ->
      let p_coeffs =
        Array.init t.m (fun r -> Array.init t.m (fun k -> M.get inv r k))
      in
      {
        p_rows = K.make_rows t.kernel p_coeffs;
        p_coeffs;
        p_recon = Array.make t.n None;
      }

let evict_lru cache =
  let victim = ref None in
  Hashtbl.iter
    (fun key cp ->
      match !victim with
      | Some (_, lu) when lu <= cp.last_use -> ()
      | _ -> victim := Some (key, cp.last_use))
    cache.tbl;
  match !victim with
  | Some (key, _) -> Hashtbl.remove cache.tbl key
  | None -> ()

(* [idxs] must be sorted ascending (the cache key is the index set). *)
let plan_for t idxs =
  let cache = t.plans in
  Mutex.lock cache.lock;
  cache.tick <- cache.tick + 1;
  let key = plan_key idxs in
  let plan =
    match Hashtbl.find_opt cache.tbl key with
    | Some cp ->
        cache.hits <- cache.hits + 1;
        cp.last_use <- cache.tick;
        cp.plan
    | None ->
        cache.misses <- cache.misses + 1;
        let plan = build_plan t idxs in
        if Hashtbl.length cache.tbl >= cache.capacity then evict_lru cache;
        Hashtbl.replace cache.tbl key { plan; last_use = cache.tick };
        plan
  in
  Mutex.unlock cache.lock;
  plan

let reset_plan_cache t =
  Mutex.lock t.plans.lock;
  Hashtbl.reset t.plans.tbl;
  t.plans.tick <- 0;
  t.plans.hits <- 0;
  t.plans.misses <- 0;
  Mutex.unlock t.plans.lock

let plan_cache_stats t =
  Mutex.lock t.plans.lock;
  let r = (t.plans.hits, t.plans.misses, Hashtbl.length t.plans.tbl) in
  Mutex.unlock t.plans.lock;
  r

(* Sort the inputs by index so the plan key and row order are canonical
   regardless of the order blocks arrived in. *)
let sorted_inputs blocks =
  let arr = Array.of_list blocks in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  (Array.map fst arr, Array.map snd arr)

let decode_into t blocks ~into =
  let len = check_indexed_blocks t blocks in
  if Array.length into <> t.m then
    invalid_arg "Erasure.Codec.decode_into: expected m output blocks";
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Erasure.Codec.decode_into: output block size mismatch")
    into;
  let idxs, srcs = sorted_inputs blocks in
  let plan = plan_for t idxs in
  K.apply_rows plan.p_rows ~srcs ~dsts:into

let decode t blocks =
  let len = check_indexed_blocks t blocks in
  let into = Array.init t.m (fun _ -> Bytes.create len) in
  decode_into t blocks ~into;
  into

(* ------------------------------------------------------------------ *)
(* Deltas and parity updates                                           *)
(* ------------------------------------------------------------------ *)

let delta_into ~old_data ~new_data ~into =
  let len = Bytes.length old_data in
  if Bytes.length new_data <> len || Bytes.length into <> len then
    invalid_arg "Erasure.Codec.delta_into: size mismatch";
  if into != new_data then Bytes.blit new_data 0 into 0 len;
  F.mul_slice ~dst:into ~src:old_data 1

let delta ~old_data ~new_data =
  let len = Bytes.length old_data in
  if Bytes.length new_data <> len then
    invalid_arg "Erasure.Codec.delta: size mismatch";
  let d = Bytes.create len in
  delta_into ~old_data ~new_data ~into:d;
  d

let check_delta_indices name t ~data_idx ~parity_idx =
  if data_idx < 0 || data_idx >= t.m then
    invalid_arg (Printf.sprintf "Erasure.Codec.%s: data_idx out of range" name);
  if parity_idx < 0 || parity_idx >= t.n - t.m then
    invalid_arg
      (Printf.sprintf "Erasure.Codec.%s: parity_idx out of range" name)

let apply_delta_into t ~data_idx ~parity_idx ~delta ~parity =
  check_delta_indices "apply_delta_into" t ~data_idx ~parity_idx;
  if Bytes.length delta <> Bytes.length parity then
    invalid_arg "Erasure.Codec.apply_delta_into: size mismatch";
  K.mul_acc t.delta_muls.(parity_idx).(data_idx) ~dst:parity ~src:delta

(* Fold several data-block deltas into one parity block with as few
   passes over the parity bytes as the kernel allows. Equivalent to
   iterating {!apply_delta_into}. *)
let apply_deltas_into t ~parity_idx ~deltas ~parity =
  if parity_idx < 0 || parity_idx >= t.n - t.m then
    invalid_arg "Erasure.Codec.apply_deltas_into: parity_idx out of range";
  let len = Bytes.length parity in
  Array.iter
    (fun (data_idx, d) ->
      if data_idx < 0 || data_idx >= t.m then
        invalid_arg "Erasure.Codec.apply_deltas_into: data_idx out of range";
      if Bytes.length d <> len then
        invalid_arg "Erasure.Codec.apply_deltas_into: size mismatch")
    deltas;
  let row = t.delta_muls.(parity_idx) in
  K.mul_acc_multi
    (Array.map (fun (di, _) -> row.(di)) deltas)
    ~dst:parity
    ~srcs:(Array.map snd deltas)

let apply_delta t ~data_idx ~parity_idx ~delta ~old_parity =
  check_delta_indices "apply_delta" t ~data_idx ~parity_idx;
  if Bytes.length delta <> Bytes.length old_parity then
    invalid_arg "Erasure.Codec.apply_delta: size mismatch";
  let out = Bytes.copy old_parity in
  apply_delta_into t ~data_idx ~parity_idx ~delta ~parity:out;
  out

let modify t ~data_idx ~parity_idx ~old_data ~new_data ~old_parity =
  apply_delta t ~data_idx ~parity_idx ~delta:(delta ~old_data ~new_data)
    ~old_parity

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

(* Rebuilding encoded block [idx] from survivors is the single linear
   map gen_row(idx) . inv(sub), so we compose the coefficient vectors
   (m scalar multiply-accumulates per entry) instead of materializing
   the m intermediate data blocks. The compiled single-row map is
   memoized on the plan, so steady-state recovery of the same block
   from the same survivors pays no setup. *)
let recon_rows t plan ~idx =
  Mutex.lock t.plans.lock;
  let cached = plan.p_recon.(idx) in
  Mutex.unlock t.plans.lock;
  match cached with
  | Some rows -> rows
  | None ->
      let coeffs =
        if idx < t.m then plan.p_coeffs.(idx)
        else
          Array.init t.m (fun k ->
              let acc = ref 0 in
              for j = 0 to t.m - 1 do
                acc :=
                  F.add !acc (F.mul (M.get t.gen idx j) plan.p_coeffs.(j).(k))
              done;
              !acc)
      in
      let rows = K.make_rows t.kernel [| coeffs |] in
      Mutex.lock t.plans.lock;
      (* A racing builder produced an equivalent map; keep either. *)
      let rows =
        match plan.p_recon.(idx) with
        | Some prior -> prior
        | None ->
            plan.p_recon.(idx) <- Some rows;
            rows
      in
      Mutex.unlock t.plans.lock;
      rows

let reconstruct_into t ~idx blocks ~into =
  if idx < 0 || idx >= t.n then
    invalid_arg "Erasure.Codec.reconstruct_into: index out of range";
  let len = check_indexed_blocks t blocks in
  if Bytes.length into <> len then
    invalid_arg "Erasure.Codec.reconstruct_into: output block size mismatch";
  let idxs, srcs = sorted_inputs blocks in
  let plan = plan_for t idxs in
  K.apply_rows (recon_rows t plan ~idx) ~srcs ~dsts:[| into |]

let reconstruct_block t ~idx blocks =
  if idx < 0 || idx >= t.n then
    invalid_arg "Erasure.Codec.reconstruct_block: index out of range";
  let len = check_indexed_blocks t blocks in
  let out = Bytes.create len in
  reconstruct_into t ~idx blocks ~into:out;
  out

let pp fmt t =
  let name =
    match t.kind with
    | Rs -> "rs"
    | Parity -> "parity"
    | Replication -> "replication"
  in
  Format.fprintf fmt "%s(%d,%d)" name t.m t.n
