type addr = int

type config = { delay : float; jitter : float; drop : float }

let default_config = { delay = 1.0; jitter = 0.; drop = 0. }

type 'msg t = {
  engine : Dessim.Engine.t;
  n : int;
  mutable config : config;
  handlers : (src:addr -> 'msg -> unit) option array;
  mutable groups : int array option;  (* partition group per address *)
  dead_links : (addr * addr, unit) Hashtbl.t;
  msgs : Metrics.Counter.t;
  bytes : Metrics.Counter.t;
  bg_msgs : Metrics.Counter.t;
  bg_bytes : Metrics.Counter.t;
  drops : Metrics.Counter.t;
  drops_dead : Metrics.Counter.t;
  obs : Obs.t;
  inflight : int array;  (* messages queued for delivery, per destination *)
}

let create ?(metrics = Metrics.Registry.create ()) ?(obs = Obs.create ())
    engine ~config ~n =
  if n <= 0 then invalid_arg "Simnet.Net.create: n <= 0";
  {
    engine;
    n;
    config;
    handlers = Array.make n None;
    groups = None;
    dead_links = Hashtbl.create 8;
    msgs = Metrics.Registry.counter metrics "net.msgs";
    bytes = Metrics.Registry.counter metrics "net.bytes";
    bg_msgs = Metrics.Registry.counter metrics "net.msgs.bg";
    bg_bytes = Metrics.Registry.counter metrics "net.bytes.bg";
    drops = Metrics.Registry.counter metrics "net.drops";
    drops_dead = Metrics.Registry.counter metrics "net.drops.dead";
    obs;
    inflight = Array.make n 0;
  }

let n t = t.n
let obs t = t.obs
let engine t = t.engine

let check_addr t a =
  if a < 0 || a >= t.n then invalid_arg "Simnet.Net: address out of range"

let register t a handler =
  check_addr t a;
  t.handlers.(a) <- Some handler

let reachable t src dst =
  (not (Hashtbl.mem t.dead_links (src, dst)))
  &&
  match t.groups with
  | None -> true
  | Some groups -> groups.(src) = groups.(dst)

let send ?(background = false) ?(ctx = Obs.no_ctx) ?info t ~src ~dst
    ~bytes_on_wire msg =
  check_addr t src;
  check_addr t dst;
  if bytes_on_wire < 0 then invalid_arg "Simnet.Net.send: negative size";
  Metrics.Counter.incr (if background then t.bg_msgs else t.msgs);
  Metrics.Counter.incr ~by:(float_of_int bytes_on_wire)
    (if background then t.bg_bytes else t.bytes);
  let rng = Dessim.Engine.rng t.engine in
  let dropped =
    t.config.drop > 0. && Random.State.float rng 1.0 < t.config.drop
  in
  if dropped then Metrics.Counter.incr t.drops;
  let observing = Obs.enabled t.obs in
  let label = match info with Some l -> l | None -> "msg" in
  if observing then begin
    let now = Dessim.Engine.now t.engine in
    Obs.emit t.obs
      {
        Obs.time = now;
        actor = Obs.Brick src;
        op = ctx.Obs.op;
        phase = ctx.Obs.phase;
        kind = Obs.Msg_send { dst; bytes = bytes_on_wire; label; bg = background };
      };
    if dropped then
      Obs.emit t.obs
        {
          Obs.time = now;
          actor = Obs.Brick src;
          op = ctx.Obs.op;
          phase = ctx.Obs.phase;
          kind = Obs.Msg_drop { dst; bytes = bytes_on_wire; bg = background };
        }
  end;
  (* Partitions are checked at send time: a message sent across a
     partition is lost, like a frame into an unplugged switch port. *)
  if (not dropped) && reachable t src dst then begin
    let delay =
      t.config.delay
      +.
      if t.config.jitter > 0. then Random.State.float rng t.config.jitter
      else 0.
    in
    t.inflight.(dst) <- t.inflight.(dst) + 1;
    if observing then
      Obs.emit t.obs
        {
          Obs.time = Dessim.Engine.now t.engine;
          actor = Obs.Brick dst;
          op = -1;
          phase = None;
          kind = Obs.Queue_depth { depth = t.inflight.(dst) };
        };
    ignore
      (Dessim.Engine.schedule t.engine ~delay (fun () ->
           t.inflight.(dst) <- t.inflight.(dst) - 1;
           if Obs.enabled t.obs then
             Obs.emit t.obs
               {
                 Obs.time = Dessim.Engine.now t.engine;
                 actor = Obs.Brick dst;
                 op = ctx.Obs.op;
                 phase = ctx.Obs.phase;
                 kind = Obs.Msg_recv { src; label };
               };
           match t.handlers.(dst) with
           | Some handler -> handler ~src msg
           | None -> Metrics.Counter.incr t.drops_dead))
  end

let count_dead_drop t = Metrics.Counter.incr t.drops_dead

let partition t groups =
  let assignment = Array.make t.n (-1) in
  List.iteri
    (fun gid members ->
      List.iter
        (fun a ->
          check_addr t a;
          if assignment.(a) <> -1 then
            invalid_arg "Simnet.Net.partition: address in two groups";
          assignment.(a) <- gid)
        members)
    groups;
  (* Unlisted addresses share one implicit group. *)
  let implicit = List.length groups in
  Array.iteri (fun a g -> if g = -1 then assignment.(a) <- implicit) assignment;
  t.groups <- Some assignment

let heal t = t.groups <- None
let set_drop t p =
  if p < 0. || p >= 1. then
    invalid_arg "Simnet.Net.set_drop: need 0 <= p < 1 for fair loss";
  t.config <- { t.config with drop = p }

let set_delay t ~delay ~jitter =
  if delay < 0. || jitter < 0. then
    invalid_arg "Simnet.Net.set_delay: negative delay";
  t.config <- { t.config with delay; jitter }

let config t = t.config

let set_link_down t ~src ~dst down =
  check_addr t src;
  check_addr t dst;
  if down then Hashtbl.replace t.dead_links (src, dst) ()
  else Hashtbl.remove t.dead_links (src, dst)
