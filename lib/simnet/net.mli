(** Simulated message-passing network (paper section 2's model).

    Channels between processes deliver each message after a one-way
    delay, may drop messages independently with a fixed probability,
    may reorder them (through delay jitter), and may be partitioned.
    Channels never corrupt messages. Fair loss holds as long as the
    drop probability is below 1: a message retransmitted forever gets
    through infinitely often, which is what the paper's [quorum()]
    primitive builds on.

    The network counts messages and payload bytes into a
    {!Metrics.Registry} under the names ["net.msgs"] and
    ["net.bytes"] (plus ["net.drops"] for simulated losses and
    ["net.drops.dead"] for messages to unregistered or crashed
    destinations); Table 1 reproductions read those counters. When the deployment's {!Obs.t}
    hub is enabled the network additionally emits [Msg_send] /
    [Msg_recv] / [Msg_drop] events attributed to the sending
    operation, and per-destination [Queue_depth] samples. *)

type addr = int
(** Process address in [0, n). *)

type config = {
  delay : float;  (** Base one-way delay, the paper's delta. *)
  jitter : float;
      (** Extra delay drawn uniformly from [0, jitter]; a positive
          jitter makes reordering possible. *)
  drop : float;  (** Independent per-message drop probability. *)
}

val default_config : config
(** delay = 1.0, jitter = 0., drop = 0. — the deterministic setting
    used for cost accounting (latency in units of delta). *)

type 'msg t
(** A network carrying messages of type ['msg]. *)

val create :
  ?metrics:Metrics.Registry.t -> ?obs:Obs.t -> Dessim.Engine.t ->
  config:config -> n:int -> 'msg t
(** [create engine ~config ~n] is a network over addresses
    [0 .. n-1]. The default [obs] hub is a fresh, disabled one. *)

val register : 'msg t -> addr -> (src:addr -> 'msg -> unit) -> unit
(** [register t a handler] installs the message handler for address
    [a], replacing any previous one. Messages to an address without a
    handler are dropped (models a process that never came up) and
    counted under ["net.drops.dead"]. *)

val count_dead_drop : 'msg t -> unit
(** Bump ["net.drops.dead"]: a message that reached a registered
    handler which turned out to be dead (crashed process). The RPC
    layer calls this, since only it can see a handler decline. *)

val send :
  ?background:bool ->
  ?ctx:Obs.ctx ->
  ?info:string ->
  'msg t -> src:addr -> dst:addr -> bytes_on_wire:int -> 'msg -> unit
(** [send t ~src ~dst ~bytes_on_wire msg] queues [msg] for delivery.
    With [~background:true] the message is counted under
    ["net.msgs.bg"] / ["net.bytes.bg"] instead of the foreground
    counters — used for asynchronous garbage collection, which Table 1
    excludes from operation costs.
    [bytes_on_wire] is the accounted payload size — the register layer
    passes the number of block bytes carried, matching the paper's
    bandwidth unit B. Sending to a crashed or partitioned-away process
    is allowed; the message is just lost or ignored.
    [ctx] attributes the emitted observability events to an operation
    and phase; [info] is a short human label for the message (shown in
    traces), defaulting to ["msg"]. *)

val partition : 'msg t -> addr list list -> unit
(** [partition t groups] splits the network: messages flow only within
    a group. Addresses not listed form an implicit extra group.
    In-flight messages are unaffected. *)

val heal : 'msg t -> unit
(** Remove any partition. *)

val set_drop : 'msg t -> float -> unit
(** Change the drop probability for subsequently sent messages. *)

val set_link_down : 'msg t -> src:addr -> dst:addr -> bool -> unit
(** [set_link_down t ~src ~dst down] kills or revives the directed
    link; used for fine-grained fault injection. *)

val set_delay : 'msg t -> delay:float -> jitter:float -> unit
(** Change the one-way delay and jitter for subsequently sent messages
    (the chaos stack's [Slow] fault). In-flight messages keep the
    delay they were sent with. @raise Invalid_argument on negative
    values. *)

val config : 'msg t -> config
(** The current delay/jitter/drop configuration; the nemesis captures
    it at install time so restore can put it back. *)

val n : 'msg t -> int

val obs : 'msg t -> Obs.t
(** The observability hub events are emitted to. *)

val engine : 'msg t -> Dessim.Engine.t
(** The engine deliveries are scheduled on; layers above use it to
    schedule their own work (e.g. batch flushes) at send instants. *)
