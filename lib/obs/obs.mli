(** Structured observability for the whole protocol stack.

    Every layer — coordinator, replica, brick, quorum RPC, simulated
    network, event engine — reports what it does as typed {!event}s
    tagged with sim-time, actor, operation id and protocol phase. A
    per-deployment hub ({!t}) fans events out to pluggable {!Sink}s:
    an in-memory ring buffer, a JSONL stream, a Chrome [trace_event]
    exporter (loadable in Perfetto / [chrome://tracing]), or the
    [Logs]-based stderr trace.

    {b Overhead guarantee}: a hub with no sinks is disabled, and every
    emission site is written
    [if Obs.enabled hub then Obs.emit hub {...}] — one boolean load and
    branch per potential event, no allocation. Enabling observability
    is therefore free until the first {!add_sink}.

    {b Span model}: the coordinator allocates one op id per client
    operation ({!next_op}) and brackets it with [Span_start] /
    [Span_end] (outcome [Ok | Abort | Retry]). Quorum rounds inside the
    operation are bracketed by [Phase_start] / [Phase_end]; the op id
    and phase ride across RPC boundaries in a {!ctx}, so replica-side
    disk I/O and network events are attributed to the operation that
    caused them. Nested operations (a read that falls back to recovery)
    get fresh op ids, so per-op phases never overlap. *)

(** {1 Event model} *)

type phase = Fast_read | Order | Write | Modify | Recover | Gc

val phase_name : phase -> string
(** ["fast-read" | "order" | "write" | "modify" | "recover" | "gc"]. *)

val phase_of_name : string -> phase option
val all_phases : phase list

type outcome = Ok | Abort | Retry | Unavailable
(** [Retry] marks an aborted attempt whose caller will retry it (set
    via the coordinator's retry hint), letting latency analyses
    distinguish transient conflicts from final failures.
    [Unavailable] marks an operation that hit its deadline with too few
    reachable members and failed fast instead of retransmitting. *)

val outcome_name : outcome -> string
val outcome_of_name : string -> outcome option

type actor = Coord of int | Brick of int | Sim
(** Who emitted an event: a coordinator, a brick/replica (network
    endpoint), or the simulation engine itself. *)

val actor_name : actor -> string
(** ["c<i>" | "b<i>" | "sim"]. *)

val actor_of_name : string -> actor option

type ctx = { op : int; phase : phase option }
(** Attribution context threaded through RPC calls and handlers. *)

val no_ctx : ctx
(** [{ op = -1; phase = None }] — events not tied to an operation. *)

val ctx : ?phase:phase -> int -> ctx

type kind =
  | Span_start of { op_kind : string; stripe : int }
  | Span_end of { op_kind : string; stripe : int; outcome : outcome }
  | Phase_start
  | Phase_end
  | Phase_elided
      (** A quorum round the coordinator proved it could skip (the
          order round of a warm write); [phase] names the round that
          did not happen. *)
  | Msg_send of { dst : int; bytes : int; label : string; bg : bool }
  | Msg_queued of { dst : int; bytes : int; label : string }
      (** One operation's item inside a coalesced batch envelope: the
          envelope itself is an untagged [Msg_send]; each constituent
          is attributed to its operation by one of these. *)
  | Msg_recv of { src : int; label : string }
  | Msg_drop of { dst : int; bytes : int; bg : bool }
  | Io_read of { blocks : int }
  | Io_write of { blocks : int }
  | Timeout of { missing : int; attempt : int }
      (** A retransmission round: [attempt] counts retransmissions of
          this call (1 = first retransmit), [missing] is how many
          members still owe a reply. *)
  | Queue_depth of { depth : int }
  | Fault of { label : string }
      (** A chaos-nemesis action (crash, partition, bit-rot, ...);
          [label] is the plan event in plan-file syntax. *)

type event = {
  time : float;  (** sim-time *)
  actor : actor;
  op : int;  (** -1 = not tied to an operation *)
  phase : phase option;
  kind : kind;
}

val ev_name : kind -> string
val pp_event : Format.formatter -> event -> unit
(** Human-readable one-line rendering (the stderr trace format). *)

(** {1 Sinks and the hub} *)

module Sink : sig
  type t = { emit : event -> unit; close : unit -> unit }

  val make : ?close:(unit -> unit) -> (event -> unit) -> t

  val serialized : t -> t
  (** Guard a sink with a private mutex so concurrent emitters (the
      multicore backend) cannot interleave inside it. Sim-backed runs
      need no wrapping and pay nothing. *)
end

type t
(** An event hub. Created disabled; the first {!add_sink} enables it. *)

val create : unit -> t

val enabled : t -> bool
(** Emission guard: call sites must check this before building an
    event, so disabled hubs cost one branch per potential event. *)

val add_sink : t -> Sink.t -> unit
(** Attach a sink (and enable the hub). Sinks receive every subsequent
    event in emission order. *)

val on_enable : t -> (unit -> unit) -> unit
(** [on_enable t f] runs [f] now if the hub is enabled, otherwise when
    it first becomes enabled — used to install observers (e.g. the
    engine queue-depth probe) only when someone is listening. *)

val emit : t -> event -> unit
(** Fan the event out to every sink. Call only under {!enabled}. *)

val next_op : t -> int
(** Allocate a fresh operation id (monotonic per hub; cheap enough to
    call even when disabled). *)

val close : t -> unit
(** Close every sink (flush file sinks, terminate the Chrome array). *)

module Ring : sig
  type ring

  val create : capacity:int -> ring
  (** Bounded in-memory buffer of the most recent [capacity] events.
      @raise Invalid_argument if [capacity <= 0]. *)

  val sink : ring -> Sink.t
  val contents : ring -> event list
  (** Retained events, oldest first. *)

  val length : ring -> int
  val dropped : ring -> int
  (** Events overwritten since creation. *)
end

(** {1 Wire format} *)

module Json : sig
  type v = S of string | I of int | F of float | B of bool

  exception Error of string

  val escape : string -> string
  val render : v -> string
  val obj : (string * v) list -> string

  val parse_obj : string -> (string * v) list
  (** Parse one flat JSON object (string/number/bool values only — the
      event schema). @raise Error on malformed input. *)

  val to_float : v -> float option
  val to_int : v -> int option
  val to_string : v -> string option
  val to_bool : v -> bool option
end

val to_json : event -> string
(** One-line JSON object; the JSONL schema. *)

val of_json :
  string -> [ `Event of event | `Meta of (string * Json.v) list | `Error of string ]
(** Parse one JSONL line: an event, the header meta line, or a schema
    violation with its reason. *)

module Meta : sig
  type t = (string * Json.v) list
  (** Run metadata stamped into trace headers, stats JSON and BENCH_*
      files so results stay comparable across commits. *)

  val git_commit : unit -> string
  val iso_date : unit -> string
  val standard :
    ?runtime:string ->
    ?domains:int ->
    ?gc_minor_words_per_op:float ->
    ?extra:t ->
    unit ->
    t
  (** [git] (current commit, read from [.git] without spawning a
      process; ["unknown"] outside a repository), [date] (UTC ISO
      8601), [runtime] (backend name, default ["sim"]), [domains]
      (default 1) and [ocaml_version], plus [extra].
      [gc_minor_words_per_op] (when measured: minor-heap words
      allocated per completed operation, single-domain runs) makes
      allocation regressions visible in every perf PR. Benchmark diffs
      refuse to compare across different [runtime]/[domains] stamps
      (scripts/bench_diff.ml). *)

  val line : t -> string
  (** Rendered as the JSONL header line [{"ev":"meta",...}]. *)
end

val jsonl : ?meta:Meta.t -> out_channel -> Sink.t
(** Stream events as JSON-lines, optionally preceded by a meta header
    line. [close] flushes; the channel is the caller's to close. *)

val chrome : out_channel -> Sink.t
(** Chrome [trace_event] array (async spans per op id, instants for
    messages and I/O, counter tracks for queue depths). The file is
    valid JSON only after [close] writes the closing bracket. *)

(** {1 Derived statistics} *)

module Stats : sig
  type op_stat = {
    op : int;
    mutable op_kind : string;
    mutable stripe : int;
    mutable t_start : float;
    mutable t_end : float;
    mutable outcome : outcome option;
    mutable open_phase : (phase * float) option;
    mutable phases : (phase * float) list;
        (** accumulated duration per phase *)
    mutable elided : (phase * int) list;
        (** elided quorum rounds per phase *)
    mutable msgs : int;
    mutable bytes : int;
    mutable drops : int;
    mutable timeouts : int;
    mutable disk_reads : int;
    mutable disk_writes : int;
  }

  type stats

  val create : ?retain:int -> unit -> stats
  (** All derived distributions are folded into constant-size
      aggregates the moment a span completes, so statistics stay exact
      regardless of run length. [retain] bounds how many completed
      per-op records are additionally kept for listing (0, the
      default, keeps all of them — needed by [fab_sim explain]'s
      per-op table; workload runs pass a bound so million-op runs hold
      memory constant). @raise Invalid_argument if [retain < 0]. *)

  val sink : stats -> Sink.t
  (** Feed the aggregator from a hub, or replay a parsed trace into it
      via {!feed}. *)

  val feed : stats -> event -> unit
  val completed : stats -> op_stat list
  (** Retained completed operations, oldest first — only the most
      recent [retain] if bounded. *)

  val unfinished : stats -> int
  (** Spans started but not ended (crashed coordinators, horizon). *)

  val evicted : stats -> int
  (** Completed records dropped under the [retain] bound (their
      contribution to every aggregate below is preserved). *)

  val latency : op_stat -> float

  val by_kind : stats -> (string * Metrics.Summary.t) list
  (** Latency distribution per operation kind. *)

  val hist_by_kind : stats -> (string * Metrics.Hist.t) list
  (** Latency histogram per operation kind: exact counts and bounded
      rank error at any op count, where the summaries above thin their
      reservoirs past {!val-create}'s capacity. *)

  val outcome_counts : stats -> (string * (int * int * int * int)) list
  (** Per op kind: [(ok, aborts, retries, unavailable)] tallies. *)

  val by_phase : stats -> (phase * Metrics.Summary.t) list
  (** Time-in-phase distribution across all completed operations. *)

  val phase_breakdown : stats -> (string * int * (phase * float) list) list
  (** Per op kind: completed count and mean duration per phase. *)

  val elided_by_kind : stats -> (string * (phase * int) list) list
  (** Per op kind: total elided quorum rounds per phase over the
      completed ops; kinds with no elisions are absent. *)

  val queue_depths : stats -> (string * Metrics.Summary.t) list

  val materialize : stats -> Metrics.Registry.t -> unit
  (** Write the derived distributions into a registry:
      ["op.<kind>.latency"] summaries {e and} histograms,
      ["phase.<name>.latency"] and ["queue.<actor>.depth"] summaries,
      plus ["obs.ops"], ["obs.aborts"], ["obs.retries"],
      ["obs.unavailable"] counters. When [retain] is bounded, the
      remaining completed records are evicted afterwards and
      ["obs.evictions"] records the overall eviction count. *)
end

(** {1 Windowed time series and SLOs} *)

module Timeline : sig
  type overlay = [ `Begin of string | `End of string | `Point of string ]
  (** How a fault label maps onto the report's fault overlay: open an
      interval under a key, close the matching interval, or mark an
      instantaneous point. *)

  type t
  (** A sink that buckets the event stream into a
      {!Metrics.Timeseries} per fixed window of simulated time —
      latency-over-time ([lat.all], [lat.<kind>] histograms), in-flight
      ops ([inflight]), per-actor queue depth ([queue.<actor>]),
      outcome counters ([ops.all], [out.ok|abort|retry|unavailable],
      per-kind goodput [ops.<kind>] counting ok completions), message
      and I/O counters ([msgs], [bytes], [drops], [retransmits],
      [io.read], [io.write]), and chaos fault overlays — without
      changing any instrumentation call-site. *)

  val create :
    ?hist_bits:int ->
    ?classify:(string -> overlay) ->
    width:float ->
    unit ->
    t
  (** [width] is the window length in sim-time units. [classify] maps a
      {!kind.Fault} label to an overlay action; the default treats
      every fault as a point. [Chaos.Plan.overlay_of_label] is the
      classifier for nemesis-generated labels (plugged in by the
      caller — this library does not depend on [lib/chaos]).
      @raise Invalid_argument if [width <= 0]. *)

  val sink : t -> Sink.t
  val series : t -> Metrics.Timeseries.t

  val faults : t -> (string * float * float) list
  (** Fault overlay intervals [(label, t0, t1)] ordered by start time.
      Intervals still open at the last observed event extend to that
      event's time; points have [t0 = t1]. *)

  val faults_in : t -> int -> string list
  (** Overlay labels intersecting a window, sorted and deduplicated. *)
end

module Slo : sig
  (** Service-level objectives over a {!Timeline}, with SRE-style
      error budgets: a latency objective ["read p99 < 6"] lets 1% of
      requests exceed the limit; ["availability >= 99.9%"] lets 0.1%
      of requests fail. Burn is the fraction of that budget spent. *)

  type objective =
    | Latency of { kind : string option; p : float; limit : float }
        (** [kind = None] governs every op; [Some "read"] covers kind
            ["read"] and any ["read-…"] refinement. *)
    | Availability of { min_pct : float }

  val name : objective -> string
  (** Canonical rendering, parseable by {!parse}. *)

  val parse : string -> (objective, string) result
  (** ["<kind> p<P> < <limit>"], ["p<P> <= <limit>"], or
      ["availability >= <pct>%"]. *)

  type window_stat = {
    window : int;
    w_total : int;  (** observations governed by the objective *)
    w_bad : int;  (** observations out of objective *)
    w_compliant : bool;  (** vacuously true on an empty window *)
    w_faults : string list;  (** chaos overlays active in the window *)
  }

  type report = {
    objective : objective;
    total : int;
    bad : int;
    budget_frac : float;  (** allowed bad fraction, in (0, 1) *)
    burn : float;  (** bad / (budget_frac * total); > 1 = budget blown *)
    compliant : bool;
    windows : window_stat list;
  }

  val evaluate : Timeline.t -> objective -> report
  (** Whole-run and per-window compliance. Latency objectives count
      bucket-granularity exceedances in the matching [lat.*]
      histograms ({!Metrics.Hist.count_above}); availability counts
      aborts + unavailable against ok completions (retries are
      re-attempted, not failures). *)
end

module Check : sig
  val well_formed : event list -> string list
  (** Span well-formedness violations (empty = well-formed): per op id,
      exactly one [Span_start] and one [Span_end], phases strictly
      alternate start/end with matching labels and never overlap, and
      all phase events fall inside the span in time order. *)
end
