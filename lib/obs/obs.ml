(* Structured observability for the protocol stack: typed events, an
   event hub with pluggable sinks, a wire format (JSONL + Chrome
   trace_event), and derived per-op/per-phase statistics.

   The golden rule is zero cost when disabled: every emission site is
   guarded by [if Obs.enabled hub then Obs.emit hub {...}], so a run
   without sinks pays one boolean load per potential event and
   allocates nothing. *)

(* ------------------------------------------------------------------ *)
(* Event model                                                         *)
(* ------------------------------------------------------------------ *)

type phase = Fast_read | Order | Write | Modify | Recover | Gc

let phase_name = function
  | Fast_read -> "fast-read"
  | Order -> "order"
  | Write -> "write"
  | Modify -> "modify"
  | Recover -> "recover"
  | Gc -> "gc"

let phase_of_name = function
  | "fast-read" -> Some Fast_read
  | "order" -> Some Order
  | "write" -> Some Write
  | "modify" -> Some Modify
  | "recover" -> Some Recover
  | "gc" -> Some Gc
  | _ -> None

let all_phases = [ Fast_read; Order; Write; Modify; Recover; Gc ]

type outcome = Ok | Abort | Retry | Unavailable

let outcome_name = function
  | Ok -> "ok"
  | Abort -> "abort"
  | Retry -> "retry"
  | Unavailable -> "unavailable"

let outcome_of_name = function
  | "ok" -> Some Ok
  | "abort" -> Some Abort
  | "retry" -> Some Retry
  | "unavailable" -> Some Unavailable
  | _ -> None

type actor = Coord of int | Brick of int | Sim

let actor_name = function
  | Coord i -> "c" ^ string_of_int i
  | Brick i -> "b" ^ string_of_int i
  | Sim -> "sim"

let actor_of_name s =
  if s = "sim" then Some Sim
  else if String.length s >= 2 then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some i when i >= 0 -> (
        match s.[0] with
        | 'c' -> Some (Coord i)
        | 'b' -> Some (Brick i)
        | _ -> None)
    | _ -> None
  else None

type ctx = { op : int; phase : phase option }

let no_ctx = { op = -1; phase = None }
let ctx ?phase op = { op; phase }

type kind =
  | Span_start of { op_kind : string; stripe : int }
  | Span_end of { op_kind : string; stripe : int; outcome : outcome }
  | Phase_start
  | Phase_end
  | Phase_elided
  | Msg_send of { dst : int; bytes : int; label : string; bg : bool }
  | Msg_queued of { dst : int; bytes : int; label : string }
  | Msg_recv of { src : int; label : string }
  | Msg_drop of { dst : int; bytes : int; bg : bool }
  | Io_read of { blocks : int }
  | Io_write of { blocks : int }
  | Timeout of { missing : int; attempt : int }
  | Queue_depth of { depth : int }
  | Fault of { label : string }

type event = {
  time : float;
  actor : actor;
  op : int;  (* -1 = not tied to an operation *)
  phase : phase option;
  kind : kind;
}

let ev_name = function
  | Span_start _ -> "span_start"
  | Span_end _ -> "span_end"
  | Phase_start -> "phase_start"
  | Phase_end -> "phase_end"
  | Phase_elided -> "phase_elided"
  | Msg_send _ -> "msg_send"
  | Msg_queued _ -> "msg_queued"
  | Msg_recv _ -> "msg_recv"
  | Msg_drop _ -> "msg_drop"
  | Io_read _ -> "io_read"
  | Io_write _ -> "io_write"
  | Timeout _ -> "timeout"
  | Queue_depth _ -> "queue_depth"
  | Fault _ -> "fault"

let pp_event fmt ev =
  let a = actor_name ev.actor in
  let op fmt = if ev.op >= 0 then Format.fprintf fmt " (op %d)" ev.op in
  let ph fmt =
    match ev.phase with
    | Some p -> Format.fprintf fmt "%s " (phase_name p)
    | None -> ()
  in
  match ev.kind with
  | Span_start { op_kind; stripe } ->
      Format.fprintf fmt "[%s/s%d] %s start%t" a stripe op_kind op
  | Span_end { op_kind; stripe; outcome } ->
      Format.fprintf fmt "[%s/s%d] %s %s%t" a stripe op_kind
        (match outcome with
        | Ok -> "ok"
        | Abort -> "ABORT"
        | Retry -> "abort (will retry)"
        | Unavailable -> "UNAVAILABLE")
        op
  | Phase_start -> Format.fprintf fmt "[%s] phase %tstart%t" a ph op
  | Phase_end -> Format.fprintf fmt "[%s] phase %tend%t" a ph op
  | Phase_elided -> Format.fprintf fmt "[%s] phase %tELIDED%t" a ph op
  | Msg_queued { dst; bytes; label } ->
      Format.fprintf fmt "[%s] ~> b%d %s (%dB, coalesced)%t" a dst label bytes
        op
  | Msg_send { dst; bytes; label; bg } ->
      Format.fprintf fmt "[%s] -> b%d %s (%dB%s)%t" a dst label bytes
        (if bg then ", bg" else "")
        op
  | Msg_recv { src; label } -> Format.fprintf fmt "[%s] <- %d %s%t" a src label op
  | Msg_drop { dst; bytes; _ } ->
      Format.fprintf fmt "[%s] DROP -> b%d (%dB)%t" a dst bytes op
  | Io_read { blocks } -> Format.fprintf fmt "[%s] disk read x%d%t" a blocks op
  | Io_write { blocks } -> Format.fprintf fmt "[%s] disk write x%d%t" a blocks op
  | Timeout { missing; attempt } ->
      Format.fprintf fmt "[%s] retransmit #%d, %d member(s) missing%t" a attempt
        missing op
  | Queue_depth { depth } -> Format.fprintf fmt "[%s] queue depth %d" a depth
  | Fault { label } -> Format.fprintf fmt "[%s] FAULT %s" a label

(* ------------------------------------------------------------------ *)
(* Minimal flat JSON (we control both ends of the schema)              *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type v = S of string | I of int | F of float | B of bool

  exception Error of string

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 32 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let render = function
    | S s -> "\"" ^ escape s ^ "\""
    | I i -> string_of_int i
    | F f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.sprintf "%.1f" f
        else Printf.sprintf "%.12g" f
    | B b -> if b then "true" else "false"

  let obj fields =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ k ^ "\":" ^ render v) fields)
    ^ "}"

  (* Parser for one-line flat objects: string / number / bool values
     only — exactly what [obj] produces. *)
  let parse_obj s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Error (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then fail "unexpected end of input";
      let c = s.[!pos] in
      incr pos;
      c
    in
    let skip_ws () =
      while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
        incr pos
      done
    in
    let expect c =
      if next () <> c then fail (Printf.sprintf "expected %c" c)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' -> (
            match next () with
            | '"' -> Buffer.add_char b '"'; loop ()
            | '\\' -> Buffer.add_char b '\\'; loop ()
            | 'n' -> Buffer.add_char b '\n'; loop ()
            | 't' -> Buffer.add_char b '\t'; loop ()
            | 'r' -> Buffer.add_char b '\r'; loop ()
            | '/' -> Buffer.add_char b '/'; loop ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
                | Some _ -> Buffer.add_char b '?'
                | None -> fail "bad \\u escape");
                loop ()
            | _ -> fail "unknown escape")
        | c -> Buffer.add_char b c; loop ()
      in
      loop ()
    in
    let parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> S (parse_string ())
      | Some 't' ->
          if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
            pos := !pos + 4;
            B true
          end
          else fail "bad literal"
      | Some 'f' ->
          if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
            pos := !pos + 5;
            B false
          end
          else fail "bad literal"
      | Some ('-' | '0' .. '9') ->
          let start = !pos in
          while
            !pos < n
            &&
            match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false
          do
            incr pos
          done;
          let tok = String.sub s start (!pos - start) in
          (match int_of_string_opt tok with
          | Some i -> I i
          | None -> (
              match float_of_string_opt tok with
              | Some f -> F f
              | None -> fail "bad number"))
      | Some ('{' | '[') -> fail "nested values not allowed in event schema"
      | _ -> fail "expected value"
    in
    skip_ws ();
    expect '{';
    let fields = ref [] in
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> fail "expected , or }"
      in
      members ()
    end;
    skip_ws ();
    if !pos <> n then fail "trailing bytes after object";
    List.rev !fields

  let to_float = function I i -> Some (float_of_int i) | F f -> Some f | _ -> None
  let to_int = function I i -> Some i | _ -> None
  let to_string = function S s -> Some s | _ -> None
  let to_bool = function B b -> Some b | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Wire codec for events                                               *)
(* ------------------------------------------------------------------ *)

let to_json ev =
  let base =
    [
      ("t", Json.F ev.time);
      ("actor", Json.S (actor_name ev.actor));
      ("ev", Json.S (ev_name ev.kind));
    ]
  in
  let opf = if ev.op >= 0 then [ ("op", Json.I ev.op) ] else [] in
  let phf =
    match ev.phase with
    | Some p -> [ ("phase", Json.S (phase_name p)) ]
    | None -> []
  in
  let kf =
    match ev.kind with
    | Span_start { op_kind; stripe } ->
        [ ("kind", Json.S op_kind); ("stripe", Json.I stripe) ]
    | Span_end { op_kind; stripe; outcome } ->
        [
          ("kind", Json.S op_kind);
          ("stripe", Json.I stripe);
          ("outcome", Json.S (outcome_name outcome));
        ]
    | Phase_start | Phase_end | Phase_elided -> []
    | Msg_send { dst; bytes; label; bg } ->
        [ ("dst", Json.I dst); ("bytes", Json.I bytes); ("msg", Json.S label) ]
        @ (if bg then [ ("bg", Json.B true) ] else [])
    | Msg_queued { dst; bytes; label } ->
        [ ("dst", Json.I dst); ("bytes", Json.I bytes); ("msg", Json.S label) ]
    | Msg_recv { src; label } ->
        [ ("src", Json.I src); ("msg", Json.S label) ]
    | Msg_drop { dst; bytes; bg } ->
        [ ("dst", Json.I dst); ("bytes", Json.I bytes) ]
        @ if bg then [ ("bg", Json.B true) ] else []
    | Io_read { blocks } | Io_write { blocks } -> [ ("blocks", Json.I blocks) ]
    | Timeout { missing; attempt } ->
        [ ("missing", Json.I missing); ("attempt", Json.I attempt) ]
    | Queue_depth { depth } -> [ ("depth", Json.I depth) ]
    | Fault { label } -> [ ("fault", Json.S label) ]
  in
  Json.obj (base @ opf @ phf @ kf)

let of_json line =
  try
    let fields = Json.parse_obj line in
    let get name conv what =
      match Option.bind (List.assoc_opt name fields) conv with
      | Some v -> v
      | None -> raise (Json.Error (Printf.sprintf "missing/invalid %S (%s)" name what))
    in
    let opt name conv = Option.bind (List.assoc_opt name fields) conv in
    match get "ev" Json.to_string "event name" with
    | "meta" -> `Meta fields
    | name ->
        let time = get "t" Json.to_float "number" in
        let actor =
          match actor_of_name (get "actor" Json.to_string "string") with
          | Some a -> a
          | None -> raise (Json.Error "bad actor")
        in
        let op = match opt "op" Json.to_int with Some o -> o | None -> -1 in
        let phase =
          match opt "phase" Json.to_string with
          | None -> None
          | Some s -> (
              match phase_of_name s with
              | Some p -> Some p
              | None -> raise (Json.Error ("unknown phase " ^ s)))
        in
        let bg () =
          match opt "bg" Json.to_bool with Some b -> b | None -> false
        in
        let kind =
          match name with
          | "span_start" ->
              Span_start
                {
                  op_kind = get "kind" Json.to_string "string";
                  stripe = get "stripe" Json.to_int "int";
                }
          | "span_end" ->
              let outcome =
                match outcome_of_name (get "outcome" Json.to_string "string") with
                | Some o -> o
                | None -> raise (Json.Error "bad outcome")
              in
              Span_end
                {
                  op_kind = get "kind" Json.to_string "string";
                  stripe = get "stripe" Json.to_int "int";
                  outcome;
                }
          | "phase_start" -> Phase_start
          | "phase_end" -> Phase_end
          | "phase_elided" -> Phase_elided
          | "msg_queued" ->
              Msg_queued
                {
                  dst = get "dst" Json.to_int "int";
                  bytes = get "bytes" Json.to_int "int";
                  label = get "msg" Json.to_string "string";
                }
          | "msg_send" ->
              Msg_send
                {
                  dst = get "dst" Json.to_int "int";
                  bytes = get "bytes" Json.to_int "int";
                  label = get "msg" Json.to_string "string";
                  bg = bg ();
                }
          | "msg_recv" ->
              Msg_recv
                {
                  src = get "src" Json.to_int "int";
                  label = get "msg" Json.to_string "string";
                }
          | "msg_drop" ->
              Msg_drop
                {
                  dst = get "dst" Json.to_int "int";
                  bytes = get "bytes" Json.to_int "int";
                  bg = bg ();
                }
          | "io_read" -> Io_read { blocks = get "blocks" Json.to_int "int" }
          | "io_write" -> Io_write { blocks = get "blocks" Json.to_int "int" }
          | "timeout" ->
              Timeout
                {
                  missing = get "missing" Json.to_int "int";
                  attempt = get "attempt" Json.to_int "int";
                }
          | "queue_depth" ->
              Queue_depth { depth = get "depth" Json.to_int "int" }
          | "fault" -> Fault { label = get "fault" Json.to_string "string" }
          | other -> raise (Json.Error ("unknown event " ^ other))
        in
        (* Phase events must say which phase. *)
        (match kind with
        | (Phase_start | Phase_end | Phase_elided) when phase = None ->
            raise (Json.Error "phase event without phase field")
        | _ -> ());
        `Event { time; actor; op; phase; kind }
  with Json.Error msg -> `Error msg

(* ------------------------------------------------------------------ *)
(* Sinks and the hub                                                   *)
(* ------------------------------------------------------------------ *)

module Sink = struct
  type t = { emit : event -> unit; close : unit -> unit }

  let make ?(close = fun () -> ()) emit = { emit; close }

  (* Multicore backend: events arrive from many domains at once, and
     most sinks mutate unguarded state (a channel, a ring). Serialize
     per sink, not at the hub — a sim run keeps its zero-lock path
     only if it never wraps. *)
  let serialized s =
    let m = Mutex.create () in
    let guard f x =
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
    in
    { emit = guard s.emit; close = (fun () -> guard s.close ()) }
end

type t = {
  mutable sinks : Sink.t list;
  mutable is_enabled : bool;
  next_op_id : int Atomic.t;
      (* Atomic so concurrent clients on the multicore backend draw
         unique operation ids; uncontended fetch-and-add is as cheap
         as the old increment on the sim path. *)
  mutable on_enable_hooks : (unit -> unit) list;
}

let create () =
  {
    sinks = [];
    is_enabled = false;
    next_op_id = Atomic.make 0;
    on_enable_hooks = [];
  }

let enabled t = t.is_enabled

let add_sink t sink =
  t.sinks <- t.sinks @ [ sink ];
  if not t.is_enabled then begin
    t.is_enabled <- true;
    let hooks = List.rev t.on_enable_hooks in
    t.on_enable_hooks <- [];
    List.iter (fun f -> f ()) hooks
  end

let on_enable t f =
  if t.is_enabled then f () else t.on_enable_hooks <- f :: t.on_enable_hooks

let emit t ev = List.iter (fun (s : Sink.t) -> s.Sink.emit ev) t.sinks

let next_op t = Atomic.fetch_and_add t.next_op_id 1

let close t = List.iter (fun (s : Sink.t) -> s.Sink.close ()) t.sinks

(* ------------------------------------------------------------------ *)
(* In-memory ring sink                                                 *)
(* ------------------------------------------------------------------ *)

module Ring = struct
  type ring = {
    buf : event array;
    capacity : int;
    mutable len : int;
    mutable next : int;
    mutable dropped : int;
  }

  let dummy = { time = 0.; actor = Sim; op = -1; phase = None; kind = Phase_start }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Obs.Ring.create: capacity <= 0";
    { buf = Array.make capacity dummy; capacity; len = 0; next = 0; dropped = 0 }

  let add r ev =
    r.buf.(r.next) <- ev;
    r.next <- (r.next + 1) mod r.capacity;
    if r.len < r.capacity then r.len <- r.len + 1 else r.dropped <- r.dropped + 1

  (* Serialized: rings collect from all domains on the mc backend. *)
  let sink r = Sink.serialized (Sink.make (add r))

  let contents r =
    List.init r.len (fun i ->
        r.buf.((r.next - r.len + i + r.capacity) mod r.capacity))

  let length r = r.len
  let dropped r = r.dropped
end

(* ------------------------------------------------------------------ *)
(* Run metadata (stamped into trace headers and stats/bench JSON)      *)
(* ------------------------------------------------------------------ *)

module Meta = struct
  type nonrec t = (string * Json.v) list

  let read_first_line path =
    try
      let ic = open_in path in
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      line
    with Sys_error _ -> None

  let git_commit () =
    let rec find dir depth =
      if depth > 16 then None
      else
        let head = Filename.concat (Filename.concat dir ".git") "HEAD" in
        if Sys.file_exists head then Some (dir, head)
        else
          let parent = Filename.dirname dir in
          if parent = dir then None else find parent (depth + 1)
    in
    match find (Sys.getcwd ()) 0 with
    | None -> "unknown"
    | Some (root, head) -> (
        match read_first_line head with
        | None -> "unknown"
        | Some line ->
            let line = String.trim line in
            let prefix = "ref: " in
            if String.length line > String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              let refname =
                String.sub line (String.length prefix)
                  (String.length line - String.length prefix)
              in
              let refpath =
                Filename.concat (Filename.concat root ".git") refname
              in
              match read_first_line refpath with
              | Some hash -> String.trim hash
              | None -> "unknown"
            else line)

  let iso_date () =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec

  let standard ?(runtime = "sim") ?(domains = 1) ?gc_minor_words_per_op
      ?(extra = []) () =
    [
      ("git", Json.S (git_commit ()));
      ("date", Json.S (iso_date ()));
      ("runtime", Json.S runtime);
      ("domains", Json.I domains);
      ("ocaml_version", Json.S Sys.ocaml_version);
    ]
    @ (match gc_minor_words_per_op with
      | Some w -> [ ("gc_minor_words_per_op", Json.F w) ]
      | None -> [])
    @ extra

  let line t = Json.obj (("ev", Json.S "meta") :: t)
end

(* ------------------------------------------------------------------ *)
(* File sinks: JSONL and Chrome trace_event                            *)
(* ------------------------------------------------------------------ *)

let jsonl ?meta oc =
  (match meta with
  | Some m ->
      output_string oc (Meta.line m);
      output_char oc '\n'
  | None -> ());
  Sink.serialized
    (Sink.make
       ~close:(fun () -> flush oc)
       (fun ev ->
         output_string oc (to_json ev);
         output_char oc '\n'))

(* Chrome trace_event JSON array. Spans and phases are emitted as async
   "b"/"e" events keyed by op id, so concurrent operations that share a
   coordinator track render as separate (possibly overlapping) slices;
   everything else is an instant or a counter sample. Times are scaled
   so that one delta of sim-time displays as 1 ms. *)
let chrome oc =
  output_string oc "[";
  let first = ref true in
  let named = Hashtbl.create 16 in
  let raw s =
    if !first then begin
      first := false;
      output_string oc "\n"
    end
    else output_string oc ",\n";
    output_string oc s
  in
  let tid = function Brick i -> 100 + i | Coord i -> 1000 + i | Sim -> 1 in
  let label = function
    | Brick i -> Printf.sprintf "brick %d" i
    | Coord i -> Printf.sprintf "coordinator %d" i
    | Sim -> "engine"
  in
  let ensure_thread actor =
    let key = tid actor in
    if not (Hashtbl.mem named key) then begin
      Hashtbl.add named key ();
      raw
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           key
           (Json.escape (label actor)))
    end
  in
  let ts time = Printf.sprintf "%.3f" (time *. 1000.) in
  let ev_json ev ~ph ~name ?id args =
    Printf.sprintf
      "{\"ph\":\"%s\",\"cat\":\"fab\",\"name\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%s%s%s%s}"
      ph (Json.escape name) (tid ev.actor) (ts ev.time)
      (match id with Some i -> Printf.sprintf ",\"id\":%d" i | None -> "")
      (if ph = "i" then ",\"s\":\"t\"" else "")
      (match args with [] -> "" | l -> ",\"args\":" ^ Json.obj l)
  in
  let emit ev =
    ensure_thread ev.actor;
    let instant name args = raw (ev_json ev ~ph:"i" ~name args) in
    match ev.kind with
    | Span_start { op_kind; stripe } ->
        raw
          (ev_json ev ~ph:"b" ~name:op_kind ~id:ev.op
             [ ("stripe", Json.I stripe) ])
    | Span_end { op_kind; outcome; _ } ->
        raw
          (ev_json ev ~ph:"e" ~name:op_kind ~id:ev.op
             [ ("outcome", Json.S (outcome_name outcome)) ])
    | Phase_start ->
        let name =
          match ev.phase with Some p -> phase_name p | None -> "phase"
        in
        raw (ev_json ev ~ph:"b" ~name ~id:ev.op [])
    | Phase_end ->
        let name =
          match ev.phase with Some p -> phase_name p | None -> "phase"
        in
        raw (ev_json ev ~ph:"e" ~name ~id:ev.op [])
    | Phase_elided ->
        let name =
          match ev.phase with Some p -> phase_name p | None -> "phase"
        in
        instant (name ^ " elided") []
    | Msg_queued { dst; bytes; label } ->
        instant "msg_queued"
          [ ("msg", Json.S label); ("dst", Json.I dst); ("bytes", Json.I bytes) ]
    | Msg_send { dst; bytes; label; _ } ->
        instant "msg_send"
          [ ("msg", Json.S label); ("dst", Json.I dst); ("bytes", Json.I bytes) ]
    | Msg_recv { src; label } ->
        instant "msg_recv" [ ("msg", Json.S label); ("src", Json.I src) ]
    | Msg_drop { dst; bytes; _ } ->
        instant "msg_drop" [ ("dst", Json.I dst); ("bytes", Json.I bytes) ]
    | Io_read { blocks } -> instant "io_read" [ ("blocks", Json.I blocks) ]
    | Io_write { blocks } -> instant "io_write" [ ("blocks", Json.I blocks) ]
    | Timeout { missing; attempt } ->
        instant "timeout"
          [ ("missing", Json.I missing); ("attempt", Json.I attempt) ]
    | Fault { label } -> instant "fault" [ ("fault", Json.S label) ]
    | Queue_depth { depth } ->
        let name =
          match ev.actor with
          | Sim -> "engine.pending"
          | Brick i -> Printf.sprintf "queue.b%d" i
          | Coord i -> Printf.sprintf "queue.c%d" i
        in
        raw
          (Printf.sprintf
             "{\"ph\":\"C\",\"cat\":\"fab\",\"name\":\"%s\",\"pid\":1,\"ts\":%s,\"args\":{\"depth\":%d}}"
             name (ts ev.time) depth)
  in
  Sink.make
    ~close:(fun () ->
      output_string oc "\n]\n";
      flush oc)
    emit

(* ------------------------------------------------------------------ *)
(* Derived statistics (itself a sink)                                  *)
(* ------------------------------------------------------------------ *)

module Stats = struct
  type op_stat = {
    op : int;
    mutable op_kind : string;
    mutable stripe : int;
    mutable t_start : float;
    mutable t_end : float;
    mutable outcome : outcome option;
    mutable open_phase : (phase * float) option;
    mutable phases : (phase * float) list;  (* accumulated duration *)
    mutable elided : (phase * int) list;  (* elided round count per phase *)
    mutable msgs : int;
    mutable bytes : int;
    mutable drops : int;
    mutable timeouts : int;
    mutable disk_reads : int;
    mutable disk_writes : int;
  }

  (* Incremental per-op-kind aggregate, updated when a span completes,
     so the derived distributions stay correct even after the
     completed-op records themselves are evicted (bounded [retain]). *)
  type agg = {
    mutable n : int;
    latency : Metrics.Summary.t;
    hist : Metrics.Hist.t;
    mutable ok : int;
    mutable aborts : int;
    mutable retries : int;
    mutable unavail : int;
    mutable phase_total : (phase * float) list;  (* summed over all ops *)
    mutable elided_total : (phase * int) list;
  }

  (* Summaries bound their reservoir so a million-op run keeps constant
     memory; the paired Hist keeps p99/p99.9 trustworthy regardless. *)
  let agg_capacity = 8192

  let fresh_agg () =
    {
      n = 0;
      latency = Metrics.Summary.create ~capacity:agg_capacity ();
      hist = Metrics.Hist.create ();
      ok = 0;
      aborts = 0;
      retries = 0;
      unavail = 0;
      phase_total = [];
      elided_total = [];
    }

  type stats = {
    live : (int, op_stat) Hashtbl.t;
    retain : int;  (* completed records kept; 0 = unbounded *)
    order : int Queue.t;  (* completed op ids, oldest first *)
    finished : (int, op_stat) Hashtbl.t;
        (* retained completed records by op id: events arriving after
           the span closed (a coalesced background message flushing
           right after span_end) update the completed record instead
           of re-opening the op as live. *)
    mutable evicted : int;
    mutable evicted_floor : int;
        (* highest evicted op id: late events for evicted ops are
           routed to a scrap record instead of re-opening them *)
    scrap : op_stat;
    by_kind_agg : (string, agg) Hashtbl.t;
    phase_agg : (phase, Metrics.Summary.t) Hashtbl.t;
        (* per-(op, phase) accumulated durations, across kinds *)
    queue_depth : (string, Metrics.Summary.t) Hashtbl.t;
    mutable untagged_msgs : int;
    mutable untagged_bytes : int;
  }

  let fresh_op_stat op =
    {
      op;
      op_kind = "?";
      stripe = -1;
      t_start = nan;
      t_end = nan;
      outcome = None;
      open_phase = None;
      phases = [];
      elided = [];
      msgs = 0;
      bytes = 0;
      drops = 0;
      timeouts = 0;
      disk_reads = 0;
      disk_writes = 0;
    }

  let create ?(retain = 0) () =
    if retain < 0 then invalid_arg "Obs.Stats.create: retain < 0";
    {
      live = Hashtbl.create 64;
      retain;
      order = Queue.create ();
      finished = Hashtbl.create 64;
      evicted = 0;
      evicted_floor = -1;
      scrap = fresh_op_stat (-1);
      by_kind_agg = Hashtbl.create 8;
      phase_agg = Hashtbl.create 8;
      queue_depth = Hashtbl.create 8;
      untagged_msgs = 0;
      untagged_bytes = 0;
    }

  let op_stat t op =
    match Hashtbl.find_opt t.live op with
    | Some s -> s
    | None ->
    match Hashtbl.find_opt t.finished op with
    | Some s -> s
    | None ->
        if op <= t.evicted_floor then t.scrap
        else begin
          let s = fresh_op_stat op in
          Hashtbl.add t.live op s;
          s
        end

  let add_phase s p dur =
    let prev = match List.assoc_opt p s.phases with Some d -> d | None -> 0. in
    s.phases <- (p, prev +. dur) :: List.remove_assoc p s.phases

  let kind_agg t kind =
    match Hashtbl.find_opt t.by_kind_agg kind with
    | Some a -> a
    | None ->
        let a = fresh_agg () in
        Hashtbl.add t.by_kind_agg kind a;
        a

  (* Fold a just-completed span into the running aggregates. *)
  let aggregate_completed t (s : op_stat) =
    let a = kind_agg t s.op_kind in
    a.n <- a.n + 1;
    let lat = s.t_end -. s.t_start in
    Metrics.Summary.add a.latency lat;
    if lat >= 0. then Metrics.Hist.add a.hist lat;
    (match s.outcome with
    | Some Ok -> a.ok <- a.ok + 1
    | Some Abort -> a.aborts <- a.aborts + 1
    | Some Retry -> a.retries <- a.retries + 1
    | Some Unavailable -> a.unavail <- a.unavail + 1
    | None -> ());
    List.iter
      (fun (p, dur) ->
        let prev =
          match List.assoc_opt p a.phase_total with Some d -> d | None -> 0.
        in
        a.phase_total <- (p, prev +. dur) :: List.remove_assoc p a.phase_total;
        let sum =
          match Hashtbl.find_opt t.phase_agg p with
          | Some sum -> sum
          | None ->
              let sum = Metrics.Summary.create ~capacity:agg_capacity () in
              Hashtbl.add t.phase_agg p sum;
              sum
        in
        Metrics.Summary.add sum dur)
      s.phases;
    List.iter
      (fun (p, c) ->
        let prev =
          match List.assoc_opt p a.elided_total with Some d -> d | None -> 0
        in
        a.elided_total <- (p, prev + c) :: List.remove_assoc p a.elided_total)
      s.elided

  (* Drop the oldest retained completed records down to [keep]. *)
  let evict_down_to t keep =
    while Queue.length t.order > keep do
      let op = Queue.pop t.order in
      Hashtbl.remove t.finished op;
      if op > t.evicted_floor then t.evicted_floor <- op;
      t.evicted <- t.evicted + 1
    done

  let feed t ev =
    match ev.kind with
    | Queue_depth { depth } ->
        let key = actor_name ev.actor in
        let s =
          match Hashtbl.find_opt t.queue_depth key with
          | Some s -> s
          | None ->
              let s = Metrics.Summary.create ~capacity:4096 () in
              Hashtbl.add t.queue_depth key s;
              s
        in
        Metrics.Summary.add s (float_of_int depth)
    | _ when ev.op < 0 -> (
        match ev.kind with
        | Msg_send { bytes; _ } ->
            t.untagged_msgs <- t.untagged_msgs + 1;
            t.untagged_bytes <- t.untagged_bytes + bytes
        | _ -> ())
    | Span_start { op_kind; stripe } ->
        let s = op_stat t ev.op in
        s.op_kind <- op_kind;
        s.stripe <- stripe;
        s.t_start <- ev.time
    | Span_end { op_kind; stripe; outcome } ->
        let s = op_stat t ev.op in
        s.op_kind <- op_kind;
        s.stripe <- stripe;
        s.t_end <- ev.time;
        s.outcome <- Some outcome;
        (match s.open_phase with
        | Some (p, since) ->
            add_phase s p (ev.time -. since);
            s.open_phase <- None
        | None -> ());
        Hashtbl.remove t.live ev.op;
        if not (Hashtbl.mem t.finished ev.op) then begin
          Hashtbl.replace t.finished ev.op s;
          Queue.push ev.op t.order;
          aggregate_completed t s;
          if t.retain > 0 then evict_down_to t t.retain
        end
    | Phase_start -> (
        match ev.phase with
        | None -> ()
        | Some p ->
            let s = op_stat t ev.op in
            (match s.open_phase with
            | Some (prev, since) -> add_phase s prev (ev.time -. since)
            | None -> ());
            s.open_phase <- Some (p, ev.time))
    | Phase_end -> (
        match ev.phase with
        | None -> ()
        | Some p ->
            let s = op_stat t ev.op in
            (match s.open_phase with
            | Some (open_p, since) when open_p = p ->
                add_phase s p (ev.time -. since);
                s.open_phase <- None
            | _ -> ()))
    | Msg_send { bytes; _ } ->
        let s = op_stat t ev.op in
        s.msgs <- s.msgs + 1;
        s.bytes <- s.bytes + bytes
    | Msg_queued { bytes; _ } ->
        (* An op's share of a coalesced batch envelope: counted as one
           of the op's messages (the batch itself is untagged). *)
        let s = op_stat t ev.op in
        s.msgs <- s.msgs + 1;
        s.bytes <- s.bytes + bytes
    | Phase_elided -> (
        match ev.phase with
        | None -> ()
        | Some p ->
            let s = op_stat t ev.op in
            let prev =
              match List.assoc_opt p s.elided with Some c -> c | None -> 0
            in
            s.elided <- (p, prev + 1) :: List.remove_assoc p s.elided)
    | Msg_recv _ -> ()
    | Fault _ -> ()
    | Msg_drop _ ->
        let s = op_stat t ev.op in
        s.drops <- s.drops + 1
    | Timeout _ ->
        let s = op_stat t ev.op in
        s.timeouts <- s.timeouts + 1
    | Io_read { blocks } ->
        let s = op_stat t ev.op in
        s.disk_reads <- s.disk_reads + blocks
    | Io_write { blocks } ->
        let s = op_stat t ev.op in
        s.disk_writes <- s.disk_writes + blocks

  let sink t = Sink.make (feed t)

  (* Retained completed records, oldest first. With a [retain] bound
     this is only the most recent window; the aggregate accessors below
     still describe every op ever completed. *)
  let completed t =
    Queue.fold
      (fun acc op ->
        match Hashtbl.find_opt t.finished op with
        | Some s -> s :: acc
        | None -> acc)
      [] t.order
    |> List.rev

  let unfinished t = Hashtbl.length t.live
  let evicted t = t.evicted
  let latency s = s.t_end -. s.t_start

  let sorted_kinds t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_kind_agg []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Per-op-kind latency distributions, sorted by kind. *)
  let by_kind t = List.map (fun (k, a) -> (k, a.latency)) (sorted_kinds t)

  (* Per-op-kind latency histograms (exact counts, bounded rank error
     at any op count), sorted by kind. *)
  let hist_by_kind t = List.map (fun (k, a) -> (k, a.hist)) (sorted_kinds t)

  (* Per-op-kind outcome tallies: (kind, (ok, aborts, retries,
     unavailable)), sorted by kind. *)
  let outcome_counts t =
    List.map
      (fun (k, a) -> (k, (a.ok, a.aborts, a.retries, a.unavail)))
      (sorted_kinds t)

  (* Per-phase time distributions across all completed ops. *)
  let by_phase t =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt t.phase_agg p with
        | Some s -> Some (p, s)
        | None -> None)
      all_phases

  (* Mean phase durations per op kind: (kind, count, [(phase, mean)]). *)
  let phase_breakdown t =
    List.map
      (fun (kind, a) ->
        let per_phase =
          List.filter_map
            (fun p ->
              match List.assoc_opt p a.phase_total with
              | Some total -> Some (p, total /. float_of_int a.n)
              | None -> None)
            all_phases
        in
        (kind, a.n, per_phase))
      (sorted_kinds t)

  (* Elided quorum rounds per op kind: (kind, [(phase, count)]),
     summed over completed ops. Complements {!phase_breakdown}: a warm
     write shows an order count here and no order time there. *)
  let elided_by_kind t =
    List.filter_map
      (fun (kind, a) ->
        match
          List.filter_map
            (fun p ->
              match List.assoc_opt p a.elided_total with
              | Some c -> Some (p, c)
              | None -> None)
            all_phases
        with
        | [] -> None
        | per_phase -> Some (kind, per_phase))
      (sorted_kinds t)

  let queue_depths t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.queue_depth []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Write the derived distributions into a metrics registry: latency
     summaries and histograms under "op.<kind>.latency", summaries
     under "phase.<name>.latency", queue depth gauges under
     "queue.<actor>.depth", plus outcome counters. Reads only the
     aggregates, so it is unaffected by eviction; with a [retain]
     bound the remaining completed records are themselves evicted
     afterwards ("obs.evictions" records how many went overall). *)
  let materialize t reg =
    List.iter
      (fun (kind, a) ->
        let name = "op." ^ kind ^ ".latency" in
        let merged =
          match Metrics.Registry.summary_opt reg name with
          | Some existing -> Metrics.Summary.merge existing a.latency
          | None -> Metrics.Summary.merge (Metrics.Summary.create ()) a.latency
        in
        Metrics.Registry.put_summary reg name merged;
        let hmerged =
          match Metrics.Registry.hist_opt reg name with
          | Some existing -> Metrics.Hist.merge existing a.hist
          | None -> Metrics.Hist.merge (Metrics.Hist.create ()) a.hist
        in
        Metrics.Registry.put_hist reg name hmerged;
        Metrics.Registry.incr ~by:(float_of_int a.n) reg "obs.ops";
        let tally name n =
          if n > 0 then Metrics.Registry.incr ~by:(float_of_int n) reg name
        in
        tally "obs.aborts" a.aborts;
        tally "obs.retries" a.retries;
        tally "obs.unavailable" a.unavail)
      (sorted_kinds t);
    List.iter
      (fun (p, sum) ->
        let name = "phase." ^ phase_name p ^ ".latency" in
        let merged =
          match Metrics.Registry.summary_opt reg name with
          | Some existing -> Metrics.Summary.merge existing sum
          | None -> Metrics.Summary.merge (Metrics.Summary.create ()) sum
        in
        Metrics.Registry.put_summary reg name merged)
      (by_phase t);
    List.iter
      (fun (actor, depth) ->
        let name = "queue." ^ actor ^ ".depth" in
        let merged =
          match Metrics.Registry.summary_opt reg name with
          | Some existing -> Metrics.Summary.merge existing depth
          | None -> Metrics.Summary.merge (Metrics.Summary.create ()) depth
        in
        Metrics.Registry.put_summary reg name merged)
      (queue_depths t);
    if t.retain > 0 then begin
      evict_down_to t 0;
      Metrics.Registry.incr ~by:(float_of_int t.evicted) reg "obs.evictions"
    end
end

(* ------------------------------------------------------------------ *)
(* Windowed time series over simulated time (itself a sink)            *)
(* ------------------------------------------------------------------ *)

module Timeline = struct
  (* How a fault label relates to an overlay interval. The classifier
     is pluggable because the label syntax belongs to lib/chaos, which
     depends on this library: chaos supplies its own classifier and
     the default treats every fault as an instantaneous point. *)
  type overlay = [ `Begin of string | `End of string | `Point of string ]

  type t = {
    ts : Metrics.Timeseries.t;
    classify : string -> overlay;
    mutable live_spans : (int, float * string) Hashtbl.t;
    mutable inflight : int;
    mutable active : (string * float) list;  (* open overlays: key, t0 *)
    mutable intervals : (string * float * float) list;  (* closed, rev *)
    mutable last_time : float;
  }

  let create ?hist_bits ?(classify = fun l -> `Point l) ~width () =
    {
      ts = Metrics.Timeseries.create ?hist_bits ~width ();
      classify;
      live_spans = Hashtbl.create 64;
      inflight = 0;
      active = [];
      intervals = [];
      last_time = 0.;
    }

  let series t = t.ts

  let feed t ev =
    if ev.time > t.last_time then t.last_time <- ev.time;
    let time = ev.time in
    let incr ?by name = Metrics.Timeseries.incr t.ts ~time ?by name in
    let observe name v =
      if Float.is_finite v && v >= 0. then
        Metrics.Timeseries.observe t.ts ~time name v
    in
    match ev.kind with
    | Span_start { op_kind; _ } ->
        if ev.op >= 0 then
          Hashtbl.replace t.live_spans ev.op (ev.time, op_kind);
        t.inflight <- t.inflight + 1;
        observe "inflight" (float_of_int t.inflight)
    | Span_end { op_kind; outcome; _ } ->
        (match Hashtbl.find_opt t.live_spans ev.op with
        | Some (t0, _) ->
            Hashtbl.remove t.live_spans ev.op;
            let lat = ev.time -. t0 in
            observe "lat.all" lat;
            observe ("lat." ^ op_kind) lat
        | None -> ());
        if t.inflight > 0 then t.inflight <- t.inflight - 1;
        observe "inflight" (float_of_int t.inflight);
        incr "ops.all";
        incr ("out." ^ outcome_name outcome);
        if outcome = Ok then incr ("ops." ^ op_kind)
    | Phase_start | Phase_end | Phase_elided -> ()
    | Msg_send { bytes; _ } | Msg_queued { bytes; _ } ->
        incr "msgs";
        incr ~by:(float_of_int bytes) "bytes"
    | Msg_recv _ -> ()
    | Msg_drop _ -> incr "drops"
    | Io_read { blocks } -> incr ~by:(float_of_int blocks) "io.read"
    | Io_write { blocks } -> incr ~by:(float_of_int blocks) "io.write"
    | Timeout _ -> incr "retransmits"
    | Queue_depth { depth } ->
        observe ("queue." ^ actor_name ev.actor) (float_of_int depth)
    | Fault { label } -> (
        incr "faults";
        match t.classify label with
        | `Point key -> t.intervals <- (key, ev.time, ev.time) :: t.intervals
        | `Begin key ->
            if not (List.mem_assoc key t.active) then
              t.active <- (key, ev.time) :: t.active
        | `End key -> (
            match List.assoc_opt key t.active with
            | Some t0 ->
                t.active <- List.remove_assoc key t.active;
                t.intervals <- (key, t0, ev.time) :: t.intervals
            | None -> ()))

  let sink t = Sink.make (feed t)

  (* Fault overlay intervals, oldest first. Overlays still open at the
     last observed event extend to that time; points have t0 = t1. *)
  let faults t =
    let open_ones =
      List.rev_map (fun (key, t0) -> (key, t0, t.last_time)) t.active
    in
    List.sort
      (fun (_, a, _) (_, b, _) -> Float.compare a b)
      (List.rev_append t.intervals open_ones)

  (* Overlay labels whose interval intersects window [w], sorted. *)
  let faults_in t w =
    let w0 = Metrics.Timeseries.window_start t.ts w in
    let w1 = w0 +. Metrics.Timeseries.width t.ts in
    List.filter_map
      (fun (key, t0, t1) -> if t0 < w1 && t1 >= w0 then Some key else None)
      (faults t)
    |> List.sort_uniq String.compare
end

(* ------------------------------------------------------------------ *)
(* Service-level objectives and error budgets                          *)
(* ------------------------------------------------------------------ *)

module Slo = struct
  (* An objective either bounds a latency percentile for a family of
     op kinds ("read p99 < 6") or floors the success ratio
     ("availability >= 99.9%"). The error budget is the complement:
     for a p99 bound, 1% of requests may exceed the limit; for 99.9%
     availability, 0.1% may fail. Burn is the fraction of that budget
     actually spent. *)
  type objective =
    | Latency of { kind : string option; p : float; limit : float }
    | Availability of { min_pct : float }

  let name = function
    | Latency { kind; p; limit } ->
        Printf.sprintf "%sp%g < %g"
          (match kind with Some k -> k ^ " " | None -> "")
          p limit
    | Availability { min_pct } ->
        Printf.sprintf "availability >= %g%%" min_pct

  (* "read p99 < 6" / "p99.9 <= 12.5" / "availability >= 99.9%" *)
  let parse s =
    let toks =
      String.split_on_char ' ' (String.trim s)
      |> List.filter (fun t -> t <> "")
    in
    let num tok =
      let tok =
        if String.length tok > 0 && tok.[String.length tok - 1] = '%' then
          String.sub tok 0 (String.length tok - 1)
        else tok
      in
      float_of_string_opt tok
    in
    let err = Printf.sprintf "cannot parse SLO %S (want e.g. \"read p99 < 6\" or \"availability >= 99.9%%\")" s in
    let percentile tok =
      if String.length tok > 1 && tok.[0] = 'p' then
        match float_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some p when p > 0. && p < 100. -> Some p
        | _ -> None
      else None
    in
    match toks with
    | [ "availability"; (">=" | ">"); pct ] -> (
        match num pct with
        | Some m when m > 0. && m <= 100. -> Result.Ok (Availability { min_pct = m })
        | _ -> Result.Error err)
    | [ ptok; ("<" | "<="); lim ] -> (
        match (percentile ptok, num lim) with
        | Some p, Some limit when limit > 0. ->
            Result.Ok (Latency { kind = None; p; limit })
        | _ -> Result.Error err)
    | [ kind; ptok; ("<" | "<="); lim ] -> (
        match (percentile ptok, num lim) with
        | Some p, Some limit when limit > 0. ->
            Result.Ok (Latency { kind = Some kind; p; limit })
        | _ -> Result.Error err)
    | _ -> Result.Error err

  (* A kind selector matches the exact op kind or any "<kind>-…"
     refinement, so "read" covers read-stripe/read-block/read-blocks. *)
  let kind_matches sel op_kind =
    sel = op_kind
    || (let pre = sel ^ "-" in
        String.length op_kind > String.length pre
        && String.sub op_kind 0 (String.length pre) = pre)

  type window_stat = {
    window : int;
    w_total : int;  (* observations governed by the objective *)
    w_bad : int;  (* observations out of objective *)
    w_compliant : bool;  (* vacuously true on an empty window *)
    w_faults : string list;  (* chaos overlays active in the window *)
  }

  type report = {
    objective : objective;
    total : int;
    bad : int;
    budget_frac : float;  (* allowed bad fraction, in (0, 1) *)
    burn : float;  (* bad / (budget_frac * total); > 1 = budget blown *)
    compliant : bool;
    windows : window_stat list;
  }

  let mk_report objective ~budget_frac windows =
    let total = List.fold_left (fun a w -> a + w.w_total) 0 windows in
    let bad = List.fold_left (fun a w -> a + w.w_bad) 0 windows in
    let burn =
      if total = 0 then 0.
      else float_of_int bad /. (budget_frac *. float_of_int total)
    in
    {
      objective;
      total;
      bad;
      budget_frac;
      burn;
      compliant =
        (total = 0 || float_of_int bad <= budget_frac *. float_of_int total);
      windows;
    }

  let evaluate tl objective =
    let ts = Timeline.series tl in
    let windows =
      match Metrics.Timeseries.span ts with
      | None -> []
      | Some (w0, w1) -> List.init (w1 - w0 + 1) (fun i -> w0 + i)
    in
    match objective with
    | Latency { kind; p; limit } ->
        let budget_frac = (100. -. p) /. 100. in
        let names =
          match kind with
          | None -> [ "lat.all" ]
          | Some sel ->
              List.filter
                (fun n ->
                  String.length n > 4
                  && String.sub n 0 4 = "lat."
                  && kind_matches sel (String.sub n 4 (String.length n - 4)))
                (Metrics.Timeseries.hist_names ts)
        in
        let stats =
          List.map
            (fun w ->
              let total, bad =
                List.fold_left
                  (fun (t, b) name ->
                    match Metrics.Timeseries.hist ts name w with
                    | None -> (t, b)
                    | Some h ->
                        ( t + Metrics.Hist.count h,
                          b + Metrics.Hist.count_above h limit ))
                  (0, 0) names
              in
              {
                window = w;
                w_total = total;
                w_bad = bad;
                w_compliant =
                  total = 0
                  || float_of_int bad <= budget_frac *. float_of_int total;
                w_faults = Timeline.faults_in tl w;
              })
            windows
        in
        mk_report objective ~budget_frac stats
    | Availability { min_pct } ->
        let budget_frac = (100. -. min_pct) /. 100. in
        let stats =
          List.map
            (fun w ->
              let c name =
                int_of_float (Metrics.Timeseries.counter ts name w)
              in
              (* Retries are re-attempted, not failures; aborts and
                 unavailable verdicts burn the budget. *)
              let ok = c "out.ok" in
              let failed = c "out.abort" + c "out.unavailable" in
              let total = ok + failed in
              {
                window = w;
                w_total = total;
                w_bad = failed;
                w_compliant =
                  total = 0
                  || float_of_int failed <= budget_frac *. float_of_int total;
                w_faults = Timeline.faults_in tl w;
              })
            windows
        in
        mk_report objective ~budget_frac stats
end

(* ------------------------------------------------------------------ *)
(* Well-formedness checks over a raw event list                        *)
(* ------------------------------------------------------------------ *)

module Check = struct
  (* Returns human-readable violations; empty = well-formed. Checks,
     per op id: exactly one span_start and one span_end, phase
     start/end events strictly alternate with matching phase labels,
     phases fall inside the span, and times are monotone. *)
  let well_formed events =
    let violations = ref [] in
    let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
    let ops = Hashtbl.create 64 in
    let op_ids = ref [] in
    List.iter
      (fun ev ->
        if ev.op >= 0 then begin
          (match Hashtbl.find_opt ops ev.op with
          | Some l -> Hashtbl.replace ops ev.op (ev :: l)
          | None ->
              op_ids := ev.op :: !op_ids;
              Hashtbl.add ops ev.op [ ev ])
        end)
      events;
    List.iter
      (fun op ->
        let evs = List.rev (Hashtbl.find ops op) in
        let starts =
          List.filter (fun e -> match e.kind with Span_start _ -> true | _ -> false) evs
        in
        let ends =
          List.filter (fun e -> match e.kind with Span_end _ -> true | _ -> false) evs
        in
        if List.length starts <> 1 then
          bad "op %d: %d span_start events (want 1)" op (List.length starts);
        if List.length ends <> 1 then
          bad "op %d: %d span_end events (want 1)" op (List.length ends);
        match (starts, ends) with
        | [ s ], [ e ] ->
            if s.time > e.time then
              bad "op %d: span_end at %g before span_start at %g" op e.time
                s.time;
            let open_phase = ref None in
            let last_time = ref s.time in
            List.iter
              (fun evt ->
                (match evt.kind with
                | Phase_start | Phase_end | Phase_elided ->
                    if evt.time < s.time || evt.time > e.time then
                      bad "op %d: phase event at %g outside span [%g, %g]" op
                        evt.time s.time e.time;
                    if evt.time < !last_time then
                      bad "op %d: phase events out of time order" op;
                    last_time := evt.time
                | _ -> ());
                match (evt.kind, evt.phase) with
                | Phase_start, Some p -> (
                    match !open_phase with
                    | Some q ->
                        bad "op %d: phase %s starts while %s is open" op
                          (phase_name p) (phase_name q)
                    | None -> open_phase := Some p)
                | Phase_start, None -> bad "op %d: phase_start without phase" op
                | Phase_end, Some p -> (
                    match !open_phase with
                    | Some q when q = p -> open_phase := None
                    | Some q ->
                        bad "op %d: phase_end %s closes open phase %s" op
                          (phase_name p) (phase_name q)
                    | None -> bad "op %d: phase_end %s with no open phase" op (phase_name p))
                | Phase_end, None -> bad "op %d: phase_end without phase" op
                | Phase_elided, None ->
                    bad "op %d: phase_elided without phase" op
                | Phase_elided, Some p -> (
                    match !open_phase with
                    | Some q ->
                        bad "op %d: phase %s elided while %s is open" op
                          (phase_name p) (phase_name q)
                    | None -> ())
                | _ -> ())
              evs;
            (match !open_phase with
            | Some p -> bad "op %d: phase %s never ends" op (phase_name p)
            | None -> ())
        | _ -> ())
      (List.sort compare !op_ids);
    List.rev !violations
end
