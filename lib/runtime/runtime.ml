(* The runtime abstraction the protocol layers program against.

   A backend provides time, task spawning and one-shot gates; every
   higher-level blocking structure (sleep, ivars, mailboxes, the
   scatter-gather join) is built here, once, on top of those three.
   Two backends exist: Runtime_sim wraps the deterministic
   discrete-event engine (lib/dessim) and is the reproducible oracle;
   Runtime_mc runs tasks on OCaml 5 domains against the real clock.

   Thread-safety contract: on the sim backend everything runs in one
   thread, so no synchronization is needed but none hurts; on the mc
   backend gate operations, mailboxes and ivars are safe to call from
   any domain. Code that must work on both backends therefore uses the
   structures in this module rather than rolling its own. *)

exception Cancelled
(* Raised inside a task whose pending suspension was cancelled (a
   coordinator crash tearing down its quorum calls). The sim backend
   rebinds Dessim.Fiber.Cancelled to this same constructor, so a
   single handler catches both worlds. *)

(* Assertion mode: FAB_RUNTIME_DEBUG=1 turns on mailbox and gate
   invariant checks on every operation (used by @parallel-smoke). *)
let debug =
  match Sys.getenv_opt "FAB_RUNTIME_DEBUG" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

type gate = {
  await : unit -> unit;
  open_ : unit -> unit;
  abort : unit -> unit;
  live : unit -> bool;
}

type timer = { tcancel : unit -> unit }

type t = {
  name : string;  (* "sim" | "mc" *)
  now : unit -> float;
  rng : unit -> Random.State.t;
  spawn : (unit -> unit) -> unit;
  yield : unit -> unit;
  timer : delay:float -> (unit -> unit) -> timer;
  gate : unit -> gate;
  all : 'a. int option -> (unit -> 'a) list -> 'a list;
}

let name t = t.name
let now t = t.now ()
let rng t = t.rng ()
let spawn t f = t.spawn f
let yield t = t.yield ()
let timer t ~delay f = t.timer ~delay f
let cancel (tm : timer) = tm.tcancel ()
let all t ?window thunks = t.all window thunks

let sleep t delay =
  let g = t.gate () in
  ignore (t.timer ~delay (fun () -> g.open_ ()));
  g.await ()

(* One-shot write-once cell: the quorum call's "waiting for replies"
   state. The filler writes the value before opening the gate, and the
   gate's own synchronization publishes it to the awaiter. *)
module Ivar = struct
  type nonrec 'a t = { g : gate; mutable v : 'a option }

  let create rt = { g = rt.gate (); v = None }

  let fill iv v =
    (match iv.v with None -> iv.v <- Some v | Some _ -> ());
    iv.g.open_ ()

  let abort iv = iv.g.abort ()

  let await iv =
    iv.g.await ();
    match iv.v with Some v -> v | None -> raise Cancelled

  let is_live iv = iv.g.live ()
end

(* Multi-producer single-consumer mailbox with batched drain
   (DESIGN 4h). Senders append to per-sender segments — striped by the
   sending domain, so concurrent senders take disjoint, uncontended
   locks — and the receiver moves whole segments into its private
   FIFO batch with O(1) [Queue.transfer]s: N queued messages cost N/batch
   lock round-trips on the receive side instead of N, and the drained
   batch is popped with no synchronization at all (single consumer).
   FIFO per sender holds because a sender task runs on one thread of
   one domain, hence always appends to the same segment queue, and
   transfers preserve segment order. Cross-sender interleaving is
   unspecified (it always was under real concurrency).

   A receiver that finds everything empty parks on a gate and is woken
   by the first send that observes a waiter ([nwaiters] lets the send
   fast path skip the waiter lock entirely). Wake-ups may be spurious
   but are never lost: the waiter is published before the final
   locked sweep, so a sender either sees the waiter count or its
   message is seen by that sweep (the segment mutex orders the two).
   Closing wakes every blocked receiver with [None] — that is how the
   mc transport's per-brick receive loops are told to exit; messages
   already queued at close remain receivable.

   At most one task may block in [recv] at a time (the mc transport
   runs one receive loop per mailbox); senders are unrestricted. *)
module Mailbox = struct
  type waiter = { wg : gate }
  type 'a seg = { sq_lock : Mutex.t; sq : 'a Queue.t }

  let nsegs = 8 (* power of two; sender stripe = domain id land mask *)

  type nonrec 'a t = {
    rt : t;
    segs : 'a seg array;
    drained : 'a Queue.t;  (* receiver-private FIFO batch *)
    lock : Mutex.t;  (* guards waiters *)
    mutable waiters : waiter list;  (* oldest first *)
    nwaiters : int Atomic.t;  (* = List.length waiters *)
    closed : bool Atomic.t;
    batches : int Atomic.t;  (* non-empty segment transfers *)
    batched : int Atomic.t;  (* messages moved by those transfers *)
  }

  let create rt =
    {
      rt;
      segs =
        Array.init nsegs (fun _ ->
            { sq_lock = Mutex.create (); sq = Queue.create () });
      drained = Queue.create ();
      lock = Mutex.create ();
      waiters = [];
      nwaiters = Atomic.make 0;
      closed = Atomic.make false;
      batches = Atomic.make 0;
      batched = Atomic.make 0;
    }

  (* Debug invariant, checked under the waiter lock. *)
  let check t =
    if debug then assert (Atomic.get t.nwaiters = List.length t.waiters)

  let send t v =
    if not (Atomic.get t.closed) then begin
      let seg = t.segs.((Domain.self () :> int) land (nsegs - 1)) in
      Mutex.lock seg.sq_lock;
      Queue.push v seg.sq;
      Mutex.unlock seg.sq_lock;
      (* Fast path: no parked receiver, no waiter lock. *)
      if Atomic.get t.nwaiters > 0 then begin
        Mutex.lock t.lock;
        let w =
          match t.waiters with
          | w :: rest ->
              t.waiters <- rest;
              Atomic.decr t.nwaiters;
              Some w
          | [] -> None
        in
        check t;
        Mutex.unlock t.lock;
        match w with Some w -> w.wg.open_ () | None -> ()
      end
    end

  let transfer_seg t seg =
    let n = Queue.length seg.sq in
    if n > 0 then begin
      Queue.transfer seg.sq t.drained;
      Atomic.incr t.batches;
      ignore (Atomic.fetch_and_add t.batched n)
    end

  (* Opportunistic sweep: peek each segment without its lock (a racy
     read that may miss a message in flight) and transfer the visibly
     non-empty ones. Only an optimization — correctness rests on
     [sweep_locked]. Receiver-only. *)
  let sweep_fast t =
    Array.iter
      (fun seg ->
        if not (Queue.is_empty seg.sq) then begin
          Mutex.lock seg.sq_lock;
          transfer_seg t seg;
          Mutex.unlock seg.sq_lock
        end)
      t.segs

  (* Authoritative sweep: takes every segment lock, so it observes any
     message whose send completed before this sweep reached its
     segment — the ordering the parking protocol relies on. *)
  let sweep_locked t =
    Array.iter
      (fun seg ->
        Mutex.lock seg.sq_lock;
        transfer_seg t seg;
        Mutex.unlock seg.sq_lock)
      t.segs

  let unregister t w =
    Mutex.lock t.lock;
    if List.memq w t.waiters then begin
      t.waiters <- List.filter (fun x -> x != w) t.waiters;
      Atomic.decr t.nwaiters
    end;
    check t;
    Mutex.unlock t.lock

  (* Before paying for a park (a fresh gate, waiter bookkeeping, a
     condvar round-trip on mc), yield and re-sweep this many times: in
     request/reply ping-pong the sender usually produces the next
     message within one scheduling quantum, so the yield converts most
     parks into a thread switch. Uses the runtime's own [yield] —
     a [Thread.yield] on mc, a deterministic 0-delay reschedule on
     sim — so both backends keep identical mailbox semantics. *)
  let spin_budget = 2

  let recv ?timeout t =
    let deadline =
      match timeout with None -> None | Some d -> Some (t.rt.now () +. d)
    in
    let rec loop spins =
      match Queue.pop t.drained with
      | v -> Some v (* hot path: no lock, no atomics *)
      | exception Queue.Empty ->
          sweep_fast t;
          if not (Queue.is_empty t.drained) then loop spins
          else if Atomic.get t.closed then begin
            (* Drain stragglers queued before (or racing) the close. *)
            sweep_locked t;
            if Queue.is_empty t.drained then None else loop spins
          end
          else if
            match deadline with
            | Some dl -> t.rt.now () >= dl
            | None -> false
          then None
          else if spins > 0 then begin
            t.rt.yield ();
            loop (spins - 1)
          end
          else begin
            (* Publish the waiter, then re-sweep under the segment
               locks: a sender that missed the waiter count published
               its message before our sweep locked its segment — one
               of the two checks always fires. *)
            let w = { wg = t.rt.gate () } in
            Mutex.lock t.lock;
            t.waiters <- t.waiters @ [ w ];
            Atomic.incr t.nwaiters;
            check t;
            Mutex.unlock t.lock;
            sweep_locked t;
            if
              (not (Queue.is_empty t.drained)) || Atomic.get t.closed
            then begin
              (* Consume instead of parking. If a sender already took
                 the waiter, its open_ on the retired gate is a no-op. *)
              unregister t w;
              loop spin_budget
            end
            else begin
              let tm =
                match deadline with
                | None -> None
                | Some dl ->
                    (* On expiry: claim the waiter back under the lock.
                       If it is gone a sender already woke it (the
                       message wins the race, the timeout is lost). *)
                    Some
                      (t.rt.timer ~delay:(dl -. t.rt.now ()) (fun () ->
                           Mutex.lock t.lock;
                           let mine = List.memq w t.waiters in
                           if mine then begin
                             t.waiters <-
                               List.filter (fun x -> x != w) t.waiters;
                             Atomic.decr t.nwaiters
                           end;
                           Mutex.unlock t.lock;
                           if mine then w.wg.open_ ()))
              in
              w.wg.await ();
              (match tm with Some tm -> tm.tcancel () | None -> ());
              unregister t w;
              loop spin_budget
            end
          end
    in
    loop spin_budget

  let close t =
    Atomic.set t.closed true;
    Mutex.lock t.lock;
    let ws = t.waiters in
    t.waiters <- [];
    Atomic.set t.nwaiters 0;
    Mutex.unlock t.lock;
    List.iter (fun w -> w.wg.open_ ()) ws

  let is_closed t = Atomic.get t.closed

  (* Segment queues are counted under their locks; [drained] is read
     without one (it belongs to the receiver), so with a receive loop
     in flight this is approximate — tests call it quiesced. *)
  let length t =
    let n =
      Array.fold_left
        (fun acc seg ->
          Mutex.lock seg.sq_lock;
          let k = Queue.length seg.sq in
          Mutex.unlock seg.sq_lock;
          acc + k)
        0 t.segs
    in
    n + Queue.length t.drained

  let drain_stats t = (Atomic.get t.batches, Atomic.get t.batched)
end

(* Domain-local buffer pools: free lists of [Bytes.t] keyed by exact
   length, one pool per domain ([Domain.DLS]) so acquire/release never
   contend across domains. Within a domain the pool still takes a
   (domain-private, hence uncontended) mutex: threads of one domain
   never run OCaml in parallel, but a systhread switch can land inside
   a Hashtbl operation. Buffers may be released on a different domain
   than they were acquired on — they simply migrate to the releasing
   domain's pool. Contents of an acquired buffer are arbitrary; callers
   zero what they need. *)
module Bufpool = struct
  type cls = { mutable bufs : Bytes.t list; mutable spare : int }
  type pool = { plock : Mutex.t; classes : (int, cls) Hashtbl.t }

  let key : pool Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        { plock = Mutex.create (); classes = Hashtbl.create 8 })

  (* Bound per (domain, length) class so a burst can't pin memory. *)
  let max_per_class = 64

  let acquire len =
    let p = Domain.DLS.get key in
    Mutex.lock p.plock;
    let hit =
      match Hashtbl.find_opt p.classes len with
      | Some ({ bufs = b :: rest; _ } as c) ->
          c.bufs <- rest;
          c.spare <- c.spare - 1;
          Some b
      | Some { bufs = []; _ } | None -> None
    in
    Mutex.unlock p.plock;
    match hit with Some b -> b | None -> Bytes.create len

  let release b =
    let len = Bytes.length b in
    let p = Domain.DLS.get key in
    Mutex.lock p.plock;
    (match Hashtbl.find_opt p.classes len with
    | Some c ->
        if c.spare < max_per_class then begin
          c.bufs <- b :: c.bufs;
          c.spare <- c.spare + 1
        end
    | None -> Hashtbl.replace p.classes len { bufs = [ b ]; spare = 1 });
    Mutex.unlock p.plock
end

(* Generic scatter-gather join used by the mc backend (the sim backend
   delegates to Dessim.Fiber.all, whose scheduling the dessim-path
   tests pin down byte-for-byte). Same contract: launch in input
   order, at most [window] in flight, next thunk starts as one
   settles; a cancelled child stops further launches, the rest drain,
   then Cancelled re-raises in the caller; any other child exception
   is re-raised in the caller once every child settled. *)
let all_generic rt window thunks =
  let window = match window with None -> max_int | Some w -> w in
  if window < 1 then invalid_arg "Runtime.all: window < 1";
  match thunks with
  | [] -> []
  | _ ->
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      let results = Array.make n None in
      let lock = Mutex.create () in
      let g = rt.gate () in
      let cancelled = ref false in
      let failed = ref None in
      let active = ref 0 in
      let next = ref 0 in
      let settled = ref false in
      let settle_locked () =
        !active = 0 && (!cancelled || !failed <> None || !next >= n)
      in
      let rec launch_ready () =
        Mutex.lock lock;
        let batch = ref [] in
        while
          !active < window && !next < n && (not !cancelled) && !failed = None
        do
          batch := !next :: !batch;
          incr next;
          incr active
        done;
        Mutex.unlock lock;
        List.iter (fun i -> rt.spawn (fun () -> child i)) (List.rev !batch)
      and child i =
        (match thunks.(i) () with
        | v ->
            Mutex.lock lock;
            results.(i) <- Some v;
            decr active;
            Mutex.unlock lock
        | exception Cancelled ->
            Mutex.lock lock;
            cancelled := true;
            decr active;
            Mutex.unlock lock
        | exception e ->
            Mutex.lock lock;
            if !failed = None then failed := Some e;
            decr active;
            Mutex.unlock lock);
        launch_ready ();
        maybe_open ()
      and maybe_open () =
        Mutex.lock lock;
        let fire = settle_locked () && not !settled in
        if fire then settled := true;
        Mutex.unlock lock;
        if fire then g.open_ ()
      in
      launch_ready ();
      maybe_open ();
      g.await ();
      if !cancelled then raise Cancelled;
      (match !failed with Some e -> raise e | None -> ());
      Array.to_list (Array.map Option.get results)
