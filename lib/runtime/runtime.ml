(* The runtime abstraction the protocol layers program against.

   A backend provides time, task spawning and one-shot gates; every
   higher-level blocking structure (sleep, ivars, mailboxes, the
   scatter-gather join) is built here, once, on top of those three.
   Two backends exist: Runtime_sim wraps the deterministic
   discrete-event engine (lib/dessim) and is the reproducible oracle;
   Runtime_mc runs tasks on OCaml 5 domains against the real clock.

   Thread-safety contract: on the sim backend everything runs in one
   thread, so no synchronization is needed but none hurts; on the mc
   backend gate operations, mailboxes and ivars are safe to call from
   any domain. Code that must work on both backends therefore uses the
   structures in this module rather than rolling its own. *)

exception Cancelled
(* Raised inside a task whose pending suspension was cancelled (a
   coordinator crash tearing down its quorum calls). The sim backend
   rebinds Dessim.Fiber.Cancelled to this same constructor, so a
   single handler catches both worlds. *)

(* Assertion mode: FAB_RUNTIME_DEBUG=1 turns on mailbox and gate
   invariant checks on every operation (used by @parallel-smoke). *)
let debug =
  match Sys.getenv_opt "FAB_RUNTIME_DEBUG" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

type gate = {
  await : unit -> unit;
  open_ : unit -> unit;
  abort : unit -> unit;
  live : unit -> bool;
}

type timer = { tcancel : unit -> unit }

type t = {
  name : string;  (* "sim" | "mc" *)
  now : unit -> float;
  rng : unit -> Random.State.t;
  spawn : (unit -> unit) -> unit;
  yield : unit -> unit;
  timer : delay:float -> (unit -> unit) -> timer;
  gate : unit -> gate;
  all : 'a. int option -> (unit -> 'a) list -> 'a list;
}

let name t = t.name
let now t = t.now ()
let rng t = t.rng ()
let spawn t f = t.spawn f
let yield t = t.yield ()
let timer t ~delay f = t.timer ~delay f
let cancel (tm : timer) = tm.tcancel ()
let all t ?window thunks = t.all window thunks

let sleep t delay =
  let g = t.gate () in
  ignore (t.timer ~delay (fun () -> g.open_ ()));
  g.await ()

(* One-shot write-once cell: the quorum call's "waiting for replies"
   state. The filler writes the value before opening the gate, and the
   gate's own synchronization publishes it to the awaiter. *)
module Ivar = struct
  type nonrec 'a t = { g : gate; mutable v : 'a option }

  let create rt = { g = rt.gate (); v = None }

  let fill iv v =
    (match iv.v with None -> iv.v <- Some v | Some _ -> ());
    iv.g.open_ ()

  let abort iv = iv.g.abort ()

  let await iv =
    iv.g.await ();
    match iv.v with Some v -> v | None -> raise Cancelled

  let is_live iv = iv.g.live ()
end

(* Multi-producer mailbox with direct hand-off to blocked receivers.
   FIFO per sender: one sender's messages are received in send order
   (each send either appends to the queue or hands off to the
   longest-waiting receiver, both under one lock). Closing wakes every
   blocked receiver with [None] — that is how the mc transport's
   per-brick receive loops are told to exit. *)
module Mailbox = struct
  type 'a waiter = { wg : gate; mutable slot : 'a option }

  type nonrec 'a t = {
    rt : t;
    lock : Mutex.t;
    q : 'a Queue.t;
    mutable waiters : 'a waiter list;  (* oldest first *)
    mutable closed : bool;
  }

  let create rt =
    { rt; lock = Mutex.create (); q = Queue.create (); waiters = [];
      closed = false }

  (* Invariant: a mailbox never holds queued messages and waiting
     receivers at the same time (a send hands off if anyone waits; a
     receiver only waits when the queue is empty). Checked under the
     mailbox lock in debug mode. *)
  let check t =
    if debug then
      assert (Queue.is_empty t.q || t.waiters = [])

  let send t v =
    Mutex.lock t.lock;
    if t.closed then (
      check t;
      Mutex.unlock t.lock)
    else
      match t.waiters with
      | w :: rest ->
          t.waiters <- rest;
          if debug then assert (w.slot = None && Queue.is_empty t.q);
          w.slot <- Some v;
          check t;
          Mutex.unlock t.lock;
          w.wg.open_ ()
      | [] ->
          Queue.push v t.q;
          check t;
          Mutex.unlock t.lock

  let recv ?timeout t =
    Mutex.lock t.lock;
    if not (Queue.is_empty t.q) then begin
      let v = Queue.pop t.q in
      check t;
      Mutex.unlock t.lock;
      Some v
    end
    else if t.closed then (
      Mutex.unlock t.lock;
      None)
    else begin
      let w = { wg = t.rt.gate (); slot = None } in
      t.waiters <- t.waiters @ [ w ];
      check t;
      Mutex.unlock t.lock;
      let tm =
        match timeout with
        | None -> None
        | Some d ->
            (* On expiry: claim the waiter back under the lock. If the
               waiter is gone a sender already owns it (the message
               wins the race and the timeout is lost). *)
            Some
              (t.rt.timer ~delay:d (fun () ->
                   Mutex.lock t.lock;
                   let mine = List.memq w t.waiters in
                   if mine then
                     t.waiters <- List.filter (fun x -> x != w) t.waiters;
                   Mutex.unlock t.lock;
                   if mine then w.wg.open_ ()))
      in
      w.wg.await ();
      (match tm with Some tm -> tm.tcancel () | None -> ());
      w.slot
    end

  let close t =
    Mutex.lock t.lock;
    t.closed <- true;
    let ws = t.waiters in
    t.waiters <- [];
    Mutex.unlock t.lock;
    List.iter (fun w -> w.wg.open_ ()) ws

  let is_closed t =
    Mutex.lock t.lock;
    let c = t.closed in
    Mutex.unlock t.lock;
    c

  let length t =
    Mutex.lock t.lock;
    let n = Queue.length t.q in
    Mutex.unlock t.lock;
    n
end

(* Generic scatter-gather join used by the mc backend (the sim backend
   delegates to Dessim.Fiber.all, whose scheduling the dessim-path
   tests pin down byte-for-byte). Same contract: launch in input
   order, at most [window] in flight, next thunk starts as one
   settles; a cancelled child stops further launches, the rest drain,
   then Cancelled re-raises in the caller; any other child exception
   is re-raised in the caller once every child settled. *)
let all_generic rt window thunks =
  let window = match window with None -> max_int | Some w -> w in
  if window < 1 then invalid_arg "Runtime.all: window < 1";
  match thunks with
  | [] -> []
  | _ ->
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      let results = Array.make n None in
      let lock = Mutex.create () in
      let g = rt.gate () in
      let cancelled = ref false in
      let failed = ref None in
      let active = ref 0 in
      let next = ref 0 in
      let settled = ref false in
      let settle_locked () =
        !active = 0 && (!cancelled || !failed <> None || !next >= n)
      in
      let rec launch_ready () =
        Mutex.lock lock;
        let batch = ref [] in
        while
          !active < window && !next < n && (not !cancelled) && !failed = None
        do
          batch := !next :: !batch;
          incr next;
          incr active
        done;
        Mutex.unlock lock;
        List.iter (fun i -> rt.spawn (fun () -> child i)) (List.rev !batch)
      and child i =
        (match thunks.(i) () with
        | v ->
            Mutex.lock lock;
            results.(i) <- Some v;
            decr active;
            Mutex.unlock lock
        | exception Cancelled ->
            Mutex.lock lock;
            cancelled := true;
            decr active;
            Mutex.unlock lock
        | exception e ->
            Mutex.lock lock;
            if !failed = None then failed := Some e;
            decr active;
            Mutex.unlock lock);
        launch_ready ();
        maybe_open ()
      and maybe_open () =
        Mutex.lock lock;
        let fire = settle_locked () && not !settled in
        if fire then settled := true;
        Mutex.unlock lock;
        if fire then g.open_ ()
      in
      launch_ready ();
      maybe_open ();
      g.await ();
      if !cancelled then raise Cancelled;
      (match !failed with Some e -> raise e | None -> ());
      Array.to_list (Array.map Option.get results)
