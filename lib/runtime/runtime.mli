(** Runtime abstraction: the execution substrate the protocol layers
    program against instead of calling the simulator directly.

    A {!t} is a record of closures provided by a backend:

    - [Runtime_sim.of_engine] wraps the deterministic discrete-event
      engine — virtual time, cooperative fibers, reproducible runs;
    - [Runtime_mc.create] runs tasks on OCaml 5 domains — wall-clock
      time, real parallelism, no determinism and no virtual time.

    Coordinators, replicas, the quorum RPC layer and the workload
    clients are written against this interface, so the same protocol
    code runs on both backends (DESIGN 4g). *)

exception Cancelled
(** Raised inside a task whose pending suspension was cancelled; the
    sim backend's [Dessim.Fiber.Cancelled] is rebound to this same
    constructor, so one handler catches both. *)

val debug : bool
(** True when [FAB_RUNTIME_DEBUG=1]: mailbox/gate invariants are
    asserted on every operation. *)

type gate = {
  await : unit -> unit;
      (** Block the calling task until the gate opens. One waiter per
          gate. @raise Cancelled if the gate is aborted. *)
  open_ : unit -> unit;  (** Open the gate (one-shot; later calls no-op). *)
  abort : unit -> unit;  (** Cancel the waiter instead of waking it. *)
  live : unit -> bool;  (** Neither opened nor aborted yet. *)
}
(** A one-shot suspension point: the primitive every blocking
    structure in this module is built from. *)

type timer = { tcancel : unit -> unit }
(** Handle on a pending timer; cancelling a fired timer is a no-op. *)

type t = {
  name : string;  (** ["sim"] or ["mc"]. *)
  now : unit -> float;
      (** Sim: virtual time. Mc: wall-clock seconds since backend
          creation. All span timestamps come from here. *)
  rng : unit -> Random.State.t;
      (** Sim: the engine's seeded stream (deterministic). Mc: a
          domain-local self-seeded state. *)
  spawn : (unit -> unit) -> unit;
      (** Start a task. Sim: a fiber, run immediately to its first
          suspension. Mc: a thread on one of the pool's domains. *)
  yield : unit -> unit;
  timer : delay:float -> (unit -> unit) -> timer;
      (** Run a callback [delay] from now. Callbacks must not block. *)
  gate : unit -> gate;
  all : 'a. int option -> (unit -> 'a) list -> 'a list;
      (** Scatter-gather join; see {!all} for the wrapper. *)
}

val name : t -> string
val now : t -> float
val rng : t -> Random.State.t
val spawn : t -> (unit -> unit) -> unit
val yield : t -> unit
val timer : t -> delay:float -> (unit -> unit) -> timer
val cancel : timer -> unit

val sleep : t -> float -> unit
(** Block the calling task for a duration (virtual or real). *)

val all : t -> ?window:int -> (unit -> 'a) list -> 'a list
(** [all rt ?window thunks] runs every thunk as a child task, at most
    [window] in flight, launch order = input order, and returns the
    results in input order. Cancellation semantics match
    [Dessim.Fiber.all] (to which the sim backend delegates).
    @raise Invalid_argument if [window < 1]. *)

(** One-shot write-once cell: fill-before-open publishes the value to
    the awaiting task through the gate's synchronization. *)
module Ivar : sig
  type rt := t
  type 'a t

  val create : rt -> 'a t

  val fill : 'a t -> 'a -> unit
  (** First fill wins; the value must be written by at most one task
      at a time (callers serialize fills under their own lock). *)

  val abort : 'a t -> unit
  val await : 'a t -> 'a  (** @raise Cancelled if aborted. *)

  val is_live : 'a t -> bool
end

(** MPSC mailbox with FIFO-per-sender ordering and batched drain
    (DESIGN 4h). Sends land in one of eight per-sender segments
    (indexed by the sending domain, each its own mutex + queue), so
    concurrent senders rarely contend; the receiver swaps whole
    segments into a private drained queue with [Queue.transfer] and
    then pops with no lock at all, yielding briefly before parking.
    FIFO holds per sender; the order across senders is unspecified.
    At most one receiver may block at a time — every use in the tree
    (transports, daemons) is single-consumer. Safe from any domain on
    the mc backend. *)
module Mailbox : sig
  type rt := t
  type 'a t

  val create : rt -> 'a t

  val send : 'a t -> 'a -> unit
  (** Sends to a closed mailbox are dropped silently. *)

  val recv : ?timeout:float -> 'a t -> 'a option
  (** Block until a message arrives ([Some m]), the timeout expires,
      or the mailbox closes (both [None]). Messages queued before the
      close remain receivable. *)

  val close : 'a t -> unit
  (** Close and wake every blocked receiver with [None]. *)

  val is_closed : 'a t -> bool
  val length : 'a t -> int

  val drain_stats : 'a t -> int * int
  (** [(batches, messages)] moved by non-empty inbox swaps so far:
      [messages / batches] is the mean drain batch size — the mc
      cluster materializes this as [runtime.mailbox.drain.*]. *)
end

(** Domain-local free lists of [Bytes.t], keyed by exact length: the
    allocation-avoidance pool for per-call control buffers and codec
    scratch on the mc hot path (no cross-domain contention; a buffer
    released on another domain migrates to that domain's pool).
    Acquired buffers have arbitrary contents — callers zero what they
    need. Release a buffer at most once, and only when no other task
    can still reach it. *)
module Bufpool : sig
  val acquire : int -> Bytes.t
  val release : Bytes.t -> unit
end

val all_generic : t -> int option -> (unit -> 'a) list -> 'a list
(** The portable join implementation (used by the mc backend; exposed
    for backends that have no native one). *)
