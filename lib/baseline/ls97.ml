module Ts = Core.Timestamp
module Clock = Core.Clock

type msg =
  | Get_tag of { reg : int }
  | Get of { reg : int }
  | Put of { reg : int; value : Bytes.t; ts : Ts.t }
  | Get_tag_r of { ts : Ts.t }
  | Get_r of { value : Bytes.t; ts : Ts.t }
  | Put_r of { ts : Ts.t }

let bytes_on_wire = function
  | Get_tag _ | Get _ | Get_tag_r _ | Put_r _ -> 0
  | Put { value; _ } -> Bytes.length value
  | Get_r { value; _ } -> Bytes.length value

type replica_reg = { mutable value : Bytes.t; mutable ts : Ts.t }

type t = {
  engine : Dessim.Engine.t;
  metrics : Metrics.Registry.t;
  rpc : (msg, msg) Quorum.Rpc.t;
  bricks : Brick.t array;
  clocks : Clock.t array;
  states : (int, replica_reg) Hashtbl.t array;  (* per brick: reg -> copy *)
  n : int;
  majority : int;
  block_size : int;
}

type 'a outcome = ('a, [ `Aborted ]) result

let n t = t.n
let block_size t = t.block_size
let metrics t = t.metrics
let engine t = t.engine
let bricks t = t.bricks

let reg_state t brick reg =
  let tbl = t.states.(brick) in
  match Hashtbl.find_opt tbl reg with
  | Some s -> s
  | None ->
      let s = { value = Bytes.make t.block_size '\000'; ts = Ts.low } in
      Hashtbl.add tbl reg s;
      s

let handle t brick ~src:_ msg =
  if not (Brick.is_alive t.bricks.(brick)) then None
  else
    match msg with
    | Get_tag { reg } ->
        (* Tags live in NVRAM: no disk I/O to answer. *)
        Some (Get_tag_r { ts = (reg_state t brick reg).ts })
    | Get { reg } ->
        let s = reg_state t brick reg in
        Brick.count_disk_read t.bricks.(brick);
        Some (Get_r { value = s.value; ts = s.ts })
    | Put { reg; value; ts } ->
        let s = reg_state t brick reg in
        if Ts.( >= ) ts s.ts then begin
          (* A blind write, as Table 1's cost model assumes: a
             write-back with the tag the replica already holds
             rewrites the (identical) value rather than verifying
             and skipping. *)
          s.value <- value;
          s.ts <- ts;
          Brick.count_disk_write t.bricks.(brick);
          Brick.count_nvram_write t.bricks.(brick)
        end;
        Some (Put_r { ts })
    | Get_tag_r _ | Get_r _ | Put_r _ -> None

let create ?(seed = 42) ?(net_config = Simnet.Net.default_config)
    ?(block_size = 1024) ~n:count () =
  if count < 2 then invalid_arg "Baseline.Ls97.create: n < 2";
  let engine = Dessim.Engine.create ~seed () in
  let runtime = Runtime_sim.of_engine engine in
  let metrics = Metrics.Registry.create () in
  let net = Simnet.Net.create ~metrics engine ~config:net_config ~n:count in
  let rpc =
    Quorum.Rpc.create ~rt:runtime ~transport:(Quorum.Rpc.of_net net)
      ~req_bytes:bytes_on_wire ~rep_bytes:bytes_on_wire
      ~grace:(net_config.Simnet.Net.delay +. net_config.Simnet.Net.jitter)
      ()
  in
  let bricks = Array.init count (fun id -> Brick.create ~metrics runtime ~id) in
  let clocks = Array.init count (fun pid -> Clock.logical ~pid) in
  let states = Array.init count (fun _ -> Hashtbl.create 16) in
  let t =
    {
      engine;
      metrics;
      rpc;
      bricks;
      clocks;
      states;
      n = count;
      majority = (count / 2) + 1;
      block_size;
    }
  in
  Array.iteri
    (fun i _ ->
      Quorum.Rpc.serve rpc ~addr:i (fun ~src ~ctx:_ msg -> handle t i ~src msg))
    bricks;
  t

let members t = List.init t.n Fun.id

let quorum_call t ~coord msg =
  Quorum.Rpc.call t.rpc ~coord:t.bricks.(coord) ~members:(members t)
    ~quorum:t.majority (fun _ -> msg)

(* Phase 1 of both operations: the highest (tag, value) pair a majority
   has seen. The clock observes the tags so a subsequent Put always
   proposes a strictly larger tag. *)
let max_tag replies =
  List.fold_left
    (fun acc (_, reply) ->
      match reply with
      | Get_tag_r { ts } -> Ts.max acc ts
      | Get_r { ts; _ } -> Ts.max acc ts
      | _ -> acc)
    Ts.low replies

let read t ~coord ~reg =
  let replies = quorum_call t ~coord (Get { reg }) in
  let best = max_tag replies in
  let value =
    List.find_map
      (fun (_, reply) ->
        match reply with
        | Get_r { value; ts } when Ts.equal ts best -> Some value
        | _ -> None)
      replies
  in
  match value with
  | None -> Error `Aborted  (* unreachable: some reply carries the max tag *)
  | Some value ->
      (* Phase 2: write back so the value is fixed at a majority
         before returning (this is what completes partial writes —
         plain, not strict, linearizability). *)
      let _ = quorum_call t ~coord (Put { reg; value; ts = best }) in
      Ok value

let write t ~coord ~reg value =
  if Bytes.length value <> t.block_size then
    invalid_arg "Baseline.Ls97.write: wrong block size";
  let replies = quorum_call t ~coord (Get_tag { reg }) in
  Clock.observe t.clocks.(coord) (max_tag replies);
  let ts = Clock.new_ts t.clocks.(coord) in
  let _ = quorum_call t ~coord (Put { reg; value; ts }) in
  Ok ()

let run ?(horizon = 100_000.) t =
  Dessim.Engine.run ~until:(Dessim.Engine.now t.engine +. horizon) t.engine

let run_op ?horizon t f =
  let result = ref None in
  Dessim.Fiber.spawn (fun () -> result := Some (f ()));
  run ?horizon t;
  !result

let crash t i = Brick.crash t.bricks.(i)
let recover t i = Brick.recover t.bricks.(i)
let snapshot t = Metrics.Snapshot.take t.metrics
