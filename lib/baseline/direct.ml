type msg =
  | Put of { reg : int; block : Bytes.t }
  | Get of { reg : int }
  | Put_r
  | Get_r of { block : Bytes.t }

let bytes_on_wire = function
  | Put { block; _ } -> Bytes.length block
  | Get_r { block } -> Bytes.length block
  | Get _ | Put_r -> 0

type t = {
  engine : Dessim.Engine.t;
  rpc : (msg, msg) Quorum.Rpc.t;
  bricks : Brick.t array;
  codec : Erasure.Codec.t;
  stores : (int, Bytes.t) Hashtbl.t array;  (* per device: reg -> block *)
  m : int;
  n : int;
  block_size : int;
}

type 'a outcome = ('a, [ `Failed ]) result

let block_size t = t.block_size
let engine t = t.engine

let create ?(seed = 42) ?(block_size = 1024) ~m ~n () =
  let codec =
    if m = 1 then Erasure.Codec.replication ~n ()
    else if n = m + 1 then Erasure.Codec.parity ~m ()
    else Erasure.Codec.rs ~m ~n ()
  in
  let engine = Dessim.Engine.create ~seed () in
  let runtime = Runtime_sim.of_engine engine in
  let metrics = Metrics.Registry.create () in
  let net =
    Simnet.Net.create ~metrics engine ~config:Simnet.Net.default_config ~n
  in
  let rpc =
    Quorum.Rpc.create ~rt:runtime ~transport:(Quorum.Rpc.of_net net)
      ~req_bytes:bytes_on_wire ~rep_bytes:bytes_on_wire ()
  in
  let bricks = Array.init n (fun id -> Brick.create ~metrics runtime ~id) in
  let stores = Array.init n (fun _ -> Hashtbl.create 16) in
  let t = { engine; rpc; bricks; codec; stores; m; n; block_size } in
  Array.iteri
    (fun i _ ->
      Quorum.Rpc.serve rpc ~addr:i (fun ~src:_ ~ctx:_ msg ->
          if not (Brick.is_alive t.bricks.(i)) then None
          else
            match msg with
            | Put { reg; block } ->
                (* Overwrite in place: the old version is gone. *)
                Hashtbl.replace t.stores.(i) reg block;
                Brick.count_disk_write t.bricks.(i);
                Some Put_r
            | Get { reg } -> (
                match Hashtbl.find_opt t.stores.(i) reg with
                | Some block ->
                    Brick.count_disk_read t.bricks.(i);
                    Some (Get_r { block })
                | None ->
                    Some (Get_r { block = Bytes.make t.block_size '\000' }))
            | Put_r | Get_r _ -> None))
    bricks;
  t

let members t = List.init t.n Fun.id
let live t = List.filter (fun i -> Brick.is_alive t.bricks.(i)) (members t)

let write t ~reg data =
  if Array.length data <> t.m then invalid_arg "Baseline.Direct.write: shape";
  let enc = Erasure.Codec.encode t.codec data in
  let targets = live t in
  if targets = [] then Error `Failed
  else begin
    let _ =
      Quorum.Rpc.call t.rpc ~coord:t.bricks.(List.hd targets) ~members:targets
        ~quorum:(List.length targets)
        (fun dst -> Put { reg; block = enc.(dst) })
    in
    Ok ()
  end

let write_prefix t ~reg ~devices data =
  let enc = Erasure.Codec.encode t.codec data in
  (* The client crashes after issuing the first [devices] block
     updates; simulate by delivering them directly. *)
  for i = 0 to min devices t.n - 1 do
    if Brick.is_alive t.bricks.(i) then begin
      Hashtbl.replace t.stores.(i) reg enc.(i);
      Brick.count_disk_write t.bricks.(i)
    end
  done

let read t ~reg =
  let targets = live t in
  if List.length targets < t.m then Error `Failed
  else begin
    let chosen = List.filteri (fun i _ -> i < t.m) targets in
    let replies =
      Quorum.Rpc.call t.rpc ~coord:t.bricks.(List.hd chosen) ~members:chosen
        ~quorum:t.m
        (fun _ -> Get { reg })
    in
    let blocks =
      List.filter_map
        (fun (src, r) ->
          match r with Get_r { block } -> Some (src, block) | _ -> None)
        replies
    in
    if List.length blocks < t.m then Error `Failed
    else Ok (Erasure.Codec.decode t.codec blocks)
  end

let crash_device t i = Brick.crash t.bricks.(i)

let run ?(horizon = 10_000.) t =
  Dessim.Engine.run ~until:(Dessim.Engine.now t.engine +. horizon) t.engine

let run_op ?horizon t f =
  let result = ref None in
  Dessim.Fiber.spawn (fun () -> result := Some (f ()));
  run ?horizon t;
  !result
