(** Arithmetic in the Galois field GF(2^8).

    Elements are represented as integers in [0, 255]. Addition is XOR;
    multiplication is polynomial multiplication modulo the primitive
    polynomial [x^8 + x^4 + x^3 + x^2 + 1] (0x11d), the polynomial
    conventionally used by Reed-Solomon coders. All operations are
    implemented with precomputed log/antilog tables, so they cost one or
    two array accesses. *)

type t = int
(** A field element; invariant: [0 <= x <= 255]. *)

val zero : t
val one : t

val add : t -> t -> t
(** [add a b] is the field sum (XOR). *)

val sub : t -> t -> t
(** [sub a b] equals [add a b]: in characteristic 2 addition is its own
    inverse. *)

val mul : t -> t -> t
(** [mul a b] is the field product. *)

val div : t -> t -> t
(** [div a b] is [mul a (inv b)].
    @raise Division_by_zero if [b = 0]. *)

val inv : t -> t
(** [inv a] is the multiplicative inverse of [a].
    @raise Division_by_zero if [a = 0]. *)

val pow : t -> int -> t
(** [pow a k] is [a] raised to the [k]'th power ([k >= 0]).
    [pow 0 0] is [1] by convention. *)

val exp_table : int -> t
(** [exp_table i] is the [i mod 255]'th power of the generator 2; exposed
    for table-driven coders and tests. [i] must be non-negative. *)

val log_table : t -> int
(** [log_table a] is the discrete logarithm of [a] base 2.
    @raise Invalid_argument if [a = 0]. *)

val mul_slice : dst:Bytes.t -> src:Bytes.t -> t -> unit
(** [mul_slice ~dst ~src c] sets [dst.(i) <- dst.(i) + c * src.(i)] for
    every byte index [i] (a fused multiply-accumulate over byte buffers).
    This is the inner loop of erasure encoding and decoding. The [c = 1]
    case runs 64 bits at a time; general coefficients use a cached
    per-coefficient product table ({!mul_table}).
    @raise Invalid_argument if the buffers have different lengths. *)

val mul_slice_set : dst:Bytes.t -> src:Bytes.t -> t -> unit
(** [mul_slice_set ~dst ~src c] sets [dst.(i) <- c * src.(i)] for every
    byte index [i] (overwriting [dst] rather than accumulating).
    @raise Invalid_argument if the buffers have different lengths. *)

val mul_table : t -> Bytes.t
(** [mul_table c] is the 256-entry table with [mul_table c].[s] = [c * s].
    Tables are built lazily and cached for the process lifetime, so
    repeated calls with the same coefficient return the same buffer.
    The returned bytes MUST NOT be mutated.
    @raise Invalid_argument if [c] is out of range. *)

val mul_table_slice : dst:Bytes.t -> src:Bytes.t -> Bytes.t -> unit
(** [mul_table_slice ~dst ~src table] sets
    [dst.(i) <- dst.(i) + table.[src.(i)]] for every byte index [i],
    where [table] is a prebuilt {!mul_table}. One unsafe lookup per
    byte, no branches; this is the kernel behind coefficient-table
    encode and decode.
    @raise Invalid_argument if the buffers have different lengths or
    [table] is not 256 bytes. *)

val mul_table_slice_set : dst:Bytes.t -> src:Bytes.t -> Bytes.t -> unit
(** [mul_table_slice_set ~dst ~src table] sets
    [dst.(i) <- table.[src.(i)]] (overwriting rather than accumulating).
    @raise Invalid_argument if the buffers have different lengths or
    [table] is not 256 bytes. *)

val mul_table_slice_acc2 :
  dst:Bytes.t -> src1:Bytes.t -> Bytes.t -> src2:Bytes.t -> Bytes.t -> unit
(** [mul_table_slice_acc2 ~dst ~src1 t1 ~src2 t2] sets
    [dst.(i) <- dst.(i) + t1.[src1.(i)] + t2.[src2.(i)]]: two
    table-mapped sources folded into [dst] in a single read-modify-write
    pass, halving the destination memory traffic of two chained
    {!mul_table_slice} calls.
    @raise Invalid_argument on length mismatch or non-256-entry table. *)

val mul_table_slice_acc4 :
  dst:Bytes.t ->
  src1:Bytes.t -> Bytes.t -> src2:Bytes.t -> Bytes.t ->
  src3:Bytes.t -> Bytes.t -> src4:Bytes.t -> Bytes.t -> unit
(** Four-source variant of {!mul_table_slice_acc2}: one pass over [dst]
    accumulates four table-mapped sources. *)

val split_tables : t -> Bytes.t
(** [split_tables c] is the 32-byte SPLIT(8,4) table pair for [c]:
    bytes [0..15] hold [c * v] for the low nibble [v], bytes [16..31]
    hold [c * (v << 4)] for the high nibble, so
    [c * s = lo.[s land 15] lxor hi.[s lsr 4]]. This is the layout
    consumed by byte-shuffle SIMD (SSSE3 [pshufb] / NEON [tbl]) and by
    the lane-expanded kernels in {!Gf256.Kernel}. Cached per
    coefficient; the returned bytes MUST NOT be mutated.
    @raise Invalid_argument if [c] is out of range. *)

val check_element : t -> unit
(** [check_element a] raises [Invalid_argument] unless [0 <= a <= 255].
    Called by {!mul}, {!inv} and {!div}, so scalar entry points reject
    out-of-range integers instead of reading out of table bounds. *)
