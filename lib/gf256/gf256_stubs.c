/* Optional SIMD kernels for GF(2^8) slice multiplication.
 *
 * Every kernel consumes the SPLIT(8,4) table layout produced by
 * Gf256.Field.split_tables: 32 bytes per coefficient, bytes 0..15 the
 * products of the low nibble, bytes 16..31 the products of the high
 * nibble, so c * s = lo[s & 15] ^ hi[s >> 4]. A byte shuffle
 * (SSSE3 pshufb / NEON tbl) applies one 16-entry table to 16 (or 32)
 * source bytes per instruction — the ISA-L / klauspost technique.
 *
 * Dispatch is at runtime: gf256_simd_level reports 0 (no usable SIMD,
 * the OCaml side then never selects the c_simd kernel), 1 (SSSE3 or
 * NEON, 16 B per step) or 2 (AVX2, 32 B per step). The x86 paths are
 * compiled with per-function target attributes so no global -mavx2 /
 * -mssse3 flags are needed and the file builds on any compiler; on
 * unknown architectures everything falls back to a portable scalar
 * loop (still correct, merely not advertised as a SIMD level).
 *
 * All stubs are [@@noalloc]: they never allocate, raise, or touch the
 * OCaml heap beyond reading Bytes payloads. Length and table-size
 * validation happens on the OCaml side (Gf256.Kernel).
 */

#include <stdint.h>
#include <string.h>
#include <caml/mlvalues.h>

#if defined(__x86_64__) || defined(_M_X64)
#define GF256_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <immintrin.h>
#define GF256_X86_SIMD 1
#endif
#elif defined(__aarch64__) || defined(_M_ARM64)
#if defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define GF256_NEON 1
#endif
#endif

/* ------------------------------------------------------------------ */
/* Scalar reference pass (tails and non-SIMD fallback)                 */
/* ------------------------------------------------------------------ */

static void scalar_pass(uint8_t *dst, const uint8_t *src,
                        const uint8_t *tbl, long from, long len, int set) {
  const uint8_t *lo = tbl, *hi = tbl + 16;
  long i;
  if (set) {
    for (i = from; i < len; i++)
      dst[i] = (uint8_t)(lo[src[i] & 15] ^ hi[src[i] >> 4]);
  } else {
    for (i = from; i < len; i++)
      dst[i] ^= (uint8_t)(lo[src[i] & 15] ^ hi[src[i] >> 4]);
  }
}

/* ------------------------------------------------------------------ */
/* x86: SSSE3 and AVX2                                                 */
/* ------------------------------------------------------------------ */

#ifdef GF256_X86_SIMD

__attribute__((target("ssse3"))) static void
ssse3_pass(uint8_t *dst, const uint8_t *src, const uint8_t *tbl, long len,
           int set) {
  const __m128i lo = _mm_loadu_si128((const __m128i *)tbl);
  const __m128i hi = _mm_loadu_si128((const __m128i *)(tbl + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  long i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i s = _mm_loadu_si128((const __m128i *)(src + i));
    __m128i sl = _mm_and_si128(s, mask);
    __m128i sh = _mm_and_si128(_mm_srli_epi16(s, 4), mask);
    __m128i prod =
        _mm_xor_si128(_mm_shuffle_epi8(lo, sl), _mm_shuffle_epi8(hi, sh));
    if (!set)
      prod = _mm_xor_si128(prod, _mm_loadu_si128((const __m128i *)(dst + i)));
    _mm_storeu_si128((__m128i *)(dst + i), prod);
  }
  scalar_pass(dst, src, tbl, i, len, set);
}

__attribute__((target("avx2"))) static void
avx2_pass(uint8_t *dst, const uint8_t *src, const uint8_t *tbl, long len,
          int set) {
  const __m256i lo =
      _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i *)tbl));
  const __m256i hi =
      _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i *)(tbl + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  long i = 0;
  for (; i + 64 <= len; i += 64) {
    __m256i s0 = _mm256_loadu_si256((const __m256i *)(src + i));
    __m256i s1 = _mm256_loadu_si256((const __m256i *)(src + i + 32));
    __m256i p0 = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(s0, mask)),
        _mm256_shuffle_epi8(hi,
                            _mm256_and_si256(_mm256_srli_epi16(s0, 4), mask)));
    __m256i p1 = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(s1, mask)),
        _mm256_shuffle_epi8(hi,
                            _mm256_and_si256(_mm256_srli_epi16(s1, 4), mask)));
    if (!set) {
      p0 = _mm256_xor_si256(p0,
                            _mm256_loadu_si256((const __m256i *)(dst + i)));
      p1 = _mm256_xor_si256(
          p1, _mm256_loadu_si256((const __m256i *)(dst + i + 32)));
    }
    _mm256_storeu_si256((__m256i *)(dst + i), p0);
    _mm256_storeu_si256((__m256i *)(dst + i + 32), p1);
  }
  for (; i + 32 <= len; i += 32) {
    __m256i s = _mm256_loadu_si256((const __m256i *)(src + i));
    __m256i prod = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(hi,
                            _mm256_and_si256(_mm256_srli_epi16(s, 4), mask)));
    if (!set)
      prod = _mm256_xor_si256(prod,
                              _mm256_loadu_si256((const __m256i *)(dst + i)));
    _mm256_storeu_si256((__m256i *)(dst + i), prod);
  }
  _mm256_zeroupper();
  scalar_pass(dst, src, tbl, i, len, set);
}

/* Fused-rows inner loop, 128-byte destination tiles. For each tile of
 * a parity row the four 32-byte accumulators stay in ymm registers
 * across all k sources, so the row is written exactly once per tile
 * instead of read-modify-written once per source. The per-source cost
 * is two 16-byte table loads (re-broadcast per tile) — amortised over
 * 128 bytes that is far cheaper than the 256 bytes of destination
 * traffic it replaces. */
__attribute__((target("avx2"))) static void
avx2_rows_tile(uint8_t *dst, value srcs, const uint8_t *trow, long k, long i,
               int acc) {
  const __m256i mask = _mm256_set1_epi8(0x0f);
  __m256i a0, a1, a2, a3;
  long j;
  if (acc) {
    a0 = _mm256_loadu_si256((const __m256i *)(dst + i));
    a1 = _mm256_loadu_si256((const __m256i *)(dst + i + 32));
    a2 = _mm256_loadu_si256((const __m256i *)(dst + i + 64));
    a3 = _mm256_loadu_si256((const __m256i *)(dst + i + 96));
  } else {
    a0 = a1 = a2 = a3 = _mm256_setzero_si256();
  }
  for (j = 0; j < k; j++) {
    const uint8_t *tbl = trow + j * 32;
    const __m256i lo =
        _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i *)tbl));
    const __m256i hi =
        _mm256_broadcastsi128_si256(_mm_loadu_si128((const __m128i *)(tbl + 16)));
    const uint8_t *src = Bytes_val(Field(srcs, j)) + i;
    __m256i s0 = _mm256_loadu_si256((const __m256i *)src);
    __m256i s1 = _mm256_loadu_si256((const __m256i *)(src + 32));
    __m256i s2 = _mm256_loadu_si256((const __m256i *)(src + 64));
    __m256i s3 = _mm256_loadu_si256((const __m256i *)(src + 96));
    a0 = _mm256_xor_si256(
        a0, _mm256_xor_si256(
                _mm256_shuffle_epi8(lo, _mm256_and_si256(s0, mask)),
                _mm256_shuffle_epi8(
                    hi, _mm256_and_si256(_mm256_srli_epi16(s0, 4), mask))));
    a1 = _mm256_xor_si256(
        a1, _mm256_xor_si256(
                _mm256_shuffle_epi8(lo, _mm256_and_si256(s1, mask)),
                _mm256_shuffle_epi8(
                    hi, _mm256_and_si256(_mm256_srli_epi16(s1, 4), mask))));
    a2 = _mm256_xor_si256(
        a2, _mm256_xor_si256(
                _mm256_shuffle_epi8(lo, _mm256_and_si256(s2, mask)),
                _mm256_shuffle_epi8(
                    hi, _mm256_and_si256(_mm256_srli_epi16(s2, 4), mask))));
    a3 = _mm256_xor_si256(
        a3, _mm256_xor_si256(
                _mm256_shuffle_epi8(lo, _mm256_and_si256(s3, mask)),
                _mm256_shuffle_epi8(
                    hi, _mm256_and_si256(_mm256_srli_epi16(s3, 4), mask))));
  }
  _mm256_storeu_si256((__m256i *)(dst + i), a0);
  _mm256_storeu_si256((__m256i *)(dst + i + 32), a1);
  _mm256_storeu_si256((__m256i *)(dst + i + 64), a2);
  _mm256_storeu_si256((__m256i *)(dst + i + 96), a3);
}

#endif /* GF256_X86_SIMD */

/* ------------------------------------------------------------------ */
/* aarch64: NEON                                                       */
/* ------------------------------------------------------------------ */

#ifdef GF256_NEON

static void neon_pass(uint8_t *dst, const uint8_t *src, const uint8_t *tbl,
                      long len, int set) {
  const uint8x16_t lo = vld1q_u8(tbl);
  const uint8x16_t hi = vld1q_u8(tbl + 16);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  long i = 0;
  for (; i + 16 <= len; i += 16) {
    uint8x16_t s = vld1q_u8(src + i);
    uint8x16_t prod = veorq_u8(vqtbl1q_u8(lo, vandq_u8(s, mask)),
                               vqtbl1q_u8(hi, vshrq_n_u8(s, 4)));
    if (!set) prod = veorq_u8(prod, vld1q_u8(dst + i));
    vst1q_u8(dst + i, prod);
  }
  scalar_pass(dst, src, tbl, i, len, set);
}

#endif /* GF256_NEON */

/* ------------------------------------------------------------------ */
/* Runtime dispatch                                                    */
/* ------------------------------------------------------------------ */

static int simd_level = -1;

static int detect_level(void) {
#if defined(GF256_X86_SIMD)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return 2;
  if (__builtin_cpu_supports("ssse3")) return 1;
  return 0;
#elif defined(GF256_NEON)
  return 1;
#else
  return 0;
#endif
}

static inline int level(void) {
  if (simd_level < 0) simd_level = detect_level();
  return simd_level;
}

static void mul_pass(uint8_t *dst, const uint8_t *src, const uint8_t *tbl,
                     long len, int set) {
#if defined(GF256_X86_SIMD)
  switch (level()) {
  case 2: avx2_pass(dst, src, tbl, len, set); return;
  case 1: ssse3_pass(dst, src, tbl, len, set); return;
  default: break;
  }
#elif defined(GF256_NEON)
  if (level() >= 1) { neon_pass(dst, src, tbl, len, set); return; }
#endif
  scalar_pass(dst, src, tbl, 0, len, set);
}

/* ------------------------------------------------------------------ */
/* OCaml entry points                                                  */
/* ------------------------------------------------------------------ */

CAMLprim value gf256_simd_level(value unit) {
  (void)unit;
  return Val_long(level());
}

/* dst ^= table(src)  /  dst = table(src); tbl is one 32-byte pair. */
CAMLprim value gf256_mul_acc_stub(value dst, value src, value tbl,
                                  value vlen) {
  mul_pass(Bytes_val(dst), Bytes_val(src), Bytes_val(tbl), Long_val(vlen), 0);
  return Val_unit;
}

CAMLprim value gf256_mul_set_stub(value dst, value src, value tbl,
                                  value vlen) {
  mul_pass(Bytes_val(dst), Bytes_val(src), Bytes_val(tbl), Long_val(vlen), 1);
  return Val_unit;
}

/* Fused r x k linear map: dsts[p] (+)= sum_j tbls[p*k+j](srcs[j]).
 * [tbls] is one Bytes of r*k*32 table bytes; [srcs]/[dsts] are arrays
 * of Bytes (payload pointers are stable: no allocation happens here).
 * When [acc] is 0 row p is overwritten by its j = 0 term; when 1 the
 * whole map accumulates into the existing dsts. Each (p, j) pass
 * streams src once and read-modify-writes dst from L1 — with the
 * tables held in registers this is the ISA-L "vect_mad" shape. */
CAMLprim value gf256_rows_apply_native(value tbls, value srcs, value dsts,
                                       value vk, value vr, value vlen,
                                       value vacc) {
  long k = Long_val(vk), r = Long_val(vr), len = Long_val(vlen);
  int acc = Int_val(vacc);
  const uint8_t *tb = Bytes_val(tbls);
  long tiled = 0;
  long p, j, i;
#if defined(GF256_X86_SIMD)
  if (level() == 2) {
    tiled = len & ~127L;
    for (p = 0; p < r; p++) {
      uint8_t *dst = Bytes_val(Field(dsts, p));
      const uint8_t *trow = tb + p * k * 32;
      for (i = 0; i < tiled; i += 128)
        avx2_rows_tile(dst, srcs, trow, k, i, acc);
    }
  }
#else
  (void)i;
#endif
  if (tiled < len) {
    for (p = 0; p < r; p++) {
      uint8_t *dst = Bytes_val(Field(dsts, p));
      for (j = 0; j < k; j++) {
        const uint8_t *src = Bytes_val(Field(srcs, j));
        const uint8_t *tbl = tb + (p * k + j) * 32;
        mul_pass(dst + tiled, src + tiled, tbl, len - tiled,
                 (!acc && j == 0) ? 1 : 0);
      }
    }
  }
  return Val_unit;
}

CAMLprim value gf256_rows_apply_bytecode(value *argv, int argn) {
  (void)argn;
  return gf256_rows_apply_native(argv[0], argv[1], argv[2], argv[3], argv[4],
                                 argv[5], argv[6]);
}
