(** Dispatch between interchangeable GF(2^8) slice-kernel
    implementations.

    Every kernel computes the same linear maps over byte slices; they
    differ only in throughput:

    - [Scalar] — byte-at-a-time log/exp reference; the ground truth the
      others are property-tested against.
    - [Table] — 256-entry product table per coefficient, eight lookups
      per 64-bit word ({!Field.mul_table_slice}).
    - [Split64] — SPLIT(8,4) tables expanded into 64-bit lookup lanes:
      for a fused r-row map, one table lookup per source byte feeds up
      to eight output rows at once through an interleaved accumulator.
    - [C_simd] — C stubs applying the 32-byte SPLIT(8,4) tables with
      byte shuffles (SSSE3/AVX2 [pshufb], NEON [tbl]), 16–64 bytes per
      step. Only {!available} when the stubs detect usable SIMD at
      runtime; everything else is pure OCaml and always available.

    Codecs pick an implementation once at construction via {!select}
    and bake it into precomputed {!mul} and {!rows} operators, so the
    hot paths never branch on kernel choice or allocate tables. *)

type impl = Scalar | Table | Split64 | C_simd

val all : impl list
(** Every implementation, in ascending order of expected speed. *)

val name : impl -> string
(** ["scalar"], ["table"], ["split64"], ["c_simd"]. *)

val of_name : string -> impl
(** Inverse of {!name}.
    @raise Invalid_argument on an unknown kernel name. *)

val available : impl -> bool
(** Whether the implementation can run on this machine. The pure-OCaml
    kernels always can; [C_simd] requires the stubs to report SIMD. *)

val available_impls : unit -> impl list

val simd_level : int
(** Raw CPU capability reported by the C stubs: 0 = none (or non-SIMD
    build), 1 = SSSE3 or NEON (16 B/step), 2 = AVX2 (32 B/step). *)

val best_available : unit -> impl

val env_var : string
(** ["FAB_GF_KERNEL"] — overrides {!default} when set and non-empty. *)

val default : unit -> impl
(** The kernel a codec gets when none is requested: the value of
    [FAB_GF_KERNEL] if set and non-empty, otherwise {!best_available}.
    @raise Invalid_argument if the override names an unknown or
    unavailable kernel. *)

val select : ?impl:impl -> unit -> impl
(** Resolve the kernel for a new codec ([?impl] wins over {!default})
    and record the choice in the selection counters.
    @raise Invalid_argument if the requested kernel is unavailable. *)

val selection_counts : unit -> (string * int) list
(** [(name, codecs constructed with it)] for every implementation,
    since process start. *)

(** {1 Single-coefficient multipliers}

    A {!mul} is one precomputed coefficient: both the 256-entry product
    table and the 32-byte SPLIT(8,4) pair are resolved at construction,
    so applying it is allocation-free. *)

type mul

val make_mul : impl -> Field.t -> mul
(** @raise Invalid_argument if the coefficient is out of range. *)

val mul_coeff : mul -> Field.t

val mul_acc : mul -> dst:Bytes.t -> src:Bytes.t -> unit
(** [dst.(i) <- dst.(i) + c * src.(i)]. [c = 0] is a no-op, [c = 1]
    takes the wide-XOR path under every non-scalar kernel.
    @raise Invalid_argument on length mismatch. *)

val mul_set : mul -> dst:Bytes.t -> src:Bytes.t -> unit
(** [dst.(i) <- c * src.(i)].
    @raise Invalid_argument on length mismatch. *)

val mul_acc_multi : mul array -> dst:Bytes.t -> srcs:Bytes.t array -> unit
(** Fold every [c_i * srcs.(i)] into [dst] with as few destination
    passes as the kernel allows (acc4/acc2 chunking under the table
    kernels). Equivalent to calling {!mul_acc} per source.
    @raise Invalid_argument on arity or length mismatch. *)

(** {1 Fused row-group application}

    A {!rows} is a precompiled r x k coefficient matrix: dsts.(p)
    [<-] (or [+=]) sum over j of [coeffs.(p).(j) * srcs.(j)]. Rows with
    at most one nonzero coefficient are served by blit / zero-fill /
    single-table passes under every kernel; the dense remainder goes to
    the kernel's fused engine. This is the shape of erasure encode (all
    parity rows in one call per stripe) and of cached decode plans. *)

type rows

val make_rows : impl -> Field.t array array -> rows
(** Precompile a non-empty, non-ragged coefficient matrix.
    @raise Invalid_argument on a malformed matrix. *)

val rows_impl : rows -> impl
val rows_shape : rows -> int * int
(** [(r, k)] = (output rows, source columns). *)

val apply_rows : ?acc:bool -> rows -> srcs:Bytes.t array -> dsts:Bytes.t array -> unit
(** Apply the map. With [~acc:true] every row accumulates into the
    existing destination bytes instead of overwriting them. [srcs] and
    [dsts] must not alias each other (data slots of a stripe are never
    parity slots, so codec callers satisfy this for free).
    @raise Invalid_argument on arity or length mismatch. *)
