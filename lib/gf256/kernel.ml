(* Kernel dispatch for GF(2^8) slice arithmetic.

   Four interchangeable implementations of the same linear-map
   primitives, selected per codec at construction time:

   - [Scalar]: byte-at-a-time log/exp reference. Slow on purpose — it
     is the ground truth every other kernel is property-tested against
     and the honest "before" row in the microbenchmarks.
   - [Table]: the PR-1 kernels — one 256-entry product table per
     coefficient, applied 8 bytes per step ({!Field.mul_table_slice}).
   - [Split64]: SPLIT(8,4) tables expanded into 64-bit lookup lanes.
     For an r-row fused map each coefficient column gets a 256-entry
     table of 64-bit words whose byte lane p holds [c_p * s]; one
     lookup then feeds up to 8 output rows at once, and the interleaved
     accumulator is de-interleaved into the row buffers after the last
     source. r-fold fewer lookups than [Table] on multi-row maps.
   - [C_simd]: the same SPLIT(8,4) tables handed to C stubs that apply
     them 16/32 bytes per step with byte shuffles (SSSE3/AVX2 pshufb,
     NEON tbl). Only offered when the stubs report usable SIMD.

   All implementations share the trivial-row fast path: rows with at
   most one nonzero coefficient (identity rows of decode plans over
   surviving data blocks, replication rows) are served by blit /
   zero-fill / single-table passes and never enter the fused engines,
   so replicated and systematic-survivor workloads keep their
   wide-XOR/memcpy speed under every kernel.

   The module keeps one process-wide scratch buffer for the Split64
   interleaved accumulator; like the rest of the codec hot paths it is
   not safe for concurrent use from multiple domains. *)

module F = Field

type impl = Scalar | Table | Split64 | C_simd

let all = [ Scalar; Table; Split64; C_simd ]

let name = function
  | Scalar -> "scalar"
  | Table -> "table"
  | Split64 -> "split64"
  | C_simd -> "c_simd"

let of_name = function
  | "scalar" -> Scalar
  | "table" -> Table
  | "split64" -> Split64
  | "c_simd" -> C_simd
  | s -> invalid_arg (Printf.sprintf "Gf256.Kernel.of_name: unknown kernel %S" s)

(* ------------------------------------------------------------------ *)
(* C stubs                                                             *)
(* ------------------------------------------------------------------ *)

external stub_simd_level : unit -> int = "gf256_simd_level" [@@noalloc]

external c_mul_acc : Bytes.t -> Bytes.t -> Bytes.t -> int -> unit
  = "gf256_mul_acc_stub"
[@@noalloc]

external c_mul_set : Bytes.t -> Bytes.t -> Bytes.t -> int -> unit
  = "gf256_mul_set_stub"
[@@noalloc]

external c_rows_apply :
  Bytes.t -> Bytes.t array -> Bytes.t array -> int -> int -> int -> bool ->
  unit = "gf256_rows_apply_bytecode" "gf256_rows_apply_native"
[@@noalloc]

let simd_level = stub_simd_level ()

let available = function
  | Scalar | Table | Split64 -> true
  | C_simd -> simd_level > 0

let available_impls () = List.filter available all

let best_available () = if simd_level > 0 then C_simd else Split64

let env_var = "FAB_GF_KERNEL"

let default () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> best_available ()
  | Some s ->
      let impl =
        try of_name (String.lowercase_ascii s)
        with Invalid_argument _ ->
          invalid_arg
            (Printf.sprintf "%s=%S: unknown kernel (known: %s)" env_var s
               (String.concat " " (List.map name all)))
      in
      if available impl then impl
      else
        invalid_arg
          (Printf.sprintf "%s=%s: kernel unavailable on this machine" env_var
             (name impl))

(* Selection counters: how many codecs picked each implementation since
   process start. Surfaced through Metrics.Registry by the simulator
   CLI so --stats-json records which kernel served a run. *)
let selections = Array.make 4 0

let impl_index = function Scalar -> 0 | Table -> 1 | Split64 -> 2 | C_simd -> 3

let select ?impl () =
  let impl = match impl with Some i -> i | None -> default () in
  if not (available impl) then
    invalid_arg
      (Printf.sprintf "Gf256.Kernel.select: %s unavailable" (name impl));
  selections.(impl_index impl) <- selections.(impl_index impl) + 1;
  impl

let selection_counts () =
  List.map (fun i -> (name i, selections.(impl_index i))) all

(* ------------------------------------------------------------------ *)
(* Wide-word helpers                                                   *)
(* ------------------------------------------------------------------ *)

external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Process-wide scratch for the Split64 interleaved accumulator: 8
   bytes (one lane word) per source byte, grown on demand. *)
let scratch = ref Bytes.empty

let ensure_scratch len =
  let need = len lsl 3 in
  if Bytes.length !scratch < need then
    scratch := Bytes.create (max need 8192);
  !scratch

(* ------------------------------------------------------------------ *)
(* Scalar reference ops                                                *)
(* ------------------------------------------------------------------ *)

let scalar_mul_acc ~dst ~src c len =
  for i = 0 to len - 1 do
    let p = F.mul c (Char.code (Bytes.unsafe_get src i)) in
    Bytes.unsafe_set dst i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst i) lxor p))
  done

let scalar_mul_set ~dst ~src c len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr (F.mul c (Char.code (Bytes.unsafe_get src i))))
  done

(* ------------------------------------------------------------------ *)
(* Single-coefficient multipliers                                      *)
(* ------------------------------------------------------------------ *)

(* Both table layouts are precomputed at construction (and globally
   cached per coefficient in Field), so the hot calls never allocate —
   this also retires the last per-call [mul_table] lookups the old
   codec paid on every delta application. *)
type mul = { mimpl : impl; c : int; t256 : Bytes.t; t32 : Bytes.t }

let make_mul impl c =
  F.check_element c;
  { mimpl = impl; c; t256 = F.mul_table c; t32 = F.split_tables c }

let mul_coeff m = m.c

let check_pair name ~dst ~src =
  let len = Bytes.length src in
  if Bytes.length dst <> len then
    invalid_arg (Printf.sprintf "Gf256.Kernel.%s: length mismatch" name);
  len

let mul_acc m ~dst ~src =
  let len = check_pair "mul_acc" ~dst ~src in
  match m.mimpl with
  | _ when m.c = 0 -> ()
  | Scalar -> scalar_mul_acc ~dst ~src m.c len
  | _ when m.c = 1 -> F.mul_slice ~dst ~src 1
  | Table | Split64 -> F.mul_table_slice ~dst ~src m.t256
  | C_simd -> c_mul_acc dst src m.t32 len

let mul_set m ~dst ~src =
  let len = check_pair "mul_set" ~dst ~src in
  match m.mimpl with
  | _ when m.c = 0 -> Bytes.fill dst 0 len '\000'
  | Scalar -> scalar_mul_set ~dst ~src m.c len
  | _ when m.c = 1 -> Bytes.blit src 0 dst 0 len
  | Table | Split64 -> F.mul_table_slice_set ~dst ~src m.t256
  | C_simd -> c_mul_set dst src m.t32 len

(* Fold many (coefficient, source) products into one destination with
   as few destination passes as the implementation allows. Used for
   batched parity-delta application. *)
let mul_acc_multi muls ~dst ~srcs =
  let n = Array.length muls in
  if Array.length srcs <> n then
    invalid_arg "Gf256.Kernel.mul_acc_multi: arity mismatch";
  if n > 0 then begin
    let len = Bytes.length dst in
    Array.iter
      (fun s ->
        if Bytes.length s <> len then
          invalid_arg "Gf256.Kernel.mul_acc_multi: length mismatch")
      srcs;
    match muls.(0).mimpl with
    | Scalar | C_simd ->
        Array.iteri (fun i m -> mul_acc m ~dst ~src:srcs.(i)) muls
    | Table | Split64 ->
        (* XOR columns wide, general columns in acc4/acc2 chunks. *)
        let gen = ref [] in
        Array.iteri
          (fun i m ->
            if m.c = 1 then F.mul_slice ~dst ~src:srcs.(i) 1
            else if m.c > 1 then gen := (srcs.(i), m.t256) :: !gen)
          muls;
        let rec chunks = function
          | (s1, t1) :: (s2, t2) :: (s3, t3) :: (s4, t4) :: rest ->
              F.mul_table_slice_acc4 ~dst ~src1:s1 t1 ~src2:s2 t2 ~src3:s3 t3
                ~src4:s4 t4;
              chunks rest
          | (s1, t1) :: (s2, t2) :: rest ->
              F.mul_table_slice_acc2 ~dst ~src1:s1 t1 ~src2:s2 t2;
              chunks rest
          | [ (s, t) ] -> F.mul_table_slice ~dst ~src:s t
          | [] -> ()
        in
        chunks !gen
  end

(* ------------------------------------------------------------------ *)
(* Fused row-group application                                         *)
(* ------------------------------------------------------------------ *)

(* Trivial rows (at most one nonzero coefficient) bypass the fused
   engines entirely. *)
type trivial = T_zero | T_one of int (* column; coefficient 1 *) | T_mul of int * mul

(* A lane group: up to 8 dense output rows served by one set of
   lane-expanded tables. [rows] are indices into the caller's dst
   array; [tables.(j)] is the 256 x 8 B lane table of source column j. *)
type lane_group = { g_rows : int array; g_tables : Bytes.t array }

type dense =
  | D_none
  | D_rowtables of { d_rows : int array; d_tables : Bytes.t array array }
    (* Scalar (tables unused) and Table: one 256-table per (row, col). *)
  | D_multi of { d_row : int; d_muls : mul array; d_srcidx : int array }
    (* Split64 with a single dense row: multi-source acc2/acc4. *)
  | D_lanes of lane_group array
    (* Split64 with >= 2 dense rows: lane-fused groups. *)
  | D_c of { d_rows : int array; d_tables : Bytes.t }
    (* C_simd: r' * k * 32 B of SPLIT(8,4) tables, applied in C. *)

type rows = {
  impl : impl;
  r : int;
  k : int;
  coeffs : int array array;
  trivial : (int * trivial) array; (* (row, op) *)
  dense : dense;
}

let lane_table cols =
  (* cols.(lane) is the coefficient feeding that lane; entry [s] packs
     [cols.(lane) * s] into byte lane [lane] of a 64-bit word. Written
     and read in native byte order, so lane extraction by integer
     shifts is endian-agnostic. *)
  let t = Bytes.create 2048 in
  for s = 0 to 255 do
    let w = ref 0L in
    Array.iteri
      (fun lane c ->
        w :=
          Int64.logor !w
            (Int64.shift_left (Int64.of_int (F.mul c s)) (lane * 8)))
      cols;
    Bytes.set_int64_ne t (s * 8) !w
  done;
  t

let make_rows impl coeffs =
  let r = Array.length coeffs in
  if r = 0 then invalid_arg "Gf256.Kernel.make_rows: no rows";
  let k = Array.length coeffs.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Gf256.Kernel.make_rows: ragged coefficient matrix";
      Array.iter F.check_element row)
    coeffs;
  let trivial = ref [] and dense_rows = ref [] in
  Array.iteri
    (fun p row ->
      let nonzero = ref 0 and last = ref 0 in
      Array.iteri
        (fun j c -> if c <> 0 then begin incr nonzero; last := j end)
        row;
      match !nonzero with
      | 0 -> trivial := (p, T_zero) :: !trivial
      | 1 when row.(!last) = 1 -> trivial := (p, T_one !last) :: !trivial
      | 1 -> trivial := (p, T_mul (!last, make_mul impl row.(!last))) :: !trivial
      | _ -> dense_rows := p :: !dense_rows)
    coeffs;
  let trivial = Array.of_list (List.rev !trivial) in
  let dense_rows = Array.of_list (List.rev !dense_rows) in
  let dense =
    if Array.length dense_rows = 0 then D_none
    else
      match impl with
      | Scalar ->
          D_rowtables { d_rows = dense_rows; d_tables = [||] }
      | Table ->
          D_rowtables
            {
              d_rows = dense_rows;
              d_tables =
                Array.map
                  (fun p -> Array.map F.mul_table coeffs.(p))
                  dense_rows;
            }
      | Split64 ->
          if Array.length dense_rows = 1 then begin
            let p = dense_rows.(0) in
            let muls = ref [] and idxs = ref [] in
            Array.iteri
              (fun j c ->
                if c <> 0 then begin
                  muls := make_mul Split64 c :: !muls;
                  idxs := j :: !idxs
                end)
              coeffs.(p);
            D_multi
              {
                d_row = p;
                d_muls = Array.of_list (List.rev !muls);
                d_srcidx = Array.of_list (List.rev !idxs);
              }
          end
          else begin
            let ngroups = (Array.length dense_rows + 7) / 8 in
            D_lanes
              (Array.init ngroups (fun g ->
                   let lo = g * 8 in
                   let lanes = min 8 (Array.length dense_rows - lo) in
                   let g_rows = Array.sub dense_rows lo lanes in
                   let g_tables =
                     Array.init k (fun j ->
                         lane_table
                           (Array.map (fun p -> coeffs.(p).(j)) g_rows))
                   in
                   { g_rows; g_tables }))
          end
      | C_simd ->
          let r' = Array.length dense_rows in
          let tb = Bytes.create (r' * k * 32) in
          Array.iteri
            (fun p' p ->
              Array.iteri
                (fun j c ->
                  Bytes.blit (F.split_tables c) 0 tb (((p' * k) + j) * 32) 32)
                coeffs.(p))
            dense_rows;
          D_c { d_rows = dense_rows; d_tables = tb }
  in
  { impl; r; k; coeffs; trivial; dense }

let rows_impl t = t.impl
let rows_shape t = (t.r, t.k)

(* --- Split64 fused engine ------------------------------------------ *)

(* One pass per source: scratch word i accumulates the lane-expanded
   products of every source's byte i. Sources are read byte-wise (the
   per-byte index is needed for the lookup anyway, and byte reads keep
   the kernel endian-agnostic); tables and scratch move 8 bytes per
   step. *)
let split_acc_pass ~sc ~src ~tbl ~len ~first =
  if first then
    for i = 0 to len - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      unsafe_set_64 sc (i lsl 3) (unsafe_get_64 tbl (s lsl 3))
    done
  else
    for i = 0 to len - 1 do
      let s = Char.code (Bytes.unsafe_get src i) in
      let off = i lsl 3 in
      unsafe_set_64 sc off
        (Int64.logxor (unsafe_get_64 sc off) (unsafe_get_64 tbl (s lsl 3)))
    done

(* Lane extraction goes through two 32-bit halves so no byte is lost to
   OCaml's 63-bit int truncation. *)
let deinterleave_lane ~sc ~dst ~len ~lane ~acc =
  let shift = (lane land 3) * 8 in
  let hi_half = lane >= 4 in
  for i = 0 to len - 1 do
    let w = unsafe_get_64 sc (i lsl 3) in
    let half =
      if hi_half then Int64.to_int (Int64.shift_right_logical w 32)
      else Int64.to_int w land 0xffffffff
    in
    let v = (half lsr shift) land 0xff in
    let v =
      if acc then Char.code (Bytes.unsafe_get dst i) lxor v else v
    in
    Bytes.unsafe_set dst i (Char.unsafe_chr v)
  done

let apply_lane_group ~group ~srcs ~dsts ~len ~acc =
  let sc = ensure_scratch len in
  Array.iteri
    (fun j src ->
      split_acc_pass ~sc ~src ~tbl:group.g_tables.(j) ~len ~first:(j = 0))
    srcs;
  Array.iteri
    (fun lane p ->
      deinterleave_lane ~sc ~dst:dsts.(p) ~len ~lane ~acc)
    group.g_rows

(* --- Table / Scalar row loop --------------------------------------- *)

let apply_row_tables ~coeffs ~tables ~srcs ~dst ~len ~acc =
  (* The PR-1 per-row kernel: first contributing term overwrites unless
     accumulating, the rest fold in; c = 1 takes the wide-XOR path. *)
  let started = ref acc in
  Array.iteri
    (fun j c ->
      if c <> 0 then begin
        let src = srcs.(j) in
        (if not !started then
           if c = 1 then Bytes.blit src 0 dst 0 len
           else F.mul_table_slice_set ~dst ~src tables.(j)
         else if c = 1 then F.mul_slice ~dst ~src 1
         else F.mul_table_slice ~dst ~src tables.(j));
        started := true
      end)
    coeffs;
  if not !started then Bytes.fill dst 0 len '\000'

let apply_row_scalar ~coeffs ~srcs ~dst ~len ~acc =
  for i = 0 to len - 1 do
    let v = ref (if acc then Char.code (Bytes.unsafe_get dst i) else 0) in
    Array.iteri
      (fun j c ->
        if c <> 0 then
          v := !v lxor F.mul c (Char.code (Bytes.unsafe_get srcs.(j) i)))
      coeffs;
    Bytes.unsafe_set dst i (Char.unsafe_chr !v)
  done

(* --- Dispatch ------------------------------------------------------ *)

let apply_trivial t ~srcs ~dsts ~len ~acc =
  Array.iter
    (fun (p, op) ->
      let dst = dsts.(p) in
      match op with
      | T_zero -> if not acc then Bytes.fill dst 0 len '\000'
      | T_one j ->
          if acc then F.mul_slice ~dst ~src:srcs.(j) 1
          else if dst != srcs.(j) then Bytes.blit srcs.(j) 0 dst 0 len
      | T_mul (j, m) ->
          if acc then mul_acc m ~dst ~src:srcs.(j)
          else mul_set m ~dst ~src:srcs.(j))
    t.trivial

let apply_rows ?(acc = false) t ~srcs ~dsts =
  if Array.length srcs <> t.k then
    invalid_arg "Gf256.Kernel.apply_rows: expected k sources";
  if Array.length dsts <> t.r then
    invalid_arg "Gf256.Kernel.apply_rows: expected r destinations";
  let len = if t.k > 0 then Bytes.length srcs.(0) else 0 in
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Gf256.Kernel.apply_rows: source length mismatch")
    srcs;
  Array.iter
    (fun b ->
      if Bytes.length b <> len then
        invalid_arg "Gf256.Kernel.apply_rows: destination length mismatch")
    dsts;
  apply_trivial t ~srcs ~dsts ~len ~acc;
  match t.dense with
  | D_none -> ()
  | D_rowtables { d_rows; d_tables } ->
      Array.iteri
        (fun i p ->
          match t.impl with
          | Scalar ->
              apply_row_scalar ~coeffs:t.coeffs.(p) ~srcs ~dst:dsts.(p) ~len
                ~acc
          | _ ->
              apply_row_tables ~coeffs:t.coeffs.(p) ~tables:d_tables.(i) ~srcs
                ~dst:dsts.(p) ~len ~acc)
        d_rows
  | D_multi { d_row; d_muls; d_srcidx } ->
      let dst = dsts.(d_row) in
      if not acc then begin
        (* Initialize from the first term, accumulate the rest. *)
        let m0 = d_muls.(0) in
        mul_set m0 ~dst ~src:srcs.(d_srcidx.(0));
        mul_acc_multi
          (Array.sub d_muls 1 (Array.length d_muls - 1))
          ~dst
          ~srcs:
            (Array.init
               (Array.length d_muls - 1)
               (fun i -> srcs.(d_srcidx.(i + 1))))
      end
      else
        mul_acc_multi d_muls ~dst
          ~srcs:(Array.map (fun j -> srcs.(j)) d_srcidx)
  | D_lanes groups ->
      Array.iter
        (fun group -> apply_lane_group ~group ~srcs ~dsts ~len ~acc)
        groups
  | D_c { d_rows; d_tables } ->
      let dense_dsts = Array.map (fun p -> dsts.(p)) d_rows in
      c_rows_apply d_tables srcs dense_dsts t.k (Array.length d_rows) len acc
