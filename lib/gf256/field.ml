(* GF(2^8) arithmetic with the primitive polynomial 0x11d.

   The tables are built once at module initialization: [exp.(i)] holds
   2^i for i in [0, 509] (doubled so that [exp.(log a + log b)] needs no
   modular reduction), and [log.(a)] holds the discrete log of [a] for
   a in [1, 255]. *)

type t = int

let zero = 0
let one = 1

let field_size = 256
let primitive_poly = 0x11d

let exp = Array.make (2 * (field_size - 1)) 0
let log = Array.make field_size 0

let () =
  let x = ref 1 in
  for i = 0 to field_size - 2 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor primitive_poly
  done;
  for i = field_size - 1 to (2 * (field_size - 1)) - 1 do
    exp.(i) <- exp.(i - (field_size - 1))
  done

let check_element a =
  if a < 0 || a > 255 then
    invalid_arg (Printf.sprintf "Gf256.Field: element %d out of range" a)

let add a b = a lxor b
let sub = add

let mul a b =
  check_element a;
  check_element b;
  if a = 0 || b = 0 then 0 else exp.(log.(a) + log.(b))

let inv a =
  check_element a;
  if a = 0 then raise Division_by_zero else exp.(field_size - 1 - log.(a))

let div a b =
  check_element a;
  check_element b;
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp.(log.(a) + (field_size - 1) - log.(b))

let pow a k =
  if k < 0 then invalid_arg "Gf256.Field.pow: negative exponent";
  if k = 0 then 1
  else if a = 0 then 0
  else exp.(log.(a) * k mod (field_size - 1))

let exp_table i =
  if i < 0 then invalid_arg "Gf256.Field.exp_table: negative index";
  exp.(i mod (field_size - 1))

let log_table a =
  if a = 0 then invalid_arg "Gf256.Field.log_table: log of zero";
  log.(a)

(* ------------------------------------------------------------------ *)
(* Slice kernels                                                       *)
(* ------------------------------------------------------------------ *)

(* The slice operations are the inner loop of every encode, decode and
   parity update, so they are engineered like kernels:

   - c = 0 and c = 1 are special-cased (both are common in systematic
     generator matrices). The c = 1 case — plain XOR accumulation — runs
     8 bytes at a time over 64-bit words with a scalar tail.
   - general coefficients use a per-coefficient 256-entry product table
     (built lazily, cached for the process lifetime: at most 256 tables
     of 256 bytes = 64 KiB), giving one unsafe table lookup per byte with
     no branch instead of a zero test plus two log/exp lookups. *)

external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* dst.(i) <- dst.(i) xor src.(i), 64 bits at a time. Caller has checked
   that both buffers have length [len]. *)
let xor_slice_unchecked ~dst ~src len =
  let words = len lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    unsafe_set_64 dst off
      (Int64.logxor (unsafe_get_64 dst off) (unsafe_get_64 src off))
  done;
  for i = words lsl 3 to len - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
         lxor Char.code (Bytes.unsafe_get src i)))
  done

let mul_tables : Bytes.t option array = Array.make field_size None

let mul_table c =
  check_element c;
  match mul_tables.(c) with
  | Some t -> t
  | None ->
      let t =
        Bytes.init field_size (fun s ->
            Char.unsafe_chr
              (if c = 0 || s = 0 then 0 else exp.(log.(c) + log.(s))))
      in
      mul_tables.(c) <- Some t;
      t

let check_slice name ~dst ~src =
  let len = Bytes.length src in
  if Bytes.length dst <> len then
    invalid_arg (Printf.sprintf "Gf256.Field.%s: length mismatch" name);
  len

let check_table name table =
  if Bytes.length table <> field_size then
    invalid_arg (Printf.sprintf "Gf256.Field.%s: not a 256-entry table" name)

(* The table kernels also run 8 bytes per iteration: one wide source
   load, eight table lookups reassembled into a word, one wide
   xor-and-store. The int64 intermediates stay unboxed (cmmgen's let
   unboxing); lookups and reassembly are 63-bit int arithmetic. Bytes
   are extracted and reinserted at the same positions, so the kernel is
   endian-agnostic. *)

let[@inline] tbl table i = Char.code (Bytes.unsafe_get table i)

let[@inline] lookup_word table s =
  let lo = Int64.to_int s land 0xffffffff in
  let hi = Int64.to_int (Int64.shift_right_logical s 32) land 0xffffffff in
  let out_lo =
    tbl table (lo land 0xff)
    lor (tbl table ((lo lsr 8) land 0xff) lsl 8)
    lor (tbl table ((lo lsr 16) land 0xff) lsl 16)
    lor (tbl table (lo lsr 24) lsl 24)
  in
  let out_hi =
    tbl table (hi land 0xff)
    lor (tbl table ((hi lsr 8) land 0xff) lsl 8)
    lor (tbl table ((hi lsr 16) land 0xff) lsl 16)
    lor (tbl table (hi lsr 24) lsl 24)
  in
  Int64.logor (Int64.of_int out_lo) (Int64.shift_left (Int64.of_int out_hi) 32)

let mul_table_slice_unchecked ~dst ~src table len =
  let words = len lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    unsafe_set_64 dst off
      (Int64.logxor (unsafe_get_64 dst off)
         (lookup_word table (unsafe_get_64 src off)))
  done;
  for i = words lsl 3 to len - 1 do
    let s = Char.code (Bytes.unsafe_get src i) in
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
         lxor Char.code (Bytes.unsafe_get table s)))
  done

let mul_table_slice_set_unchecked ~dst ~src table len =
  let words = len lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    unsafe_set_64 dst off (lookup_word table (unsafe_get_64 src off))
  done;
  for i = words lsl 3 to len - 1 do
    let s = Char.code (Bytes.unsafe_get src i) in
    Bytes.unsafe_set dst i (Bytes.unsafe_get table s)
  done

(* Multi-source accumulate: one read-modify-write pass over [dst] folds
   in two (or four) table-mapped sources, halving (quartering) the dst
   memory traffic compared to chaining single-source kernels. These are
   the "acc2/acc4" building blocks of the fused codec kernels. *)

let mul_table_slice_acc2_unchecked ~dst ~src1 t1 ~src2 t2 len =
  let words = len lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    unsafe_set_64 dst off
      (Int64.logxor (unsafe_get_64 dst off)
         (Int64.logxor
            (lookup_word t1 (unsafe_get_64 src1 off))
            (lookup_word t2 (unsafe_get_64 src2 off))))
  done;
  for i = words lsl 3 to len - 1 do
    let s1 = Char.code (Bytes.unsafe_get src1 i) in
    let s2 = Char.code (Bytes.unsafe_get src2 i) in
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
         lxor Char.code (Bytes.unsafe_get t1 s1)
         lxor Char.code (Bytes.unsafe_get t2 s2)))
  done

let mul_table_slice_acc4_unchecked ~dst ~src1 t1 ~src2 t2 ~src3 t3 ~src4 t4 len
    =
  let words = len lsr 3 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    let a =
      Int64.logxor
        (lookup_word t1 (unsafe_get_64 src1 off))
        (lookup_word t2 (unsafe_get_64 src2 off))
    in
    let b =
      Int64.logxor
        (lookup_word t3 (unsafe_get_64 src3 off))
        (lookup_word t4 (unsafe_get_64 src4 off))
    in
    unsafe_set_64 dst off
      (Int64.logxor (unsafe_get_64 dst off) (Int64.logxor a b))
  done;
  for i = words lsl 3 to len - 1 do
    let s1 = Char.code (Bytes.unsafe_get src1 i) in
    let s2 = Char.code (Bytes.unsafe_get src2 i) in
    let s3 = Char.code (Bytes.unsafe_get src3 i) in
    let s4 = Char.code (Bytes.unsafe_get src4 i) in
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
         lxor Char.code (Bytes.unsafe_get t1 s1)
         lxor Char.code (Bytes.unsafe_get t2 s2)
         lxor Char.code (Bytes.unsafe_get t3 s3)
         lxor Char.code (Bytes.unsafe_get t4 s4)))
  done

let mul_table_slice_acc2 ~dst ~src1 t1 ~src2 t2 =
  let len = check_slice "mul_table_slice_acc2" ~dst ~src:src1 in
  if Bytes.length src2 <> len then
    invalid_arg "Gf256.Field.mul_table_slice_acc2: length mismatch";
  check_table "mul_table_slice_acc2" t1;
  check_table "mul_table_slice_acc2" t2;
  mul_table_slice_acc2_unchecked ~dst ~src1 t1 ~src2 t2 len

let mul_table_slice_acc4 ~dst ~src1 t1 ~src2 t2 ~src3 t3 ~src4 t4 =
  let len = check_slice "mul_table_slice_acc4" ~dst ~src:src1 in
  if
    Bytes.length src2 <> len || Bytes.length src3 <> len
    || Bytes.length src4 <> len
  then invalid_arg "Gf256.Field.mul_table_slice_acc4: length mismatch";
  check_table "mul_table_slice_acc4" t1;
  check_table "mul_table_slice_acc4" t2;
  check_table "mul_table_slice_acc4" t3;
  check_table "mul_table_slice_acc4" t4;
  mul_table_slice_acc4_unchecked ~dst ~src1 t1 ~src2 t2 ~src3 t3 ~src4 t4 len

(* ------------------------------------------------------------------ *)
(* SPLIT(8,4) nibble tables                                            *)
(* ------------------------------------------------------------------ *)

(* For a coefficient c the product c * s splits over the nibbles of s:
   c * s = c * (s_hi << 4) + c * s_lo, so two 16-entry tables — one for
   each nibble — reproduce the full 256-entry product table in 32 bytes.
   This is the table layout consumed by byte-shuffle SIMD (SSSE3
   [pshufb], NEON [tbl]) and by the 64-bit lane-expanded kernels in
   {!Gf256.Kernel}. Layout: bytes 0..15 are c * v, bytes 16..31 are
   c * (v << 4). Cached per coefficient (256 * 32 B = 8 KiB total). *)

let split_tables_cache : Bytes.t option array = Array.make field_size None

let split_tables c =
  check_element c;
  match split_tables_cache.(c) with
  | Some t -> t
  | None ->
      let mul_c s = if c = 0 || s = 0 then 0 else exp.(log.(c) + log.(s)) in
      let t =
        Bytes.init 32 (fun i ->
            Char.unsafe_chr
              (if i < 16 then mul_c i else mul_c ((i - 16) lsl 4)))
      in
      split_tables_cache.(c) <- Some t;
      t

let mul_table_slice ~dst ~src table =
  let len = check_slice "mul_table_slice" ~dst ~src in
  check_table "mul_table_slice" table;
  mul_table_slice_unchecked ~dst ~src table len

let mul_table_slice_set ~dst ~src table =
  let len = check_slice "mul_table_slice_set" ~dst ~src in
  check_table "mul_table_slice_set" table;
  mul_table_slice_set_unchecked ~dst ~src table len

let mul_slice ~dst ~src c =
  let len = check_slice "mul_slice" ~dst ~src in
  if c = 0 then ()
  else if c = 1 then xor_slice_unchecked ~dst ~src len
  else mul_table_slice_unchecked ~dst ~src (mul_table c) len

let mul_slice_set ~dst ~src c =
  let len = check_slice "mul_slice_set" ~dst ~src in
  if c = 0 then Bytes.fill dst 0 len '\000'
  else if c = 1 then Bytes.blit src 0 dst 0 len
  else mul_table_slice_set_unchecked ~dst ~src (mul_table c) len
