(** Human-readable protocol tracing, as an {!Obs} sink over [Logs].

    The structured observability layer ({!Obs}) is the single source of
    protocol events; this module renders them one per line on the
    [fab.core] log source:

    {v
    fab.core: [debug] 12.0 c8 op=3 span-start write-stripe s=0
    fab.core: [debug] 12.0 c8 op=3 order phase-start
    fab.core: [debug] 12.0 b1 op=3 order send order -> b1 0B
    ...
    v}

    The log source starts at level [None], so an attached but silenced
    sink costs one level check per event. Enable with {!enable_stderr}
    — or install any [Logs] reporter and set the {!src} level. The CLI
    exposes this as [fab_sim workload --trace]. *)

val src : Logs.src

val enable_stderr : ?level:Logs.level -> unit -> unit
(** Install a stderr reporter (if none is installed yet) and set the
    trace source to [level] (default [Debug]). *)

val sink : unit -> Obs.Sink.t
(** A sink rendering every event through {!Obs.pp_event} at debug
    level; attach it to the deployment's hub to watch the protocol
    run. *)
