type source =
  | Logical
  | Realtime of {
      engine : Dessim.Engine.t;
      mutable skew : float;
      resolution : float;
    }

type t = { pid : int; source : source; mutable last : int }

let logical ~pid = { pid; source = Logical; last = 0 }

let realtime engine ~pid ~skew ~resolution =
  if resolution <= 0. then
    invalid_arg "Core.Clock.realtime: resolution <= 0";
  { pid; source = Realtime { engine; skew; resolution }; last = 0 }

let new_ts t =
  let time =
    match t.source with
    | Logical -> t.last + 1
    | Realtime { engine; skew; resolution } ->
        let wall =
          int_of_float (Float.max 0. (Dessim.Engine.now engine +. skew)
                        /. resolution)
        in
        (* Enforce per-process monotonicity even if the quantized wall
           clock has not ticked since the last call. *)
        Stdlib.max wall (t.last + 1)
  in
  t.last <- time;
  Timestamp.make ~time ~pid:t.pid

let observe t ts =
  match (t.source, ts) with
  | Logical, Timestamp.Ts { time; _ } -> t.last <- Stdlib.max t.last time
  | Logical, _ | Realtime _, _ -> ()

let pid t = t.pid

let set_skew t skew =
  match t.source with
  | Logical -> ()
  | Realtime r -> r.skew <- skew

let skew t = match t.source with Logical -> 0. | Realtime r -> r.skew
