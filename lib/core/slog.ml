module TsMap = Map.Make (struct
  type t = Timestamp.t

  let compare = Timestamp.compare
end)

(* Each persisted pair carries the checksum computed when it was
   written. A stored entry whose checksum no longer matches its
   content models a detectably-damaged record — a torn write or a
   latent sector error — and every read path below treats it as
   absent, so the protocol's recovery and scrub paths repair it like
   a missing version. *)
type entry = { block : Bytes.t option; mutable sum : int }

type t = {
  block_size : int;
  nil : Bytes.t;
  mutable entries : entry TsMap.t;
  mutable last_add : Timestamp.t option;
      (* Most recent [add], volatile (not part of persistent state):
         the write a crash can tear. *)
}

(* FNV-1a folded into OCaml's 63-bit int; a bot marker hashes to a
   fixed tag so torn marker records are detectable too. *)
let checksum = function
  | None -> 0x1ae16a3b2f90404f
  | Some b ->
      let h = ref 0x3bf29ce484222325 in
      Bytes.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) b;
      !h land max_int

let intact e = e.sum = checksum e.block
let fresh block = { block; sum = checksum block }

let create ~block_size =
  if block_size <= 0 then invalid_arg "Core.Slog.create: block_size <= 0";
  let nil = Bytes.make block_size '\000' in
  {
    block_size;
    nil;
    entries = TsMap.singleton Timestamp.low (fresh (Some nil));
    last_add = None;
  }

let block_size t = t.block_size

let add t ts block =
  (match ts with
  | Timestamp.Low | Timestamp.High ->
      invalid_arg "Core.Slog.add: sentinel timestamp"
  | Timestamp.Ts _ -> ());
  (match block with
  | Some b when Bytes.length b <> t.block_size ->
      invalid_arg "Core.Slog.add: wrong block size"
  | Some _ | None -> ());
  (* Set semantics over intact entries; a damaged record at the same
     timestamp is overwritten (this is how recovery and scrub repair
     detected corruption in place). [last_add] only moves when a write
     physically happens: a deduped retransmission touches no media, so
     there is nothing for a crash to tear. *)
  match TsMap.find_opt ts t.entries with
  | Some e when intact e -> ()
  | Some _ | None ->
      t.entries <- TsMap.add ts (fresh block) t.entries;
      t.last_add <- Some ts

let find t ts =
  match TsMap.find_opt ts t.entries with
  | Some e when intact e -> Some e.block
  | Some _ | None -> None

let mem t ts = find t ts <> None

let max_ts t =
  let best =
    TsMap.fold
      (fun ts e acc -> if intact e then Some ts else acc)
      t.entries None
  in
  match best with Some ts -> ts | None -> Timestamp.low

let newest_real_below_or_at t bound =
  (* Newest intact non-bot entry with timestamp <= bound. *)
  TsMap.fold
    (fun ts e acc ->
      if Timestamp.( > ) ts bound then acc
      else
        match e.block with
        | Some b when intact e -> Some (ts, b)
        | Some _ | None -> acc)
    t.entries None

let max_block t =
  match newest_real_below_or_at t (max_ts t) with
  | Some (ts, b) -> (ts, b)
  | None ->
      (* Every intact real entry was damaged: the log is detectably
         empty, which reads identically to an unwritten register. The
         quorum repairs this brick as long as at most f members are in
         this state. *)
      (Timestamp.low, t.nil)

let max_below t bound =
  let lts =
    TsMap.fold
      (fun ts e acc ->
        if Timestamp.( >= ) ts bound then acc
        else if intact e then Some ts
        else acc)
      t.entries None
  in
  match lts with
  | None -> None
  | Some lts ->
      let content =
        match newest_real_below_or_at t lts with
        | Some (_, b) -> Some b
        | None -> None
      in
      (match TsMap.find_opt lts t.entries with
      | Some ({ block = Some b; _ } as e) when intact e -> Some (lts, Some b)
      | _ -> Some (lts, content))

let gc t ~before =
  let newest = max_ts t in
  let newest_real = fst (max_block t) in
  let keep ts _ =
    Timestamp.( >= ) ts before
    || Timestamp.equal ts newest
    || Timestamp.equal ts newest_real
  in
  let kept = TsMap.filter keep t.entries in
  let removed = TsMap.cardinal t.entries - TsMap.cardinal kept in
  t.entries <- kept;
  removed

let size t = TsMap.cardinal t.entries

let entries t =
  TsMap.fold (fun ts e acc -> (ts, e.block) :: acc) t.entries []

let checksum_errors t =
  TsMap.fold (fun _ e acc -> if intact e then acc else acc + 1) t.entries 0

let corrupt_newest t =
  let ts, block = max_block t in
  let copy = Bytes.copy block in
  Bytes.set copy 0 (Char.chr (Char.code (Bytes.get copy 0) lxor 0x40));
  (* The checksum is recomputed over the flipped content: this models
     corruption below the checksum's radar (bad RAM at write time,
     firmware writing the wrong bits with a valid CRC). Only scrub's
     cross-brick decode can catch it. *)
  t.entries <- TsMap.add ts (fresh (Some copy)) t.entries

let damage_newest t =
  match
    TsMap.fold
      (fun ts e acc ->
        match e.block with
        | Some _ when intact e -> Some (ts, e)
        | Some _ | None -> acc)
      t.entries None
  with
  | None -> None
  | Some (ts, e) ->
      e.sum <- e.sum lxor 1;
      Some ts

let tear_last t =
  match t.last_add with
  | None -> None
  | Some ts ->
      t.last_add <- None;
      (match TsMap.find_opt ts t.entries with
      | Some e when intact e ->
          e.sum <- e.sum lxor 1;
          Some ts
      | Some _ | None -> None)
