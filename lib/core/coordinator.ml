module Ts = Timestamp

(* One stripe's timestamp-cache entry: the newest timestamp this
   coordinator committed to the stripe with a full quorum, plus the
   stripe's decoded content at that version when known ([None] after a
   block write whose basis version was not cached). See DESIGN 4d. *)
type cache_entry = { cts : Ts.t; cblocks : Bytes.t array option }

type t = {
  cfg : Config.t;
  brick : Brick.t;
  clock : Clock.t;
  mutable retry_hint : bool;
  ts_cache : (int, cache_entry) Hashtbl.t;  (* stripe -> entry *)
}

type 'a outcome = ('a, [ `Aborted | `Unavailable ]) result

(* Bound the cache so a coordinator sweeping a huge volume cannot
   retain every stripe's blocks; flushing everything on overflow is
   crude but keeps the common sequential-locality case warm. *)
let cache_capacity = 1024

let create cfg ~brick ~clock =
  let t = { cfg; brick; clock; retry_hint = false; ts_cache = Hashtbl.create 16 }
  in
  (* A crashed coordinator loses its cache: after recovery it must not
     elide order rounds based on pre-crash commits. Brick.crash clears
     the hook table before running hooks, so the hook re-registers
     itself to stay armed across repeated crash/recover cycles. *)
  let rec hook () =
    Hashtbl.reset t.ts_cache;
    ignore (Brick.add_crash_hook brick hook)
  in
  ignore (Brick.add_crash_hook brick hook);
  t

(* The order round may only be elided on stripes where a partial
   unordered write is guaranteed visible to every later quorum that
   could roll it back or miss it: with m > f, any m blocks of a
   version reach every quorum's intersection, so the write is either
   rolled forward or permanently shadowed — never resurrected after a
   read returned the old value (the strict-linearizability trap of
   Figure 5). Geometries with m <= f (e.g. 1-of-3 replication) keep
   the 2-round path unconditionally. *)
let elision_on t ~stripe =
  t.cfg.Config.ts_cache
  && Config.m t.cfg ~stripe > Config.fault_bound t.cfg ~stripe

let cache_find t ~stripe =
  if elision_on t ~stripe then Hashtbl.find_opt t.ts_cache stripe else None

let cache_invalidate t ~stripe = Hashtbl.remove t.ts_cache stripe

let cache_put t ~stripe entry =
  if elision_on t ~stripe then begin
    if
      Hashtbl.length t.ts_cache >= cache_capacity
      && not (Hashtbl.mem t.ts_cache stripe)
    then Hashtbl.reset t.ts_cache;
    Hashtbl.replace t.ts_cache stripe entry
  end

(* Any reply showing a timestamp above the cached one — other than the
   round's own proposal, which timestamp uniqueness (time, pid) makes
   unmistakable — is foreign activity on the stripe (another
   coordinator ordered or wrote): the entry no longer describes the
   newest version, so the next write must pay the order round again. *)
let reply_cur_ts = function
  | Message.Read_r { cur_ts; _ }
  | Message.Order_r { cur_ts; _ }
  | Message.Order_read_r { cur_ts; _ }
  | Message.Write_r { cur_ts; _ }
  | Message.Modify_r { cur_ts; _ } ->
      Some cur_ts
  | _ -> None

let cache_observe t ~stripe ~proposed replies =
  if Hashtbl.length t.ts_cache > 0 then
    match Hashtbl.find_opt t.ts_cache stripe with
    | None -> ()
    | Some e ->
        if
          List.exists
            (fun (_, r) ->
              match reply_cur_ts r with
              | Some cur -> Ts.( > ) cur e.cts && not (Ts.equal cur proposed)
              | None -> false)
            replies
        then cache_invalidate t ~stripe

(* True when some reply saw a timestamp above our own proposal [ts]:
   a concurrent coordinator is past us already, so a commit at [ts]
   must not warm the cache. *)
let foreign_above replies ts =
  List.exists
    (fun (_, r) ->
      match reply_cur_ts r with
      | Some cur -> Ts.( > ) cur ts
      | None -> false)
    replies

let hint_retry t = t.retry_hint <- true

let emit_span t ~op kind =
  Obs.emit t.cfg.Config.obs
    {
      Obs.time = Runtime.now t.cfg.Config.runtime;
      actor = Obs.Coord (Brick.id t.brick);
      op;
      phase = None;
      kind;
    }

(* Wrap an operation with an observability span. The op id is threaded
   into every quorum round so replica- and network-side events are
   attributed to it. The retry hint is consumed here, synchronously at
   entry (no suspension point in between), so an abort whose caller
   will retry it is reported as [Retry] rather than [Abort].

   The operation's absolute deadline is computed here — config.deadline
   sim-time units from the span opening — and threaded through every
   quorum round; a round that overruns it raises
   [Quorum.Rpc.Unavailable], which surfaces as the [`Unavailable]
   outcome. The timestamp cache is invalidated on the way out: a
   deadline expiry leaves the rounds' effects unknown, so the next
   write must pay the order round. *)
let traced t ~stripe name f =
  let obs = t.cfg.Config.obs in
  let op = Obs.next_op obs in
  let dl =
    match t.cfg.Config.deadline with
    | None -> None
    | Some d -> Some (Runtime.now t.cfg.Config.runtime +. d)
  in
  let will_retry = t.retry_hint in
  t.retry_hint <- false;
  let run () =
    try f op dl
    with Quorum.Rpc.Unavailable ->
      cache_invalidate t ~stripe;
      Error `Unavailable
  in
  if not (Obs.enabled obs) then run ()
  else begin
    emit_span t ~op (Obs.Span_start { op_kind = name; stripe });
    let result = run () in
    let outcome =
      match result with
      | Ok _ -> Obs.Ok
      | Error `Unavailable -> Obs.Unavailable
      | Error `Aborted -> if will_retry then Obs.Retry else Obs.Abort
    in
    emit_span t ~op (Obs.Span_end { op_kind = name; stripe; outcome });
    result
  end

let brick t = t.brick
let clock t = t.clock

(* Fold every reply's cur_ts into the coordinator's clock so that a
   retry after an abort proposes a fresh-enough timestamp. *)
let observe_replies t replies =
  List.iter
    (fun (_, reply) ->
      match reply with
      | Message.Read_r { cur_ts; _ }
      | Message.Order_r { cur_ts; _ }
      | Message.Order_read_r { cur_ts; _ }
      | Message.Write_r { cur_ts; _ }
      | Message.Modify_r { cur_ts; _ } ->
          Clock.observe t.clock cur_ts
      | _ -> ())
    replies

let emit_phase t ~op ~phase kind =
  Obs.emit t.cfg.Config.obs
    {
      Obs.time = Runtime.now t.cfg.Config.runtime;
      actor = Obs.Coord (Brick.id t.brick);
      op;
      phase = Some phase;
      kind;
    }

(* One quorum round = one protocol phase of the operation's span.
   [proposed] is the round's own timestamp when it carries one, so the
   timestamp cache does not mistake it for foreign activity. *)
let quorum_call ?until ?(proposed = Ts.low) t ~stripe ~op ~dl ~phase make_req =
  let members = Config.members t.cfg ~stripe in
  let observing = Obs.enabled t.cfg.Config.obs in
  if observing then emit_phase t ~op ~phase Obs.Phase_start;
  let replies =
    try
      Quorum.Rpc.call t.cfg.Config.rpc ~coord:t.brick ~members
        ~quorum:(Config.quorum_size t.cfg ~stripe) ?until
        ~ctx:(Obs.ctx ~phase op) ?deadline:dl make_req
    with Quorum.Rpc.Unavailable as e ->
      (* Close the phase span before the deadline expiry unwinds the
         operation, so traces stay well-formed. *)
      if observing then emit_phase t ~op ~phase Obs.Phase_end;
      raise e
  in
  if observing then emit_phase t ~op ~phase Obs.Phase_end;
  observe_replies t replies;
  cache_observe t ~stripe ~proposed replies;
  replies

(* Mark a protocol phase the operation proved it could skip (the warm
   write paths below); `fab_sim explain` counts these per op kind. *)
let emit_elided t ~op phase =
  if Obs.enabled t.cfg.Config.obs then emit_phase t ~op ~phase Obs.Phase_elided

let notify_gc t ~stripe ~op ts =
  if t.cfg.Config.gc_enabled then
    Quorum.Rpc.notify t.cfg.Config.rpc ~coord:t.brick
      ~members:(Config.members t.cfg ~stripe)
      ~ctx:(Obs.ctx ~phase:Obs.Gc op)
      (Message.Gc { stripe; before = ts })

(* Pick m distinct random members as read targets. *)
let pick_targets t ~stripe =
  let members = Array.copy (Config.members_array t.cfg ~stripe) in
  let rng = Runtime.rng t.cfg.Config.runtime in
  let n = Array.length members in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = members.(i) in
    members.(i) <- members.(j);
    members.(j) <- tmp
  done;
  Array.to_list (Array.sub members 0 (Config.m t.cfg ~stripe))

let pos_of t ~stripe addr =
  match Config.pos_of_addr t.cfg ~stripe addr with
  | Some pos -> pos
  | None -> invalid_arg "Core.Coordinator: reply from non-member"

(* Check the fast-read success conditions shared by read-stripe and
   read-block: all statuses true and a single version visible. *)
let unanimous_version replies =
  let statuses_ok =
    List.for_all
      (fun (_, r) ->
        match r with Message.Read_r { status; _ } -> status | _ -> false)
      replies
  in
  if not statuses_ok then None
  else
    match replies with
    | (_, Message.Read_r { val_ts; _ }) :: _
      when List.for_all
             (fun (_, r) ->
               match r with
               | Message.Read_r { val_ts = ts'; _ } -> Ts.equal ts' val_ts
               | _ -> false)
             replies ->
        Some val_ts
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Algorithm 1: stripe access                                          *)
(* ------------------------------------------------------------------ *)

(* fast-read-stripe (lines 5-11): one round, no state modified. *)
let fast_read_stripe t ~stripe ~op ~dl =
  let targets = pick_targets t ~stripe in
  let until replies =
    List.for_all (fun a -> List.mem_assoc a replies) targets
  in
  let replies =
    quorum_call ~until t ~stripe ~op ~dl ~phase:Obs.Fast_read (fun _ ->
        Message.Read { stripe; targets })
  in
  match unanimous_version replies with
  | None -> None
  | Some _ ->
      let blocks =
        List.filter_map
          (fun (src, r) ->
            match r with
            | Message.Read_r { block = Some b; _ } ->
                Some (pos_of t ~stripe src, b)
            | _ -> None)
          replies
      in
      if List.length blocks >= Config.m t.cfg ~stripe then
        Some
          (Erasure.Codec.decode
             (Config.codec t.cfg ~stripe)
             (List.filteri (fun i _ -> i < Config.m t.cfg ~stripe) blocks))
      else None

let all_status_true replies =
  List.for_all
    (fun (_, r) ->
      match r with
      | Message.Order_r { status; _ }
      | Message.Order_read_r { status; _ }
      | Message.Write_r { status; _ }
      | Message.Modify_r { status; _ } ->
          status
      | _ -> false)
    replies

(* store-stripe (lines 34-37): each member receives only its own
   encoded block. Data blocks are shipped by reference (the same
   convention the fast write path uses for the caller's block): callers
   hand ownership of [data] to the store. Parity blocks are freshly
   allocated per operation because replica logs retain what they are
   sent; only the m data-block copies of the old encode are saved. *)
let store_stripe t ~stripe ~op ~dl data ts =
  let codec = Config.codec t.cfg ~stripe in
  let cm = Erasure.Codec.m codec and cn = Erasure.Codec.n codec in
  let len = Bytes.length data.(0) in
  let enc =
    Array.init cn (fun i -> if i < cm then data.(i) else Bytes.create len)
  in
  Erasure.Codec.encode_into codec data ~into:enc;
  let replies =
    quorum_call ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Write (fun dst ->
        Message.Write { stripe; block = enc.(pos_of t ~stripe dst); ts })
  in
  if all_status_true replies then begin
    notify_gc t ~stripe ~op ts;
    (* A full-quorum commit with the whole stripe content in hand warms
       the cache — unless some member already saw a higher (foreign)
       timestamp, in which case the entry would be born stale. *)
    if foreign_above replies ts then cache_invalidate t ~stripe
    else cache_put t ~stripe { cts = ts; cblocks = Some (Array.copy data) };
    Ok ()
  end
  else begin
    cache_invalidate t ~stripe;
    Error `Aborted
  end

(* read-prev-stripe (lines 24-33): walk versions newest-first until one
   has at least m surviving blocks. *)
let read_prev_stripe t ~stripe ~op ~dl ts =
  let rec loop max =
    let replies =
      quorum_call ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Recover (fun _ ->
          Message.Order_read { stripe; target = Message.All; max; ts })
    in
    if not (all_status_true replies) then Error `Aborted
    else begin
      let infos =
        List.filter_map
          (fun (src, r) ->
            match r with
            | Message.Order_read_r { lts; block; _ } ->
                Some (src, lts, block)
            | _ -> None)
          replies
      in
      let max' =
        List.fold_left (fun acc (_, lts, _) -> Ts.max acc lts) Ts.low infos
      in
      let blocks =
        List.filter_map
          (fun (src, lts, block) ->
            match block with
            | Some b when Ts.equal lts max' -> Some (pos_of t ~stripe src, b)
            | _ -> None)
          infos
      in
      if List.length blocks >= Config.m t.cfg ~stripe then
        Ok
          (Erasure.Codec.decode
             (Config.codec t.cfg ~stripe)
             (List.filteri (fun i _ -> i < Config.m t.cfg ~stripe) blocks))
      else if Ts.equal max' Ts.low then
        (* Nothing older remains anywhere in this quorum, yet no
           version had m blocks. Unreachable in well-formed histories
           (every quorum sees at least the initial nil version, and a
           complete write is visible in every quorum); abort
           defensively rather than loop forever. *)
        Error `Aborted
      else loop max'
    end
  in
  loop Ts.high

(* recover (lines 17-23). *)
let recover_with t ~stripe ~op ~dl ~patch =
  let ts = Clock.new_ts t.clock in
  match read_prev_stripe t ~stripe ~op ~dl ts with
  | Error `Aborted -> Error `Aborted
  | Ok data -> (
      patch data;
      match store_stripe t ~stripe ~op ~dl data ts with
      | Ok () -> Ok data
      | Error `Aborted -> Error `Aborted)

let recover t ~stripe =
  traced t ~stripe "recover" (fun op dl ->
      recover_with t ~stripe ~op ~dl ~patch:ignore)

(* read-stripe (lines 1-4). *)
let read_stripe t ~stripe =
  traced t ~stripe "read-stripe" (fun op dl ->
      match fast_read_stripe t ~stripe ~op ~dl with
      | Some data -> Ok data
      | None -> recover t ~stripe)

let check_stripe_shape t ~stripe data =
  if Array.length data <> Config.m t.cfg ~stripe then
    invalid_arg "Core.Coordinator.write_stripe: wrong block count";
  Array.iter
    (fun b ->
      if Bytes.length b <> t.cfg.Config.block_size then
        invalid_arg "Core.Coordinator.write_stripe: wrong block size")
    data

(* write-stripe (lines 12-16), with the order round elided when the
   coordinator's last full-quorum write to the stripe is cached and no
   foreign activity has been observed since (DESIGN 4d). The elided
   write is safe regardless of cache staleness: replicas accept an
   unordered write only at a timestamp above everything they logged or
   promised, so it either commits like an ordered one or is refused —
   and a refusal falls back to the full 2-round path below. *)
let write_stripe t ~stripe data =
  check_stripe_shape t ~stripe data;
  traced t ~stripe "write-stripe" (fun op dl ->
      let cold () =
        let ts = Clock.new_ts t.clock in
        let replies =
          quorum_call ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Order (fun _ ->
              Message.Order { stripe; ts })
        in
        if not (all_status_true replies) then begin
          cache_invalidate t ~stripe;
          Error `Aborted
        end
        else store_stripe t ~stripe ~op ~dl data ts
      in
      match cache_find t ~stripe with
      | Some e ->
          let ts = Clock.new_ts t.clock in
          if Ts.( > ) ts e.cts then begin
            emit_elided t ~op Obs.Order;
            match store_stripe t ~stripe ~op ~dl data ts with
            | Ok () -> Ok ()
            | Error `Aborted ->
                (* The elided write lost a race; the entry is already
                   invalidated, pay the two rounds once. *)
                cold ()
          end
          else cold ()
      | None -> cold ())

(* ------------------------------------------------------------------ *)
(* Algorithm 3: block access                                           *)
(* ------------------------------------------------------------------ *)

let check_block_shape t ~stripe j b =
  if j < 0 || j >= Config.m t.cfg ~stripe then
    invalid_arg "Core.Coordinator: block index out of range";
  if Bytes.length b <> t.cfg.Config.block_size then
    invalid_arg "Core.Coordinator: wrong block size"

(* read-block (lines 61-69). *)
let read_block t ~stripe j =
  if j < 0 || j >= Config.m t.cfg ~stripe then
    invalid_arg "Core.Coordinator: block index out of range";
  traced t ~stripe "read-block" (fun op dl ->
  let addr_j = (Config.members_array t.cfg ~stripe).(j) in
  let targets = [ addr_j ] in
  let until replies = List.mem_assoc addr_j replies in
  let replies =
    quorum_call ~until t ~stripe ~op ~dl ~phase:Obs.Fast_read (fun _ ->
        Message.Read { stripe; targets })
  in
  let fast =
    match unanimous_version replies with
    | None -> None
    | Some _ -> (
        match List.assoc_opt addr_j replies with
        | Some (Message.Read_r { block = Some b; _ }) -> Some b
        | _ -> None)
  in
  match fast with
  | Some b -> Ok b
  | None -> (
      match recover t ~stripe with
      | Ok data -> Ok data.(j)
      | Error _ as e -> e))

(* Build the per-destination request of a Modify round writing block
   [j] := [b] against old content [bj] at basis version [tsj]. *)
let modify_req t ~stripe j ~bj b ~tsj ts =
  if t.cfg.Config.optimized_modify then begin
    (* One delta per operation, shared by every parity member's
       message (and by retries): replicas fold it without mutating it,
       so the buffer can be shipped n - m times. *)
    let d = Erasure.Codec.delta ~old_data:bj ~new_data:b in
    fun dst ->
      let pos = pos_of t ~stripe dst in
      let payload =
        if pos = j then Some b
        else if pos >= Config.m t.cfg ~stripe then Some d
        else None
      in
      Message.Modify_delta { stripe; j; payload; tsj; ts }
  end
  else fun _ -> Message.Modify { stripe; j; bj; b; tsj; ts }

(* Commit bookkeeping of a modify round. [cblocks] is the full stripe
   content after the patch when the caller knows it (warm path, or a
   cold path whose basis version was cached); a timestamp-only entry
   still elides a later full-stripe write's order round. *)
let finish_modify t ~stripe ~op ts ~cblocks replies =
  if all_status_true replies then begin
    notify_gc t ~stripe ~op ts;
    if foreign_above replies ts then cache_invalidate t ~stripe
    else cache_put t ~stripe { cts = ts; cblocks };
    Ok ()
  end
  else begin
    cache_invalidate t ~stripe;
    Error `Aborted
  end

(* The stripe's content after applying [patches], when the cache holds
   exactly the modify's basis version [tsj]; [None] otherwise. *)
let patched_cache_blocks t ~stripe ~tsj patches =
  match cache_find t ~stripe with
  | Some { cts; cblocks = Some blocks } when Ts.equal cts tsj ->
      let nb = Array.copy blocks in
      List.iter (fun (j, b) -> nb.(j) <- b) patches;
      Some nb
  | _ -> None

(* fast-write-block (lines 74-82). *)
let fast_write_block t ~stripe ~op ~dl j b ts =
  let addr_j = (Config.members_array t.cfg ~stripe).(j) in
  let until replies = List.mem_assoc addr_j replies in
  let replies =
    quorum_call ~until ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Order (fun _ ->
        Message.Order_read
          { stripe; target = Message.Addr addr_j; max = Ts.high; ts })
  in
  if not (all_status_true replies) then None
  else
    match List.assoc_opt addr_j replies with
    | Some (Message.Order_read_r { lts = tsj; block = Some bj; _ }) ->
        let cblocks = patched_cache_blocks t ~stripe ~tsj [ (j, b) ] in
        let replies =
          quorum_call ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Modify
            (modify_req t ~stripe j ~bj b ~tsj ts)
        in
        Some (finish_modify t ~stripe ~op ts ~cblocks replies)
    | Some _ | None -> None

(* Warm fast-write-block: when the cache holds the stripe's full
   content at its newest version, the Order&Read round would only
   re-fetch what the coordinator already knows — skip it and run the
   modify round directly against the cached basis. A refusal (stale
   cache or concurrent order) makes the caller fall back to the slow
   path at the same timestamp, exactly as after a failed cold fast
   path: the partial states are identical, because members apply a
   modify only where the basis version matched — i.e. where their
   content equalled the cached content. *)
let warm_write_block t ~stripe ~op ~dl j b ts =
  match cache_find t ~stripe with
  | Some { cts; cblocks = Some blocks } when Ts.( > ) ts cts ->
      emit_elided t ~op Obs.Order;
      let cblocks =
        let nb = Array.copy blocks in
        nb.(j) <- b;
        Some nb
      in
      let replies =
        quorum_call ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Modify
          (modify_req t ~stripe j ~bj:blocks.(j) b ~tsj:cts ts)
      in
      Some (finish_modify t ~stripe ~op ts ~cblocks replies)
  | _ -> None

(* slow-write-block (lines 83-87): reconstruct, patch block j, store. *)
let slow_write_block t ~stripe ~op ~dl j b ts =
  match read_prev_stripe t ~stripe ~op ~dl ts with
  | Error `Aborted -> Error `Aborted
  | Ok data ->
      data.(j) <- b;
      store_stripe t ~stripe ~op ~dl data ts

(* ------------------------------------------------------------------ *)
(* Footnote-2 extension: contiguous multi-block access                 *)
(* ------------------------------------------------------------------ *)

let check_range t ~stripe j0 len =
  if len < 1 || j0 < 0 || j0 + len > Config.m t.cfg ~stripe then
    invalid_arg "Core.Coordinator: block range out of bounds"

let range_addrs t ~stripe j0 len =
  let layout = Config.members_array t.cfg ~stripe in
  List.init len (fun i -> layout.(j0 + i))

(* read-blocks: the fast read targets exactly the range; any anomaly
   falls back to full recovery. *)
let read_blocks t ~stripe j0 ~len =
  check_range t ~stripe j0 len;
  if len = Config.m t.cfg ~stripe then read_stripe t ~stripe
  else
    traced t ~stripe "read-blocks" @@ fun op dl ->
    begin
    let targets = range_addrs t ~stripe j0 len in
    let until replies =
      List.for_all (fun a -> List.mem_assoc a replies) targets
    in
    let replies =
      quorum_call ~until t ~stripe ~op ~dl ~phase:Obs.Fast_read (fun _ ->
          Message.Read { stripe; targets })
    in
    let fast =
      match unanimous_version replies with
      | None -> None
      | Some _ ->
          let blocks =
            List.map
              (fun a ->
                match List.assoc_opt a replies with
                | Some (Message.Read_r { block = Some b; _ }) -> Some b
                | _ -> None)
              targets
          in
          if List.for_all Option.is_some blocks then
            Some (Array.of_list (List.map Option.get blocks))
          else None
    in
    match fast with
    | Some blocks -> Ok blocks
    | None -> (
        match recover t ~stripe with
        | Ok data -> Ok (Array.sub data j0 len)
        | Error _ as e -> e)
  end

(* fast-write-blocks: one Order&Read round fetching the range's current
   blocks, then one Modify_multi round. The range's blocks must all be
   at the same version timestamp; mixed versions (e.g. after an
   interleaved single-block write) take the slow path. *)
let fast_write_blocks t ~stripe ~op ~dl j0 news ts =
  let len = Array.length news in
  let targets = range_addrs t ~stripe j0 len in
  let until replies =
    List.for_all (fun a -> List.mem_assoc a replies) targets
  in
  let replies =
    quorum_call ~until ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Order (fun _ ->
        Message.Order_read
          { stripe; target = Message.Addrs targets; max = Ts.high; ts })
  in
  if not (all_status_true replies) then None
  else begin
    let infos =
      List.map
        (fun a ->
          match List.assoc_opt a replies with
          | Some (Message.Order_read_r { lts; block = Some b; _ }) ->
              Some (lts, b)
          | _ -> None)
        targets
    in
    if not (List.for_all Option.is_some infos) then None
    else
      let infos = List.map Option.get infos in
      let tsj = fst (List.hd infos) in
      if not (List.for_all (fun (l, _) -> Ts.equal l tsj) infos) then None
      else begin
        let olds = Array.of_list (List.map snd infos) in
        let cblocks =
          patched_cache_blocks t ~stripe ~tsj
            (List.init len (fun i -> (j0 + i, news.(i))))
        in
        let replies =
          quorum_call ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Modify (fun _ ->
              Message.Modify_multi { stripe; j0; olds; news; tsj; ts })
        in
        Some (finish_modify t ~stripe ~op ts ~cblocks replies)
      end
  end

(* Warm multi-block write; see [warm_write_block]. *)
let warm_write_blocks t ~stripe ~op ~dl j0 news ts =
  match cache_find t ~stripe with
  | Some { cts; cblocks = Some blocks } when Ts.( > ) ts cts ->
      emit_elided t ~op Obs.Order;
      let len = Array.length news in
      let olds = Array.sub blocks j0 len in
      let nb = Array.copy blocks in
      Array.iteri (fun i b -> nb.(j0 + i) <- b) news;
      let replies =
        quorum_call ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Modify (fun _ ->
            Message.Modify_multi { stripe; j0; olds; news; tsj = cts; ts })
      in
      Some (finish_modify t ~stripe ~op ts ~cblocks:(Some nb) replies)
  | _ -> None

let slow_write_blocks t ~stripe ~op ~dl j0 news ts =
  match read_prev_stripe t ~stripe ~op ~dl ts with
  | Error `Aborted -> Error `Aborted
  | Ok data ->
      Array.iteri (fun i b -> data.(j0 + i) <- b) news;
      store_stripe t ~stripe ~op ~dl data ts

let write_blocks t ~stripe j0 news =
  let len = Array.length news in
  check_range t ~stripe j0 len;
  Array.iter
    (fun b ->
      if Bytes.length b <> t.cfg.Config.block_size then
        invalid_arg "Core.Coordinator: wrong block size")
    news;
  if len = Config.m t.cfg ~stripe then write_stripe t ~stripe news
  else
    traced t ~stripe "write-blocks" @@ fun op dl ->
    let ts = Clock.new_ts t.clock in
    match warm_write_blocks t ~stripe ~op ~dl j0 news ts with
    | Some (Ok ()) -> Ok ()
    | Some (Error `Aborted) -> slow_write_blocks t ~stripe ~op ~dl j0 news ts
    | None -> (
        match fast_write_blocks t ~stripe ~op ~dl j0 news ts with
        | Some (Ok ()) -> Ok ()
        | Some (Error `Aborted) | None ->
            slow_write_blocks t ~stripe ~op ~dl j0 news ts)

(* write-block (lines 70-73). *)
let write_block t ~stripe j b =
  check_block_shape t ~stripe j b;
  traced t ~stripe "write-block" (fun op dl ->
  let ts = Clock.new_ts t.clock in
  match warm_write_block t ~stripe ~op ~dl j b ts with
  | Some (Ok ()) -> Ok ()
  | Some (Error `Aborted) -> slow_write_block t ~stripe ~op ~dl j b ts
  | None -> (
      match fast_write_block t ~stripe ~op ~dl j b ts with
      | Some (Ok ()) -> Ok ()
      | Some (Error `Aborted) | None ->
          (* Per the paper, any fast-path failure falls back to the slow
             path with the same timestamp. If the fast path's Modify
             partially applied, replicas that logged it will refuse the
             slow path's messages and the operation aborts — the partial
             write is then rolled forward or back by the next read. *)
          slow_write_block t ~stripe ~op ~dl j b ts))

(* ------------------------------------------------------------------ *)
(* Scrubbing: detect and repair silent block corruption               *)
(* ------------------------------------------------------------------ *)

(* All m-subsets of positions [0, k). *)
let rec subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    List.map (fun s -> lo :: s) (subsets (k - 1) (lo + 1) n)
    @ subsets k (lo + 1) n

let scrub t ~stripe =
  traced t ~stripe "scrub" @@ fun op dl ->
  let m = Config.m t.cfg ~stripe in
  let members = Config.members t.cfg ~stripe in
  let ts = Clock.new_ts t.clock in
  let until replies = List.length replies = List.length members in
  let replies =
    quorum_call ~until ~proposed:ts t ~stripe ~op ~dl ~phase:Obs.Recover
      (fun _ ->
        Message.Order_read { stripe; target = Message.All; max = Ts.high; ts })
  in
  if not (all_status_true replies) then Error `Aborted
  else begin
    let infos =
      List.filter_map
        (fun (src, r) ->
          match r with
          | Message.Order_read_r { lts; block = Some b; _ } ->
              Some (pos_of t ~stripe src, lts, b)
          | _ -> None)
        replies
    in
    let version =
      List.fold_left (fun acc (_, lts, _) -> Ts.max acc lts) Ts.low infos
    in
    let current =
      List.filter_map
        (fun (pos, lts, b) -> if Ts.equal lts version then Some (pos, b) else None)
        infos
    in
    if List.length current < m then Error `Aborted
    else begin
      let codec = Config.codec t.cfg ~stripe in
      (* Find the decoding subset whose codeword disagrees with the
         fewest collected blocks; the disagreeing blocks are the
         corrupted ones. Sound for up to (n - m) / 2 corruptions (the
         Reed-Solomon error-correction bound): the clean codeword then
         has strictly fewer mismatches than any other. Candidate
         decode/encode runs entirely on brick scratch buffers, reused
         across all C(k, m) subsets; only the winning codeword is
         decoded into fresh blocks for the write-back. *)
      let arr = Array.of_list current in
      let len = Bytes.length (snd (List.hd current)) in
      let cn = Erasure.Codec.n codec in
      let data_scratch =
        Array.init m (fun _ -> Brick.scratch_take t.brick ~len)
      in
      let enc_scratch =
        Array.init cn (fun i ->
            if i < m then data_scratch.(i)
            else Brick.scratch_take t.brick ~len)
      in
      let best = ref None in
      List.iter
        (fun subset ->
          let blocks = List.map (fun i -> arr.(i)) subset in
          Erasure.Codec.decode_into codec blocks ~into:data_scratch;
          Erasure.Codec.encode_into codec data_scratch ~into:enc_scratch;
          let mismatches =
            List.filter_map
              (fun (pos, b) ->
                if Bytes.equal b enc_scratch.(pos) then None else Some pos)
              current
          in
          match !best with
          | Some (_, prev) when List.length prev <= List.length mismatches -> ()
          | _ -> best := Some (blocks, mismatches))
        (subsets m 0 (Array.length arr));
      Array.iter (Brick.scratch_release t.brick) enc_scratch;
      match !best with
      | None -> Error `Aborted
      | Some (blocks, corrupted) ->
          (* Rewrite the whole stripe from the consistent codeword (a
             cheap no-op write-back when nothing was corrupted: it
             releases the ordering we took so future operations see a
             consistent ord-ts/log pair). *)
          let data = Erasure.Codec.decode codec blocks in
          Result.map
            (fun () -> List.sort compare corrupted)
            (store_stripe t ~stripe ~op ~dl data ts)
    end
  end

let with_retries ?(attempts = 3) t f =
  if attempts < 1 then invalid_arg "Core.Coordinator.with_retries: attempts < 1";
  let rec go left =
    (* Flag the attempt as retryable before running it, so the span it
       opens can report [Retry] instead of [Abort] if it fails. *)
    if left > 1 then hint_retry t;
    match f () with
    | Ok v -> Ok v
    | Error `Aborted when left > 1 -> go (left - 1)
    | Error `Aborted -> Error `Aborted
    (* A deadline expiry means the quorum is presumed unreachable;
       retrying immediately would just burn the next deadline too. *)
    | Error `Unavailable -> Error `Unavailable
  in
  go attempts
