(** Wire messages of the storage-register protocol (Algorithms 1-3).

    Requests carry the stripe id so that one replica process serves
    every stripe hosted on its brick. Replies carry [cur_ts], the
    replica's current notion of the latest timestamp; coordinators
    with logical clocks fold it in so that a retry after an abort
    proposes a large-enough timestamp (liveness aid only — safety
    never depends on it).

    [bytes_on_wire] implements Table 1's bandwidth accounting: only
    block payloads count, in units of the block size B. *)

type target =
  | All  (** Every replica answers with its version information. *)
  | Addr of Simnet.Net.addr  (** Only this replica returns its block. *)
  | Addrs of Simnet.Net.addr list
      (** These replicas return their blocks (multi-block operations,
          the extension of the paper's footnote 2). *)

type t =
  (* Requests *)
  | Read of { stripe : int; targets : Simnet.Net.addr list }
  | Order of { stripe : int; ts : Timestamp.t }
  | Order_read of {
      stripe : int;
      target : target;
      max : Timestamp.t;
      ts : Timestamp.t;
    }
  | Write of { stripe : int; block : Bytes.t; ts : Timestamp.t }
  | Modify of {
      stripe : int;
      j : int;  (** data-block position being written, in [0, m) *)
      bj : Bytes.t;  (** old content of block [j] *)
      b : Bytes.t;  (** new content of block [j] *)
      tsj : Timestamp.t;  (** timestamp of [bj] at p_j *)
      ts : Timestamp.t;
    }
  | Modify_delta of {
      stripe : int;
      j : int;
      payload : Bytes.t option;
          (** New block for p_j, precomputed parity delta for parity
              processes, nothing for the other data processes
              (section 5.2's bandwidth optimization). *)
      tsj : Timestamp.t;
      ts : Timestamp.t;
    }
  | Modify_multi of {
      stripe : int;
      j0 : int;  (** first data position of the contiguous range *)
      olds : Bytes.t array;  (** old contents of blocks j0 .. j0+len-1 *)
      news : Bytes.t array;  (** new contents, same length *)
      tsj : Timestamp.t;  (** common version timestamp of the old blocks *)
      ts : Timestamp.t;
    }  (** Multi-block fast write (footnote 2 extension): updates a
          contiguous range of data blocks and folds all the changes
          into each parity block in one round. *)
  | Gc of { stripe : int; before : Timestamp.t }
  (* Replies *)
  | Read_r of {
      status : bool;
      val_ts : Timestamp.t;
      block : Bytes.t option;
      cur_ts : Timestamp.t;
    }
  | Order_r of { status : bool; cur_ts : Timestamp.t }
  | Order_read_r of {
      status : bool;
      lts : Timestamp.t;
      block : Bytes.t option;
      cur_ts : Timestamp.t;
    }
  | Write_r of { status : bool; cur_ts : Timestamp.t }
  | Modify_r of { status : bool; cur_ts : Timestamp.t }

val bytes_on_wire : t -> int
(** Accounted payload size: the total length of the blocks the message
    carries (zero for timestamp-only messages). *)

val stripe : t -> int option
(** The stripe a request addresses; [None] for replies. *)

val label : t -> string
(** Short constructor name (e.g. ["order&read"]) used as the message
    label in observability traces. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering for traces and test failures. *)
