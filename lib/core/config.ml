type policy = {
  codec : Erasure.Codec.t;
  mq : Quorum.Mquorum.t;
  members : Simnet.Net.addr array;
}

let make_policy ~codec ~mq ~members =
  if Erasure.Codec.m codec <> Quorum.Mquorum.m mq then
    invalid_arg "Core.Config: codec m and quorum m disagree";
  if Erasure.Codec.n codec <> Quorum.Mquorum.n mq then
    invalid_arg "Core.Config: codec n and quorum n disagree";
  if Array.length members <> Erasure.Codec.n codec then
    invalid_arg "Core.Config: member count and codec n disagree";
  { codec; mq; members }

type t = {
  policy_of : int -> policy;
  block_size : int;
  runtime : Runtime.t;
  rpc : (Message.t, Message.t) Quorum.Rpc.t;
  metrics : Metrics.Registry.t;
  obs : Obs.t;
  gc_enabled : bool;
  optimized_modify : bool;
  ts_cache : bool;
  deadline : float option;
  unsafe_skip_order : bool;
}

let create_policied ~policy_of ~block_size ~runtime ~rpc ~metrics
    ?(obs = Obs.create ()) ?(gc_enabled = true) ?(optimized_modify = false)
    ?(ts_cache = false) ?deadline ?(unsafe_skip_order = false) () =
  if block_size <= 0 then invalid_arg "Core.Config: block_size <= 0";
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Core.Config: deadline <= 0"
  | Some _ | None -> ());
  {
    policy_of;
    block_size;
    runtime;
    rpc;
    metrics;
    obs;
    gc_enabled;
    optimized_modify;
    ts_cache;
    deadline;
    unsafe_skip_order;
  }

let create ~codec ~mq ~block_size ~runtime ~rpc ~metrics ~layout ?obs
    ?gc_enabled ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order () =
  let policy_of stripe = make_policy ~codec ~mq ~members:(layout stripe) in
  (* Validate eagerly on a representative stripe. *)
  ignore (policy_of 0);
  create_policied ~policy_of ~block_size ~runtime ~rpc ~metrics ?obs
    ?gc_enabled ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order ()

let policy t ~stripe = t.policy_of stripe
let codec t ~stripe = (policy t ~stripe).codec
let m t ~stripe = Erasure.Codec.m (codec t ~stripe)
let n t ~stripe = Erasure.Codec.n (codec t ~stripe)
let quorum_size t ~stripe = Quorum.Mquorum.quorum_size (policy t ~stripe).mq
let fault_bound t ~stripe = Quorum.Mquorum.f (policy t ~stripe).mq
let members_array t ~stripe = (policy t ~stripe).members
let members t ~stripe = Array.to_list (members_array t ~stripe)

let pos_of_addr t ~stripe addr =
  let arr = members_array t ~stripe in
  let rec find i =
    if i >= Array.length arr then None
    else if arr.(i) = addr then Some i
    else find (i + 1)
  in
  find 0
