(* Fault interposition for the multicore transport: the mc backend's
   counterpart of Simnet's fault knobs (drop probability, partitions,
   directed dead links, added delay/jitter), sitting between
   [Cluster]'s xsend and the destination mailbox.

   Concurrency contract (DESIGN 4i): the whole fault configuration is
   one immutable [state] record held in an [Atomic.t]. Senders read it
   with a single [Atomic.get] per message, so every message sees one
   internally consistent snapshot — never half of a partition plus the
   old drop rate. Mutators serialize on [wlock] (read-modify-write,
   then [Atomic.set]); they are cheap and rare (nemesis events), while
   the send path stays lock-free.

   Verdict counters are plain atomics; chaos tests assert on them
   (faults actually injected, heals actually heal). *)

type state = {
  drop : float;  (* independent per-message drop probability *)
  delay : float;  (* added one-way delay, seconds *)
  jitter : float;  (* extra delay drawn uniformly from [0, jitter) *)
  groups : int array option;  (* partition group per address *)
  downed : (int * int) list;  (* directed dead links (src, dst) *)
}

type verdict =
  | Deliver
  | Dropped  (* random loss *)
  | Cut  (* partition or dead link *)
  | Delay of float  (* deliver after this many seconds *)

type stats = { delivered : int; dropped : int; cut : int; delayed : int }

type t = {
  n : int;
  st : state Atomic.t;
  wlock : Mutex.t;
  salt : int Atomic.t;
  delivered : int Atomic.t;
  dropped : int Atomic.t;
  cut : int Atomic.t;
  delayed : int Atomic.t;
}

let healthy = { drop = 0.; delay = 0.; jitter = 0.; groups = None; downed = [] }

let create ~n =
  if n <= 0 then invalid_arg "Core.Faultnet.create: n <= 0";
  {
    n;
    st = Atomic.make healthy;
    wlock = Mutex.create ();
    salt = Atomic.make 0x9E3779B9;
    delivered = Atomic.make 0;
    dropped = Atomic.make 0;
    cut = Atomic.make 0;
    delayed = Atomic.make 0;
  }

(* Lock-free uniform sampler: a counter stepped by a fetch-and-add and
   scrambled through a splitmix-style finalizer. Not the runtime's rng
   on purpose — drop sampling runs on whatever thread sends (including
   the timer thread's retransmissions), and no determinism is promised
   on this backend anyway. *)
let mix x =
  let x = x lxor (x lsr 29) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 32) in
  let x = x * 0x27BB2EE687B0B0FD in
  x lxor (x lsr 31)

let uniform t =
  let x = mix (Atomic.fetch_and_add t.salt 0x9E3779B9) in
  float_of_int (x land ((1 lsl 30) - 1)) /. 1073741824.

let check_addr t a =
  if a < 0 || a >= t.n then invalid_arg "Core.Faultnet: address out of range"

(* Serialized read-modify-write of the snapshot. *)
let update t f =
  Mutex.lock t.wlock;
  Atomic.set t.st (f (Atomic.get t.st));
  Mutex.unlock t.wlock

let set_drop t p =
  if p < 0. || p >= 1. then
    invalid_arg "Core.Faultnet.set_drop: need 0 <= p < 1 for fair loss";
  update t (fun st -> { st with drop = p })

let set_delay t ~delay ~jitter =
  if delay < 0. || jitter < 0. then
    invalid_arg "Core.Faultnet.set_delay: negative delay";
  update t (fun st -> { st with delay; jitter })

let partition t groups_l =
  let assignment = Array.make t.n (-1) in
  List.iteri
    (fun gid members ->
      List.iter
        (fun a ->
          check_addr t a;
          if assignment.(a) <> -1 then
            invalid_arg "Core.Faultnet.partition: address in two groups";
          assignment.(a) <- gid)
        members)
    groups_l;
  (* Unlisted addresses share one implicit group, as in Simnet.Net. *)
  let implicit = List.length groups_l in
  Array.iteri
    (fun a g -> if g = -1 then assignment.(a) <- implicit)
    assignment;
  update t (fun st -> { st with groups = Some assignment })

let heal t = update t (fun st -> { st with groups = None })

let set_link_down t ~src ~dst down =
  check_addr t src;
  check_addr t dst;
  update t (fun st ->
      let without = List.filter (fun l -> l <> (src, dst)) st.downed in
      { st with downed = (if down then (src, dst) :: without else without) })

(* One-shot return to health; [drop] is the nemesis's base probability. *)
let reset t ~drop =
  if drop < 0. || drop >= 1. then
    invalid_arg "Core.Faultnet.reset: need 0 <= drop < 1";
  update t (fun _ -> { healthy with drop })

let decide t ~src ~dst =
  let st = Atomic.get t.st in
  let cut =
    (match st.groups with
    | Some g -> g.(src) <> g.(dst)
    | None -> false)
    || (st.downed <> [] && List.mem (src, dst) st.downed)
  in
  if cut then begin
    Atomic.incr t.cut;
    Cut
  end
  else if st.drop > 0. && uniform t < st.drop then begin
    Atomic.incr t.dropped;
    Dropped
  end
  else begin
    Atomic.incr t.delivered;
    if st.delay > 0. || st.jitter > 0. then begin
      Atomic.incr t.delayed;
      Delay (st.delay +. (if st.jitter > 0. then uniform t *. st.jitter else 0.))
    end
    else Deliver
  end

let stats t =
  {
    delivered = Atomic.get t.delivered;
    dropped = Atomic.get t.dropped;
    cut = Atomic.get t.cut;
    delayed = Atomic.get t.delayed;
  }

let snapshot t = Atomic.get t.st
