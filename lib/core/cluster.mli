(** Turn-key deployment of a storage-register system inside the
    simulator: engine, network, RPC layer, [bricks] bricks each running
    a replica, and a coordinator handle per brick.

    This is the entry point used by tests, examples and benchmarks; the
    FAB volume layer builds on it with a multi-stripe layout. *)

type backend
(** Which substrate this deployment runs on: the deterministic
    simulator, or the OCaml 5 multicore pool ({!create_mc}). *)

type t = {
  engine : Dessim.Engine.t;
      (** The simulation driver. On a {!create_mc} deployment this is
          an idle placeholder — schedule nothing on it; use
          [runtime]. *)
  runtime : Runtime.t;
      (** The substrate protocol code schedules on; identical
          behavior to [engine] on the sim backend. *)
  backend : backend;
  net : ((Message.t, Message.t) Quorum.Rpc.envelope) Simnet.Net.t;
  rpc : (Message.t, Message.t) Quorum.Rpc.t;
  metrics : Metrics.Registry.t;
  obs : Obs.t;
      (** The deployment-wide observability hub. Disabled (and
          zero-cost) until a sink is attached with {!Obs.add_sink};
          enabling it also installs the engine queue-depth probe. *)
  cfg : Config.t;
  bricks : Brick.t array;
  replicas : Replica.t array;
  coordinators : Coordinator.t array;
}

type clock_kind =
  | Logical  (** Lamport clocks with reply-driven catch-up. *)
  | Realtime of { skew_of : int -> float; resolution : float }
      (** Loosely synchronized clocks; [skew_of pid] is the fixed
          offset of brick [pid]'s clock. *)

val create :
  ?seed:int ->
  ?net_config:Simnet.Net.config ->
  ?bricks:int ->
  ?layout:(int -> Simnet.Net.addr array) ->
  ?block_size:int ->
  ?clock:clock_kind ->
  ?gc_enabled:bool ->
  ?optimized_modify:bool ->
  ?ts_cache:bool ->
  ?deadline:float ->
  ?unsafe_skip_order:bool ->
  ?coalesce:bool ->
  ?retry_every:float ->
  ?retry_backoff:float ->
  ?retry_cap:float ->
  m:int ->
  n:int ->
  unit ->
  t
(** [create ~m ~n ()] builds an m-of-n system. Defaults: Reed-Solomon
    codec ([replication] when [m = 1], XOR [parity] when [n = m + 1]),
    [bricks = n], identity layout (brick [i] stores block [i] of every
    stripe) when [bricks = n] and a rotating layout (stripe [s] uses
    bricks [(s + i) mod bricks]) otherwise, 1 KiB blocks, logical
    clocks, deterministic network with unit delay, GC on.

    [ts_cache] (default off) enables coordinator timestamp caching and
    order-round elision ({!Config.t.ts_cache}); [coalesce] (default
    off) batches same-instant same-destination messages into one
    envelope ({!Quorum.Rpc.create}). Both are off by default so the
    per-operation message and round counts of Table 1 remain exact.

    [deadline] bounds every coordinator operation in sim-time units
    (fail-fast [`Unavailable], {!Config.t.deadline});
    [retry_backoff]/[retry_cap] shape the RPC retransmission schedule
    ({!Quorum.Rpc.create}); [unsafe_skip_order] enables the
    deliberately broken protocol variant the chaos harness must catch
    ({!Config.t.unsafe_skip_order}). *)

val create_policied :
  ?seed:int ->
  ?net_config:Simnet.Net.config ->
  ?block_size:int ->
  ?clock:clock_kind ->
  ?gc_enabled:bool ->
  ?optimized_modify:bool ->
  ?ts_cache:bool ->
  ?deadline:float ->
  ?unsafe_skip_order:bool ->
  ?coalesce:bool ->
  ?retry_every:float ->
  ?retry_backoff:float ->
  ?retry_cap:float ->
  bricks:int ->
  policy_of:(int -> Config.policy) ->
  unit ->
  t
(** Heterogeneous deployment: each stripe's codec, quorum system and
    members come from [policy_of] (which may be backed by a mutable
    table — multi-volume brick pools allocate stripe ranges on the
    fly, see {!Fab.Pool}). *)

val create_mc :
  ?domains:int ->
  ?bricks:int ->
  ?layout:(int -> Simnet.Net.addr array) ->
  ?block_size:int ->
  ?gc_enabled:bool ->
  ?optimized_modify:bool ->
  ?ts_cache:bool ->
  ?deadline:float ->
  ?unsafe_skip_order:bool ->
  ?retry_every:float ->
  ?retry_backoff:float ->
  ?retry_cap:float ->
  ?coalesce:bool ->
  ?shards:int ->
  m:int ->
  n:int ->
  unit ->
  t
(** [create_mc ~m ~n ()] deploys the same m-of-n system on the OCaml 5
    multicore backend ({!Runtime_mc}): bricks exchange messages
    through in-process mailboxes, each brick's handlers run serially
    on its own receive loop, and loops run in parallel across
    [domains] worker domains (default 1). Time-valued knobs
    ([deadline], [retry_every] — default 50 ms — [retry_cap]) are
    wall-clock seconds here, not simulated delta units. Coordinators
    use logical clocks; give each concurrent client its own
    coordinator (e.g. [~bricks:(max n clients)]) so (time, pid)
    timestamps stay unique. [coalesce] (default off) batches
    same-destination sends behind a 0-delay flush timer, best-effort
    under wall-clock time; [shards] sizes the RPC pending table's lock
    sharding (see {!Quorum.Rpc.create}); [unsafe_skip_order] enables
    the deliberately broken protocol variant so the chaos soak can
    prove its checker bites under real parallelism too. No determinism
    and no virtual time — but fault injection works here: every send
    passes through a {!Faultnet} ({!faultnet}), and {!crash}/{!recover}
    really tear down and restart the brick's receive loop (DESIGN 4i).
    Verify protocol behavior on the sim backend; benchmark wall-clock
    numbers and hunt races on this one. Tear down with {!shutdown}. *)

val run : ?horizon:float -> t -> unit
(** Drive the simulation until quiescence (or until [horizon] virtual
    time units from now, default 100_000). On a multicore deployment
    [horizon] is ignored and this is {!await_quiesce}. *)

val await_quiesce : t -> unit
(** Block until every spawned task has finished (sim: run the engine
    dry; mc: wait for the pool's non-daemon tasks). *)

val try_quiesce : ?timeout:float -> t -> bool
(** {!await_quiesce} with an optional wall-clock bound (mc only; the
    sim engine always quiesces). Returns [false] if tasks are still
    live at the timeout — a stuck operation. Do not {!shutdown} after
    a [false] return: reaping a pool with a stuck slot thread blocks
    forever. *)

val shutdown : t -> unit
(** Release backend resources. Multicore: close every brick mailbox,
    stop the receive loops, join the worker domains, then materialize
    the runtime's hot-path stats into [metrics] —
    ["runtime.wheel.max_depth"/".fired"/".purged"] (timer wheel) and
    ["runtime.mailbox.drain.batches"/".msgs"] (batched drains); the
    RPC layer's ["rpc.shard.contention"] counts shard-lock waits as
    they happen. Sim: no-op. Idempotent; call after
    {!await_quiesce}. *)

val is_mc : t -> bool

val run_op : ?coord:int -> ?horizon:float -> t -> (Coordinator.t -> 'a) -> 'a option
(** [run_op t f] spawns [f (coordinator coord)] as a fiber, runs the
    engine, and returns the result — [None] if the fiber did not
    complete (its coordinator crashed, or the horizon hit). *)

val spawn : ?coord:int -> t -> (Coordinator.t -> unit) -> unit
(** Spawn a fiber without running the engine; for concurrent
    multi-client scenarios combined with {!run} and
    {!Dessim.Engine.schedule}. *)

val crash : t -> int -> unit
(** Crash brick [i]. Sim: flip the brick (the deterministic network
    models the rest). Mc: additionally run a real process death —
    crash hooks cancel the brick's pending quorum calls, its mailbox
    closes, and its receive loop drains out and exits; messages sent
    while down are lost. Idempotent. *)

val recover : t -> int -> unit
(** Bring brick [i] back. Sim: flip the brick. Mc: asynchronous
    restart — a spawned task awaits the dead receive loop's exit,
    installs a fresh mailbox, respawns the loop, marks the brick
    alive, then replays the paper's section 4 recovery path (a
    recovery read per hosted stripe, completing ongoing timestamps and
    writing the reconstructed version back at a fresh timestamp;
    skipped when the deployment has no [deadline], since recovery
    quorum calls could then retransmit forever). {!await_quiesce} /
    {!try_quiesce} wait for the restart to finish. No-op if the brick
    is already alive. *)

val faultnet : t -> Faultnet.t option
(** The mc backend's fault-injection layer; [None] on sim (use
    {!Simnet.Net}'s mutators there). The chaos nemesis dispatches on
    this. *)

val snapshot : t -> Metrics.Snapshot.t
(** Snapshot all counters (messages, bytes, disk I/O). *)
