type target = All | Addr of Simnet.Net.addr | Addrs of Simnet.Net.addr list

type t =
  | Read of { stripe : int; targets : Simnet.Net.addr list }
  | Order of { stripe : int; ts : Timestamp.t }
  | Order_read of {
      stripe : int;
      target : target;
      max : Timestamp.t;
      ts : Timestamp.t;
    }
  | Write of { stripe : int; block : Bytes.t; ts : Timestamp.t }
  | Modify of {
      stripe : int;
      j : int;
      bj : Bytes.t;
      b : Bytes.t;
      tsj : Timestamp.t;
      ts : Timestamp.t;
    }
  | Modify_delta of {
      stripe : int;
      j : int;
      payload : Bytes.t option;
      tsj : Timestamp.t;
      ts : Timestamp.t;
    }
  | Modify_multi of {
      stripe : int;
      j0 : int;
      olds : Bytes.t array;
      news : Bytes.t array;
      tsj : Timestamp.t;
      ts : Timestamp.t;
    }
  | Gc of { stripe : int; before : Timestamp.t }
  | Read_r of {
      status : bool;
      val_ts : Timestamp.t;
      block : Bytes.t option;
      cur_ts : Timestamp.t;
    }
  | Order_r of { status : bool; cur_ts : Timestamp.t }
  | Order_read_r of {
      status : bool;
      lts : Timestamp.t;
      block : Bytes.t option;
      cur_ts : Timestamp.t;
    }
  | Write_r of { status : bool; cur_ts : Timestamp.t }
  | Modify_r of { status : bool; cur_ts : Timestamp.t }

let opt_len = function Some b -> Bytes.length b | None -> 0

let bytes_on_wire = function
  | Read _ | Order _ | Order_read _ | Gc _ -> 0
  | Write { block; _ } -> Bytes.length block
  | Modify { bj; b; _ } -> Bytes.length bj + Bytes.length b
  | Modify_delta { payload; _ } -> opt_len payload
  | Modify_multi { olds; news; _ } ->
      Array.fold_left (fun acc b -> acc + Bytes.length b) 0 olds
      + Array.fold_left (fun acc b -> acc + Bytes.length b) 0 news
  | Read_r { block; _ } | Order_read_r { block; _ } -> opt_len block
  | Order_r _ | Write_r _ | Modify_r _ -> 0

let stripe = function
  | Read { stripe; _ }
  | Order { stripe; _ }
  | Order_read { stripe; _ }
  | Write { stripe; _ }
  | Modify { stripe; _ }
  | Modify_delta { stripe; _ }
  | Modify_multi { stripe; _ }
  | Gc { stripe; _ } ->
      Some stripe
  | Read_r _ | Order_r _ | Order_read_r _ | Write_r _ | Modify_r _ -> None

let label = function
  | Read _ -> "read"
  | Order _ -> "order"
  | Order_read _ -> "order&read"
  | Write _ -> "write"
  | Modify _ -> "modify"
  | Modify_delta _ -> "modify-delta"
  | Modify_multi _ -> "modify-multi"
  | Gc _ -> "gc"
  | Read_r _ -> "read-r"
  | Order_r _ -> "order-r"
  | Order_read_r _ -> "order&read-r"
  | Write_r _ -> "write-r"
  | Modify_r _ -> "modify-r"

let pp fmt m =
  let ts = Timestamp.to_string in
  match m with
  | Read { stripe; targets } ->
      Format.fprintf fmt "Read{s=%d targets=[%s]}" stripe
        (String.concat "," (List.map string_of_int targets))
  | Order { stripe; ts = t } -> Format.fprintf fmt "Order{s=%d ts=%s}" stripe (ts t)
  | Order_read { stripe; target; max; ts = t } ->
      Format.fprintf fmt "Order&Read{s=%d tgt=%s max=%s ts=%s}" stripe
        (match target with
        | All -> "ALL"
        | Addr a -> string_of_int a
        | Addrs l -> String.concat "+" (List.map string_of_int l))
        (ts max) (ts t)
  | Write { stripe; ts = t; _ } ->
      Format.fprintf fmt "Write{s=%d ts=%s}" stripe (ts t)
  | Modify { stripe; j; tsj; ts = t; _ } ->
      Format.fprintf fmt "Modify{s=%d j=%d tsj=%s ts=%s}" stripe j (ts tsj)
        (ts t)
  | Modify_delta { stripe; j; tsj; ts = t; payload } ->
      Format.fprintf fmt "ModifyDelta{s=%d j=%d tsj=%s ts=%s payload=%b}"
        stripe j (ts tsj) (ts t) (payload <> None)
  | Modify_multi { stripe; j0; olds; tsj; ts = t; _ } ->
      Format.fprintf fmt "ModifyMulti{s=%d j0=%d len=%d tsj=%s ts=%s}" stripe
        j0 (Array.length olds) (ts tsj) (ts t)
  | Gc { stripe; before } ->
      Format.fprintf fmt "Gc{s=%d before=%s}" stripe (ts before)
  | Read_r { status; val_ts; block; _ } ->
      Format.fprintf fmt "Read-R{%b val_ts=%s blk=%b}" status (ts val_ts)
        (block <> None)
  | Order_r { status; _ } -> Format.fprintf fmt "Order-R{%b}" status
  | Order_read_r { status; lts; block; _ } ->
      Format.fprintf fmt "Order&Read-R{%b lts=%s blk=%b}" status (ts lts)
        (block <> None)
  | Write_r { status; _ } -> Format.fprintf fmt "Write-R{%b}" status
  | Modify_r { status; _ } -> Format.fprintf fmt "Modify-R{%b}" status
