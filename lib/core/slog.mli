(** The per-process persistent log of timestamped block versions
    (paper section 4.2).

    The log is a set of [(timestamp, block-or-bot)] pairs recording the
    history of updates to this process's block of the stripe. A pair
    with value bot ([None]) is a timestamp-only marker written when a
    block-level write updates other blocks of the stripe.

    The initial log is [{(LowTS, nil)}] where [nil] — the register's
    initial value — is concretely an all-zero block, matching virtual-
    disk semantics (reading an unwritten stripe returns zeroes).

    The three query functions are the paper's [max-ts], [max-block]
    and [max-below]. {!gc} implements the section 5.1 trimming rule:
    once a write with timestamp [ts] is known complete, every entry
    strictly older than [ts] can go — except that the newest entry is
    always retained so that [max-ts] never moves backwards. *)

type t

val create : block_size:int -> t
(** Fresh log holding only [(LowTS, nil)].
    @raise Invalid_argument if [block_size <= 0]. *)

val add : t -> Timestamp.t -> Bytes.t option -> unit
(** [add t ts b] inserts the pair, stamped with a content checksum.
    Re-inserting an existing intact timestamp is a no-op (set
    semantics, making retransmitted requests idempotent) and does not
    make the entry tearable again — no physical write occurred;
    re-inserting over a checksum-damaged record replaces it — this is
    how recovery and scrub repair detected corruption in place.
    @raise Invalid_argument on a sentinel timestamp or a block of the
    wrong size. *)

val mem : t -> Timestamp.t -> bool

val find : t -> Timestamp.t -> Bytes.t option option
(** [find t ts] is [Some value] if an entry exists ([value] itself
    being [None] for a bot marker). *)

val max_ts : t -> Timestamp.t
(** Highest timestamp in the log. *)

val max_block : t -> Timestamp.t * Bytes.t
(** The intact non-bot entry with the highest timestamp. If every real
    entry is checksum-damaged the log reads as an unwritten register,
    [(LowTS, nil)] — the quorum then repairs this process as long as
    at most [f] members are in that state. *)

val max_below : t -> Timestamp.t -> (Timestamp.t * Bytes.t option) option
(** [max_below t ts] is [Some (lts, content)] where [lts] is the
    highest timestamp in the log strictly smaller than [ts] — bot
    markers included — and [content] is the newest non-bot block at or
    below [lts] (in well-formed histories it always exists). [None] if
    the log has no entry below [ts].

    Including markers in [lts] deliberately deviates from the paper's
    literal wording ("the non-bot value with the highest timestamp
    smaller than ts"): a marker [(ts', bot)] records that this
    process's block content at stripe version [ts'] is its newest real
    block below [ts'], so the version a reply describes is [lts], not
    the content's own write time. The appendix proof relies on exactly
    this (a Modify that logs bot still counts as a store event for the
    written value); with the literal reading, a recovery running after
    a {e complete} block-level write and a later partial stripe write
    would fail to see the block-write's version group, descend past
    it, and roll back a completed operation — violating strict
    linearizability whenever [n - m + 1 < m]. See DESIGN.md. *)

val gc : t -> before:Timestamp.t -> int
(** [gc t ~before] removes entries with timestamp < [before], except
    the newest entry of the log and the newest non-bot entry (so
    {!max_ts} and {!max_block} stay defined). Returns the number of
    entries removed. *)

val size : t -> int
val entries : t -> (Timestamp.t * Bytes.t option) list
(** Newest first; for tests and debugging. *)

val block_size : t -> int

val corrupt_newest : t -> unit
(** Flip a bit in the newest non-bot block {e and} restamp its
    checksum — simulated silent corruption below the checksum's radar
    (bad RAM at write time, firmware writing wrong bits with a valid
    CRC). Invisible to single-replica reads; only {!val:Volume.scrub}'s
    cross-brick decode can catch it. *)

val damage_newest : t -> Timestamp.t option
(** Corrupt the newest intact non-bot entry {e detectably}: its stored
    checksum stops matching, modeling a latent sector error or bit rot
    that the read path catches. The entry then reads as absent
    everywhere until some [add] (recovery, scrub) rewrites it. Returns
    the damaged timestamp, or [None] if no intact real entry exists. *)

val tear_last : t -> Timestamp.t option
(** Tear the most recent {!add} that physically wrote an entry — the
    half-written record a crash in mid-write leaves behind. The entry
    fails its checksum and reads as absent. Each written entry can be
    torn at most once, and only while it is still the latest; deduped
    no-op adds are never torn ([None] otherwise). *)

val checksum_errors : t -> int
(** Number of stored records currently failing their checksum. *)
