let src = Logs.Src.create "fab.core" ~doc:"FAB storage-register protocol trace"

module Log = (val Logs.src_log src : Logs.LOG)

let enable_stderr ?(level = Logs.Debug) () =
  if Logs.reporter () == Logs.nop_reporter then
    Logs.set_reporter (Logs.format_reporter ());
  Logs.Src.set_level src (Some level)

let sink () =
  Obs.Sink.make (fun ev -> Log.debug (fun m -> m "%a" Obs.pp_event ev))
