(** Fault interposition for the multicore transport (DESIGN 4i).

    The mc backend's counterpart of {!Simnet.Net}'s fault knobs: a
    per-message drop probability, network partitions, directed dead
    links, and added delay/jitter, applied between the cluster's send
    path and the destination mailbox.

    Atomicity contract: the entire fault configuration is one immutable
    snapshot in an [Atomic.t]. A sender reads it exactly once per
    message ({!decide}), so concurrent senders always observe an
    internally consistent fault state — never a partition from one
    nemesis event combined with the drop rate of another. Mutators are
    serialized and publish a whole new snapshot.

    All mutators and {!decide} are safe from any domain, including the
    runtime's timer thread. *)

type t

type verdict =
  | Deliver  (** pass the message through now *)
  | Dropped  (** random loss (counted) *)
  | Cut  (** suppressed by a partition or dead link (counted) *)
  | Delay of float  (** deliver after this many seconds *)

type stats = {
  delivered : int;  (** messages passed through (including delayed) *)
  dropped : int;  (** random losses *)
  cut : int;  (** partition / dead-link suppressions *)
  delayed : int;  (** delivered messages that were delayed *)
}

type state = {
  drop : float;
  delay : float;
  jitter : float;
  groups : int array option;
  downed : (int * int) list;
}
(** One immutable fault-configuration snapshot. *)

val create : n:int -> t
(** A healthy fabric over addresses [0 .. n-1]: no drops, no
    partition, no delay. @raise Invalid_argument if [n <= 0]. *)

val decide : t -> src:int -> dst:int -> verdict
(** The send-path hook: one atomic snapshot read plus (at most) two
    lock-free uniform samples. Counts the verdict into {!stats}. *)

val set_drop : t -> float -> unit
(** @raise Invalid_argument unless [0 <= p < 1] (fair loss). *)

val set_delay : t -> delay:float -> jitter:float -> unit
(** Added one-way delay in seconds; extra delay uniform in
    [0, jitter). [~delay:0. ~jitter:0.] restores immediate delivery.
    @raise Invalid_argument on negative values. *)

val partition : t -> int list list -> unit
(** Split the fabric into groups; unlisted addresses form an implicit
    extra group (same convention as {!Simnet.Net.partition}).
    @raise Invalid_argument if an address appears in two groups. *)

val heal : t -> unit
(** Remove any partition (dead links and drop rate are untouched). *)

val set_link_down : t -> src:int -> dst:int -> bool -> unit
(** Kill or revive the directed link [src -> dst]. *)

val reset : t -> drop:float -> unit
(** Return the whole configuration to health in one atomic publish:
    no partition, no dead links, no delay, drop probability [drop]
    (the nemesis's base rate). *)

val stats : t -> stats
(** Monotone verdict counters since {!create}; chaos tests assert
    faults were actually injected and heals actually heal with
    these. *)

val snapshot : t -> state
(** The current configuration snapshot (tests/debugging). *)
