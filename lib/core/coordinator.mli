(** The coordinator side of the storage-register protocol:
    Algorithm 1 (stripe access) and Algorithm 3 (block access).

    Any brick can coordinate any operation; the designation is
    per-operation. All operations must run inside a {!Dessim.Fiber} —
    they suspend on quorum replies. If the coordinator brick crashes
    mid-operation the fiber is cancelled and the operation becomes a
    partial operation, whose fate (roll forward or roll back) the next
    read's recovery decides, per the paper's strict linearizability.

    Operations return [Error `Aborted] when a replica refuses a
    timestamp — which happens only under concurrent conflicting
    operations on the same stripe or badly skewed clocks (section 3).
    The caller may retry with a fresh operation.

    With a per-operation deadline configured ({!Config.t.deadline}),
    operations return [Error `Unavailable] when a quorum round misses
    the deadline — the fail-fast answer when more than [n - q] bricks
    are unreachable. An unavailable operation may have partially
    applied; like a coordinator crash it leaves at worst a partial
    write for the next read's recovery to resolve. *)

type t

val create : Config.t -> brick:Brick.t -> clock:Clock.t -> t
(** [create cfg ~brick ~clock] makes [brick] able to coordinate
    operations. The same brick typically also runs a {!Replica}. *)

val brick : t -> Brick.t
val clock : t -> Clock.t

type 'a outcome = ('a, [ `Aborted | `Unavailable ]) result

val read_stripe : t -> stripe:int -> Bytes.t array outcome
(** Read the whole stripe: [m] data blocks. One round trip in the
    common case; falls back to the two-phase recovery otherwise. *)

val write_stripe : t -> stripe:int -> Bytes.t array -> unit outcome
(** Two-phase write of [m] data blocks.
    @raise Invalid_argument if the stripe shape is wrong (block count
    or block size). *)

val read_block : t -> stripe:int -> int -> Bytes.t outcome
(** [read_block t ~stripe j] reads data block [j] (in [0, m)). *)

val write_block : t -> stripe:int -> int -> Bytes.t -> unit outcome
(** [write_block t ~stripe j b] writes data block [j], updating parity
    blocks via the erasure code's [modify] primitive on the fast path. *)

val read_blocks : t -> stripe:int -> int -> len:int -> Bytes.t array outcome
(** [read_blocks t ~stripe j0 ~len] reads the contiguous data blocks
    [j0 .. j0+len-1] in one protocol operation (the multi-block
    extension of the paper's footnote 2). Costs one round trip on the
    fast path regardless of [len]; [len = m] degenerates to
    {!read_stripe}.
    @raise Invalid_argument if the range is out of bounds. *)

val write_blocks : t -> stripe:int -> int -> Bytes.t array -> unit outcome
(** [write_blocks t ~stripe j0 news] writes the contiguous data blocks
    starting at position [j0] in one protocol operation: a single
    Order&Read round fetches the range's current contents, and a
    single Modify round updates the range and folds every change into
    each parity block. [Array.length news = m] degenerates to
    {!write_stripe}.
    @raise Invalid_argument if the range is out of bounds or a block
    has the wrong size. *)

val recover : t -> stripe:int -> Bytes.t array outcome
(** Expose the recovery procedure directly (used by tests and by
    brick-rebuild tooling): reconstructs the most recent complete
    version and writes it back at a fresh timestamp. *)

val scrub : t -> stripe:int -> int list outcome
(** [scrub t ~stripe] audits the stripe's newest version end to end:
    it gathers every replica's current block, searches for the
    consistent codeword, and rewrites the stripe if any block
    disagrees with it — repairing silent media corruption (bit rot)
    that the normal read path, which trusts timestamps, cannot see.
    Returns the positions that were found corrupted (empty on a clean
    stripe). Identification is sound while at most [(n - m) / 2] blocks
    of the current version are corrupt — the classic Reed-Solomon
    error-correction bound: beyond it several codewords explain the
    observed blocks equally well. The scrub also refreshes the stripe
    at a new timestamp, so it doubles as the re-sync pass a recovered
    brick runs. *)

val hint_retry : t -> unit
(** Flag the {e next} operation started on this coordinator as one its
    caller will retry if it aborts: its observability span then ends
    with outcome [Retry] instead of [Abort]. The hint is consumed
    synchronously when the operation starts (before any suspension
    point), so it cannot leak across interleaved fibers. Used by
    {!with_retries} and by clients running their own retry loops. *)

val with_retries : ?attempts:int -> t -> (unit -> 'a outcome) -> 'a outcome
(** [with_retries t f] runs [f] and re-runs it after an abort, up to
    [attempts] times (default 3) in total. Retrying is the client-side
    protocol the paper assumes: each attempt is a fresh operation with
    a fresh timestamp, and because the coordinator's logical clock has
    observed the replicas' timestamps during the failed attempt, a
    retry that lost only to a stale clock succeeds immediately.
    Genuine write-write conflicts may still abort. [`Unavailable] is
    returned immediately without further attempts: a deadline expiry
    means a quorum is presumed unreachable, and a retry would only
    burn its own deadline against the same dead bricks. *)
