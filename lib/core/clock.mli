(** Timestamp sources ([newTS] in paper section 2.3).

    Two implementations, both satisfying UNIQUENESS (via the pid
    tie-break), MONOTONICITY, and PROGRESS:

    - {!logical}: a Lamport-style counter. {!observe} lets a
      coordinator fold timestamps seen in replies back into the
      counter, which keeps abort rates low without affecting safety.
    - {!realtime}: the simulation clock plus a fixed per-process skew,
      quantized to a resolution. This models the paper's
      loosely-synchronized clocks; with a large skew, a slow
      coordinator proposes stale timestamps and its operations abort,
      which is exactly the behaviour the abort-rate experiment (X1)
      measures. *)

type t

val logical : pid:int -> t

val realtime :
  Dessim.Engine.t -> pid:int -> skew:float -> resolution:float -> t
(** [realtime engine ~pid ~skew ~resolution] reads
    [(now + skew) / resolution] as the time component, bumped when
    necessary to stay strictly monotonic.
    @raise Invalid_argument if [resolution <= 0]. *)

val new_ts : t -> Timestamp.t
(** Strictly greater than any timestamp previously returned by this
    clock, and distinct from every timestamp of every other clock. *)

val observe : t -> Timestamp.t -> unit
(** Fold a remotely-seen timestamp into the clock: subsequent
    {!new_ts} results exceed it. No-op on {!realtime} clocks — real
    clocks do not jump forward, they abort and retry instead. *)

val pid : t -> int

val set_skew : t -> float -> unit
(** Step a {!realtime} clock's skew (the chaos nemesis's clock-skew
    fault). Monotonicity still holds — a skew step backwards just
    makes the clock lean on the [last + 1] bump until wall time
    catches up. No-op on {!logical} clocks. *)

val skew : t -> float
(** Current skew of a {!realtime} clock, [0.] for a {!logical} one;
    lets tests assert the nemesis restored what it skewed. *)
