(** Shared configuration of a storage-register deployment.

    One [Config.t] describes a set of bricks jointly serving many
    stripes. Each stripe is governed by a {!policy} — its erasure
    codec, its m-quorum parameters and the addresses of the bricks
    storing its blocks. A single-volume deployment uses one uniform
    policy; a FAB brick pool hosting several logical volumes with
    different redundancy schemes maps disjoint stripe ranges to
    different policies ({!Fab.Pool}). Every brick — replicas and
    coordinators — holds the same configuration, mirroring FAB's
    replicated volume-layout metadata. *)

type policy = {
  codec : Erasure.Codec.t;
  mq : Quorum.Mquorum.t;
  members : Simnet.Net.addr array;
      (** Index [i] stores encoded block [i] (data for [i < m], parity
          for [i >= m]). *)
}

val make_policy :
  codec:Erasure.Codec.t ->
  mq:Quorum.Mquorum.t ->
  members:Simnet.Net.addr array ->
  policy
(** @raise Invalid_argument if the codec's (m, n), the quorum system's
    (m, n) and the member count disagree. *)

type t = {
  policy_of : int -> policy;  (** stripe -> its policy *)
  block_size : int;
  runtime : Runtime.t;
      (** The execution substrate every layer schedules on: the
          deterministic simulator or the multicore backend. *)
  rpc : (Message.t, Message.t) Quorum.Rpc.t;
  metrics : Metrics.Registry.t;
  obs : Obs.t;
      (** Observability hub shared by every layer of the deployment; a
          fresh (disabled) hub by default. *)
  gc_enabled : bool;
      (** Send asynchronous garbage-collection messages after complete
          writes (paper section 5.1). *)
  optimized_modify : bool;
      (** Use the bandwidth-optimized block-write messages (section
          5.2): new block to p_j, precomputed delta to parities,
          timestamp-only to other data processes. *)
  ts_cache : bool;
      (** Let coordinators cache the timestamp of their own last
          full-quorum write per stripe and elide the order round of
          the next write when the cache is warm (a fall-back-safe
          round-trip optimization; see DESIGN section 4d). Only honored
          on stripes whose geometry satisfies [m > f] — elsewhere the
          coordinator silently keeps the 2-round path, since a partial
          unordered write could otherwise violate strict
          linearizability. *)
  deadline : float option;
      (** Per-operation deadline in sim-time units. With [Some d],
          every coordinator operation that has not completed [d] after
          its (possibly retried) attempt started fails fast with
          [`Unavailable] instead of retransmitting forever — the
          behavior when more than [n - quorum_size] bricks are
          unreachable. [None] (default) is the paper's model: wait
          forever. *)
  unsafe_skip_order : bool;
      (** Deliberately WRONG protocol variant for harness validation:
          replicas ignore the order phase entirely — Read and
          Order&Read answer [status = true] without checking (or
          recording) the order promise, and Write/Modify skip the
          [ts >= ord_ts] store barrier. Without the Order&Read
          sample-and-promise a recovery whose sample predates a
          concurrently completing write can roll the stripe back over
          it at a higher timestamp, erasing a completed write — a
          strict-linearizability violation the chaos harness must
          catch and shrink. Never enable outside tests. *)
}

val create :
  codec:Erasure.Codec.t ->
  mq:Quorum.Mquorum.t ->
  block_size:int ->
  runtime:Runtime.t ->
  rpc:(Message.t, Message.t) Quorum.Rpc.t ->
  metrics:Metrics.Registry.t ->
  layout:(int -> Simnet.Net.addr array) ->
  ?obs:Obs.t ->
  ?gc_enabled:bool ->
  ?optimized_modify:bool ->
  ?ts_cache:bool ->
  ?deadline:float ->
  ?unsafe_skip_order:bool ->
  unit ->
  t
(** Uniform deployment: every stripe uses the same codec and quorum
    system; [layout stripe] gives the members.
    @raise Invalid_argument if the codec's (m, n) disagree with the
    quorum system's, [block_size <= 0], or [deadline <= 0]. *)

val create_policied :
  policy_of:(int -> policy) ->
  block_size:int ->
  runtime:Runtime.t ->
  rpc:(Message.t, Message.t) Quorum.Rpc.t ->
  metrics:Metrics.Registry.t ->
  ?obs:Obs.t ->
  ?gc_enabled:bool ->
  ?optimized_modify:bool ->
  ?ts_cache:bool ->
  ?deadline:float ->
  ?unsafe_skip_order:bool ->
  unit ->
  t
(** Heterogeneous deployment: [policy_of stripe] may differ per
    stripe (multi-volume brick pools).
    @raise Invalid_argument if [block_size <= 0] or [deadline <= 0]. *)

val policy : t -> stripe:int -> policy
val codec : t -> stripe:int -> Erasure.Codec.t
val m : t -> stripe:int -> int
val n : t -> stripe:int -> int
val quorum_size : t -> stripe:int -> int

val fault_bound : t -> stripe:int -> int
(** The stripe's quorum-system fault bound [f = n - quorum_size]. *)

val members : t -> stripe:int -> Simnet.Net.addr list
val members_array : t -> stripe:int -> Simnet.Net.addr array

val pos_of_addr : t -> stripe:int -> Simnet.Net.addr -> int option
(** The block position a brick holds for a stripe, per the policy. *)
