module Ts = Timestamp

type stripe_state = { mutable ord_ts : Ts.t; log : Slog.t }

type t = {
  cfg : Config.t;
  brick : Brick.t;
  states : (int, stripe_state) Hashtbl.t;
  mutable gc_removed : int;
}

let brick t = t.brick

let state t stripe =
  match Hashtbl.find_opt t.states stripe with
  | Some s -> s
  | None ->
      let s =
        { ord_ts = Ts.low; log = Slog.create ~block_size:t.cfg.Config.block_size }
      in
      Hashtbl.add t.states stripe s;
      s

(* The replica's current notion of the most recent timestamp, carried
   on every reply so that coordinators with logical clocks can catch
   up after an abort. *)
let cur_ts st = Ts.max st.ord_ts (Slog.max_ts st.log)

let my_pos t stripe =
  Config.pos_of_addr t.cfg ~stripe (Brick.id t.brick)

let set_ord_ts t st ts =
  st.ord_ts <- ts;
  Brick.count_nvram_write t.brick

(* [Read, targets] — Algorithm 2, lines 38-44. *)
let handle_read t ctx stripe targets =
  let st = state t stripe in
  let val_ts = Slog.max_ts st.log in
  (* The unsafe_skip_order variant drops the write-order barrier: a
     replica with a pending Order promise (ord_ts > val_ts) answers as
     if its value were current, hiding in-flight writes from fast
     reads. Deliberately wrong — exists so the chaos harness has a
     real strict-linearizability violation to detect and shrink. *)
  let status =
    t.cfg.Config.unsafe_skip_order || Ts.( >= ) val_ts st.ord_ts
  in
  let block =
    if status && List.mem (Brick.id t.brick) targets then begin
      Brick.count_disk_read ~ctx t.brick;
      Some (snd (Slog.max_block st.log))
    end
    else None
  in
  Message.Read_r { status; val_ts; block; cur_ts = cur_ts st }

(* [Order, ts] — lines 45-48. Re-delivery of an Order already in force
   (ord_ts = ts) re-acknowledges. *)
let handle_order t stripe ts =
  let st = state t stripe in
  let fresh = Ts.( > ) ts (Slog.max_ts st.log) && Ts.( >= ) ts st.ord_ts in
  let status = fresh || Ts.equal st.ord_ts ts in
  if fresh && not (Ts.equal st.ord_ts ts) then set_ord_ts t st ts;
  Message.Order_r { status; cur_ts = cur_ts st }

(* [Order&Read, j, max, ts] — lines 49-56.

   The unsafe_skip_order variant degrades this round to a plain read:
   no freshness check and, crucially, no promise recorded. The
   atomicity of sample-and-promise is what lets a recovery invalidate
   the in-flight stores of the operation it read past; without the
   promise (and with the store-side barrier also skipped, below) a
   recovery whose sample predates a concurrently-completing write can
   roll the stripe back over it at a higher timestamp — erasing a
   completed write, the strict-linearizability violation the chaos
   harness exists to catch. *)
let handle_order_read t ctx stripe target max ts =
  let st = state t stripe in
  let skip = t.cfg.Config.unsafe_skip_order in
  let status =
    skip || (Ts.( > ) ts (Slog.max_ts st.log) && Ts.( >= ) ts st.ord_ts)
  in
  let lts = ref Ts.low and block = ref None in
  if status then begin
    if (not skip) && not (Ts.equal st.ord_ts ts) then set_ord_ts t st ts;
    let wanted =
      match target with
      | Message.All -> true
      | Message.Addr a -> a = Brick.id t.brick
      | Message.Addrs l -> List.mem (Brick.id t.brick) l
    in
    if wanted then
      match Slog.max_below st.log max with
      | Some (l, b) ->
          lts := l;
          block := b;
          if b <> None then Brick.count_disk_read ~ctx t.brick
      | None -> ()
  end;
  Message.Order_read_r { status; lts = !lts; block = !block; cur_ts = cur_ts st }

(* The unsafe_skip_order variant also drops the order barrier on the
   store side: a replica accepts a Write/Modify above its log head even
   when a newer Order promise stands ([ts < ord_ts]). The promise is
   what lets a recovery invalidate the in-flight stores of the
   operation it is superseding; without it, a write whose store round
   was overtaken by a read-triggered recovery can still gather a
   quorum of acks and report success to its client while the recovery
   (whose Order&Read sample predates those stores) rolls the stripe
   back at a higher timestamp — erasing a completed write. A later
   read then returns the older value: a strict-linearizability
   violation the chaos harness must detect and shrink. *)
let ord_barrier t st ts =
  t.cfg.Config.unsafe_skip_order || Ts.( >= ) ts st.ord_ts

(* [Write, b, ts] — lines 57-60. A re-delivered Write whose entry is
   already logged with the same content re-acknowledges; an entry at
   [ts] with different content (a Modify got there first, e.g. via a
   slow write-block reusing its fast phase's timestamp) refuses, as
   the paper's status check does — acknowledging would let two
   replicas disagree on the content of version [ts]. *)
let handle_write t ctx stripe block ts =
  let st = state t stripe in
  let already =
    match Slog.find st.log ts with
    | Some (Some existing) -> Bytes.equal existing block
    | Some None -> false
    | None -> false
  in
  let status =
    already
    || ((not (Slog.mem st.log ts))
       && Ts.( > ) ts (Slog.max_ts st.log)
       && ord_barrier t st ts)
  in
  if status && not already then begin
    Slog.add st.log ts (Some block);
    Brick.count_disk_write ~ctx t.brick;
    Brick.count_nvram_write t.brick
  end;
  Message.Write_r { status; cur_ts = cur_ts st }

(* Compute this replica's new log entry for a block-level write of
   data position [j]: the new block at p_j, a re-encoded parity block
   at parity processes, a timestamp-only marker elsewhere. The parity
   case allocates exactly one block (the log retains it); the delta is
   computed on a pooled scratch buffer. *)
let modify_entry t ctx st ~stripe ~pos ~j ~bj ~b =
  let m = Config.m t.cfg ~stripe in
  if pos = j then Some b
  else if pos >= m then begin
    Brick.count_disk_read ~ctx t.brick;
    let codec = Config.codec t.cfg ~stripe in
    let out = Bytes.copy (snd (Slog.max_block st.log)) in
    let d = Brick.scratch_take t.brick ~len:(Bytes.length b) in
    Erasure.Codec.delta_into ~old_data:bj ~new_data:b ~into:d;
    Erasure.Codec.apply_delta_into codec ~data_idx:j ~parity_idx:(pos - m)
      ~delta:d ~parity:out;
    Brick.scratch_release t.brick d;
    Some out
  end
  else None

(* [Modify, j, bj, b, tsj, ts] — Algorithm 3, lines 88-98. *)
let handle_modify t ctx stripe j bj b tsj ts =
  let st = state t stripe in
  let already = Slog.mem st.log ts in
  let status =
    already
    || (Ts.equal tsj (Slog.max_ts st.log) && ord_barrier t st ts)
  in
  if status && not already then begin
    match my_pos t stripe with
    | None -> ()
    | Some pos ->
        let entry = modify_entry t ctx st ~stripe ~pos ~j ~bj ~b in
        Slog.add st.log ts entry;
        if entry <> None then Brick.count_disk_write ~ctx t.brick;
        Brick.count_nvram_write t.brick
  end;
  Message.Modify_r { status; cur_ts = cur_ts st }

(* Bandwidth-optimized Modify (section 5.2): p_j receives the new
   block, parity processes receive the precomputed delta to fold into
   their current block, other data processes receive no payload. *)
let handle_modify_delta t ctx stripe j payload tsj ts =
  let st = state t stripe in
  let already = Slog.mem st.log ts in
  let status =
    already
    || (Ts.equal tsj (Slog.max_ts st.log) && ord_barrier t st ts)
  in
  if status && not already then begin
    match my_pos t stripe with
    | None -> ()
    | Some pos ->
        let m = Config.m t.cfg ~stripe in
        let entry =
          match payload with
          | Some payload when pos = j -> Some payload
          | Some payload when pos >= m ->
              Brick.count_disk_read ~ctx t.brick;
              let old_parity = snd (Slog.max_block st.log) in
              Some
                (Erasure.Codec.apply_delta
                   (Config.codec t.cfg ~stripe)
                   ~data_idx:j ~parity_idx:(pos - m) ~delta:payload
                   ~old_parity)
          | Some _ | None -> None
        in
        Slog.add st.log ts entry;
        if entry <> None then Brick.count_disk_write ~ctx t.brick;
        Brick.count_nvram_write t.brick
  end;
  Message.Modify_r { status; cur_ts = cur_ts st }

(* [Modify_multi, j0, olds, news, tsj, ts] — the footnote-2 extension
   of the Modify handler to a contiguous range of data blocks. A data
   process inside the range stores its new block, a parity process
   folds every block's change into its current parity block, and data
   processes outside the range log a timestamp-only marker. *)
let handle_modify_multi t ctx stripe j0 olds news tsj ts =
  let st = state t stripe in
  let already = Slog.mem st.log ts in
  let status =
    already
    || (Ts.equal tsj (Slog.max_ts st.log) && ord_barrier t st ts)
  in
  if status && not already then begin
    match my_pos t stripe with
    | None -> ()
    | Some pos ->
        let m = Config.m t.cfg ~stripe in
        let len = Array.length olds in
        let entry =
          if pos >= j0 && pos < j0 + len then Some news.(pos - j0)
          else if pos >= m then begin
            Brick.count_disk_read ~ctx t.brick;
            (* Fold every block's change into one fresh parity buffer
               (the log retains it). The per-block deltas land in pooled
               scratch buffers and are applied in one batched pass, so
               the parity block is read and written once however many
               blocks the write covers. *)
            let codec = Config.codec t.cfg ~stripe in
            let out = Bytes.copy (snd (Slog.max_block st.log)) in
            let blen = Bytes.length out in
            let ds =
              Array.init len (fun _ -> Brick.scratch_take t.brick ~len:blen)
            in
            let deltas =
              Array.mapi
                (fun i d ->
                  Erasure.Codec.delta_into ~old_data:olds.(i)
                    ~new_data:news.(i) ~into:d;
                  (j0 + i, d))
                ds
            in
            Erasure.Codec.apply_deltas_into codec ~parity_idx:(pos - m)
              ~deltas ~parity:out;
            Array.iter (Brick.scratch_release t.brick) ds;
            Some out
          end
          else None
        in
        Slog.add st.log ts entry;
        if entry <> None then Brick.count_disk_write ~ctx t.brick;
        Brick.count_nvram_write t.brick
  end;
  Message.Modify_r { status; cur_ts = cur_ts st }

(* [Gc, before] — section 5.1. One-way; no reply. *)
let handle_gc t stripe before =
  match Hashtbl.find_opt t.states stripe with
  | None -> ()
  | Some st -> t.gc_removed <- t.gc_removed + Slog.gc st.log ~before

let dispatch t ctx msg =
  match msg with
    | Message.Read { stripe; targets } ->
        Some (handle_read t ctx stripe targets)
    | Message.Order { stripe; ts } -> Some (handle_order t stripe ts)
    | Message.Order_read { stripe; target; max; ts } ->
        Some (handle_order_read t ctx stripe target max ts)
    | Message.Write { stripe; block; ts } ->
        Some (handle_write t ctx stripe block ts)
    | Message.Modify { stripe; j; bj; b; tsj; ts } ->
        Some (handle_modify t ctx stripe j bj b tsj ts)
    | Message.Modify_delta { stripe; j; payload; tsj; ts } ->
        Some (handle_modify_delta t ctx stripe j payload tsj ts)
    | Message.Modify_multi { stripe; j0; olds; news; tsj; ts } ->
        Some (handle_modify_multi t ctx stripe j0 olds news tsj ts)
    | Message.Gc { stripe; before } ->
        handle_gc t stripe before;
        None
    | Message.Read_r _ | Message.Order_r _ | Message.Order_read_r _
    | Message.Write_r _ | Message.Modify_r _ ->
        None

let handle t ~src ~ctx (msg : Message.t) : Message.t option =
  ignore src;
  if not (Brick.is_alive t.brick) then begin
    (* Delivered to a crashed process: dropped on the floor, but the
       wire carried it — account it under net.drops.dead. *)
    Quorum.Rpc.count_dead_drop t.cfg.Config.rpc;
    None
  end
  else dispatch t ctx msg

let create cfg ~brick =
  let t = { cfg; brick; states = Hashtbl.create 64; gc_removed = 0 } in
  Quorum.Rpc.serve cfg.Config.rpc ~addr:(Brick.id brick)
    (fun ~src ~ctx msg -> handle t ~src ~ctx msg);
  t

let ord_ts t ~stripe =
  match Hashtbl.find_opt t.states stripe with
  | Some st -> st.ord_ts
  | None -> Ts.low

let log t ~stripe =
  Option.map (fun st -> st.log) (Hashtbl.find_opt t.states stripe)

let stripes t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.states [] |> List.sort compare

let gc_removed t = t.gc_removed
