type t = {
  engine : Dessim.Engine.t;
  net : ((Message.t, Message.t) Quorum.Rpc.envelope) Simnet.Net.t;
  rpc : (Message.t, Message.t) Quorum.Rpc.t;
  metrics : Metrics.Registry.t;
  obs : Obs.t;
  cfg : Config.t;
  bricks : Brick.t array;
  replicas : Replica.t array;
  coordinators : Coordinator.t array;
}

type clock_kind =
  | Logical
  | Realtime of { skew_of : int -> float; resolution : float }

let default_codec ~m ~n =
  if m = 1 then Erasure.Codec.replication ~n ()
  else if n = m + 1 then Erasure.Codec.parity ~m ()
  else Erasure.Codec.rs ~m ~n ()

(* Shared wiring: engine, network, RPC, bricks, replicas and
   coordinators around a configuration built by [make_cfg]. *)
let wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce ~make_cfg () =
  let engine = Dessim.Engine.create ~seed () in
  let metrics = Metrics.Registry.create () in
  let obs = Obs.create () in
  (* Sample the engine's event-queue depth only when someone listens:
     the unobserved engine keeps its one-branch-per-event fast path. *)
  Obs.on_enable obs (fun () ->
      Dessim.Engine.set_observer engine
        (Some
           (fun ~now ~pending ->
             if Obs.enabled obs then
               Obs.emit obs
                 {
                   Obs.time = now;
                   actor = Obs.Sim;
                   op = -1;
                   phase = None;
                   kind = Obs.Queue_depth { depth = pending };
                 })));
  let net =
    Simnet.Net.create ~metrics ~obs engine ~config:net_config ~n:nbricks
  in
  let rpc =
    Quorum.Rpc.create ~net ~metrics ~req_bytes:Message.bytes_on_wire
      ~rep_bytes:Message.bytes_on_wire ~req_label:Message.label
      ~rep_label:Message.label ?retry_every ?retry_backoff ?retry_cap
      ?coalesce
      ~grace:(net_config.Simnet.Net.delay +. net_config.Simnet.Net.jitter)
      ()
  in
  let cfg = make_cfg ~engine ~rpc ~metrics ~obs in
  let bricks =
    Array.init nbricks (fun id -> Brick.create ~metrics ~obs engine ~id)
  in
  let replicas = Array.map (fun b -> Replica.create cfg ~brick:b) bricks in
  let coordinators =
    Array.map
      (fun b ->
        let pid = Brick.id b in
        let clk =
          match clock with
          | Logical -> Clock.logical ~pid
          | Realtime { skew_of; resolution } ->
              Clock.realtime engine ~pid ~skew:(skew_of pid) ~resolution
        in
        Coordinator.create cfg ~brick:b ~clock:clk)
      bricks
  in
  { engine; net; rpc; metrics; obs; cfg; bricks; replicas; coordinators }

let create ?(seed = 42) ?(net_config = Simnet.Net.default_config) ?bricks
    ?layout ?(block_size = 1024) ?(clock = Logical) ?gc_enabled
    ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order ?coalesce
    ?retry_every ?retry_backoff ?retry_cap ~m ~n () =
  let nbricks = match bricks with Some b -> b | None -> n in
  if nbricks < n then invalid_arg "Core.Cluster.create: bricks < n";
  let layout =
    match layout with
    | Some f -> f
    | None ->
        if nbricks = n then fun _ -> Array.init n (fun i -> i)
        else fun s -> Array.init n (fun i -> (s + i) mod nbricks)
  in
  let codec = default_codec ~m ~n in
  let mq = Quorum.Mquorum.create ~n ~m in
  wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce
    ~make_cfg:(fun ~engine ~rpc ~metrics ~obs ->
      Config.create ~codec ~mq ~block_size ~engine ~rpc ~metrics ~layout
        ~obs ?gc_enabled ?optimized_modify ?ts_cache ?deadline
        ?unsafe_skip_order ())
    ()

let create_policied ?(seed = 42) ?(net_config = Simnet.Net.default_config)
    ?(block_size = 1024) ?(clock = Logical) ?gc_enabled ?optimized_modify
    ?ts_cache ?deadline ?unsafe_skip_order ?coalesce ?retry_every
    ?retry_backoff ?retry_cap ~bricks:nbricks ~policy_of () =
  if nbricks < 1 then invalid_arg "Core.Cluster.create_policied: no bricks";
  wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce
    ~make_cfg:(fun ~engine ~rpc ~metrics ~obs ->
      Config.create_policied ~policy_of ~block_size ~engine ~rpc ~metrics
        ~obs ?gc_enabled ?optimized_modify ?ts_cache ?deadline
        ?unsafe_skip_order ())
    ()

let run ?(horizon = 100_000.) t =
  Dessim.Engine.run ~until:(Dessim.Engine.now t.engine +. horizon) t.engine

let spawn ?(coord = 0) t f =
  Dessim.Fiber.spawn (fun () -> f t.coordinators.(coord))

let run_op ?(coord = 0) ?horizon t f =
  let result = ref None in
  spawn ~coord t (fun c -> result := Some (f c));
  run ?horizon t;
  !result

let crash t i = Brick.crash t.bricks.(i)
let recover t i = Brick.recover t.bricks.(i)
let snapshot t = Metrics.Snapshot.take t.metrics
