type backend =
  | Sim
  | Mc of {
      pool : Runtime_mc.t;
      boxes :
        (int * (Message.t, Message.t) Quorum.Rpc.envelope) Runtime.Mailbox.t
        array;
    }

type t = {
  engine : Dessim.Engine.t;
  runtime : Runtime.t;
  backend : backend;
  net : ((Message.t, Message.t) Quorum.Rpc.envelope) Simnet.Net.t;
  rpc : (Message.t, Message.t) Quorum.Rpc.t;
  metrics : Metrics.Registry.t;
  obs : Obs.t;
  cfg : Config.t;
  bricks : Brick.t array;
  replicas : Replica.t array;
  coordinators : Coordinator.t array;
}

type clock_kind =
  | Logical
  | Realtime of { skew_of : int -> float; resolution : float }

let default_codec ~m ~n =
  if m = 1 then Erasure.Codec.replication ~n ()
  else if n = m + 1 then Erasure.Codec.parity ~m ()
  else Erasure.Codec.rs ~m ~n ()

(* Shared wiring: engine, network, RPC, bricks, replicas and
   coordinators around a configuration built by [make_cfg]. *)
let wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce ~make_cfg () =
  let engine = Dessim.Engine.create ~seed () in
  let runtime = Runtime_sim.of_engine engine in
  let metrics = Metrics.Registry.create () in
  let obs = Obs.create () in
  (* Sample the engine's event-queue depth only when someone listens:
     the unobserved engine keeps its one-branch-per-event fast path. *)
  Obs.on_enable obs (fun () ->
      Dessim.Engine.set_observer engine
        (Some
           (fun ~now ~pending ->
             if Obs.enabled obs then
               Obs.emit obs
                 {
                   Obs.time = now;
                   actor = Obs.Sim;
                   op = -1;
                   phase = None;
                   kind = Obs.Queue_depth { depth = pending };
                 })));
  let net =
    Simnet.Net.create ~metrics ~obs engine ~config:net_config ~n:nbricks
  in
  let rpc =
    Quorum.Rpc.create ~rt:runtime ~transport:(Quorum.Rpc.of_net net) ~metrics
      ~req_bytes:Message.bytes_on_wire ~rep_bytes:Message.bytes_on_wire
      ~req_label:Message.label ~rep_label:Message.label ?retry_every
      ?retry_backoff ?retry_cap ?coalesce
      ~grace:(net_config.Simnet.Net.delay +. net_config.Simnet.Net.jitter)
      ()
  in
  let cfg = make_cfg ~runtime ~rpc ~metrics ~obs in
  let bricks =
    Array.init nbricks (fun id -> Brick.create ~metrics ~obs runtime ~id)
  in
  let replicas = Array.map (fun b -> Replica.create cfg ~brick:b) bricks in
  let coordinators =
    Array.map
      (fun b ->
        let pid = Brick.id b in
        let clk =
          match clock with
          | Logical -> Clock.logical ~pid
          | Realtime { skew_of; resolution } ->
              Clock.realtime engine ~pid ~skew:(skew_of pid) ~resolution
        in
        Coordinator.create cfg ~brick:b ~clock:clk)
      bricks
  in
  {
    engine;
    runtime;
    backend = Sim;
    net;
    rpc;
    metrics;
    obs;
    cfg;
    bricks;
    replicas;
    coordinators;
  }

let create ?(seed = 42) ?(net_config = Simnet.Net.default_config) ?bricks
    ?layout ?(block_size = 1024) ?(clock = Logical) ?gc_enabled
    ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order ?coalesce
    ?retry_every ?retry_backoff ?retry_cap ~m ~n () =
  let nbricks = match bricks with Some b -> b | None -> n in
  if nbricks < n then invalid_arg "Core.Cluster.create: bricks < n";
  let layout =
    match layout with
    | Some f -> f
    | None ->
        if nbricks = n then fun _ -> Array.init n (fun i -> i)
        else fun s -> Array.init n (fun i -> (s + i) mod nbricks)
  in
  let codec = default_codec ~m ~n in
  let mq = Quorum.Mquorum.create ~n ~m in
  wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce
    ~make_cfg:(fun ~runtime ~rpc ~metrics ~obs ->
      Config.create ~codec ~mq ~block_size ~runtime ~rpc ~metrics ~layout
        ~obs ?gc_enabled ?optimized_modify ?ts_cache ?deadline
        ?unsafe_skip_order ())
    ()

let create_policied ?(seed = 42) ?(net_config = Simnet.Net.default_config)
    ?(block_size = 1024) ?(clock = Logical) ?gc_enabled ?optimized_modify
    ?ts_cache ?deadline ?unsafe_skip_order ?coalesce ?retry_every
    ?retry_backoff ?retry_cap ~bricks:nbricks ~policy_of () =
  if nbricks < 1 then invalid_arg "Core.Cluster.create_policied: no bricks";
  wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce
    ~make_cfg:(fun ~runtime ~rpc ~metrics ~obs ->
      Config.create_policied ~policy_of ~block_size ~runtime ~rpc ~metrics
        ~obs ?gc_enabled ?optimized_modify ?ts_cache ?deadline
        ?unsafe_skip_order ())
    ()

(* --- multicore deployment ------------------------------------------ *)

(* In-process transport for the multicore backend: one mailbox per
   address, one daemon receive loop per registered address. The loop
   serializes the address's handler invocations — replica state needs
   no further locking — while loops of different bricks run on
   different pool threads, in parallel across domains. *)
let mc_transport rt pool ~metrics ~n =
  let msgs = Metrics.Registry.counter metrics "net.msgs" in
  let bytes = Metrics.Registry.counter metrics "net.bytes" in
  let msgs_bg = Metrics.Registry.counter metrics "net.msgs.bg" in
  let bytes_bg = Metrics.Registry.counter metrics "net.bytes.bg" in
  let dead = Metrics.Registry.counter metrics "net.drops.dead" in
  let boxes = Array.init n (fun _ -> Runtime.Mailbox.create rt) in
  let handlers = Array.make n None in
  let xregister addr h =
    let fresh = handlers.(addr) = None in
    handlers.(addr) <- Some h;
    if fresh then
      Runtime_mc.spawn_daemon pool (fun () ->
          let rec loop () =
            match Runtime.Mailbox.recv boxes.(addr) with
            | None -> ()  (* closed: cluster shutdown *)
            | Some (src, msg) ->
                (match handlers.(addr) with
                | None -> ()
                | Some h -> (
                    try h ~src msg with
                    | Runtime.Cancelled -> ()
                    | exn ->
                        Printf.eprintf
                          "cluster(mc): handler %d raised %s\n%!" addr
                          (Printexc.to_string exn)));
                loop ()
          in
          loop ())
  in
  let xsend ~background ~ctx:_ ~info:_ ~src ~dst ~bytes_on_wire msg =
    Metrics.Counter.incr (if background then msgs_bg else msgs);
    Metrics.Counter.incr
      ~by:(float_of_int bytes_on_wire)
      (if background then bytes_bg else bytes);
    Runtime.Mailbox.send boxes.(dst) (src, msg)
  in
  let transport =
    {
      Quorum.Rpc.xn = n;
      xobs = Obs.create ();
      xsend;
      xregister;
      xdead_drop = (fun () -> Metrics.Counter.incr dead);
    }
  in
  (transport, boxes)

let create_mc ?(domains = 1) ?bricks ?layout ?(block_size = 1024) ?gc_enabled
    ?optimized_modify ?ts_cache ?deadline ?(retry_every = 0.05)
    ?retry_backoff ?retry_cap ?coalesce ?shards ~m ~n () =
  let nbricks = match bricks with Some b -> b | None -> n in
  if nbricks < n then invalid_arg "Core.Cluster.create_mc: bricks < n";
  let layout =
    match layout with
    | Some f -> f
    | None ->
        if nbricks = n then fun _ -> Array.init n (fun i -> i)
        else fun s -> Array.init n (fun i -> (s + i) mod nbricks)
  in
  let pool = Runtime_mc.create ~domains () in
  let runtime = Runtime_mc.runtime pool in
  let metrics = Metrics.Registry.create () in
  let obs = Obs.create () in
  let transport, boxes = mc_transport runtime pool ~metrics ~n:nbricks in
  let transport = { transport with Quorum.Rpc.xobs = obs } in
  let rpc =
    Quorum.Rpc.create ~rt:runtime ~transport ~metrics
      ~req_bytes:Message.bytes_on_wire ~rep_bytes:Message.bytes_on_wire
      ~req_label:Message.label ~rep_label:Message.label ~retry_every
      ?retry_backoff ?retry_cap ?coalesce ?shards
      ~grace:(retry_every /. 4.) ()
  in
  let codec = default_codec ~m ~n in
  let mq = Quorum.Mquorum.create ~n ~m in
  let cfg =
    Config.create ~codec ~mq ~block_size ~runtime ~rpc ~metrics ~layout ~obs
      ?gc_enabled ?optimized_modify ?ts_cache ?deadline ()
  in
  let bricks =
    Array.init nbricks (fun id -> Brick.create ~metrics ~obs runtime ~id)
  in
  let replicas = Array.map (fun b -> Replica.create cfg ~brick:b) bricks in
  let coordinators =
    Array.map
      (fun b ->
        Coordinator.create cfg ~brick:b ~clock:(Clock.logical ~pid:(Brick.id b)))
      bricks
  in
  (* Placeholder engine/net so the record keeps its sim-facing fields;
     nothing ever runs or routes through them on this backend. *)
  let engine = Dessim.Engine.create ~seed:0 () in
  let net =
    Simnet.Net.create
      ~metrics:(Metrics.Registry.create ())
      engine
      ~config:Simnet.Net.default_config ~n:1
  in
  {
    engine;
    runtime;
    backend = Mc { pool; boxes };
    net;
    rpc;
    metrics;
    obs;
    cfg;
    bricks;
    replicas;
    coordinators;
  }

let run ?(horizon = 100_000.) t =
  match t.backend with
  | Sim ->
      Dessim.Engine.run ~until:(Dessim.Engine.now t.engine +. horizon)
        t.engine
  | Mc { pool; _ } -> Runtime_mc.await_idle pool

let await_quiesce t =
  match t.backend with
  | Sim -> run t
  | Mc { pool; _ } -> Runtime_mc.await_idle pool

let shutdown t =
  match t.backend with
  | Sim -> ()
  | Mc { pool; boxes } ->
      Array.iter Runtime.Mailbox.close boxes;
      Runtime_mc.shutdown pool;
      (* Materialize the runtime's hot-path counters so snapshots and
         benchmark reports see them alongside the protocol metrics.
         reset+incr: shutdown is idempotent, the stats are absolutes. *)
      let set name v =
        let c = Metrics.Registry.counter t.metrics name in
        Metrics.Counter.reset c;
        Metrics.Counter.incr ~by:v c
      in
      let ws = Runtime_mc.wheel_stats pool in
      set "runtime.wheel.max_depth" (float_of_int ws.Runtime_mc.max_depth);
      set "runtime.wheel.fired" (float_of_int ws.Runtime_mc.fired);
      set "runtime.wheel.purged" (float_of_int ws.Runtime_mc.purged);
      let batches, drained =
        Array.fold_left
          (fun (b, m) box ->
            let b', m' = Runtime.Mailbox.drain_stats box in
            (b + b', m + m'))
          (0, 0) boxes
      in
      set "runtime.mailbox.drain.batches" (float_of_int batches);
      set "runtime.mailbox.drain.msgs" (float_of_int drained)

let is_mc t = match t.backend with Sim -> false | Mc _ -> true

let spawn ?(coord = 0) t f =
  Runtime.spawn t.runtime (fun () -> f t.coordinators.(coord))

let run_op ?(coord = 0) ?horizon t f =
  let result = ref None in
  spawn ~coord t (fun c -> result := Some (f c));
  run ?horizon t;
  !result

let crash t i = Brick.crash t.bricks.(i)
let recover t i = Brick.recover t.bricks.(i)
let snapshot t = Metrics.Snapshot.take t.metrics
