(* Multicore backend plumbing. [boxes] elements are swapped on brick
   restart (crash closes a box; recover installs a fresh one), so the
   send path re-reads the array on every message: a send racing a
   restart lands in either the closed old box (lost — the brick was
   down) or the new one. [exits.(i)] is the gate the address's current
   receive loop opens when it drains out and exits; recover awaits it
   before installing the replacement mailbox. [lifecycle] serializes
   crash/recover state flips. *)
type mc_net = {
  pool : Runtime_mc.t;
  fnet : Faultnet.t;
  boxes :
    (int * (Message.t, Message.t) Quorum.Rpc.envelope) Runtime.Mailbox.t
    array;
  exits : Runtime.gate option array;
  handlers :
    (src:int -> (Message.t, Message.t) Quorum.Rpc.envelope -> unit) option
    array;
  lifecycle : Mutex.t;
  mutable rcoords : Coordinator.t array;
      (* per-brick recovery coordinators (pids offset past the brick
         range so their timestamps never collide with client
         coordinators'); filled once wiring completes *)
}

type backend = Sim | Mc of mc_net

type t = {
  engine : Dessim.Engine.t;
  runtime : Runtime.t;
  backend : backend;
  net : ((Message.t, Message.t) Quorum.Rpc.envelope) Simnet.Net.t;
  rpc : (Message.t, Message.t) Quorum.Rpc.t;
  metrics : Metrics.Registry.t;
  obs : Obs.t;
  cfg : Config.t;
  bricks : Brick.t array;
  replicas : Replica.t array;
  coordinators : Coordinator.t array;
}

type clock_kind =
  | Logical
  | Realtime of { skew_of : int -> float; resolution : float }

let default_codec ~m ~n =
  if m = 1 then Erasure.Codec.replication ~n ()
  else if n = m + 1 then Erasure.Codec.parity ~m ()
  else Erasure.Codec.rs ~m ~n ()

(* Shared wiring: engine, network, RPC, bricks, replicas and
   coordinators around a configuration built by [make_cfg]. *)
let wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce ~make_cfg () =
  let engine = Dessim.Engine.create ~seed () in
  let runtime = Runtime_sim.of_engine engine in
  let metrics = Metrics.Registry.create () in
  let obs = Obs.create () in
  (* Sample the engine's event-queue depth only when someone listens:
     the unobserved engine keeps its one-branch-per-event fast path. *)
  Obs.on_enable obs (fun () ->
      Dessim.Engine.set_observer engine
        (Some
           (fun ~now ~pending ->
             if Obs.enabled obs then
               Obs.emit obs
                 {
                   Obs.time = now;
                   actor = Obs.Sim;
                   op = -1;
                   phase = None;
                   kind = Obs.Queue_depth { depth = pending };
                 })));
  let net =
    Simnet.Net.create ~metrics ~obs engine ~config:net_config ~n:nbricks
  in
  let rpc =
    Quorum.Rpc.create ~rt:runtime ~transport:(Quorum.Rpc.of_net net) ~metrics
      ~req_bytes:Message.bytes_on_wire ~rep_bytes:Message.bytes_on_wire
      ~req_label:Message.label ~rep_label:Message.label ?retry_every
      ?retry_backoff ?retry_cap ?coalesce
      ~grace:(net_config.Simnet.Net.delay +. net_config.Simnet.Net.jitter)
      ()
  in
  let cfg = make_cfg ~runtime ~rpc ~metrics ~obs in
  let bricks =
    Array.init nbricks (fun id -> Brick.create ~metrics ~obs runtime ~id)
  in
  let replicas = Array.map (fun b -> Replica.create cfg ~brick:b) bricks in
  let coordinators =
    Array.map
      (fun b ->
        let pid = Brick.id b in
        let clk =
          match clock with
          | Logical -> Clock.logical ~pid
          | Realtime { skew_of; resolution } ->
              Clock.realtime engine ~pid ~skew:(skew_of pid) ~resolution
        in
        Coordinator.create cfg ~brick:b ~clock:clk)
      bricks
  in
  {
    engine;
    runtime;
    backend = Sim;
    net;
    rpc;
    metrics;
    obs;
    cfg;
    bricks;
    replicas;
    coordinators;
  }

let create ?(seed = 42) ?(net_config = Simnet.Net.default_config) ?bricks
    ?layout ?(block_size = 1024) ?(clock = Logical) ?gc_enabled
    ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order ?coalesce
    ?retry_every ?retry_backoff ?retry_cap ~m ~n () =
  let nbricks = match bricks with Some b -> b | None -> n in
  if nbricks < n then invalid_arg "Core.Cluster.create: bricks < n";
  let layout =
    match layout with
    | Some f -> f
    | None ->
        if nbricks = n then fun _ -> Array.init n (fun i -> i)
        else fun s -> Array.init n (fun i -> (s + i) mod nbricks)
  in
  let codec = default_codec ~m ~n in
  let mq = Quorum.Mquorum.create ~n ~m in
  wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce
    ~make_cfg:(fun ~runtime ~rpc ~metrics ~obs ->
      Config.create ~codec ~mq ~block_size ~runtime ~rpc ~metrics ~layout
        ~obs ?gc_enabled ?optimized_modify ?ts_cache ?deadline
        ?unsafe_skip_order ())
    ()

let create_policied ?(seed = 42) ?(net_config = Simnet.Net.default_config)
    ?(block_size = 1024) ?(clock = Logical) ?gc_enabled ?optimized_modify
    ?ts_cache ?deadline ?unsafe_skip_order ?coalesce ?retry_every
    ?retry_backoff ?retry_cap ~bricks:nbricks ~policy_of () =
  if nbricks < 1 then invalid_arg "Core.Cluster.create_policied: no bricks";
  wire ~seed ~net_config ~nbricks ~clock ~retry_every ?retry_backoff
    ?retry_cap ?coalesce
    ~make_cfg:(fun ~runtime ~rpc ~metrics ~obs ->
      Config.create_policied ~policy_of ~block_size ~runtime ~rpc ~metrics
        ~obs ?gc_enabled ?optimized_modify ?ts_cache ?deadline
        ?unsafe_skip_order ())
    ()

(* --- multicore deployment ------------------------------------------ *)

(* Spawn the receive loop for one address. The loop captures its
   mailbox by value: when [crash] closes it the loop drains the
   stragglers (into a dead handler — the RPC layer drops them) and
   exits, opening [exits.(addr)] so [recover] knows the old
   generation is gone and a replacement loop can take over the
   address. *)
let mc_spawn_loop rt (mc : mc_net) addr =
  let box = mc.boxes.(addr) in
  let exit_gate = rt.Runtime.gate () in
  mc.exits.(addr) <- Some exit_gate;
  Runtime_mc.spawn_daemon mc.pool (fun () ->
      let rec loop () =
        match Runtime.Mailbox.recv box with
        | None -> () (* closed: brick crash or cluster shutdown *)
        | Some (src, msg) ->
            (match mc.handlers.(addr) with
            | None -> ()
            | Some h -> (
                try h ~src msg with
                | Runtime.Cancelled -> ()
                | exn ->
                    Printf.eprintf "cluster(mc): handler %d raised %s\n%!"
                      addr (Printexc.to_string exn)));
            loop ()
      in
      loop ();
      exit_gate.Runtime.open_ ())

(* In-process transport for the multicore backend: one mailbox per
   address, one daemon receive loop per registered address. The loop
   serializes the address's handler invocations — replica state needs
   no further locking — while loops of different bricks run on
   different pool threads, in parallel across domains. Every send
   consults the {!Faultnet} snapshot, so the chaos stack can drop,
   cut, or delay messages on this backend too. *)
let mc_transport rt pool ~metrics ~n =
  let msgs = Metrics.Registry.counter metrics "net.msgs" in
  let bytes = Metrics.Registry.counter metrics "net.bytes" in
  let msgs_bg = Metrics.Registry.counter metrics "net.msgs.bg" in
  let bytes_bg = Metrics.Registry.counter metrics "net.bytes.bg" in
  let drops = Metrics.Registry.counter metrics "net.drops" in
  let dead = Metrics.Registry.counter metrics "net.drops.dead" in
  let mc =
    {
      pool;
      fnet = Faultnet.create ~n;
      boxes = Array.init n (fun _ -> Runtime.Mailbox.create rt);
      exits = Array.make n None;
      handlers = Array.make n None;
      lifecycle = Mutex.create ();
      rcoords = [||];
    }
  in
  let xregister addr h =
    let fresh = mc.handlers.(addr) = None in
    mc.handlers.(addr) <- Some h;
    if fresh then mc_spawn_loop rt mc addr
  in
  let xsend ~background ~ctx:_ ~info:_ ~src ~dst ~bytes_on_wire msg =
    Metrics.Counter.incr (if background then msgs_bg else msgs);
    Metrics.Counter.incr
      ~by:(float_of_int bytes_on_wire)
      (if background then bytes_bg else bytes);
    match Faultnet.decide mc.fnet ~src ~dst with
    | Faultnet.Deliver -> Runtime.Mailbox.send mc.boxes.(dst) (src, msg)
    | Faultnet.Dropped | Faultnet.Cut -> Metrics.Counter.incr drops
    | Faultnet.Delay d ->
        (* Delayed delivery rides the timer wheel; Mailbox.send never
           blocks, so running it inline on the timer thread is safe. *)
        ignore
          (Runtime.timer rt ~delay:d (fun () ->
               Runtime.Mailbox.send mc.boxes.(dst) (src, msg)))
  in
  let transport =
    {
      Quorum.Rpc.xn = n;
      xobs = Obs.create ();
      xsend;
      xregister;
      xdead_drop = (fun () -> Metrics.Counter.incr dead);
    }
  in
  (transport, mc)

let create_mc ?(domains = 1) ?bricks ?layout ?(block_size = 1024) ?gc_enabled
    ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order
    ?(retry_every = 0.05) ?retry_backoff ?retry_cap ?coalesce ?shards ~m ~n
    () =
  let nbricks = match bricks with Some b -> b | None -> n in
  if nbricks < n then invalid_arg "Core.Cluster.create_mc: bricks < n";
  let layout =
    match layout with
    | Some f -> f
    | None ->
        if nbricks = n then fun _ -> Array.init n (fun i -> i)
        else fun s -> Array.init n (fun i -> (s + i) mod nbricks)
  in
  let pool = Runtime_mc.create ~domains () in
  let runtime = Runtime_mc.runtime pool in
  let metrics = Metrics.Registry.create () in
  let obs = Obs.create () in
  let transport, mc = mc_transport runtime pool ~metrics ~n:nbricks in
  let transport = { transport with Quorum.Rpc.xobs = obs } in
  let rpc =
    Quorum.Rpc.create ~rt:runtime ~transport ~metrics
      ~req_bytes:Message.bytes_on_wire ~rep_bytes:Message.bytes_on_wire
      ~req_label:Message.label ~rep_label:Message.label ~retry_every
      ?retry_backoff ?retry_cap ?coalesce ?shards
      ~grace:(retry_every /. 4.) ()
  in
  let codec = default_codec ~m ~n in
  let mq = Quorum.Mquorum.create ~n ~m in
  let cfg =
    Config.create ~codec ~mq ~block_size ~runtime ~rpc ~metrics ~layout ~obs
      ?gc_enabled ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order ()
  in
  let bricks =
    Array.init nbricks (fun id -> Brick.create ~metrics ~obs runtime ~id)
  in
  let replicas = Array.map (fun b -> Replica.create cfg ~brick:b) bricks in
  let coordinators =
    Array.map
      (fun b ->
        Coordinator.create cfg ~brick:b ~clock:(Clock.logical ~pid:(Brick.id b)))
      bricks
  in
  (* Recovery coordinators: [recover] replays the paper's section 4
     recovery reads through these after a brick restart. Their clock
     pids sit past the brick range so a recovery write-back can never
     mint the same (time, pid) timestamp as a concurrently running
     client coordinator. *)
  mc.rcoords <-
    Array.map
      (fun b ->
        Coordinator.create cfg ~brick:b
          ~clock:(Clock.logical ~pid:(nbricks + Brick.id b)))
      bricks;
  (* Placeholder engine/net so the record keeps its sim-facing fields;
     nothing ever runs or routes through them on this backend. *)
  let engine = Dessim.Engine.create ~seed:0 () in
  let net =
    Simnet.Net.create
      ~metrics:(Metrics.Registry.create ())
      engine
      ~config:Simnet.Net.default_config ~n:1
  in
  {
    engine;
    runtime;
    backend = Mc mc;
    net;
    rpc;
    metrics;
    obs;
    cfg;
    bricks;
    replicas;
    coordinators;
  }

let run ?(horizon = 100_000.) t =
  match t.backend with
  | Sim ->
      Dessim.Engine.run ~until:(Dessim.Engine.now t.engine +. horizon)
        t.engine
  | Mc { pool; _ } -> Runtime_mc.await_idle pool

let await_quiesce t =
  match t.backend with
  | Sim -> run t
  | Mc { pool; _ } -> Runtime_mc.await_idle pool

let try_quiesce ?timeout t =
  match t.backend with
  | Sim ->
      run t;
      true
  | Mc { pool; _ } -> (
      match timeout with
      | None ->
          Runtime_mc.await_idle pool;
          true
      | Some s -> Runtime_mc.try_await_idle pool ~timeout:s)

let shutdown t =
  match t.backend with
  | Sim -> ()
  | Mc { pool; boxes; _ } ->
      Array.iter Runtime.Mailbox.close boxes;
      Runtime_mc.shutdown pool;
      (* Materialize the runtime's hot-path counters so snapshots and
         benchmark reports see them alongside the protocol metrics.
         reset+incr: shutdown is idempotent, the stats are absolutes. *)
      let set name v =
        let c = Metrics.Registry.counter t.metrics name in
        Metrics.Counter.reset c;
        Metrics.Counter.incr ~by:v c
      in
      let ws = Runtime_mc.wheel_stats pool in
      set "runtime.wheel.max_depth" (float_of_int ws.Runtime_mc.max_depth);
      set "runtime.wheel.fired" (float_of_int ws.Runtime_mc.fired);
      set "runtime.wheel.purged" (float_of_int ws.Runtime_mc.purged);
      let batches, drained =
        Array.fold_left
          (fun (b, m) box ->
            let b', m' = Runtime.Mailbox.drain_stats box in
            (b + b', m + m'))
          (0, 0) boxes
      in
      set "runtime.mailbox.drain.batches" (float_of_int batches);
      set "runtime.mailbox.drain.msgs" (float_of_int drained)

let is_mc t = match t.backend with Sim -> false | Mc _ -> true

let spawn ?(coord = 0) t f =
  Runtime.spawn t.runtime (fun () -> f t.coordinators.(coord))

let run_op ?(coord = 0) ?horizon t f =
  let result = ref None in
  spawn ~coord t (fun c -> result := Some (f c));
  run ?horizon t;
  !result

(* Crash on the sim backend is exactly the historic behavior (flip the
   brick; the deterministic network models the rest). On mc it is a
   real process death: run the crash hooks (cancelling the brick's
   pending quorum calls), then close its mailbox so the receive loop
   drains out and exits — messages sent while down land in a closed
   box and are lost, like frames to a dead host. *)
let crash t i =
  match t.backend with
  | Sim -> Brick.crash t.bricks.(i)
  | Mc mc ->
      Mutex.lock mc.lifecycle;
      if Brick.is_alive t.bricks.(i) then begin
        Brick.crash t.bricks.(i);
        Runtime.Mailbox.close mc.boxes.(i)
      end;
      Mutex.unlock mc.lifecycle

(* Section 4 recovery replay: after a restart, read every stripe the
   brick hosts through its recovery coordinator. Each read samples a
   quorum, completes the most recent ongoing timestamp it finds, and
   writes the reconstructed version back at a fresh timestamp — the
   paper's recovery path, run proactively instead of waiting for the
   next client read. Best-effort: `Aborted/`Unavailable just mean
   another fault is still active; the next read retries. Only run
   under a deadline — without one a quorum call retransmits forever
   and the recovery task could never finish. *)
let mc_resync t (mc : mc_net) i =
  match t.cfg.Config.deadline with
  | None -> ()
  | Some _ ->
      let c = mc.rcoords.(i) in
      List.iter
        (fun stripe ->
          match Coordinator.recover c ~stripe with
          | Ok _ | Error (`Aborted | `Unavailable) -> ()
          | exception Runtime.Cancelled -> ())
        (Replica.stripes t.replicas.(i))

(* Recover on mc is asynchronous (a restart takes time, and this is
   called from nemesis timer callbacks, which must never block): a
   spawned task awaits the dead receive loop's exit, installs a fresh
   mailbox, respawns the loop, marks the brick alive, and replays the
   recovery reads. [try_quiesce]/[await_quiesce] wait for it — the
   task is non-daemon. *)
let recover t i =
  match t.backend with
  | Sim -> Brick.recover t.bricks.(i)
  | Mc mc ->
      if not (Brick.is_alive t.bricks.(i)) then
        Runtime.spawn t.runtime (fun () ->
            (match mc.exits.(i) with
            | Some g -> ( try g.Runtime.await () with Runtime.Cancelled -> ())
            | None -> ());
            Mutex.lock mc.lifecycle;
            let dead = not (Brick.is_alive t.bricks.(i)) in
            if dead then begin
              mc.boxes.(i) <- Runtime.Mailbox.create t.runtime;
              if mc.handlers.(i) <> None then
                mc_spawn_loop t.runtime mc i;
              Brick.recover t.bricks.(i)
            end;
            Mutex.unlock mc.lifecycle;
            if dead then mc_resync t mc i)

let faultnet t = match t.backend with Sim -> None | Mc mc -> Some mc.fnet
let snapshot t = Metrics.Snapshot.take t.metrics
