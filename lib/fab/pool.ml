type volume_meta = {
  name : string;
  volume : Volume.t;
  first_stripe : int;
  last_stripe : int;  (* inclusive *)
  policy_for : int -> Core.Config.policy;  (* takes the GLOBAL stripe id *)
}

type t = {
  cluster : Core.Cluster.t;
  nbricks : int;
  block_size : int;
  op_retries : int;
  pipeline_window : int;
  mutable next_stripe : int;
  mutable volumes : volume_meta list;  (* newest first *)
}

(* The pool's policy table is consulted by every replica and
   coordinator; the cluster is created around a forward reference so
   the table can grow as volumes are created. *)
let create ?seed ?net_config ?(block_size = 1024) ?clock ?gc_enabled
    ?optimized_modify ?ts_cache ?coalesce ?(op_retries = 3)
    ?(pipeline_window = 8) ~bricks () =
  if bricks < 1 then invalid_arg "Fab.Pool.create: no bricks";
  if op_retries < 1 then invalid_arg "Fab.Pool.create: op_retries < 1";
  if pipeline_window < 1 then
    invalid_arg "Fab.Pool.create: pipeline_window < 1";
  let self = ref None in
  let policy_of stripe =
    match !self with
    | None -> invalid_arg "Fab.Pool: pool not initialized"
    | Some pool -> (
        let meta =
          List.find_opt
            (fun v -> stripe >= v.first_stripe && stripe <= v.last_stripe)
            pool.volumes
        in
        match meta with
        | Some v -> v.policy_for stripe
        | None ->
            invalid_arg
              (Printf.sprintf "Fab.Pool: stripe %d belongs to no volume"
                 stripe))
  in
  let cluster =
    Core.Cluster.create_policied ?seed ?net_config ~block_size ?clock
      ?gc_enabled ?optimized_modify ?ts_cache ?coalesce ~bricks ~policy_of ()
  in
  let pool =
    {
      cluster;
      nbricks = bricks;
      block_size;
      op_retries;
      pipeline_window;
      next_stripe = 0;
      volumes = [];
    }
  in
  self := Some pool;
  pool

let cluster t = t.cluster
let bricks t = t.nbricks
let block_size t = t.block_size

let find_volume t name =
  Option.map
    (fun v -> v.volume)
    (List.find_opt (fun v -> v.name = name) t.volumes)

let volume_names t =
  List.sort String.compare (List.map (fun v -> v.name) t.volumes)

let create_volume t ~name ~m ~n ?layout ~stripes () =
  if stripes <= 0 then invalid_arg "Fab.Pool.create_volume: stripes <= 0";
  if n > t.nbricks then
    invalid_arg "Fab.Pool.create_volume: n exceeds pool brick count";
  if find_volume t name <> None then
    invalid_arg
      (Printf.sprintf "Fab.Pool.create_volume: volume %S already exists" name);
  let kind =
    match layout with
    | Some k -> k
    | None -> if t.nbricks = n then Layout.Fixed else Layout.Rotating
  in
  let layout_fn = Layout.make kind ~bricks:t.nbricks ~n in
  let codec =
    if m = 1 then Erasure.Codec.replication ~n ()
    else if n = m + 1 then Erasure.Codec.parity ~m ()
    else Erasure.Codec.rs ~m ~n ()
  in
  let mq = Quorum.Mquorum.create ~n ~m in
  let first_stripe = t.next_stripe in
  t.next_stripe <- t.next_stripe + stripes;
  let policy_for stripe =
    (* Layout schemes are a function of the volume-local stripe index,
       so a volume's placement does not depend on its allocation
       order. *)
    Core.Config.make_policy ~codec ~mq
      ~members:(layout_fn (stripe - first_stripe))
  in
  let volume =
    Volume.of_cluster ~cluster:t.cluster ~m ~stripes
      ~block_size:t.block_size ~op_retries:t.op_retries
      ~pipeline_window:t.pipeline_window ~stripe_offset:first_stripe ()
  in
  let meta =
    {
      name;
      volume;
      first_stripe;
      last_stripe = first_stripe + stripes - 1;
      policy_for;
    }
  in
  t.volumes <- meta :: t.volumes;
  volume

let delete_volume t name =
  let exists = List.exists (fun v -> v.name = name) t.volumes in
  if exists then t.volumes <- List.filter (fun v -> v.name <> name) t.volumes;
  exists

let run ?horizon t = Core.Cluster.run ?horizon t.cluster

let run_op ?horizon t f =
  let result = ref None in
  Runtime.spawn t.cluster.Core.Cluster.runtime (fun () -> result := Some (f ()));
  run ?horizon t;
  !result
