(** A FAB brick pool hosting multiple logical volumes.

    The paper's system view (section 1.1): "FAB presents the client
    with a number of logical volumes, each of which can be accessed as
    if it were a disk". A pool owns the bricks, the network and the
    replica processes once; each volume carved out of it has its own
    capacity, erasure-code geometry (m, n) and layout policy, mapped
    onto a disjoint range of global stripe ids. Stripes of different
    volumes share bricks but nothing else — register instances remain
    fully independent, so a heavily written volume cannot corrupt (or
    even slow, beyond brick contention) its neighbours.

    All volumes share the pool's block size. *)

type t

val create :
  ?seed:int ->
  ?net_config:Simnet.Net.config ->
  ?block_size:int ->
  ?clock:Core.Cluster.clock_kind ->
  ?gc_enabled:bool ->
  ?optimized_modify:bool ->
  ?ts_cache:bool ->
  ?coalesce:bool ->
  ?op_retries:int ->
  ?pipeline_window:int ->
  bricks:int ->
  unit ->
  t
(** [create ~bricks ()] is an empty pool of [bricks] bricks. Optional
    knobs as in {!Volume.create}; they apply to every volume carved
    out of the pool. *)

val cluster : t -> Core.Cluster.t
val bricks : t -> int
val block_size : t -> int

val create_volume :
  t ->
  name:string ->
  m:int ->
  n:int ->
  ?layout:Layout.kind ->
  stripes:int ->
  unit ->
  Volume.t
(** Carve a new volume out of the pool: [stripes * m] logical blocks
    erasure-coded m-of-n over the pool's bricks. Default layout:
    [Rotating] (or [Fixed] when the pool has exactly [n] bricks).
    @raise Invalid_argument if [n] exceeds the pool's brick count, the
    name is already taken, or the geometry is invalid. *)

val find_volume : t -> string -> Volume.t option
val volume_names : t -> string list
(** Sorted. *)

val delete_volume : t -> string -> bool
(** Forget the volume's name and policy binding; its stripe-id range
    is never reused (the replicas' logs for it become garbage). Returns
    [false] if no such volume. *)

val run : ?horizon:float -> t -> unit
val run_op : ?horizon:float -> t -> (unit -> 'a) -> 'a option
