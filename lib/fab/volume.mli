(** A FAB logical volume: a virtual disk striped over bricks.

    The volume divides its logical block address space into stripes of
    [m] blocks; stripe [s] holds logical blocks [s*m .. s*m + m - 1]
    and is one storage-register instance placed on [n] bricks by the
    {!Layout}. Register instances share nothing and run in parallel,
    exactly as the paper prescribes (section 4).

    Clients address the volume like a disk: read or write [count]
    blocks starting at an LBA, through a coordinator module on any
    brick. The volume decomposes a request into full-stripe operations
    where it covers whole stripes and block operations elsewhere —
    the small-write/full-write distinction whose cost the paper's
    section 1.2 discusses. *)

type t

val create :
  ?seed:int ->
  ?net_config:Simnet.Net.config ->
  ?bricks:int ->
  ?layout:Layout.kind ->
  ?block_size:int ->
  ?clock:Core.Cluster.clock_kind ->
  ?gc_enabled:bool ->
  ?optimized_modify:bool ->
  ?ts_cache:bool ->
  ?deadline:float ->
  ?unsafe_skip_order:bool ->
  ?coalesce:bool ->
  ?retry_backoff:float ->
  ?retry_cap:float ->
  ?op_retries:int ->
  ?pipeline_window:int ->
  m:int ->
  n:int ->
  stripes:int ->
  unit ->
  t
(** [create ~m ~n ~stripes ()] is a volume of [stripes * m] logical
    blocks. Defaults: [bricks = n] with the [Fixed] layout when
    [bricks] is omitted, [Rotating] otherwise; other defaults as in
    {!Core.Cluster.create}. Constituent register operations are
    retried up to [op_retries] times (default 3) on abort, the client
    retry loop every disk driver runs; pass [~op_retries:1] to surface
    raw aborts (the abort-rate experiments do).

    A request spanning several stripes dispatches its per-stripe
    operations concurrently, at most [pipeline_window] (default 8) in
    flight; [~pipeline_window:1] recovers strictly serial extent
    order. [ts_cache]/[coalesce] enable the order-elision and
    message-coalescing optimizations; [deadline], [retry_backoff],
    [retry_cap] and [unsafe_skip_order] are forwarded to
    {!Core.Cluster.create}. *)

val of_cluster :
  cluster:Core.Cluster.t ->
  m:int ->
  stripes:int ->
  block_size:int ->
  op_retries:int ->
  ?pipeline_window:int ->
  stripe_offset:int ->
  unit ->
  t
(** A volume that is a view onto an existing cluster, owning the
    global stripe ids [stripe_offset .. stripe_offset + stripes - 1].
    Used by {!Pool}; most callers want {!create}. *)

val stripe_offset : t -> int

val cluster : t -> Core.Cluster.t

val codec : t -> Erasure.Codec.t
(** The erasure codec of this volume's stripes (a volume is uniform:
    every stripe uses the same codec instance). Exposed so tools can
    report the selected GF(2^8) kernel and decode-plan cache behavior. *)

val capacity_blocks : t -> int
val block_size : t -> int
val m : t -> int
val stripes : t -> int

val stripe_of_lba : t -> int -> int * int
(** [(stripe, index-within-stripe)] of a logical block address.
    @raise Invalid_argument if out of range. *)

type 'a outcome = ('a, [ `Aborted | `Unavailable ]) result
(** [`Aborted]: a register operation kept losing timestamp races;
    retrying later is reasonable. [`Unavailable]: a configured
    per-operation deadline expired with a quorum presumed unreachable
    (more than [n - q] bricks down or partitioned away); retries are
    not attempted — the condition clears only when bricks recover or
    the partition heals. *)

val read : t -> coord:int -> lba:int -> count:int -> Bytes.t outcome
(** Read [count] logical blocks; must run inside a fiber. Aborts if
    any constituent register operation aborts (no partial data is
    returned). *)

val write : t -> coord:int -> lba:int -> Bytes.t -> unit outcome
(** Write data (length a positive multiple of the block size) starting
    at [lba]; must run inside a fiber. Constituent per-stripe
    operations are dispatched concurrently (bounded by the pipeline
    window); an abort may leave any subset of the spanned stripes
    applied, like a failed multi-sector disk write — each stripe is
    still individually atomic and linearizable. *)

val run : ?horizon:float -> t -> unit
val run_op : ?horizon:float -> t -> (unit -> 'a) -> 'a option
(** Drive the simulation; see {!Core.Cluster}. *)

val scrub : t -> coord:int -> (int * int list) list outcome
(** Audit every stripe for silent corruption and repair what is found;
    returns the (volume-local stripe, corrupted block positions) pairs
    that needed repair. Must run inside a fiber. The periodic
    background scrub every disk array runs. *)

val rebuild_brick : t -> brick:int -> coord:int -> int outcome
(** Re-synchronize a recovered brick: for every stripe stored on it,
    run the recovery procedure so the brick's log regains the newest
    complete version. Returns the number of stripes touched. Must run
    inside a fiber. This is the maintenance operation a FAB
    administrator runs after replacing a brick. *)
