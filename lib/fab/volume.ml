type t = {
  cluster : Core.Cluster.t;
  m : int;
  stripes : int;
  block_size : int;
  op_retries : int;
  pipeline_window : int;
      (* Bound on concurrently in-flight per-stripe operations of one
         read/write call; 1 recovers strictly serial extent order. *)
  stripe_offset : int;
      (* First global stripe id of this volume; volumes created through
         a Pool share one cluster and own disjoint stripe ranges. *)
}

type 'a outcome = ('a, [ `Aborted | `Unavailable ]) result

let create ?seed ?net_config ?bricks ?layout ?(block_size = 1024) ?clock
    ?gc_enabled ?optimized_modify ?ts_cache ?deadline ?unsafe_skip_order
    ?coalesce ?retry_backoff ?retry_cap ?(op_retries = 3)
    ?(pipeline_window = 8) ~m ~n ~stripes () =
  if op_retries < 1 then invalid_arg "Fab.Volume.create: op_retries < 1";
  if stripes <= 0 then invalid_arg "Fab.Volume.create: stripes <= 0";
  if pipeline_window < 1 then
    invalid_arg "Fab.Volume.create: pipeline_window < 1";
  let nbricks = match bricks with Some b -> b | None -> n in
  let kind =
    match layout with
    | Some k -> k
    | None -> if nbricks = n then Layout.Fixed else Layout.Rotating
  in
  let layout_fn = Layout.make kind ~bricks:nbricks ~n in
  let cluster =
    Core.Cluster.create ?seed ?net_config ~bricks:nbricks ~layout:layout_fn
      ~block_size ?clock ?gc_enabled ?optimized_modify ?ts_cache ?deadline
      ?unsafe_skip_order ?coalesce ?retry_backoff ?retry_cap ~m ~n ()
  in
  { cluster; m; stripes; block_size; op_retries; pipeline_window;
    stripe_offset = 0 }

(* Used by Fab.Pool: a volume that is a view onto a shared cluster. *)
let of_cluster ~cluster ~m ~stripes ~block_size ~op_retries
    ?(pipeline_window = 8) ~stripe_offset () =
  if pipeline_window < 1 then
    invalid_arg "Fab.Volume.of_cluster: pipeline_window < 1";
  { cluster; m; stripes; block_size; op_retries; pipeline_window;
    stripe_offset }

let cluster t = t.cluster

let codec t =
  Core.Config.codec t.cluster.Core.Cluster.cfg ~stripe:t.stripe_offset

let capacity_blocks t = t.stripes * t.m
let block_size t = t.block_size
let m t = t.m
let stripes t = t.stripes
let stripe_offset t = t.stripe_offset

let stripe_of_lba t lba =
  if lba < 0 || lba >= capacity_blocks t then
    invalid_arg "Fab.Volume: logical block address out of range";
  (t.stripe_offset + (lba / t.m), lba mod t.m)

(* Split [lba, lba+count) into per-stripe extents. *)
let extents t ~lba ~count =
  let rec loop acc lba remaining =
    if remaining = 0 then List.rev acc
    else
      let stripe, j = stripe_of_lba t lba in
      let in_stripe = min remaining (t.m - j) in
      loop ((stripe, j, in_stripe) :: acc) (lba + in_stripe)
        (remaining - in_stripe)
  in
  loop [] lba count

let coordinator t coord = t.cluster.Core.Cluster.coordinators.(coord)

(* Every constituent register operation is retried on abort: an
   aborted attempt taught the coordinator's clock the replicas' newest
   timestamps, so a retry lost only to a stale clock succeeds (the
   usual client retry loop of a disk driver).

   Retries are at-least-once, not strictly linearizable: each attempt
   is a fresh protocol write at a new timestamp, and an earlier
   attempt may already have been rolled forward by a concurrent
   reader's recovery. Under write/write contention the retried value
   can therefore become visible, be superseded, and resurface when a
   later attempt commits — exactly the semantics of a SCSI driver
   re-issuing a timed-out write. Callers that need the paper's
   single-operation guarantee (e.g. linearizability harnesses) must
   run with op_retries = 1. *)
let retrying t c f = Core.Coordinator.with_retries ~attempts:t.op_retries c f

(* Block writes need one extra remedy: if a fast-path Modify applied
   at p_j but was refused elsewhere, the paper's same-timestamp slow
   path keeps aborting until some read repairs the stripe (reads roll
   the partial forward or back). Run the recovery procedure between
   attempts so a retried block write always makes progress. *)
let retrying_block_write t c ~stripe f =
  let rec go left =
    if left > 1 then Core.Coordinator.hint_retry c;
    match f () with
    | Ok () -> Ok ()
    | Error `Aborted when left > 1 ->
        ignore (Core.Coordinator.recover c ~stripe);
        go (left - 1)
    | Error `Aborted -> Error `Aborted
    | Error `Unavailable -> Error `Unavailable
  in
  go t.op_retries

(* Dispatch one thunk per extent through the scatter-gather join: each
   extent is an independent register instance, so up to
   [pipeline_window] of them proceed concurrently, each with its own
   retry loop. Every thunk runs to completion (no early abort of
   siblings): an aborted extent must not leave a sibling half-retried,
   and the common case has no aborts at all. Unavailability dominates
   the joined verdict — it tells the caller the deployment, not just
   this request, is in trouble. *)
let scatter t thunks =
  let outcomes =
    Runtime.all t.cluster.Core.Cluster.runtime ~window:t.pipeline_window
      thunks
  in
  if List.exists (fun o -> o = Error `Unavailable) outcomes then
    Error `Unavailable
  else if List.exists Result.is_error outcomes then Error `Aborted
  else Ok ()

let read t ~coord ~lba ~count =
  if count <= 0 then invalid_arg "Fab.Volume.read: count <= 0";
  if lba < 0 || lba + count > capacity_blocks t then
    invalid_arg "Fab.Volume.read: range out of bounds";
  let c = coordinator t coord in
  let out = Bytes.create (count * t.block_size) in
  let offset = ref 0 in
  let thunks =
    List.map
      (fun (stripe, j, len) ->
        let off = !offset in
        offset := off + (len * t.block_size);
        fun () ->
          let result =
            if j = 0 && len = t.m then
              (* Full-stripe read. *)
              retrying t c (fun () -> Core.Coordinator.read_stripe c ~stripe)
            else
              (* Partial stripe: one multi-block protocol operation. *)
              retrying t c (fun () ->
                  Core.Coordinator.read_blocks c ~stripe j ~len)
          in
          match result with
          | Ok blocks ->
              Array.iteri
                (fun i b ->
                  Bytes.blit b 0 out (off + (i * t.block_size)) t.block_size)
                blocks;
              Ok ()
          | Error e -> Error e)
      (extents t ~lba ~count)
  in
  Result.map (fun () -> out) (scatter t thunks)

let write t ~coord ~lba data =
  let len = Bytes.length data in
  if len = 0 || len mod t.block_size <> 0 then
    invalid_arg "Fab.Volume.write: length not a positive block multiple";
  let count = len / t.block_size in
  if lba < 0 || lba + count > capacity_blocks t then
    invalid_arg "Fab.Volume.write: range out of bounds";
  let c = coordinator t coord in
  let offset = ref 0 in
  let take_block () =
    let b = Bytes.sub data !offset t.block_size in
    offset := !offset + t.block_size;
    b
  in
  let thunks =
    List.map
      (fun (stripe, j, elen) ->
        (* Slice the payload eagerly, in address order; only the
           protocol rounds run concurrently. *)
        if j = 0 && elen = t.m then
          let blocks = Array.init t.m (fun _ -> take_block ()) in
          fun () ->
            retrying t c (fun () ->
                Core.Coordinator.write_stripe c ~stripe blocks)
        else
          (* Partial stripe: one multi-block protocol operation. *)
          let news = Array.init elen (fun _ -> take_block ()) in
          fun () ->
            retrying_block_write t c ~stripe (fun () ->
                Core.Coordinator.write_blocks c ~stripe j news))
      (extents t ~lba ~count)
  in
  scatter t thunks

let run ?horizon t = Core.Cluster.run ?horizon t.cluster

let run_op ?horizon t f =
  let result = ref None in
  Runtime.spawn t.cluster.Core.Cluster.runtime (fun () -> result := Some (f ()));
  run ?horizon t;
  !result

let scrub t ~coord =
  let c = coordinator t coord in
  let repaired = ref [] in
  let failed = ref None in
  for s = 0 to t.stripes - 1 do
    if !failed = None then begin
      let stripe = t.stripe_offset + s in
      match retrying t c (fun () -> Core.Coordinator.scrub c ~stripe) with
      | Ok [] -> ()
      | Ok positions -> repaired := (s, positions) :: !repaired
      | Error e -> failed := Some e
    end
  done;
  match !failed with
  | Some e -> Error e
  | None -> Ok (List.rev !repaired)

let rebuild_brick t ~brick ~coord =
  let c = coordinator t coord in
  let touched = ref 0 in
  let failed = ref None in
  for s = 0 to t.stripes - 1 do
    let stripe = t.stripe_offset + s in
    if !failed = None then begin
      let members =
        Core.Config.members_array t.cluster.Core.Cluster.cfg ~stripe
      in
      if Array.exists (fun a -> a = brick) members then begin
        incr touched;
        match retrying t c (fun () -> Core.Coordinator.recover c ~stripe) with
        | Ok _ -> ()
        | Error e -> failed := Some e
      end
    end
  done;
  match !failed with Some e -> Error e | None -> Ok !touched
