(** A brick: a crash-recovery process with persistent storage.

    The paper's model (section 2) has processes that fail by crashing
    and may later recover; each process has persistent storage whose
    contents survive crashes ([store(var)] in section 4.2), while
    volatile state is lost. A [Brick.t] models exactly that envelope:

    - an alive/crashed flag consulted by message handlers (a crashed
      brick silently drops incoming messages);
    - crash hooks, run at crash time, used to cancel in-flight
      coordinator fibers (a crashed coordinator abandons its
      operations) and clear volatile caches;
    - storage-cost accounting that mirrors Table 1's cost model:
      block reads and writes against the on-disk log are counted
      under ["disk.reads"] / ["disk.writes"], timestamp-only updates
      are NVRAM writes under ["nvram.writes"] and cost no disk I/O.

    The actual persistent data structures (the per-stripe [ord-ts] and
    [log]) live in the register layer; they simply survive crashes
    because nothing clears them, faithfully modelling NVRAM-backed
    metadata plus disk-backed logs. *)

type t

val create :
  ?metrics:Metrics.Registry.t -> ?obs:Obs.t -> Runtime.t -> id:int -> t
val id : t -> int

val runtime : t -> Runtime.t
(** The runtime this brick schedules on — the deterministic simulator
    or the multicore backend; brick code never sees which. *)

val is_alive : t -> bool
(** Freshly created bricks are alive. *)

val crash : t -> unit
(** Mark the brick crashed and run (then discard) all crash hooks.
    Idempotent. *)

val recover : t -> unit
(** Bring a crashed brick back up. Persistent state is intact; all
    volatile state was dropped by the crash hooks. Idempotent. *)

type hook
(** Handle for deregistering a crash hook. *)

val add_crash_hook : t -> (unit -> unit) -> hook
(** [add_crash_hook t f] runs [f] (once) if the brick crashes. Use
    {!remove_crash_hook} when the protected resource completes
    normally. *)

val remove_crash_hook : t -> hook -> unit

val hook_count : t -> int
(** Currently registered crash hooks. At quiescence (no in-flight
    operations) only long-lived hooks remain, so tests use this to
    check that every transient hook was deregistered. *)

val scratch_take : t -> len:int -> Bytes.t
(** Borrow a [len]-byte scratch buffer from the brick's pool (allocating
    if the pool is empty). Contents are undefined. Scratch buffers are
    for transient codec computation only: anything handed to a message
    or a log retains its reference past the operation and must NOT come
    from here. Return the buffer with {!scratch_release}. *)

val scratch_release : t -> Bytes.t -> unit
(** Return a buffer obtained from {!scratch_take} to the pool. The pool
    keeps a bounded number of buffers per length; extras are dropped for
    the GC. *)

val count_disk_read : ?blocks:int -> ?ctx:Obs.ctx -> t -> unit
(** Account reading [blocks] (default 1) block-sized records from the
    on-disk log. When the brick's observability hub is enabled, also
    emits an [Io_read] event attributed to [ctx]'s operation. *)

val count_disk_write : ?blocks:int -> ?ctx:Obs.ctx -> t -> unit
val count_nvram_write : t -> unit

val crash_count : t -> int
(** How many times this brick has crashed so far (for tests and fault
    statistics). *)
