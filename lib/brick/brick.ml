type hook = int

type t = {
  id : int;
  runtime : Runtime.t;
  mutable alive : bool;
  mutable crash_count : int;
  mutable next_hook : int;
  crash_hooks : (int, unit -> unit) Hashtbl.t;
  scratch : (int, Bytes.t Stack.t) Hashtbl.t;
  lk : Mutex.t;  (* guards crash_hooks / next_hook / scratch (mc backend) *)
  disk_reads : Metrics.Counter.t;
  disk_writes : Metrics.Counter.t;
  nvram_writes : Metrics.Counter.t;
  obs : Obs.t;
}

let create ?(metrics = Metrics.Registry.create ()) ?(obs = Obs.create ())
    runtime ~id =
  {
    id;
    runtime;
    alive = true;
    crash_count = 0;
    next_hook = 0;
    crash_hooks = Hashtbl.create 8;
    scratch = Hashtbl.create 4;
    lk = Mutex.create ();
    disk_reads = Metrics.Registry.counter metrics "disk.reads";
    disk_writes = Metrics.Registry.counter metrics "disk.writes";
    nvram_writes = Metrics.Registry.counter metrics "nvram.writes";
    obs;
  }

let id t = t.id
let runtime t = t.runtime
let is_alive t = t.alive

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.crash_count <- t.crash_count + 1;
    (* Collect first: a hook may (de)register hooks while running —
       and hooks must run outside the lock, since cancelling a fiber
       or aborting an ivar re-enters brick code. *)
    Mutex.lock t.lk;
    let hooks = Hashtbl.fold (fun _ f acc -> f :: acc) t.crash_hooks [] in
    Hashtbl.reset t.crash_hooks;
    Mutex.unlock t.lk;
    List.iter (fun f -> f ()) hooks
  end

let recover t = t.alive <- true

let add_crash_hook t f =
  Mutex.lock t.lk;
  let h = t.next_hook in
  t.next_hook <- t.next_hook + 1;
  Hashtbl.replace t.crash_hooks h f;
  Mutex.unlock t.lk;
  h

let remove_crash_hook t h =
  Mutex.lock t.lk;
  Hashtbl.remove t.crash_hooks h;
  Mutex.unlock t.lk

let hook_count t =
  Mutex.lock t.lk;
  let n = Hashtbl.length t.crash_hooks in
  Mutex.unlock t.lk;
  n

(* Scratch pool: transient per-brick buffers for codec computation.
   Contents of a borrowed buffer are undefined; buffers must never be
   handed to messages or logs, which retain references past the op. *)

let max_pooled_per_len = 16

let scratch_take t ~len =
  if len <= 0 then invalid_arg "Brick.scratch_take: len <= 0";
  Mutex.lock t.lk;
  let b =
    match Hashtbl.find_opt t.scratch len with
    | Some s when not (Stack.is_empty s) -> Stack.pop s
    | _ -> Bytes.create len
  in
  Mutex.unlock t.lk;
  b

let scratch_release t b =
  let len = Bytes.length b in
  Mutex.lock t.lk;
  let s =
    match Hashtbl.find_opt t.scratch len with
    | Some s -> s
    | None ->
        let s = Stack.create () in
        Hashtbl.add t.scratch len s;
        s
  in
  if Stack.length s < max_pooled_per_len then Stack.push b s;
  Mutex.unlock t.lk

let emit_io t (ctx : Obs.ctx) kind =
  Obs.emit t.obs
    {
      Obs.time = Runtime.now t.runtime;
      actor = Obs.Brick t.id;
      op = ctx.Obs.op;
      phase = ctx.Obs.phase;
      kind;
    }

let count_disk_read ?(blocks = 1) ?(ctx = Obs.no_ctx) t =
  Metrics.Counter.incr ~by:(float_of_int blocks) t.disk_reads;
  if Obs.enabled t.obs then emit_io t ctx (Obs.Io_read { blocks })

let count_disk_write ?(blocks = 1) ?(ctx = Obs.no_ctx) t =
  Metrics.Counter.incr ~by:(float_of_int blocks) t.disk_writes;
  if Obs.enabled t.obs then emit_io t ctx (Obs.Io_write { blocks })

let count_nvram_write t = Metrics.Counter.incr t.nvram_writes
let crash_count t = t.crash_count
