type stats = {
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable aborts : int;
  mutable unavailable : int;
  mutable blocks_moved : int;
  latency : Metrics.Summary.t;
  latency_hist : Metrics.Hist.t;
}

(* Bound the reservoir so long-running clients hold constant memory;
   the paired histogram keeps tail percentiles exact-rank anyway. *)
let latency_capacity = 8192

let fresh_stats () =
  {
    ops = 0;
    reads = 0;
    writes = 0;
    aborts = 0;
    unavailable = 0;
    blocks_moved = 0;
    latency = Metrics.Summary.create ~capacity:latency_capacity ();
    latency_hist = Metrics.Hist.create ();
  }

let spawn volume ~coord ~gen ~ops ?(think_time = 0.) ?(payload_tag = 'w')
    stats =
  let rt = (Fab.Volume.cluster volume).Core.Cluster.runtime in
  let block_size = Fab.Volume.block_size volume in
  let seq = ref 0 in
  let payload count =
    incr seq;
    let b = Bytes.make (count * block_size) payload_tag in
    (* Stamp each block so distinct writes carry distinct values. *)
    let stamp = Printf.sprintf "%d:%d:%d" coord !seq count in
    Bytes.blit_string stamp 0 b 0 (min (String.length stamp) (Bytes.length b));
    b
  in
  Runtime.spawn rt (fun () ->
      for _ = 1 to ops do
        let op = Gen.next gen in
        let started = Runtime.now rt in
        let outcome =
          match op.Gen.kind with
          | `Read ->
              stats.reads <- stats.reads + 1;
              (match
                 Fab.Volume.read volume ~coord ~lba:op.Gen.lba
                   ~count:op.Gen.count
               with
              | Ok _ -> `Ok
              | Error `Aborted -> `Aborted
              | Error `Unavailable -> `Unavailable)
          | `Write ->
              stats.writes <- stats.writes + 1;
              (match
                 Fab.Volume.write volume ~coord ~lba:op.Gen.lba
                   (payload op.Gen.count)
               with
              | Ok () -> `Ok
              | Error `Aborted -> `Aborted
              | Error `Unavailable -> `Unavailable)
        in
        stats.ops <- stats.ops + 1;
        (match outcome with
        | `Ok -> stats.blocks_moved <- stats.blocks_moved + op.Gen.count
        | `Aborted -> stats.aborts <- stats.aborts + 1
        | `Unavailable -> stats.unavailable <- stats.unavailable + 1);
        let elapsed = Runtime.now rt -. started in
        Metrics.Summary.add stats.latency elapsed;
        if elapsed >= 0. then Metrics.Hist.add stats.latency_hist elapsed;
        if think_time > 0. then Runtime.sleep rt think_time
      done)

let throughput stats ~elapsed =
  if elapsed <= 0. then 0. else float_of_int stats.ops /. elapsed

let abort_rate stats =
  if stats.ops = 0 then 0. else float_of_int stats.aborts /. float_of_int stats.ops
