(** Closed-loop clients driving a FAB volume.

    Each client is a fiber attached to one coordinator brick; it draws
    operations from a generator and issues them back-to-back (the next
    operation starts when the previous one returns), optionally
    separated by think time. Multiple clients on different
    coordinators create exactly the concurrency regime the paper's
    section 3 discusses; the abort statistics quantify its rarity. *)

type stats = {
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable aborts : int;
  mutable unavailable : int;
      (** Operations that failed fast on a deadline expiry
          ({!Fab.Volume.outcome}); always 0 without a deadline. *)
  mutable blocks_moved : int;
  latency : Metrics.Summary.t;
      (** per-op latency in delta units; reservoir bounded, so very
          long runs hold constant memory at the cost of approximate
          percentiles past the capacity *)
  latency_hist : Metrics.Hist.t;
      (** the same latencies log-bucketed: exact counts and bounded
          rank error at any op count — read p99/p99.9 from here *)
}

val fresh_stats : unit -> stats

val spawn :
  Fab.Volume.t ->
  coord:int ->
  gen:Gen.t ->
  ops:int ->
  ?think_time:float ->
  ?payload_tag:char ->
  stats ->
  unit
(** [spawn volume ~coord ~gen ~ops stats] starts a client fiber that
    performs [ops] operations and accumulates into [stats]. Run the
    engine ({!Fab.Volume.run}) to make progress. Write payloads are
    filled with [payload_tag] (default ['w']) plus a per-op counter so
    written values are distinguishable. *)

val throughput : stats -> elapsed:float -> float
(** Operations per unit of virtual time. *)

val abort_rate : stats -> float
