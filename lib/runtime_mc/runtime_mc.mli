(** OCaml 5 multicore runtime backend: a pool of worker domains with a
    work-sharing dispatcher (tasks are threads of their domain, so
    they may block without stalling it), wall-clock timers on a
    dedicated select(2)-driven thread, and mutex+condvar gates.

    Gives real parallelism; gives up determinism, virtual time, and
    fault injection — the sim backend stays the oracle for those. *)

type t
(** A running pool of worker domains. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (default 1)
    plus one timer thread. @raise Invalid_argument if [domains < 1]. *)

val runtime : t -> Runtime.t
(** The pool as a {!Runtime.t} (name ["mc"]). *)

val spawn_daemon : t -> (unit -> unit) -> unit
(** Like the runtime's [spawn] but excluded from {!await_idle}: used
    for the transport's per-brick receive loops, which run until their
    mailbox closes. *)

val await_idle : t -> unit
(** Block until every non-daemon task has finished. *)

val shutdown : t -> unit
(** Stop dispatchers and the timer thread and join the domains.
    Unblock daemon tasks first (close their mailboxes) — a domain only
    terminates once all its threads have. Idempotent. *)

val now : t -> float
(** Wall-clock seconds since {!create}. *)

val hw_cores : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware can
    actually run in parallel; stamped into benchmark metadata. *)
