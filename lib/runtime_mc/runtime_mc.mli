(** OCaml 5 multicore runtime backend: a pool of worker domains with a
    work-sharing dispatcher (tasks run on reusable slot threads of
    their domain, so they may block without stalling it), wall-clock
    timers in a hashed wheel driven by a dedicated select(2) thread,
    and mutex+condvar gates (DESIGN 4g, hot paths 4h).

    Gives real parallelism; gives up determinism, virtual time, and
    fault injection — the sim backend stays the oracle for those. *)

type t
(** A running pool of worker domains. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains] worker domains (default 1)
    plus one timer thread. @raise Invalid_argument if [domains < 1]. *)

val runtime : t -> Runtime.t
(** The pool as a {!Runtime.t} (name ["mc"]). *)

val spawn_daemon : t -> (unit -> unit) -> unit
(** Like the runtime's [spawn] but excluded from {!await_idle}: used
    for the transport's per-brick receive loops, which run until their
    mailbox closes. *)

val await_idle : t -> unit
(** Block until every non-daemon task has finished. *)

val try_await_idle : t -> timeout:float -> bool
(** Like {!await_idle} but gives up after [timeout] wall-clock
    seconds, returning [false] with tasks still live. Used by the
    chaos harness: a stuck task must fail the soak, not hang it. Do
    not call {!shutdown} after a [false] return — reaping a pool with
    a stuck slot thread blocks forever; report and exit instead. *)

val shutdown : t -> unit
(** Stop dispatchers and the timer thread and join the domains.
    Unblock daemon tasks first (close their mailboxes) — a domain only
    terminates once all its threads have. Idempotent. *)

val now : t -> float
(** Wall-clock seconds since {!create}. *)

val hw_cores : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware can
    actually run in parallel; stamped into benchmark metadata. *)

val set_spawn_cursor : t -> int -> unit
(** Force the round-robin spawn cursor (tests only: lets a wrap past
    [max_int] be exercised without 2^62 spawns). *)

type wheel_stats = {
  max_depth : int;  (** deepest any wheel slot has been *)
  fired : int;
  purged : int;  (** cancelled timers lazily removed without firing *)
}

val wheel_stats : t -> wheel_stats
(** Timer-wheel counters since {!create}; the mc cluster materializes
    them as [runtime.wheel.*] metrics at shutdown. *)
