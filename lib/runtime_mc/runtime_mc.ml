(* OCaml 5 multicore backend: a pool of worker domains, each hosting
   blocking tasks as systhreads, plus one timer thread driving
   wall-clock timers off a select(2) sleep with a self-pipe wakeup.

   Scheduling model (DESIGN 4g): [spawn] places the task on a domain
   chosen round-robin (work sharing); the domain's dispatcher hands it
   to a parked slot thread (or starts a new one), so a task may block
   (mailbox recv, gate await, sleep) without stalling its domain — the
   other threads of that domain keep running, and threads on different
   domains run in parallel. Within one domain only one thread executes
   OCaml code at a time; true parallelism equals the domain count.

   Hot-path design (DESIGN 4h): timers live in a hashed wheel (256
   slots x 1ms ticks, O(1) arm/cancel, lazily purged cancellations,
   batched expiry per sweep); the timer thread publishes how long it
   intends to sleep so [timer] only writes the self-pipe when the new
   deadline is earlier; slot threads are reused across tasks instead
   of paying a Thread.create per spawn.

   What this backend does NOT give you: determinism (no seeded
   schedule, no chooser), virtual time (now() is the wall clock),
   fault injection (the chaos stack is sim-only), or message delay /
   drop modelling. The sim backend remains the oracle; this one
   reports what the hardware actually does. *)

type task = { run : unit -> unit; daemon : bool }

(* A reusable thread: parks on its own condvar between tasks, so a
   steady-state workload spawns no threads at all. *)
type slot = {
  sm : Mutex.t;
  sc : Condition.t;
  mutable job : task option;
  mutable stop : bool;
}

type worker = {
  wq : task Queue.t;
  wm : Mutex.t;  (* guards wq / widle / nslots *)
  wc : Condition.t;  (* new task, or a slot parked (reaped at shutdown) *)
  mutable widle : slot list;
  mutable nslots : int;  (* slot threads ever started on this worker *)
}

type tev = { at : float; mutable cancelled : bool; tf : unit -> unit }

let wheel_slots = 256
let wheel_mask = wheel_slots - 1

let wheel_tick = 0.001
(* 1ms granularity: a timer never fires early (the sweep tests [at]
   directly), and fires at most one select(2) wakeup after it is due —
   the wheel only bounds how coarsely the sweep walks time. *)

type wheel_stats = { max_depth : int; fired : int; purged : int }

type t = {
  workers : worker array;
  rr : int Atomic.t;  (* round-robin spawn cursor *)
  lock : Mutex.t;  (* guards live / stopping *)
  idle : Condition.t;  (* signalled when live returns to 0 *)
  mutable live : int;  (* non-daemon tasks queued or running *)
  mutable stopping : bool;
  tlock : Mutex.t;  (* guards the wheel and its stats *)
  slots : tev list array;  (* slot = tick land wheel_mask *)
  slot_min : float array;  (* earliest [at] per slot; infinity if none *)
  slot_depth : int array;
  mutable last_tick : int;  (* highest tick already swept *)
  mutable sleep_until : float;  (* when the timer thread's sleep ends *)
  mutable wmax_depth : int;
  mutable wfired : int;
  mutable wpurged : int;  (* cancelled events removed without firing *)
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  t0 : float;
  mutable domains : unit Domain.t list;
  mutable timer_thread : Thread.t option;
  mutable runtime : Runtime.t option;
}

let wall () = Unix.gettimeofday ()
let now t = wall () -. t.t0

let report_exn where exn =
  Printf.eprintf "runtime_mc: uncaught exception in %s: %s\n%!" where
    (Printexc.to_string exn)

(* ---- worker domains ------------------------------------------------ *)

let finish_task t task =
  if not task.daemon then begin
    Mutex.lock t.lock;
    t.live <- t.live - 1;
    if t.live = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.lock
  end

let run_task t task =
  (try task.run () with
  | Runtime.Cancelled -> ()
  | exn -> report_exn "task" exn);
  finish_task t task

(* Run tasks handed over by the dispatcher, parking between them. The
   broadcast on [w.wc] is what lets the dispatcher's shutdown reap
   know every slot is back. *)
let rec slot_loop t w s =
  Mutex.lock s.sm;
  while s.job = None && not s.stop do
    Condition.wait s.sc s.sm
  done;
  match s.job with
  | None -> Mutex.unlock s.sm (* stop *)
  | Some task ->
      s.job <- None;
      Mutex.unlock s.sm;
      run_task t task;
      Mutex.lock w.wm;
      w.widle <- s :: w.widle;
      Condition.broadcast w.wc;
      Mutex.unlock w.wm;
      slot_loop t w s

let assign s task =
  Mutex.lock s.sm;
  s.job <- Some task;
  Condition.signal s.sc;
  Mutex.unlock s.sm

(* Each worker domain loops popping tasks and handing them to a parked
   slot thread (creating one only when all are busy); the dispatcher
   itself never blocks on task work, so a burst of spawns is absorbed
   promptly. On shutdown it drains the queue, waits for every slot to
   park, and stops them — after which the domain can be joined. *)
let dispatcher t w =
  let rec loop () =
    Mutex.lock w.wm;
    while Queue.is_empty w.wq && not t.stopping do
      Condition.wait w.wc w.wm
    done;
    if not (Queue.is_empty w.wq) then begin
      let task = Queue.pop w.wq in
      match w.widle with
      | s :: rest ->
          w.widle <- rest;
          Mutex.unlock w.wm;
          assign s task;
          loop ()
      | [] ->
          w.nslots <- w.nslots + 1;
          Mutex.unlock w.wm;
          let s =
            {
              sm = Mutex.create ();
              sc = Condition.create ();
              job = Some task;
              stop = false;
            }
          in
          ignore (Thread.create (fun () -> slot_loop t w s) ());
          loop ()
    end
    else begin
      (* stopping: every slot must park before the domain can exit *)
      while List.length w.widle < w.nslots do
        Condition.wait w.wc w.wm
      done;
      let slots = w.widle in
      w.widle <- [];
      Mutex.unlock w.wm;
      List.iter
        (fun s ->
          Mutex.lock s.sm;
          s.stop <- true;
          Condition.signal s.sc;
          Mutex.unlock s.sm)
        slots
    end
  in
  loop ()

let enqueue t ~daemon f =
  if not daemon then begin
    Mutex.lock t.lock;
    t.live <- t.live + 1;
    Mutex.unlock t.lock
  end;
  (* [land max_int] keeps the index non-negative after the counter
     wraps past max_int (fetch_and_add returns min_int there, and
     min_int mod 3 = -1). *)
  let i = Atomic.fetch_and_add t.rr 1 land max_int mod Array.length t.workers in
  let w = t.workers.(i) in
  Mutex.lock w.wm;
  Queue.push { run = f; daemon } w.wq;
  Condition.signal w.wc;
  Mutex.unlock w.wm

let set_spawn_cursor t v = Atomic.set t.rr v

(* ---- timers -------------------------------------------------------- *)

let wake_byte = Bytes.make 1 '!'

(* Both pipe ends are non-blocking. EAGAIN means the pipe is full — a
   wakeup is already pending, so dropping the byte is correct (this is
   what used to raise out of [timer ~delay]). *)
let rec wake_timer t =
  match Unix.write t.pipe_w wake_byte 0 1 with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wake_timer t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> ()

(* Only the timer thread reads the pipe, so one static buffer is safe. *)
let drain_buf = Bytes.create 256

let drain_pipe t =
  let rec go () =
    match Unix.read t.pipe_r drain_buf 0 (Bytes.length drain_buf) with
    | 0 -> ()
    | _ -> go () (* keep reading until the pipe is empty *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let tick_of at = int_of_float (at /. wheel_tick)

(* O(1) arm: push onto the event's slot, bump the slot's minimum, and
   wake the timer thread only if it is asleep past the new deadline. *)
let add_timer t ~delay f =
  let ev = { at = now t +. Float.max 0. delay; cancelled = false; tf = f } in
  Mutex.lock t.tlock;
  let s = tick_of ev.at land wheel_mask in
  t.slots.(s) <- ev :: t.slots.(s);
  t.slot_depth.(s) <- t.slot_depth.(s) + 1;
  if t.slot_depth.(s) > t.wmax_depth then t.wmax_depth <- t.slot_depth.(s);
  if ev.at < t.slot_min.(s) then t.slot_min.(s) <- ev.at;
  let must_wake = ev.at < t.sleep_until in
  Mutex.unlock t.tlock;
  if must_wake then wake_timer t;
  { Runtime.tcancel = (fun () -> ev.cancelled <- true) }
  (* O(1) cancel: the flag is purged lazily at the slot's next sweep.
     A stale slot_min can cause one spurious early wakeup, never a
     missed or early fire. *)

(* Walk the ticks since the last sweep (clamped to one revolution —
   each slot needs scanning at most once, since dueness is tested per
   event) and collect due events. Ends on [target - 1] so the current
   tick's slot is re-swept next pass: an event due later within this
   same tick must not wait a full revolution. Called with tlock held. *)
let sweep t nw =
  let target = tick_of nw in
  let first = max (t.last_tick + 1) (target - wheel_mask) in
  let due = ref [] in
  for tick = first to target do
    let s = tick land wheel_mask in
    if t.slot_depth.(s) > 0 && t.slot_min.(s) <= nw then begin
      let keep = ref [] and kmin = ref infinity and kn = ref 0 in
      List.iter
        (fun ev ->
          if ev.cancelled then t.wpurged <- t.wpurged + 1
          else if ev.at <= nw then due := ev :: !due
          else begin
            keep := ev :: !keep;
            incr kn;
            if ev.at < !kmin then kmin := ev.at
          end)
        t.slots.(s);
      t.slots.(s) <- !keep;
      t.slot_min.(s) <- !kmin;
      t.slot_depth.(s) <- !kn
    end
  done;
  t.last_tick <- target - 1;
  let due = List.sort (fun a b -> compare a.at b.at) !due in
  t.wfired <- t.wfired + List.length due;
  due

(* Earliest deadline across the wheel; stale minima from cancelled
   events only make this conservative (earlier). tlock held. *)
let next_deadline t =
  let best = ref infinity in
  for s = 0 to wheel_mask do
    if t.slot_min.(s) < !best then best := t.slot_min.(s)
  done;
  !best

(* Timer callbacks run inline on the timer thread; the runtime's own
   callbacks (gate opens, RPC retransmissions into mailboxes) never
   block, which keeps timer latency at select(2) wakeup cost. While
   firing, [sleep_until] is -inf so callbacks arming new timers never
   write the pipe — the next deadline is recomputed right after. *)
let timer_loop t =
  let rec loop () =
    Mutex.lock t.tlock;
    if t.stopping then Mutex.unlock t.tlock
    else begin
      let nw = now t in
      let next = next_deadline t in
      let wait =
        if next = infinity then 0.25 else Float.min 0.25 (next -. nw)
      in
      t.sleep_until <- (if wait > 0. then nw +. wait else nw);
      Mutex.unlock t.tlock;
      if wait > 0. then
        (try ignore (Unix.select [ t.pipe_r ] [] [] wait)
         with Unix.Unix_error _ -> ());
      drain_pipe t;
      let nw = now t in
      Mutex.lock t.tlock;
      let due = sweep t nw in
      t.sleep_until <- neg_infinity;
      Mutex.unlock t.tlock;
      List.iter
        (fun ev ->
          try ev.tf () with
          | Runtime.Cancelled -> ()
          | exn -> report_exn "timer" exn)
        due;
      loop ()
    end
  in
  loop ()

let wheel_stats t =
  Mutex.lock t.tlock;
  let s = { max_depth = t.wmax_depth; fired = t.wfired; purged = t.wpurged } in
  Mutex.unlock t.tlock;
  s

(* ---- gates --------------------------------------------------------- *)

type gate_state = Empty | Opened | Aborted

let gate () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let state = ref Empty in
  let settle s =
    Mutex.lock m;
    if !state = Empty then state := s;
    Condition.broadcast c;
    Mutex.unlock m
  in
  {
    Runtime.await =
      (fun () ->
        Mutex.lock m;
        while !state = Empty do
          Condition.wait c m
        done;
        let s = !state in
        Mutex.unlock m;
        if s = Aborted then raise Runtime.Cancelled);
    open_ = (fun () -> settle Opened);
    abort = (fun () -> settle Aborted);
    live =
      (fun () ->
        Mutex.lock m;
        let l = !state = Empty in
        Mutex.unlock m;
        l);
  }

(* ---- pool construction / lifecycle -------------------------------- *)

(* Domain-local rng: threads of one domain never run concurrently, so
   an unsynchronized per-domain state is race-free; cross-domain each
   has its own. No determinism is promised on this backend. *)
let rng_key = Domain.DLS.new_key (fun () -> Random.State.make_self_init ())

let hw_cores () = Domain.recommended_domain_count ()

let runtime t =
  match t.runtime with Some rt -> rt | None -> assert false

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Runtime_mc.create: domains < 1";
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let t =
    {
      workers =
        Array.init domains (fun _ ->
            {
              wq = Queue.create ();
              wm = Mutex.create ();
              wc = Condition.create ();
              widle = [];
              nslots = 0;
            });
      rr = Atomic.make 0;
      lock = Mutex.create ();
      idle = Condition.create ();
      live = 0;
      stopping = false;
      tlock = Mutex.create ();
      slots = Array.make wheel_slots [];
      slot_min = Array.make wheel_slots infinity;
      slot_depth = Array.make wheel_slots 0;
      last_tick = -1;
      sleep_until = infinity (* wake on any arm until the first sleep *);
      wmax_depth = 0;
      wfired = 0;
      wpurged = 0;
      pipe_r;
      pipe_w;
      t0 = wall ();
      domains = [];
      timer_thread = None;
      runtime = None;
    }
  in
  t.domains <-
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> dispatcher t w)) t.workers);
  t.timer_thread <- Some (Thread.create (fun () -> timer_loop t) ());
  let rec rt =
    {
      Runtime.name = "mc";
      now = (fun () -> now t);
      rng = (fun () -> Domain.DLS.get rng_key);
      spawn = (fun f -> enqueue t ~daemon:false f);
      yield = Thread.yield;
      timer = (fun ~delay f -> add_timer t ~delay f);
      gate;
      all = (fun window thunks -> Runtime.all_generic rt window thunks);
    }
  in
  t.runtime <- Some rt;
  t

let spawn_daemon t f = enqueue t ~daemon:true f

(* Wait for every non-daemon task to finish (daemon tasks — the
   transport's receive loops — are excluded, or this would never
   return). *)
let await_idle t =
  Mutex.lock t.lock;
  while t.live > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

(* Bounded variant for chaos soaks: a stuck task (a liveness bug —
   exactly what the soak hunts) must fail the run, not hang it.
   OCaml's Condition has no timed wait, so this polls; 2 ms of poll
   granularity is far below the soak's time scale. *)
let try_await_idle t ~timeout =
  let deadline = wall () +. timeout in
  let rec go () =
    Mutex.lock t.lock;
    let live = t.live in
    Mutex.unlock t.lock;
    if live = 0 then true
    else if wall () >= deadline then false
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

(* Stop dispatchers and the timer thread, then join the domains. The
   caller must first unblock its daemon tasks (close their mailboxes):
   a dispatcher only reaps its slots — and its domain only terminates —
   once every slot thread has parked. *)
let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then Mutex.unlock t.lock
  else begin
    t.stopping <- true;
    Mutex.unlock t.lock;
    Array.iter
      (fun w ->
        Mutex.lock w.wm;
        Condition.broadcast w.wc;
        Mutex.unlock w.wm)
      t.workers;
    wake_timer t;
    (match t.timer_thread with Some th -> Thread.join th | None -> ());
    List.iter Domain.join t.domains;
    t.domains <- [];
    (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
    try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
  end
