(* OCaml 5 multicore backend: a pool of worker domains, each hosting
   blocking tasks as systhreads, plus one timer thread driving
   wall-clock timers off a select(2) sleep with a self-pipe wakeup.

   Scheduling model (DESIGN 4g): [spawn] places the task on a domain
   chosen round-robin (work sharing); the domain's dispatcher starts
   it as a thread, so a task may block (mailbox recv, gate await,
   sleep) without stalling its domain — the other threads of that
   domain keep running, and threads on different domains run in
   parallel. Within one domain only one thread executes OCaml code at
   a time; true parallelism equals the domain count.

   What this backend does NOT give you: determinism (no seeded
   schedule, no chooser), virtual time (now() is the wall clock),
   fault injection (the chaos stack is sim-only), or message delay /
   drop modelling. The sim backend remains the oracle; this one
   reports what the hardware actually does. *)

type task = { run : unit -> unit; daemon : bool }

type worker = {
  wq : task Queue.t;
  wm : Mutex.t;
  wc : Condition.t;
}

type tev = { at : float; mutable cancelled : bool; tf : unit -> unit }

type t = {
  workers : worker array;
  rr : int Atomic.t;  (* round-robin spawn cursor *)
  lock : Mutex.t;  (* guards live / stopping *)
  idle : Condition.t;  (* signalled when live returns to 0 *)
  mutable live : int;  (* non-daemon tasks queued or running *)
  mutable stopping : bool;
  tlock : Mutex.t;  (* guards timers *)
  mutable timers : tev list;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  t0 : float;
  mutable domains : unit Domain.t list;
  mutable timer_thread : Thread.t option;
  mutable runtime : Runtime.t option;
}

let wall () = Unix.gettimeofday ()
let now t = wall () -. t.t0

let report_exn where exn =
  Printf.eprintf "runtime_mc: uncaught exception in %s: %s\n%!" where
    (Printexc.to_string exn)

(* ---- worker domains ------------------------------------------------ *)

let finish_task t task =
  if not task.daemon then begin
    Mutex.lock t.lock;
    t.live <- t.live - 1;
    if t.live = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.lock
  end

let run_task t task =
  (try task.run () with
  | Runtime.Cancelled -> ()
  | exn -> report_exn "task" exn);
  finish_task t task

(* Each worker domain loops popping tasks and starting them as
   threads of this domain; the dispatcher thread itself never blocks
   on task work, so a burst of spawns is absorbed promptly. *)
let dispatcher t w =
  let rec loop () =
    Mutex.lock w.wm;
    while Queue.is_empty w.wq && not t.stopping do
      Condition.wait w.wc w.wm
    done;
    if Queue.is_empty w.wq then Mutex.unlock w.wm (* stopping: exit *)
    else begin
      let task = Queue.pop w.wq in
      Mutex.unlock w.wm;
      ignore (Thread.create (fun () -> run_task t task) ());
      loop ()
    end
  in
  loop ()

let enqueue t ~daemon f =
  if not daemon then begin
    Mutex.lock t.lock;
    t.live <- t.live + 1;
    Mutex.unlock t.lock
  end;
  let i = Atomic.fetch_and_add t.rr 1 mod Array.length t.workers in
  let w = t.workers.(i) in
  Mutex.lock w.wm;
  Queue.push { run = f; daemon } w.wq;
  Condition.signal w.wc;
  Mutex.unlock w.wm

(* ---- timers -------------------------------------------------------- *)

let wake_timer t =
  try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let drain_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.pipe_r buf 0 64 with
    | n when n = 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let add_timer t ~delay f =
  let ev = { at = now t +. Float.max 0. delay; cancelled = false; tf = f } in
  Mutex.lock t.tlock;
  t.timers <- ev :: t.timers;
  Mutex.unlock t.tlock;
  wake_timer t;
  { Runtime.tcancel = (fun () -> ev.cancelled <- true) }

(* Timer callbacks run inline on the timer thread; the runtime's own
   callbacks (gate opens, RPC retransmissions into mailboxes) never
   block, which keeps timer latency at select(2) wakeup cost. *)
let timer_loop t =
  let rec loop () =
    Mutex.lock t.tlock;
    let stop = t.stopping in
    t.timers <- List.filter (fun ev -> not ev.cancelled) t.timers;
    let next =
      List.fold_left
        (fun acc ev ->
          match acc with
          | None -> Some ev.at
          | Some a -> Some (Float.min a ev.at))
        None t.timers
    in
    Mutex.unlock t.tlock;
    if stop then ()
    else begin
      let wait =
        match next with
        | None -> 0.25
        | Some at -> Float.min 0.25 (at -. now t)
      in
      if wait > 0. then
        (try ignore (Unix.select [ t.pipe_r ] [] [] wait)
         with Unix.Unix_error _ -> ());
      drain_pipe t;
      let nw = now t in
      Mutex.lock t.tlock;
      let due, rest =
        List.partition (fun ev -> (not ev.cancelled) && ev.at <= nw) t.timers
      in
      t.timers <- rest;
      Mutex.unlock t.tlock;
      List.iter
        (fun ev ->
          try ev.tf () with
          | Runtime.Cancelled -> ()
          | exn -> report_exn "timer" exn)
        (List.sort (fun a b -> compare a.at b.at) due);
      loop ()
    end
  in
  loop ()

(* ---- gates --------------------------------------------------------- *)

type gate_state = Empty | Opened | Aborted

let gate () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let state = ref Empty in
  let settle s =
    Mutex.lock m;
    if !state = Empty then state := s;
    Condition.broadcast c;
    Mutex.unlock m
  in
  {
    Runtime.await =
      (fun () ->
        Mutex.lock m;
        while !state = Empty do
          Condition.wait c m
        done;
        let s = !state in
        Mutex.unlock m;
        if s = Aborted then raise Runtime.Cancelled);
    open_ = (fun () -> settle Opened);
    abort = (fun () -> settle Aborted);
    live =
      (fun () ->
        Mutex.lock m;
        let l = !state = Empty in
        Mutex.unlock m;
        l);
  }

(* ---- pool construction / lifecycle -------------------------------- *)

(* Domain-local rng: threads of one domain never run concurrently, so
   an unsynchronized per-domain state is race-free; cross-domain each
   has its own. No determinism is promised on this backend. *)
let rng_key = Domain.DLS.new_key (fun () -> Random.State.make_self_init ())

let hw_cores () = Domain.recommended_domain_count ()

let runtime t =
  match t.runtime with Some rt -> rt | None -> assert false

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Runtime_mc.create: domains < 1";
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  let t =
    {
      workers =
        Array.init domains (fun _ ->
            {
              wq = Queue.create ();
              wm = Mutex.create ();
              wc = Condition.create ();
            });
      rr = Atomic.make 0;
      lock = Mutex.create ();
      idle = Condition.create ();
      live = 0;
      stopping = false;
      tlock = Mutex.create ();
      timers = [];
      pipe_r;
      pipe_w;
      t0 = wall ();
      domains = [];
      timer_thread = None;
      runtime = None;
    }
  in
  t.domains <-
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> dispatcher t w)) t.workers);
  t.timer_thread <- Some (Thread.create (fun () -> timer_loop t) ());
  let rec rt =
    {
      Runtime.name = "mc";
      now = (fun () -> now t);
      rng = (fun () -> Domain.DLS.get rng_key);
      spawn = (fun f -> enqueue t ~daemon:false f);
      yield = Thread.yield;
      timer = (fun ~delay f -> add_timer t ~delay f);
      gate;
      all = (fun window thunks -> Runtime.all_generic rt window thunks);
    }
  in
  t.runtime <- Some rt;
  t

let spawn_daemon t f = enqueue t ~daemon:true f

(* Wait for every non-daemon task to finish (daemon tasks — the
   transport's receive loops — are excluded, or this would never
   return). *)
let await_idle t =
  Mutex.lock t.lock;
  while t.live > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock

(* Stop dispatchers and the timer thread, then join the domains. The
   caller must first unblock its daemon tasks (close their mailboxes):
   a domain only terminates once all of its threads have. *)
let shutdown t =
  Mutex.lock t.lock;
  if t.stopping then Mutex.unlock t.lock
  else begin
    t.stopping <- true;
    Mutex.unlock t.lock;
    Array.iter
      (fun w ->
        Mutex.lock w.wm;
        Condition.broadcast w.wc;
        Mutex.unlock w.wm)
      t.workers;
    wake_timer t;
    (match t.timer_thread with Some th -> Thread.join th | None -> ());
    List.iter Domain.join t.domains;
    t.domains <- [];
    (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
    try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
  end
