(* ddmin over the event list (Zeller & Hildebrandt, "Simplifying and
   isolating failure-inducing input"). *)

let with_events plan events =
  (* Bypass Plan.make's sort: [events] is a subsequence of an
     already-sorted list. *)
  { plan with Plan.events }

(* Split [lst] into [k] contiguous chunks, as evenly as possible. *)
let chunks k lst =
  let len = List.length lst in
  let base = len / k and extra = len mod k in
  let rec go i rest acc =
    if i = k then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest =
        let rec take n l acc =
          if n = 0 then (List.rev acc, l)
          else
            match l with
            | [] -> (List.rev acc, [])
            | x :: tl -> take (n - 1) tl (x :: acc)
        in
        take size rest []
      in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 lst []

let shrink ~check plan =
  let fails events = check (with_events plan events) in
  (* ddmin: try dropping each chunk; if no drop keeps the failure,
     double the granularity. *)
  let rec ddmin events k =
    let len = List.length events in
    if len <= 1 then events
    else
      let parts = chunks (min k len) events in
      let rec try_drop i =
        if i >= List.length parts then None
        else
          let reduced =
            List.concat (List.filteri (fun j _ -> j <> i) parts)
          in
          if reduced <> [] && fails reduced then Some reduced
          else try_drop (i + 1)
      in
      match try_drop 0 with
      | Some reduced -> ddmin reduced (max 2 (min k (List.length reduced)))
      | None ->
          if min k len >= len then events
          else ddmin events (min len (2 * k))
  in
  let events =
    if plan.Plan.events = [] then []
    else ddmin plan.Plan.events 2
  in
  (* Trim the horizon to just past the last surviving event, if the
     shorter run still fails. *)
  let plan = with_events plan events in
  match List.rev events with
  | [] -> plan
  | last :: _ ->
      let tight = Float.min plan.Plan.horizon (last.Plan.at +. 60.) in
      if tight < plan.Plan.horizon then begin
        let candidate = { plan with Plan.horizon = tight } in
        if check candidate then candidate else plan
      end
      else plan
