(** The nemesis: executes a {!Plan} against a live cluster.

    [install] schedules every plan event on the cluster's engine; when
    the engine reaches an event's time the corresponding fault is
    applied — {!Brick.crash}/{!Brick.recover}, {!Simnet.Net.partition},
    drop-probability and link changes, {!Core.Clock.set_skew} steps,
    and the storage faults ({!Core.Slog.tear_last},
    {!Core.Slog.corrupt_newest}, {!Core.Slog.damage_newest}) against
    the victim brick's stripe logs. Each applied fault emits an
    [Obs.Fault] event (actor [Sim], op [-1]) when observability is on,
    so fault injections appear in traces interleaved with protocol
    phases.

    The nemesis only {e applies} faults; it never repairs the
    deployment behind the protocol's back. Call {!restore} after the
    plan's horizon to return the environment (not the stored state) to
    health: partitions healed, drop probability back to [base_drop],
    downed links revived, skews zeroed, crashed bricks recovered.
    Storage corruption is deliberately left in place — repairing it is
    the protocol's job (recovery reads, {!Fab.Volume.scrub}). *)

type t

val install : ?base_drop:float -> Plan.t -> Core.Cluster.t -> t
(** Schedule every event of the plan on the cluster's engine, starting
    from the engine's current time. [base_drop] (default [0.]) is the
    drop probability {!restore} returns the network to.
    @raise Invalid_argument if the plan touches a brick id outside the
    deployment. *)

val restore : t -> unit
(** Return the {e environment} to health (see above). Idempotent.
    Safe to call while scheduled events are still pending: pending
    events are cancelled first. *)
