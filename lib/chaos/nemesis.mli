(** The nemesis: executes a {!Plan} against a live cluster, on either
    backend.

    [install] schedules every plan event on the cluster's {e runtime}
    (the sim engine's virtual-time queue, or the multicore backend's
    timer wheel); when the runtime reaches an event's time the
    corresponding fault is applied. On the sim backend faults go
    through {!Simnet.Net}'s mutators, {!Core.Clock.set_skew}, and the
    storage-fault entry points ({!Core.Slog.tear_last},
    {!Core.Slog.corrupt_newest}, {!Core.Slog.damage_newest}); on the
    multicore backend network faults go through the deployment's
    {!Core.Faultnet} and crashes through {!Core.Cluster.crash} /
    {!Core.Cluster.recover}, which really tear down and restart the
    brick's receive loop (DESIGN 4i). Each applied fault emits the
    same [Obs.Fault] event (actor [Sim], op [-1]) on both backends
    when observability is on, so fault injections appear in traces
    interleaved with protocol phases.

    Not every fault has a faithful multicore implementation: [Skew]
    would be a silent no-op on the mc backend's logical clocks, and
    the storage faults ([Torn_crash], [Bit_rot], [Sector_error])
    would mutate stripe logs under a live replica's feet. [install]
    rejects plans containing them on mc with an error naming the
    variant — never a silent no-op.

    The nemesis only {e applies} faults; it never repairs the
    deployment behind the protocol's back. Call {!restore} after the
    plan's horizon to return the environment (not the stored state) to
    health: partitions healed, drop probability back to [base_drop],
    downed links revived, delay/jitter back to baseline, skews zeroed,
    crashed bricks recovered. Storage corruption is deliberately left
    in place — repairing it is the protocol's job (recovery reads,
    {!Fab.Volume.scrub}). *)

type t

val install :
  ?base_drop:float ->
  ?time_scale:float ->
  ?lenient:bool ->
  Plan.t ->
  Core.Cluster.t ->
  t
(** Schedule every event of the plan on the cluster's runtime.
    [base_drop] (default [0.]) is the drop probability {!restore}
    returns the network to. [time_scale] (default [1.], sim) maps one
    plan time unit to that many backend time units — on mc, where
    time is wall-clock seconds, [~time_scale:0.001] runs a
    600-unit plan in 0.6 s. Plan times count from install on mc and
    from engine time 0 on sim (install after running the engine and
    earlier events collapse to immediate, exactly as before).

    Faults with no faithful mc implementation (see above) make
    [install] raise on the mc backend, naming the variant and the
    reason — unless [lenient] (default [false]) is set, which logs
    and skips just those events (for replaying a sim-authored plan's
    network/crash portion under real parallelism).

    @raise Invalid_argument if the plan touches a brick id outside
    the deployment, if [time_scale <= 0], or (non-[lenient] mc) if
    the plan contains a sim-only fault. *)

val restore : t -> unit
(** Return the {e environment} to health (see above). Idempotent, and
    safe to call while scheduled events are still pending: pending
    events are cancelled first, and a timer callback that loses the
    race observes the restored flag and does nothing. On the mc
    backend crashed bricks restart asynchronously
    ({!Core.Cluster.recover}); quiesce the cluster to wait for them. *)

val applied : t -> (float * Plan.fault) list
(** The faults actually applied so far, oldest first, each stamped
    with the runtime's time when it fired (sim: virtual time = the
    plan's event time; mc: wall-clock seconds on the pool's clock,
    comparable to operation invocation times). Faults skipped by
    [lenient] or cancelled by {!restore} never appear. *)

val inject : ?time_scale:float -> Core.Cluster.t -> Plan.fault -> unit
(** One-shot fault application outside any plan: validates the fault
    for the cluster's backend (same rejections as {!install}), applies
    it, and emits the [Obs.Fault] event. No bookkeeping — the caller
    undoes what it injects (benchmarks driving crash/heal cycles).
    [time_scale] scales a [Slow]'s units as in {!install}; a sim
    [Slow] stacks on the network config current at the call.
    @raise Invalid_argument on a sim-only fault on mc. *)
