(** Plan shrinking: reduce a failing fault plan to a minimal
    reproducer.

    Classic delta debugging (ddmin) over the plan's event list: try
    removing large chunks of events first (halves, then quarters, down
    to single events), keeping a removal whenever the reduced plan
    still fails the caller's [check], and iterate to a fixpoint — the
    result is 1-minimal (no single event can be removed without losing
    the failure). A final pass trims the horizon down to just past the
    last surviving event, so the reproducer also {e runs} quickly.

    [check] is typically [fun p -> Harness.failed (Harness.run ~seed p)]
    with the seed of the original failure: same plan + same seed is a
    deterministic replay, so shrinking never flakes. *)

val shrink : check:(Plan.t -> bool) -> Plan.t -> Plan.t
(** [shrink ~check plan] assumes [check plan = true] and returns a
    plan that still satisfies [check] with as few events as ddmin can
    manage. The number of [check] evaluations is O(e^2) worst case,
    O(e log e) typical, for [e] events. *)
