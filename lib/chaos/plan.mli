(** Declarative fault plans: the nemesis's script.

    A plan is a timed schedule of faults against a deployment —
    process crashes and recoveries, network partitions, message-loss
    bursts, degraded links, clock-skew steps, and storage faults (torn
    writes at crash boundaries, latent sector errors, silent bit rot).
    Plans are plain data: they print to a stable line format, parse
    back losslessly, and shrink structurally ({!Shrink}), so a failing
    chaos run can always be replayed from a small text file.

    The line format, one event per line (['#'] starts a comment):
    {v
    name crash-storm
    horizon 600
    at 40 crash 1
    at 90 recover 1
    at 120 partition 0,1|2,3,4
    at 160 heal
    at 200 drop 0.25
    at 240 drop 0
    at 260 link-down 0 3
    at 280 link-up 0 3
    at 290 slow 2 1
    at 300 skew 1 25
    at 330 torn-crash 2
    at 360 bit-rot 0 1
    at 390 sector-error 4 0
    v} *)

type fault =
  | Crash of int  (** crash brick [i] (volatile state lost) *)
  | Recover of int  (** bring brick [i] back up *)
  | Partition of int list list
      (** split the network into groups; unlisted bricks form an
          implicit extra group *)
  | Heal  (** remove any partition *)
  | Drop of float  (** set the per-message drop probability *)
  | Link_down of int * int  (** kill the directed link src -> dst *)
  | Link_up of int * int  (** revive the directed link *)
  | Slow of float * float
      (** [Slow (delay, jitter)]: add [delay] (± uniform [jitter]) to
          every message; [Slow (0, 0)] restores the baseline. On the
          sim backend the extra is in delta units on top of the
          network's base config; on mc it is wall-clock units scaled
          by the nemesis's [time_scale]. *)
  | Skew of int * float
      (** step brick [i]'s real-time clock skew (no-op on logical
          clocks) *)
  | Torn_crash of int
      (** crash brick [i] with its most recent log append on every
          stripe torn: the entry's stored checksum no longer matches,
          so after recovery the brick reads it as absent — the classic
          torn sector write at a power-cut boundary *)
  | Bit_rot of int * int
      (** [Bit_rot (brick, stripe)]: silently flip a bit in the newest
          block of the stripe's log on that brick, restamping the
          checksum — firmware-grade corruption that only
          {!Core.Coordinator.scrub} can see *)
  | Sector_error of int * int
      (** [Sector_error (brick, stripe)]: damage the newest log entry
          detectably (stored checksum mismatch) — a latent sector
          error the replica discovers on read and masks as absence *)

type event = { at : float; fault : fault }

type t = {
  name : string;
  horizon : float;  (** how long the chaos window lasts *)
  events : event list;  (** sorted by [at] *)
}

val make : name:string -> horizon:float -> event list -> t
(** Sorts the events by time (stable).
    @raise Invalid_argument on a negative time, a time beyond the
    horizon, or a non-positive horizon. *)

val fault_label : fault -> string
(** The event-line tail, e.g. ["crash 1"] or ["partition 0,1|2,3"];
    also the label chaos faults carry in [Obs.Fault] events. *)

val overlay_of_fault : fault -> Obs.Timeline.overlay
(** How the fault renders on a report's fault-overlay track: faults
    with a clear undo open/close a matching-key interval ([Crash] /
    [Torn_crash] until [Recover], [Partition] until [Heal], [Drop p>0]
    until [Drop 0], [Link_down] until [Link_up], [Skew f<>0] until
    [Skew 0]); one-shot storage damage is a point. *)

val overlay_of_label : string -> Obs.Timeline.overlay
(** {!overlay_of_fault} on a {!fault_label}-syntax string (the label
    carried by [Obs.Fault] events); unparseable labels degrade to a
    point with the raw label. Pass this as [classify] to
    [Obs.Timeline.create]. *)

val to_string : t -> string
(** Print in the line format; [of_string (to_string p)] re-reads [p]
    exactly (up to comment lines and float formatting of inputs that
    themselves round-trip). *)

val of_string : string -> (t, string) result
(** Parse the line format; the error names the offending line. *)

val max_brick : t -> int
(** Largest brick id any event touches, [-1] if none do; the harness
    checks plans against the deployment size with this. *)

val builtins : (string * t) list
(** The bundled plans, keyed by name: ["crash-storm"] (overlapping
    crash/recover waves, including a torn-write crash),
    ["rolling-partition"] (minority/majority splits sweeping the
    brick set, then a loss burst), ["torn-writes"] (repeated
    torn-write power cuts), ["bit-rot"] (silent corruption plus
    latent sector errors under clock skew), ["mc-mixed"] (crashes, a
    partition, background drop, a degraded-link window and a slow
    spell — only faults with a faithful multicore implementation, so
    the same text runs on both backends). All are written for a
    deployment of 5 bricks and at least 4 stripes. *)

val builtin : string -> t
(** @raise Not_found if no bundled plan has that name. *)

val random : rng:Random.State.t -> bricks:int -> horizon:float -> t
(** Generate a randomized mc-safe plan: sequential non-overlapping
    fault episodes (crash/recover, partition/heal, link-down/up,
    drop/stop, slow/restore), each held for a random window then
    undone before the next begins. Draws only faults both backends
    implement — no storage faults, no skew — so a failing random soak
    replays on the sim backend.
    @raise Invalid_argument if [bricks < 2] or [horizon <= 0]. *)
