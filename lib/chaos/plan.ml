type fault =
  | Crash of int
  | Recover of int
  | Partition of int list list
  | Heal
  | Drop of float
  | Link_down of int * int
  | Link_up of int * int
  | Slow of float * float
  | Skew of int * float
  | Torn_crash of int
  | Bit_rot of int * int
  | Sector_error of int * int

type event = { at : float; fault : fault }
type t = { name : string; horizon : float; events : event list }

let sort_events evs =
  List.stable_sort (fun a b -> Float.compare a.at b.at) evs

let make ~name ~horizon events =
  if horizon <= 0. then invalid_arg "Chaos.Plan.make: horizon <= 0";
  List.iter
    (fun e ->
      if e.at < 0. then invalid_arg "Chaos.Plan.make: negative event time";
      if e.at > horizon then
        invalid_arg "Chaos.Plan.make: event beyond horizon")
    events;
  { name; horizon; events = sort_events events }

(* %g prints floats compactly and round-trips every value we generate
   (times are written as decimal literals in plan files). *)
let fl = Printf.sprintf "%g"

let fault_label = function
  | Crash i -> Printf.sprintf "crash %d" i
  | Recover i -> Printf.sprintf "recover %d" i
  | Partition groups ->
      Printf.sprintf "partition %s"
        (String.concat "|"
           (List.map
              (fun g -> String.concat "," (List.map string_of_int g))
              groups))
  | Heal -> "heal"
  | Drop p -> Printf.sprintf "drop %s" (fl p)
  | Link_down (s, d) -> Printf.sprintf "link-down %d %d" s d
  | Link_up (s, d) -> Printf.sprintf "link-up %d %d" s d
  | Slow (d, j) -> Printf.sprintf "slow %s %s" (fl d) (fl j)
  | Skew (i, f) -> Printf.sprintf "skew %d %s" i (fl f)
  | Torn_crash i -> Printf.sprintf "torn-crash %d" i
  | Bit_rot (b, s) -> Printf.sprintf "bit-rot %d %d" b s
  | Sector_error (b, s) -> Printf.sprintf "sector-error %d %d" b s

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "name %s\n" t.name);
  Buffer.add_string buf (Printf.sprintf "horizon %s\n" (fl t.horizon));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "at %s %s\n" (fl e.at) (fault_label e.fault)))
    t.events;
  Buffer.contents buf

let parse_groups s =
  List.map
    (fun g ->
      List.map int_of_string
        (String.split_on_char ',' g |> List.filter (fun x -> x <> "")))
    (String.split_on_char '|' s)

let parse_fault = function
  | [ "crash"; i ] -> Crash (int_of_string i)
  | [ "recover"; i ] -> Recover (int_of_string i)
  | [ "partition"; g ] -> Partition (parse_groups g)
  | [ "heal" ] -> Heal
  | [ "drop"; p ] -> Drop (float_of_string p)
  | [ "link-down"; s; d ] -> Link_down (int_of_string s, int_of_string d)
  | [ "link-up"; s; d ] -> Link_up (int_of_string s, int_of_string d)
  | [ "slow"; d; j ] -> Slow (float_of_string d, float_of_string j)
  | [ "skew"; i; f ] -> Skew (int_of_string i, float_of_string f)
  | [ "torn-crash"; i ] -> Torn_crash (int_of_string i)
  | [ "bit-rot"; b; s ] -> Bit_rot (int_of_string b, int_of_string s)
  | [ "sector-error"; b; s ] -> Sector_error (int_of_string b, int_of_string s)
  | _ -> failwith "unknown fault"

let of_string s =
  let name = ref "unnamed" and horizon = ref None and events = ref [] in
  let err lineno line msg =
    Error (Printf.sprintf "plan line %d (%S): %s" lineno line msg)
  in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> (
        match !horizon with
        | None -> Error "plan: missing horizon line"
        | Some horizon -> (
            match
              make ~name:!name ~horizon (List.rev !events)
            with
            | plan -> Ok plan
            | exception Invalid_argument m -> Error m))
    | line :: rest -> (
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) rest
        else
          let words =
            String.split_on_char ' ' trimmed
            |> List.filter (fun w -> w <> "")
          in
          match words with
          | "name" :: n :: [] ->
              name := n;
              go (lineno + 1) rest
          | "horizon" :: h :: [] -> (
              match float_of_string_opt h with
              | Some h ->
                  horizon := Some h;
                  go (lineno + 1) rest
              | None -> err lineno line "bad horizon")
          | "at" :: time :: fault -> (
              match float_of_string_opt time with
              | None -> err lineno line "bad event time"
              | Some at -> (
                  match parse_fault fault with
                  | fault ->
                      events := { at; fault } :: !events;
                      go (lineno + 1) rest
                  | exception _ -> err lineno line "bad fault"))
          | _ -> err lineno line "expected name/horizon/at")
  in
  go 1 lines

(* How a fault shows up on a report's fault-overlay track: faults with
   a clear undo open/close an interval keyed so begin and end match up;
   one-shot storage damage is a point. [Torn_crash] opens the same
   interval a plain crash does — the brick is down either way until its
   [Recover]. *)
let overlay_of_fault = function
  | Crash i | Torn_crash i -> `Begin (Printf.sprintf "crash b%d" i)
  | Recover i -> `End (Printf.sprintf "crash b%d" i)
  | Partition _ -> `Begin "partition"
  | Heal -> `End "partition"
  | Drop p -> if p > 0. then `Begin "drop" else `End "drop"
  | Link_down (s, d) -> `Begin (Printf.sprintf "link b%d-b%d" s d)
  | Link_up (s, d) -> `End (Printf.sprintf "link b%d-b%d" s d)
  | Slow (d, j) -> if d > 0. || j > 0. then `Begin "slow" else `End "slow"
  | Skew (i, f) ->
      if f <> 0. then `Begin (Printf.sprintf "skew b%d" i)
      else `End (Printf.sprintf "skew b%d" i)
  | Bit_rot (b, s) -> `Point (Printf.sprintf "bit-rot b%d/s%d" b s)
  | Sector_error (b, s) -> `Point (Printf.sprintf "sector-error b%d/s%d" b s)

let overlay_of_label label =
  match parse_fault (String.split_on_char ' ' label
                     |> List.filter (fun w -> w <> "")) with
  | fault -> overlay_of_fault fault
  | exception _ -> `Point label

let max_brick t =
  List.fold_left
    (fun acc e ->
      let touched =
        match e.fault with
        | Crash i | Recover i | Skew (i, _) | Torn_crash i -> [ i ]
        | Bit_rot (b, _) | Sector_error (b, _) -> [ b ]
        | Link_down (s, d) | Link_up (s, d) -> [ s; d ]
        | Partition groups -> List.concat groups
        | Heal | Drop _ | Slow _ -> []
      in
      List.fold_left max acc touched)
    (-1) t.events

(* ------------------------------------------------------------------ *)
(* Bundled plans (written for 5 bricks, >= 4 stripes).                 *)
(* ------------------------------------------------------------------ *)

let ev at fault = { at; fault }

let crash_storm =
  make ~name:"crash-storm" ~horizon:600.
    [
      ev 40. (Crash 1);
      ev 90. (Recover 1);
      ev 120. (Crash 2);
      ev 140. (Crash 3);
      (* two down: quorum lost on some stripes until 180 *)
      ev 180. (Recover 2);
      ev 220. (Recover 3);
      ev 260. (Crash 0);
      ev 310. (Recover 0);
      ev 340. (Torn_crash 4);
      ev 400. (Recover 4);
    ]

let rolling_partition =
  make ~name:"rolling-partition" ~horizon:600.
    [
      ev 50. (Partition [ [ 0; 1; 2 ]; [ 3; 4 ] ]);
      ev 110. Heal;
      ev 150. (Partition [ [ 0; 1 ]; [ 2; 3; 4 ] ]);
      ev 210. Heal;
      ev 250. (Partition [ [ 0; 4 ]; [ 1; 2; 3 ] ]);
      ev 310. Heal;
      ev 350. (Drop 0.2);
      ev 450. (Drop 0.);
      ev 470. (Link_down (0, 3));
      ev 520. (Link_up (0, 3));
    ]

(* Every tear hits the same brick: a torn write revokes one durable
   copy of whatever version is newest on the victim, and a completed
   write is only guaranteed q = 4 of 5 durable copies. A later
   recovery samples a quorum of 4 bricks — it can miss one of the
   survivors — and needs to see m = 2 copies of the version to keep
   it. So a quiescent stripe tolerates exactly one distinct tear
   victim between writes: tears on two distinct bricks can leave a
   completed write with only 2 copies, of which a legitimate quorum
   sample sees just 1, and the resulting roll-back erases the write
   (a storage-loss outcome, not a protocol bug). Repeating brick 1
   exercises the torn-slog handling on every crash while staying
   inside that durability envelope. *)
let torn_writes =
  make ~name:"torn-writes" ~horizon:600.
    [
      ev 60. (Torn_crash 1);
      ev 110. (Recover 1);
      ev 170. (Torn_crash 1);
      ev 220. (Recover 1);
      ev 280. (Torn_crash 1);
      ev 340. (Recover 1);
      ev 400. (Crash 2);
      ev 450. (Recover 2);
    ]

let bit_rot =
  make ~name:"bit-rot" ~horizon:600.
    [
      ev 50. (Bit_rot (0, 0));
      ev 90. (Bit_rot (1, 1));
      ev 130. (Sector_error (2, 0));
      ev 170. (Bit_rot (3, 2));
      ev 210. (Sector_error (4, 1));
      ev 250. (Bit_rot (2, 3));
      ev 300. (Skew (1, 20.));
      ev 380. (Skew (1, 0.));
    ]

(* The canned plan for the multicore backend: crashes, a partition,
   background drop and slow links — every fault here has a faithful mc
   implementation (no storage faults, no clock skew), so the same text
   runs on both backends. *)
let mc_mixed =
  make ~name:"mc-mixed" ~horizon:600.
    [
      ev 30. (Drop 0.05);
      ev 60. (Crash 1);
      ev 120. (Recover 1);
      ev 160. (Partition [ [ 0; 1; 2 ]; [ 3; 4 ] ]);
      ev 230. Heal;
      ev 270. (Link_down (0, 3));
      ev 330. (Link_up (0, 3));
      ev 360. (Slow (2., 1.));
      ev 430. (Slow (0., 0.));
      ev 460. (Crash 3);
      ev 520. (Recover 3);
      ev 560. (Drop 0.);
    ]

let builtins =
  [
    ("crash-storm", crash_storm);
    ("rolling-partition", rolling_partition);
    ("torn-writes", torn_writes);
    ("bit-rot", bit_rot);
    ("mc-mixed", mc_mixed);
  ]

let builtin name = List.assoc name builtins

(* ------------------------------------------------------------------ *)
(* Randomized plans                                                    *)
(* ------------------------------------------------------------------ *)

(* Sequential non-overlapping fault episodes: each picks a fault with a
   clear undo, holds it for a random window, then undoes it before the
   next begins. Keeping episodes disjoint means a random plan never
   stacks a partition on top of a crashed majority, so the soak probes
   recovery paths rather than guaranteed-unavailable windows. Only
   mc-faithful faults are drawn — the same plan text replays on the sim
   backend for diagnosis. *)
let random ~rng ~bricks ~horizon =
  if bricks < 2 then invalid_arg "Chaos.Plan.random: bricks < 2";
  if horizon <= 0. then invalid_arg "Chaos.Plan.random: horizon <= 0";
  let frand lo hi = lo +. Random.State.float rng (hi -. lo) in
  let events = ref [] in
  let t = ref (frand (horizon /. 20.) (horizon /. 10.)) in
  while !t < horizon *. 0.8 do
    let hold = frand (horizon /. 12.) (horizon /. 6.) in
    let fin = !t +. hold in
    if fin <= horizon then begin
      let begin_fault, end_fault =
        match Random.State.int rng 5 with
        | 0 ->
            let b = Random.State.int rng bricks in
            (Crash b, Recover b)
        | 1 ->
            let cut = 1 + Random.State.int rng (bricks - 1) in
            let left = List.init cut Fun.id
            and right = List.init (bricks - cut) (fun i -> cut + i) in
            (Partition [ left; right ], Heal)
        | 2 ->
            let s = Random.State.int rng bricks in
            let d = (s + 1 + Random.State.int rng (bricks - 1)) mod bricks in
            (Link_down (s, d), Link_up (s, d))
        | 3 -> (Drop (frand 0.02 0.25), Drop 0.)
        | _ -> (Slow (frand 0.5 3., frand 0. 2.), Slow (0., 0.))
      in
      events := ev fin end_fault :: ev !t begin_fault :: !events
    end;
    t := fin +. frand (horizon /. 20.) (horizon /. 10.)
  done;
  make
    ~name:(Printf.sprintf "random-%db" bricks)
    ~horizon (List.rev !events)
