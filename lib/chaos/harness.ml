module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module H = Linearize.History
module Check = Linearize.Check

type backend = Sim | Mc of { domains : int; time_scale : float }

type result = {
  ok : int;
  aborted : int;
  unavailable : int;
  stuck : int;
  corrupt_reads : int;
  violations : (int * Check.violation) list;
  hook_leaks : int;
  trace : string option;
}

let failed r = r.violations <> [] || r.stuck > 0 || r.hook_leaks > 0

let pp_result fmt r =
  Format.fprintf fmt
    "ok=%d aborted=%d unavailable=%d stuck=%d corrupt_reads=%d \
     hook_leaks=%d violations=%d"
    r.ok r.aborted r.unavailable r.stuck r.corrupt_reads r.hook_leaks
    (List.length r.violations);
  List.iter
    (fun (idx, v) ->
      Format.fprintf fmt "@.  block %d: %a" idx Check.pp_violation v)
    r.violations

let block_size = 64

let value_block s =
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) block_size);
  b

let block_value b =
  match Bytes.index_opt b '\000' with
  | Some 0 -> H.nil
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

type op_record = {
  ids : (int * int) list;  (* (block index within stripe, history op id) *)
  stripe : int;
  coord : int;
  invoked_at : float;
  mutable done_ : bool;
}

(* One pre-drawn client operation. The workload shape is drawn from the
   harness rng {e before} any client starts, sequentially per client:
   on the mc backend clients run on different threads, and sharing a
   [Random.State.t] across them would make the workload depend on the
   race rather than on [seed]. *)
type op_desc = {
  gap : float;  (* sleep before the op, in plan time units *)
  op_stripe : int;
  shape :
    [ `Write_stripe of string list
    | `Read_stripe
    | `Write_block of int * string
    | `Read_block of int
    | `Write_blocks of int * string list
    | `Read_blocks of int * int ];
}

let run ?(backend = Sim) ?(m = 2) ?(n = 5) ?(stripes = 4) ?(clients = 3)
    ?(ops_per_client = 12) ?(deadline = 200.) ?(unsafe_skip_order = false)
    ?(capture_trace = false) ~seed (plan : Plan.t) =
  (* Harness-local randomness: the backend's rng drives the simulated
     system, this one drives the workload shape. Both derive from
     [seed] so a sim run is a pure function of (plan, seed, knobs). *)
  let rng = Random.State.make [| seed; 0xc4a05 |] in
  let ts = match backend with Sim -> 1. | Mc { time_scale; _ } -> time_scale in
  (match backend with
  | Sim -> ()
  | Mc { domains; time_scale } ->
      if domains < 1 then invalid_arg "Chaos.Harness.run: domains < 1";
      if time_scale <= 0. then
        invalid_arg "Chaos.Harness.run: time_scale <= 0";
      if clients > n then
        (* Each mc client needs its own coordinator: logical (time, pid)
           timestamps are only unique with one concurrent client per
           coordinator. *)
        invalid_arg "Chaos.Harness.run: mc backend needs clients <= n");
  let cl =
    match backend with
    | Sim ->
        Cluster.create ~seed ~m ~n ~block_size ~deadline ~unsafe_skip_order
          ()
    | Mc { domains; time_scale } ->
        Cluster.create_mc ~domains ~m ~n ~block_size
          ~deadline:(deadline *. time_scale)
          ~retry_every:(8. *. time_scale) ~unsafe_skip_order ()
  in
  let rt = cl.Cluster.runtime in
  let now () = Runtime.now rt in
  (* One lock for everything the clients share: histories, op records,
     counters, the written-values table and the trace buffer. Clients
     only hold it around bookkeeping, never across a protocol call.
     Uncontended (and semantically inert) on the sim backend. *)
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  let trace_buf =
    if capture_trace then begin
      let buf = Buffer.create 4096 in
      let buf_lock = Mutex.create () in
      Obs.add_sink cl.Cluster.obs
        (Obs.Sink.make (fun e ->
             let line = Obs.to_json e in
             Mutex.lock buf_lock;
             Buffer.add_string buf line;
             Buffer.add_char buf '\n';
             Mutex.unlock buf_lock));
      Some buf
    end
    else None
  in
  let histories = Array.init (stripes * m) (fun _ -> H.create ()) in
  let hist ~stripe ~j = histories.((stripe * m) + j) in
  let ops : op_record list ref = ref [] in
  let counts = ref (0, 0, 0) in
  (* ok, aborted, unavailable *)
  let corrupt_reads = ref 0 in
  let written : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let bit_rot_plan =
    List.exists
      (fun e -> match e.Plan.fault with Plan.Bit_rot _ -> true | _ -> false)
      plan.Plan.events
  in
  let hook_baseline = Array.map Brick.hook_count cl.Cluster.bricks in

  (* Pre-draw every client's workload (see [op_desc]). *)
  let uid = ref 0 in
  let mean_gap = plan.Plan.horizon /. float_of_int (ops_per_client + 1) in
  let fresh_values blocks =
    incr uid;
    List.map (fun j -> Printf.sprintf "s%d.u%d.b%d" seed !uid j) blocks
  in
  let gen_op () =
    let gap = Random.State.float rng (2. *. mean_gap) in
    let op_stripe = Random.State.int rng stripes in
    let shape =
      match Random.State.int rng 6 with
      | 0 -> `Write_stripe (fresh_values (List.init m Fun.id))
      | 1 -> `Read_stripe
      | 2 ->
          let j = Random.State.int rng m in
          `Write_block (j, List.hd (fresh_values [ j ]))
      | 3 -> `Read_block (Random.State.int rng m)
      | 4 ->
          let j0 = Random.State.int rng m in
          let len = 1 + Random.State.int rng (m - j0) in
          `Write_blocks (j0, fresh_values (List.init len (fun i -> j0 + i)))
      | _ ->
          let j0 = Random.State.int rng m in
          let len = 1 + Random.State.int rng (m - j0) in
          `Read_blocks (j0, len)
    in
    { gap; op_stripe; shape }
  in
  let workloads =
    Array.init clients (fun _ -> List.init ops_per_client (fun _ -> gen_op ()))
  in

  let record_op ~coord ~stripe ~blocks ~kind ~values =
    locked (fun () ->
        let now = now () in
        let ids =
          List.map2
            (fun j v ->
              let id =
                match kind with
                | H.Write ->
                    Hashtbl.replace written v ();
                    H.invoke (hist ~stripe ~j) ~client:coord ~kind
                      ~written:v ~now ()
                | H.Read ->
                    H.invoke (hist ~stripe ~j) ~client:coord ~kind ~now ()
              in
              (j, id))
            blocks values
        in
        let r = { ids; stripe; coord; invoked_at = now; done_ = false } in
        ops := r :: !ops;
        r)
  in

  let bump o =
    let ok, ab, un = !counts in
    counts :=
      match o with
      | `Ok -> (ok + 1, ab, un)
      | `Aborted -> (ok, ab + 1, un)
      | `Unavailable -> (ok, ab, un + 1)
  in

  let finish_op ~stripe r outcome =
    locked (fun () ->
        let now = now () in
        r.done_ <- true;
        (* Under a bit-rot plan a read may surface a value no client ever
           wrote (silent corruption below the checksum). Count it and
           record an abort: storage damage, not an ordering bug. *)
        let outcome =
          match outcome with
          | `ReadValues values
            when bit_rot_plan
                 && List.exists
                      (fun (_, v) ->
                        v <> H.nil && not (Hashtbl.mem written v))
                      values ->
              incr corrupt_reads;
              `Corrupt
          | o -> o
        in
        (match outcome with
        | `Wrote | `ReadValues _ -> bump `Ok
        | `Corrupt | `Aborted -> bump `Aborted
        | `Unavailable -> bump `Unavailable);
        List.iter
          (fun (j, id) ->
            let h = hist ~stripe ~j in
            match outcome with
            | `Wrote -> H.complete_write h id ~now
            | `ReadValues values ->
                H.complete_read h id ~value:(List.assoc j values) ~now
            | `Corrupt | `Aborted | `Unavailable -> H.abort h id ~now)
          r.ids)
  in

  let finish r result ~stripe ~blocks =
    match result with
    | `Write (Ok ()) -> finish_op ~stripe r `Wrote
    | `Read (Ok values) ->
        finish_op ~stripe r
          (`ReadValues (List.map2 (fun j v -> (j, v)) blocks values))
    | `Write (Error `Unavailable) | `Read (Error `Unavailable) ->
        finish_op ~stripe r `Unavailable
    | `Write (Error `Aborted) | `Read (Error `Aborted) ->
        finish_op ~stripe r `Aborted
  in

  let run_desc ~coord c d =
    let stripe = d.op_stripe in
    match d.shape with
    | `Write_stripe values ->
        let data = Array.of_list (List.map value_block values) in
        let blocks = List.init m Fun.id in
        let r = record_op ~coord ~stripe ~blocks ~kind:H.Write ~values in
        finish r ~stripe ~blocks
          (`Write (Coordinator.write_stripe c ~stripe data))
    | `Read_stripe ->
        let blocks = List.init m Fun.id in
        let r =
          record_op ~coord ~stripe ~blocks ~kind:H.Read
            ~values:(List.init m (fun _ -> ""))
        in
        finish r ~stripe ~blocks
          (`Read
            (match Coordinator.read_stripe c ~stripe with
            | Ok data -> Ok (List.init m (fun j -> block_value data.(j)))
            | Error _ as e -> (e :> (string list, _) Stdlib.result)))
    | `Write_block (j, v) ->
        let r =
          record_op ~coord ~stripe ~blocks:[ j ] ~kind:H.Write ~values:[ v ]
        in
        finish r ~stripe ~blocks:[ j ]
          (`Write (Coordinator.write_block c ~stripe j (value_block v)))
    | `Read_block j ->
        let r =
          record_op ~coord ~stripe ~blocks:[ j ] ~kind:H.Read ~values:[ "" ]
        in
        finish r ~stripe ~blocks:[ j ]
          (`Read
            (match Coordinator.read_block c ~stripe j with
            | Ok b -> Ok [ block_value b ]
            | Error _ as e -> (e :> (string list, _) Stdlib.result)))
    | `Write_blocks (j0, values) ->
        let news = Array.of_list (List.map value_block values) in
        let blocks = List.init (List.length values) (fun i -> j0 + i) in
        let r = record_op ~coord ~stripe ~blocks ~kind:H.Write ~values in
        finish r ~stripe ~blocks
          (`Write (Coordinator.write_blocks c ~stripe j0 news))
    | `Read_blocks (j0, len) ->
        let blocks = List.init len (fun i -> j0 + i) in
        let r =
          record_op ~coord ~stripe ~blocks ~kind:H.Read
            ~values:(List.init len (fun _ -> ""))
        in
        finish r ~stripe ~blocks
          (`Read
            (match Coordinator.read_blocks c ~stripe j0 ~len with
            | Ok bs -> Ok (List.init len (fun i -> block_value bs.(i)))
            | Error _ as e -> (e :> (string list, _) Stdlib.result)))
  in

  let client coord descs =
    Runtime.spawn rt (fun () ->
        let c = cl.Cluster.coordinators.(coord) in
        (* A coordinator crash cancels the client's in-flight call; the
           op stays pending in its history and is marked partial at the
           crash instant below. The client itself dies quietly, as a
           crashed process would. *)
        try
          List.iter
            (fun d ->
              Runtime.sleep rt (d.gap *. ts);
              run_desc ~coord c d)
            descs
        with Runtime.Cancelled -> ())
  in

  Array.iteri (fun c descs -> client (c mod n) descs) workloads;

  let nemesis = Nemesis.install ~time_scale:ts plan cl in
  let quiesced =
    match backend with
    | Sim ->
        Cluster.run ~horizon:plan.Plan.horizon cl;
        Nemesis.restore nemesis;
        (* Settle: with the environment healthy again, every surviving
           fiber must finish. Anything still pending afterwards is
           stuck. *)
        Cluster.run ~horizon:20_000. cl;
        true
    | Mc _ ->
        (* Real time: wait out the chaos window on the wall clock (the
           harness thread is not a pool task, but gates block any
           thread), then heal and give in-flight operations a bounded
           settle. [deadline] caps every operation, so a generous
           multiple of it only elapses in full when something is truly
           stuck. *)
        Runtime.sleep rt (plan.Plan.horizon *. ts);
        Nemesis.restore nemesis;
        Cluster.try_quiesce ~timeout:(Float.max 5. (20. *. deadline *. ts)) cl
  in

  (* Crash instants, straight from the nemesis's applied-fault log
     (identical to the plan times on sim; wall-clock instants on mc,
     comparable with [invoked_at]): used to mark pending operations of
     crashed coordinators as partial. *)
  let crashes =
    List.filter_map
      (fun (at, fault) ->
        match fault with
        | Plan.Crash i | Plan.Torn_crash i -> Some (i, at)
        | _ -> None)
      (Nemesis.applied nemesis)
  in
  locked (fun () ->
      let stuck = ref 0 in
      List.iter
        (fun r ->
          if not r.done_ then begin
            let crash_time =
              List.fold_left
                (fun acc (b, t) ->
                  if b = r.coord && t >= r.invoked_at then
                    match acc with
                    | None -> Some t
                    | Some t' -> Some (Float.min t t')
                  else acc)
                None crashes
            in
            match crash_time with
            | Some t ->
                List.iter
                  (fun (j, id) ->
                    H.crash (hist ~stripe:r.stripe ~j) id ~now:t)
                  r.ids
            | None -> incr stuck
          end)
        !ops;

      let violations = ref [] in
      Array.iteri
        (fun idx h ->
          match Check.strict h with
          | Ok () -> ()
          | Error v -> violations := (idx, v) :: !violations)
        histories;

      let hook_leaks =
        ref
          (if quiesced then 0
           else begin
             (* A pool that failed to quiesce cannot be shut down
                (reaping would hang on the stuck slot thread); leak it
                loudly and let [stuck] fail the run. *)
             Printf.eprintf
               "chaos: harness: mc pool failed to quiesce (plan %s seed \
                %d); leaking the pool\n\
                %!"
               plan.Plan.name seed;
             0
           end)
      in
      Array.iteri
        (fun i b ->
          hook_leaks :=
            !hook_leaks + max 0 (Brick.hook_count b - hook_baseline.(i)))
        cl.Cluster.bricks;
      if quiesced then Cluster.shutdown cl;
      let ok, aborted, unavailable = !counts in
      {
        ok;
        aborted;
        unavailable;
        stuck = !stuck;
        corrupt_reads = !corrupt_reads;
        violations = List.rev !violations;
        hook_leaks = !hook_leaks;
        trace = Option.map Buffer.contents trace_buf;
      })
