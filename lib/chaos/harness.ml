module Cluster = Core.Cluster
module Coordinator = Core.Coordinator
module H = Linearize.History
module Check = Linearize.Check

type result = {
  ok : int;
  aborted : int;
  unavailable : int;
  stuck : int;
  corrupt_reads : int;
  violations : (int * Check.violation) list;
  hook_leaks : int;
  trace : string option;
}

let failed r = r.violations <> [] || r.stuck > 0 || r.hook_leaks > 0

let pp_result fmt r =
  Format.fprintf fmt
    "ok=%d aborted=%d unavailable=%d stuck=%d corrupt_reads=%d \
     hook_leaks=%d violations=%d"
    r.ok r.aborted r.unavailable r.stuck r.corrupt_reads r.hook_leaks
    (List.length r.violations);
  List.iter
    (fun (idx, v) ->
      Format.fprintf fmt "@.  block %d: %a" idx Check.pp_violation v)
    r.violations

let block_size = 64

let value_block s =
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string s 0 b 0 (min (String.length s) block_size);
  b

let block_value b =
  match Bytes.index_opt b '\000' with
  | Some 0 -> H.nil
  | Some i -> Bytes.sub_string b 0 i
  | None -> Bytes.to_string b

type op_record = {
  ids : (int * int) list;  (* (block index within stripe, history op id) *)
  stripe : int;
  coord : int;
  invoked_at : float;
  mutable done_ : bool;
}

let run ?(m = 2) ?(n = 5) ?(stripes = 4) ?(clients = 3)
    ?(ops_per_client = 12) ?(deadline = 200.) ?(unsafe_skip_order = false)
    ?(capture_trace = false) ~seed (plan : Plan.t) =
  (* Harness-local randomness: the engine's rng drives the simulated
     system, this one drives the workload shape. Both derive from
     [seed] so a run is a pure function of (plan, seed, knobs). *)
  let rng = Random.State.make [| seed; 0xc4a05 |] in
  let cl =
    Cluster.create ~seed ~m ~n ~block_size ~deadline ~unsafe_skip_order ()
  in
  let engine = cl.Cluster.engine in
  let trace_buf =
    if capture_trace then begin
      let buf = Buffer.create 4096 in
      Obs.add_sink cl.Cluster.obs
        (Obs.Sink.make (fun e ->
             Buffer.add_string buf (Obs.to_json e);
             Buffer.add_char buf '\n'));
      Some buf
    end
    else None
  in
  let histories = Array.init (stripes * m) (fun _ -> H.create ()) in
  let hist ~stripe ~j = histories.((stripe * m) + j) in
  let ops : op_record list ref = ref [] in
  let uid = ref 0 in
  let counts = ref (0, 0, 0) in
  (* ok, aborted, unavailable *)
  let corrupt_reads = ref 0 in
  let written : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let bit_rot_plan =
    List.exists
      (fun e -> match e.Plan.fault with Plan.Bit_rot _ -> true | _ -> false)
      plan.Plan.events
  in

  let sleep delay =
    Dessim.Fiber.suspend (fun r ->
        ignore
          (Dessim.Engine.schedule engine ~delay (fun () ->
               Dessim.Fiber.resume r ())))
  in

  let record_op ~coord ~stripe ~blocks ~kind ~values =
    let now = Dessim.Engine.now engine in
    let ids =
      List.map2
        (fun j v ->
          let id =
            match kind with
            | H.Write ->
                Hashtbl.replace written v ();
                H.invoke (hist ~stripe ~j) ~client:coord ~kind ~written:v
                  ~now ()
            | H.Read -> H.invoke (hist ~stripe ~j) ~client:coord ~kind ~now ()
          in
          (j, id))
        blocks values
    in
    let r = { ids; stripe; coord; invoked_at = now; done_ = false } in
    ops := r :: !ops;
    r
  in

  let bump o =
    let ok, ab, un = !counts in
    counts :=
      match o with
      | `Ok -> (ok + 1, ab, un)
      | `Aborted -> (ok, ab + 1, un)
      | `Unavailable -> (ok, ab, un + 1)
  in

  let finish_op ~stripe r outcome =
    let now = Dessim.Engine.now engine in
    r.done_ <- true;
    (* Under a bit-rot plan a read may surface a value no client ever
       wrote (silent corruption below the checksum). Count it and
       record an abort: storage damage, not an ordering bug. *)
    let outcome =
      match outcome with
      | `ReadValues values
        when bit_rot_plan
             && List.exists
                  (fun (_, v) -> v <> H.nil && not (Hashtbl.mem written v))
                  values ->
          incr corrupt_reads;
          `Corrupt
      | o -> o
    in
    (match outcome with
    | `Wrote | `ReadValues _ -> bump `Ok
    | `Corrupt | `Aborted -> bump `Aborted
    | `Unavailable -> bump `Unavailable);
    List.iter
      (fun (j, id) ->
        let h = hist ~stripe ~j in
        match outcome with
        | `Wrote -> H.complete_write h id ~now
        | `ReadValues values ->
            H.complete_read h id ~value:(List.assoc j values) ~now
        | `Corrupt | `Aborted | `Unavailable -> H.abort h id ~now)
      r.ids
  in

  let finish r result ~stripe ~blocks =
    match result with
    | `Write (Ok ()) -> finish_op ~stripe r `Wrote
    | `Read (Ok values) ->
        finish_op ~stripe r
          (`ReadValues (List.map2 (fun j v -> (j, v)) blocks values))
    | `Write (Error `Unavailable) | `Read (Error `Unavailable) ->
        finish_op ~stripe r `Unavailable
    | `Write (Error `Aborted) | `Read (Error `Aborted) ->
        finish_op ~stripe r `Aborted
  in

  let client coord =
    Dessim.Fiber.spawn (fun () ->
        let c = cl.Cluster.coordinators.(coord) in
        (* Spread the client's operations across the chaos window. *)
        let mean_gap = plan.Plan.horizon /. float_of_int (ops_per_client + 1) in
        for _ = 1 to ops_per_client do
          sleep (Random.State.float rng (2. *. mean_gap));
          let stripe = Random.State.int rng stripes in
          match Random.State.int rng 6 with
          | 0 ->
              incr uid;
              let values =
                List.init m (fun j -> Printf.sprintf "s%d.u%d.b%d" seed !uid j)
              in
              let data = Array.of_list (List.map value_block values) in
              let blocks = List.init m Fun.id in
              let r =
                record_op ~coord ~stripe ~blocks ~kind:H.Write ~values
              in
              finish r ~stripe ~blocks
                (`Write (Coordinator.write_stripe c ~stripe data))
          | 1 ->
              let blocks = List.init m Fun.id in
              let r =
                record_op ~coord ~stripe ~blocks ~kind:H.Read
                  ~values:(List.init m (fun _ -> ""))
              in
              finish r ~stripe ~blocks
                (`Read
                  (match Coordinator.read_stripe c ~stripe with
                  | Ok data ->
                      Ok (List.init m (fun j -> block_value data.(j)))
                  | Error _ as e -> (e :> (string list, _) Stdlib.result)))
          | 2 ->
              incr uid;
              let j = Random.State.int rng m in
              let v = Printf.sprintf "s%d.u%d.b%d" seed !uid j in
              let r =
                record_op ~coord ~stripe ~blocks:[ j ] ~kind:H.Write
                  ~values:[ v ]
              in
              finish r ~stripe ~blocks:[ j ]
                (`Write (Coordinator.write_block c ~stripe j (value_block v)))
          | 3 ->
              let j = Random.State.int rng m in
              let r =
                record_op ~coord ~stripe ~blocks:[ j ] ~kind:H.Read
                  ~values:[ "" ]
              in
              finish r ~stripe ~blocks:[ j ]
                (`Read
                  (match Coordinator.read_block c ~stripe j with
                  | Ok b -> Ok [ block_value b ]
                  | Error _ as e -> (e :> (string list, _) Stdlib.result)))
          | 4 ->
              incr uid;
              let j0 = Random.State.int rng m in
              let len = 1 + Random.State.int rng (m - j0) in
              let values =
                List.init len (fun i ->
                    Printf.sprintf "s%d.u%d.b%d" seed !uid (j0 + i))
              in
              let news = Array.of_list (List.map value_block values) in
              let blocks = List.init len (fun i -> j0 + i) in
              let r =
                record_op ~coord ~stripe ~blocks ~kind:H.Write ~values
              in
              finish r ~stripe ~blocks
                (`Write (Coordinator.write_blocks c ~stripe j0 news))
          | _ ->
              let j0 = Random.State.int rng m in
              let len = 1 + Random.State.int rng (m - j0) in
              let blocks = List.init len (fun i -> j0 + i) in
              let r =
                record_op ~coord ~stripe ~blocks ~kind:H.Read
                  ~values:(List.init len (fun _ -> ""))
              in
              finish r ~stripe ~blocks
                (`Read
                  (match Coordinator.read_blocks c ~stripe j0 ~len with
                  | Ok bs ->
                      Ok (List.init len (fun i -> block_value bs.(i)))
                  | Error _ as e -> (e :> (string list, _) Stdlib.result)))
        done)
  in

  for c = 0 to clients - 1 do
    client (c mod n)
  done;

  let nemesis = Nemesis.install plan cl in
  Cluster.run ~horizon:plan.Plan.horizon cl;
  Nemesis.restore nemesis;
  (* Settle: with the environment healthy again, every surviving fiber
     must finish. Anything still pending afterwards is stuck. *)
  Cluster.run ~horizon:20_000. cl;

  (* Crash instants, straight from the plan (the nemesis schedule is
     deterministic): used to mark pending operations of crashed
     coordinators as partial. *)
  let crashes =
    List.filter_map
      (fun e ->
        match e.Plan.fault with
        | Plan.Crash i | Plan.Torn_crash i -> Some (i, e.Plan.at)
        | _ -> None)
      plan.Plan.events
  in
  let stuck = ref 0 in
  List.iter
    (fun r ->
      if not r.done_ then begin
        let crash_time =
          List.fold_left
            (fun acc (b, t) ->
              if b = r.coord && t >= r.invoked_at then
                match acc with
                | None -> Some t
                | Some t' -> Some (Float.min t t')
              else acc)
            None crashes
        in
        match crash_time with
        | Some t ->
            List.iter
              (fun (j, id) -> H.crash (hist ~stripe:r.stripe ~j) id ~now:t)
              r.ids
        | None -> incr stuck
      end)
    !ops;

  let violations = ref [] in
  Array.iteri
    (fun idx h ->
      match Check.strict h with
      | Ok () -> ()
      | Error v -> violations := (idx, v) :: !violations)
    histories;

  let hook_leaks =
    Array.fold_left
      (fun acc b -> acc + max 0 (Brick.hook_count b - 1))
      0 cl.Cluster.bricks
  in
  let ok, aborted, unavailable = !counts in
  {
    ok;
    aborted;
    unavailable;
    stuck = !stuck;
    corrupt_reads = !corrupt_reads;
    violations = List.rev !violations;
    hook_leaks;
    trace = Option.map Buffer.contents trace_buf;
  }
